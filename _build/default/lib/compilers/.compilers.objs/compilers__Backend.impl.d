lib/compilers/backend.ml: Minic Osim Printf Seghw
