lib/compilers/codegen.ml: Array Backend Data_layout Hashtbl Insn List Machine Minic Option Printf Registers Seghw String
