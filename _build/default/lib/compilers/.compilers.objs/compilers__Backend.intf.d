lib/compilers/backend.mli: Minic Seghw
