lib/compilers/data_layout.ml: Array Backend Bytes Char Hashtbl Int64 List Machine Minic Osim Printf Seghw String
