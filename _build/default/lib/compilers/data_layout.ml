(* Static data layout: assign linear addresses to globals and string
   literals, and produce the loader directives.

   Under Cash, every global array and string literal is preceded by its
   12-byte information structure ("when a 100-byte array is statically
   allocated, Cash allocates 112 bytes", §3.2). The info structure is
   *filled at startup* by cash_seg_init; here we only reserve it.

   Cash additionally gets one static info structure, [unchecked_info],
   describing the flat global segment — the shadow target for pointers
   whose provenance Cash does not track.

   Under BCC, every array and string literal likewise gets an 8-byte
   bounds record (lower, upper): real BCC keeps object bounds in memory
   and its checks load them — the paper's 6-instruction minimum sequence
   (2 loads, 2 comparisons, 2 branches). Unlike Cash's, BCC's records can
   be statically initialised (no startup registration code needed). *)

module Ast = Minic.Ast
module Ir = Minic.Ir

type entry = {
  sym : Ir.sym;
  addr : int;       (* address of the value / first array element *)
  info_addr : int;  (* Cash info structure address; -1 if none *)
  byte_size : int;
}

type t = {
  kind : Backend.kind;
  entries : (int, entry) Hashtbl.t;    (* sym id -> entry *)
  string_addrs : (int * int) array;    (* string id -> (addr, info_addr) *)
  unchecked_info : int;                (* Cash only; -1 otherwise *)
  data : Machine.Program.datum list;
  total_bytes : int;
}

let align8 n = (n + 7) land lnot 7

let int32_le v =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr (v land 0xFF));
  Bytes.set b 1 (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set b 2 (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set b 3 (Char.chr ((v lsr 24) land 0xFF));
  Bytes.to_string b

let float64_le f =
  let bits = Int64.bits_of_float f in
  String.init 8 (fun i ->
      Char.chr
        (Int64.to_int (Int64.shift_right_logical bits (8 * i)) land 0xFF))

let const_bytes (ty : Ast.ty) (c : Ir.const option) size =
  let raw =
    match c with
    | None -> None
    | Some (Ir.Cint n) ->
      (match ty with
       | Ast.Tchar -> Some (String.make 1 (Char.chr (n land 0xFF)))
       | Ast.Tdouble -> Some (float64_le (float_of_int n))
       | _ -> Some (int32_le n))
    | Some (Ir.Cfloat f) ->
      (match ty with
       | Ast.Tdouble -> Some (float64_le f)
       | _ -> Some (int32_le (int_of_float f)))
  in
  match raw with
  | Some s when String.length s < size ->
    Some (s ^ String.make (size - String.length s) '\000')
  | other -> other

let is_cash = function Backend.Cash _ -> true | _ -> false
let is_bcc = function Backend.Bcc _ -> true | _ -> false

let needs_info kind (ty : Ast.ty) =
  (is_cash kind || is_bcc kind)
  && match ty with Ast.Tarray _ -> true | _ -> false

(* Lay out the data section for [prog] under [kind], starting at the
   standard data base. *)
let build kind (prog : Ir.tprog) =
  let entries = Hashtbl.create 31 in
  let data = ref [] in
  let cursor = ref Osim.Layout.data_base in
  let place ~label ~size ~init =
    let addr = !cursor in
    cursor := align8 (!cursor + size);
    data := { Machine.Program.label; addr; size; init } :: !data;
    addr
  in
  (* Cash's static info structure for untracked pointers: selector = flat
     data segment, base = 0, upper = 0xFFFFFFFF. *)
  let unchecked_info =
    if is_cash kind then
      place ~label:"__cash_unchecked_info" ~size:12
        ~init:
          (Some
             (int32_le
                (Seghw.Selector.to_int Backend.global_segment_selector)
              ^ int32_le 0 ^ int32_le 0xFFFFFFFF))
    else -1
  in
  List.iter
    (fun ((sym : Ir.sym), init) ->
      let size = Backend.val_size kind sym.Ir.ty in
      let info_addr =
        if needs_info kind sym.Ir.ty then
          if is_cash kind then
            place ~label:(sym.Ir.name ^ "$info") ~size:12 ~init:None
          else begin
            (* BCC bounds record: lower = array start, upper = one past
               the end, both known statically for globals *)
            let record = place ~label:(sym.Ir.name ^ "$bounds") ~size:8
                ~init:None in
            record
          end
        else -1
      in
      let addr =
        place ~label:sym.Ir.name ~size
          ~init:(const_bytes sym.Ir.ty init size)
      in
      (* now that the array's address is known, backpatch the BCC bounds
         record's static initialiser *)
      let data' =
        if is_bcc kind && info_addr <> -1 then
          List.map
            (fun (d : Machine.Program.datum) ->
              if d.Machine.Program.addr = info_addr then
                { d with Machine.Program.init =
                    Some (int32_le addr ^ int32_le (addr + size)) }
              else d)
            !data
        else !data
      in
      data := data';
      Hashtbl.replace entries sym.Ir.id { sym; addr; info_addr; byte_size = size })
    prog.Ir.globals;
  let string_addrs =
    Array.map
      (fun s ->
        let size = String.length s + 1 in
        let info_addr =
          if is_cash kind then place ~label:"$strinfo" ~size:12 ~init:None
          else if is_bcc kind then
            place ~label:"$strbounds" ~size:8 ~init:None
          else -1
        in
        let addr = place ~label:"$str" ~size ~init:(Some (s ^ "\000")) in
        (if is_bcc kind && info_addr <> -1 then
           data :=
             List.map
               (fun (d : Machine.Program.datum) ->
                 if d.Machine.Program.addr = info_addr then
                   { d with Machine.Program.init =
                       Some (int32_le addr ^ int32_le (addr + size)) }
                 else d)
               !data);
        (addr, info_addr))
      prog.Ir.strings
  in
  {
    kind;
    entries;
    string_addrs;
    unchecked_info;
    data = List.rev !data;
    total_bytes = !cursor - Osim.Layout.data_base;
  }

let entry t sym_id = Hashtbl.find_opt t.entries sym_id

let entry_exn t (sym : Ir.sym) =
  match entry t sym.Ir.id with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "no data entry for %s" sym.Ir.name)

let string_addr t id = fst t.string_addrs.(id)
let string_info t id = snd t.string_addrs.(id)
let string_size (_ : t) (prog : Ir.tprog) id =
  String.length prog.Ir.strings.(id) + 1
