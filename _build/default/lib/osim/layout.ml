(* The user-space address layout established at load time.

   Mirrors a classic 32-bit Linux process: code low, static data above it,
   heap in the middle, stack just under 3 GiB growing down. Cash layers
   array segments on top of this otherwise flat space without moving
   anything (§3.9). *)

let text_base = 0x08048000
let data_base = 0x08100000
let heap_base = 0x10000000
let stack_top = 0xC0000000
let stack_size = 1 lsl 20 (* 1 MiB mapped eagerly *)
let stack_bottom = stack_top - stack_size

(* Initial ESP, leaving a little headroom below the very top. *)
let initial_esp = stack_top - 16
