lib/osim/libc.ml: Buffer Char Cpu Float Hashtbl Layout Machine Printf Registers Seghw
