lib/osim/process.ml: Char Kernel Layout Libc List Machine Seghw String
