lib/osim/libc.mli: Machine Seghw
