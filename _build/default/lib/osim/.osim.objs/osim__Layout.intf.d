lib/osim/layout.mli:
