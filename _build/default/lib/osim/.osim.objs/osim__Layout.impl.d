lib/osim/layout.ml:
