lib/osim/scheduler.mli: Kernel Process
