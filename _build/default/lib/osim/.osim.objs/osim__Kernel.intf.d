lib/osim/kernel.mli: Machine Seghw
