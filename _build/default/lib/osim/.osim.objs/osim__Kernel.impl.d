lib/osim/kernel.ml: Machine Printf Seghw
