lib/osim/scheduler.ml: Kernel List Process
