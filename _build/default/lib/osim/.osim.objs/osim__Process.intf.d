lib/osim/process.mli: Kernel Libc Machine Seghw
