(** The user-space address layout established at load time: a classic
    32-bit Linux process (code low, static data above, heap in the
    middle, stack under 3 GiB). Cash layers segments on top of this flat
    space without moving anything (§3.9). *)

val text_base : int
val data_base : int
val heap_base : int
val stack_top : int
val stack_size : int
val stack_bottom : int
val initial_esp : int
