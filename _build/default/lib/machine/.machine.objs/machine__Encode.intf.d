lib/machine/encode.mli: Insn
