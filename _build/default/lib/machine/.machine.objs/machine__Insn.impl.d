lib/machine/insn.ml: Fmt Registers Seghw String
