lib/machine/cpu.ml: Array Cost_model Hashtbl Insn Phys_mem Printf Program Registers Seghw String
