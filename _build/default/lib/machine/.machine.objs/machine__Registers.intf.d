lib/machine/registers.mli:
