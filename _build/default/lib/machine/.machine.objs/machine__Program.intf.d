lib/machine/program.mli: Format Hashtbl Insn
