lib/machine/encode.ml: Array Insn Registers
