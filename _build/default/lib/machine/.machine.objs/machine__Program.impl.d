lib/machine/program.ml: Array Encode Fmt Hashtbl Insn List Printf
