lib/machine/cpu.mli: Cost_model Phys_mem Program Registers Seghw
