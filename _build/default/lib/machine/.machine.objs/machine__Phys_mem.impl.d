lib/machine/phys_mem.ml: Bytes Char Int64
