lib/machine/registers.ml: Array Printf
