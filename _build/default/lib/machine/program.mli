(** A linked program: instructions with resolved labels plus the
    data-section layout the loader must establish. Code is interpreted
    structurally (only its encoded size is accounted); data ranges are
    mapped and initialised by the simulated OS at load time. *)

type datum = {
  label : string;       (** symbolic name, for debugging *)
  addr : int;           (** linear address *)
  size : int;           (** bytes *)
  init : string option; (** initial contents; [None] = zero-filled *)
}

type t = {
  code : Insn.t array;
  labels : (string, int) Hashtbl.t;
  entry : string;
  data : datum list;
  data_bytes : int;
}

exception Link_error of string

(** [link ?entry ?data insns] indexes every [Label] and checks that all
    jump/call targets and the entry point resolve.
    @raise Link_error on duplicate labels or unresolved targets. *)
val link : ?entry:string -> ?data:datum list -> Insn.t list -> t

(** @raise Link_error if undefined. *)
val resolve : t -> string -> int

val code_size : t -> int
val insn_count : t -> int
val pp : Format.formatter -> t -> unit
