(* Physical memory: a dense, growable little-endian byte store.

   Physical frames are handed out sequentially by the paging unit, so
   physical memory is contiguous from address 0 and a doubling Bytes buffer
   suffices. All multi-byte accessors are little-endian, matching x86. *)

type t = { mutable data : Bytes.t; mutable high_water : int }

let create ?(initial = 1 lsl 20) () =
  { data = Bytes.make initial '\000'; high_water = 0 }

let ensure t addr_end =
  if addr_end > Bytes.length t.data then begin
    let len = ref (Bytes.length t.data) in
    while addr_end > !len do
      len := !len * 2
    done;
    let grown = Bytes.make !len '\000' in
    Bytes.blit t.data 0 grown 0 (Bytes.length t.data);
    t.data <- grown
  end;
  if addr_end > t.high_water then t.high_water <- addr_end

let read8 t addr =
  if addr + 1 > Bytes.length t.data then 0
  else Char.code (Bytes.unsafe_get t.data addr)

let write8 t addr v =
  ensure t (addr + 1);
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let read16 t addr =
  if addr + 2 <= Bytes.length t.data then
    Char.code (Bytes.unsafe_get t.data addr)
    lor (Char.code (Bytes.unsafe_get t.data (addr + 1)) lsl 8)
  else read8 t addr lor (read8 t (addr + 1) lsl 8)

let write16 t addr v =
  ensure t (addr + 2);
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF))

let read32 t addr =
  if addr + 4 <= Bytes.length t.data then begin
    let b0 = Char.code (Bytes.unsafe_get t.data addr) in
    let b1 = Char.code (Bytes.unsafe_get t.data (addr + 1)) in
    let b2 = Char.code (Bytes.unsafe_get t.data (addr + 2)) in
    let b3 = Char.code (Bytes.unsafe_get t.data (addr + 3)) in
    b0 lor (b1 lsl 8) lor (b2 lsl 16) lor (b3 lsl 24)
  end
  else
    read8 t addr
    lor (read8 t (addr + 1) lsl 8)
    lor (read8 t (addr + 2) lsl 16)
    lor (read8 t (addr + 3) lsl 24)

let write32 t addr v =
  ensure t (addr + 4);
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF));
  Bytes.unsafe_set t.data (addr + 1) (Char.unsafe_chr ((v lsr 8) land 0xFF));
  Bytes.unsafe_set t.data (addr + 2) (Char.unsafe_chr ((v lsr 16) land 0xFF));
  Bytes.unsafe_set t.data (addr + 3) (Char.unsafe_chr ((v lsr 24) land 0xFF))

let read64 t addr =
  Int64.logor
    (Int64.of_int (read32 t addr))
    (Int64.shift_left (Int64.of_int (read32 t (addr + 4))) 32)

let write64 t addr v =
  write32 t addr (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  write32 t (addr + 4) (Int64.to_int (Int64.shift_right_logical v 32))

let read_float t addr = Int64.float_of_bits (read64 t addr)
let write_float t addr v = write64 t addr (Int64.bits_of_float v)

(* Highest physical address ever written + 1; a cheap memory-footprint
   statistic for the space-overhead tables. *)
let high_water t = t.high_water
