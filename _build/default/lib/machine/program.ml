(* A linked program: instructions with resolved labels, plus the data-section
   layout the loader must establish.

   Code lives outside simulated memory (the CPU interprets the structured
   instruction array); only its encoded byte size is accounted, via
   [Encode]. Data ranges are mapped and initialised by the simulated OS at
   load time. *)

type datum = {
  label : string;      (* symbolic name, for debugging *)
  addr : int;          (* linear address *)
  size : int;          (* bytes *)
  init : string option (* initial contents; None = zero-filled *)
}

type t = {
  code : Insn.t array;
  labels : (string, int) Hashtbl.t; (* label -> instruction index *)
  entry : string;
  data : datum list;
  data_bytes : int;   (* total initialised + bss data size *)
}

exception Link_error of string

(* Build a program from an instruction list: index every [Label] and check
   that all jump/call targets resolve. *)
let link ?(entry = "main") ?(data = []) insns =
  let code = Array.of_list insns in
  let labels = Hashtbl.create 97 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l ->
        if Hashtbl.mem labels l then
          raise (Link_error (Printf.sprintf "duplicate label %S" l));
        Hashtbl.add labels l i
      | _ -> ())
    code;
  let require l =
    if not (Hashtbl.mem labels l) then
      raise (Link_error (Printf.sprintf "undefined label %S" l))
  in
  Array.iter
    (fun insn ->
      match insn with
      | Insn.Jmp l | Insn.Jcc (_, l) | Insn.Call l -> require l
      | _ -> ())
    code;
  require entry;
  let data_bytes = List.fold_left (fun acc d -> acc + d.size) 0 data in
  { code; labels; entry; data; data_bytes }

let resolve t label =
  match Hashtbl.find_opt t.labels label with
  | Some i -> i
  | None -> raise (Link_error (Printf.sprintf "undefined label %S" label))

let code_size t = Encode.code_size t.code
let insn_count t = Array.length t.code

let pp ppf t =
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l -> Fmt.pf ppf "%s:@." l
      | _ -> Fmt.pf ppf "  %4d  %a@." i Insn.pp insn)
    t.code
