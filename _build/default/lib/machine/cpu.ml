(* The CPU: a fetch/decode/execute interpreter over a linked [Program],
   with cycle accounting from [Cost_model] and every data access translated
   through the segmentation/paging [Mmu].

   Design notes:
   - Return addresses are instruction indices pushed on the simulated stack.
     CALL/RET access the stack through the flat DS segment rather than SS:
     the OS initialises SS = DS (flat), so this is semantically identical,
     and it keeps CALL/RET working in the 4-segment-register configuration
     where the Cash backend temporarily repurposes SS inside loops (§3.7).
   - PUSH/POP use SS, as on hardware; the 4-register Cash configuration
     rewrites them into MOV/SUB with explicit DS overrides at codegen time,
     exactly as the paper describes.
   - Labels whose name starts with "__stat_" are zero-cost dynamic counters:
     executing one bumps a named counter. The harness uses these to measure
     dynamic software-check and spilled-loop-iteration frequencies without
     perturbing cycle counts. *)

type status =
  | Running
  | Halted
  | Faulted of Seghw.Fault.t

type t = {
  regs : Registers.t;
  mmu : Seghw.Mmu.t;
  phys : Phys_mem.t;
  costs : Cost_model.t;
  program : Program.t;
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable ovf : bool;
  mutable cycles : int;
  mutable insns_executed : int;
  mutable status : status;
  mutable kernel : t -> gate:[ `Gate of Seghw.Selector.t | `Int of int ] -> unit;
  externals : (string, t -> unit) Hashtbl.t;
  stat_counters : (string, int ref) Hashtbl.t;
}

exception Out_of_fuel

let create ~mmu ~phys ~costs ~program =
  {
    regs = Registers.create ();
    mmu;
    phys;
    costs;
    program;
    eip = Program.resolve program program.Program.entry;
    zf = false;
    sf = false;
    cf = false;
    ovf = false;
    cycles = 0;
    insns_executed = 0;
    status = Running;
    kernel = (fun _ ~gate:_ -> Seghw.Fault.gp "no kernel installed");
    externals = Hashtbl.create 31;
    stat_counters = Hashtbl.create 31;
  }

let set_kernel t k = t.kernel <- k
let register_external t name f = Hashtbl.replace t.externals name f
let add_cycles t n = t.cycles <- t.cycles + n
let cycles t = t.cycles
let insns_executed t = t.insns_executed
let status t = t.status
let regs t = t.regs
let mmu t = t.mmu
let phys t = t.phys
let program t = t.program

let stat t name =
  match Hashtbl.find_opt t.stat_counters name with
  | Some r -> !r
  | None -> 0

let stats t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.stat_counters []

let bump_stat t name =
  match Hashtbl.find_opt t.stat_counters name with
  | Some r -> incr r
  | None -> Hashtbl.add t.stat_counters name (ref 1)

(* --- memory access through segmentation ------------------------------- *)

let default_seg (m : Insn.mem) =
  match m.Insn.seg with
  | Some s -> s
  | None ->
    (match m.Insn.base with
     | Some Registers.EBP | Some Registers.ESP -> Seghw.Segreg.SS
     | _ -> Seghw.Segreg.DS)

let effective_offset t (m : Insn.mem) =
  let base = match m.Insn.base with
    | Some r -> Registers.get t.regs r
    | None -> 0
  in
  let index = match m.Insn.index with
    | Some (r, scale) -> Registers.get t.regs r * scale
    | None -> 0
  in
  (base + index + m.Insn.disp) land 0xFFFFFFFF

let load_mem t (m : Insn.mem) ~width =
  let size = Insn.width_bytes width in
  let offset = effective_offset t m in
  let phys_addr =
    Seghw.Mmu.translate t.mmu ~seg_name:(default_seg m) ~offset ~size
      ~write:false
  in
  match width with
  | Insn.Byte -> Phys_mem.read8 t.phys phys_addr
  | Insn.Word -> Phys_mem.read16 t.phys phys_addr
  | Insn.Long -> Phys_mem.read32 t.phys phys_addr

let store_mem t (m : Insn.mem) ~width v =
  let size = Insn.width_bytes width in
  let offset = effective_offset t m in
  let phys_addr =
    Seghw.Mmu.translate t.mmu ~seg_name:(default_seg m) ~offset ~size
      ~write:true
  in
  match width with
  | Insn.Byte -> Phys_mem.write8 t.phys phys_addr v
  | Insn.Word -> Phys_mem.write16 t.phys phys_addr v
  | Insn.Long -> Phys_mem.write32 t.phys phys_addr v

let load_f64 t (m : Insn.mem) =
  let offset = effective_offset t m in
  let phys_addr =
    Seghw.Mmu.translate t.mmu ~seg_name:(default_seg m) ~offset ~size:8
      ~write:false
  in
  Phys_mem.read_float t.phys phys_addr

let store_f64 t (m : Insn.mem) v =
  let offset = effective_offset t m in
  let phys_addr =
    Seghw.Mmu.translate t.mmu ~seg_name:(default_seg m) ~offset ~size:8
      ~write:true
  in
  Phys_mem.write_float t.phys phys_addr v

let read_operand t (o : Insn.operand) ~width =
  match o with
  | Insn.Reg r ->
    let v = Registers.get t.regs r in
    (match width with
     | Insn.Long -> v
     | Insn.Word -> v land 0xFFFF
     | Insn.Byte -> v land 0xFF)
  | Insn.Imm i -> i land 0xFFFFFFFF
  | Insn.Mem m -> load_mem t m ~width

let write_operand t (o : Insn.operand) ~width v =
  match o with
  | Insn.Reg r ->
    (match width with
     | Insn.Long -> Registers.set t.regs r v
     | Insn.Word ->
       let old = Registers.get t.regs r in
       Registers.set t.regs r ((old land 0xFFFF0000) lor (v land 0xFFFF))
     | Insn.Byte ->
       let old = Registers.get t.regs r in
       Registers.set t.regs r ((old land 0xFFFFFF00) lor (v land 0xFF)))
  | Insn.Mem m -> store_mem t m ~width v
  | Insn.Imm _ -> Seghw.Fault.ud "write to immediate operand"

let read_fsrc t = function
  | Insn.Freg r -> Registers.getf t.regs r
  | Insn.Fmem m -> load_f64 t m

(* --- flags ------------------------------------------------------------ *)

let sign32 v = v land 0x80000000 <> 0

let set_flags_result t r =
  let r = r land 0xFFFFFFFF in
  t.zf <- r = 0;
  t.sf <- sign32 r

let set_flags_sub t a b =
  let a = a land 0xFFFFFFFF and b = b land 0xFFFFFFFF in
  let r = (a - b) land 0xFFFFFFFF in
  t.cf <- a < b;
  t.zf <- r = 0;
  t.sf <- sign32 r;
  t.ovf <- sign32 a <> sign32 b && sign32 r <> sign32 a

let set_flags_add t a b =
  let a = a land 0xFFFFFFFF and b = b land 0xFFFFFFFF in
  let r = a + b in
  t.cf <- r > 0xFFFFFFFF;
  let r = r land 0xFFFFFFFF in
  t.zf <- r = 0;
  t.sf <- sign32 r;
  t.ovf <- sign32 a = sign32 b && sign32 r <> sign32 a

let set_flags_logic t r =
  t.cf <- false;
  t.ovf <- false;
  set_flags_result t r

let cond_holds t (c : Insn.cond) =
  match c with
  | Insn.Eq -> t.zf
  | Insn.Ne -> not t.zf
  | Insn.Lt -> t.sf <> t.ovf
  | Insn.Le -> t.zf || t.sf <> t.ovf
  | Insn.Gt -> (not t.zf) && t.sf = t.ovf
  | Insn.Ge -> t.sf = t.ovf
  | Insn.Below -> t.cf
  | Insn.Below_eq -> t.cf || t.zf
  | Insn.Above -> (not t.cf) && not t.zf
  | Insn.Above_eq -> not t.cf

(* --- stack helpers ----------------------------------------------------- *)

let push32 t v ~seg =
  let esp = (Registers.get t.regs Registers.ESP - 4) land 0xFFFFFFFF in
  Registers.set t.regs Registers.ESP esp;
  let phys_addr =
    Seghw.Mmu.translate t.mmu ~seg_name:seg ~offset:esp ~size:4 ~write:true
  in
  Phys_mem.write32 t.phys phys_addr v

let pop32 t ~seg =
  let esp = Registers.get t.regs Registers.ESP in
  let phys_addr =
    Seghw.Mmu.translate t.mmu ~seg_name:seg ~offset:esp ~size:4 ~write:false
  in
  let v = Phys_mem.read32 t.phys phys_addr in
  Registers.set t.regs Registers.ESP ((esp + 4) land 0xFFFFFFFF);
  v

(* Read the [n]th 32-bit argument of a Callext host routine (0-based;
   arguments were pushed cdecl so arg 0 sits at [ESP]). *)
let arg_int t n =
  let esp = Registers.get t.regs Registers.ESP in
  let phys_addr =
    Seghw.Mmu.translate t.mmu ~seg_name:Seghw.Segreg.DS
      ~offset:((esp + (4 * n)) land 0xFFFFFFFF)
      ~size:4 ~write:false
  in
  Phys_mem.read32 t.phys phys_addr

let arg_float t n =
  let esp = Registers.get t.regs Registers.ESP in
  let phys_addr =
    Seghw.Mmu.translate t.mmu ~seg_name:Seghw.Segreg.DS
      ~offset:((esp + (4 * n)) land 0xFFFFFFFF)
      ~size:8 ~write:false
  in
  Phys_mem.read_float t.phys phys_addr

let return_int t v = Registers.set t.regs Registers.EAX v
let return_float t v = Registers.setf t.regs Registers.XMM0 v

(* --- execution --------------------------------------------------------- *)

(* Allocation-free prefix test for "__stat_" (this runs on every executed
   label, including hot loop heads). *)
let is_stat_label l =
  String.length l >= 7
  && String.unsafe_get l 0 = '_'
  && String.unsafe_get l 1 = '_'
  && String.unsafe_get l 2 = 's'
  && String.unsafe_get l 3 = 't'
  && String.unsafe_get l 4 = 'a'
  && String.unsafe_get l 5 = 't'
  && String.unsafe_get l 6 = '_'

let exec t (i : Insn.t) =
  let next = t.eip + 1 in
  (match i with
   | Insn.Label l -> if is_stat_label l then bump_stat t l
   | Insn.Nop -> ()
   | Insn.Halt -> t.status <- Halted
   | Insn.Mov (w, dst, src) ->
     write_operand t dst ~width:w (read_operand t src ~width:w)
   | Insn.Lea (r, m) -> Registers.set t.regs r (effective_offset t m)
   | Insn.Movsx (r, src, w) ->
     let v = read_operand t src ~width:w in
     let v =
       match w with
       | Insn.Byte -> if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
       | Insn.Word -> if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v
       | Insn.Long -> v
     in
     Registers.set t.regs r v
   | Insn.Movzx (r, src, w) ->
     Registers.set t.regs r (read_operand t src ~width:w)
   | Insn.Alu (op, dst, src) ->
     let a = read_operand t dst ~width:Insn.Long in
     let b = read_operand t src ~width:Insn.Long in
     let r =
       match op with
       | Insn.Add -> set_flags_add t a b; a + b
       | Insn.Sub -> set_flags_sub t a b; a - b
       | Insn.And -> let r = a land b in set_flags_logic t r; r
       | Insn.Or -> let r = a lor b in set_flags_logic t r; r
       | Insn.Xor -> let r = a lxor b in set_flags_logic t r; r
       | Insn.Imul ->
         let r = Registers.to_signed a * Registers.to_signed b in
         set_flags_logic t r; r
       | Insn.Shl -> let r = a lsl (b land 31) in set_flags_logic t r; r
       | Insn.Shr -> let r = a lsr (b land 31) in set_flags_logic t r; r
       | Insn.Sar ->
         let r = Registers.to_signed a asr (b land 31) in
         set_flags_logic t r; r
     in
     write_operand t dst ~width:Insn.Long r
   | Insn.Idiv src ->
     let a = Registers.to_signed (Registers.get t.regs Registers.EAX) in
     let b = Registers.to_signed (read_operand t src ~width:Insn.Long) in
     if b = 0 then Seghw.Fault.ud "integer division by zero";
     let q = a / b and r = a mod b in
     Registers.set t.regs Registers.EAX (Registers.of_signed q);
     Registers.set t.regs Registers.EDX (Registers.of_signed r)
   | Insn.Neg o ->
     let v = read_operand t o ~width:Insn.Long in
     set_flags_sub t 0 v;
     write_operand t o ~width:Insn.Long (-v)
   | Insn.Inc o ->
     let v = read_operand t o ~width:Insn.Long in
     let r = v + 1 in
     set_flags_result t r;
     t.ovf <- v land 0xFFFFFFFF = 0x7FFFFFFF;
     write_operand t o ~width:Insn.Long r
   | Insn.Dec o ->
     let v = read_operand t o ~width:Insn.Long in
     let r = v - 1 in
     set_flags_result t r;
     t.ovf <- v land 0xFFFFFFFF = 0x80000000;
     write_operand t o ~width:Insn.Long r
   | Insn.Cmp (a, b) ->
     set_flags_sub t
       (read_operand t a ~width:Insn.Long)
       (read_operand t b ~width:Insn.Long)
   | Insn.Test (a, b) ->
     set_flags_logic t
       (read_operand t a ~width:Insn.Long
        land read_operand t b ~width:Insn.Long)
   | Insn.Setcc (c, r) ->
     Registers.set t.regs r (if cond_holds t c then 1 else 0)
   | Insn.Fmov (dst, src) ->
     let v = read_fsrc t src in
     (match dst with
      | Insn.Freg r -> Registers.setf t.regs r v
      | Insn.Fmem m -> store_f64 t m v)
   | Insn.Fload_const (r, f) -> Registers.setf t.regs r f
   | Insn.Falu (op, dst, src) ->
     let a = Registers.getf t.regs dst in
     let b = read_fsrc t src in
     let r =
       match op with
       | Insn.Fadd -> a +. b
       | Insn.Fsub -> a -. b
       | Insn.Fmul -> a *. b
       | Insn.Fdiv -> a /. b
     in
     Registers.setf t.regs dst r
   | Insn.Fcmp (a, src) ->
     (* comisd: ZF/CF as for an unsigned compare; OF/SF cleared *)
     let x = Registers.getf t.regs a in
     let y = read_fsrc t src in
     t.ovf <- false;
     t.sf <- false;
     t.zf <- x = y;
     t.cf <- x < y
   | Insn.Fneg r -> Registers.setf t.regs r (-.Registers.getf t.regs r)
   | Insn.Fsqrt (d, src) -> Registers.setf t.regs d (sqrt (read_fsrc t src))
   | Insn.Cvtsi2sd (d, src) ->
     Registers.setf t.regs d
       (float_of_int (Registers.to_signed (read_operand t src ~width:Insn.Long)))
   | Insn.Cvtsd2si (d, src) ->
     let f = read_fsrc t src in
     Registers.set t.regs d (Registers.of_signed (truncate f))
   | Insn.Jmp l ->
     t.eip <- Program.resolve t.program l;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit (* handled by caller: eip already set *)
   | Insn.Jcc (c, l) ->
     if cond_holds t c then begin
       t.eip <- Program.resolve t.program l;
       t.insns_executed <- t.insns_executed + 1;
       t.cycles <- t.cycles + Cost_model.cost t.costs i;
       raise Exit
     end
   | Insn.Call l ->
     push32 t next ~seg:Seghw.Segreg.DS;
     t.eip <- Program.resolve t.program l;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit
   | Insn.Ret ->
     let ra = pop32 t ~seg:Seghw.Segreg.DS in
     t.eip <- ra;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit
   | Insn.Push o ->
     push32 t (read_operand t o ~width:Insn.Long) ~seg:Seghw.Segreg.SS
   | Insn.Pop o ->
     write_operand t o ~width:Insn.Long (pop32 t ~seg:Seghw.Segreg.SS)
   | Insn.Mov_to_seg (name, o) ->
     let sel = Seghw.Selector.of_int (read_operand t o ~width:Insn.Word) in
     Seghw.Mmu.load_segreg t.mmu name sel
   | Insn.Mov_from_seg (o, name) ->
     write_operand t o ~width:Insn.Word
       (Seghw.Selector.to_int (Seghw.Mmu.read_segreg t.mmu name))
   | Insn.Lcall_gate sel -> t.kernel t ~gate:(`Gate sel)
   | Insn.Int_syscall n -> t.kernel t ~gate:(`Int n)
   | Insn.Bound (r, m) ->
     (* bound r32, m32&32: lower word at [m], upper at [m+4]; the checked
        value must satisfy lower <= r <= upper, else #BR. *)
     let v = Registers.to_signed (Registers.get t.regs r) in
     let lower = Registers.to_signed (load_mem t m ~width:Insn.Long) in
     let upper =
       Registers.to_signed
         (load_mem t { m with Insn.disp = m.Insn.disp + 4 } ~width:Insn.Long)
     in
     if v < lower || v > upper then
       Seghw.Fault.br
         (Printf.sprintf "bound: %d not in [%d, %d]" v lower upper)
   | Insn.Callext name ->
     (match Hashtbl.find_opt t.externals name with
      | Some f -> f t
      | None ->
        Seghw.Fault.ud (Printf.sprintf "undefined external %S" name)));
  t.eip <- next;
  t.insns_executed <- t.insns_executed + 1;
  t.cycles <- t.cycles + Cost_model.cost t.costs i

let step t =
  if t.status = Running then begin
    if t.eip < 0 || t.eip >= Array.length t.program.Program.code then
      Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" t.eip);
    let i = t.program.Program.code.(t.eip) in
    try exec t i with
    | Exit -> () (* control transfer already applied *)
  end

(* Run until halt, fault, or fuel exhaustion. Returns the final status. *)
let run ?(fuel = 4_000_000_000) t =
  (try
     while t.status = Running do
       if t.insns_executed > fuel then raise Out_of_fuel;
       step t
     done
   with Seghw.Fault.Fault f -> t.status <- Faulted f);
  t.status
