(** Instruction byte-size estimation for the binary-size experiments
    (Tables 2 and 6): realistic IA-32 encodings — opcode bytes, ModRM,
    SIB, disp8/disp32, imm8/imm32, and the +1-byte segment-override
    prefix every Cash-generated override costs. *)

(** Estimated encoded size of one instruction, in bytes. Pseudo
    instructions ([Label]) are free. *)
val size : Insn.t -> int

(** Total encoded size of an instruction sequence. *)
val code_size : Insn.t array -> int
