lib/cashrt/seg_cache.ml: List
