lib/cashrt/segment_pool.ml: List Printf Seghw
