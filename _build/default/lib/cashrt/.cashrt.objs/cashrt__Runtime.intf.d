lib/cashrt/runtime.mli: Machine Osim Seg_cache Segment_pool
