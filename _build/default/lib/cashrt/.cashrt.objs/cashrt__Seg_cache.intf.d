lib/cashrt/seg_cache.mli:
