lib/cashrt/segment_pool.mli:
