lib/cashrt/runtime.ml: Machine Osim Seg_cache Seghw Segment_pool
