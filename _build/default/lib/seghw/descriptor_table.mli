(** Descriptor tables: the GDT (shared across processes) and the
    per-process LDTs, each holding up to 8192 descriptors. GDT entry 0 is
    the architectural null descriptor; Cash reserves LDT entry 0 for its
    call gate, leaving 8191 entries for array segments (§3.4). *)

type kind = Gdt_table | Ldt_table

type t

val capacity : int
(** 8192, the 13-bit selector index space. *)

val create : kind -> t
val kind : t -> kind

(** [set t i d] installs a descriptor. Raises [#GP] ({!Fault.Fault}) for
    out-of-range indices or GDT entry 0. *)
val set : t -> int -> Descriptor.t -> unit

val clear : t -> int -> unit

(** [get t i] reads an entry without the fault semantics of a hardware
    lookup (for inspection and tests). *)
val get : t -> int -> Descriptor.t option

(** Lookup as performed during a segment-register load: raises [#GP] on
    an empty entry and [#NP] on a not-present descriptor. *)
val lookup_exn : t -> int -> Descriptor.t

val live_count : t -> int
val iteri : (int -> Descriptor.t -> unit) -> t -> unit
