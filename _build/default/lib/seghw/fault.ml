(* Processor faults raised by the simulated segmentation/paging hardware.

   These mirror the x86 exception vectors that matter for Cash: the
   general-protection fault (#GP) raised on segment-limit violations, the
   stack fault (#SS), the page fault (#PF), segment-not-present (#NP) and
   invalid-opcode (#UD). A segment-limit violation through a data segment
   raises #GP; through SS it raises #SS, exactly as on real hardware. *)

type t =
  | General_protection of string  (** #GP: limit violation, null selector use,
                                      privilege violation, bad descriptor. *)
  | Stack_fault of string         (** #SS: limit violation through SS. *)
  | Page_fault of { linear : int; write : bool }
                                  (** #PF: unmapped linear address. *)
  | Not_present of int            (** #NP: descriptor with P=0; payload is the
                                      selector value. *)
  | Invalid_opcode of string      (** #UD. *)
  | Bound_range of string         (** #BR: raised by the [bound] instruction. *)

exception Fault of t

let raise_fault t = raise (Fault t)

let gp msg = raise_fault (General_protection msg)
let ss msg = raise_fault (Stack_fault msg)
let pf ~linear ~write = raise_fault (Page_fault { linear; write })
let np selector = raise_fault (Not_present selector)
let ud msg = raise_fault (Invalid_opcode msg)
let br msg = raise_fault (Bound_range msg)

let to_string = function
  | General_protection m -> Printf.sprintf "#GP(%s)" m
  | Stack_fault m -> Printf.sprintf "#SS(%s)" m
  | Page_fault { linear; write } ->
    Printf.sprintf "#PF(linear=0x%08x, %s)" linear
      (if write then "write" else "read")
  | Not_present sel -> Printf.sprintf "#NP(selector=0x%04x)" sel
  | Invalid_opcode m -> Printf.sprintf "#UD(%s)" m
  | Bound_range m -> Printf.sprintf "#BR(%s)" m

let pp ppf t = Fmt.string ppf (to_string t)

(* Classify: is this fault the kind Cash uses to report an array bound
   violation (a segment-limit #GP/#SS or a #BR from software checks)? *)
let is_bound_violation = function
  | General_protection _ | Stack_fault _ | Bound_range _ -> true
  | Page_fault _ | Not_present _ | Invalid_opcode _ -> false
