(** Segment descriptors: the 8-byte GDT/LDT entries of the x86.

    A descriptor carries a 32-bit base, a 20-bit limit, the granularity
    bit G (G = 1 scales the limit by 4096 and ORs in 0xFFF — the source
    of Figure 2's lower-bound slack), a privilege level, a present bit,
    and a type. *)

type seg_type =
  | Data of { writable : bool }  (** expand-up data segment *)
  | Code of { readable : bool }
  | Call_gate of { handler : int; param_count : int }
      (** [handler] stands in for the target code offset; the simulated
          kernel dispatches on it (Cash's [cash_modify_ldt] gate). *)
  | Ldt_system

type t = {
  base : int;          (** 32-bit segment base linear address *)
  limit : int;         (** raw 20-bit limit field *)
  granularity : bool;  (** G bit: false = byte units, true = 4 KiB units *)
  dpl : int;           (** descriptor privilege level, 0..3 *)
  present : bool;
  seg_type : seg_type;
}

(** Largest limit expressible with G = 0 (2^20 - 1). *)
val max_byte_limit : int

(** [make ~base ~limit ~granularity ~dpl ~present ~seg_type] builds a
    descriptor. @raise Invalid_argument on out-of-range fields. *)
val make :
  base:int -> limit:int -> granularity:bool -> dpl:int -> present:bool ->
  seg_type:seg_type -> t

(** [for_array ~base ~size_bytes ~writable] builds the descriptor Cash
    allocates for an array (§3.5): byte-granular and exact for sizes up
    to 1 MiB; page-granular above, sized to the minimal multiple of
    4 KiB (the caller aligns the array's end with the segment's end). *)
val for_array : base:int -> size_bytes:int -> writable:bool -> t

(** Highest valid offset within the segment (the limit after granularity
    scaling). *)
val effective_limit : t -> int

(** Bytes covered by the segment, [effective_limit + 1]. *)
val byte_size : t -> int

val is_data : t -> bool
val is_code : t -> bool
val is_call_gate : t -> bool
val is_writable : t -> bool

(** The segment-limit check the hardware performs on every memory
    reference: a [size]-byte access at [offset] must lie inside
    [0, effective_limit]. Offsets are 32-bit unsigned, so wrapped
    negative offsets fail — this is Cash's lower-bound check. *)
val offset_ok : t -> offset:int -> size:int -> bool

(** Architectural 8-byte encoding (little-endian field layout of the
    IA-32 descriptor). [decode] inverts [encode].
    @raise Invalid_argument on a malformed 8-byte string. *)
val encode : t -> string

val decode : string -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
