(** A direct-mapped translation lookaside buffer over {!Paging}, with
    hit/miss counters. *)

type t

(** [create ?size ()] builds a TLB with [size] slots (default 64).
    @raise Invalid_argument unless [size] is a positive power of two. *)
val create : ?size:int -> unit -> t

(** [lookup t ~page ~write] returns the cached frame, or [None] on a miss
    — including a write probing a read-only entry. Updates counters. *)
val lookup : t -> page:int -> write:bool -> int option

val insert : t -> page:int -> frame:int -> writable:bool -> unit
val invalidate_page : t -> page:int -> unit

(** Full flush, as on a CR3 reload. *)
val flush : t -> unit

val hits : t -> int
val misses : t -> int
