(** Processor faults raised by the simulated segmentation/paging hardware.

    These mirror the x86 exception vectors Cash interacts with: a
    segment-limit violation through a data segment raises [#GP]; through
    SS it raises [#SS]; the [bound] instruction raises [#BR]; unmapped
    pages raise [#PF]. *)

type t =
  | General_protection of string
      (** #GP: limit violation, null-selector use, privilege violation,
          bad descriptor. *)
  | Stack_fault of string  (** #SS: limit violation through SS. *)
  | Page_fault of { linear : int; write : bool }
      (** #PF: unmapped linear address or write to a read-only page. *)
  | Not_present of int
      (** #NP: descriptor with P = 0; payload is the selector value. *)
  | Invalid_opcode of string  (** #UD. *)
  | Bound_range of string  (** #BR: raised by the [bound] instruction. *)

exception Fault of t

(** [raise_fault t] raises {!Fault}. The shorthands below build the
    payload and raise in one step. *)
val raise_fault : t -> 'a

val gp : string -> 'a
val ss : string -> 'a
val pf : linear:int -> write:bool -> 'a
val np : int -> 'a
val ud : string -> 'a
val br : string -> 'a

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** Is this fault the kind Cash uses to report an array bound violation
    (segment-limit #GP/#SS, or #BR from software checks)? *)
val is_bound_violation : t -> bool
