(** 16-bit x86 segment selectors.

    Layout (Intel SDM Vol. 3, §3.4.2): bits 15..3 index into the GDT or
    LDT, bit 2 is the table indicator, bits 1..0 the requested privilege
    level. A GDT selector with index 0 is the null selector. *)

type table = Gdt | Ldt

type t

(** [make ~index ~table ~rpl] builds a selector.
    @raise Invalid_argument if [index] is outside 0..8191 or [rpl]
    outside 0..3. *)
val make : index:int -> table:table -> rpl:int -> t

(** [of_int v] views a raw 16-bit value as a selector.
    @raise Invalid_argument if [v] is not a 16-bit value. *)
val of_int : int -> t

val to_int : t -> int
val index : t -> int
val table : t -> table
val rpl : t -> int

(** The null selector (GDT index 0, RPL 0). *)
val null : t

(** [is_null t] is true for any GDT-index-0 selector, regardless of RPL:
    loading one into ES/FS/GS is legal, using it to access memory
    faults. *)
val is_null : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
