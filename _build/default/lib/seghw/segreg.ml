(* Segment registers with their hidden descriptor caches.

   Every x86 segment register has a visible part (the 16-bit selector) and a
   hidden part — a cache of the base, limit, and access rights copied from
   the descriptor at load time (§3.1 of the paper). Address translation uses
   only the cached copy; modifying the descriptor table does *not* affect a
   register already loaded. The simulator preserves this property because
   Cash's 3-entry segment-reuse cache depends on it being safe to leave
   stale selectors loaded. *)

type name = CS | SS | DS | ES | FS | GS

let name_to_string = function
  | CS -> "CS" | SS -> "SS" | DS -> "DS" | ES -> "ES" | FS -> "FS" | GS -> "GS"

let all_names = [ CS; SS; DS; ES; FS; GS ]

type t = {
  mutable selector : Selector.t;
  mutable cache : Descriptor.t option;
      (* None = loaded with the null selector (or never loaded). *)
}

let create () = { selector = Selector.null; cache = None }

let selector t = t.selector
let cached_descriptor t = t.cache
let is_null t = t.cache = None

(* Load a segment register: copies the descriptor into the hidden cache.
   [name] determines the architectural rules: CS and SS reject the null
   selector with #GP; data registers accept it but fault later on use. *)
let load t ~name ~selector ~descriptor =
  (match name, descriptor with
   | (CS | SS), None ->
     Fault.gp
       (Printf.sprintf "loading null selector into %s" (name_to_string name))
   | _, _ -> ());
  (match name, descriptor with
   | CS, Some d when not (Descriptor.is_code d) ->
     Fault.gp "loading non-code descriptor into CS"
   | SS, Some d when not (Descriptor.is_writable d) ->
     Fault.gp "loading non-writable descriptor into SS"
   | (DS | ES | FS | GS), Some d when Descriptor.is_call_gate d ->
     Fault.gp "loading call gate into a data segment register"
   | _ -> ());
  t.selector <- selector;
  t.cache <- descriptor

(* The per-access check (Figure 1's first stage): verify the offset against
   the cached limit and translate to a linear address. [stack] selects #SS
   instead of #GP on violation. *)
let translate t ~name ~offset ~size ~write ~stack =
  match t.cache with
  | None ->
    Fault.gp
      (Printf.sprintf "memory access through null %s" (name_to_string name))
  | Some d ->
    if write && not (Descriptor.is_writable d) then
      Fault.gp (Printf.sprintf "write through read-only %s"
                  (name_to_string name));
    if not (Descriptor.offset_ok d ~offset ~size) then begin
      let msg =
        Printf.sprintf
          "segment limit violation: %s offset=0x%x size=%d limit=0x%x"
          (name_to_string name) (offset land 0xFFFFFFFF) size
          (Descriptor.effective_limit d)
      in
      if stack then Fault.ss msg else Fault.gp msg
    end;
    (d.Descriptor.base + (offset land 0xFFFFFFFF)) land 0xFFFFFFFF

let pp ppf t =
  match t.cache with
  | None -> Fmt.pf ppf "%a -> null" Selector.pp t.selector
  | Some d -> Fmt.pf ppf "%a -> %a" Selector.pp t.selector Descriptor.pp d
