lib/seghw/selector.ml: Fmt Printf
