lib/seghw/segreg.ml: Descriptor Fault Fmt Printf Selector
