lib/seghw/paging.mli:
