lib/seghw/descriptor_table.mli: Descriptor
