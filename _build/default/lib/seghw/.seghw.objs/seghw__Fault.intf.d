lib/seghw/fault.mli: Format
