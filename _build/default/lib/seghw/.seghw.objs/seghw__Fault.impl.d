lib/seghw/fault.ml: Fmt Printf
