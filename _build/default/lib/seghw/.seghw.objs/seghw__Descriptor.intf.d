lib/seghw/descriptor.mli: Format
