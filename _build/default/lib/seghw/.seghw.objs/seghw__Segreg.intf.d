lib/seghw/segreg.mli: Descriptor Format Selector
