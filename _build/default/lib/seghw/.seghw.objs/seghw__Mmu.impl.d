lib/seghw/mmu.ml: Descriptor_table Paging Segreg Selector Tlb
