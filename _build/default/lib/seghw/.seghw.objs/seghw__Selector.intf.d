lib/seghw/selector.mli: Format
