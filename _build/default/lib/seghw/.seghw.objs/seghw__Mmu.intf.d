lib/seghw/mmu.mli: Descriptor_table Paging Segreg Selector Tlb
