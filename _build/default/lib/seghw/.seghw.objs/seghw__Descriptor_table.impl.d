lib/seghw/descriptor_table.ml: Array Descriptor Fault Printf Selector
