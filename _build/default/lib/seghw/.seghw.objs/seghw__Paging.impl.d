lib/seghw/paging.ml: Array Fault
