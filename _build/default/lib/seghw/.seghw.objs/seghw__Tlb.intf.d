lib/seghw/tlb.mli:
