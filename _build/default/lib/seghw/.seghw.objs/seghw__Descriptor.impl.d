lib/seghw/descriptor.ml: Bytes Char Fmt Printf String
