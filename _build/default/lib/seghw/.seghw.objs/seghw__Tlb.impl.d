lib/seghw/tlb.ml: Array
