(* A small direct-mapped translation lookaside buffer.

   Caches linear-page -> physical-frame translations to skip the two-level
   walk on hits. The simulator tracks hit/miss counts so tests can verify
   that invalidation works and benchmarks can report locality effects. *)

type entry = { tag : int; frame : int; writable : bool }

type t = {
  slots : entry option array;
  size : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(size = 64) () =
  if size <= 0 || size land (size - 1) <> 0 then
    invalid_arg "Tlb.create: size must be a positive power of two";
  { slots = Array.make size None; size; hits = 0; misses = 0 }

let slot t page = page land (t.size - 1)

(* Look up the frame for [page] (a linear page number). *)
let lookup t ~page ~write =
  match t.slots.(slot t page) with
  | Some e when e.tag = page && ((not write) || e.writable) ->
    t.hits <- t.hits + 1;
    Some e.frame
  | _ ->
    t.misses <- t.misses + 1;
    None

let insert t ~page ~frame ~writable =
  t.slots.(slot t page) <- Some { tag = page; frame; writable }

let invalidate_page t ~page =
  match t.slots.(slot t page) with
  | Some e when e.tag = page -> t.slots.(slot t page) <- None
  | _ -> ()

(* Full flush, as on a CR3 reload. *)
let flush t = Array.fill t.slots 0 t.size None

let hits t = t.hits
let misses t = t.misses
