(* Descriptor tables: the GDT (shared) and per-process LDTs.

   Each table holds up to 8192 descriptors. Entry 0 of the GDT is
   architecturally unusable (the null descriptor); Cash additionally reserves
   entry 0 of each LDT for its fast-syscall call gate (§3.6), leaving 8191
   entries for array segments. *)

type kind = Gdt_table | Ldt_table

type t = {
  kind : kind;
  entries : Descriptor.t option array;
  mutable live : int; (* number of present entries, for statistics *)
}

let capacity = 8192

let create kind = { kind; entries = Array.make capacity None; live = 0 }

let kind t = t.kind

let check_index i =
  if i < 0 || i >= capacity then
    Fault.gp (Printf.sprintf "descriptor table index %d out of range" i)

(* Install a descriptor. Installing at GDT index 0 is rejected: that slot is
   the architectural null descriptor. *)
let set t i d =
  check_index i;
  if t.kind = Gdt_table && i = 0 then
    Fault.gp "cannot install a descriptor in GDT entry 0 (null descriptor)";
  (match t.entries.(i) with
   | None -> t.live <- t.live + 1
   | Some _ -> ());
  t.entries.(i) <- Some d

let clear t i =
  check_index i;
  (match t.entries.(i) with
   | Some _ -> t.live <- t.live - 1
   | None -> ());
  t.entries.(i) <- None

let get t i =
  check_index i;
  t.entries.(i)

(* Descriptor-table lookup as performed during a segment-register load:
   missing or absent descriptors fault. *)
let lookup_exn t i =
  check_index i;
  match t.entries.(i) with
  | None ->
    Fault.gp
      (Printf.sprintf "selector references empty %s entry %d"
         (match t.kind with Gdt_table -> "GDT" | Ldt_table -> "LDT")
         i)
  | Some d ->
    if not d.Descriptor.present then
      Fault.np (Selector.to_int (Selector.make ~index:i
                                   ~table:(match t.kind with
                                           | Gdt_table -> Selector.Gdt
                                           | Ldt_table -> Selector.Ldt)
                                   ~rpl:0));
    d

let live_count t = t.live

let iteri f t = Array.iteri (fun i d -> match d with
  | Some d -> f i d
  | None -> ()) t.entries
