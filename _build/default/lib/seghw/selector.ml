(* 16-bit segment selectors.

   Layout (Intel SDM Vol. 3, §3.4.2):
     bits 15..3  index into the GDT or LDT (13 bits, 0..8191)
     bit  2      TI: 0 = GDT, 1 = LDT
     bits 1..0   RPL: requested privilege level

   A selector with index 0 and TI = 0 is the null selector; it can be loaded
   into ES/FS/GS but any memory access through it faults. *)

type table = Gdt | Ldt

type t = int (* the raw 16-bit value *)

let make ~index ~table ~rpl =
  if index < 0 || index > 8191 then
    invalid_arg (Printf.sprintf "Selector.make: index %d out of range" index);
  if rpl < 0 || rpl > 3 then
    invalid_arg (Printf.sprintf "Selector.make: rpl %d out of range" rpl);
  (index lsl 3) lor (match table with Gdt -> 0 | Ldt -> 4) lor rpl

let of_int v =
  if v < 0 || v > 0xFFFF then
    invalid_arg (Printf.sprintf "Selector.of_int: 0x%x not a 16-bit value" v);
  v

let to_int t = t

let index t = t lsr 3
let table t = if t land 4 = 0 then Gdt else Ldt
let rpl t = t land 3

let null = 0

(* Both null-selector encodings (RPL bits may vary); index 0 in the GDT is
   reserved, so any GDT-index-0 selector is treated as null. *)
let is_null t = t lsr 2 = 0 && t land 4 = 0

let equal (a : t) (b : t) = a = b

let pp ppf t =
  Fmt.pf ppf "sel(0x%04x: idx=%d %s rpl=%d)" t (index t)
    (match table t with Gdt -> "GDT" | Ldt -> "LDT")
    (rpl t)
