(** Segment registers with their hidden descriptor caches.

    Each register has a visible selector and a hidden copy of the
    descriptor taken at load time (§3.1): translation uses only the
    cache, so modifying the LDT does not affect already-loaded registers
    — the property Cash's 3-entry segment-reuse cache relies on. *)

type name = CS | SS | DS | ES | FS | GS

val name_to_string : name -> string
val all_names : name list

type t

val create : unit -> t
val selector : t -> Selector.t
val cached_descriptor : t -> Descriptor.t option

(** Loaded with the null selector (or never loaded)? *)
val is_null : t -> bool

(** [load t ~name ~selector ~descriptor] performs a segment-register
    load. Architectural rules enforced: CS/SS reject the null selector
    with [#GP]; CS requires a code descriptor; SS requires a writable
    one; data registers reject call gates. *)
val load :
  t -> name:name -> selector:Selector.t -> descriptor:Descriptor.t option ->
  unit

(** The per-access check of Figure 1's first stage: verify [offset]
    against the cached limit and produce the linear address.
    Raises [#SS] instead of [#GP] when [stack] is set, [#GP] on writes
    through read-only segments, and [#GP] on use of a null register. *)
val translate :
  t -> name:name -> offset:int -> size:int -> write:bool -> stack:bool -> int

val pp : Format.formatter -> t -> unit
