(** The memory-management unit: Figure 1's full pipeline.

    logical (segment register + offset)
      → segment-limit & protection check → linear
      → TLB / two-level walk → physical

    Every data access of the simulated CPU goes through {!translate}, so
    the segment-limit check Cash exploits runs on every reference, as on
    real hardware. *)

type t

val create : gdt:Descriptor_table.t -> ldt:Descriptor_table.t -> t

val seg : t -> Segreg.name -> Segreg.t
val gdt : t -> Descriptor_table.t
val ldt : t -> Descriptor_table.t
val paging : t -> Paging.t
val tlb : t -> Tlb.t

(** Reload the LDTR: future segment loads resolve against the new
    table (already-loaded registers keep their descriptor caches). *)
val set_ldt : t -> Descriptor_table.t -> unit

(** Segment-register load: resolve [selector] through the GDT/LDT and
    fill the hidden cache. Null selectors load an empty cache for data
    registers and fault for CS/SS. *)
val load_segreg : t -> Segreg.name -> Selector.t -> unit

(** Read back the visible selector, as [MOV r, sreg] does. *)
val read_segreg : t -> Segreg.name -> Selector.t

(** Full logical-to-physical translation for a [size]-byte access; one
    segment-limit check plus a TLB lookup (or walk). *)
val translate :
  t -> seg_name:Segreg.name -> offset:int -> size:int -> write:bool -> int

(** Flat linear-to-physical translation, bypassing segmentation — used by
    the simulated kernel and loaders. *)
val translate_linear : t -> linear:int -> write:bool -> int

(** Demand-map all pages covering [linear, linear + size). *)
val map_range : t -> linear:int -> size:int -> writable:bool -> unit

(** Number of segment-limit checks performed so far. *)
val limit_checks : t -> int
