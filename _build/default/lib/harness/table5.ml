(* Table 5: macro-benchmark performance — GCC cycles, Cash and BCC
   overheads, with the paper's numbers alongside. Default (3-register)
   Cash configuration, as the paper used for the large applications. *)

let run () =
  let rows =
    List.map
      (fun (a : Workloads.Macro.app) ->
        let c = Runner.compare_backends a.Workloads.Macro.source in
        [
          a.Workloads.Macro.name;
          Report.kcycles (Runner.cycles c.Runner.gcc);
          Report.pct (Runner.cash_overhead c);
          Report.pct (Runner.bcc_overhead c);
          Report.pct a.Workloads.Macro.paper_cash_pct;
          Report.pct a.Workloads.Macro.paper_bcc_pct;
        ])
      (Workloads.Macro.table5_suite ())
  in
  Report.make ~title:"Table 5: macro-benchmark applications"
    ~headers:[ "Program"; "GCC"; "Cash"; "BCC"; "paper-Cash"; "paper-BCC" ]
    ~rows
    ~notes:
      [
        "Cash < BCC everywhere, and macro overheads exceed the micro \
         suite's (more spilled loops and per-array traffic), as in the \
         paper.";
      ]
    ()
