(* Shared measurement driver: compile one source under the three
   compilers, run each to completion, verify the outputs agree (the
   experiments are only meaningful on semantically identical binaries),
   and collect cycles, sizes, and check counts. *)

type measurement = {
  backend : Core.backend;
  compiled : Core.compiled;
  run : Core.run;
}

exception Disagreement of string

let measure ?fuel backend source =
  let compiled = Core.compile backend source in
  let run = Core.run ?fuel compiled in
  (match run.Core.status with
   | Core.Finished -> ()
   | Core.Bound_violation m ->
     raise (Disagreement (Printf.sprintf "bound violation under %s: %s"
                            (Core.backend_name backend) m))
   | Core.Crashed m ->
     raise (Disagreement (Printf.sprintf "crash under %s: %s"
                            (Core.backend_name backend) m)));
  { backend; compiled; run }

type comparison = {
  gcc : measurement;
  bcc : measurement;
  cash : measurement;
}

(* Compile and run under GCC, BCC, and the given Cash configuration;
   check all three outputs agree. *)
let compare_backends ?fuel ?(cash = Core.cash) source =
  let g = measure ?fuel Core.gcc source in
  let b = measure ?fuel Core.bcc source in
  let c = measure ?fuel cash source in
  if g.run.Core.output <> b.run.Core.output
     || g.run.Core.output <> c.run.Core.output
  then raise (Disagreement "backends produced different outputs");
  { gcc = g; bcc = b; cash = c }

let cycles m = m.run.Core.cycles
let output m = m.run.Core.output

let cash_overhead c = Report.overhead ~base:(cycles c.gcc) (cycles c.cash)
let bcc_overhead c = Report.overhead ~base:(cycles c.gcc) (cycles c.bcc)

let code_size m = (Core.static_info m.compiled).Core.code_bytes
let image_size m = (Core.static_info m.compiled).Core.image_bytes

let hw_sw_checks m =
  let i = Core.static_info m.compiled in
  (i.Core.hw_checks, i.Core.sw_checks)

(* Source line count, for the LoC columns of Tables 4 and 7. *)
let line_count source =
  List.length
    (List.filter
       (fun l -> String.trim l <> "")
       (String.split_on_char '\n' source))
