lib/harness/table7.ml: List Report Table4 Workloads
