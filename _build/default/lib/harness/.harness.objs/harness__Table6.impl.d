lib/harness/table6.ml: List Report Runner Workloads
