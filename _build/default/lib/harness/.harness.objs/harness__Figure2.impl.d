lib/harness/figure2.ml: Cashrt Core List Printf Report
