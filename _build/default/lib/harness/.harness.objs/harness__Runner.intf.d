lib/harness/runner.mli: Core
