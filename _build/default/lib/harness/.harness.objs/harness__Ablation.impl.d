lib/harness/ablation.ml: Core List Osim Printf Report Runner String Workloads
