lib/harness/table8.ml: Core List Osim Printf Report Runner Workloads
