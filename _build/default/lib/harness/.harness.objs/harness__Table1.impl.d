lib/harness/table1.ml: Core List Printf Report Runner Workloads
