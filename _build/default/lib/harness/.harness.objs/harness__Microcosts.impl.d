lib/harness/microcosts.ml: Cashrt Core List Machine Printf Report Workloads
