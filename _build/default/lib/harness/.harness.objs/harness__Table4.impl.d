lib/harness/table4.ml: Core List Minic Printf Report Runner Workloads
