lib/harness/runner.ml: Core List Printf Report String
