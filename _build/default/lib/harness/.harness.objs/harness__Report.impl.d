lib/harness/report.ml: Array Fmt List Printf String
