lib/harness/table2.ml: List Report Runner Workloads
