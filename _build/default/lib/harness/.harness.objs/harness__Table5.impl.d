lib/harness/table5.ml: List Report Runner Workloads
