lib/harness/table3.ml: Core List Report Runner Workloads
