(* Table 3: Cash overhead versus input size, for 2D FFT, Gaussian
   elimination, and matrix multiplication. The paper's claim: Cash's
   absolute overhead is independent of the data-set size, so the relative
   overhead shrinks as inputs grow. Paper sizes were 64..512; the
   simulator sweeps 16..96 (the largest costs ~100M simulated cycles) —
   the trend, not the absolute sizes, is the result. *)

let sizes = [ 16; 32; 64; 128 ]

let programs =
  [
    ("2D FFT", fun n -> Workloads.Micro.fft2d ~n ());
    ("Gaussian", fun n -> Workloads.Micro.gaussian ~n ());
    ("Matrix", fun n -> Workloads.Micro.matmul ~n ());
  ]

let run () =
  let rows =
    List.map
      (fun (name, make) ->
        name
        :: List.map
             (fun n ->
               let c =
                 Runner.compare_backends ~cash:(Core.cash_n 4) (make n)
               in
               Report.pct (Runner.cash_overhead c))
             sizes)
      programs
  in
  Report.make
    ~title:"Table 3: Cash overhead vs input size (4 segment registers)"
    ~headers:("Program" :: List.map string_of_int sizes)
    ~rows
    ~notes:
      [
        "paper (sizes 64-512): FFT 3.9->0.001%, Gaussian 5.7->0.3%, Matrix \
         2.2->0.1% — relative cost decreases with size.";
      ]
    ()
