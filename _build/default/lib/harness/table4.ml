(* Table 4: characteristics of the macro-benchmark applications — source
   lines, array-using loops, and loops that reference more than 3 distinct
   arrays (spilled loops), plus the dynamic fraction of loop iterations
   executed inside spilled loops (the parenthesised percentages). *)

let characteristics_row ~name ~source ~paper_loc =
  let compiled = Core.compile Core.cash source in
  let info = Core.static_info ~budget:3 compiled in
  let loops = info.Core.loops in
  (* dynamic spilled-iteration share from the zero-cost counters *)
  let run = Core.run compiled in
  let iters = Core.stat_sum run ~prefix:"__stat_iter_a_" in
  let spilled = Core.stat_sum run ~prefix:"__stat_iter_s_" in
  let dyn_pct =
    if iters = 0 then 0.0
    else 100.0 *. float_of_int spilled /. float_of_int iters
  in
  [
    name;
    Printf.sprintf "%d (paper %d)" (Runner.line_count source) paper_loc;
    string_of_int loops.Minic.Loop_analysis.array_using_loops;
    Printf.sprintf "%d (%.1f%%)" loops.Minic.Loop_analysis.spilled_loops
      dyn_pct;
  ]

let run () =
  let rows =
    List.map
      (fun (a : Workloads.Macro.app) ->
        characteristics_row ~name:a.Workloads.Macro.name
          ~source:a.Workloads.Macro.source
          ~paper_loc:a.Workloads.Macro.paper_loc)
      (Workloads.Macro.table5_suite ())
  in
  Report.make ~title:"Table 4: macro application characteristics"
    ~headers:
      [ "Program"; "Lines of Code"; "Array-Using Loops"; "> 3 Arrays (dyn %)" ]
    ~rows
    ~notes:
      [
        "LoC compares our miniature against the full application the paper \
         measured; loop columns describe our sources.";
        "dyn % = share of executed array-loop iterations inside spilled \
         loops, the paper's parenthesised numbers.";
      ]
    ()
