(* Table 1: micro-benchmark performance — GCC baseline cycles, Cash and
   BCC overheads, and static hardware/software check counts. The paper ran
   this experiment with four segment registers available ("In this
   experiment, Cash is able to use four segment registers. As a result,
   all software bound checks are eliminated"), so we use the 4-register
   configuration here; the 2- and 3-register points are in the ablation. *)

let run () =
  let rows =
    List.map
      (fun (k : Workloads.Micro.kernel) ->
        let c =
          Runner.compare_backends ~cash:(Core.cash_n 4)
            k.Workloads.Micro.source
        in
        let hw, sw = Runner.hw_sw_checks c.Runner.cash in
        [
          k.Workloads.Micro.name;
          Printf.sprintf "%d/%d" hw sw;
          Report.kcycles (Runner.cycles c.Runner.gcc);
          Report.pct (Runner.cash_overhead c);
          Report.pct (Runner.bcc_overhead c);
          Report.pct k.Workloads.Micro.paper_cash_pct;
          Report.pct k.Workloads.Micro.paper_bcc_pct;
        ])
      (Workloads.Micro.table1_suite ())
  in
  Report.make ~title:"Table 1: micro-benchmark kernels (4 segment registers)"
    ~headers:
      [ "Program"; "HW/SW"; "GCC"; "Cash"; "BCC"; "paper-Cash"; "paper-BCC" ]
    ~rows
    ~notes:
      [
        "GCC column is simulated cycles; Cash/BCC are overheads vs GCC.";
        "paper-* columns are the paper's Table 1 (P-III hardware, larger \
         inputs).";
        "BCC overheads are compressed vs the paper because the simulator's \
         baseline code generator is non-optimising (see EXPERIMENTS.md).";
      ]
    ()
