(** Shared measurement driver for the experiments: compile one source
    under several compilers, run each to completion, verify the outputs
    agree, and collect cycles, sizes, and check counts. *)

type measurement = {
  backend : Core.backend;
  compiled : Core.compiled;
  run : Core.run;
}

(** Raised when a run does not finish cleanly or outputs differ across
    backends — an experiment on semantically different binaries would be
    meaningless. *)
exception Disagreement of string

val measure : ?fuel:int -> Core.backend -> string -> measurement

type comparison = {
  gcc : measurement;
  bcc : measurement;
  cash : measurement;
}

(** Compile and run under GCC, BCC, and the given Cash configuration
    (default 3 registers); check all outputs agree. *)
val compare_backends :
  ?fuel:int -> ?cash:Core.backend -> string -> comparison

val cycles : measurement -> int
val output : measurement -> string
val cash_overhead : comparison -> float
val bcc_overhead : comparison -> float
val code_size : measurement -> int
val image_size : measurement -> int
val hw_sw_checks : measurement -> int * int

(** Non-blank source lines, for the LoC columns of Tables 4 and 7. *)
val line_count : string -> int
