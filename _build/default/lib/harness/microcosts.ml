(* The paper's published micro-costs (§3.6, §4.1, §4.5), measured on the
   simulator rather than asserted:

     per-program overhead       543 cycles (call gate + free list setup)
     per-array overhead         263 cycles (segment alloc, cache miss)
     per-array-use overhead       4 cycles (segment register load)
     cash_modify_ldt            253 cycles (call-gate kernel path)
     modify_ldt                 781 cycles (int 0x80 kernel path)

   plus the §4.5 statistics: Toast's segment-allocation traffic and
   3-entry cache hit ratio, and peak segment usage per suite. *)

let measure_per_program () =
  (* difference between an empty Cash program and an empty GCC program,
     minus the shared code: isolate the cash_startup cost *)
  let src = "int main() { return 0; }" in
  let g = Core.exec Core.gcc src in
  let c = Core.exec Core.cash src in
  c.Core.cycles - g.Core.cycles

let measure_per_array () =
  (* one extra global array adds one cash_seg_init call at startup *)
  let without = Core.exec Core.cash "int main() { return 0; }" in
  let with_ = Core.exec Core.cash "int a[16]; int main() { return 0; }" in
  with_.Core.cycles - without.Core.cycles

let measure_per_array_use () =
  Machine.Cost_model.pentium3.Machine.Cost_model.seg_load

let measure_ldt_paths () =
  let c = Machine.Cost_model.pentium3 in
  (c.Machine.Cost_model.call_gate, c.Machine.Cost_model.int_syscall)

(* §4.5: run Toast and report segment-allocation traffic and the 3-entry
   cache hit ratio (the paper: 415,659 requests, 53.8% hit ratio). *)
let toast_cache_stats () =
  let r = Core.exec Core.cash (Workloads.Macro.toast ()) in
  match r.Core.runtime with
  | None -> (0, 0, 0.0)
  | Some rt ->
    let cache = Cashrt.Runtime.cache rt in
    let hits = Cashrt.Seg_cache.hits cache in
    let total = (Cashrt.Runtime.stats rt).Cashrt.Runtime.seg_allocs in
    let ratio =
      if total = 0 then 0.0
      else 100.0 *. float_of_int hits /. float_of_int total
    in
    (total, hits, ratio)

(* §4.5: peak simultaneous segments per suite (paper: <=10 micro, 163
   macro, 292 network — all far below the 8191 budget). *)
let peak_segments sources =
  List.fold_left
    (fun acc src ->
      let r = Core.exec Core.cash src in
      match r.Core.runtime with
      | None -> acc
      | Some rt ->
        max acc (Cashrt.Segment_pool.peak_live (Cashrt.Runtime.pool rt)))
    0 sources

let run () =
  let gate, int80 = measure_ldt_paths () in
  let allocs, hits, ratio = toast_cache_stats () in
  let micro_peak =
    peak_segments
      (List.map
         (fun (k : Workloads.Micro.kernel) -> k.Workloads.Micro.source)
         (Workloads.Micro.table1_suite ()))
  in
  let net_peak =
    peak_segments
      (List.map
         (fun (a : Workloads.Netapps.app) -> a.Workloads.Netapps.source)
         (Workloads.Netapps.table8_suite ()))
  in
  Report.make ~title:"Micro-costs (measured on the simulator)"
    ~headers:[ "quantity"; "measured"; "paper" ]
    ~rows:
      [
        [ "per-program overhead (cycles)";
          string_of_int (measure_per_program ()); "543" ];
        [ "per-array overhead (cycles)";
          string_of_int (measure_per_array ()); "263" ];
        [ "per-array-use overhead (cycles)";
          string_of_int (measure_per_array_use ()); "4" ];
        [ "cash_modify_ldt (cycles)"; string_of_int gate; "253" ];
        [ "modify_ldt (cycles)"; string_of_int int80; "781" ];
        [ "Toast segment allocations"; string_of_int allocs; "415,659" ];
        [ "Toast cache hit ratio";
          Printf.sprintf "%.1f%% (%d hits)" ratio hits; "53.8%" ];
        [ "peak segments, micro suite"; string_of_int micro_peak; "<= 10" ];
        [ "peak segments, network suite"; string_of_int net_peak; "292" ];
      ]
    ~notes:
      [
        "Toast's absolute allocation count is scaled down with the input \
         (fewer frames); the cache behaviour (hit ratio near half or \
         better) is the reproduced property.";
      ]
    ()
