(* Table 6: binary code size of the macro suite. *)

let run () =
  let rows =
    List.map
      (fun (a : Workloads.Macro.app) ->
        let c = Runner.compare_backends a.Workloads.Macro.source in
        let g = Runner.code_size c.Runner.gcc in
        [
          a.Workloads.Macro.name;
          string_of_int g;
          Report.pct (Report.overhead ~base:g (Runner.code_size c.Runner.cash));
          Report.pct (Report.overhead ~base:g (Runner.code_size c.Runner.bcc));
        ])
      (Workloads.Macro.table5_suite ())
  in
  Report.make ~title:"Table 6: binary code size, macro suite"
    ~headers:[ "Program"; "GCC (bytes)"; "Cash"; "BCC" ]
    ~rows
    ~notes:[ "paper: Cash 30.6-61.8%, BCC 123.5-151.2%." ]
    ()
