(** Fixed-width text tables mirroring the paper's, with a notes section
    recording the paper's numbers next to ours. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

val make :
  title:string -> headers:string list -> rows:string list list ->
  ?notes:string list -> unit -> t

val pp : Format.formatter -> t -> unit
val print : t -> unit

(** ["12.3%"]. *)
val pct : float -> string

(** Cycles in thousands, ["123K"]. *)
val kcycles : int -> string

(** Percentage overhead of [v] relative to [base]. *)
val overhead : base:int -> int -> float
