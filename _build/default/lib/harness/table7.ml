(* Table 7: characteristics of the network applications (same columns as
   Table 4, §4.4). *)

let paper_loc = function
  | "Qpopper" -> 32104
  | "Apache" -> 51974
  | "Sendmail" -> 73612
  | "Wu-ftpd" -> 28055
  | "Pure-ftpd" -> 22693
  | "Bind" -> 46844
  | _ -> 0

let run () =
  let rows =
    List.map
      (fun (a : Workloads.Netapps.app) ->
        Table4.characteristics_row ~name:a.Workloads.Netapps.name
          ~source:a.Workloads.Netapps.source
          ~paper_loc:(paper_loc a.Workloads.Netapps.name))
      (Workloads.Netapps.table8_suite ())
  in
  Report.make ~title:"Table 7: network application characteristics"
    ~headers:
      [ "Program"; "Lines of Code"; "Array-Using Loops"; "> 3 Arrays (dyn %)" ]
    ~rows
    ~notes:
      [
        "paper: spilled-loop share below 3.5% for all except Sendmail (11%), \
         which also carried the highest latency penalty.";
      ]
    ()
