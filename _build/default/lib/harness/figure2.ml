(* Figure 2: the lower-bound slack of large arrays.

   For arrays over 1 MiB the granularity bit scales the segment limit to
   4 KiB units; Cash sizes the segment as the minimal multiple of 4 KiB
   and aligns the array's END with the segment's end (§3.5). The upper
   bound check stays byte-exact; the lower bound acquires up to 4095
   bytes of slack below the array. This experiment probes a 2 MB array
   at the boundaries and reports what the hardware catches. *)

let probe_src ~offset =
  Printf.sprintf
    {|
char pad[8192];     /* keeps the slack region mapped, as neighbouring
                       data structures would in a real process */
char big[2000000];
int main() {
  pad[0] = 1;
  char *p = big;
  int i;
  for (i = 0; i < 4; i++) p[%d + i] = 1;
  return 0;
}
|}
    offset

let outcome offset =
  let r = Core.exec Core.cash (probe_src ~offset) in
  match r.Core.status with
  | Core.Finished -> "allowed"
  | Core.Bound_violation _ -> "caught by segment limit"
  | Core.Crashed m -> "crashed: " ^ m

let run () =
  let size = 2_000_000 in
  let seg_base, seg_size = Cashrt.Runtime.segment_geometry ~base:0 ~size in
  let slack = -seg_base in
  let rows =
    List.map
      (fun (label, off, expect) ->
        [ label; string_of_int off; outcome off; expect ])
      [
        ("first byte", 0, "allowed");
        ("last byte", size - 4, "allowed");
        ("one past end (upper exact)", size, "caught by segment limit");
        ("just below start (in slack)", -4, "allowed");
        ("bottom of slack", -slack, "allowed");
        ("below slack", -slack - 8, "caught by segment limit");
      ]
  in
  Report.make
    ~title:
      (Printf.sprintf
         "Figure 2: 2MB array, segment %d bytes, lower-bound slack %d bytes"
         seg_size slack)
    ~headers:[ "probe"; "offset"; "result"; "expected" ]
    ~rows
    ~notes:
      [
        "upper bound byte-exact (end-aligned segment); lower bound has \
         < 4 KiB slack — exactly Figure 2's uncertainty.";
      ]
    ()
