(* Table 2: binary code size of the micro-benchmark suite — GCC bytes,
   Cash and BCC increases. The paper measured statically linked binaries;
   we measure the generated text section (the part the compilers change). *)

let run () =
  let rows =
    List.map
      (fun (k : Workloads.Micro.kernel) ->
        (* code size uses the prototype's default 3-register configuration:
           the 4-register mode's PUSH/POP elimination (§3.7) trades code
           size for the extra register and is measured in the ablation *)
        let c = Runner.compare_backends k.Workloads.Micro.source in
        let g = Runner.code_size c.Runner.gcc in
        [
          k.Workloads.Micro.name;
          string_of_int g;
          Report.pct (Report.overhead ~base:g (Runner.code_size c.Runner.cash));
          Report.pct (Report.overhead ~base:g (Runner.code_size c.Runner.bcc));
        ])
      (Workloads.Micro.table1_suite ())
  in
  Report.make ~title:"Table 2: binary code size, micro suite"
    ~headers:[ "Program"; "GCC (bytes)"; "Cash"; "BCC" ]
    ~rows
    ~notes:
      [
        "paper: Cash 28.6-30.4%, BCC 124.2-146.5% (includes statically \
         linked libc, which amplifies both).";
      ]
    ()
