(* Table formatting for experiment output: fixed-width text tables that
   mirror the paper's, with a notes section recording the paper's numbers
   next to ours. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ~rows ?(notes = []) () = { title; headers; rows; notes }

let column_widths t =
  let all = t.headers :: t.rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  widths

let pad s w = s ^ String.make (max 0 (w - String.length s)) ' '

let pp ppf t =
  let widths = column_widths t in
  let line row =
    String.concat "  "
      (List.mapi (fun i cell -> pad cell widths.(i)) row)
  in
  Fmt.pf ppf "@.== %s ==@." t.title;
  let header = line t.headers in
  Fmt.pf ppf "%s@." header;
  Fmt.pf ppf "%s@." (String.make (String.length header) '-');
  List.iter (fun row -> Fmt.pf ppf "%s@." (line row)) t.rows;
  List.iter (fun n -> Fmt.pf ppf "  note: %s@." n) t.notes

let print t = Fmt.pr "%a@." pp t

(* formatting helpers *)
let pct v = Printf.sprintf "%.1f%%" v
let kcycles v = Printf.sprintf "%dK" (v / 1000)
let overhead ~base v = 100.0 *. (float_of_int v /. float_of_int base -. 1.0)
