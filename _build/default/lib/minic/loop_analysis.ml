(* Loop and array-reference analysis (§3.7, §4.3).

   For every loop, determine which distinct arrays/buffers its body
   references. This drives:
   - the Cash backend's first-come-first-served segment-register
     assignment, performed per outermost loop nest (segment loads are
     hoisted outside the outermost loop, so a nest shares one assignment);
   - the "array-using loops" and "> N arrays" (spilled-loop) columns of
     Tables 4 and 7.

   A reference's *base* is the variable that carries the object identity —
   the paper's shadow-pointer P whose adjacent P_A names the info
   structure. Simple patterns (A[i], *p, *(p+k), *p++, p[i] after casts)
   resolve to the underlying symbol; anything else is [Bcomplex] and is
   always software-checked, because no loop-invariant segment register
   load can cover a base that varies per iteration. *)

type base =
  | Bsym of Ir.sym   (* a named array or pointer variable *)
  | Bstr of int      (* a string literal (its own anonymous array) *)
  | Bcomplex         (* computed pointer: software check only *)

let base_key = function
  | Bsym s -> Printf.sprintf "s%d" s.Ir.id
  | Bstr i -> Printf.sprintf "l%d" i
  | Bcomplex -> "?"

(* Resolve the base of the pointer expression [e] used in an array-like
   reference. *)
let rec classify_base (e : Ir.texpr) =
  match e.Ir.e with
  | Ir.Tvar sym -> Bsym sym
  | Ir.Tstr_lit i -> Bstr i
  | Ir.Tcast (_, inner) -> classify_base inner
  | Ir.Tbinop ((Ast.Add | Ast.Sub), a, b) ->
    (* pointer arithmetic keeps the base of the pointer side *)
    (match Ast.decay a.Ir.ty, Ast.decay b.Ir.ty with
     | Ast.Tptr _, _ -> classify_base a
     | _, Ast.Tptr _ -> classify_base b
     | _ -> Bcomplex)
  | Ir.Tincdec (_, _, inner) -> classify_base inner
  | Ir.Tassign (_, rhs) -> classify_base rhs
  | Ir.Taddr inner ->
    (* &a[k] used as a pointer keeps a's identity *)
    (match inner.Ir.e with
     | Ir.Tindex (b, _) -> classify_base b
     | Ir.Tvar sym -> Bsym sym
     | _ -> Bcomplex)
  | _ -> Bcomplex

type loop_summary = {
  loop_id : int;
  parent : int option;
  outermost_id : int; (* the enclosing outermost loop (self if outermost) *)
  bases : base list;  (* distinct non-complex bases, first-occurrence order *)
  has_complex : bool; (* body contains computed-pointer references *)
  ref_sites : int;    (* number of array-like reference sites in the body *)
  mutated : string list; (* base keys of variables assigned / ++ / address-
                            taken inside the nest body *)
  escaped : string list; (* base keys whose address is taken inside the
                            body: mutable through aliases, so never safe
                            to cover with a hoisted segment register *)
  declared : string list; (* base keys of variables *declared* inside the
                             body: their segment setup cannot be hoisted
                             to the loop preheader (the variable does not
                             exist yet) and is emitted at the definition
                             site instead *)
  direct : string list;   (* base keys referenced directly in this loop's
                             own body, outside any nested loop — decides
                             whether a repurposed segment register must be
                             re-established eagerly on inner-loop exit *)
  written : string list;  (* base keys of references that are stored
                             through inside the body — the only ones the
                             security-only mode (§3.8) must cover *)
  def_sources : (string * base) list;
                          (* for each pointer assignment p = <expr> in the
                             body: (p's key, the base of <expr>). A pointer
                             whose defs all derive from one stable outer
                             object can borrow that object's segment at
                             the preheader and skip per-definition segment
                             reloads (the zone/row-pointer pattern). *)
  has_call : bool;    (* body contains a user-function call (a global
                          pointer may be mutated behind our back) *)
}

(* Is [b]'s pointer value possibly modified inside loop [l]? Globals are
   additionally clobbered by any call. *)
let base_mutated l = function
  | Bsym s ->
    List.mem (base_key (Bsym s)) l.mutated
    || (s.Ir.storage = Ir.Global_var && l.has_call)
  | Bstr _ -> false
  | Bcomplex -> true

let base_declared_inside l b = List.mem (base_key b) l.declared

(* If every definition of pointer base [b] inside loop [l] derives from
   one named object other than [b] itself, return that object's base:
   [b] can borrow its segment for the whole loop. *)
let stable_def_source l b =
  let key = base_key b in
  let sources =
    List.filter_map
      (fun (k, src) ->
        if k <> key then None
        else
          match src with
          | Bsym s when base_key src <> key -> Some (Bsym s)
          | Bstr _ -> Some src
          | _ -> Some Bcomplex)
      l.def_sources
  in
  match sources with
  | [] -> None
  | first :: rest ->
    let same =
      List.for_all (fun s -> base_key s = base_key first) rest
      && first <> Bcomplex
    in
    if same then Some first else None

(* May this base be covered by a segment register in this nest? Arrays
   and string literals always can (the object never changes). Pointer
   variables can unless they escape (aliased mutation we cannot see) or
   are globals in a nest with calls (the callee may retarget them). *)
let base_assignable l = function
  | Bstr _ -> true
  | Bcomplex -> false
  | Bsym s ->
    (match s.Ir.ty with
     | Ast.Tarray _ -> true
     | _ ->
       (not (List.mem (base_key (Bsym s)) l.escaped))
       && not (s.Ir.storage = Ir.Global_var && l.has_call))

type t = {
  by_id : (int, loop_summary) Hashtbl.t;
  per_func : (string * loop_summary list) list; (* loops per function *)
}

(* Mutable accumulator for one loop during the walk. *)
type acc = {
  a_id : int;
  a_parent : int option;
  a_outer : int;
  mutable a_bases : base list; (* reversed first-occurrence order *)
  mutable a_keys : string list;
  mutable a_complex : bool;
  mutable a_sites : int;
  mutable a_mutated : string list;
  mutable a_escaped : string list;
  mutable a_direct : string list;
  mutable a_declared : string list;
  mutable a_written : string list;
  mutable a_def_sources : (string * base) list;
  mutable a_call : bool;
}

let record_write stack b =
  match b with
  | Bcomplex -> ()
  | _ ->
    let key = base_key b in
    List.iter
      (fun acc ->
        if not (List.mem key acc.a_written) then
          acc.a_written <- key :: acc.a_written)
      stack

let record_def_source stack sym rhs_base =
  let key = base_key (Bsym sym) in
  List.iter
    (fun acc -> acc.a_def_sources <- (key, rhs_base) :: acc.a_def_sources)
    stack

let record_mutation stack sym =
  let key = base_key (Bsym sym) in
  List.iter
    (fun acc ->
      if not (List.mem key acc.a_mutated) then
        acc.a_mutated <- key :: acc.a_mutated)
    stack

let record_escape stack sym =
  let key = base_key (Bsym sym) in
  List.iter
    (fun acc ->
      if not (List.mem key acc.a_escaped) then
        acc.a_escaped <- key :: acc.a_escaped)
    stack

let record_decl stack sym =
  let key = base_key (Bsym sym) in
  List.iter
    (fun acc ->
      if not (List.mem key acc.a_declared) then
        acc.a_declared <- key :: acc.a_declared)
    stack

let record_call stack = List.iter (fun acc -> acc.a_call <- true) stack

let record_ref stack b =
  (match stack, b with
   | acc :: _, (Bsym _ | Bstr _) ->
     let key = base_key b in
     if not (List.mem key acc.a_direct) then
       acc.a_direct <- key :: acc.a_direct
   | _ -> ());
  List.iter
    (fun acc ->
      acc.a_sites <- acc.a_sites + 1;
      match b with
      | Bcomplex -> acc.a_complex <- true
      | _ ->
        let key = base_key b in
        if not (List.mem key acc.a_keys) then begin
          acc.a_keys <- key :: acc.a_keys;
          acc.a_bases <- b :: acc.a_bases
        end)
    stack

let rec walk_expr stack (e : Ir.texpr) =
  match e.Ir.e with
  | Ir.Tint_lit _ | Ir.Tfloat_lit _ | Ir.Tstr_lit _ | Ir.Tvar _
  | Ir.Tsizeof _ -> ()
  | Ir.Tindex (base, idx) ->
    record_ref stack (classify_base base);
    walk_expr stack base;
    walk_expr stack idx
  | Ir.Tderef p ->
    record_ref stack (classify_base p);
    walk_expr stack p
  | Ir.Taddr inner ->
    (* taking an address is not itself a memory reference, but it lets the
       variable be mutated through an alias *)
    (match inner.Ir.e with
     | Ir.Tindex (b, i) -> walk_expr stack b; walk_expr stack i
     | Ir.Tvar sym -> record_mutation stack sym; record_escape stack sym
     | _ -> walk_expr stack inner)
  | Ir.Tunop (_, a) | Ir.Tcast (_, a) -> walk_expr stack a
  | Ir.Tbinop (_, a, b) | Ir.Tland (a, b) | Ir.Tlor (a, b) ->
    walk_expr stack a;
    walk_expr stack b
  | Ir.Tcond (c, a, b) ->
    walk_expr stack c;
    walk_expr stack a;
    walk_expr stack b
  | Ir.Tassign (lhs, rhs) ->
    (match lhs.Ir.e with
     | Ir.Tvar sym ->
       record_mutation stack sym;
       if Ast.is_pointer (Ast.decay sym.Ir.ty) then
         record_def_source stack sym (classify_base rhs)
     | Ir.Tindex (b, _) | Ir.Tderef b ->
       record_write stack (classify_base b);
       walk_expr stack lhs
     | _ -> walk_expr stack lhs);
    walk_expr stack rhs
  | Ir.Tincdec (_, _, inner) ->
    (match inner.Ir.e with
     | Ir.Tvar sym -> record_mutation stack sym
     | Ir.Tindex (b, _) | Ir.Tderef b ->
       record_write stack (classify_base b)
     | _ -> ());
    walk_expr stack inner
  | Ir.Tcall (_, args) ->
    record_call stack;
    List.iter (walk_expr stack) args
  | Ir.Tbuiltin (_, args) -> List.iter (walk_expr stack) args

let rec walk_stmt by_id out stack (s : Ir.tstmt) =
  match s with
  | Ir.Sexpr e -> walk_expr stack e
  | Ir.Sdecl (sym, init) ->
    record_decl stack sym;
    (match init with
     | Some rhs ->
       record_mutation stack sym;
       if Ast.is_pointer (Ast.decay sym.Ir.ty) then
         record_def_source stack sym (classify_base rhs)
     | None -> ());
    Option.iter (walk_expr stack) init
  | Ir.Sif (c, a, b) ->
    walk_expr stack c;
    walk_stmt by_id out stack a;
    Option.iter (walk_stmt by_id out stack) b
  | Ir.Swhile (li, c, body) ->
    enter_loop by_id out stack li (fun stack ->
        walk_expr stack c;
        walk_stmt by_id out stack body)
  | Ir.Sfor (li, init, cond, step, body) ->
    Option.iter (walk_stmt by_id out stack) init;
    enter_loop by_id out stack li (fun stack ->
        Option.iter (walk_expr stack) cond;
        Option.iter (walk_expr stack) step;
        walk_stmt by_id out stack body)
  | Ir.Sreturn e -> Option.iter (walk_expr stack) e
  | Ir.Sblock stmts -> List.iter (walk_stmt by_id out stack) stmts
  | Ir.Sbreak | Ir.Scontinue | Ir.Sempty -> ()

and enter_loop by_id out stack (li : Ir.loop_info) f =
  let parent = match stack with a :: _ -> Some a.a_id | [] -> None in
  let outer = match stack with a :: _ -> a.a_outer | [] -> li.Ir.loop_id in
  let acc =
    {
      a_id = li.Ir.loop_id;
      a_parent = parent;
      a_outer = outer;
      a_bases = [];
      a_keys = [];
      a_complex = false;
      a_sites = 0;
      a_mutated = [];
      a_escaped = [];
      a_declared = [];
      a_direct = [];
      a_written = [];
      a_def_sources = [];
      a_call = false;
    }
  in
  f (acc :: stack);
  let summary =
    {
      loop_id = acc.a_id;
      parent = acc.a_parent;
      outermost_id = acc.a_outer;
      bases = List.rev acc.a_bases;
      has_complex = acc.a_complex;
      ref_sites = acc.a_sites;
      mutated = acc.a_mutated;
      escaped = acc.a_escaped;
      declared = acc.a_declared;
      direct = acc.a_direct;
      written = acc.a_written;
      def_sources = acc.a_def_sources;
      has_call = acc.a_call;
    }
  in
  Hashtbl.replace by_id acc.a_id summary;
  out := summary :: !out

(* Analyse a whole program. *)
let analyze (prog : Ir.tprog) =
  let by_id = Hashtbl.create 64 in
  let per_func =
    List.map
      (fun (f : Ir.tfunc) ->
        let out = ref [] in
        List.iter (walk_stmt by_id out []) f.Ir.body;
        (f.Ir.fsym.Ir.name, List.rev !out))
      prog.Ir.funcs
  in
  { by_id; per_func }

let loop t id = Hashtbl.find_opt t.by_id id

let all_loops t = List.concat_map snd t.per_func

(* --- static characteristics for Tables 4 and 7 ------------------------ *)

type characteristics = {
  total_loops : int;
  array_using_loops : int;
  spilled_loops : int; (* loops whose own body uses more than [budget]
                          distinct arrays *)
}

let characteristics ?(budget = 3) t =
  let loops = all_loops t in
  let uses_arrays l = l.bases <> [] || l.has_complex in
  {
    total_loops = List.length loops;
    array_using_loops = List.length (List.filter uses_arrays loops);
    spilled_loops =
      List.length
        (List.filter (fun l -> List.length l.bases > budget) loops);
  }

(* The segment-register assignment for a loop nest: the first [budget]
   bases of the *outermost* loop get registers; everything else in the
   nest is software-checked. Returns the assigned bases in order. *)
let nest_assignment t ~budget ~outermost_id =
  match loop t outermost_id with
  | None -> []
  | Some l ->
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take budget l.bases
