(** Recursive-descent parser for mini-C, with C's expression precedence.
    Declarations use the restricted one-declarator-per-statement form
    [type '*'* name ('[' int ']')? ('=' expr)?]. *)

exception Parse_error of string * int  (** message, line *)

(** Parse a complete translation unit.
    @raise Parse_error (and {!Lexer.Lex_error} from tokenisation). *)
val parse_program : string -> Ast.program
