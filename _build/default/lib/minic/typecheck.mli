(** Semantic analysis: name resolution, type checking, implicit
    conversion insertion (char/int promotion, int/double), [op=]
    desugaring, and loop numbering. Produces the typed IR all code
    generators share. *)

exception Type_error of string

(** Type-check a parsed translation unit; requires a [main] function.
    @raise Type_error *)
val check : Ast.program -> Ir.tprog

(** Source text straight to typed IR.
    @raise Type_error, [Parser.Parse_error], [Lexer.Lex_error]. *)
val check_source : string -> Ir.tprog
