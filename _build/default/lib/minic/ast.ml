(* Abstract syntax for mini-C: the C subset the Cash workloads are written
   in. Covers the constructs the paper's analysis cares about — static and
   dynamic arrays, pointers with arithmetic, loops — plus enough expression
   and statement forms to write real numerical kernels and server loops.
   Deliberately omitted (unused by the workloads): structs/unions, switch,
   goto, varargs, multi-dimensional array types (kernels index flat arrays,
   as optimised C code usually does). *)

type ty =
  | Tint
  | Tchar
  | Tdouble
  | Tvoid
  | Tptr of ty
  | Tarray of ty * int
[@@deriving show { with_path = false }, eq]

type binop =
  | Add | Sub | Mul | Div | Mod
  | Lt | Le | Gt | Ge | Eq | Ne
  | Band | Bor | Bxor | Shl | Shr
[@@deriving show { with_path = false }, eq]

type unop = Neg | Lnot | Bnot [@@deriving show { with_path = false }, eq]

type incdec_pos = Pre | Post [@@deriving show { with_path = false }, eq]
type incdec_op = Incr | Decr [@@deriving show { with_path = false }, eq]

type expr =
  | Int_lit of int
  | Char_lit of char
  | Float_lit of float
  | Str_lit of string
  | Var of string
  | Index of expr * expr              (* a[i] *)
  | Deref of expr                     (* *p *)
  | Addr_of of expr                   (* &lvalue *)
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Land of expr * expr               (* && — short-circuit *)
  | Lor of expr * expr                (* || *)
  | Cond of expr * expr * expr        (* c ? a : b *)
  | Assign of expr * expr             (* lvalue = e *)
  | Op_assign of binop * expr * expr  (* lvalue op= e *)
  | Incdec of incdec_pos * incdec_op * expr
  | Call of string * expr list
  | Cast of ty * expr
  | Sizeof_ty of ty
[@@deriving show { with_path = false }, eq]

type stmt =
  | Expr of expr
  | Decl of ty * string * expr option
  | If of expr * stmt * stmt option
  | While of expr * stmt
  | For of stmt option * expr option * expr option * stmt
      (* init is a Decl or Expr statement *)
  | Return of expr option
  | Block of stmt list
  | Break
  | Continue
  | Empty
[@@deriving show { with_path = false }, eq]

type func = {
  ret : ty;
  name : string;
  params : (ty * string) list;
  body : stmt list;
}
[@@deriving show { with_path = false }, eq]

type global =
  | Gvar of ty * string * expr option (* initialiser: constant expr *)
  | Gfunc of func
[@@deriving show { with_path = false }, eq]

type program = global list [@@deriving show { with_path = false }, eq]

(* Size of a type in bytes under the *reference* (1-word-pointer) model.
   Backends with fat pointers override pointer size at code generation;
   [sizeof] in source is likewise resolved per backend. *)
let rec sizeof_ref = function
  | Tint -> 4
  | Tchar -> 1
  | Tdouble -> 8
  | Tvoid -> 0
  | Tptr _ -> 4
  | Tarray (t, n) -> n * sizeof_ref t

let is_pointer = function Tptr _ | Tarray _ -> true | _ -> false
let is_arith = function Tint | Tchar | Tdouble -> true | _ -> false
let is_integral = function Tint | Tchar -> true | _ -> false

(* The type a value of type [ty] has when used in an expression: arrays
   decay to pointers. *)
let decay = function Tarray (t, _) -> Tptr t | t -> t
