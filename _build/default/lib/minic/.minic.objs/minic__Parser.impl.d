lib/minic/parser.pp.ml: Ast Lexer List Printf Token
