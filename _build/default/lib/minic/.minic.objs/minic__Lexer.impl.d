lib/minic/lexer.pp.ml: Buffer Char List Printf String Token
