lib/minic/token.pp.ml: Printf
