lib/minic/loop_analysis.pp.ml: Ast Hashtbl Ir List Option Printf
