lib/minic/typecheck.pp.ml: Array Ast Char Hashtbl Ir List Option Parser Printf
