lib/minic/ir.pp.ml: Ast List
