(* Lexical tokens for mini-C. *)

type t =
  | INT_LIT of int
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STR_LIT of string
  | IDENT of string
  (* keywords *)
  | KW_INT | KW_CHAR | KW_DOUBLE | KW_VOID
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN
  | KW_BREAK | KW_CONTINUE | KW_SIZEOF
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | QUESTION | COLON
  (* operators *)
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | LT | LE | GT | GE | EQEQ | NEQ
  | ANDAND | OROR | BANG
  | ASSIGN
  | PLUS_ASSIGN | MINUS_ASSIGN | STAR_ASSIGN | SLASH_ASSIGN | PERCENT_ASSIGN
  | PLUSPLUS | MINUSMINUS
  | EOF

let to_string = function
  | INT_LIT n -> string_of_int n
  | FLOAT_LIT f -> string_of_float f
  | CHAR_LIT c -> Printf.sprintf "'%c'" c
  | STR_LIT s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | KW_INT -> "int" | KW_CHAR -> "char" | KW_DOUBLE -> "double"
  | KW_VOID -> "void" | KW_IF -> "if" | KW_ELSE -> "else"
  | KW_WHILE -> "while" | KW_FOR -> "for" | KW_RETURN -> "return"
  | KW_BREAK -> "break" | KW_CONTINUE -> "continue" | KW_SIZEOF -> "sizeof"
  | LPAREN -> "(" | RPAREN -> ")" | LBRACE -> "{" | RBRACE -> "}"
  | LBRACKET -> "[" | RBRACKET -> "]" | SEMI -> ";" | COMMA -> ","
  | QUESTION -> "?" | COLON -> ":"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/" | PERCENT -> "%"
  | AMP -> "&" | PIPE -> "|" | CARET -> "^" | TILDE -> "~"
  | SHL -> "<<" | SHR -> ">>"
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "==" | NEQ -> "!="
  | ANDAND -> "&&" | OROR -> "||" | BANG -> "!"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+=" | MINUS_ASSIGN -> "-=" | STAR_ASSIGN -> "*="
  | SLASH_ASSIGN -> "/=" | PERCENT_ASSIGN -> "%="
  | PLUSPLUS -> "++" | MINUSMINUS -> "--"
  | EOF -> "<eof>"

(* A token paired with its source line, for error messages. *)
type located = { tok : t; line : int }
