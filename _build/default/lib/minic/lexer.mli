(** Hand-written lexer for mini-C: //- and /* */ comments, decimal and
    hex integer literals, floating literals, character and string
    literals with the common escapes including [\xNN]. *)

exception Lex_error of string * int  (** message, line *)

(** Tokenise a full source string; the result always ends with [EOF].
    @raise Lex_error with the offending line number. *)
val tokenize : string -> Token.located list
