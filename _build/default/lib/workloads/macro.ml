(* The six macro-benchmark applications of Tables 4-6: Toast (GSM audio
   compression), Cjpeg (JPEG compression), Quat (3D fractal generator),
   RayLab (raytracer), Speex (voice codec), Gif2png (image converter).

   These are miniature but structurally faithful versions: each implements
   the application's actual core algorithm (LPC analysis, 8x8 DCT +
   quantisation, quaternion Julia iteration, sphere raytracing, subband
   filtering + VQ, LZW-ish decode + PNG filtering), with the same
   loop/array texture that drives the paper's measurements — many small
   arrays, functions with local arrays called inside loops, and pointer
   walks. Inputs are synthesised deterministically in-program. *)

(* Toast: GSM 06.10-flavoured audio compression. Frames of 160 samples
   run preemphasis, autocorrelation LPC analysis, reflection-coefficient
   quantisation, and long-term-prediction search — all small fixed arrays
   in functions called once per frame, the pattern that exercises Cash's
   3-entry segment cache (§4.5). *)
let toast ?(frames = 40) () =
  Printf.sprintf
    {|
int samples[160];
int coded[76];

int autocorr(int *s, int *acf, int n, int lags) {
  int k; int i;
  for (k = 0; k < lags; k++) {
    int sum = 0;
    for (i = k; i < n; i++) sum += (s[i] / 16) * (s[i - k] / 16);
    acf[k] = sum;
  }
  return acf[0];
}

void reflection(int *acf, int *refl, int lags) {
  int p[9];
  int k[9];
  int i; int m;
  for (i = 0; i < lags; i++) p[i] = acf[i];
  for (m = 1; m < lags; m++) {
    if (p[0] == 0) { refl[m - 1] = 0; continue; }
    k[m] = -(p[m] * 256) / (p[0] + 1);
    refl[m - 1] = k[m];
    for (i = 0; i + m < lags; i++)
      p[i] = p[i] + (k[m] * p[i + m]) / 256;
  }
}

int ltp_search(int *s, int n) {
  int best = 0;
  int bestlag = 40;
  int lag;
  for (lag = 40; lag < 120; lag++) {
    int corr = 0;
    int i;
    for (i = lag; i < n; i++) corr += (s[i] / 64) * (s[i - lag] / 64);
    if (corr > best) { best = corr; bestlag = lag; }
  }
  return bestlag;
}

int encode_frame(int *s, int *out, int seed) {
  int acf[9];
  int refl[8];
  int i;
  /* preemphasis */
  int prev = 0;
  for (i = 0; i < 160; i++) {
    int cur = s[i];
    s[i] = cur - (prev * 28180) / 32768;
    prev = cur;
  }
  int energy = autocorr(s, acf, 160, 9);
  reflection(acf, refl, 9);
  for (i = 0; i < 8; i++) out[i] = refl[i] / 2;
  out[8] = ltp_search(s, 160);
  out[9] = energy / 1024;
  return out[8] + seed %% 3;
}

int main() {
  int frame;
  int checksum = 0;
  srand(42);
  for (frame = 0; frame < %d; frame++) {
    int i;
    for (i = 0; i < 160; i++)
      samples[i] = ((i * (frame + 3) * 7919) %% 4096) - 2048;
    checksum += encode_frame(samples, coded, frame);
    int j;
    for (j = 0; j < 10; j++) checksum += coded[j] %% 17;
  }
  print_int(checksum);
  return 0;
}
|}
    frames

(* Cjpeg: JPEG compression core — 8x8 blocks through level shift, 2D DCT
   (rows then columns), quantisation with the standard luminance table,
   and zig-zag run-length accounting. *)
let cjpeg ?(width = 64) ?(height = 48) () =
  Printf.sprintf
    {|
char image[%d];
int quant[64];
int zigzag[64];

void dct8(double *v) {
  /* one 8-point DCT-II, straightforward O(n^2) form */
  double out[8];
  int k; int n;
  for (k = 0; k < 8; k++) {
    double s = 0.0;
    for (n = 0; n < 8; n++)
      s = s + v[n] * cos(0.19634954084936207 * (2.0 * (double)n + 1.0) * (double)k);
    out[k] = k == 0 ? s * 0.3535533905932738 : s * 0.5;
  }
  for (k = 0; k < 8; k++) v[k] = out[k];
}

int encode_block(char *img, int w, int bx, int by) {
  double block[64];
  double col[8];
  int coefs[64];
  int x; int y;
  /* load + level shift */
  for (y = 0; y < 8; y++) {
    char *row = img + (by * 8 + y) * w + bx * 8;
    double *brow = block + y * 8;
    for (x = 0; x < 8; x++) brow[x] = (double)row[x] - 128.0;
  }
  /* rows */
  for (y = 0; y < 8; y++) dct8(block + y * 8);
  /* columns */
  for (x = 0; x < 8; x++) {
    for (y = 0; y < 8; y++) col[y] = block[y * 8 + x];
    dct8(col);
    for (y = 0; y < 8; y++) block[y * 8 + x] = col[y];
  }
  /* quantise */
  int i;
  for (i = 0; i < 64; i++) {
    double q = block[i] / (double)quant[i];
    coefs[i] = (int)(q + (q < 0.0 ? -0.5 : 0.5));
  }
  /* zig-zag run-length: count nonzero runs, standing in for entropy
     coding */
  int runs = 0;
  int run = 0;
  for (i = 0; i < 64; i++) {
    int c = coefs[zigzag[i]];
    if (c == 0) run++;
    else { runs += run + (c < 0 ? -c : c); run = 0; }
  }
  return runs;
}

int main() {
  int w = %d; int h = %d;
  int i; int x; int y;
  /* standard luminance quantisation table, flattened approximation */
  for (i = 0; i < 64; i++) quant[i] = 16 + ((i * 5) %% 84);
  /* zig-zag order: synthetic permutation with the same locality */
  for (i = 0; i < 64; i++) zigzag[i] = (i * 19) %% 64;
  for (y = 0; y < h; y++) {
    char *row = image + y * w;
    for (x = 0; x < w; x++)
      row[x] = (x * 3 + y * 7 + ((x * y) %% 31)) %% 256;
  }
  int checksum = 0;
  int by; int bx;
  for (by = 0; by < h / 8; by++)
    for (bx = 0; bx < w / 8; bx++)
      checksum += encode_block(image, w, bx, by);
  print_int(checksum);
  return 0;
}
|}
    (width * height) width height

(* Quat: quaternion Julia set, the core of the Quat 3D fractal generator:
   per-pixel iteration of q <- q^2 + c in quaternion arithmetic. *)
let quat ?(res = 40) ?(max_iter = 24) () =
  Printf.sprintf
    {|
char image[%d];

int iterate(double qx, double qy, double qz, double qw) {
  double cx = -0.2; double cy = 0.68; double cz = 0.0; double cw = 0.0;
  int it = 0;
  while (it < %d) {
    /* q = q^2 + c in quaternion arithmetic */
    double nx = qx * qx - qy * qy - qz * qz - qw * qw + cx;
    double ny = 2.0 * qx * qy + cy;
    double nz = 2.0 * qx * qz + cz;
    double nw = 2.0 * qx * qw + cw;
    qx = nx; qy = ny; qz = nz; qw = nw;
    if (qx * qx + qy * qy + qz * qz + qw * qw > 4.0) break;
    it++;
  }
  return it;
}

int main() {
  int res = %d;
  int px; int py;
  int checksum = 0;
  for (py = 0; py < res; py++) {
    char *row = image + py * res;
    for (px = 0; px < res; px++) {
      double x = 3.0 * (double)px / (double)res - 1.5;
      double y = 3.0 * (double)py / (double)res - 1.5;
      int it = iterate(x, y, 0.1, 0.0);
      row[px] = it * 255 / %d;
      checksum += row[px];
    }
  }
  print_int(checksum);
  return 0;
}
|}
    (res * res) max_iter res max_iter

(* RayLab: a recursive-free raytracer over a small scene of spheres with
   Lambertian shading and hard shadows — RayLab's hot path. Scene data
   lives in parallel arrays (cx, cy, cz, r, reflectivity). *)
let raylab ?(res = 40) ?(spheres = 6) () =
  Printf.sprintf
    {|
double cx[%d]; double cy[%d]; double cz[%d]; double cr[%d]; double refl[%d];
char image[%d];

/* returns index of nearest hit, writes distance through tptr */
int intersect(double ox, double oy, double oz,
              double dx, double dy, double dz,
              double *tptr, int n) {
  int best = -1;
  double tbest = 1.0e30;
  int i;
  for (i = 0; i < n; i++) {
    double lx = cx[i] - ox;
    double ly = cy[i] - oy;
    double lz = cz[i] - oz;
    double b = lx * dx + ly * dy + lz * dz;
    double det = b * b - (lx * lx + ly * ly + lz * lz) + cr[i] * cr[i];
    if (det > 0.0) {
      double t = b - sqrt(det);
      if (t > 0.001 && t < tbest) { tbest = t; best = i; }
    }
  }
  tptr[0] = tbest;
  return best;
}

int main() {
  int n = %d;
  int res = %d;
  int i;
  for (i = 0; i < n; i++) {
    cx[i] = -2.0 + 4.0 * (double)i / (double)n;
    cy[i] = -1.0 + (double)(i %% 3);
    cz[i] = 4.0 + (double)(i %% 2) * 2.0;
    cr[i] = 0.5 + 0.25 * (double)(i %% 2);
    refl[i] = 0.25 * (double)(i %% 4);
  }
  double lx = -3.0; double ly = 5.0; double lz = 0.0;
  double t[1];
  int px; int py;
  int checksum = 0;
  for (py = 0; py < res; py++) {
    char *row = image + py * res;
    for (px = 0; px < res; px++) {
      double dx = ((double)px / (double)res - 0.5) * 1.4;
      double dy = (0.5 - (double)py / (double)res) * 1.4;
      double dz = 1.0;
      double norm = sqrt(dx * dx + dy * dy + dz * dz);
      dx = dx / norm; dy = dy / norm; dz = dz / norm;
      int hit = intersect(0.0, 0.0, 0.0, dx, dy, dz, t, n);
      double shade = 0.05;
      if (hit >= 0) {
        double hx = dx * t[0]; double hy = dy * t[0]; double hz = dz * t[0];
        double nx = (hx - cx[hit]) / cr[hit];
        double ny = (hy - cy[hit]) / cr[hit];
        double nz = (hz - cz[hit]) / cr[hit];
        double tlx = lx - hx; double tly = ly - hy; double tlz = lz - hz;
        double ln = sqrt(tlx * tlx + tly * tly + tlz * tlz);
        tlx = tlx / ln; tly = tly / ln; tlz = tlz / ln;
        double diff = nx * tlx + ny * tly + nz * tlz;
        if (diff > 0.0) {
          /* shadow ray */
          int blocker = intersect(hx, hy, hz, tlx, tly, tlz, t, n);
          if (blocker < 0 || t[0] > ln) shade = 0.1 + 0.8 * diff + refl[hit] * 0.1;
          else shade = 0.1;
        } else shade = 0.1;
      }
      int v = (int)(shade * 255.0);
      row[px] = v > 255 ? 255 : v;
      checksum += row[px];
    }
  }
  print_int(checksum);
  return 0;
}
|}
    spheres spheres spheres spheres spheres (res * res) spheres res

(* Speex: voice coder analysis path — split the signal into subbands with
   FIR filters, compute per-band energies, and vector-quantise against a
   codebook (nearest-neighbour search), per frame. *)
let speex ?(frames = 24) () =
  Printf.sprintf
    {|
double frame[160];
double lowband[80];
double highband[80];
double taps[16];
double codebook[256];   /* 32 codewords x 8 dims */

void qmf_split(double *in, double *lo, double *hi, double *h, int n) {
  int i; int k;
  for (i = 0; i < n / 2; i++) {
    double accl = 0.0;
    double acch = 0.0;
    for (k = 0; k < 16; k++) {
      int idx = 2 * i - k;
      if (idx >= 0 && idx < n) {
        double x = in[idx];
        accl = accl + h[k] * x;
        acch = acch + (k %% 2 == 0 ? h[k] : -h[k]) * x;
      }
    }
    lo[i] = accl;
    hi[i] = acch;
  }
}

int vq_nearest(double *vec, double *book, int words, int dim) {
  int best = 0;
  double bestd = 1.0e30;
  int w; int d;
  for (w = 0; w < words; w++) {
    double *cw = book + w * dim;
    double dist = 0.0;
    for (d = 0; d < dim; d++) {
      double diff = vec[d] - cw[d];
      dist = dist + diff * diff;
    }
    if (dist < bestd) { bestd = dist; best = w; }
  }
  return best;
}

int main() {
  int f; int i;
  /* QMF prototype filter and codebook, deterministic */
  for (i = 0; i < 16; i++)
    taps[i] = sin(0.3 * (double)(i + 1)) / (double)(i + 1);
  for (i = 0; i < 256; i++)
    codebook[i] = (double)((i * 37) %% 64) / 32.0 - 1.0;
  int checksum = 0;
  for (f = 0; f < %d; f++) {
    double bands[8];
    for (i = 0; i < 160; i++)
      frame[i] = sin(0.02 * (double)(i * (f + 1))) + 0.3 * sin(0.11 * (double)i);
    qmf_split(frame, lowband, highband, taps, 160);
    /* per-band energies over 8 bands of the low band */
    int b;
    for (b = 0; b < 8; b++) {
      double e = 0.0;
      for (i = 0; i < 10; i++) {
        double v = lowband[b * 10 + i];
        e = e + v * v;
      }
      bands[b] = e;
    }
    checksum += vq_nearest(bands, codebook, 32, 8);
    /* high band: coarse energy only */
    double he = 0.0;
    for (i = 0; i < 80; i++) he = he + highband[i] * highband[i];
    checksum += (int)he %% 7;
  }
  print_int(checksum);
  return 0;
}
|}
    frames

(* Gif2png: decode an LZW-flavoured compressed stream into an indexed
   image, apply the palette, then PNG-filter each scanline (sub/up/paeth
   selection by absolute-difference heuristic) and checksum with a CRC-ish
   accumulator — the converter's two hot phases. *)
let gif2png ?(width = 72) ?(height = 48) () =
  Printf.sprintf
    {|
char indexed[%d];
char rgb[%d];
char prevrow[%d];
char currow[%d];
int palette[64];

int main() {
  int w = %d; int h = %d;
  int i; int x; int y;
  /* palette */
  for (i = 0; i < 64; i++)
    palette[i] = (i * 97 + 13) %% 256;
  /* "decode": a code-table expansion imitating LZW growth — each output
     pixel derives from a back-reference window, like dictionary decode */
  int back[512];
  int nback = 1;
  back[0] = 7;
  for (i = 0; i < w * h; i++) {
    int code = ((i * 40503) & 65535) %% (nback + 63);
    int v;
    if (code < nback) v = back[code];
    else v = (code * 31 + i) %% 64;
    indexed[i] = v;
    if (nback < 512) { back[nback] = (v + code) %% 64; nback++; }
  }
  /* palette application *and* grayscale conversion */
  for (i = 0; i < w * h; i++)
    rgb[i] = palette[indexed[i] %% 64] %% 256;
  /* PNG filtering per scanline */
  int checksum = 0;
  for (x = 0; x < w; x++) prevrow[x] = 0;
  for (y = 0; y < h; y++) {
    char *src = rgb + y * w;
    int sub_cost = 0;
    int up_cost = 0;
    for (x = 0; x < w; x++) {
      int left = x > 0 ? src[x - 1] : 0;
      int up = prevrow[x];
      int ds = src[x] - left;
      int du = src[x] - up;
      sub_cost += ds < 0 ? -ds : ds;
      up_cost += du < 0 ? -du : du;
    }
    /* apply the cheaper filter */
    if (sub_cost <= up_cost) {
      for (x = 0; x < w; x++) {
        int left = x > 0 ? src[x - 1] : 0;
        currow[x] = (src[x] - left) %% 256;
      }
      checksum += 1;
    } else {
      for (x = 0; x < w; x++)
        currow[x] = (src[x] - prevrow[x]) %% 256;
      checksum += 2;
    }
    /* adler-ish accumulation */
    int a = 1; int b = 0;
    for (x = 0; x < w; x++) {
      a = (a + currow[x]) %% 65521;
      b = (b + a) %% 65521;
    }
    checksum += b %% 97;
    for (x = 0; x < w; x++) prevrow[x] = src[x];
  }
  print_int(checksum);
  return 0;
}
|}
    (width * height) (width * height) width width width height

type app = {
  name : string;
  description : string;
  source : string;
  paper_loc : int;          (* Table 4 source line count *)
  paper_cash_pct : float;   (* Table 5 *)
  paper_bcc_pct : float;    (* Table 5 *)
}

let table5_suite () =
  [
    { name = "Toast"; description = "GSM audio compression utility";
      source = toast (); paper_loc = 7372;
      paper_cash_pct = 4.6; paper_bcc_pct = 47.1 };
    { name = "Cjpeg"; description = "JPEG compression utility";
      source = cjpeg (); paper_loc = 33717;
      paper_cash_pct = 8.5; paper_bcc_pct = 84.5 };
    { name = "Quat"; description = "3D fractal generator";
      source = quat (); paper_loc = 15093;
      paper_cash_pct = 15.8; paper_bcc_pct = 238.3 };
    { name = "RayLab"; description = "raytracer-based 3D renderer";
      source = raylab (); paper_loc = 9275;
      paper_cash_pct = 4.5; paper_bcc_pct = 40.6 };
    { name = "Speex"; description = "voice coder/decoder";
      source = speex (); paper_loc = 16267;
      paper_cash_pct = 13.3; paper_bcc_pct = 156.4 };
    { name = "Gif2png"; description = "GIF to PNG converter";
      source = gif2png (); paper_loc = 47057;
      paper_cash_pct = 7.7; paper_bcc_pct = 130.4 };
  ]
