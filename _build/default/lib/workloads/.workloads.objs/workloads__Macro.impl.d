lib/workloads/macro.ml: Printf
