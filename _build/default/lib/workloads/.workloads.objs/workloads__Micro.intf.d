lib/workloads/micro.mli:
