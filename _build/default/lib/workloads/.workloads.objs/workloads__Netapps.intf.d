lib/workloads/netapps.mli:
