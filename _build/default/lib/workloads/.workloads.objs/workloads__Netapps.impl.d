lib/workloads/netapps.ml: Printf
