lib/workloads/micro.ml: Printf
