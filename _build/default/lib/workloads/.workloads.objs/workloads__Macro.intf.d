lib/workloads/macro.mli:
