(** The six macro-benchmark applications of Tables 4-6: miniature but
    structurally faithful mini-C versions of Toast, Cjpeg, Quat, RayLab,
    Speex, and Gif2png — each implementing the application's actual core
    algorithm with the loop/array texture that drives the paper's
    measurements. *)

(** GSM 06.10-flavoured audio compression: preemphasis, autocorrelation
    LPC, reflection coefficients, long-term-prediction search per frame
    — the local-array-per-call pattern behind §4.5's cache statistics. *)
val toast : ?frames:int -> unit -> string

(** JPEG compression core: 8x8 blocks through level shift, 2D DCT,
    quantisation, zig-zag run-length accounting. *)
val cjpeg : ?width:int -> ?height:int -> unit -> string

(** Quaternion Julia set: per-pixel q <- q^2 + c iteration. *)
val quat : ?res:int -> ?max_iter:int -> unit -> string

(** Sphere raytracer with Lambertian shading and hard shadows; scene in
    parallel arrays (the suite's spill-heavy member). *)
val raylab : ?res:int -> ?spheres:int -> unit -> string

(** Voice-coder analysis: QMF subband split, per-band energies, vector
    quantisation against a codebook. *)
val speex : ?frames:int -> unit -> string

(** GIF-to-PNG conversion: dictionary-flavoured decode, palette
    application, per-scanline PNG filter selection, Adler-style
    checksum. *)
val gif2png : ?width:int -> ?height:int -> unit -> string

type app = {
  name : string;
  description : string;
  source : string;
  paper_loc : int;         (** Table 4 source line count *)
  paper_cash_pct : float;  (** Table 5 *)
  paper_bcc_pct : float;   (** Table 5 *)
}

val table5_suite : unit -> app list
