(** The six micro-benchmark kernels of Table 1 (§4.2), as mini-C source
    generators parameterised by problem size. Sources are written in
    hand-optimised C style (pointer walking, hoisted row bases) and print
    a deterministic checksum for differential testing. *)

(** SVDPACKC stand-in: dominant singular value by power iteration on
    A^T A (dense mat-vec products, the Lanczos core's loop shape). *)
val svd : ?rows:int -> ?cols:int -> ?iters:int -> unit -> string

(** Volume renderer: orthographic ray casting with front-to-back alpha
    compositing over a synthetic density volume. *)
val volrender : ?vol:int -> ?image:int -> unit -> string

(** 2D FFT: iterative radix-2 Cooley-Tukey over rows then columns.
    [n] must be a power of two. *)
val fft2d : ?n:int -> unit -> string

(** Gaussian elimination with back substitution on a diagonally dominant
    system. *)
val gaussian : ?n:int -> unit -> string

(** Matrix multiplication, cache-friendly ikj order. *)
val matmul : ?n:int -> unit -> string

(** Sobel edge detection over a synthetic grayscale image (the integer
    kernel of the suite). *)
val edge_detect : ?width:int -> ?height:int -> unit -> string

type kernel = {
  name : string;
  description : string;
  source : string;
  paper_cash_pct : float;  (** the paper's Table 1 Cash overhead *)
  paper_bcc_pct : float;   (** the paper's Table 1 BCC overhead *)
}

(** The Table 1 suite at default (scaled) sizes. *)
val table1_suite : unit -> kernel list
