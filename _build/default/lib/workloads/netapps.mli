(** The six network applications of Tables 7-8, each modelling the
    server-side handling of one request (the unit the paper's fork-per-
    request setup measures): line-oriented command parsing into fixed
    buffers, header construction, payload copies, table lookups. *)

(** A tiny string library compiled into each application, standing in
    for the recompiled GLIBC routines of §3.9. *)
val string_helpers : string

(** POP3: USER/LIST/RETR handling with dot-stuffed message streaming. *)
val qpopper : ?messages:int -> ?msg_len:int -> unit -> string

(** HTTP: request-line/header parsing, URI sanitisation, response
    assembly with a content copy. *)
val apache : ?content:int -> unit -> string

(** SMTP: crackaddr-style address parsing, header rewriting, dot-stuffing
    removal. *)
val sendmail : ?body:int -> ?recipients:int -> unit -> string

(** FTP: command dispatch, path validation, block-mode RETR transfer. *)
val wuftpd : ?file:int -> ?block:int -> unit -> string

(** FTP: directory-listing generation and quota scan. *)
val pureftpd : ?entries:int -> unit -> string

(** DNS: wire-format name decompression, binary-search zone lookup,
    answer assembly; a batch of positive and negative queries. *)
val bind : ?records:int -> unit -> string

type app = {
  name : string;
  description : string;
  source : string;
  paper_latency_pct : float;     (** Table 8 *)
  paper_throughput_pct : float;  (** Table 8 *)
  paper_space_pct : float;       (** Table 8 *)
}

val table8_suite : unit -> app list
