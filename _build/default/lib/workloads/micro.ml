(* The six micro-benchmark kernels of Table 1, §4.2: SVDPACKC (singular
   value decomposition), volume rendering, 2D FFT, Gaussian elimination,
   matrix multiplication, and image edge detection.

   Each function returns mini-C source parameterised by problem size.
   The sources are written the way hand-optimised C is written — pointer
   walking, hoisted row bases — because that is what the paper's -O2
   baseline effectively executes, and it is the style that exposes the
   difference between hardware and software bound checking.

   Sizes are scaled down from the paper's (which ran minutes of real
   hardware); EXPERIMENTS.md records the mapping. Every kernel prints a
   deterministic checksum so the differential tests can compare
   backends. *)

(* Singular value decomposition via one-sided Jacobi-flavoured power
   iteration: repeatedly multiply by A^T A and normalise, extracting the
   dominant singular value. Stands in for SVDPACKC's Lanczos core: the
   hot loops are identical in shape (dense mat-vec products). *)
let svd ?(rows = 48) ?(cols = 24) ?(iters = 30) () =
  Printf.sprintf
    {|
double a[%d];      /* rows x cols */
double v[%d];      /* current right singular vector estimate */
double u[%d];      /* A v */
double w[%d];      /* A^T u */

int main() {
  int rows = %d; int cols = %d;
  int i; int j; int it;
  /* deterministic synthetic matrix */
  for (i = 0; i < rows; i++) {
    double *ai = a + i * cols;
    for (j = 0; j < cols; j++)
      ai[j] = (double)((i * 7 + j * 13) %% 23) / 23.0 + 0.01;
  }
  for (j = 0; j < cols; j++) v[j] = 1.0;
  double sigma = 0.0;
  for (it = 0; it < %d; it++) {
    /* u = A v */
    for (i = 0; i < rows; i++) {
      double *ai = a + i * cols;
      double s = 0.0;
      for (j = 0; j < cols; j++) s = s + ai[j] * v[j];
      u[i] = s;
    }
    /* w = A^T u */
    for (j = 0; j < cols; j++) w[j] = 0.0;
    for (i = 0; i < rows; i++) {
      double *ai = a + i * cols;
      double ui = u[i];
      for (j = 0; j < cols; j++) w[j] = w[j] + ai[j] * ui;
    }
    /* normalise w into v; sigma^2 is the dominant eigenvalue of A^T A */
    double norm = 0.0;
    for (j = 0; j < cols; j++) norm = norm + w[j] * w[j];
    norm = sqrt(norm);
    sigma = sqrt(norm);
    for (j = 0; j < cols; j++) v[j] = w[j] / norm;
  }
  print_float(sigma);
  return 0;
}
|}
    (rows * cols) cols rows cols rows cols iters

(* Volume rendering: orthographic ray casting through a synthetic density
   volume with front-to-back alpha compositing — the inner structure of
   the paper's 128^3 -> 256^2 renderer. *)
let volrender ?(vol = 24) ?(image = 32) () =
  Printf.sprintf
    {|
double volume[%d];   /* vol^3 densities */
double image[%d];    /* image^2 intensities */

int main() {
  int n = %d; int res = %d;
  int x; int y; int z;
  /* synthetic volume: a soft sphere */
  for (z = 0; z < n; z++) {
    for (y = 0; y < n; y++) {
      double *row = volume + (z * n + y) * n;
      for (x = 0; x < n; x++) {
        int dx = 2 * x - n; int dy = 2 * y - n; int dz = 2 * z - n;
        int r2 = dx * dx + dy * dy + dz * dz;
        row[x] = r2 < n * n ? 1.0 - (double)r2 / (double)(n * n) : 0.0;
      }
    }
  }
  /* cast one axis-aligned ray per pixel, front-to-back compositing */
  int px; int py;
  double checksum = 0.0;
  for (py = 0; py < res; py++) {
    double *irow = image + py * res;
    for (px = 0; px < res; px++) {
      int vy = py * n / res;
      int vx = px * n / res;
      double acc = 0.0;
      double transp = 1.0;
      double *ray = volume + vy * n + vx;   /* walk along z */
      for (z = 0; z < n; z++) {
        double d = ray[z * n * n] * 0.25;
        acc = acc + transp * d;
        transp = transp * (1.0 - d);
        if (transp < 0.005) break;
      }
      irow[px] = acc;
      checksum = checksum + acc;
    }
  }
  print_float(checksum);
  return 0;
}
|}
    (vol * vol * vol) (image * image) vol image

(* 2D FFT: iterative radix-2 Cooley-Tukey over rows then columns of an
   n x n complex image (separate re/im planes). n must be a power of 2. *)
let fft2d ?(n = 32) () =
  Printf.sprintf
    {|
double re[%d];
double im[%d];

/* in-place radix-2 FFT of the n complex points at (re+off, im+off) with
   stride 1; n a power of two */
void fft1d(double *xr, double *xi, int n) {
  /* bit reversal */
  int i; int j; int k;
  j = 0;
  for (i = 0; i < n - 1; i++) {
    if (i < j) {
      double tr = xr[i]; xr[i] = xr[j]; xr[j] = tr;
      double ti = xi[i]; xi[i] = xi[j]; xi[j] = ti;
    }
    k = n / 2;
    while (k <= j) { j = j - k; k = k / 2; }
    j = j + k;
  }
  /* butterflies */
  int len = 2;
  while (len <= n) {
    double ang = -6.283185307179586 / (double)len;
    double wr = cos(ang);
    double wi = sin(ang);
    for (i = 0; i < n; i += len) {
      double cr = 1.0; double ci = 0.0;
      for (j = 0; j < len / 2; j++) {
        int p = i + j;
        int q = i + j + len / 2;
        double tr = cr * xr[q] - ci * xi[q];
        double ti = cr * xi[q] + ci * xr[q];
        xr[q] = xr[p] - tr;
        xi[q] = xi[p] - ti;
        xr[p] = xr[p] + tr;
        xi[p] = xi[p] + ti;
        double ncr = cr * wr - ci * wi;
        ci = cr * wi + ci * wr;
        cr = ncr;
      }
    }
    len = len * 2;
  }
}

double colr[%d];
double coli[%d];

int main() {
  int n = %d;
  int i; int j;
  for (i = 0; i < n; i++) {
    double *rr = re + i * n;
    double *ri = im + i * n;
    for (j = 0; j < n; j++) {
      rr[j] = (double)((i * 31 + j * 17) %% 13) - 6.0;
      ri[j] = 0.0;
    }
  }
  /* rows */
  for (i = 0; i < n; i++) fft1d(re + i * n, im + i * n, n);
  /* columns, via gather/scatter through a strided copy */
  for (j = 0; j < n; j++) {
    for (i = 0; i < n; i++) { colr[i] = re[i * n + j]; coli[i] = im[i * n + j]; }
    fft1d(colr, coli, n);
    for (i = 0; i < n; i++) { re[i * n + j] = colr[i]; im[i * n + j] = coli[i]; }
  }
  /* spectral energy checksum */
  double s = 0.0;
  for (i = 0; i < n * n; i++) s = s + re[i] * re[i] + im[i] * im[i];
  print_float(sqrt(s));
  return 0;
}
|}
    (n * n) (n * n) n n n

(* Gaussian elimination with back substitution on a synthetic diagonally
   dominant system. *)
let gaussian ?(n = 48) () =
  Printf.sprintf
    {|
double m[%d];      /* n x (n+1) augmented matrix */
double x[%d];

int main() {
  int n = %d;
  int i; int j; int k;
  int w = n + 1;
  for (i = 0; i < n; i++) {
    double *row = m + i * w;
    for (j = 0; j < n; j++)
      row[j] = i == j ? (double)(n + 2) : 1.0 / (double)(1 + ((i + j) %% 7));
    row[n] = (double)(i + 1);
  }
  /* forward elimination */
  for (k = 0; k < n - 1; k++) {
    double *pivot = m + k * w;
    double pk = pivot[k];
    for (i = k + 1; i < n; i++) {
      double *row = m + i * w;
      double f = row[k] / pk;
      for (j = k; j < w; j++) row[j] = row[j] - f * pivot[j];
    }
  }
  /* back substitution */
  for (i = n - 1; i >= 0; i--) {
    double *row = m + i * w;
    double s = row[n];
    for (j = i + 1; j < n; j++) s = s - row[j] * x[j];
    x[i] = s / row[i];
  }
  double checksum = 0.0;
  for (i = 0; i < n; i++) checksum = checksum + x[i];
  print_float(checksum);
  return 0;
}
|}
    (n * (n + 1)) n n

(* Matrix multiplication, cache-friendly ikj order with hoisted row
   pointers — the canonical optimised inner loop. *)
let matmul ?(n = 48) () =
  Printf.sprintf
    {|
double a[%d];
double b[%d];
double c[%d];

int main() {
  int n = %d;
  int i; int j; int k;
  for (i = 0; i < n; i++) {
    double *ai = a + i * n;
    double *bi = b + i * n;
    for (j = 0; j < n; j++) {
      ai[j] = (double)((i + j) %% 9) - 4.0;
      bi[j] = (double)((i * 3 + j) %% 7) - 3.0;
    }
  }
  for (i = 0; i < n; i++) {
    double *ci = c + i * n;
    for (j = 0; j < n; j++) ci[j] = 0.0;
  }
  for (i = 0; i < n; i++) {
    double *ai = a + i * n;
    double *ci = c + i * n;
    for (k = 0; k < n; k++) {
      double aik = ai[k];
      double *bk = b + k * n;
      for (j = 0; j < n; j++) ci[j] = ci[j] + aik * bk[j];
    }
  }
  double s = 0.0;
  for (i = 0; i < n * n; i++) s = s + c[i];
  print_float(s);
  return 0;
}
|}
    (n * n) (n * n) (n * n) n

(* Sobel edge detection over a synthetic grayscale image. Integer kernel:
   the one micro-benchmark whose inner loops are integer, like the
   paper's. *)
let edge_detect ?(width = 96) ?(height = 64) () =
  Printf.sprintf
    {|
char image[%d];
char edges[%d];

int main() {
  int w = %d; int h = %d;
  int x; int y;
  for (y = 0; y < h; y++) {
    char *row = image + y * w;
    for (x = 0; x < w; x++)
      row[x] = (x * x + y * y + x * y) %% 251;
  }
  int checksum = 0;
  for (y = 1; y < h - 1; y++) {
    char *above = image + (y - 1) * w;
    char *here  = image + y * w;
    char *below = image + (y + 1) * w;
    char *out   = edges + y * w;
    for (x = 1; x < w - 1; x++) {
      int gx = above[x+1] + 2*here[x+1] + below[x+1]
             - above[x-1] - 2*here[x-1] - below[x-1];
      int gy = below[x-1] + 2*below[x] + below[x+1]
             - above[x-1] - 2*above[x] - above[x+1];
      int mag = (gx < 0 ? -gx : gx) + (gy < 0 ? -gy : gy);
      out[x] = mag > 255 ? 255 : mag;
      checksum += out[x];
    }
  }
  print_int(checksum);
  return 0;
}
|}
    (width * height) (width * height) width height

type kernel = {
  name : string;
  description : string;
  source : string;
  (* the paper's Table 1 rows, for EXPERIMENTS.md comparison *)
  paper_cash_pct : float;
  paper_bcc_pct : float;
}

(* The Table 1 suite at default (scaled) sizes. *)
let table1_suite () =
  [
    { name = "SVDPACKC"; description = "singular value decomposition";
      source = svd (); paper_cash_pct = 1.8; paper_bcc_pct = 120.0 };
    { name = "Vol. Render."; description = "volume renderer (ray casting)";
      source = volrender (); paper_cash_pct = 3.3; paper_bcc_pct = 126.4 };
    { name = "2D FFT"; description = "2D fast Fourier transform";
      source = fft2d (); paper_cash_pct = 3.9; paper_bcc_pct = 72.2 };
    { name = "Gaus. Elim."; description = "Gaussian elimination";
      source = gaussian (); paper_cash_pct = 1.6; paper_bcc_pct = 92.4 };
    { name = "Matrix Multi."; description = "matrix multiplication";
      source = matmul (); paper_cash_pct = 1.5; paper_bcc_pct = 143.8 };
    { name = "Edge Detect"; description = "Sobel edge detection";
      source = edge_detect (); paper_cash_pct = 2.2; paper_bcc_pct = 83.8 };
  ]
