(* Overflow-detection matrix: run classic buffer-overflow shapes under
   all three compilers and show who catches what, and how (§3.8).

     dune exec examples/overflow_detection.exe
*)

let scenarios =
  [
    ( "strcpy-style attack (string longer than buffer)",
      {|
char dst[12];
int main() {
  char *payload = "AAAAAAAAAAAAAAAAAAAAAAAAAAAA\x41\x41\x41\x41";
  int i = 0;
  while (payload[i] != 0) { dst[i] = payload[i]; i++; }
  return 0;
}
|} );
    ( "heap buffer overrun through malloc'd pointer",
      {|
int main() {
  int *p = (int*)malloc(8 * sizeof(int));
  int i;
  for (i = 0; i < 16; i++) p[i] = i;
  free(p);
  return 0;
}
|} );
    ( "negative index (lower-bound violation)",
      {|
int secrets[4];
int buf[4];
int main() {
  int i;
  for (i = 3; i >= -4; i--) buf[i] = 7; /* walks down into secrets */
  return 0;
}
|} );
    ( "read overrun leaking adjacent memory",
      {|
char key[8];
char packet[8];
int main() {
  int i; int leak = 0;
  for (i = 0; i < 16; i++) leak += packet[i]; /* reads past packet into key */
  print_int(leak);
  return 0;
}
|} );
    ( "off-by-one outside any loop (Cash's documented blind spot)",
      {|
int buf[4];
int main() {
  buf[4] = 1;
  return 0;
}
|} );
  ]

let describe = function
  | Core.Finished -> "NOT caught (ran to completion)"
  | Core.Bound_violation m ->
    if String.length m >= 3 && String.sub m 0 3 = "#BR" then
      "caught by SOFTWARE check (" ^ m ^ ")"
    else "caught by SEGMENT HARDWARE (" ^ m ^ ")"
  | Core.Crashed m -> "crashed incidentally (" ^ m ^ ")"

let () =
  List.iter
    (fun (name, src) ->
      Printf.printf "--- %s ---\n" name;
      List.iter
        (fun (bname, b) ->
          Printf.printf "  %-5s %s\n" bname
            (describe (Core.exec b src).Core.status))
        [ ("gcc", Core.gcc); ("bcc", Core.bcc); ("cash", Core.cash) ];
      print_newline ())
    scenarios;
  print_endline
    "Cash catches in-loop violations in hardware at zero per-reference \
     cost;\nBCC catches everything in software at ~2x runtime; GCC catches \
     nothing."
