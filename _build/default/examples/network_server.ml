(* A simulated network server under load: fork one child per request (the
   paper's Apache setup, §4.4) and measure the latency and throughput
   penalty of Cash's bound checking.

     dune exec examples/network_server.exe
*)

let requests = 25

let serve backend source =
  let kernel = Osim.Kernel.create () in
  let compiled = Core.compile backend source in
  let records =
    Osim.Scheduler.serve ~kernel ~requests (fun _ ->
        let run = Core.run ~kernel compiled in
        assert (run.Core.status = Core.Finished);
        run.Core.process)
  in
  (Osim.Scheduler.latency records, Osim.Scheduler.throughput records)

let () =
  let source = Workloads.Netapps.apache () in
  Printf.printf "serving %d HTTP requests per compiler...\n\n" requests;
  let glat, gthr = serve Core.gcc source in
  let clat, cthr = serve Core.cash source in
  let blat, bthr = serve Core.bcc source in
  Printf.printf "%-16s %14s %22s\n" "compiler" "latency (cyc)"
    "throughput (req/Gcyc)";
  Printf.printf "%-16s %14.0f %22.1f\n" "gcc (unchecked)" glat gthr;
  Printf.printf "%-16s %14.0f %22.1f\n" "cash" clat cthr;
  Printf.printf "%-16s %14.0f %22.1f\n" "bcc" blat bthr;
  Printf.printf "\nCash latency penalty: %.1f%%  (paper Table 8, Apache: 3.3%%)\n"
    (100.0 *. (clat /. glat -. 1.0));
  Printf.printf "Cash throughput penalty: %.1f%%  (paper: 3.2%%)\n"
    (100.0 *. (1.0 -. (cthr /. gthr)));
  Printf.printf "BCC latency penalty: %.1f%%\n"
    (100.0 *. (blat /. glat -. 1.0))
