(* Quickstart: compile a mini-C program with the Cash compiler, run it on
   the simulated segmented x86, and watch the segmentation hardware do
   array bound checking for free.

     dune exec examples/quickstart.exe
*)

let program = {|
int squares[10];

int sum(int *p, int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i++) s += p[i];
  return s;
}

int main() {
  int i;
  for (i = 0; i < 10; i++) squares[i] = i * i;
  print_int(sum(squares, 10));
  return 0;
}
|}

let overflowing = {|
int buf[10];
int main() {
  int i;
  /* note the <=: the classic off-by-one, inside a loop */
  for (i = 0; i <= 10; i++) buf[i] = i;
  return 0;
}
|}

let () =
  (* 1. a correct program runs normally; the segment-limit check on every
     access costs no extra instructions *)
  let r = Core.exec Core.cash program in
  assert (r.Core.status = Core.Finished);
  Printf.printf "sum of squares: %s" r.Core.output;
  Printf.printf "simulated cycles: %d\n\n" r.Core.cycles;

  (* 2. the same program compiled without checking, for comparison *)
  let baseline = Core.exec Core.gcc program in
  Printf.printf "unchecked baseline cycles: %d (Cash overhead %.1f%%)\n\n"
    baseline.Core.cycles
    (100.0
     *. (float_of_int r.Core.cycles /. float_of_int baseline.Core.cycles
         -. 1.0));

  (* 3. an off-by-one write is caught by the virtual-memory hardware: the
     store one past the segment limit raises #GP at the faulting
     instruction *)
  (match (Core.exec Core.cash overflowing).Core.status with
   | Core.Bound_violation msg ->
     Printf.printf "overflow caught by segmentation hardware:\n  %s\n" msg
   | _ -> print_endline "BUG: overflow not caught!");

  (* ... which the unchecked compiler happily misses *)
  match (Core.exec Core.gcc overflowing).Core.status with
  | Core.Finished ->
    print_endline "the unchecked compiler silently corrupted memory."
  | _ -> print_endline "unexpected"
