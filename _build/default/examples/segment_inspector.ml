(* Segment inspector: run a Cash program and dump the LDT, showing how
   the compiler materialises each array as a hardware segment (Figure 1's
   machinery made visible).

     dune exec examples/segment_inspector.exe
*)

let program = {|
char name[24];
int counters[100];
double weights[50];
char big[2000000];

int main() {
  int i;
  for (i = 0; i < 24; i++) name[i] = 0;
  for (i = 0; i < 100; i++) counters[i] = i;
  for (i = 0; i < 50; i++) weights[i] = 0.5;
  /* touch one page of the big array so it is resident */
  for (i = 0; i < 4096; i++) big[i] = 1;
  int *heap = (int*)malloc(64 * sizeof(int));
  for (i = 0; i < 64; i++) heap[i] = i;
  print_int(counters[99] + heap[63]);
  /* note: heap deliberately not freed, so its segment stays in the LDT */
  return 0;
}
|}

let () =
  let r = Core.exec Core.cash program in
  assert (r.Core.status = Core.Finished);
  Printf.printf "program output: %s\n" (String.trim r.Core.output);
  let ldt = Osim.Process.ldt r.Core.process in
  Printf.printf "\nLDT after execution (%d live entries):\n"
    (Seghw.Descriptor_table.live_count ldt);
  Printf.printf "%5s  %-10s %10s  %5s %s\n" "entry" "base" "size" "G" "kind";
  Seghw.Descriptor_table.iteri
    (fun i d ->
      let kind =
        if Seghw.Descriptor.is_call_gate d then "cash_modify_ldt call gate"
        else if Seghw.Descriptor.byte_size d > 1 lsl 20 then
          "array segment (page-granular, end-aligned)"
        else "array segment (byte-exact)"
      in
      Printf.printf "%5d  0x%08x %10d  %5b %s\n" i d.Seghw.Descriptor.base
        (if Seghw.Descriptor.is_call_gate d then 0
         else Seghw.Descriptor.byte_size d)
        d.Seghw.Descriptor.granularity kind)
    ldt;
  match r.Core.runtime with
  | Some rt ->
    Printf.printf
      "\nsegment pool: %d allocations, peak %d live, %d cache hits\n"
      (Cashrt.Runtime.stats rt).Cashrt.Runtime.seg_allocs
      (Cashrt.Segment_pool.peak_live (Cashrt.Runtime.pool rt))
      (Cashrt.Seg_cache.hits (Cashrt.Runtime.cache rt))
  | None -> ()
