(* A numerical pipeline under the three compilers, sweeping the Cash
   segment-register budget: reproduces in miniature the §4.2 experiment
   that motivates having at least 3 registers.

     dune exec examples/matrix_pipeline.exe
*)

let () =
  let src = Workloads.Micro.matmul ~n:32 () in
  Printf.printf "matrix multiply 32x32 (%d lines of mini-C)\n\n"
    (List.length (String.split_on_char '\n' src));
  let base = Core.exec Core.gcc src in
  Printf.printf "%-18s %10s %9s %s\n" "compiler" "cycles" "overhead"
    "checks (hw/sw)";
  let show name backend =
    let compiled = Core.compile backend src in
    let r = Core.run compiled in
    assert (r.Core.status = Core.Finished);
    assert (r.Core.output = base.Core.output);
    let i = Core.static_info compiled in
    Printf.printf "%-18s %10d %8.1f%% %d/%d\n" name r.Core.cycles
      (100.0
       *. (float_of_int r.Core.cycles /. float_of_int base.Core.cycles -. 1.0))
      i.Core.hw_checks i.Core.sw_checks
  in
  show "gcc (unchecked)" Core.gcc;
  show "bcc (software)" Core.bcc;
  show "cash, 2 segregs" (Core.cash_n 2);
  show "cash, 3 segregs" Core.cash;
  show "cash, 4 segregs" (Core.cash_n 4);
  Printf.printf "\nresult checksum: %s" base.Core.output;

  (* the 3-entry segment reuse cache at work: a function with a local
     array called inside a loop allocates its segment once, then reuses
     it from the cache on every subsequent call (§3.6) *)
  let cached = {|
int smooth(int *v, int n) {
  int tmp[16];
  int i; int s = 0;
  for (i = 0; i < n; i++) tmp[i] = v[i];
  for (i = 1; i < n - 1; i++) s += (tmp[i-1] + tmp[i] + tmp[i+1]) / 3;
  return s;
}
int data[16];
int main() {
  int i; int total = 0;
  for (i = 0; i < 200; i++) {
    data[i % 16] = i;
    total += smooth(data, 16);
  }
  print_int(total);
  return 0;
}
|} in
  let r = Core.exec Core.cash cached in
  match r.Core.runtime with
  | Some rt ->
    let c = Cashrt.Runtime.cache rt in
    Printf.printf
      "\nlocal-array function called 200x: %d segment allocations, %d from \
       the 3-entry cache, %d kernel entries\n"
      (Cashrt.Runtime.stats rt).Cashrt.Runtime.seg_allocs
      (Cashrt.Seg_cache.hits c)
      (Cashrt.Seg_cache.misses c)
  | None -> ()
