test/test_integration.ml: Alcotest Cashrt Core List
