test/test_osim.ml: Alcotest Char List Machine Osim Seghw
