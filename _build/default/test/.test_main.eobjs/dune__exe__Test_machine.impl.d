test/test_machine.ml: Alcotest Cost_model Cpu Encode Insn List Machine Phys_mem Program QCheck QCheck_alcotest Registers Seghw
