test/test_cash_semantics.ml: Alcotest Cashrt Core String
