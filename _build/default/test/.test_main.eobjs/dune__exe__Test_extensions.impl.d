test/test_extensions.ml: Alcotest Cashrt Compilers Core List Machine Osim Seghw String Workloads
