test/test_workloads.ml: Alcotest Core List Minic Printf Str String Workloads
