test/test_core.ml: Alcotest Core Machine Minic Osim String
