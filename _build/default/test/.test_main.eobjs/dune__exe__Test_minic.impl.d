test/test_minic.ml: Alcotest List Minic Printf
