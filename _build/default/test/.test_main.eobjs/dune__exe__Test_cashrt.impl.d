test/test_cashrt.ml: Alcotest Cashrt Hashtbl List Machine Osim QCheck Seghw
