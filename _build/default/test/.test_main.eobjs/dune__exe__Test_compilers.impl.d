test/test_compilers.ml: Alcotest Buffer Core List Printf QCheck QCheck_alcotest
