test/test_harness.ml: Alcotest Float Fmt Harness List Printf String
