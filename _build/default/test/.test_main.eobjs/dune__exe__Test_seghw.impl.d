test/test_seghw.ml: Alcotest Descriptor Descriptor_table Fault Mmu Paging QCheck QCheck_alcotest Seghw Segreg Selector Tlb
