(* Tests of the paper's bound-checking semantics: what each compiler
   catches, how, and the documented limitations (§3.4, §3.5, §3.8, §3.9). *)

let status b src = (Core.exec b src).Core.status

let check_caught name st =
  match st with
  | Core.Bound_violation _ -> ()
  | Core.Finished -> Alcotest.failf "%s: violation not caught" name
  | Core.Crashed m -> Alcotest.failf "%s: crashed instead: %s" name m

let check_finished name st =
  match st with
  | Core.Finished -> ()
  | Core.Bound_violation m -> Alcotest.failf "%s: spurious violation: %s" name m
  | Core.Crashed m -> Alcotest.failf "%s: crashed: %s" name m

let check_hw_caught name st =
  (* specifically by the segmentation hardware: #GP, or #SS when the
     4-register configuration covers an array with SS *)
  match st with
  | Core.Bound_violation m
    when String.length m >= 3
         && (String.sub m 0 3 = "#GP" || String.sub m 0 3 = "#SS") ->
    ()
  | Core.Bound_violation m -> Alcotest.failf "%s: caught but not by hw: %s" name m
  | _ -> Alcotest.failf "%s: not caught" name

let check_sw_caught name st =
  match st with
  | Core.Bound_violation m when String.length m >= 3 && String.sub m 0 3 = "#BR"
    -> ()
  | Core.Bound_violation m -> Alcotest.failf "%s: caught but not by sw: %s" name m
  | _ -> Alcotest.failf "%s: not caught" name

(* --- upper-bound overflows --------------------------------------------- *)

let global_overflow = {|
int buf[8];
int main() { int i; for (i = 0; i <= 8; i++) buf[i] = 7; return 0; }
|}

let test_global_overflow () =
  check_finished "gcc misses" (status Core.gcc global_overflow);
  check_sw_caught "bcc" (status Core.bcc global_overflow);
  check_hw_caught "cash" (status Core.cash global_overflow)

let local_overflow = {|
int main() {
  int buf[8];
  int i;
  for (i = 0; i <= 8; i++) buf[i] = 7;
  return 0; }
|}

let test_local_overflow () =
  check_sw_caught "bcc" (status Core.bcc local_overflow);
  check_hw_caught "cash" (status Core.cash local_overflow)

let heap_overflow = {|
int main() {
  int *p = (int*)malloc(4 * sizeof(int));
  int i;
  for (i = 0; i < 5; i++) p[i] = i;
  free(p);
  return 0; }
|}

let test_heap_overflow () =
  check_finished "gcc misses" (status Core.gcc heap_overflow);
  check_sw_caught "bcc" (status Core.bcc heap_overflow);
  check_hw_caught "cash" (status Core.cash heap_overflow)

let read_overflow = {|
int buf[8];
int main() {
  int s = 0; int i;
  for (i = 0; i <= 8; i++) s += buf[i];
  print_int(s);
  return 0; }
|}

let test_read_overflow () =
  (* Cash checks reads as well as writes (§3.8) *)
  check_hw_caught "cash read" (status Core.cash read_overflow);
  check_sw_caught "bcc read" (status Core.bcc read_overflow)

(* --- lower-bound violations --------------------------------------------- *)

let underflow = {|
int buf[8];
int main() { int i; for (i = 7; i >= -1; i--) buf[i] = 1; return 0; }
|}

let test_underflow () =
  (* Cash checks BOTH bounds via segment wrap-around; BCC only the upper
     bound for direct array refs but the unsigned compare also nets the
     negative index *)
  check_hw_caught "cash lower" (status Core.cash underflow);
  check_caught "bcc lower" (status Core.bcc underflow)

let ptr_underflow = {|
int main() {
  int *p = (int*)malloc(8 * sizeof(int));
  int i;
  for (i = 7; i >= -1; i--) p[i] = 1;
  free(p);
  return 0; }
|}

let test_ptr_underflow () =
  check_hw_caught "cash ptr lower" (status Core.cash ptr_underflow);
  check_sw_caught "bcc ptr lower" (status Core.bcc ptr_underflow)

(* --- the classic attack shape -------------------------------------------- *)

let strcpy_attack = {|
char dst[12];
int main() {
  char *src = "a much longer string that overflows the destination";
  int i = 0;
  while (src[i] != 0) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return 0; }
|}

let test_strcpy_attack () =
  check_finished "gcc misses attack" (status Core.gcc strcpy_attack);
  check_hw_caught "cash stops attack" (status Core.cash strcpy_attack)

let off_by_one_terminator = {|
char dst[5];
int main() {
  char *src = "12345"; /* exactly fills dst; the terminator overflows */
  int i = 0;
  while (src[i] != 0) { dst[i] = src[i]; i++; }
  dst[i] = 0;   /* the overflowing store is OUTSIDE the loop */
  return 0; }
|}

let test_off_by_one () =
  (* the copy loop itself stays in bounds; the overflowing NUL store sits
     outside any loop, so Cash — by design (§3.8) — does not check it,
     while BCC does. A precise documentation of the two tools' scopes. *)
  check_finished "cash skips the non-loop store"
    (status Core.cash off_by_one_terminator);
  check_sw_caught "bcc catches it" (status Core.bcc off_by_one_terminator);
  (* moving the terminator store into the loop brings it under Cash *)
  let inloop = {|
char dst[5];
int main() {
  char *src = "12345";
  int i = 0;
  while (src[i] != 0) { dst[i] = src[i]; i++; dst[i] = 0; }
  return 0; }
|} in
  check_hw_caught "cash catches in-loop variant" (status Core.cash inloop)

(* --- spilled arrays still protected (software fallback, §3.7) ------------- *)

let spill_overflow = {|
int a[8]; int b[8]; int c[8]; int d[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) { a[i]=0; b[i]=0; c[i]=0; d[i]=0; }
  /* overflow the FOURTH array: beyond the 3-register budget */
  for (i = 0; i <= 8; i++) { a[i%8]=0; b[i%8]=0; c[i%8]=0; d[i]=1; }
  return 0; }
|}

let test_spilled_array_protected () =
  (* cash3: d is software-checked, still caught *)
  check_sw_caught "cash3 spilled" (status Core.cash spill_overflow);
  (* cash4: d gets the fourth register, caught in hardware *)
  check_hw_caught "cash4 hw" (status (Core.cash_n 4) spill_overflow)

(* --- documented limitations ------------------------------------------------ *)

let outside_loop_overflow = {|
int buf[4];
int main() {
  buf[5] = 1;   /* out of bounds but NOT inside a loop */
  return 0; }
|}

let test_outside_loop_unchecked () =
  (* §3.8: Cash only checks references inside loops; BCC catches it *)
  check_finished "cash skips non-loop refs"
    (status Core.cash outside_loop_overflow);
  check_sw_caught "bcc catches" (status Core.bcc outside_loop_overflow)

let cast_launders_checking = {|
int x;           /* global scalar: its neighbourhood stays mapped */
int filler[64];
int main() {
  int *p = &x;                 /* scalar: global segment (§3.9) */
  char *q = (char*)p;          /* cast keeps the unchecked shadow */
  int i; int s = 0;
  for (i = 0; i < 100; i++) s += q[i];
  print_int(s);
  return 0; }
|}

let test_scalar_pointer_unchecked () =
  (* §3.9: pointers to scalars are associated with the global segment;
     bound checking is disabled for them (and for casts of them) *)
  check_finished "global-segment pointer" (status Core.cash cast_launders_checking)

let big_array_slack = {|
char pad[8192];   /* occupies the address range below big, so Figure 2's
                     slack region is mapped memory belonging to another
                     object — exactly the paper's hazard scenario */
char big[2000000];
int main() {
  pad[0] = 0;
  /* 2000000 bytes -> segment of 489 pages = 2002944 bytes; the array end
     is aligned with the segment end, so the slack of 2944 bytes sits
     BELOW the array (Figure 2) */
  char *p = big;
  int i;
  for (i = 0; i < 10; i++) p[i - 2000] = 1;  /* within slack: NOT caught */
  return 0; }
|}

let test_big_array_lower_slack () =
  check_finished "within-slack access passes (Fig 2)"
    (status Core.cash big_array_slack)

let big_array_below_slack = {|
char big[2000000];
int main() {
  char *p = big;
  int i;
  for (i = 0; i < 10; i++) p[i - 6000] = 1;  /* beyond the 4 KiB slack */
  return 0; }
|}

let test_big_array_below_slack_caught () =
  check_hw_caught "below slack caught" (status Core.cash big_array_below_slack)

let big_array_upper_exact = {|
char big[2000000];
int main() {
  int i;
  for (i = 1999995; i <= 2000000; i++) big[i] = 1; /* upper bound exact */
  return 0; }
|}

let test_big_array_upper_exact () =
  (* §3.5: the end of the array is aligned with the end of the segment, so
     the upper bound stays byte-exact even with G=1 *)
  check_hw_caught "upper exact" (status Core.cash big_array_upper_exact)

(* --- segment register discipline -------------------------------------------- *)

let callee_uses_segregs = {|
int helper(int *p, int n) {
  int s = 0; int i;
  for (i = 0; i < n; i++) s += p[i];   /* helper loads ES for p */
  return s; }
int a[4]; int b[4];
int main() {
  int i; int s = 0;
  for (i = 0; i < 4; i++) { a[i] = i; b[i] = 2*i; }
  for (i = 0; i < 4; i++) {
    s += a[i];            /* ES covers a in this nest */
    s += helper(b, 4);    /* helper saves/restores ES */
    s += a[i];            /* must still be checked against a's segment */
  }
  print_int(s);
  return 0; }
|}

let test_segreg_save_restore_across_calls () =
  let r = Core.exec Core.cash callee_uses_segregs in
  check_finished "nested segreg use" r.Core.status;
  Alcotest.(check string) "value" "60\n" r.Core.output;
  (* and the checking still works after the call *)
  let broken = {|
int helper(int *p, int n) {
  int s = 0; int i;
  for (i = 0; i < n; i++) s += p[i];
  return s; }
int a[4]; int b[4];
int main() {
  int i; int s = 0;
  for (i = 0; i < 5; i++) {
    s += helper(b, 4);
    s += a[i];           /* i = 4 overflows a AFTER the call */
  }
  print_int(s);
  return 0; }
|} in
  check_hw_caught "overflow after call" (status Core.cash broken)

let test_static_check_counts () =
  (* Table 1 second column: with enough registers all checks are hardware *)
  let src = {|
double a[16]; double b[16]; double c[16];
int main() {
  int i;
  for (i = 0; i < 16; i++) c[i] = a[i] + b[i];
  return 0; }
|} in
  let info3 = Core.static_info (Core.compile Core.cash src) in
  Alcotest.(check int) "no sw checks at budget 3" 0 info3.Core.sw_checks;
  Alcotest.(check int) "3 hw checks" 3 info3.Core.hw_checks;
  let info2 = Core.static_info (Core.compile (Core.cash_n 2) src) in
  Alcotest.(check bool) "sw checks appear at budget 2" true
    (info2.Core.sw_checks > 0)

let test_bcc_checks_everywhere () =
  let src = {|
int buf[4];
int main() {
  buf[0] = 1;                       /* outside loop: BCC checks */
  int i;
  for (i = 0; i < 4; i++) buf[i] = i; /* inside loop */
  return 0; }
|} in
  let info = Core.static_info (Core.compile Core.bcc src) in
  Alcotest.(check int) "2 static check sites" 2 info.Core.bcc_checks;
  let cinfo = Core.static_info (Core.compile Core.cash src) in
  Alcotest.(check int) "cash checks only the loop site" 1 cinfo.Core.hw_checks

let test_binary_size_ordering () =
  (* Tables 2/6: gcc < cash < bcc in code size, on a pointer-heavy program
     where BCC's 6-instruction checks and 3-word pointers dominate (tiny
     programs are dominated by Cash's fixed prologue code instead) *)
  let src = {|
double a[64]; double b[64];
double dot(double *x, double *y, int n) {
  double s = 0.0; int i;
  for (i = 0; i < n; i++) s = s + x[i] * y[i];
  return s; }
void scale(double *x, int n, double k) {
  int i;
  for (i = 0; i < n; i++) x[i] = x[i] * k; }
void copy(double *x, double *y, int n) {
  int i;
  for (i = 0; i < n; i++) y[i] = x[i]; }
int main() {
  int i;
  for (i = 0; i < 64; i++) a[i] = (double)i;
  copy(a, b, 64);
  scale(b, 64, 2.0);
  print_float(dot(a, b, 64));
  return 0; }
|} in
  let size bk = (Core.static_info (Core.compile bk src)).Core.code_bytes in
  let g = size Core.gcc and bc = size Core.bcc and ca = size Core.cash in
  Alcotest.(check bool) "gcc smallest" true (g < ca);
  Alcotest.(check bool) "bcc biggest" true (ca < bc)

let test_runtime_stats_exposed () =
  let src = {|
int work() { int t[8]; int i; int s=0;
  for (i=0;i<8;i++) t[i]=i;
  for (i=0;i<8;i++) s+=t[i];
  return s; }
int main() { int i; int s=0; for (i=0;i<50;i++) s+=work(); print_int(s); return 0; }
|} in
  let r = Core.exec Core.cash src in
  check_finished "runs" r.Core.status;
  match r.Core.runtime with
  | None -> Alcotest.fail "no runtime attached"
  | Some rt ->
    let cache = Cashrt.Runtime.cache rt in
    Alcotest.(check bool) "3-entry cache soaks repeat calls" true
      (Cashrt.Seg_cache.hits cache >= 49);
    let st = (Cashrt.Runtime.stats rt) in
    Alcotest.(check bool) "allocs counted" true
      (st.Cashrt.Runtime.seg_allocs >= 50)

let test_null_pointer_deref_faults () =
  let src = {|
int main() {
  int *p = (int*)0;
  int i; int s = 0;
  for (i = 0; i < 4; i++) s += p[i];
  print_int(s);
  return 0; }
|} in
  (* not a bound violation, but must fault (page fault), not succeed *)
  match status Core.gcc src with
  | Core.Crashed _ -> ()
  | _ -> Alcotest.fail "null deref should fault"

let suite =
  [
    Alcotest.test_case "global overflow" `Quick test_global_overflow;
    Alcotest.test_case "local overflow" `Quick test_local_overflow;
    Alcotest.test_case "heap overflow" `Quick test_heap_overflow;
    Alcotest.test_case "read overflow" `Quick test_read_overflow;
    Alcotest.test_case "underflow" `Quick test_underflow;
    Alcotest.test_case "pointer underflow" `Quick test_ptr_underflow;
    Alcotest.test_case "strcpy attack" `Quick test_strcpy_attack;
    Alcotest.test_case "off-by-one" `Quick test_off_by_one;
    Alcotest.test_case "spilled arrays protected" `Quick test_spilled_array_protected;
    Alcotest.test_case "outside-loop unchecked (§3.8)" `Quick test_outside_loop_unchecked;
    Alcotest.test_case "scalar pointers unchecked (§3.9)" `Quick test_scalar_pointer_unchecked;
    Alcotest.test_case "big array slack passes (Fig 2)" `Quick test_big_array_lower_slack;
    Alcotest.test_case "below slack caught (Fig 2)" `Quick test_big_array_below_slack_caught;
    Alcotest.test_case "big array upper exact (§3.5)" `Quick test_big_array_upper_exact;
    Alcotest.test_case "segreg save/restore across calls" `Quick test_segreg_save_restore_across_calls;
    Alcotest.test_case "static check counts (Table 1)" `Quick test_static_check_counts;
    Alcotest.test_case "bcc checks everywhere" `Quick test_bcc_checks_everywhere;
    Alcotest.test_case "binary size ordering (Tables 2/6)" `Quick test_binary_size_ordering;
    Alcotest.test_case "runtime stats exposed" `Quick test_runtime_stats_exposed;
    Alcotest.test_case "null deref faults" `Quick test_null_pointer_deref_faults;
  ]
