(* Tests of the public Core facade: the API a downstream user programs
   against. *)

let test_backend_names () =
  Alcotest.(check string) "gcc" "gcc" (Core.backend_name Core.gcc);
  Alcotest.(check string) "bcc" "bcc" (Core.backend_name Core.bcc);
  Alcotest.(check string) "cash" "cash3" (Core.backend_name Core.cash);
  Alcotest.(check string) "cash4" "cash4" (Core.backend_name (Core.cash_n 4));
  Alcotest.(check string) "bound" "bcc-bound" (Core.backend_name Core.bcc_bound)

let test_cash_n_validation () =
  Alcotest.check_raises "no cash5"
    (Invalid_argument "cash_n: no 5-register configuration") (fun () ->
      ignore (Core.cash_n 5))

let test_compile_errors_propagate () =
  (match Core.compile Core.cash "int main() { @ }" with
   | exception Minic.Lexer.Lex_error _ -> ()
   | _ -> Alcotest.fail "expected lex error");
  (match Core.compile Core.cash "int main() { return 0 }" with
   | exception Minic.Parser.Parse_error _ -> ()
   | _ -> Alcotest.fail "expected parse error");
  match Core.compile Core.cash "int main() { return x; }" with
  | exception Minic.Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error"

let test_exec_roundtrip () =
  let r = Core.exec Core.cash "int main() { print_int(6 * 7); return 0; }" in
  Alcotest.(check bool) "finished" true (r.Core.status = Core.Finished);
  Alcotest.(check string) "output" "42\n" r.Core.output;
  Alcotest.(check bool) "cycles counted" true (r.Core.cycles > 0);
  Alcotest.(check bool) "insns counted" true (r.Core.insns > 0);
  Alcotest.(check bool) "runtime attached for cash" true
    (r.Core.runtime <> None)

let test_gcc_has_no_runtime () =
  let r = Core.exec Core.gcc "int main() { return 0; }" in
  Alcotest.(check bool) "no cash runtime" true (r.Core.runtime = None)

let test_shared_kernel_clock () =
  let kernel = Osim.Kernel.create () in
  let c = Core.compile Core.gcc "int main() { return 0; }" in
  let r1 = Core.run ~kernel c in
  let r2 = Core.run ~kernel c in
  ignore r1;
  ignore r2;
  Alcotest.(check bool) "clock advanced across runs" true
    (Osim.Kernel.clock kernel > 0);
  Alcotest.(check bool) "second process later" true
    (Osim.Process.created_at r2.Core.process
     >= Osim.Process.terminated_at r1.Core.process)

let test_fuel_limit () =
  match
    Core.exec ~fuel:1000 Core.gcc "int main() { while (1) { } return 0; }"
  with
  | exception Machine.Cpu.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_static_info () =
  let src = {|
int a[4];
int main() { int i; for (i = 0; i < 4; i++) a[i] = i; return 0; }
|} in
  let i = Core.static_info (Core.compile Core.cash src) in
  Alcotest.(check int) "1 hw check" 1 i.Core.hw_checks;
  Alcotest.(check bool) "code measured" true (i.Core.code_bytes > 0);
  Alcotest.(check bool) "data includes array + info" true
    (i.Core.data_bytes >= 16 + 12);
  Alcotest.(check int) "image = code + data" i.Core.image_bytes
    (i.Core.code_bytes + i.Core.data_bytes);
  Alcotest.(check int) "one array loop" 1
    i.Core.loops.Minic.Loop_analysis.array_using_loops

let test_stat_sum () =
  let src = {|
int a[4];
int main() { int i; for (i = 0; i < 100; i++) a[i % 4] = i; return 0; }
|} in
  let r = Core.exec Core.cash src in
  Alcotest.(check int) "100 loop iterations" 100
    (Core.stat_sum r ~prefix:"__stat_iter_a_")

let test_bound_violation_surfaces () =
  let r = Core.exec Core.cash
      "int a[2]; int main() { int i; for (i=0;i<9;i++) a[i]=i; return 0; }"
  in
  match r.Core.status with
  | Core.Bound_violation msg ->
    Alcotest.(check bool) "message names the segment" true
      (String.length msg > 10)
  | _ -> Alcotest.fail "expected violation"

let suite =
  [
    Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "cash_n validation" `Quick test_cash_n_validation;
    Alcotest.test_case "compile errors" `Quick test_compile_errors_propagate;
    Alcotest.test_case "exec roundtrip" `Quick test_exec_roundtrip;
    Alcotest.test_case "gcc has no runtime" `Quick test_gcc_has_no_runtime;
    Alcotest.test_case "shared kernel clock" `Quick test_shared_kernel_clock;
    Alcotest.test_case "fuel limit" `Quick test_fuel_limit;
    Alcotest.test_case "static info" `Quick test_static_info;
    Alcotest.test_case "stat sum" `Quick test_stat_sum;
    Alcotest.test_case "violation surfaces" `Quick test_bound_violation_surfaces;
  ]
