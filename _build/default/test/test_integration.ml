(* Integration tests: substantial multi-feature programs that stress the
   whole stack at once — nested loop nests with calls, segment-register
   churn across functions, recursion with local arrays, heap/stack/global
   mixes — each run under every backend with a differential check and a
   hand-verified expected output. *)

let backends =
  [ ("gcc", Core.gcc); ("bcc", Core.bcc); ("cash2", Core.cash_n 2);
    ("cash3", Core.cash); ("cash4", Core.cash_n 4);
    ("security", Core.cash_security); ("bound", Core.bcc_bound) ]

let check_all name ~expect src () =
  List.iter
    (fun (bname, b) ->
      let r = Core.exec b src in
      (match r.Core.status with
       | Core.Finished -> ()
       | Core.Bound_violation m ->
         Alcotest.failf "%s/%s: violation: %s" name bname m
       | Core.Crashed m -> Alcotest.failf "%s/%s: crash: %s" name bname m);
      Alcotest.(check string) (name ^ "/" ^ bname) expect r.Core.output)
    backends

let case name ~expect src =
  Alcotest.test_case name `Slow (check_all name ~expect src)

(* histogram + prefix sums + binary search: three phases over shared
   arrays, each phase its own nest *)
let pipeline = {|
int data[128];
int hist[16];
int cum[16];

int bsearch_bucket(int *c, int n, int v) {
  int lo = 0; int hi = n - 1; int ans = n;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (c[mid] >= v) { ans = mid; hi = mid - 1; }
    else lo = mid + 1;
  }
  return ans;
}

int main() {
  int i;
  for (i = 0; i < 128; i++) data[i] = (i * 37 + 11) % 160;
  for (i = 0; i < 16; i++) hist[i] = 0;
  for (i = 0; i < 128; i++) hist[data[i] / 10]++;
  cum[0] = hist[0];
  for (i = 1; i < 16; i++) cum[i] = cum[i-1] + hist[i];
  int s = 0;
  for (i = 0; i < 128; i += 16) s += bsearch_bucket(cum, 16, i);
  print_int(cum[15]);
  print_int(s);
  return 0;
}
|}

(* quicksort with explicit stack arrays: recursion + local arrays +
   pointer parameters *)
let sorting = {|
int vals[64];

void swap(int *v, int i, int j) {
  int t = v[i]; v[i] = v[j]; v[j] = t;
}

void qsort_range(int *v, int lo, int hi) {
  if (lo >= hi) return;
  int pivot = v[hi];
  int store = lo;
  int i;
  for (i = lo; i < hi; i++) {
    if (v[i] < pivot) { swap(v, i, store); store++; }
  }
  swap(v, store, hi);
  qsort_range(v, lo, store - 1);
  qsort_range(v, store + 1, hi);
}

int main() {
  int i;
  for (i = 0; i < 64; i++) vals[i] = (i * 43 + 7) % 100;
  qsort_range(vals, 0, 63);
  int sorted = 1;
  for (i = 1; i < 64; i++) if (vals[i-1] > vals[i]) sorted = 0;
  print_int(sorted);
  print_int(vals[0]);
  print_int(vals[63]);
  return 0;
}
|}

(* heap-allocated matrix chain with function boundaries: malloc'd buffers
   flowing through pointer parameters and returns *)
let heap_chain = {|
int *make_vec(int n, int seed) {
  int *v = (int*)malloc(n * sizeof(int));
  int i;
  for (i = 0; i < n; i++) v[i] = (seed + i) % 23;
  return v;
}

int dot(int *a, int *b, int n) {
  int s = 0; int i;
  for (i = 0; i < n; i++) s += a[i] * b[i];
  return s;
}

int main() {
  int total = 0;
  int r;
  for (r = 0; r < 8; r++) {
    int *x = make_vec(20, r);
    int *y = make_vec(20, r * 3 + 1);
    total += dot(x, y, 20);
    free(x);
    free(y);
  }
  print_int(total);
  return 0;
}
|}

(* text processing: tokenise, uppercase, reverse words — char arrays and
   string literals through helper functions *)
let words = {|
int wlen(char *s, int i) {
  int n = 0;
  while (s[i + n] != 0 && s[i + n] != ' ') n++;
  return n;
}

int main() {
  char *text = "the quick brown fox jumps over the lazy dog";
  char out[64];
  int i = 0; int o = 0;
  while (text[i] != 0) {
    if (text[i] == ' ') { out[o] = ' '; o++; i++; continue; }
    int n = wlen(text, i);
    int k;
    for (k = 0; k < n; k++) out[o + k] = text[i + n - 1 - k];
    o += n;
    i += n;
  }
  out[o] = 0;
  /* checksum the reversed text */
  int sum = 0;
  for (i = 0; i < o; i++) sum += out[i] * (i + 1);
  print_int(o);
  print_int(sum);
  return 0;
}
|}

(* fixed-point IIR filter bank: doubles + ints mixed, multiple filters in
   one loop (register pressure) *)
let filters = {|
double b0[4]; double b1[4]; double state[4];
int main() {
  int f; int t;
  for (f = 0; f < 4; f++) {
    b0[f] = 0.1 + 0.2 * (double)f;
    b1[f] = 0.9 - 0.2 * (double)f;
    state[f] = 0.0;
  }
  double acc = 0.0;
  for (t = 0; t < 500; t++) {
    double x = sin(0.01 * (double)t);
    for (f = 0; f < 4; f++) {
      state[f] = b0[f] * x + b1[f] * state[f];
      acc = acc + state[f];
    }
  }
  print_float(acc);
  return 0;
}
|}

(* segment churn: many short-lived local arrays across a deep call chain,
   hammering the pool and 3-entry cache *)
let churn = {|
int leaf(int seed) {
  int tmp[8];
  int i; int s = 0;
  for (i = 0; i < 8; i++) tmp[i] = seed * i;
  for (i = 0; i < 8; i++) s += tmp[i];
  return s;
}
int middle(int seed) {
  int buf[12];
  int i; int s = 0;
  for (i = 0; i < 12; i++) buf[i] = leaf(seed + i);
  for (i = 0; i < 12; i++) s += buf[i] % 1000;
  return s;
}
int main() {
  int r; int total = 0;
  for (r = 0; r < 30; r++) total += middle(r) % 10007;
  print_int(total);
  return 0;
}
|}

let test_churn_cache_behaviour () =
  let r = Core.exec Core.cash churn in
  Alcotest.(check bool) "finished" true (r.Core.status = Core.Finished);
  match r.Core.runtime with
  | None -> Alcotest.fail "no runtime"
  | Some rt ->
    let misses = Cashrt.Seg_cache.misses (Cashrt.Runtime.cache rt) in
    let allocs = (Cashrt.Runtime.stats rt).Cashrt.Runtime.seg_allocs in
    (* hundreds of allocations, only a handful of kernel entries *)
    Alcotest.(check bool) "many allocations" true (allocs > 300);
    Alcotest.(check bool) "few kernel entries" true (misses < 10)

let suite =
  [
    case "pipeline (hist+scan+bsearch)" ~expect:"128\n49\n" pipeline;
    case "quicksort (recursion)" ~expect:"1\n0\n99\n" sorting;
    case "heap chain (malloc flow)" ~expect:"19481\n" heap_chain;
    case "word reversal (strings)" ~expect:"43\n89484\n" words;
    case "filter bank (fp arrays)" ~expect:"300.887045\n" filters;
    case "segment churn" ~expect:"186600\n" churn;
    Alcotest.test_case "churn cache behaviour" `Quick test_churn_cache_behaviour;
  ]
