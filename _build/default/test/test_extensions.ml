(* Tests for the paper's optional/extension features: security-only mode
   (§3.8), the BOUND-instruction checker (§2), and segment-pool
   exhaustion with the global-segment fallback (§3.4). *)

let write_overflow = {|
int buf[8];
int main() { int i; for (i = 0; i <= 8; i++) buf[i] = i; return 0; }
|}

let read_overflow = {|
int buf[8];
int main() {
  int i; int s = 0;
  for (i = 0; i <= 8; i++) s += buf[i];
  print_int(s);
  return 0; }
|}

let test_security_only_semantics () =
  (* writes still caught *)
  (match (Core.exec Core.cash_security write_overflow).Core.status with
   | Core.Bound_violation _ -> ()
   | _ -> Alcotest.fail "security-only must catch write overflows");
  (* reads deliberately not checked *)
  match (Core.exec Core.cash_security read_overflow).Core.status with
  | Core.Finished -> ()
  | _ -> Alcotest.fail "security-only must skip read checks"

let test_security_only_cheaper () =
  let src = Workloads.Micro.svd () in
  let full = Core.exec Core.cash src in
  let sec = Core.exec Core.cash_security src in
  Alcotest.(check string) "same result" full.Core.output sec.Core.output;
  Alcotest.(check bool) "fewer cycles" true (sec.Core.cycles <= full.Core.cycles)

let test_security_only_frees_registers () =
  (* an all-read loop consumes no segment registers in security mode *)
  let src = {|
int a[8]; int b[8]; int c[8]; int out[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) out[i] = a[i] + b[i] + c[i];
  print_int(out[0]);
  return 0; }
|} in
  (* full mode: 4 bases, 1 spilled at budget 3 *)
  let full = Core.static_info (Core.compile Core.cash src) in
  Alcotest.(check bool) "full mode spills" true (full.Core.sw_checks > 0);
  (* security mode: only [out] is written => only it takes a register,
     reads are unchecked, nothing spills *)
  let sec = Core.static_info (Core.compile Core.cash_security src) in
  Alcotest.(check int) "one hw check" 1 sec.Core.hw_checks;
  Alcotest.(check int) "no sw checks" 0 sec.Core.sw_checks

let test_bound_backend_catches () =
  (match (Core.exec Core.bcc_bound write_overflow).Core.status with
   | Core.Bound_violation m ->
     Alcotest.(check bool) "via #BR" true
       (String.length m >= 3 && String.sub m 0 3 = "#BR")
   | _ -> Alcotest.fail "bound backend must catch overflows");
  match (Core.exec Core.bcc_bound read_overflow).Core.status with
  | Core.Bound_violation _ -> ()
  | _ -> Alcotest.fail "bound backend checks reads too"

let test_bound_slower_than_sequence () =
  (* §2: BOUND (7 cycles, memory-resident bounds) loses to the plain
     6-instruction sequence on every kernel *)
  List.iter
    (fun (k : Workloads.Micro.kernel) ->
      let src = k.Workloads.Micro.source in
      let seq = Core.exec Core.bcc src in
      let bnd = Core.exec Core.bcc_bound src in
      Alcotest.(check string)
        (k.Workloads.Micro.name ^ " same result")
        seq.Core.output bnd.Core.output;
      Alcotest.(check bool)
        (k.Workloads.Micro.name ^ " bound slower")
        true
        (bnd.Core.cycles > seq.Core.cycles))
    (Workloads.Micro.table1_suite ())

(* §3.4: when more arrays co-exist than the LDT can hold, the extras get
   the global segment — bound checking silently disabled for them, the
   program keeps running. Exercised with a tiny pool. *)
let test_pool_exhaustion_fallback () =
  let src = {|
int use(int *p) {
  int i; int s = 0;
  for (i = 0; i < 4; i++) { p[i] = i; s += p[i]; }
  return s; }
int main() {
  /* six simultaneously-live heap arrays */
  int *a = (int*)malloc(4 * sizeof(int));
  int *b = (int*)malloc(4 * sizeof(int));
  int *c = (int*)malloc(4 * sizeof(int));
  int *d = (int*)malloc(4 * sizeof(int));
  int *e = (int*)malloc(4 * sizeof(int));
  int *f = (int*)malloc(4 * sizeof(int));
  print_int(use(a) + use(b) + use(c) + use(d) + use(e) + use(f));
  free(a); free(b); free(c); free(d); free(e); free(f);
  return 0; }
|} in
  let compiled = Core.compile Core.cash src in
  let kernel = Osim.Kernel.create () in
  let process = Osim.Process.load ~kernel compiled.Compilers.Codegen.program in
  (* pool of 3: the last allocations must fall back to the flat segment *)
  let rt = Cashrt.Runtime.attach ~pool_capacity:3 process in
  (match Osim.Process.run process with
   | Machine.Cpu.Halted -> ()
   | Machine.Cpu.Faulted f ->
     Alcotest.failf "fallback should keep running: %s" (Seghw.Fault.to_string f)
   | Machine.Cpu.Running -> Alcotest.fail "did not halt");
  Alcotest.(check string) "result intact" "36\n" (Osim.Process.output process);
  Alcotest.(check bool) "fallbacks counted" true
    ((Cashrt.Runtime.stats rt).Cashrt.Runtime.global_fallbacks > 0)

let test_pool_exhaustion_disables_checking () =
  (* an overflow through a fallback array is NOT caught — the documented
     degradation of §3.4 *)
  let src = {|
int main() {
  int *a = (int*)malloc(4 * sizeof(int));
  int *b = (int*)malloc(4 * sizeof(int));
  int *victim = (int*)malloc(4 * sizeof(int));
  int i;
  for (i = 0; i < 8; i++) victim[i] = i;   /* overflows by 4 ints */
  print_int(a[0] + b[0]);
  free(a); free(b); free(victim);
  return 0; }
|} in
  let run_with_capacity cap =
    let compiled = Core.compile Core.cash src in
    let kernel = Osim.Kernel.create () in
    let process =
      Osim.Process.load ~kernel compiled.Compilers.Codegen.program
    in
    ignore (Cashrt.Runtime.attach ~pool_capacity:cap process);
    Osim.Process.run process
  in
  (* with room in the pool, the overflow is caught *)
  (match run_with_capacity 10 with
   | Machine.Cpu.Faulted f when Seghw.Fault.is_bound_violation f -> ()
   | _ -> Alcotest.fail "expected catch with healthy pool");
  (* with the pool exhausted before victim's allocation, it is not *)
  match run_with_capacity 2 with
  | Machine.Cpu.Halted -> ()
  | Machine.Cpu.Faulted f ->
    Alcotest.failf "expected silent miss, got %s" (Seghw.Fault.to_string f)
  | Machine.Cpu.Running -> Alcotest.fail "did not halt"

let suite =
  [
    Alcotest.test_case "security-only semantics" `Quick test_security_only_semantics;
    Alcotest.test_case "security-only cheaper" `Quick test_security_only_cheaper;
    Alcotest.test_case "security-only frees registers" `Quick
      test_security_only_frees_registers;
    Alcotest.test_case "bound backend catches" `Quick test_bound_backend_catches;
    Alcotest.test_case "bound slower (§2)" `Slow test_bound_slower_than_sequence;
    Alcotest.test_case "pool exhaustion fallback (§3.4)" `Quick
      test_pool_exhaustion_fallback;
    Alcotest.test_case "pool exhaustion disables checks" `Quick
      test_pool_exhaustion_disables_checking;
  ]

(* --- Electric Fence guard-page malloc (§2 comparator) ------------------- *)

let heap_overflow_src = {|
int main() {
  int *p = (int*)malloc(24 * sizeof(int));
  int i;
  for (i = 0; i < 25; i++) p[i] = i;
  free(p);
  return 0; }
|}

let test_efence_catches_heap_overrun () =
  (* plain gcc misses it *)
  (match (Core.exec Core.gcc heap_overflow_src).Core.status with
   | Core.Finished -> ()
   | _ -> Alcotest.fail "gcc should miss the heap overrun");
  (* efence turns it into a page fault at the guard page *)
  match (Core.exec ~guard_malloc:true Core.gcc heap_overflow_src).Core.status with
  | Core.Crashed m when String.length m >= 3 && String.sub m 0 3 = "#PF" -> ()
  | s ->
    Alcotest.failf "expected guard-page #PF, got %s"
      (match s with
       | Core.Finished -> "finished"
       | Core.Bound_violation m -> m
       | Core.Crashed m -> m)

let test_efence_catches_use_after_free () =
  let src = {|
int main() {
  int *p = (int*)malloc(16 * sizeof(int));
  p[0] = 1;
  free(p);
  p[0] = 2;   /* freed memory is unmapped under efence */
  return 0; }
|} in
  (match (Core.exec Core.gcc src).Core.status with
   | Core.Finished -> ()
   | _ -> Alcotest.fail "gcc should miss use-after-free");
  match (Core.exec ~guard_malloc:true Core.gcc src).Core.status with
  | Core.Crashed m when String.length m >= 3 && String.sub m 0 3 = "#PF" -> ()
  | _ -> Alcotest.fail "efence should catch use-after-free"

let test_efence_correct_programs_unaffected () =
  let src = {|
int main() {
  int r; int total = 0;
  for (r = 0; r < 20; r++) {
    int *buf = (int*)malloc(10 * sizeof(int));
    int i;
    for (i = 0; i < 10; i++) buf[i] = r + i;
    for (i = 0; i < 10; i++) total += buf[i];
    free(buf);
  }
  print_int(total);
  return 0; }
|} in
  let plain = Core.exec Core.gcc src in
  let fenced = Core.exec ~guard_malloc:true Core.gcc src in
  Alcotest.(check bool) "both finish" true
    (plain.Core.status = Core.Finished && fenced.Core.status = Core.Finished);
  Alcotest.(check string) "same output" plain.Core.output fenced.Core.output;
  Alcotest.(check int) "zero cycle overhead" plain.Core.cycles
    fenced.Core.cycles;
  (* ... but a page-granular memory bill *)
  let heap r = Osim.Libc.peak_heap (Osim.Process.libc r.Core.process) in
  Alcotest.(check bool) "memory blowup" true (heap fenced > 50 * heap plain)

let test_efence_misses_static_arrays () =
  (* the paper's point: a malloc debugger cannot see static arrays *)
  let src = {|
int buf[8];
int main() { int i; for (i = 0; i <= 8; i++) buf[i] = i; return 0; }
|} in
  match (Core.exec ~guard_malloc:true Core.gcc src).Core.status with
  | Core.Finished -> ()
  | _ -> Alcotest.fail "efence has no view of static arrays"

let suite =
  suite
  @ [
      Alcotest.test_case "efence catches heap overrun" `Quick
        test_efence_catches_heap_overrun;
      Alcotest.test_case "efence catches use-after-free" `Quick
        test_efence_catches_use_after_free;
      Alcotest.test_case "efence zero overhead, big memory" `Quick
        test_efence_correct_programs_unaffected;
      Alcotest.test_case "efence misses static arrays" `Quick
        test_efence_misses_static_arrays;
    ]
