(* Tests for the simulated kernel, libc, process loader, and scheduler. *)

let trivial_program =
  Machine.Program.link ~entry:"_start"
    Machine.Insn.[ Label "_start"; Mov (Long, Reg Machine.Registers.EAX, Imm 7); Halt ]

let test_kernel_gdt_layout () =
  let k = Osim.Kernel.create () in
  let gdt = Osim.Kernel.gdt k in
  (match Seghw.Descriptor_table.get gdt Osim.Kernel.user_code_index with
   | Some d ->
     Alcotest.(check bool) "user code is code" true (Seghw.Descriptor.is_code d);
     Alcotest.(check int) "dpl 3" 3 d.Seghw.Descriptor.dpl
   | None -> Alcotest.fail "no user code descriptor");
  match Seghw.Descriptor_table.get gdt Osim.Kernel.user_data_index with
  | Some d ->
    Alcotest.(check bool) "flat 4GiB" true
      (Seghw.Descriptor.byte_size d = 1 lsl 32)
  | None -> Alcotest.fail "no user data descriptor"

let test_process_load_and_run () =
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k trivial_program in
  (match Osim.Process.run p with
   | Machine.Cpu.Halted -> ()
   | _ -> Alcotest.fail "should halt");
  Alcotest.(check int) "eax" 7
    (Machine.Registers.get (Machine.Cpu.regs (Osim.Process.cpu p))
       Machine.Registers.EAX);
  Alcotest.(check bool) "clock advanced" true (Osim.Kernel.clock k > 0)

let test_data_section_init () =
  let data =
    [ { Machine.Program.label = "hello"; addr = 0x08100000; size = 6;
        init = Some "hello\000" } ]
  in
  let prog =
    Machine.Program.link ~entry:"_start" ~data
      Machine.Insn.[
        Label "_start";
        Movzx (Machine.Registers.EAX, Mem (Machine.Insn.mem ~disp:0x08100001 ()), Byte);
        Halt ]
  in
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k prog in
  ignore (Osim.Process.run p);
  Alcotest.(check int) "'e'" (Char.code 'e')
    (Machine.Registers.get (Machine.Cpu.regs (Osim.Process.cpu p))
       Machine.Registers.EAX)

(* --- LDT syscall paths ---------------------------------------------------- *)

let setup_proc () =
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k trivial_program in
  (k, p)

let test_modify_ldt_slow_path () =
  let k, p = setup_proc () in
  let cpu = Osim.Process.cpu p in
  let ldt = Osim.Process.ldt p in
  Osim.Kernel.invoke_modify_ldt k cpu ~ldt ~index:5 ~base:0x1000 ~size:256
    ~writable:true;
  Alcotest.(check int) "781 cycles" 781 (Machine.Cpu.cycles cpu);
  Alcotest.(check int) "stat" 1 (Osim.Kernel.stats k).Osim.Kernel.modify_ldt_calls;
  match Seghw.Descriptor_table.get ldt 5 with
  | Some d ->
    Alcotest.(check int) "base" 0x1000 d.Seghw.Descriptor.base;
    Alcotest.(check int) "size" 256 (Seghw.Descriptor.byte_size d)
  | None -> Alcotest.fail "descriptor not installed"

let test_cash_modify_ldt_needs_gate () =
  let k, p = setup_proc () in
  let cpu = Osim.Process.cpu p in
  let ldt = Osim.Process.ldt p in
  match
    Osim.Kernel.invoke_cash_modify_ldt k cpu ~ldt ~index:5 ~base:0 ~size:16
      ~writable:true
  with
  | exception Seghw.Fault.Fault (Seghw.Fault.General_protection _) -> ()
  | _ -> Alcotest.fail "expected #GP without installed gate"

let test_cash_modify_ldt_fast_path () =
  let k, p = setup_proc () in
  let cpu = Osim.Process.cpu p in
  let ldt = Osim.Process.ldt p in
  Osim.Kernel.invoke_set_ldt_callgate k cpu ~ldt;
  let before = Machine.Cpu.cycles cpu in
  Osim.Kernel.invoke_cash_modify_ldt k cpu ~ldt ~index:9 ~base:0x2000 ~size:64
    ~writable:true;
  Alcotest.(check int) "253 cycles" 253 (Machine.Cpu.cycles cpu - before);
  Alcotest.(check int) "stat" 1
    (Osim.Kernel.stats k).Osim.Kernel.cash_modify_ldt_calls;
  (* clearing an entry: size = 0 *)
  Osim.Kernel.invoke_cash_modify_ldt k cpu ~ldt ~index:9 ~base:0 ~size:0
    ~writable:false;
  Alcotest.(check bool) "cleared" true (Seghw.Descriptor_table.get ldt 9 = None)

let test_ldt_security () =
  (* §3.8: the kernel path must refuse LDT entry 0 (the gate slot) and can
     only ever create unprivileged data segments *)
  let k, p = setup_proc () in
  let cpu = Osim.Process.cpu p in
  let ldt = Osim.Process.ldt p in
  Osim.Kernel.invoke_set_ldt_callgate k cpu ~ldt;
  (match
     Osim.Kernel.invoke_cash_modify_ldt k cpu ~ldt ~index:0 ~base:0 ~size:16
       ~writable:true
   with
   | exception Seghw.Fault.Fault _ -> ()
   | _ -> Alcotest.fail "expected refusal of entry 0");
  Osim.Kernel.invoke_cash_modify_ldt k cpu ~ldt ~index:1 ~base:0 ~size:16
    ~writable:true;
  match Seghw.Descriptor_table.get ldt 1 with
  | Some d ->
    Alcotest.(check int) "dpl 3 only" 3 d.Seghw.Descriptor.dpl;
    Alcotest.(check bool) "data only" true (Seghw.Descriptor.is_data d)
  | None -> Alcotest.fail "not installed"

let test_int80_dispatch () =
  (* drive modify_ldt through the actual int 0x80 instruction *)
  let prog =
    Machine.Program.link ~entry:"_start"
      Machine.Insn.[
        Label "_start";
        Mov (Long, Reg Machine.Registers.EAX, Imm 123); (* sys_modify_ldt *)
        Mov (Long, Reg Machine.Registers.EBX, Imm 4);   (* index *)
        Mov (Long, Reg Machine.Registers.ECX, Imm 0x3000); (* base *)
        Mov (Long, Reg Machine.Registers.EDX, Imm 128); (* size *)
        Mov (Long, Reg Machine.Registers.ESI, Imm 1);   (* writable *)
        Int_syscall 0x80;
        Halt ]
  in
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k prog in
  (match Osim.Process.run p with
   | Machine.Cpu.Halted -> ()
   | s -> Alcotest.failf "bad status %s"
            (match s with Machine.Cpu.Faulted f -> Seghw.Fault.to_string f | _ -> "?"));
  match Seghw.Descriptor_table.get (Osim.Process.ldt p) 4 with
  | Some d -> Alcotest.(check int) "base" 0x3000 d.Seghw.Descriptor.base
  | None -> Alcotest.fail "descriptor missing"

let test_unknown_syscall_faults () =
  let prog =
    Machine.Program.link ~entry:"_start"
      Machine.Insn.[
        Label "_start";
        Mov (Long, Reg Machine.Registers.EAX, Imm 9999);
        Int_syscall 0x80;
        Halt ]
  in
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k prog in
  match Osim.Process.run p with
  | Machine.Cpu.Faulted (Seghw.Fault.General_protection _) -> ()
  | _ -> Alcotest.fail "expected #GP"

(* --- libc ------------------------------------------------------------------ *)

let test_libc_malloc_free () =
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k trivial_program in
  let l = Osim.Process.libc p in
  let a = Osim.Libc.alloc l 100 in
  let b = Osim.Libc.alloc l 100 in
  Alcotest.(check bool) "distinct" true (a <> b);
  Osim.Libc.release l a;
  let c = Osim.Libc.alloc l 100 in
  Alcotest.(check int) "size-class reuse" a c;
  Alcotest.(check bool) "peak tracked" true (Osim.Libc.peak_heap l > 0)

let test_libc_double_free_faults () =
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k trivial_program in
  let l = Osim.Process.libc p in
  let a = Osim.Libc.alloc l 32 in
  Osim.Libc.release l a;
  match Osim.Libc.release l a with
  | exception Seghw.Fault.Fault _ -> ()
  | _ -> Alcotest.fail "expected fault on double free"

let test_libc_rand_deterministic () =
  let k = Osim.Kernel.create () in
  let p1 = Osim.Process.load ~kernel:k trivial_program in
  let p2 = Osim.Process.load ~kernel:k trivial_program in
  let seq l = List.init 5 (fun _ -> Osim.Libc.next_rand l) in
  Alcotest.(check (list int)) "same sequence"
    (seq (Osim.Process.libc p1)) (seq (Osim.Process.libc p2))

(* --- scheduler -------------------------------------------------------------- *)

let test_scheduler () =
  let k = Osim.Kernel.create () in
  let records =
    Osim.Scheduler.serve ~kernel:k ~requests:10 ~fork_overhead:1000 (fun _ ->
        let p = Osim.Process.load ~kernel:k trivial_program in
        ignore (Osim.Process.run p);
        p)
  in
  Alcotest.(check int) "10 records" 10 (List.length records);
  Alcotest.(check bool) "span >= total fork overhead" true
    (Osim.Scheduler.span records >= 9 * 1000);
  Alcotest.(check bool) "latency positive" true
    (Osim.Scheduler.latency records > 0.0);
  Alcotest.(check bool) "throughput positive" true
    (Osim.Scheduler.throughput records > 0.0)

let suite =
  [
    Alcotest.test_case "kernel gdt layout" `Quick test_kernel_gdt_layout;
    Alcotest.test_case "process load/run" `Quick test_process_load_and_run;
    Alcotest.test_case "data section init" `Quick test_data_section_init;
    Alcotest.test_case "modify_ldt slow path" `Quick test_modify_ldt_slow_path;
    Alcotest.test_case "gate required" `Quick test_cash_modify_ldt_needs_gate;
    Alcotest.test_case "cash_modify_ldt fast path" `Quick test_cash_modify_ldt_fast_path;
    Alcotest.test_case "ldt security (§3.8)" `Quick test_ldt_security;
    Alcotest.test_case "int 0x80 dispatch" `Quick test_int80_dispatch;
    Alcotest.test_case "unknown syscall" `Quick test_unknown_syscall_faults;
    Alcotest.test_case "libc malloc/free" `Quick test_libc_malloc_free;
    Alcotest.test_case "libc double free" `Quick test_libc_double_free_faults;
    Alcotest.test_case "libc rand deterministic" `Quick test_libc_rand_deterministic;
    Alcotest.test_case "scheduler" `Quick test_scheduler;
  ]
