(* Tests for the Cash runtime: segment pool, reuse cache, and the
   info-structure/segment lifecycle. *)

let test_pool_basics () =
  let p = Cashrt.Segment_pool.create () in
  Alcotest.(check int) "capacity" 8191 (Cashrt.Segment_pool.free_count p);
  (match Cashrt.Segment_pool.allocate p with
   | Some 1 -> ()
   | Some n -> Alcotest.failf "expected entry 1, got %d" n
   | None -> Alcotest.fail "empty pool?");
  Alcotest.(check int) "live" 1 (Cashrt.Segment_pool.live p);
  Cashrt.Segment_pool.release p 1;
  Alcotest.(check int) "live back to 0" 0 (Cashrt.Segment_pool.live p)

let test_pool_exhaustion () =
  let p = Cashrt.Segment_pool.create () in
  for _ = 1 to 8191 do
    match Cashrt.Segment_pool.allocate p with
    | Some _ -> ()
    | None -> Alcotest.fail "premature exhaustion"
  done;
  Alcotest.(check bool) "now empty" true (Cashrt.Segment_pool.allocate p = None);
  Alcotest.(check int) "counted" 1 (Cashrt.Segment_pool.exhausted_allocs p);
  Alcotest.(check int) "peak" 8191 (Cashrt.Segment_pool.peak_live p)

let test_pool_never_double_allocates () =
  (* property: interleaved allocate/release never hands out an entry that
     is currently live *)
  let prop =
    QCheck.Test.make ~count:200 ~name:"pool no double allocation"
      QCheck.(list (int_bound 1))
      (fun ops ->
        let p = Cashrt.Segment_pool.create () in
        let live = Hashtbl.create 16 in
        List.for_all
          (fun op ->
            if op = 0 then
              match Cashrt.Segment_pool.allocate p with
              | Some idx ->
                if Hashtbl.mem live idx then false
                else (Hashtbl.add live idx (); true)
              | None -> true
            else
              match Hashtbl.fold (fun k () _ -> Some k) live None with
              | Some idx ->
                Hashtbl.remove live idx;
                Cashrt.Segment_pool.release p idx;
                true
              | None -> true)
          ops)
  in
  QCheck.Test.check_exn prop

let test_cache_hit_miss () =
  let c = Cashrt.Seg_cache.create () in
  Alcotest.(check bool) "cold miss" true
    (Cashrt.Seg_cache.take_matching c ~base:0x1000 ~size:64 = None);
  Alcotest.(check bool) "park fits" true
    (Cashrt.Seg_cache.park c ~index:5 ~base:0x1000 ~size:64 = None);
  Alcotest.(check bool) "hit" true
    (Cashrt.Seg_cache.take_matching c ~base:0x1000 ~size:64 = Some 5);
  (* taken: a second request misses *)
  Alcotest.(check bool) "taken" true
    (Cashrt.Seg_cache.take_matching c ~base:0x1000 ~size:64 = None);
  Alcotest.(check int) "hits" 1 (Cashrt.Seg_cache.hits c);
  Alcotest.(check int) "misses" 2 (Cashrt.Seg_cache.misses c)

let test_cache_eviction () =
  let c = Cashrt.Seg_cache.create () in
  Alcotest.(check bool) "1" true (Cashrt.Seg_cache.park c ~index:1 ~base:0x100 ~size:16 = None);
  Alcotest.(check bool) "2" true (Cashrt.Seg_cache.park c ~index:2 ~base:0x200 ~size:16 = None);
  Alcotest.(check bool) "3" true (Cashrt.Seg_cache.park c ~index:3 ~base:0x300 ~size:16 = None);
  (* fourth park evicts the OLDEST (index 1) *)
  Alcotest.(check bool) "evicts oldest" true
    (Cashrt.Seg_cache.park c ~index:4 ~base:0x400 ~size:16 = Some 1);
  Alcotest.(check bool) "1 gone" true
    (Cashrt.Seg_cache.take_matching c ~base:0x100 ~size:16 = None);
  Alcotest.(check bool) "4 present" true
    (Cashrt.Seg_cache.take_matching c ~base:0x400 ~size:16 = Some 4)

let test_cache_size_mismatch () =
  let c = Cashrt.Seg_cache.create () in
  ignore (Cashrt.Seg_cache.park c ~index:1 ~base:0x100 ~size:16);
  Alcotest.(check bool) "same base, different size misses" true
    (Cashrt.Seg_cache.take_matching c ~base:0x100 ~size:32 = None)

(* --- runtime end-to-end through a simulated process ----------------------- *)

let cash_prog insns =
  Machine.Program.link ~entry:"_start" (Machine.Insn.Label "_start" :: insns)

let attach_runtime () =
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k
      (cash_prog Machine.Insn.[ Callext "cash_startup"; Halt ]) in
  let rt = Cashrt.Runtime.attach p in
  (k, p, rt)

let test_runtime_startup () =
  let _, p, _ = attach_runtime () in
  (match Osim.Process.run p with
   | Machine.Cpu.Halted -> ()
   | _ -> Alcotest.fail "startup failed");
  (* the call gate is installed in LDT entry 0 *)
  match Seghw.Descriptor_table.get (Osim.Process.ldt p) 0 with
  | Some d -> Alcotest.(check bool) "gate" true (Seghw.Descriptor.is_call_gate d)
  | None -> Alcotest.fail "no gate installed"

let test_seg_init_before_startup_faults () =
  let k = Osim.Kernel.create () in
  let p = Osim.Process.load ~kernel:k
      (cash_prog Machine.Insn.[
         Push (Imm 64); Push (Imm 0x08100010); Push (Imm 0x08100000);
         Callext "cash_seg_init"; Halt ]) in
  let _ = Cashrt.Runtime.attach p in
  match Osim.Process.run p with
  | Machine.Cpu.Faulted (Seghw.Fault.General_protection _) -> ()
  | _ -> Alcotest.fail "expected #GP before cash_startup"

let test_runtime_geometry () =
  Alcotest.(check (pair int int)) "small array exact" (0x1000, 100)
    (Cashrt.Runtime.segment_geometry ~base:0x1000 ~size:100);
  (* 2 MB array: end-aligned, page-granular (§3.5 / Figure 2) *)
  let base = 0x100000 in
  let size = 2_000_000 in
  let seg_base, seg_size = Cashrt.Runtime.segment_geometry ~base ~size in
  Alcotest.(check int) "multiple of 4K" 0 (seg_size mod 4096);
  Alcotest.(check int) "end aligned" (base + size) (seg_base + seg_size);
  Alcotest.(check bool) "slack < 4K" true (base - seg_base < 4096)

let test_per_array_overhead_263 () =
  (* §4.1: the measured per-array overhead is 263 cycles (253-cycle gate
     plus user-space list work) on a cache miss *)
  let _, p, rt = attach_runtime () in
  ignore (Osim.Process.run p);
  let cpu = Osim.Process.cpu p in
  Seghw.Mmu.map_range (Osim.Process.mmu p) ~linear:0x08100000 ~size:4096
    ~writable:true;
  let before = Machine.Cpu.cycles cpu in
  Cashrt.Runtime.seg_init rt cpu ~info:0x08100000 ~base:0x08100010 ~size:64;
  Alcotest.(check int) "263 cycles" 263 (Machine.Cpu.cycles cpu - before)

let test_seg_free_then_reuse_hits_cache () =
  let _, p, rt = attach_runtime () in
  ignore (Osim.Process.run p);
  let cpu = Osim.Process.cpu p in
  Seghw.Mmu.map_range (Osim.Process.mmu p) ~linear:0x08100000 ~size:4096
    ~writable:true;
  Cashrt.Runtime.seg_init rt cpu ~info:0x08100000 ~base:0x08100010 ~size:64;
  Cashrt.Runtime.seg_free rt cpu ~info:0x08100000;
  let kernel_calls_before =
    (Osim.Kernel.stats (Osim.Process.kernel p)).Osim.Kernel.cash_modify_ldt_calls
  in
  (* same base/size: served from the 3-entry cache, no kernel entry *)
  Cashrt.Runtime.seg_init rt cpu ~info:0x08100000 ~base:0x08100010 ~size:64;
  Alcotest.(check int) "no new kernel call" kernel_calls_before
    (Osim.Kernel.stats (Osim.Process.kernel p)).Osim.Kernel.cash_modify_ldt_calls;
  Alcotest.(check int) "cache hit" 1 (Cashrt.Seg_cache.hits (Cashrt.Runtime.cache rt))

let test_info_structure_layout () =
  (* §3.3: info+0 selector, info+4 segment base, info+8 upper bound *)
  let _, p, rt = attach_runtime () in
  ignore (Osim.Process.run p);
  let cpu = Osim.Process.cpu p in
  let mmu = Osim.Process.mmu p in
  let phys = Osim.Process.phys p in
  Seghw.Mmu.map_range mmu ~linear:0x08100000 ~size:4096 ~writable:true;
  Cashrt.Runtime.seg_init rt cpu ~info:0x08100000 ~base:0x08100010 ~size:64;
  let read32 linear =
    Machine.Phys_mem.read32 phys
      (Seghw.Mmu.translate_linear mmu ~linear ~write:false)
  in
  let sel = Seghw.Selector.of_int (read32 0x08100000 land 0xFFFF) in
  Alcotest.(check bool) "LDT selector" true
    (Seghw.Selector.table sel = Seghw.Selector.Ldt);
  Alcotest.(check int) "base" 0x08100010 (read32 0x08100004);
  Alcotest.(check int) "upper" (0x08100010 + 64) (read32 0x08100008);
  (* and the LDT descriptor matches *)
  match Seghw.Descriptor_table.get (Osim.Process.ldt p) (Seghw.Selector.index sel) with
  | Some d ->
    Alcotest.(check int) "desc base" 0x08100010 d.Seghw.Descriptor.base;
    Alcotest.(check int) "desc size" 64 (Seghw.Descriptor.byte_size d)
  | None -> Alcotest.fail "no descriptor"

let suite =
  [
    Alcotest.test_case "pool basics" `Quick test_pool_basics;
    Alcotest.test_case "pool exhaustion" `Slow test_pool_exhaustion;
    Alcotest.test_case "pool no double alloc (prop)" `Quick test_pool_never_double_allocates;
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache size mismatch" `Quick test_cache_size_mismatch;
    Alcotest.test_case "runtime startup" `Quick test_runtime_startup;
    Alcotest.test_case "seg_init before startup" `Quick test_seg_init_before_startup_faults;
    Alcotest.test_case "segment geometry (§3.5)" `Quick test_runtime_geometry;
    Alcotest.test_case "per-array 263 cycles (§4.1)" `Quick test_per_array_overhead_263;
    Alcotest.test_case "free/reuse via cache" `Quick test_seg_free_then_reuse_hits_cache;
    Alcotest.test_case "info layout (§3.3)" `Quick test_info_structure_layout;
  ]
