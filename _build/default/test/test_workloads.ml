(* Workload tests: every one of the paper's 18 applications must compile
   under every backend, run to completion, and produce identical output —
   plus spot checks that the sources have the structural properties the
   experiments rely on. *)

let backends =
  [ ("gcc", Core.gcc); ("bcc", Core.bcc); ("cash", Core.cash);
    ("cash4", Core.cash_n 4); ("security", Core.cash_security);
    ("bound", Core.bcc_bound) ]

let check_workload name source () =
  let runs =
    List.map
      (fun (bname, b) ->
        let r = Core.exec b source in
        (match r.Core.status with
         | Core.Finished -> ()
         | Core.Bound_violation m ->
           Alcotest.failf "%s/%s: bound violation: %s" name bname m
         | Core.Crashed m -> Alcotest.failf "%s/%s: crash: %s" name bname m);
        (bname, r))
      backends
  in
  let _, reference = List.hd runs in
  List.iter
    (fun (bname, r) ->
      Alcotest.(check string)
        (Printf.sprintf "%s: %s output" name bname)
        reference.Core.output r.Core.output)
    runs;
  (* every workload must actually print a checksum *)
  Alcotest.(check bool)
    (name ^ " produces output")
    true
    (String.length reference.Core.output > 0);
  (* and must run long enough to be a meaningful benchmark *)
  Alcotest.(check bool)
    (name ^ " does real work")
    true
    (reference.Core.cycles > 10_000)

let micro_cases =
  List.map
    (fun (k : Workloads.Micro.kernel) ->
      Alcotest.test_case ("micro: " ^ k.Workloads.Micro.name) `Slow
        (check_workload k.Workloads.Micro.name k.Workloads.Micro.source))
    (Workloads.Micro.table1_suite ())

let macro_cases =
  List.map
    (fun (a : Workloads.Macro.app) ->
      Alcotest.test_case ("macro: " ^ a.Workloads.Macro.name) `Slow
        (check_workload a.Workloads.Macro.name a.Workloads.Macro.source))
    (Workloads.Macro.table5_suite ())

let net_cases =
  List.map
    (fun (a : Workloads.Netapps.app) ->
      Alcotest.test_case ("net: " ^ a.Workloads.Netapps.name) `Slow
        (check_workload a.Workloads.Netapps.name a.Workloads.Netapps.source))
    (Workloads.Netapps.table8_suite ())

(* deterministic outputs across repeated runs *)
let test_determinism () =
  let src = Workloads.Macro.toast ~frames:3 () in
  let a = Core.exec Core.cash src in
  let b = Core.exec Core.cash src in
  Alcotest.(check string) "same output" a.Core.output b.Core.output;
  Alcotest.(check int) "same cycles" a.Core.cycles b.Core.cycles

(* parameterised sizes actually change the work done *)
let test_scaling () =
  let small = Core.exec Core.gcc (Workloads.Micro.matmul ~n:8 ()) in
  let large = Core.exec Core.gcc (Workloads.Micro.matmul ~n:16 ()) in
  Alcotest.(check bool) "8x work difference roughly" true
    (large.Core.cycles > 4 * small.Core.cycles)

(* the micro kernels must be loop-dominated, as Table 1 requires *)
let test_micro_loop_density () =
  List.iter
    (fun (k : Workloads.Micro.kernel) ->
      let c = Core.compile Core.cash k.Workloads.Micro.source in
      let i = Core.static_info c in
      Alcotest.(check bool)
        (k.Workloads.Micro.name ^ " has array loops")
        true
        (i.Core.loops.Minic.Loop_analysis.array_using_loops >= 3))
    (Workloads.Micro.table1_suite ())

(* the network apps must contain the attack surface the paper cares
   about: char-buffer copies inside loops *)
let test_netapp_buffer_loops () =
  List.iter
    (fun (a : Workloads.Netapps.app) ->
      let c = Core.compile Core.cash a.Workloads.Netapps.source in
      let i = Core.static_info c in
      Alcotest.(check bool)
        (a.Workloads.Netapps.name ^ " hw checks")
        true (i.Core.hw_checks > 0))
    (Workloads.Netapps.table8_suite ())

(* sabotage: shrinking a netapp destination buffer must turn the run into
   a caught bound violation under Cash (the apps really do copy through
   their buffers) *)
let test_netapp_overflow_injection () =
  (* qpopper with a response buffer far too small for a message *)
  let src =
    Str.global_replace (Str.regexp_string "char response[1024];")
      "char response[64];"
      (Workloads.Netapps.qpopper ())
  in
  match (Core.exec Core.cash src).Core.status with
  | Core.Bound_violation _ -> ()
  | Core.Finished -> Alcotest.fail "sabotaged qpopper not caught"
  | Core.Crashed m -> Alcotest.failf "sabotaged qpopper crashed: %s" m

let suite =
  micro_cases @ macro_cases @ net_cases
  @ [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "size scaling" `Quick test_scaling;
      Alcotest.test_case "micro loop density" `Quick test_micro_loop_density;
      Alcotest.test_case "netapp buffer loops" `Quick test_netapp_buffer_loops;
      Alcotest.test_case "overflow injection" `Quick test_netapp_overflow_injection;
    ]
