(* Code-generator correctness tests: every program is compiled with all
   backends (GCC / BCC / Cash 2,3,4 registers), executed on the simulator,
   and must (a) finish and (b) produce identical output everywhere — the
   differential-testing discipline the three-backends-one-frontend design
   makes possible. *)

let backends =
  [ ("gcc", Core.gcc); ("bcc", Core.bcc); ("cash2", Core.cash_n 2);
    ("cash3", Core.cash); ("cash4", Core.cash_n 4) ]

(* Run [src] under every backend; check all finish with output [expect]. *)
let check_all ?(expect : string option) name src =
  let outputs =
    List.map
      (fun (bname, b) ->
        let r = Core.exec b src in
        (match r.Core.status with
         | Core.Finished -> ()
         | Core.Bound_violation m ->
           Alcotest.failf "%s/%s: unexpected bound violation: %s" name bname m
         | Core.Crashed m -> Alcotest.failf "%s/%s: crashed: %s" name bname m);
        (bname, r.Core.output))
      backends
  in
  let _, reference = List.hd outputs in
  List.iter
    (fun (bname, out) ->
      Alcotest.(check string) (name ^ "/" ^ bname) reference out)
    outputs;
  match expect with
  | Some e -> Alcotest.(check string) (name ^ "/expected") e reference
  | None -> ()

let t name ?expect src () = check_all ?expect name src

let case name ?expect src =
  Alcotest.test_case name `Quick (t name ?expect src)

let suite =
  [
    case "int arithmetic" ~expect:"13\n-4\n42\n2\n1\n"
      {|int main() {
          print_int(3 + 2 * 5);
          print_int(3 - 7);
          print_int(84 / 2);
          print_int(17 % 5);
          print_int(10 / 7);
          return 0; }|};
    case "signed division" ~expect:"-3\n-1\n3\n"
      {|int main() {
          print_int(-7 / 2);
          print_int(-7 % 2);
          print_int(-7 / -2);
          return 0; }|};
    case "bitwise and shifts" ~expect:"12\n61\n49\n-8\n2\n-2\n"
      {|int main() {
          print_int(60 & 13);
          print_int(60 | 13);
          print_int(60 ^ 13);
          print_int(-1 << 3);
          print_int(16 >> 3);
          print_int(-16 >> 3);
          return 0; }|};
    case "comparisons" ~expect:"1\n0\n1\n1\n0\n1\n"
      {|int main() {
          print_int(1 < 2); print_int(2 < 1); print_int(2 <= 2);
          print_int(3 > 2); print_int(2 != 2); print_int(-1 < 0);
          return 0; }|};
    case "logical short circuit" ~expect:"1\n0\n5\n"
      {|int g = 5;
        int bump() { g = g + 1; return 1; }
        int main() {
          print_int(1 || bump());   /* bump not called */
          print_int(0 && bump());   /* bump not called */
          print_int(g);
          return 0; }|};
    case "ternary and unary" ~expect:"7\n-7\n0\n1\n-8\n"
      {|int main() {
          int x = 7;
          print_int(x > 0 ? x : -x);
          print_int(-x);
          print_int(!x);
          print_int(!!x);
          print_int(~x);
          return 0; }|};
    case "while break continue" ~expect:"0\n1\n3\n4\n"
      {|int main() {
          int i = -1;
          while (1) {
            i++;
            if (i == 2) continue;
            if (i >= 5) break;
            print_int(i);
          }
          return 0; }|};
    case "nested for" ~expect:"9\n"
      {|int main() {
          int s = 0; int i; int j;
          for (i = 0; i < 3; i++)
            for (j = 0; j < 3; j++)
              s++;
          print_int(s);
          return 0; }|};
    case "doubles" ~expect:"3.500000\n-1.500000\n0.785398\n2.000000\n"
      {|int main() {
          double a = 1.0; double b = 2.5;
          print_float(a + b);
          print_float(a - b);
          print_float(atan(1.0));
          print_float(sqrt(4.0));
          return 0; }|};
    case "double comparisons and casts" ~expect:"1\n0\n2\n2.000000\n"
      {|int main() {
          double a = 1.5;
          print_int(a < 2.0);
          print_int(a > 2.0);
          print_int((int)(a + 0.5));
          print_float((double)2);
          return 0; }|};
    case "fp expression depth" ~expect:"13.500000\n"
      {|int main() {
          double a = 1.0; double b = 2.0; double c = 3.0; double d = 4.0;
          print_float((a + b) * (c + d) / 2.0 + (a * b - c / d) + 1.75);
          return 0; }|};
    case "math builtins" ~expect:"1.000000\n0.000000\n8.000000\n2.000000\n"
      {|int main() {
          print_float(cos(0.0));
          print_float(fabs(sin(0.0)));
          print_float(pow(2.0, 3.0));
          print_float(floor(2.9));
          return 0; }|};
    case "global arrays" ~expect:"285\n"
      {|int sq[10];
        int main() {
          int i; int s = 0;
          for (i = 0; i < 10; i++) sq[i] = i * i;
          for (i = 0; i < 10; i++) s += sq[i];
          print_int(s);
          return 0; }|};
    case "local arrays" ~expect:"120\n"
      {|int main() {
          int f[6];
          int i;
          f[0] = 1;
          for (i = 1; i < 6; i++) f[i] = f[i-1] * i;
          print_int(f[5]);
          return 0; }|};
    case "char arrays and strings" ~expect:"104\n105\n0\n2\n"
      {|int main() {
          char *s = "hi";
          char buf[4];
          int i = 0;
          while (s[i] != 0) { buf[i] = s[i]; i++; }
          buf[i] = 0;
          print_int(buf[0]);
          print_int(buf[1]);
          print_int(buf[2]);
          print_int(i);
          return 0; }|};
    case "pointer arithmetic" ~expect:"10\n20\n30\n2\n"
      {|int a[3];
        int main() {
          int *p = a;
          *p = 10;
          *(p + 1) = 20;
          p = p + 2;
          *p = 30;
          print_int(a[0]); print_int(a[1]); print_int(a[2]);
          print_int(p - a);
          return 0; }|};
    case "pointer walk (*p++)" ~expect:"6\n"
      {|int a[3];
        int main() {
          int *p = a; int *q = a; int s = 0; int i;
          for (i = 0; i < 3; i++) *p++ = i + 1;
          for (i = 0; i < 3; i++) s += *q++;
          print_int(s);
          return 0; }|};
    case "address-of" ~expect:"5\n7\n"
      {|int main() {
          int x = 5;
          int *p = &x;
          print_int(*p);
          *p = 7;
          print_int(x);
          return 0; }|};
    case "malloc/free" ~expect:"55\n"
      {|int main() {
          int *p = (int*)malloc(10 * sizeof(int));
          int i; int s = 0;
          for (i = 0; i < 10; i++) p[i] = i + 1;
          for (i = 0; i < 10; i++) s += p[i];
          free(p);
          print_int(s);
          return 0; }|};
    case "malloc char buffer" ~expect:"97\n122\n"
      {|int main() {
          char *b = (char*)malloc(26);
          int i;
          for (i = 0; i < 26; i++) b[i] = 'a' + i;
          print_int(b[0]);
          print_int(b[25]);
          free(b);
          return 0; }|};
    case "function calls" ~expect:"7\n12\n3.500000\n"
      {|int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        double avg(double a, double b) { return (a + b) / 2.0; }
        int main() {
          print_int(add(3, 4));
          print_int(mul(3, 4));
          print_float(avg(3.0, 4.0));
          return 0; }|};
    case "recursion" ~expect:"55\n720\n"
      {|int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
        int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }
        int main() {
          print_int(fib(10));
          print_int(fact(6));
          return 0; }|};
    case "pointer parameters" ~expect:"60\n"
      {|int sum(int *p, int n) {
          int s = 0; int i;
          for (i = 0; i < n; i++) s += p[i];
          return s; }
        int a[3];
        int main() {
          a[0] = 10; a[1] = 20; a[2] = 30;
          print_int(sum(a, 3));
          return 0; }|};
    case "pointer return values" ~expect:"42\n"
      {|int *pick(int *a, int *b, int which) { return which ? a : b; }
        int x; int y;
        int main() {
          x = 41; y = 42;
          int *p = pick(&x, &y, 0);
          print_int(*p);
          return 0; }|};
    case "global initialisers" ~expect:"3\n2.500000\n97\n"
      {|int gi = 3;
        double gd = 2.5;
        char gc = 'a';
        int main() {
          print_int(gi); print_float(gd); print_int(gc);
          return 0; }|};
    case "char semantics" ~expect:"255\n0\n200\n"
      {|int main() {
          char c = 255;
          print_int(c);       /* char is unsigned */
          c = c + 1;          /* wraps at 256 */
          print_int(c);
          char d = 100;
          print_int(d + d);   /* promoted to int before add */
          return 0; }|};
    case "sizeof per backend"
      {|int main() {
          /* pointer size differs per backend, so only check int/char/double;
             malloc with sizeof must still work everywhere */
          print_int(sizeof(int));
          print_int(sizeof(char));
          print_int(sizeof(double));
          int *p = (int*)malloc(4 * sizeof(int*));
          p[0] = 1;
          free(p);
          return 0; }|};
    case "incdec matrix" ~expect:"1\n1\n3\n2\n5\n5\n"
      {|int main() {
          int i = 0;
          print_int(++i);    /* 1 */
          print_int(i++);    /* 1 */
          print_int(++i);    /* 3 */
          print_int(--i);    /* 2 */
          int a[1];
          a[0] = 4;
          print_int(++a[0]); /* 5 */
          print_int(a[0]);
          return 0; }|};
    case "array of doubles" ~expect:"36.000000\n"
      {|double v[8];
        int main() {
          int i; double s = 0.0;
          for (i = 0; i < 8; i++) v[i] = (double)i;
          for (i = 0; i < 8; i++) s = s + v[i] + 1.0;
          print_float(s);
          return 0; }|};
    case "2d via flat indexing" ~expect:"30\n"
      {|int m[12];
        int main() {
          int i; int j;
          for (i = 0; i < 3; i++)
            for (j = 0; j < 4; j++)
              m[i*4+j] = i + j;
          int s = 0;
          for (i = 0; i < 12; i++) s += m[i];
          print_int(s);
          return 0; }|};
    case "rand determinism across backends"
      {|int main() {
          srand(7);
          int i;
          for (i = 0; i < 5; i++) print_int(rand());
          return 0; }|};
    case "many arrays in one loop (spill paths)" ~expect:"784\n"
      {|int a[8]; int b[8]; int c[8]; int d[8]; int e[8]; int f[8]; int g[8];
        int main() {
          int i; int s = 0;
          for (i = 0; i < 8; i++) {
            a[i]=i; b[i]=i*2; c[i]=i*3; d[i]=i*4; e[i]=i*5; f[i]=i*6; g[i]=i*7;
          }
          for (i = 0; i < 8; i++) s += a[i]+b[i]+c[i]+d[i]+e[i]+f[i]+g[i];
          print_int(s);
          return 0; }|};
    case "pointer into middle of array" ~expect:"5\n6\n"
      {|int a[10];
        int main() {
          int i;
          for (i = 0; i < 10; i++) a[i] = i;
          int *mid = a + 5;
          print_int(mid[0]);
          print_int(*(mid + 1));
          return 0; }|};
    case "retargeted pointer in loop" ~expect:"15\n"
      {|int x[4]; int y[4];
        int main() {
          int i; int s = 0;
          for (i = 0; i < 4; i++) { x[i] = 1; y[i] = 2; }
          int k;
          for (k = 0; k < 10; k++) {
            int *p = (k % 2) ? x : y;   /* object changes per iteration */
            s += p[k % 4];
          }
          print_int(s);
          return 0; }|};
    case "local array per call in loop" ~expect:"4950\n"
      {|int work(int n) {
          int t[4];
          int i; int s = 0;
          for (i = 0; i < 4; i++) t[i] = n;
          for (i = 0; i < 4; i++) s += t[i];
          return s / 4; }
        int main() {
          int i; int s = 0;
          for (i = 0; i < 100; i++) s += work(i);
          print_int(s);
          return 0; }|};
    case "string literal in loop" ~expect:"11\n"
      {|int main() {
          char *msg = "hello world";
          int n = 0;
          while (msg[n]) n++;
          print_int(n);
          return 0; }|};
    case "call-plus-call double expr (regression)"
      ~expect:"3.500000\n0.000000\n"
      {|double one() { return 1.0; }
        double twofive() { return 2.5; }
        int main() {
          print_float(one() + twofive());
          print_float(one() - one() * one() + twofive() - twofive());
          return 0; }|};
    case "chained calls with mixed args" ~expect:"11.500000\n"
      {|double fma_like(double a, int b, double c) { return a * (double)b + c; }
        int main() {
          print_float(fma_like(2.5, 4, 1.5));
          return 0; }|};
    case "deep expression" ~expect:"-791\n"
      {|int main() {
          int a = 3; int b = 7; int c = 11;
          print_int((a+b)*(b-c)*(c+a) - (a*b*c) + ((a-b)-(b-c))*((a+c)%b));
          return 0; }|};
    case "pointer difference scaling" ~expect:"3\n6\n"
      {|double d[8]; char c[8];
        int main() {
          double *p1 = d + 3;
          char *p2 = c + 6;
          print_int(p1 - d);
          print_int(p2 - c);
          return 0; }|};
  ]

(* --- property: randomly generated integer expressions evaluate the same
   under every backend, and match a host-side evaluator ----------------- *)

type iexpr =
  | L of int
  | Add of iexpr * iexpr
  | Sub of iexpr * iexpr
  | Mul of iexpr * iexpr
  | Cmp of iexpr * iexpr

let rec iexpr_to_c = function
  | L n -> string_of_int n
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (iexpr_to_c a) (iexpr_to_c b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (iexpr_to_c a) (iexpr_to_c b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (iexpr_to_c a) (iexpr_to_c b)
  | Cmp (a, b) -> Printf.sprintf "(%s < %s)" (iexpr_to_c a) (iexpr_to_c b)

let mask32 v = v land 0xFFFFFFFF
let signed v = let v = mask32 v in if v >= 0x80000000 then v - 0x100000000 else v

let rec eval_iexpr = function
  | L n -> signed n
  | Add (a, b) -> signed (eval_iexpr a + eval_iexpr b)
  | Sub (a, b) -> signed (eval_iexpr a - eval_iexpr b)
  | Mul (a, b) -> signed (eval_iexpr a * eval_iexpr b)
  | Cmp (a, b) -> if eval_iexpr a < eval_iexpr b then 1 else 0

let gen_iexpr =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then map (fun v -> L v) (int_range (-1000) 1000)
           else
             frequency
               [
                 (1, map (fun v -> L v) (int_range (-1000) 1000));
                 (2, map2 (fun a b -> Add (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> Sub (a, b)) (self (n / 2)) (self (n / 2)));
                 (2, map2 (fun a b -> Mul (a, b)) (self (n / 2)) (self (n / 2)));
                 (1, map2 (fun a b -> Cmp (a, b)) (self (n / 2)) (self (n / 2)));
               ]))

let arb_iexpr = QCheck.make ~print:iexpr_to_c gen_iexpr

let prop_differential =
  QCheck.Test.make ~count:60 ~name:"generated expressions agree everywhere"
    arb_iexpr (fun e ->
      let src =
        Printf.sprintf "int main() { print_int(%s); return 0; }" (iexpr_to_c e)
      in
      let expected = Printf.sprintf "%d\n" (eval_iexpr e) in
      List.for_all
        (fun (_, b) ->
          let r = Core.exec b src in
          r.Core.status = Core.Finished && r.Core.output = expected)
        backends)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_differential ]

(* --- property: randomly generated ARRAY programs agree across backends --
   Programs are built from a small combinator set that only produces
   in-bounds accesses (indices are taken modulo the array size, pointer
   walks stop at the end), so every backend must finish with identical
   output. This exercises loop analysis, segment-register assignment,
   spilling, pointer walks, and the runtime together. *)

type arr_spec = { aname : string; asize : int; global : bool }

type op_spec =
  | Fill of int * int * int      (* array idx, multiplier, offset *)
  | Sum of int                   (* checksum += sum of elements *)
  | Combine of int * int         (* a[i] += b[(i*3+1) % nb] *)
  | PtrWalk of int               (* checksum += *p++ over the array *)
  | CopyStride of int * int      (* a[i] = b[(i*5) % nb] *)

let gen_program_spec =
  QCheck.Gen.(
    let* narrs = int_range 1 4 in
    let* sizes = list_repeat narrs (int_range 4 32) in
    let* globals = list_repeat narrs bool in
    let arrs =
      List.mapi
        (fun i (s, g) -> { aname = Printf.sprintf "arr%d" i; asize = s;
                           global = g })
        (List.combine sizes globals)
    in
    let gen_op =
      let* kind = int_range 0 4 in
      let* x = int_range 0 (narrs - 1) in
      let* y = int_range 0 (narrs - 1) in
      let* m = int_range 1 7 in
      let* o = int_range 0 13 in
      return
        (match kind with
         | 0 -> Fill (x, m, o)
         | 1 -> Sum x
         | 2 -> Combine (x, y)
         | 3 -> PtrWalk x
         | _ -> CopyStride (x, y))
    in
    let* nops = int_range 2 7 in
    let* ops = list_repeat nops gen_op in
    return (arrs, ops))

let program_of_spec (arrs, ops) =
  let buf = Buffer.create 512 in
  let arr i = List.nth arrs i in
  List.iter
    (fun a ->
      if a.global then
        Buffer.add_string buf (Printf.sprintf "int %s[%d];\n" a.aname a.asize))
    arrs;
  Buffer.add_string buf "int main() {\n";
  List.iter
    (fun a ->
      if not a.global then
        Buffer.add_string buf
          (Printf.sprintf "  int %s[%d];\n" a.aname a.asize))
    arrs;
  Buffer.add_string buf "  int i; int checksum = 0;\n";
  (* initialise everything deterministically first *)
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "  for (i = 0; i < %d; i++) %s[i] = i * 3 + 1;\n"
           a.asize a.aname))
    arrs;
  List.iter
    (fun op ->
      match op with
      | Fill (x, m, o) ->
        let a = arr x in
        Buffer.add_string buf
          (Printf.sprintf
             "  for (i = 0; i < %d; i++) %s[i] = (i * %d + %d) %% 101;\n"
             a.asize a.aname m o)
      | Sum x ->
        let a = arr x in
        Buffer.add_string buf
          (Printf.sprintf
             "  for (i = 0; i < %d; i++) checksum += %s[i];\n" a.asize
             a.aname)
      | Combine (x, y) ->
        let a = arr x and b = arr y in
        Buffer.add_string buf
          (Printf.sprintf
             "  for (i = 0; i < %d; i++) %s[i] += %s[(i * 3 + 1) %% %d];\n"
             a.asize a.aname b.aname b.asize)
      | PtrWalk x ->
        let a = arr x in
        Buffer.add_string buf
          (Printf.sprintf
             "  { int *p = %s; for (i = 0; i < %d; i++) checksum += *p++; }\n"
             a.aname a.asize)
      | CopyStride (x, y) ->
        let a = arr x and b = arr y in
        Buffer.add_string buf
          (Printf.sprintf
             "  for (i = 0; i < %d; i++) %s[i] = %s[(i * 5) %% %d];\n"
             a.asize a.aname b.aname b.asize))
    ops;
  Buffer.add_string buf "  print_int(checksum);\n  return 0;\n}\n";
  Buffer.contents buf

let arb_program =
  QCheck.make ~print:program_of_spec gen_program_spec

let prop_array_programs_agree =
  QCheck.Test.make ~count:40 ~name:"generated array programs agree everywhere"
    arb_program (fun spec ->
      let src = program_of_spec spec in
      let reference = Core.exec Core.gcc src in
      reference.Core.status = Core.Finished
      && List.for_all
           (fun (_, b) ->
             let r = Core.exec b src in
             r.Core.status = Core.Finished
             && r.Core.output = reference.Core.output)
           backends)

let suite = suite @ [ QCheck_alcotest.to_alcotest prop_array_programs_agree ]
