(* Run the paper's experiments and print the reproduced tables.

     dune exec bin/experiments.exe            # everything
     dune exec bin/experiments.exe -- table1 figure2
     dune exec bin/experiments.exe -- --requests 100 table8
*)

let experiments =
  [
    ("table1", fun _ -> Harness.Report.print (Harness.Table1.run ()));
    ("table2", fun _ -> Harness.Report.print (Harness.Table2.run ()));
    ("table3", fun _ -> Harness.Report.print (Harness.Table3.run ()));
    ("table4", fun _ -> Harness.Report.print (Harness.Table4.run ()));
    ("table5", fun _ -> Harness.Report.print (Harness.Table5.run ()));
    ("table6", fun _ -> Harness.Report.print (Harness.Table6.run ()));
    ("table7", fun _ -> Harness.Report.print (Harness.Table7.run ()));
    ( "table8",
      fun requests ->
        Harness.Report.print (Harness.Table8.run ~requests ()) );
    ("figure2", fun _ -> Harness.Report.print (Harness.Figure2.run ()));
    ("microcosts", fun _ -> Harness.Report.print (Harness.Microcosts.run ()));
    ( "ablation",
      fun _ ->
        Harness.Report.print (Harness.Ablation.run ());
        Harness.Report.print (Harness.Ablation.sw_check_dynamics ()) );
    ( "security",
      fun _ -> Harness.Report.print (Harness.Ablation.security_only ()) );
    ( "bound",
      fun _ -> Harness.Report.print (Harness.Ablation.bound_instruction ()) );
    ( "efence",
      fun _ -> Harness.Report.print (Harness.Ablation.efence ()) );
  ]

let names = List.map fst experiments

open Cmdliner

let selected =
  let doc =
    Printf.sprintf "Experiments to run (default: all). One of: %s."
      (String.concat ", " names)
  in
  Arg.(value & pos_all (enum (List.map (fun n -> (n, n)) names)) [] &
       info [] ~docv:"EXPERIMENT" ~doc)

let requests =
  let doc = "Requests per server for table8." in
  Arg.(value & opt int Harness.Table8.default_requests &
       info [ "requests" ] ~doc)

let run selected requests =
  let to_run = if selected = [] then names else selected in
  List.iter
    (fun name -> (List.assoc name experiments) requests)
    to_run

let cmd =
  let doc = "reproduce the tables and figures of the Cash paper (DSN 2005)" in
  Cmd.v (Cmd.info "experiments" ~doc)
    Term.(const run $ selected $ requests)

let () = exit (Cmd.eval cmd)
