(* Edge cases of the superblock execution engine.

   The broad three-way equivalence (whole compiled workloads, traced and
   untraced) lives in test_predecode.ml; the differential fleet covers
   random programs. This suite pins the corners where superblock
   dispatch could silently diverge from per-instruction execution:

   - the linker's partition invariants (blocks tile the code, every
     static branch target starts a block, terminators end one);
   - a fault on the last instruction of a block, and on the terminator
     itself — the partial commit must leave counts and state exactly
     where per-instruction execution leaves them;
   - fuel expiring mid-block at every alignment — the engine must fall
     back to stepping rather than overrun the budget;
   - control transfer into the middle of a region (a Ret to a computed
     address that is not a block start) — the per-instruction fallback
     until the engine re-synchronises on a block start;
   - segment-register reloads between accesses — the per-segment memory
     fast path must not serve a translation for the old base;
   - TLB conflict evictions under the fast path — the generation
     counter must force a re-probe, keeping hit/miss accounting and
     loaded values identical to the reference interpreter. *)

open Machine

let all_gp = Registers.[ EAX; EBX; ECX; EDX; ESI; EDI; EBP; ESP ]

(* A flat ring-3 address space like test_machine's, parameterised so the
   TLB-eviction case can map past the first 16 pages and the segreg
   case can install small non-zero-base data segments (GDT 3 and 4). *)
let env ?(map_size = 0x10000) () =
  let gdt = Seghw.Descriptor_table.create Seghw.Descriptor_table.Gdt_table in
  let ldt = Seghw.Descriptor_table.create Seghw.Descriptor_table.Ldt_table in
  let flat ty =
    Seghw.Descriptor.make ~base:0 ~limit:0xFFFFF ~granularity:true ~dpl:3
      ~present:true ~seg_type:ty
  in
  Seghw.Descriptor_table.set gdt 1
    (flat (Seghw.Descriptor.Code { readable = true }));
  Seghw.Descriptor_table.set gdt 2
    (flat (Seghw.Descriptor.Data { writable = true }));
  let small base =
    Seghw.Descriptor.make ~base ~limit:0xFF ~granularity:false ~dpl:3
      ~present:true ~seg_type:(Seghw.Descriptor.Data { writable = true })
  in
  Seghw.Descriptor_table.set gdt 3 (small 0x2000);
  Seghw.Descriptor_table.set gdt 4 (small 0x3000);
  let mmu = Seghw.Mmu.create ~gdt ~ldt in
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.CS
    (Seghw.Selector.make ~index:1 ~table:Seghw.Selector.Gdt ~rpl:3);
  List.iter
    (fun r ->
      Seghw.Mmu.load_segreg mmu r
        (Seghw.Selector.make ~index:2 ~table:Seghw.Selector.Gdt ~rpl:3))
    [ Seghw.Segreg.SS; Seghw.Segreg.DS; Seghw.Segreg.ES ];
  Seghw.Mmu.map_range mmu ~linear:0 ~size:map_size ~writable:true;
  mmu

let sel_gdt index =
  Seghw.Selector.to_int
    (Seghw.Selector.make ~index ~table:Seghw.Selector.Gdt ~rpl:3)

type outcome = Status of Cpu.status | Fuel_exhausted

let outcome_str = function
  | Fuel_exhausted -> "out of fuel"
  | Status Cpu.Halted -> "halted"
  | Status Cpu.Running -> "running"
  | Status (Cpu.Faulted f) -> "faulted: " ^ Seghw.Fault.to_string f

let run_one ~engine ?chain ?map_size ?(fuel = 1_000_000)
    ?(setup = fun _ -> ()) insns =
  let mmu = env ?map_size () in
  let phys = Phys_mem.create () in
  let program = Program.link ~entry:"main" (Insn.Label "main" :: insns) in
  let cpu =
    Cpu.create ~engine ?chain ~mmu ~phys ~costs:Cost_model.pentium3 ~program
      ()
  in
  Registers.set (Cpu.regs cpu) Registers.ESP 0x8000;
  setup cpu;
  let outcome =
    try Status (Cpu.run ~fuel cpu) with Cpu.Out_of_fuel -> Fuel_exhausted
  in
  (cpu, outcome)

(* Run [insns] under the block engine and the reference oracle on fresh
   machines and assert every observable equal; returns the block-engine
   CPU for extra assertions. *)
let check ?chain ?map_size ?fuel ?setup name insns =
  let blk, ob =
    run_one ~engine:Cpu.Block ?chain ?map_size ?fuel ?setup insns
  in
  let orc, oo = run_one ~engine:Cpu.Reference ?map_size ?fuel ?setup insns in
  Alcotest.(check string) (name ^ ": outcome") (outcome_str oo)
    (outcome_str ob);
  Alcotest.(check int) (name ^ ": insns") (Cpu.insns_executed orc)
    (Cpu.insns_executed blk);
  Alcotest.(check int) (name ^ ": cycles") (Cpu.cycles orc) (Cpu.cycles blk);
  Alcotest.(check int) (name ^ ": limit checks")
    (Seghw.Mmu.limit_checks (Cpu.mmu orc))
    (Seghw.Mmu.limit_checks (Cpu.mmu blk));
  Alcotest.(check int) (name ^ ": tlb hits")
    (Seghw.Tlb.hits (Seghw.Mmu.tlb (Cpu.mmu orc)))
    (Seghw.Tlb.hits (Seghw.Mmu.tlb (Cpu.mmu blk)));
  Alcotest.(check int) (name ^ ": tlb misses")
    (Seghw.Tlb.misses (Seghw.Mmu.tlb (Cpu.mmu orc)))
    (Seghw.Tlb.misses (Seghw.Mmu.tlb (Cpu.mmu blk)));
  Alcotest.(check (list (pair string int)))
    (name ^ ": stat counters") (Cpu.stats orc) (Cpu.stats blk);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (name ^ ": " ^ Registers.reg_name r)
        (Registers.get (Cpu.regs orc) r)
        (Registers.get (Cpu.regs blk) r))
    all_gp;
  let hb = Phys_mem.high_water (Cpu.phys blk) in
  let ho = Phys_mem.high_water (Cpu.phys orc) in
  Alcotest.(check int) (name ^ ": high water") ho hb;
  for a = 0 to ho - 1 do
    if Phys_mem.read8 (Cpu.phys blk) a <> Phys_mem.read8 (Cpu.phys orc) a
    then
      Alcotest.failf "%s: memory differs at physical 0x%x (%d vs %d)" name a
        (Phys_mem.read8 (Cpu.phys blk) a)
        (Phys_mem.read8 (Cpu.phys orc) a)
  done;
  blk

(* --- partition invariants ------------------------------------------------ *)

let test_partition_invariants () =
  let p =
    Program.link ~entry:"main"
      Insn.[
        Label "main";
        Mov (Long, Reg Registers.EAX, Imm 1);
        Cmp (Reg Registers.EAX, Imm 0);
        Jcc (Eq, "tgt");
        Alu (Add, Reg Registers.EAX, Imm 2);
        Call "fn";
        Label "tgt";
        Alu (Add, Reg Registers.EAX, Imm 3);
        Halt;
        Label "fn";
        Alu (Add, Reg Registers.EAX, Imm 4);
        Ret;
      ]
  in
  let n = Array.length p.Program.code in
  let nb = Array.length p.Program.block_starts in
  (* Blocks tile the code: consecutive, non-empty, and block_at marks
     exactly the starts. *)
  let covered = ref 0 in
  for b = 0 to nb - 1 do
    let s = p.Program.block_starts.(b) in
    let l = p.Program.block_lens.(b) in
    Alcotest.(check bool) (Printf.sprintf "block %d non-empty" b) true (l >= 1);
    Alcotest.(check int) (Printf.sprintf "block %d contiguous" b) !covered s;
    Alcotest.(check int) (Printf.sprintf "block_at start %d" b) b
      p.Program.block_at.(s);
    for i = s + 1 to s + l - 1 do
      Alcotest.(check int)
        (Printf.sprintf "interior %d not a start" i)
        Program.no_block p.Program.block_at.(i)
    done;
    covered := s + l
  done;
  Alcotest.(check int) "blocks cover the code exactly" n !covered;
  (* Every static branch target and the entry start a block. *)
  Array.iteri
    (fun i t ->
      if t >= 0 then
        Alcotest.(check bool)
          (Printf.sprintf "target of %d starts a block" i)
          true
          (p.Program.block_at.(t) >= 0))
    p.Program.targets;
  Alcotest.(check bool) "entry starts a block" true
    (p.Program.block_at.(p.Program.entry_index) >= 0);
  (* Nothing follows a terminator inside a block. *)
  Array.iteri
    (fun i insn ->
      if Program.block_terminator insn && i + 1 < n then
        Alcotest.(check bool)
          (Printf.sprintf "insn %d after terminator starts a block" (i + 1))
          true
          (p.Program.block_at.(i + 1) >= 0))
    p.Program.code

(* --- fault precision ----------------------------------------------------- *)

let test_fault_on_last_block_insn () =
  (* The last body instruction before the terminator faults (store to an
     unmapped page): the committed counts, registers, and memory must
     match per-instruction execution exactly — the partial commit covers
     the first two instructions only. *)
  let cpu =
    check "fault/last-body"
      Insn.[
        Mov (Long, Reg Registers.EAX, Imm 7);
        Mov (Long, Reg Registers.EBX, Imm 9);
        Mov (Long, Mem (Insn.mem ~disp:0x20000 ()), Imm 1);
        Halt;
      ]
  in
  Alcotest.(check int) "both movs retired" 3 (Cpu.insns_executed cpu);
  match Cpu.status cpu with
  | Cpu.Faulted _ -> ()
  | _ -> Alcotest.fail "expected a fault"

let test_fault_on_terminator () =
  (* The terminator itself faults (Call pushing onto an unmapped stack
     page): the whole block body must already be committed. *)
  let cpu =
    check "fault/terminator"
      Insn.[
        Mov (Long, Reg Registers.ESP, Imm 0x20004);
        Mov (Long, Reg Registers.EAX, Imm 3);
        Call "sub";
        Halt;
        Label "sub";
        Ret;
      ]
  in
  Alcotest.(check int) "body committed, call charged" 3
    (Cpu.insns_executed cpu);
  Alcotest.(check int) "EAX from committed body" 3
    (Registers.get (Cpu.regs cpu) Registers.EAX)

(* --- fuel ---------------------------------------------------------------- *)

let test_fuel_mid_block () =
  (* A loop whose body block is several instructions long, run at every
     fuel value that lands inside, on, or between block boundaries. At
     each budget the block engine must stop with the same instruction
     count, cycle count, and register state as the oracle — it may never
     execute a block it cannot afford. *)
  let insns =
    Insn.[
      Mov (Long, Reg Registers.EAX, Imm 0);
      Mov (Long, Reg Registers.ECX, Imm 6);
      Label "loop";
      Alu (Add, Reg Registers.EAX, Imm 3);
      Alu (Add, Reg Registers.EAX, Imm 5);
      Mov (Long, Mem (Insn.mem ~disp:0x1000 ()), Reg Registers.EAX);
      Alu (Sub, Reg Registers.ECX, Imm 1);
      Cmp (Reg Registers.ECX, Imm 0);
      Jcc (Gt, "loop");
      Halt;
    ]
  in
  for fuel = 1 to 45 do
    ignore (check ~fuel (Printf.sprintf "fuel=%d" fuel) insns : Cpu.t)
  done

(* --- mid-block entry ----------------------------------------------------- *)

let test_mid_block_entry () =
  (* A Ret to a computed address that is not a block start: the engine
     must step per-instruction from there and re-synchronise. Indices
     count from the prepended entry label (0); index 6 sits mid-way
     through the straight-line region that starts at 3. *)
  let insns =
    Insn.[
      (* 0: Label main *)
      Push (Imm 6) (* 1 *);
      Ret (* 2: jumps to 6, middle of the block below *);
      Label "unreached" (* 3 *);
      Alu (Add, Reg Registers.EAX, Imm 100) (* 4 *);
      Alu (Add, Reg Registers.EAX, Imm 200) (* 5 *);
      Alu (Add, Reg Registers.EAX, Imm 1) (* 6: entry point *);
      Alu (Add, Reg Registers.EAX, Imm 2) (* 7 *);
      Halt (* 8 *);
    ]
  in
  let p = Program.link ~entry:"main" (Insn.Label "main" :: insns) in
  Alcotest.(check int) "index 6 is mid-block (test premise)"
    Program.no_block p.Program.block_at.(6);
  let cpu = check "ret-to-middle" insns in
  Alcotest.(check int) "skipped the block prefix" 3
    (Registers.get (Cpu.regs cpu) Registers.EAX)

(* --- segment reloads and the memory fast path ---------------------------- *)

let test_segreg_reload_fast_path () =
  (* Back-to-back GS accesses warm the per-segment fast path; then GS is
     reloaded with a different base and the same offsets are written
     again. The second round must land at the new base — and the reads
     back through flat DS prove where each store went. *)
  let setup cpu =
    Registers.set (Cpu.regs cpu) Registers.EBX (sel_gdt 3);
    Registers.set (Cpu.regs cpu) Registers.ECX (sel_gdt 4)
  in
  let gs d = Insn.Mem (Insn.mem ~seg:Seghw.Segreg.GS ~disp:d ()) in
  let cpu =
    check ~setup "segreg-reload"
      Insn.[
        Mov_to_seg (Seghw.Segreg.GS, Reg Registers.EBX);
        Mov (Long, gs 0x10, Imm 111);
        Mov (Long, gs 0x14, Imm 112);
        Mov (Long, gs 0x18, Imm 113);
        Mov_to_seg (Seghw.Segreg.GS, Reg Registers.ECX);
        Mov (Long, gs 0x10, Imm 221);
        Mov (Long, gs 0x14, Imm 222);
        Mov (Long, Reg Registers.EAX, Mem (Insn.mem ~disp:0x2010 ()));
        Mov (Long, Reg Registers.EDX, Mem (Insn.mem ~disp:0x3010 ()));
        Halt;
      ]
  in
  Alcotest.(check int) "store before reload hit base 0x2000" 111
    (Registers.get (Cpu.regs cpu) Registers.EAX);
  Alcotest.(check int) "store after reload hit base 0x3000" 221
    (Registers.get (Cpu.regs cpu) Registers.EDX)

let test_tlb_conflict_eviction () =
  (* Linear pages 0 and 64 share a slot in the 64-entry direct-mapped
     TLB, so alternating accesses evict each other every iteration. The
     fast path caches a translation per segment register; the TLB
     generation counter must force it to re-probe, keeping both the
     loaded values and the hit/miss totals identical to the oracle. *)
  let cpu =
    check ~map_size:0x50000 "tlb-eviction"
      Insn.[
        Mov (Long, Mem (Insn.mem ~disp:0x100 ()), Imm 5);
        Mov (Long, Mem (Insn.mem ~disp:0x40100 ()), Imm 7);
        Mov (Long, Reg Registers.ECX, Imm 50);
        Label "loop";
        Mov (Long, Reg Registers.EAX, Mem (Insn.mem ~disp:0x100 ()));
        Mov (Long, Reg Registers.EBX, Mem (Insn.mem ~disp:0x40100 ()));
        Alu (Sub, Reg Registers.ECX, Imm 1);
        Cmp (Reg Registers.ECX, Imm 0);
        Jcc (Gt, "loop");
        Halt;
      ]
  in
  Alcotest.(check int) "low page value" 5
    (Registers.get (Cpu.regs cpu) Registers.EAX);
  Alcotest.(check int) "high page value" 7
    (Registers.get (Cpu.regs cpu) Registers.EBX);
  Alcotest.(check bool) "the conflict actually evicts" true
    (Seghw.Tlb.misses (Seghw.Mmu.tlb (Cpu.mmu cpu)) >= 100)

let test_tlb_gen_counter () =
  (* The invariant the fast path is built on: every insert, every
     invalidation that hits, and every flush move the generation. *)
  let t = Seghw.Tlb.create () in
  let g0 = t.Seghw.Tlb.gen in
  Seghw.Tlb.insert t ~page:1 ~frame:2 ~writable:true;
  let g1 = t.Seghw.Tlb.gen in
  Alcotest.(check bool) "insert bumps" true (g1 > g0);
  Seghw.Tlb.invalidate_page t ~page:1;
  let g2 = t.Seghw.Tlb.gen in
  Alcotest.(check bool) "invalidate hit bumps" true (g2 > g1);
  Seghw.Tlb.flush t;
  Alcotest.(check bool) "flush bumps" true (t.Seghw.Tlb.gen > g2)

(* --- chained execution --------------------------------------------------- *)

(* The tests below all use two-block loops hot enough to chain: the
   builder fires on the 64th unchained dispatch of the head block, and
   by then the back-edge Jcc has accumulated well past the 24-sample
   15/16 bias it needs, so every later iteration runs the whole loop as
   one chain pass without re-entering the dispatch loop. Each test then
   pins one way a chain pass can be interrupted and compares against
   the reference oracle instruction-for-instruction. *)

let hot_iters = 300

let test_chain_forms_and_is_exact () =
  let cpu =
    check ~chain:true "chain/forms"
      Insn.[
        Mov (Long, Reg Registers.ECX, Imm hot_iters);
        Label "loop";
        Alu (Add, Reg Registers.EAX, Imm 2);
        Jmp "body";
        Label "body";
        Mov (Long, Mem (Insn.mem ~disp:0x1000 ()), Reg Registers.EAX);
        Alu (Sub, Reg Registers.ECX, Imm 1);
        Cmp (Reg Registers.ECX, Imm 0);
        Jcc (Gt, "loop");
        Halt;
      ]
  in
  Alcotest.(check bool) "a chain was built" true (Cpu.chain_count cpu > 0);
  Alcotest.(check int) "loop result" (2 * hot_iters)
    (Registers.get (Cpu.regs cpu) Registers.EAX)

let test_chain_off_builds_nothing () =
  let cpu =
    check ~chain:false "chain/off"
      Insn.[
        Mov (Long, Reg Registers.ECX, Imm hot_iters);
        Label "loop";
        Alu (Add, Reg Registers.EAX, Imm 2);
        Jmp "body";
        Label "body";
        Alu (Sub, Reg Registers.ECX, Imm 1);
        Cmp (Reg Registers.ECX, Imm 0);
        Jcc (Gt, "loop");
        Halt;
      ]
  in
  Alcotest.(check int) "no chains with chaining off" 0 (Cpu.chain_count cpu)

(* A store through EBX walks 0x100 bytes per iteration from 0x1000: it
   crosses the 0x10000 mapping limit around iteration 240, deep inside
   chained execution. The faulting store is the FIRST instruction of
   the chained successor (the fall-through block after a never-taken
   Jcc), so the unwind must commit the head block from the chain's
   prefix sums and zero instructions of the successor. *)
let test_chained_fault_first_insn () =
  let cpu =
    check ~chain:true "chain/fault-first"
      Insn.[
        Mov (Long, Reg Registers.EBX, Imm 0x1000);
        Mov (Long, Reg Registers.ECX, Imm 400);
        Label "loop";
        Alu (Add, Reg Registers.EAX, Imm 1);
        Cmp (Reg Registers.EDX, Imm 5);
        Jcc (Eq, "out");
        Mov (Long, Mem (Insn.mem ~base:Registers.EBX ()), Imm 7);
        Alu (Add, Reg Registers.EBX, Imm 0x100);
        Alu (Sub, Reg Registers.ECX, Imm 1);
        Cmp (Reg Registers.ECX, Imm 0);
        Jcc (Gt, "loop");
        Label "out";
        Halt;
      ]
  in
  Alcotest.(check bool) "chain built before the fault" true
    (Cpu.chain_count cpu > 0);
  match Cpu.status cpu with
  | Cpu.Faulted _ -> ()
  | _ -> Alcotest.fail "expected a fault"

(* Same walk, but the faulting store is the LAST instruction of the
   chained successor before its terminator: everything in the chain
   pass up to and including the preceding instructions must commit. *)
let test_chained_fault_last_insn () =
  let cpu =
    check ~chain:true "chain/fault-last"
      Insn.[
        Mov (Long, Reg Registers.EBX, Imm 0x1000);
        Mov (Long, Reg Registers.ECX, Imm 400);
        Label "loop";
        Alu (Add, Reg Registers.EAX, Imm 1);
        Cmp (Reg Registers.EDX, Imm 5);
        Jcc (Eq, "out");
        Alu (Add, Reg Registers.EBX, Imm 0x100);
        Alu (Sub, Reg Registers.ECX, Imm 1);
        Cmp (Reg Registers.ECX, Imm 0);
        Mov (Long, Mem (Insn.mem ~base:Registers.EBX ()), Imm 7);
        Jcc (Gt, "loop");
        Label "out";
        Halt;
      ]
  in
  Alcotest.(check bool) "chain built before the fault" true
    (Cpu.chain_count cpu > 0);
  match Cpu.status cpu with
  | Cpu.Faulted _ -> ()
  | _ -> Alcotest.fail "expected a fault"

(* Fuel expiring around and inside chained execution, at every
   alignment: the engine must refuse a chain pass it cannot afford and
   fall back to per-block and per-instruction dispatch, never
   overrunning the budget and never diverging from the oracle. *)
let test_chain_fuel_straddle () =
  let insns =
    Insn.[
      Mov (Long, Reg Registers.ECX, Imm 120);
      Label "loop";
      Alu (Add, Reg Registers.EAX, Imm 1);
      Jmp "body";
      Label "body";
      Alu (Add, Reg Registers.EBX, Imm 3);
      Alu (Sub, Reg Registers.ECX, Imm 1);
      Cmp (Reg Registers.ECX, Imm 0);
      Jcc (Gt, "loop");
      Halt;
    ]
  in
  (* 8 insns/iteration after a 2-insn prologue: the chain builds on the
     64th head dispatch (≈ instruction 514), so this sweep covers fuel
     running out before the build, on it, and at every offset inside
     chained passes. *)
  let full = check ~chain:true "chain-fuel/full" insns in
  Alcotest.(check bool) "the sweep does reach chained execution" true
    (Cpu.chain_count full > 0);
  for fuel = 480 to 600 do
    ignore
      (check ~chain:true ~fuel (Printf.sprintf "chain-fuel=%d" fuel) insns
        : Cpu.t)
  done

(* A computed Ret lands in the middle of a block that is a member of a
   built chain: chains only start at head-block boundaries, so the
   engine must step per-instruction from the landing point and
   re-synchronise, exactly like the unchained mid-block entry. *)
let test_ret_into_chained_block () =
  let insns =
    Insn.[
      (* 0: Label main *)
      Mov (Long, Reg Registers.ECX, Imm 200) (* 1 *);
      Mov (Long, Reg Registers.EDX, Imm 0) (* 2 *);
      Label "loop" (* 3 *);
      Alu (Add, Reg Registers.EAX, Imm 1) (* 4 *);
      Jmp "body" (* 5 *);
      Label "body" (* 6 *);
      Alu (Add, Reg Registers.EBX, Imm 2) (* 7 *);
      Alu (Add, Reg Registers.EBX, Imm 3) (* 8: Ret target, mid-block *);
      Alu (Sub, Reg Registers.ECX, Imm 1) (* 9 *);
      Cmp (Reg Registers.ECX, Imm 0) (* 10 *);
      Jcc (Gt, "loop") (* 11 *);
      Cmp (Reg Registers.EDX, Imm 0) (* 12 *);
      Jcc (Ne, "fin") (* 13 *);
      Mov (Long, Reg Registers.EDX, Imm 1) (* 14 *);
      Push (Imm 8) (* 15 *);
      Ret (* 16 *);
      Label "fin" (* 17 *);
      Halt (* 18 *);
    ]
  in
  let p = Program.link ~entry:"main" (Insn.Label "main" :: insns) in
  Alcotest.(check int) "index 8 is mid-block (test premise)"
    Program.no_block p.Program.block_at.(8);
  let cpu = check ~chain:true "ret-into-chained" insns in
  Alcotest.(check bool) "the loop did chain" true (Cpu.chain_count cpu > 0);
  Alcotest.(check int) "loop iterations" 200
    (Registers.get (Cpu.regs cpu) Registers.EAX);
  Alcotest.(check int) "mid-entry ran the block suffix once" 1003
    (Registers.get (Cpu.regs cpu) Registers.EBX)

(* --- compile counters ---------------------------------------------------- *)

let test_block_counters () =
  let built0 = Cpu.blocks_built () in
  let insns0 = Cpu.block_insns_compiled () in
  let _ =
    run_one ~engine:Cpu.Reference
      Insn.[ Mov (Long, Reg Registers.EAX, Imm 1); Halt ]
  in
  Alcotest.(check int) "reference compiles no blocks" built0
    (Cpu.blocks_built ());
  let _ =
    run_one ~engine:Cpu.Block
      Insn.[ Mov (Long, Reg Registers.EAX, Imm 1); Halt ]
  in
  Alcotest.(check bool) "block engine compiles blocks" true
    (Cpu.blocks_built () > built0);
  Alcotest.(check bool) "covered insns counted" true
    (Cpu.block_insns_compiled () > insns0)

let suite =
  [
    Alcotest.test_case "partition invariants" `Quick test_partition_invariants;
    Alcotest.test_case "fault on last insn of a block" `Quick
      test_fault_on_last_block_insn;
    Alcotest.test_case "fault on the terminator" `Quick
      test_fault_on_terminator;
    Alcotest.test_case "fuel expiring mid-block (sweep)" `Quick
      test_fuel_mid_block;
    Alcotest.test_case "ret into the middle of a block" `Quick
      test_mid_block_entry;
    Alcotest.test_case "chain forms and stays exact" `Quick
      test_chain_forms_and_is_exact;
    Alcotest.test_case "chaining off builds nothing" `Quick
      test_chain_off_builds_nothing;
    Alcotest.test_case "fault on first insn of chained successor" `Quick
      test_chained_fault_first_insn;
    Alcotest.test_case "fault on last insn of chained successor" `Quick
      test_chained_fault_last_insn;
    Alcotest.test_case "fuel straddling chained execution (sweep)" `Quick
      test_chain_fuel_straddle;
    Alcotest.test_case "ret into the middle of a chained block" `Quick
      test_ret_into_chained_block;
    Alcotest.test_case "segreg reload vs memory fast path" `Quick
      test_segreg_reload_fast_path;
    Alcotest.test_case "tlb conflict eviction under fast path" `Quick
      test_tlb_conflict_eviction;
    Alcotest.test_case "tlb generation counter" `Quick test_tlb_gen_counter;
    Alcotest.test_case "block compile counters" `Quick test_block_counters;
  ]
