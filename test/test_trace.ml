(* The tracing subsystem.

   Three layers of coverage:

   - sink mechanics: per-kind counters, the bounded ring (overwrite +
     drop accounting), the reload-interval histogram, checkers and the
     violation log, JSON export well-formedness;
   - fault paths: hand-assembled programs that trigger each fault class
     (#GP limit violation, #SS stack fault, #PF page fault, #BR bound
     range, #NP not-present descriptor) and must emit EXACTLY ONE fault
     event, carrying the right payload (faulting linear address for #PF,
     faulting selector for #NP);
   - the Checkbochs-style use case: an inline checker attached to a full
     compiled run, asserting a whole-execution invariant ("under Cash,
     a failed limit check is always the last check of the run"). *)

open Machine

(* --- sink mechanics ------------------------------------------------------ *)

let test_counters () =
  let s = Trace.create () in
  Trace.emit s Trace.Tlb_hit;
  Trace.emit s Trace.Tlb_hit;
  Trace.emit s (Trace.Tlb_miss { page = 3; evicted = false });
  Trace.emit s (Trace.Tlb_miss { page = 7; evicted = true });
  Trace.emit s
    (Trace.Limit_check
       { seg = "GS"; base = 0; offset = 0; size = 4; write = false; ok = true });
  Alcotest.(check int) "hits" 2 (Trace.count s Trace.K_tlb_hit);
  Alcotest.(check int) "misses" 2 (Trace.count s Trace.K_tlb_miss);
  (* an evicting miss bumps both the miss and the evict counter *)
  Alcotest.(check int) "evicts" 1 (Trace.count s Trace.K_tlb_evict);
  Alcotest.(check int) "checks" 1 (Trace.count s Trace.K_limit_check_pass);
  Alcotest.(check int) "total" 5 (Trace.total_events s);
  Alcotest.(check (list (pair string int)))
    "counters list"
    [ ("limit_check.pass", 1); ("tlb.evict", 1); ("tlb.hit", 2);
      ("tlb.miss", 2) ]
    (Trace.counters s)

let test_ring () =
  let s = Trace.create ~capacity:4 () in
  for page = 1 to 6 do
    Trace.emit s (Trace.Tlb_miss { page; evicted = false })
  done;
  Alcotest.(check int) "total" 6 (Trace.total_events s);
  Alcotest.(check int) "dropped" 2 (Trace.dropped s);
  let pages =
    List.map
      (function Trace.Tlb_miss { page; _ } -> page | _ -> -1)
      (Trace.events s)
  in
  (* oldest two overwritten; survivors oldest-first *)
  Alcotest.(check (list int)) "ring keeps newest, ordered" [ 3; 4; 5; 6 ] pages

let test_histogram () =
  let h = Trace.Histogram.create () in
  List.iter (Trace.Histogram.add h) [ 0; 1; 2; 3; 4; 1000 ];
  Alcotest.(check int) "total" 6 (Trace.Histogram.total h);
  Alcotest.(check (list (pair int int)))
    "power-of-two buckets"
    [ (0, 1); (1, 1); (2, 2); (4, 1); (512, 1) ]
    (Trace.Histogram.buckets h)

let test_reload_interval () =
  let s = Trace.create () in
  let check () =
    Trace.emit s
      (Trace.Limit_check
         { seg = "GS"; base = 0; offset = 0; size = 4; write = false;
           ok = true })
  in
  let reload () =
    Trace.emit s (Trace.Segreg_load { reg = "GS"; selector = 0xC })
  in
  reload ();
  check (); check (); check ();
  reload ();
  (* histogram: one interval of 0 checks (first load), one of 3 *)
  Alcotest.(check int) "samples" 2
    (Trace.Histogram.total (Trace.reload_interval s));
  Alcotest.(check (list (pair int int)))
    "intervals" [ (0, 1); (2, 1) ]
    (Trace.Histogram.buckets (Trace.reload_interval s))

let test_checkers () =
  let s = Trace.create () in
  Trace.add_checker s ~name:"no-null-selector" (fun ev ->
      match ev with
      | Trace.Segreg_load { reg; selector = 0 } ->
        Trace.violation s ~checker:"no-null-selector"
          (Printf.sprintf "null selector loaded into %s" reg)
      | _ -> ());
  Trace.emit s (Trace.Segreg_load { reg = "GS"; selector = 0xC });
  Alcotest.(check (list (pair string string))) "clean" [] (Trace.violations s);
  Trace.emit s (Trace.Segreg_load { reg = "FS"; selector = 0 });
  Trace.emit s (Trace.Segreg_load { reg = "GS"; selector = 0 });
  Alcotest.(check (list (pair string string)))
    "two violations, emission order"
    [ ("no-null-selector", "null selector loaded into FS");
      ("no-null-selector", "null selector loaded into GS") ]
    (Trace.violations s)

let test_json_export () =
  let s = Trace.create ~capacity:8 () in
  Trace.emit s (Trace.Segreg_load { reg = "GS"; selector = 0xC });
  Trace.emit s
    (Trace.Fault
       { cls = `Pf; detail = "#PF(linear=0x20000, read)";
         address = Some 0x20000; selector = None });
  Trace.add_attribution s "main" ~insns:10 ~cycles:25;
  Trace.violation s ~checker:"demo" "quote \" and backslash \\";
  let js = Trace.Json.to_string (Trace.to_json s) in
  (* structural smoke checks on the serialised form *)
  let has sub =
    try ignore (Str.search_forward (Str.regexp_string sub) js 0); true
    with Not_found -> false
  in
  Alcotest.(check bool) "counters present" true (has "\"segreg.load\":1");
  Alcotest.(check bool) "fault address" true (has "\"address\":131072");
  Alcotest.(check bool) "attribution" true
    (has "{\"symbol\":\"main\",\"insns\":10,\"cycles\":25}");
  Alcotest.(check bool) "escaping" true
    (has "\"quote \\\" and backslash \\\\\"");
  Alcotest.(check bool) "totals" true (has "\"events_total\":2")

(* --- fault paths: one event per architectural fault ---------------------- *)

(* A minimal machine: flat code/data at base 0 (limit chosen per test),
   64 KiB mapped. Returns (cpu, sink, status) after running [insns]. *)
let run_traced ?(data_limit = 0xFFFFF) ?(data_granular = true)
    ?(ss_limit = 0xFFFFF) ?(ss_granular = true) ?(gdt_extra = []) ?setup insns
    =
  let open Seghw in
  let gdt = Descriptor_table.create Descriptor_table.Gdt_table in
  let ldt = Descriptor_table.create Descriptor_table.Ldt_table in
  let seg ~limit ~granularity ty =
    Descriptor.make ~base:0 ~limit ~granularity ~dpl:3 ~present:true
      ~seg_type:ty
  in
  Descriptor_table.set gdt 1
    (seg ~limit:0xFFFFF ~granularity:true (Descriptor.Code { readable = true }));
  Descriptor_table.set gdt 2
    (seg ~limit:data_limit ~granularity:data_granular
       (Descriptor.Data { writable = true }));
  Descriptor_table.set gdt 3
    (seg ~limit:ss_limit ~granularity:ss_granular
       (Descriptor.Data { writable = true }));
  List.iter (fun (i, d) -> Descriptor_table.set gdt i d) gdt_extra;
  let mmu = Mmu.create ~gdt ~ldt in
  Mmu.load_segreg mmu Segreg.CS (Selector.make ~index:1 ~table:Selector.Gdt ~rpl:3);
  List.iter
    (fun r ->
      Mmu.load_segreg mmu r (Selector.make ~index:2 ~table:Selector.Gdt ~rpl:3))
    [ Segreg.DS; Segreg.ES ];
  Mmu.load_segreg mmu Segreg.SS
    (Selector.make ~index:3 ~table:Selector.Gdt ~rpl:3);
  Mmu.map_range mmu ~linear:0 ~size:0x10000 ~writable:true;
  let phys = Phys_mem.create () in
  let program = Program.link ~entry:"main" (Insn.Label "main" :: insns) in
  let cpu = Cpu.create ~mmu ~phys ~costs:Cost_model.pentium3 ~program () in
  Registers.set (Cpu.regs cpu) Registers.ESP 0x8000;
  (match setup with Some f -> f cpu | None -> ());
  let sink = Trace.create () in
  Cpu.set_sink cpu (Some sink);
  let status = Cpu.run ~fuel:100_000 cpu in
  (cpu, sink, status)

let fault_kinds =
  Trace.
    [ K_fault_gp; K_fault_ss; K_fault_pf; K_fault_np; K_fault_ud; K_fault_br ]

let total_fault_events sink =
  List.fold_left (fun acc k -> acc + Trace.count sink k) 0 fault_kinds

(* Assert: faulted with [expect_kind] as the one and only fault event,
   and return that event for payload inspection. *)
let sole_fault_event name sink status expect_kind =
  (match status with
   | Cpu.Faulted _ -> ()
   | Cpu.Halted -> Alcotest.failf "%s: halted instead of faulting" name
   | Cpu.Running -> Alcotest.failf "%s: still running" name);
  Alcotest.(check int) (name ^ ": exactly one fault event") 1
    (total_fault_events sink);
  Alcotest.(check int)
    (name ^ ": of the right class")
    1
    (Trace.count sink expect_kind);
  match
    List.find_opt
      (function Trace.Fault _ -> true | _ -> false)
      (Trace.events sink)
  with
  | Some ev -> ev
  | None -> Alcotest.failf "%s: fault event missing from the ring" name

let test_fault_gp () =
  (* Byte-granular 16-byte data segment; a dword read at 0x100 violates
     the limit through DS -> #GP. *)
  let open Insn in
  let _, sink, status =
    run_traced ~data_limit:0xF ~data_granular:false
      [ Mov (Long, Reg Registers.EAX, Mem (mem ~disp:0x100 ())); Halt ]
  in
  let ev = sole_fault_event "#GP" sink status Trace.K_fault_gp in
  (match ev with
   | Trace.Fault { cls = `Gp; address = None; selector = None; _ } -> ()
   | _ -> Alcotest.fail "#GP: wrong payload");
  (* the check that failed is also on the record *)
  Alcotest.(check int) "#GP: one failed limit check" 1
    (Trace.count sink Trace.K_limit_check_fail)

let test_fault_ss () =
  (* 4 KiB stack segment, ESP forced to 4: the second push wraps the
     offset below the base -> #SS (not #GP: stack-relative access). *)
  let open Insn in
  let _, sink, status =
    run_traced ~ss_limit:0xFFF ~ss_granular:false
      ~setup:(fun cpu -> Registers.set (Cpu.regs cpu) Registers.ESP 4)
      [ Push (Imm 1); Push (Imm 2); Halt ]
  in
  let ev = sole_fault_event "#SS" sink status Trace.K_fault_ss in
  (match ev with
   | Trace.Fault { cls = `Ss; detail; _ } ->
     Alcotest.(check bool)
       (Printf.sprintf "#SS detail (%s)" detail)
       true
       (String.length detail >= 3 && String.sub detail 0 3 = "#SS")
   | _ -> Alcotest.fail "#SS: wrong payload")

let test_fault_pf () =
  (* Linear 0x20000 is inside the flat segment but unmapped -> #PF with
     the faulting linear address in the event. *)
  let open Insn in
  let _, sink, status =
    run_traced [ Mov (Long, Reg Registers.EAX, Mem (mem ~disp:0x20000 ())); Halt ]
  in
  let ev = sole_fault_event "#PF" sink status Trace.K_fault_pf in
  (match ev with
   | Trace.Fault { cls = `Pf; address = Some a; _ } ->
     Alcotest.(check int) "#PF: faulting linear address" 0x20000 a
   | _ -> Alcotest.fail "#PF: event must carry the linear address");
  (* the access got past segmentation: its limit check passed *)
  Alcotest.(check int) "#PF: no failed limit check" 0
    (Trace.count sink Trace.K_limit_check_fail)

let test_fault_br () =
  (* BOUND with EAX outside the [0, 10] pair at 0x100 -> #BR. *)
  let open Insn in
  let _, sink, status =
    run_traced
      [
        Mov (Long, Mem (mem ~disp:0x100 ()), Imm 0);
        Mov (Long, Mem (mem ~disp:0x104 ()), Imm 10);
        Mov (Long, Reg Registers.EAX, Imm 50);
        Bound (Registers.EAX, mem ~disp:0x100 ());
        Halt;
      ]
  in
  let ev = sole_fault_event "#BR" sink status Trace.K_fault_br in
  match ev with
  | Trace.Fault { cls = `Br; address = None; selector = None; _ } -> ()
  | _ -> Alcotest.fail "#BR: wrong payload"

let test_fault_np () =
  (* Loading a selector whose descriptor has P=0 -> #NP carrying the
     selector. *)
  let open Seghw in
  let open Insn in
  let absent =
    Descriptor.make ~base:0 ~limit:0xFF ~granularity:false ~dpl:3
      ~present:false ~seg_type:(Descriptor.Data { writable = true })
  in
  let sel = Selector.make ~index:5 ~table:Selector.Gdt ~rpl:3 in
  let _, sink, status =
    run_traced
      ~gdt_extra:[ (5, absent) ]
      [ Mov_to_seg (Segreg.GS, Imm (Selector.to_int sel)); Halt ]
  in
  let ev = sole_fault_event "#NP" sink status Trace.K_fault_np in
  match ev with
  | Trace.Fault { cls = `Np; selector = Some s; _ } ->
    (* the table lookup reconstructs the selector with RPL 0: compare
       the index/table bits, which identify the faulting descriptor *)
    Alcotest.(check int) "#NP: faulting selector (index bits)"
      (Selector.to_int sel lsr 2)
      (s lsr 2)
  | _ -> Alcotest.fail "#NP: event must carry the selector"

(* The same invariant end-to-end: a compiled Cash program that overruns
   emits exactly one fault event (#GP from the segment limit), and a
   clean run emits none. *)
let overrun_src =
  "int main() { int a[8]; int i; for (i = 0; i <= 8; i = i + 1) a[i] = i; \
   return a[0]; }"

let clean_src =
  "int main() { int a[8]; int i; for (i = 0; i < 8; i = i + 1) a[i] = i; \
   return a[0]; }"

let test_fault_event_compiled () =
  let sink = Trace.create () in
  let r = Core.exec ~trace:sink Core.cash overrun_src in
  (match r.Core.status with
   | Core.Bound_violation _ -> ()
   | s ->
     Alcotest.failf "overrun not flagged: %s"
       (match s with
        | Core.Finished -> "finished"
        | Core.Crashed m -> "crashed: " ^ m
        | _ -> assert false));
  Alcotest.(check int) "one fault event" 1 (total_fault_events sink);
  Alcotest.(check int) "it is #GP" 1 (Trace.count sink Trace.K_fault_gp);
  Alcotest.(check int) "one failed check" 1
    (Trace.count sink Trace.K_limit_check_fail);
  let sink2 = Trace.create () in
  let r2 = Core.exec ~trace:sink2 Core.cash clean_src in
  Alcotest.(check bool) "clean run finishes" true
    (r2.Core.status = Core.Finished);
  Alcotest.(check int) "clean run: no fault events" 0
    (total_fault_events sink2);
  Alcotest.(check int) "clean run: no failed checks" 0
    (Trace.count sink2 Trace.K_limit_check_fail)

(* The scheduler emits one Context_switch per dispatched request, with
   the served process's pid. *)
let test_context_switch_events () =
  let kernel = Osim.Kernel.create () in
  let sink = Trace.create () in
  let compiled =
    Core.compile Core.gcc "int main() { print_int(7); return 0; }"
  in
  let records =
    Osim.Scheduler.serve ~kernel ~requests:3 ~trace:sink (fun _ ->
        (Core.run ~kernel compiled).Core.process)
  in
  Alcotest.(check int) "three requests served" 3 (List.length records);
  Alcotest.(check int) "three context switches" 3
    (Trace.count sink Trace.K_context_switch);
  let pids =
    List.filter_map
      (function Trace.Context_switch { pid } -> Some pid | _ -> None)
      (Trace.events sink)
  in
  Alcotest.(check (list int))
    "pids in dispatch order"
    (List.map (fun r -> r.Osim.Scheduler.pid) records)
    pids

(* --- the Checkbochs-style use case --------------------------------------- *)

(* Attach an invariant checker to a whole compiled run: once a limit
   check fails, the machine must fault — no further limit checks may
   execute. Runs traced over both a clean and an overrunning program. *)
let test_checker_on_run () =
  let make_sink () =
    let s = Trace.create () in
    let failed = ref false in
    Trace.add_checker s ~name:"fail-is-final" (fun ev ->
        match ev with
        | Trace.Limit_check { ok = false; _ } -> failed := true
        | Trace.Limit_check { ok = true; seg; _ } when !failed ->
          Trace.violation s ~checker:"fail-is-final"
            (Printf.sprintf "limit check through %s after a failed check" seg)
        | _ -> ());
    s
  in
  let s1 = make_sink () in
  ignore (Core.exec ~trace:s1 Core.cash clean_src);
  Alcotest.(check (list (pair string string)))
    "clean run: no violations" [] (Trace.violations s1);
  let s2 = make_sink () in
  ignore (Core.exec ~trace:s2 Core.cash overrun_src);
  Alcotest.(check (list (pair string string)))
    "overrun: the failed check is the last" [] (Trace.violations s2);
  Alcotest.(check bool) "overrun: sink saw the failure" true
    (Trace.count s2 Trace.K_limit_check_fail = 1)

(* --- branch-bias histogram ----------------------------------------------- *)

(* A traced run under the block engine samples every conditional
   terminator's direction (the same counters the chain builder feeds
   on — chains themselves are never built or entered under trace), and
   the facade folds the per-site totals into the sink at finish. A
   loopy program must therefore export a non-empty bias table whose
   back-edge sites are heavily taken-biased, through both the accessor
   and the JSON; an engine without the machinery exports nothing. *)
let loopy_src =
  "int a[64];\n\
   int main() {\n\
  \  int i; int k; int s;\n\
  \  s = 0;\n\
  \  for (k = 0; k < 40; k = k + 1)\n\
  \    for (i = 0; i < 64; i = i + 1)\n\
  \      s = s + a[i] + i;\n\
  \  print_int(s);\n\
  \  return 0;\n\
   }\n"

let test_branch_bias_export () =
  let sink = Trace.create () in
  let r =
    Core.exec ~engine:Cpu.Block ~chain:true ~trace:sink Core.gcc loopy_src
  in
  Alcotest.(check bool) "finished" true (r.Core.status = Core.Finished);
  let bias = Trace.branch_bias sink in
  Alcotest.(check bool) "bias sites recorded" true (bias <> []);
  Alcotest.(check bool) "the inner back-edge is heavily taken-biased" true
    (List.exists
       (fun (_, taken, fall) -> taken >= 1000 && taken > 16 * (fall + 1))
       bias);
  let hist = Trace.branch_bias_histogram sink in
  Alcotest.(check bool) "histogram counts the sites" true
    (Array.fold_left ( + ) 0 hist = List.length bias);
  let js = Trace.Json.to_string (Trace.to_json sink) in
  let has sub =
    try ignore (Str.search_forward (Str.regexp_string sub) js 0); true
    with Not_found -> false
  in
  Alcotest.(check bool) "json carries the raw sites" true
    (has "\"branch_bias\":");
  Alcotest.(check bool) "json carries the histogram" true
    (has "\"branch_bias_histogram\":");
  (* The reference interpreter has no terminators to sample: same
     program, empty table. *)
  let sink2 = Trace.create () in
  ignore (Core.exec ~engine:Cpu.Reference ~trace:sink2 Core.gcc loopy_src);
  Alcotest.(check (list (triple int int int)))
    "reference run samples nothing" [] (Trace.branch_bias sink2)

(* --- plugins ------------------------------------------------------------- *)

(* A counting plugin: the state records how many events its on_event
   saw and how many finish passes ran; merge sums both. The counts are
   read back through the plugin's own JSON report, so the tests observe
   exactly what an export consumer would. *)
type Trace.plugin_state += Counting of { events : int ref; finishes : int ref }

let counting_spec name =
  {
    Trace.Plugin.p_name = name;
    p_doc = "test: counts delivered events";
    p_init = (fun () -> Counting { events = ref 0; finishes = ref 0 });
    p_on_event =
      (fun _sink st _ev ->
        match st with Counting c -> incr c.events | _ -> assert false);
    p_at_finish =
      (fun _sink st ->
        match st with Counting c -> incr c.finishes | _ -> assert false);
    p_merge =
      (fun ~into src ->
        match (into, src) with
        | Counting i, Counting s ->
          i.events := !(i.events) + !(s.events);
          i.finishes := !(i.finishes) + !(s.finishes)
        | _ -> assert false);
    p_to_json =
      (fun st ->
        match st with
        | Counting c ->
          Trace.Json.Obj
            [ ("events", Trace.Json.Int !(c.events));
              ("finishes", Trace.Json.Int !(c.finishes)) ]
        | _ -> Trace.Json.Null);
  }

let plugin_field sink plugin field =
  match List.assoc_opt plugin (Trace.plugin_json sink) with
  | Some js ->
    (match Option.bind (Trace.Json.member field js) Trace.Json.to_int_opt with
     | Some n -> n
     | None -> Alcotest.failf "plugin %s: no int field %s" plugin field)
  | None -> Alcotest.failf "plugin %s not attached" plugin

let some_event = Trace.Tlb_hit

let test_plugin_feed_and_finish () =
  let s = Trace.create () in
  Trace.attach s (counting_spec "c");
  (match Trace.attach s (counting_spec "c") with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "duplicate attach must be rejected");
  Trace.emit s some_event;
  Trace.emit s some_event;
  Trace.emit s some_event;
  Alcotest.(check (list string)) "names" [ "c" ] (Trace.plugin_names s);
  Alcotest.(check int) "every emit delivered" 3 (plugin_field s "c" "events");
  Trace.finish_plugins s;
  Trace.finish_plugins s;
  (* idempotent per instance: the second call is a no-op *)
  Alcotest.(check int) "finish ran exactly once" 1
    (plugin_field s "c" "finishes")

(* The merge_into contract for plugins (trace.mli): aggregation, not
   emission. A plugin on both sinks has the states folded through
   p_merge — into's on_event is NOT re-run on the merged ring events —
   and a plugin only on src moves across with its state intact. *)
let test_plugin_merge_semantics () =
  let into = Trace.create () in
  let src = Trace.create () in
  Trace.attach into (counting_spec "both");
  Trace.attach src (counting_spec "both");
  Trace.attach src (counting_spec "src-only");
  Trace.emit into some_event;
  Trace.emit into some_event;
  for _ = 1 to 3 do Trace.emit src some_event done;
  Trace.merge_into ~into src;
  (* 2 + 3 via p_merge; were into's plugin re-fed src's 3 ring events
     as emissions, this would read 8 *)
  Alcotest.(check int) "states folded, events not re-emitted" 5
    (plugin_field into "both" "events");
  Alcotest.(check int) "src-only moved with its state" 3
    (plugin_field into "src-only" "events");
  Alcotest.(check (list string))
    "attach order, movers appended"
    [ "both"; "src-only" ]
    (Trace.plugin_names into)

(* Violations recorded by plugins on parallel workers' sinks must
   survive the merge, in deterministic job order — the property the
   fuzz fleet's plugin mode rests on under -j. *)
let test_plugin_violations_survive_merge () =
  let worker i =
    let s = Trace.create () in
    Trace.attach s
      { (counting_spec "flagger") with
        Trace.Plugin.p_on_event =
          (fun sink _st _ev ->
            Trace.violation sink ~checker:"flagger"
              (Printf.sprintf "job %d" i));
      };
    Trace.emit s some_event;
    s
  in
  (* the harness pattern: per-job sinks, merged after the barrier in
     job order *)
  let sinks = List.init 3 worker in
  let aggregate = Trace.create () in
  List.iter (fun s -> Trace.merge_into ~into:aggregate s) sinks;
  Alcotest.(check (list (pair string string)))
    "all workers' violations, job order"
    [ ("flagger", "job 0"); ("flagger", "job 1"); ("flagger", "job 2") ]
    (Trace.violations aggregate)

let test_auto_plugins () =
  Fun.protect
    ~finally:(fun () -> Trace.set_auto_plugins [])
    (fun () ->
      Trace.set_auto_plugins [ counting_spec "auto" ];
      let s = Trace.create () in
      Alcotest.(check (list string))
        "create attaches the ambient set" [ "auto" ] (Trace.plugin_names s);
      Trace.emit s some_event;
      Alcotest.(check int) "and it is live" 1
        (plugin_field s "auto" "events"));
  let s = Trace.create () in
  Alcotest.(check (list string)) "reset restores plain sinks" []
    (Trace.plugin_names s)

(* The shipped plugins on real compiled runs: a clean run and a caught
   overrun are both within spec — zero violations. *)
let test_shipped_plugins_clean_runs () =
  List.iter
    (fun src ->
      let sink = Trace.create () in
      Checkers.attach_shipped sink;
      ignore (Core.exec ~trace:sink Core.cash src);
      Trace.finish_plugins sink;
      Alcotest.(check (list (pair string string)))
        "no violations" [] (Checkers.shipped_violations sink))
    [ clean_src; overrun_src ]

(* And each shipped plugin fires on a hand-built out-of-spec stream —
   the positive control for the zero-violation assertions above. *)
let test_shipped_plugins_fire () =
  let expect_violation name spec events ~finish =
    let sink = Trace.create () in
    Trace.attach sink spec;
    List.iter (Trace.emit sink) events;
    if finish then Trace.finish_plugins sink;
    match Trace.violations sink with
    | (checker, _) :: _ ->
      Alcotest.(check string) (name ^ ": right checker") name checker
    | [] -> Alcotest.failf "%s: out-of-spec stream raised no violation" name
  in
  let failed_check =
    Trace.Limit_check
      { seg = "DS"; base = 0x1000; offset = 64; size = 4; write = true;
        ok = false }
  in
  (* failed check resolved by a TLB hit instead of a fault *)
  expect_violation "bounds_precision" Checkers.Bounds_precision.spec
    [ failed_check; Trace.Tlb_hit ] ~finish:false;
  (* stream ends with the failure still pending *)
  expect_violation "bounds_precision" Checkers.Bounds_precision.spec
    [ failed_check ] ~finish:true;
  (* a failing write into the learned stack window, never answered *)
  expect_violation "stack_smash" Checkers.Stack_smash.spec
    [ Trace.Limit_check
        { seg = "SS"; base = 0x8000; offset = 0; size = 64; write = true;
          ok = true };
      Trace.Limit_check
        { seg = "DS"; base = 0x8010; offset = 60; size = 4; write = true;
          ok = false };
      Trace.Tlb_hit ] ~finish:false;
  (* GS loaded from an LDT slot after the slot was cleared *)
  expect_violation "ldt_reuse" Checkers.Ldt_reuse.spec
    [ Trace.Ldt_update { path = Trace.Slow_syscall; index = 5; cleared = true };
      Trace.Segreg_load { reg = "GS"; selector = (5 lsl 3) lor 4 lor 3 } ]
    ~finish:false;
  (* a failed check with no protection fault anywhere in the stream *)
  expect_violation "fault_consistency" Checkers.Fault_consistency.spec
    [ failed_check ] ~finish:true

(* Plugin reports ride the sink's JSON export under "plugins". *)
let test_plugin_json_export () =
  let s = Trace.create () in
  Checkers.attach_shipped s;
  ignore (Core.exec ~trace:s Core.cash overrun_src);
  Trace.finish_plugins s;
  let js = Trace.to_json s in
  match Trace.Json.member "plugins" js with
  | Some (Trace.Json.Obj fields) ->
    Alcotest.(check (list string))
      "one report per shipped plugin"
      (List.map (fun (sp : Trace.Plugin.spec) -> sp.p_name) Checkers.all)
      (List.map fst fields);
    let bp =
      match List.assoc_opt "bounds_precision" fields with
      | Some v -> v
      | None -> Alcotest.fail "bounds_precision report missing"
    in
    Alcotest.(check (option int)) "the caught overrun is on the record"
      (Some 1)
      (Option.bind (Trace.Json.member "checks_failed" bp)
         Trace.Json.to_int_opt)
  | _ -> Alcotest.fail "export has no plugins object"

(* --- Json.parse: the writer's inverse ----------------------------------- *)

let test_json_parse_roundtrip () =
  (* A value exercising every constructor and the escapes the writer
     emits; parse (to_string v) must reproduce it exactly. *)
  let v =
    Trace.Json.(
      Obj
        [
          ("null", Null);
          ("bools", List [ Bool true; Bool false ]);
          ("ints", List [ Int 0; Int (-17); Int 1_000_000_007 ]);
          ("floats", List [ Float 1.5; Float (-0.25); Float 3.0 ]);
          ("strings",
           List
             [ Str ""; Str "plain"; Str "quote\" slash\\ nl\n tab\t cr\r";
               Str "ctrl\x01\x1f" ]);
          ("nested", Obj [ ("empty_obj", Obj []); ("empty_list", List []) ]);
        ])
  in
  let reparsed = Trace.Json.parse (Trace.Json.to_string v) in
  Alcotest.(check string) "roundtrip"
    (Trace.Json.to_string v)
    (Trace.Json.to_string reparsed)

let test_json_parse_record () =
  (* The shape bench --compare reads: a BENCH_<n>.json perf record. *)
  let json =
    Trace.Json.parse
      {|{"schema":4,"bench":"full-reproduction","engine":"block",
         "traced":false,"jobs":4,"wall_seconds":95.31,
         "insns_executed":4060396260,"insns_per_host_second":4.26e7}|}
  in
  let fld k conv = Option.bind (Trace.Json.member k json) conv in
  Alcotest.(check (option int)) "schema" (Some 4)
    (fld "schema" Trace.Json.to_int_opt);
  Alcotest.(check (option string)) "engine" (Some "block")
    (fld "engine" Trace.Json.to_string_opt);
  Alcotest.(check (option (float 1e-9))) "wall" (Some 95.31)
    (fld "wall_seconds" Trace.Json.to_float_opt);
  Alcotest.(check (option (float 1e0))) "ips" (Some 4.26e7)
    (fld "ips" Trace.Json.to_float_opt
     |> function None -> fld "insns_per_host_second" Trace.Json.to_float_opt
               | some -> some);
  (* ints widen through to_float_opt *)
  Alcotest.(check (option (float 1e-9))) "int widens" (Some 4.0)
    (fld "jobs" Trace.Json.to_float_opt)

let test_json_parse_rejects () =
  let rejects s =
    match Trace.Json.parse s with
    | exception Trace.Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "parsed malformed input %S" s
  in
  List.iter rejects
    [ ""; "{"; "[1,"; "{\"a\":}"; "\"unterminated"; "tru"; "1.2.3";
      "{\"a\":1} trailing"; "\"bad \\q escape\"" ]

let test_json_parse_own_export () =
  (* The full sink export must parse back: to_json -> to_string ->
     parse is the path TRACE_<n>.json consumers rely on. *)
  let s = Trace.create () in
  ignore (Core.exec ~trace:s Core.cash clean_src);
  let text = Trace.Json.to_string (Trace.to_json s) in
  let reparsed = Trace.Json.parse text in
  Alcotest.(check string) "sink export reparses"
    text
    (Trace.Json.to_string reparsed)

let suite =
  [
    Alcotest.test_case "sink: counters" `Quick test_counters;
    Alcotest.test_case "sink: ring overwrite + drop count" `Quick test_ring;
    Alcotest.test_case "sink: histogram buckets" `Quick test_histogram;
    Alcotest.test_case "sink: reload-interval metric" `Quick
      test_reload_interval;
    Alcotest.test_case "sink: checkers + violations" `Quick test_checkers;
    Alcotest.test_case "sink: JSON export" `Quick test_json_export;
    Alcotest.test_case "fault: #GP limit violation" `Quick test_fault_gp;
    Alcotest.test_case "fault: #SS stack fault" `Quick test_fault_ss;
    Alcotest.test_case "fault: #PF page fault" `Quick test_fault_pf;
    Alcotest.test_case "fault: #BR bound range" `Quick test_fault_br;
    Alcotest.test_case "fault: #NP not present" `Quick test_fault_np;
    Alcotest.test_case "fault: compiled overrun emits one event" `Quick
      test_fault_event_compiled;
    Alcotest.test_case "scheduler: context-switch events" `Quick
      test_context_switch_events;
    Alcotest.test_case "checker: fail-is-final invariant" `Quick
      test_checker_on_run;
    Alcotest.test_case "branch-bias histogram exports" `Quick
      test_branch_bias_export;
    Alcotest.test_case "plugin: feed + idempotent finish" `Quick
      test_plugin_feed_and_finish;
    Alcotest.test_case "plugin: merge folds states, never re-emits" `Quick
      test_plugin_merge_semantics;
    Alcotest.test_case "plugin: violations survive merge in job order" `Quick
      test_plugin_violations_survive_merge;
    Alcotest.test_case "plugin: auto-attach on create" `Quick test_auto_plugins;
    Alcotest.test_case "plugin: shipped set clean on real runs" `Quick
      test_shipped_plugins_clean_runs;
    Alcotest.test_case "plugin: shipped set fires out of spec" `Quick
      test_shipped_plugins_fire;
    Alcotest.test_case "plugin: reports in JSON export" `Quick
      test_plugin_json_export;
    Alcotest.test_case "json: parse roundtrips writer" `Quick
      test_json_parse_roundtrip;
    Alcotest.test_case "json: parse BENCH record" `Quick test_json_parse_record;
    Alcotest.test_case "json: parse rejects malformed" `Quick
      test_json_parse_rejects;
    Alcotest.test_case "json: sink export reparses" `Quick
      test_json_parse_own_export;
  ]
