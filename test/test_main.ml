(* Aggregate test runner: one suite per library. *)
let () =
  Alcotest.run "cash"
    [
      ("seghw", Test_seghw.suite);
      ("machine", Test_machine.suite);
      ("osim", Test_osim.suite);
      ("cashrt", Test_cashrt.suite);
      ("minic", Test_minic.suite);
      ("compilers", Test_compilers.suite);
      ("cash-semantics", Test_cash_semantics.suite);
      ("workloads", Test_workloads.suite);
      ("extensions", Test_extensions.suite);
      ("core-api", Test_core.suite);
      ("predecode", Test_predecode.suite);
      ("blocks", Test_blocks.suite);
      ("trace", Test_trace.suite);
      ("snapshot", Test_snapshot.suite);
      ("differential", Test_differential.suite);
      ("fuzz", Test_fuzz.suite);
      ("parallel", Test_parallel.suite);
      ("serve", Test_serve.suite);
      ("protection", Test_protection.suite);
      ("harness", Test_harness.suite);
      ("integration", Test_integration.suite);
    ]
