(* Tests for the mini-C front end: lexer, parser, type checker, and loop
   analysis. *)

module Ast = Minic.Ast
module Token = Minic.Token
module Lexer = Minic.Lexer
module Parser = Minic.Parser
module Typecheck = Minic.Typecheck
module Ir = Minic.Ir
module La = Minic.Loop_analysis

let toks src = List.map (fun t -> t.Token.tok) (Lexer.tokenize src)

(* --- lexer ---------------------------------------------------------------- *)

let test_lex_basics () =
  Alcotest.(check bool) "kw + ident" true
    (toks "int foo;" = [ Token.KW_INT; Token.IDENT "foo"; Token.SEMI; Token.EOF ])

let test_lex_numbers () =
  Alcotest.(check bool) "dec hex float" true
    (toks "42 0x2A 3.5 1e3"
     = [ Token.INT_LIT 42; Token.INT_LIT 42; Token.FLOAT_LIT 3.5;
         Token.FLOAT_LIT 1000.0; Token.EOF ])

let test_lex_strings_chars () =
  Alcotest.(check bool) "escapes" true
    (toks {|"a\nb" '\t' '\''|}
     = [ Token.STR_LIT "a\nb"; Token.CHAR_LIT '\t'; Token.CHAR_LIT '\'';
         Token.EOF ])

let test_lex_comments () =
  Alcotest.(check bool) "comments skipped" true
    (toks "1 // line\n/* block\nmore */ 2" = [ Token.INT_LIT 1; Token.INT_LIT 2; Token.EOF ])

let test_lex_operators () =
  Alcotest.(check bool) "compound ops" true
    (toks "++ -- += <<= " <> []);
  Alcotest.(check bool) "shift vs lt" true
    (toks "a<<b < c" = [ Token.IDENT "a"; Token.SHL; Token.IDENT "b";
                         Token.LT; Token.IDENT "c"; Token.EOF ])

let test_lex_errors () =
  (match toks "@" with
   | exception Lexer.Lex_error _ -> ()
   | _ -> Alcotest.fail "expected lex error");
  match toks "\"unterminated" with
  | exception Lexer.Lex_error _ -> ()
  | _ -> Alcotest.fail "expected lex error"

(* --- parser ---------------------------------------------------------------- *)

let parse_expr_of src =
  (* wrap in a function, pull out the single statement *)
  match Parser.parse_program (Printf.sprintf "int main() { %s; }" src) with
  | [ Ast.Gfunc { Ast.body = [ Ast.Expr e ]; _ } ] -> e
  | _ -> Alcotest.fail "unexpected parse shape"

let expr = Alcotest.testable Ast.pp_expr Ast.equal_expr

let test_parse_precedence () =
  Alcotest.check expr "mul binds tighter"
    (Ast.Binop (Ast.Add, Ast.Var "a",
                Ast.Binop (Ast.Mul, Ast.Var "b", Ast.Var "c")))
    (parse_expr_of "a + b * c");
  Alcotest.check expr "comparison vs arith"
    (Ast.Binop (Ast.Lt, Ast.Binop (Ast.Add, Ast.Var "a", Ast.Var "b"),
                Ast.Var "c"))
    (parse_expr_of "a + b < c");
  Alcotest.check expr "assignment right assoc"
    (Ast.Assign (Ast.Var "a", Ast.Assign (Ast.Var "b", Ast.Int_lit 0)))
    (parse_expr_of "a = b = 0")

let test_parse_unary_postfix () =
  Alcotest.check expr "deref index"
    (Ast.Deref (Ast.Index (Ast.Var "p", Ast.Int_lit 0)))
    (parse_expr_of "*p[0]");
  Alcotest.check expr "postincr"
    (Ast.Incdec (Ast.Post, Ast.Incr, Ast.Var "i"))
    (parse_expr_of "i++");
  Alcotest.check expr "deref postincr (*p++)"
    (Ast.Deref (Ast.Incdec (Ast.Post, Ast.Incr, Ast.Var "p")))
    (parse_expr_of "*p++")

let test_parse_cast_vs_paren () =
  Alcotest.check expr "cast"
    (Ast.Cast (Ast.Tptr Ast.Tint, Ast.Call ("malloc", [ Ast.Int_lit 4 ])))
    (parse_expr_of "(int*)malloc(4)");
  Alcotest.check expr "parenthesised expr"
    (Ast.Binop (Ast.Mul, Ast.Binop (Ast.Add, Ast.Var "a", Ast.Var "b"),
                Ast.Var "c"))
    (parse_expr_of "(a + b) * c")

let test_parse_ternary_logic () =
  Alcotest.check expr "ternary"
    (Ast.Cond (Ast.Var "c", Ast.Int_lit 1, Ast.Int_lit 2))
    (parse_expr_of "c ? 1 : 2");
  Alcotest.check expr "and/or precedence"
    (Ast.Lor (Ast.Var "a", Ast.Land (Ast.Var "b", Ast.Var "c")))
    (parse_expr_of "a || b && c")

let test_parse_statements () =
  let p = Parser.parse_program {|
    int g[10];
    double f(int n, char *s) {
      for (int i = 0; i < n; i++) { if (s[i]) break; else continue; }
      while (n) n--;
      return 0.5;
    }
    int main() { return 0; }
  |} in
  Alcotest.(check int) "3 globals" 3 (List.length p)

let test_parse_errors () =
  (match Parser.parse_program "int main() { return 0 }" with
   | exception Parser.Parse_error (_, line) ->
     Alcotest.(check int) "line" 1 line
   | _ -> Alcotest.fail "expected parse error");
  match Parser.parse_program "int f(int) { }" with
  | exception Parser.Parse_error _ -> ()
  | _ -> Alcotest.fail "expected parse error"

(* --- type checker ------------------------------------------------------------ *)

let check_ok src = ignore (Typecheck.check_source src : Ir.tprog)

let check_fails src =
  match Typecheck.check_source src with
  | exception Typecheck.Type_error _ -> ()
  | _ -> Alcotest.failf "expected type error for %S" src

let test_typecheck_accepts () =
  check_ok {|
    int g = 3;
    double scale(double x) { return x * 2.0; }
    int main() {
      int a[4];
      int *p = a;
      char *s = "hi";
      double d = scale(2);   /* int -> double promotion */
      int i = (int)d + s[0] + *p + g;
      print_int(i);
      return 0;
    }
  |}

let test_typecheck_rejects () =
  check_fails "int main() { return x; }"; (* undeclared *)
  check_fails "int main() { int a[3]; a = 0; return 0; }"; (* array assign *)
  check_fails "void v; int main() { return 0; }"; (* void var *)
  check_fails "int main() { int i; i[0] = 1; return 0; }"; (* index int *)
  check_fails "int f(int a) { return a; } int main() { return f(); }"; (* arity *)
  check_fails "int main() { double d; d % 2; return 0; }"; (* fp mod -> int conv? *)
  check_fails "int main() { *4 = 1; return 0; }"; (* deref int *)
  check_fails "int f() { return 1; } int f() { return 2; } int main() { return 0; }";
  check_fails "int main() { int a[0]; return 0; }" (* zero-size array *)

let test_typecheck_requires_main () =
  check_fails "int f() { return 0; }"

let test_typecheck_op_assign_desugar () =
  let p = Typecheck.check_source "int main() { int i = 0; i += 2; return i; }" in
  let f = List.hd p.Ir.funcs in
  let found = ref false in
  List.iter
    (fun s ->
      match s with
      | Ir.Sexpr { Ir.e = Ir.Tassign (_, { Ir.e = Ir.Tbinop (Ast.Add, _, _); _ }); _ } ->
        found := true
      | _ -> ())
    f.Ir.body;
  Alcotest.(check bool) "desugared" true !found

let test_typecheck_conversions () =
  let p = Typecheck.check_source
      "int main() { double d = 1; int i = 2.5; print_float(i); return 0; }" in
  ignore p (* implicit conversions type-check *)

(* --- loop analysis ------------------------------------------------------------ *)

let analyze src =
  let p = Typecheck.check_source src in
  (p, La.analyze p)

let test_loops_bases_order () =
  let _, a = analyze {|
    int x[4]; int y[4]; int z[4];
    int main() {
      int i;
      for (i = 0; i < 4; i++) { y[i] = x[i] + z[i]; }
      return 0;
    }
  |} in
  match La.all_loops a with
  | [ l ] ->
    let names =
      List.map
        (function La.Bsym s -> s.Ir.name | La.Bstr _ -> "<str>" | La.Bcomplex -> "?")
        l.La.bases
    in
    Alcotest.(check (list string)) "FCFS order" [ "y"; "x"; "z" ] names
  | _ -> Alcotest.fail "expected one loop"

let test_loops_nesting () =
  let _, a = analyze {|
    int m[16];
    int main() {
      int i; int j;
      for (i = 0; i < 4; i++)
        for (j = 0; j < 4; j++)
          m[i*4+j] = 0;
      return 0;
    }
  |} in
  let loops = La.all_loops a in
  Alcotest.(check int) "two loops" 2 (List.length loops);
  let outer = List.find (fun l -> l.La.parent = None) loops in
  let inner = List.find (fun l -> l.La.parent <> None) loops in
  Alcotest.(check int) "inner's outermost" outer.La.loop_id inner.La.outermost_id;
  Alcotest.(check int) "outer sees m" 1 (List.length outer.La.bases)

let test_loops_characteristics () =
  let _, a = analyze {|
    int a[4]; int b[4]; int c[4]; int d[4]; int e[4];
    int main() {
      int i;
      for (i = 0; i < 4; i++) a[i] = 0;                      /* 1 array  */
      for (i = 0; i < 4; i++) a[i] = b[i]+c[i]+d[i]+e[i];    /* 5 arrays */
      for (i = 0; i < 4; i++) { }                            /* none     */
      return 0;
    }
  |} in
  let c = La.characteristics ~budget:3 a in
  Alcotest.(check int) "total" 3 c.La.total_loops;
  Alcotest.(check int) "array-using" 2 c.La.array_using_loops;
  Alcotest.(check int) "spilled" 1 c.La.spilled_loops

let test_loops_mutation_and_escape () =
  let _, a = analyze {|
    int buf[8];
    int f(int *q) { return q[0]; }
    int main() {
      int *p = buf; int *r = buf; int i;
      for (i = 0; i < 8; i++) { p[i] = 1; r = r + 1; *r = 2; f(&i); }
      return 0;
    }
  |} in
  let l = List.hd (List.filter (fun l -> l.La.bases <> [])
                     (La.all_loops a)) in
  let key name =
    List.find_map
      (function
        | La.Bsym s when s.Ir.name = name -> Some (La.base_key (La.Bsym s))
        | _ -> None)
      l.La.bases
  in
  (match key "r" with
   | Some k -> Alcotest.(check bool) "r mutated" true (List.mem k l.La.mutated)
   | None -> Alcotest.fail "r not a base");
  (match key "p" with
   | Some k -> Alcotest.(check bool) "p not mutated" false (List.mem k l.La.mutated)
   | None -> Alcotest.fail "p not a base");
  Alcotest.(check bool) "has call" true l.La.has_call

let test_loops_declared_inside () =
  let _, a = analyze {|
    double m[16];
    int main() {
      int i; int j;
      for (i = 0; i < 4; i++) {
        double *row = m + i*4;
        for (j = 0; j < 4; j++) row[j] = 0.0;
      }
      return 0;
    }
  |} in
  let outer = List.find (fun l -> l.La.parent = None) (La.all_loops a) in
  let row_base =
    List.find_map
      (function La.Bsym s when s.Ir.name = "row" -> Some (La.Bsym s) | _ -> None)
      outer.La.bases
  in
  match row_base with
  | Some b ->
    Alcotest.(check bool) "declared inside" true (La.base_declared_inside outer b);
    Alcotest.(check bool) "assignable" true (La.base_assignable outer b)
  | None -> Alcotest.fail "row not a base of the nest"

let test_classify_base () =
  let p = Typecheck.check_source {|
    int a[4];
    int main() {
      int *p = a;
      int x = *(p + 1) + a[0] + *p++;
      print_int(x);
      return 0;
    }
  |} in
  (* find the refs in main's body and classify *)
  let f = List.hd p.Ir.funcs in
  let classified = ref [] in
  let rec walk (e : Ir.texpr) =
    (match e.Ir.e with
     | Ir.Tindex (b, _) | Ir.Tderef b ->
       (match La.classify_base b with
        | La.Bsym s -> classified := s.Ir.name :: !classified
        | La.Bstr _ -> classified := "<str>" :: !classified
        | La.Bcomplex -> classified := "?" :: !classified)
     | _ -> ());
    match e.Ir.e with
    | Ir.Tindex (a, b) | Ir.Tbinop (_, a, b) | Ir.Tassign (a, b) ->
      walk a; walk b
    | Ir.Tderef a | Ir.Tcast (_, a) | Ir.Tincdec (_, _, a) -> walk a
    | _ -> ()
  in
  List.iter (function Ir.Sdecl (_, Some e) | Ir.Sexpr e -> walk e | _ -> ())
    f.Ir.body;
  Alcotest.(check bool) "all resolve to p or a" true
    (List.for_all (fun n -> n = "p" || n = "a") !classified
     && List.length !classified = 3)

let suite =
  [
    Alcotest.test_case "lex basics" `Quick test_lex_basics;
    Alcotest.test_case "lex numbers" `Quick test_lex_numbers;
    Alcotest.test_case "lex strings/chars" `Quick test_lex_strings_chars;
    Alcotest.test_case "lex comments" `Quick test_lex_comments;
    Alcotest.test_case "lex operators" `Quick test_lex_operators;
    Alcotest.test_case "lex errors" `Quick test_lex_errors;
    Alcotest.test_case "parse precedence" `Quick test_parse_precedence;
    Alcotest.test_case "parse unary/postfix" `Quick test_parse_unary_postfix;
    Alcotest.test_case "parse cast vs paren" `Quick test_parse_cast_vs_paren;
    Alcotest.test_case "parse ternary/logic" `Quick test_parse_ternary_logic;
    Alcotest.test_case "parse statements" `Quick test_parse_statements;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "typecheck accepts" `Quick test_typecheck_accepts;
    Alcotest.test_case "typecheck rejects" `Quick test_typecheck_rejects;
    Alcotest.test_case "typecheck main" `Quick test_typecheck_requires_main;
    Alcotest.test_case "op= desugar" `Quick test_typecheck_op_assign_desugar;
    Alcotest.test_case "conversions" `Quick test_typecheck_conversions;
    Alcotest.test_case "loop bases FCFS" `Quick test_loops_bases_order;
    Alcotest.test_case "loop nesting" `Quick test_loops_nesting;
    Alcotest.test_case "loop characteristics" `Quick test_loops_characteristics;
    Alcotest.test_case "mutation/escape/call" `Quick test_loops_mutation_and_escape;
    Alcotest.test_case "declared inside" `Quick test_loops_declared_inside;
    Alcotest.test_case "classify base" `Quick test_classify_base;
  ]

(* --- additional edge cases ---------------------------------------------- *)

let test_lex_hex_escape () =
  Alcotest.(check bool) "\\x41 is A" true
    (toks {|"\x41\x42"|} = [ Token.STR_LIT "AB"; Token.EOF ])

let test_parse_empty_things () =
  let p = Parser.parse_program
      "int main() { ;; for (;;) break; while (1) break; return 0; }" in
  Alcotest.(check int) "parses" 1 (List.length p)

let test_parse_dangling_else () =
  (* else binds to the nearest if *)
  let e = Parser.parse_program
      "int main() { if (1) if (0) return 1; else return 2; return 3; }" in
  match e with
  | [ Ast.Gfunc { Ast.body = [ Ast.If (_, Ast.If (_, _, Some _), None); _ ]; _ } ]
    -> ()
  | _ -> Alcotest.fail "else must attach to the inner if"

let test_parse_void_params () =
  let p = Parser.parse_program "int f(void) { return 1; } int main() { return f(); }" in
  match p with
  | [ Ast.Gfunc { Ast.params = []; _ }; _ ] -> ()
  | _ -> Alcotest.fail "void parameter list must be empty"

let test_parse_array_param_decays () =
  let p = Parser.parse_program "int f(int a[8]) { return a[0]; } int main() { return 0; }" in
  match p with
  | [ Ast.Gfunc { Ast.params = [ (Ast.Tptr Ast.Tint, _) ]; _ }; _ ] -> ()
  | _ -> Alcotest.fail "array parameters decay to pointers"

let test_typecheck_void_ptr_compat () =
  check_ok {|
int main() {
  int *p = (int*)malloc(8);
  free(p);           /* int* -> void* implicitly */
  return 0; }
|}

let test_typecheck_string_is_char_ptr () =
  check_fails "int main() { int *p = \"abc\"; return 0; }"

let test_typecheck_break_anywhere_parses () =
  (* break/continue are syntactically valid anywhere; codegen rejects
     them outside loops *)
  check_ok "int main() { while (1) { if (1) break; } return 0; }"

let test_loop_ids_unique () =
  let p = Typecheck.check_source {|
int main() {
  int i; int j;
  for (i = 0; i < 2; i++) { }
  for (i = 0; i < 2; i++) for (j = 0; j < 2; j++) { }
  while (i) i--;
  return 0; }
|} in
  let a = La.analyze p in
  let ids = List.map (fun l -> l.La.loop_id) (La.all_loops a) in
  Alcotest.(check int) "four loops" 4 (List.length ids);
  Alcotest.(check int) "unique ids" 4
    (List.length (List.sort_uniq compare ids))

let test_stable_def_source () =
  let p = Typecheck.check_source {|
int zone[64];
int other[64];
int main() {
  int k; int s = 0;
  for (k = 0; k < 8; k++) {
    int *row = zone + k * 8;      /* single stable source */
    int *mix = (k % 2) ? zone : other;  /* two sources */
    s += row[0] + mix[0];
  }
  print_int(s);
  return 0; }
|} in
  let a = La.analyze p in
  let l = List.hd (La.all_loops a) in
  let find name =
    List.find_map
      (function
        | La.Bsym s when s.Ir.name = name -> Some (La.Bsym s)
        | _ -> None)
      l.La.bases
  in
  (match find "row" with
   | Some b ->
     (match La.stable_def_source l b with
      | Some (La.Bsym src) ->
        Alcotest.(check string) "row borrows zone" "zone" src.Ir.name
      | _ -> Alcotest.fail "row should have a stable source")
   | None -> Alcotest.fail "row not a base");
  match find "mix" with
  | Some b ->
    Alcotest.(check bool) "mix has no stable source" true
      (La.stable_def_source l b = None)
  | None -> Alcotest.fail "mix not a base"

let test_written_tracking () =
  let p = Typecheck.check_source {|
int src[8]; int dst[8];
int main() {
  int i;
  for (i = 0; i < 8; i++) dst[i] = src[i];
  return 0; }
|} in
  let a = La.analyze p in
  let l = List.hd (La.all_loops a) in
  let key name =
    List.find_map
      (function
        | La.Bsym s when s.Ir.name = name -> Some (La.base_key (La.Bsym s))
        | _ -> None)
      l.La.bases
  in
  (match key "dst" with
   | Some k -> Alcotest.(check bool) "dst written" true (List.mem k l.La.written)
   | None -> Alcotest.fail "dst missing");
  match key "src" with
  | Some k ->
    Alcotest.(check bool) "src not written" false (List.mem k l.La.written)
  | None -> Alcotest.fail "src missing"

(* --- table-driven lexer vs the reference oracle ------------------------- *)

(* The production lexer is the table-driven scanner; the original
   list-building lexer survives as [Lexer_reference], the oracle. The
   two must agree token for token — including line numbers — on every
   program the repo can produce, and must reject the same garbage with
   the same message on the same line. *)

module Lexref = Minic.Lexer_reference

(* Token stream or lex error, comparable across the two lexers. *)
let outcome f src =
  match f src with
  | toks -> Ok toks
  | exception Lexer.Lex_error (m, l) -> Error (m, l)
  | exception Lexref.Lex_error (m, l) -> Error (m, l)

let check_agree what src =
  let a = outcome Lexer.tokenize src in
  let b = outcome Lexref.tokenize src in
  if a <> b then Alcotest.failf "lexers disagree on %s: %S" what src

let test_oracle_workloads () =
  List.iter
    (fun (name, src) -> check_agree name src)
    [ ("matmul", Workloads.Micro.matmul ());
      ("gaussian", Workloads.Micro.gaussian ());
      ("fft2d", Workloads.Micro.fft2d ());
      ("edge_detect", Workloads.Micro.edge_detect ());
      ("svd", Workloads.Micro.svd ());
      ("volrender", Workloads.Micro.volrender ());
      ("toast", Workloads.Macro.toast ());
      ("cjpeg", Workloads.Macro.cjpeg ());
      ("quat", Workloads.Macro.quat ());
      ("raylab", Workloads.Macro.raylab ());
      ("speex", Workloads.Macro.speex ());
      ("gif2png", Workloads.Macro.gif2png ()) ]

let test_oracle_fuzz () =
  (* the differential suite's seed range, with and without overruns *)
  for seed = 0 to 209 do
    check_agree
      (Printf.sprintf "seed %d" seed)
      (Fuzz.Gen.render (Fuzz.Gen.generate ~seed ~oob:(seed mod 3 = 0)))
  done

let test_oracle_tricky () =
  List.iter
    (fun src -> check_agree "tricky" src)
    [ "";
      "   \t  \n ";
      "int main() { return 0; }\r\n";
      "a\r\nb\r\nc";
      "x // comment to eof";
      "x /* block */ y /**/z";
      "/**/x/**//**/y// tail";
      "0 00 0x0 0xff 0XFF 0x2A 123456789";
      "1.5 1e3 1E3 1e+3 1e-3 1.5e2";
      {|'a' '\n' '\t' '\\' '\'' '\0' '\x41'|};
      {|"" "a" "\x41\x42" "tab\there" "q\"q" "a\nb"|};
      "a+++b a---b a+ ++b";
      "<<= < <= << = == != ! & && | ||";
      "x=1;y+=2;z-=3;w*=4;v/=5;u%=6;";
      "int _ab1 a_b_c sizeof sizeofx intx do doubled";
      (* both lexers must reject these identically: same message, line *)
      "@"; "\n\n  @"; "a\r\n@"; "$"; "`";
      "\"unterminated"; "\"unterminated\n more";
      "'"; "'a"; {|'\q'|};
      "/* runs off the end" ]

let test_lex_error_lines () =
  let line_of name f src =
    match f src with
    | exception Lexer.Lex_error (_, l) -> l
    | exception Lexref.Lex_error (_, l) -> l
    | _ -> Alcotest.failf "%s: expected a lex error for %S" name src
  in
  List.iter
    (fun (src, expect) ->
      Alcotest.(check int) ("new: " ^ String.escaped src) expect
        (line_of "new" Lexer.tokenize src);
      Alcotest.(check int) ("ref: " ^ String.escaped src) expect
        (line_of "ref" Lexref.tokenize src))
    [ ("@", 1); ("\n@", 2); ("a\nb\n  @", 3); ("//c\n/* x\n\n*/\n@", 5) ]

(* The flat-array scan: counts, lines, and the pointer-length halves
   must recover the reference stream and the original spellings. *)
let test_scan_positions () =
  let src =
    "int g = 0x2A;\nint main() {\n  int a[4]; /* c */\n  return a[0] + g;\n}\n"
  in
  let b = Lexer.scan src in
  let locs = Lexref.tokenize src in
  Alcotest.(check int) "count" (List.length locs) (Lexer.count b);
  List.iteri
    (fun i (l : Token.located) ->
      if Lexer.token b i <> l.Token.tok then
        Alcotest.failf "token %d differs" i;
      Alcotest.(check int) (Printf.sprintf "line of token %d" i) l.Token.line
        (Lexer.line_at b i);
      match l.Token.tok with
      | Token.INT_LIT _ | Token.FLOAT_LIT _ | Token.STR_LIT _
      | Token.CHAR_LIT _ | Token.EOF ->
        ()
      | t ->
        (* keywords, identifiers, punctuation: spelling = rendering *)
        Alcotest.(check string)
          (Printf.sprintf "spelling of token %d" i)
          (Token.to_string t)
          (String.sub src (Lexer.offset b i) (Lexer.length_at b i)))
    locs;
  Alcotest.(check bool) "past the end is EOF" true
    (Lexer.token b 999 = Token.EOF);
  Alcotest.(check int) "past the end is line 0" 0 (Lexer.line_at b 999)

let test_parse_error_lines () =
  List.iter
    (fun (src, expect) ->
      match Parser.parse_program src with
      | exception Parser.Parse_error (_, l) ->
        Alcotest.(check int) ("line of " ^ String.escaped src) expect l
      | _ -> Alcotest.failf "expected a parse error in %S" src)
    [ ("int main() { return 0 }", 1);
      ("int main() {\n  int x = 1;\n  return 0\n}", 4);
      ("int main() {\r\n  return 0\r\n}", 3);
      ("int f(int\n) { }", 2) ]

let suite =
  suite
  @ [
      Alcotest.test_case "lexer oracle: workloads" `Quick test_oracle_workloads;
      Alcotest.test_case "lexer oracle: fuzz programs" `Quick test_oracle_fuzz;
      Alcotest.test_case "lexer oracle: tricky inputs" `Quick
        test_oracle_tricky;
      Alcotest.test_case "lex error lines" `Quick test_lex_error_lines;
      Alcotest.test_case "scan positions" `Quick test_scan_positions;
      Alcotest.test_case "parse error lines" `Quick test_parse_error_lines;
      Alcotest.test_case "lex hex escape" `Quick test_lex_hex_escape;
      Alcotest.test_case "parse empties" `Quick test_parse_empty_things;
      Alcotest.test_case "dangling else" `Quick test_parse_dangling_else;
      Alcotest.test_case "void params" `Quick test_parse_void_params;
      Alcotest.test_case "array param decay" `Quick test_parse_array_param_decays;
      Alcotest.test_case "void* compat" `Quick test_typecheck_void_ptr_compat;
      Alcotest.test_case "string typing" `Quick test_typecheck_string_is_char_ptr;
      Alcotest.test_case "break parses" `Quick test_typecheck_break_anywhere_parses;
      Alcotest.test_case "loop ids unique" `Quick test_loop_ids_unique;
      Alcotest.test_case "stable def source" `Quick test_stable_def_source;
      Alcotest.test_case "written tracking" `Quick test_written_tracking;
    ]
