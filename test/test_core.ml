(* Tests of the public Core facade: the API a downstream user programs
   against. *)

let test_backend_names () =
  Alcotest.(check string) "gcc" "gcc" (Core.backend_name Core.gcc);
  Alcotest.(check string) "bcc" "bcc" (Core.backend_name Core.bcc);
  Alcotest.(check string) "cash" "cash3" (Core.backend_name Core.cash);
  Alcotest.(check string) "cash4" "cash4" (Core.backend_name (Core.cash_n 4));
  Alcotest.(check string) "bound" "bcc-bound" (Core.backend_name Core.bcc_bound)

let test_cash_n_validation () =
  Alcotest.check_raises "no cash5"
    (Invalid_argument "cash_n: no 5-register configuration") (fun () ->
      ignore (Core.cash_n 5))

let test_compile_errors_propagate () =
  (match Core.compile Core.cash "int main() { @ }" with
   | exception Minic.Lexer.Lex_error _ -> ()
   | _ -> Alcotest.fail "expected lex error");
  (match Core.compile Core.cash "int main() { return 0 }" with
   | exception Minic.Parser.Parse_error _ -> ()
   | _ -> Alcotest.fail "expected parse error");
  match Core.compile Core.cash "int main() { return x; }" with
  | exception Minic.Typecheck.Type_error _ -> ()
  | _ -> Alcotest.fail "expected type error"

let test_exec_roundtrip () =
  let r = Core.exec Core.cash "int main() { print_int(6 * 7); return 0; }" in
  Alcotest.(check bool) "finished" true (r.Core.status = Core.Finished);
  Alcotest.(check string) "output" "42\n" r.Core.output;
  Alcotest.(check bool) "cycles counted" true (r.Core.cycles > 0);
  Alcotest.(check bool) "insns counted" true (r.Core.insns > 0);
  Alcotest.(check bool) "runtime attached for cash" true
    (r.Core.runtime <> None)

let test_gcc_has_no_runtime () =
  let r = Core.exec Core.gcc "int main() { return 0; }" in
  Alcotest.(check bool) "no cash runtime" true (r.Core.runtime = None)

let test_shared_kernel_clock () =
  let kernel = Osim.Kernel.create () in
  let c = Core.compile Core.gcc "int main() { return 0; }" in
  let r1 = Core.run ~kernel c in
  let r2 = Core.run ~kernel c in
  ignore r1;
  ignore r2;
  Alcotest.(check bool) "clock advanced across runs" true
    (Osim.Kernel.clock kernel > 0);
  Alcotest.(check bool) "second process later" true
    (Osim.Process.created_at r2.Core.process
     >= Osim.Process.terminated_at r1.Core.process)

let test_fuel_limit () =
  match
    Core.exec ~fuel:1000 Core.gcc "int main() { while (1) { } return 0; }"
  with
  | exception Machine.Cpu.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_static_info () =
  let src = {|
int a[4];
int main() { int i; for (i = 0; i < 4; i++) a[i] = i; return 0; }
|} in
  let i = Core.static_info (Core.compile Core.cash src) in
  Alcotest.(check int) "1 hw check" 1 i.Core.hw_checks;
  Alcotest.(check bool) "code measured" true (i.Core.code_bytes > 0);
  Alcotest.(check bool) "data includes array + info" true
    (i.Core.data_bytes >= 16 + 12);
  Alcotest.(check int) "image = code + data" i.Core.image_bytes
    (i.Core.code_bytes + i.Core.data_bytes);
  Alcotest.(check int) "one array loop" 1
    i.Core.loops.Minic.Loop_analysis.array_using_loops

let test_stat_sum () =
  let src = {|
int a[4];
int main() { int i; for (i = 0; i < 100; i++) a[i % 4] = i; return 0; }
|} in
  let r = Core.exec Core.cash src in
  Alcotest.(check int) "100 loop iterations" 100
    (Core.stat_sum r ~prefix:"__stat_iter_a_")

let test_bound_violation_surfaces () =
  let r = Core.exec Core.cash
      "int a[2]; int main() { int i; for (i=0;i<9;i++) a[i]=i; return 0; }"
  in
  match r.Core.status with
  | Core.Bound_violation msg ->
    Alcotest.(check bool) "message names the segment" true
      (String.length msg > 10)
  | _ -> Alcotest.fail "expected violation"

(* --- the process-wide program cache and shared superblocks --------------- *)

let test_compile_cached () =
  let src = "int main() { print_int(987654); return 0; }" in
  let _, m0 = Core.compile_cache_stats () in
  let c1 = Core.compile_cached Core.cash src in
  let h1, m1 = Core.compile_cache_stats () in
  Alcotest.(check int) "first compile is a miss" (m0 + 1) m1;
  let c2 = Core.compile_cached Core.cash src in
  let h2, m2 = Core.compile_cache_stats () in
  Alcotest.(check int) "second compile is a hit" (h1 + 1) h2;
  Alcotest.(check int) "…and not a miss" m1 m2;
  Alcotest.(check bool) "the very same compiled program comes back" true
    (c1 == c2);
  (* cash_default and cash_security_only both render "cash3", so the
     cache must key on the configuration itself, not its name *)
  let g = Core.compile_cached Core.gcc src in
  Alcotest.(check bool) "another backend gets its own program" true (g != c2);
  let r1 = Core.run c1 and r2 = Core.run c2 in
  Alcotest.(check string) "cached output identical" r1.Core.output
    r2.Core.output

let test_shared_superblocks_bind () =
  let src =
    "int main() { int i; int s = 0; for (i = 0; i < 50; i++) s = s + i; \
     print_int(s); return 0; }"
  in
  let compiled = Core.compile_cached Core.cash src in
  let run ~engine = Core.run ~engine compiled in
  (* first block run compiles the program's superblocks once, into the
     process-wide cache… *)
  let r1 = run ~engine:Machine.Cpu.Block in
  let built0 = Machine.Cpu.blocks_built () in
  let bound0 = Machine.Cpu.blocks_bound () in
  (* …so a second machine over the same program binds them instead *)
  let r2 = run ~engine:Machine.Cpu.Block in
  Alcotest.(check int) "re-run builds no superblocks" built0
    (Machine.Cpu.blocks_built ());
  Alcotest.(check bool) "re-run binds the shared ones" true
    (Machine.Cpu.blocks_bound () > bound0);
  Alcotest.(check string) "identical output" r1.Core.output r2.Core.output;
  Alcotest.(check bool) "identical cycles" true (r1.Core.cycles = r2.Core.cycles);
  let rp = run ~engine:Machine.Cpu.Predecoded in
  let rr = run ~engine:Machine.Cpu.Reference in
  Alcotest.(check string) "predecode agrees" r1.Core.output rp.Core.output;
  Alcotest.(check string) "reference agrees" r1.Core.output rr.Core.output

let suite =
  [
    Alcotest.test_case "backend names" `Quick test_backend_names;
    Alcotest.test_case "cash_n validation" `Quick test_cash_n_validation;
    Alcotest.test_case "compile errors" `Quick test_compile_errors_propagate;
    Alcotest.test_case "exec roundtrip" `Quick test_exec_roundtrip;
    Alcotest.test_case "gcc has no runtime" `Quick test_gcc_has_no_runtime;
    Alcotest.test_case "shared kernel clock" `Quick test_shared_kernel_clock;
    Alcotest.test_case "fuel limit" `Quick test_fuel_limit;
    Alcotest.test_case "static info" `Quick test_static_info;
    Alcotest.test_case "stat sum" `Quick test_stat_sum;
    Alcotest.test_case "violation surfaces" `Quick test_bound_violation_surfaces;
    Alcotest.test_case "compile cache" `Quick test_compile_cached;
    Alcotest.test_case "shared superblocks bind" `Quick
      test_shared_superblocks_bind;
  ]
