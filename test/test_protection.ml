(* The MPX and capability backends: the two new columns of the
   five-scheme protection matrix.

   What is pinned here:
   - backend names round-trip through the serve protocol's table (the
     cashc CLI uses the same names), and every distinct configuration
     prints a distinct name;
   - the bound-register file and two-level bound table: walk hits,
     walk misses (which load the unbounded range and never fault),
     in-place evictions, and directory allocation accounting;
   - #BR precision: a fault in the middle of a superblock (and of a
     chain) reports identical cycles, retired instructions, and machine
     state under every engine, for both backends;
   - GANDALF-style capability semantics: pointer arithmetic that
     escapes the bounds clears the tag (and emits the typed trace
     event); one-past-the-end arithmetic keeps it;
   - three-engine equivalence on in-bounds programs, including the
     trace-event counts of the bound-table walks. *)

let engines =
  [ ("predecoded", Machine.Cpu.Predecoded, None);
    ("block", Machine.Cpu.Block, Some true);
    ("block-nochain", Machine.Cpu.Block, Some false);
    ("reference", Machine.Cpu.Reference, None) ]

let new_backends = [ ("mpx", Core.mpx); ("cap", Core.cap) ]

(* --- backend names ------------------------------------------------------- *)

let test_backend_names_round_trip () =
  (* Every protocol name resolves, and the name the backend prints
     resolves back to the very same backend — "cash" and "cash3" are
     deliberate aliases, so the round trip goes through the printed
     name, not the spelling the request used. *)
  List.iter
    (fun (name, backend) ->
      match Serve.Protocol.backend_of_string (Core.backend_name backend) with
      | Some b ->
        Alcotest.(check bool)
          (Printf.sprintf "%s round-trips via %S" name
             (Core.backend_name backend))
          true (b = backend)
      | None ->
        Alcotest.failf "backend %s prints unknown name %S" name
          (Core.backend_name backend))
    Serve.Protocol.backends;
  (* Distinct configurations print distinct names. *)
  let names =
    List.map Core.backend_name
      [ Core.gcc; Core.bcc; Core.bcc_bound; Core.cash; Core.cash_n 2;
        Core.cash_n 4; Core.mpx; Core.cap ]
  in
  Alcotest.(check int)
    "no two configurations share a name"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_unknown_backend_name_rejected () =
  Alcotest.(check bool)
    "unknown name stays rejected" true
    (Serve.Protocol.backend_of_string "mpx2" = None
    && Serve.Protocol.backend_of_string "capability" = None
    && Serve.Protocol.backend_of_string "" = None)

(* --- bound-register file and bound table --------------------------------- *)

let test_bound_table_hit_miss_evict () =
  let t = Seghw.Bound_regs.create () in
  Seghw.Bound_regs.set t 0 ~lower:0x1000 ~upper:0x2000;
  (* First spill allocates a second-level table. *)
  Alcotest.(check bool) "first store allocates" true
    (Seghw.Bound_regs.store t 0 ~key:0x8000);
  Alcotest.(check int) "one directory alloc" 1 t.Seghw.Bound_regs.dir_allocs;
  (* Same granule: no new allocation. *)
  Alcotest.(check bool) "same-granule store reuses" false
    (Seghw.Bound_regs.store t 0 ~key:0x8004);
  Alcotest.(check int) "two entries" 2 t.Seghw.Bound_regs.entries;
  (* A walk for a spilled key hits and reloads the exact bounds. *)
  Alcotest.(check bool) "walk hit" true (Seghw.Bound_regs.load t 1 ~key:0x8000);
  let b = Seghw.Bound_regs.reg t 1 in
  Alcotest.(check bool) "hit reloads bounds" true
    (b.Seghw.Bound_regs.valid
    && b.Seghw.Bound_regs.lower = 0x1000
    && b.Seghw.Bound_regs.upper = 0x2000);
  (* A walk for an unspilled key misses, loads the unbounded range, and
     never faults. *)
  Alcotest.(check bool) "walk miss" false
    (Seghw.Bound_regs.load t 2 ~key:0x9000);
  let m = Seghw.Bound_regs.reg t 2 in
  Alcotest.(check bool) "miss loads unbounded" true
    (m.Seghw.Bound_regs.valid
    && m.Seghw.Bound_regs.lower = 0
    && m.Seghw.Bound_regs.upper = 0xFFFFFFFF);
  Alcotest.(check int) "one miss counted" 1 t.Seghw.Bound_regs.load_misses;
  (* Overwriting a slot with different bounds is an in-place eviction;
     overwriting with the same bounds is not. *)
  Seghw.Bound_regs.set t 0 ~lower:0x3000 ~upper:0x4000;
  ignore (Seghw.Bound_regs.store t 0 ~key:0x8000);
  Alcotest.(check int) "eviction counted" 1 t.Seghw.Bound_regs.evictions;
  ignore (Seghw.Bound_regs.store t 0 ~key:0x8000);
  Alcotest.(check int) "same-bounds overwrite is no eviction" 1
    t.Seghw.Bound_regs.evictions;
  Alcotest.(check int) "entry count unchanged by overwrites" 2
    t.Seghw.Bound_regs.entries;
  (* An invalid register spills the unbounded range — the prologue
     save/restore of never-loaded registers must stay permissive. *)
  Seghw.Bound_regs.invalidate t 3;
  ignore (Seghw.Bound_regs.store t 3 ~key:0xA000);
  ignore (Seghw.Bound_regs.load t 3 ~key:0xA000);
  let i = Seghw.Bound_regs.reg t 3 in
  Alcotest.(check bool) "invalid register spills unbounded" true
    (i.Seghw.Bound_regs.lower = 0 && i.Seghw.Bound_regs.upper = 0xFFFFFFFF)

(* --- #BR precision ------------------------------------------------------- *)

(* The overrun sits mid-function, with live statements before and after
   it, so under the block engine the faulting access is in the middle
   of a superblock (and, with chaining, of a chain). Every engine must
   stop at the same instruction with the same cycle count and the same
   machine state. *)
let oob_mid_block = {|
int main() {
  int a[4];
  int x;
  int i;
  x = 0;
  for (i = 0; i < 4; i++) a[i] = i;
  x = a[0] + a[1];
  a[9] = x;
  x = x + a[2];
  print_int(x);
  return 0;
}
|}

let test_br_precise_mid_block () =
  List.iter
    (fun (bname, backend) ->
      let compiled = Core.compile backend oob_mid_block in
      let runs =
        List.map
          (fun (ename, engine, chain) ->
            (ename, Core.run ~engine ?chain compiled))
          engines
      in
      let _, first = List.hd runs in
      (match first.Core.status with
       | Core.Bound_violation _ -> ()
       | s ->
         Alcotest.failf "%s: expected #BR, got %s" bname
           (match s with
            | Core.Finished -> "finished"
            | Core.Crashed m -> "crash: " ^ m
            | Core.Bound_violation _ -> assert false));
      let digest (r : Core.run) =
        Core.state_digest (Core.state_of_run compiled r)
      in
      let d0 = digest first in
      List.iter
        (fun (ename, r) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: same status" bname ename)
            true
            (r.Core.status = first.Core.status);
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: same insns at fault" bname ename)
            first.Core.insns r.Core.insns;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: same cycles at fault" bname ename)
            first.Core.cycles r.Core.cycles;
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: same machine state at fault" bname ename)
            d0 (digest r))
        (List.tl runs))
    new_backends

(* --- capability tag semantics -------------------------------------------- *)

let test_cap_tag_clear_on_escape () =
  let src = {|
int main() {
  int a[4];
  int *p;
  p = a;
  p = p + 20;
  *p = 1;
  return 0;
}
|} in
  let sink = Trace.create () in
  let r = Core.run ~trace:sink (Core.compile Core.cap src) in
  (match r.Core.status with
   | Core.Bound_violation msg ->
     Alcotest.(check bool) "fault names the cleared tag" true
       (String.length msg >= 4
       &&
       let has_sub s sub =
         let n = String.length sub in
         let rec go i =
           i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
         in
         go 0
       in
       has_sub msg "capability tag")
   | s ->
     Alcotest.failf "expected a tag fault, got %s"
       (match s with
        | Core.Finished -> "finished"
        | Core.Crashed m -> "crash: " ^ m
        | Core.Bound_violation _ -> assert false));
  Alcotest.(check bool) "tag-clear event emitted" true
    (Trace.count sink Trace.K_cap_tag_clear >= 1)

let test_cap_one_past_end_keeps_tag () =
  (* Stepping to one past the end and back is defined C; the tag must
     survive the excursion, and the program must agree with gcc. *)
  let src = {|
int main() {
  int a[4];
  int *p;
  int i;
  int s;
  for (i = 0; i < 4; i++) a[i] = i + 1;
  p = a;
  s = 0;
  for (i = 0; i < 4; i++) { s = s + *p; p++; }
  p = p - 4;
  s = s + *p;
  print_int(s);
  return 0;
}
|} in
  let g = Core.exec Core.gcc src in
  let c = Core.exec Core.cap src in
  Alcotest.(check bool) "cap finishes" true (c.Core.status = Core.Finished);
  Alcotest.(check string) "same output as gcc" g.Core.output c.Core.output

(* --- three-engine equivalence -------------------------------------------- *)

(* Enough pointer traffic to exercise the FCFS bound-register
   allocation, the bound-table spill protocol across calls, and the
   capability interning path. *)
let in_bounds_workout = {|
int sum(int *p, int n) {
  int i;
  int s;
  s = 0;
  for (i = 0; i < n; i++) s = s + p[i];
  return s;
}
int main() {
  int a[6];
  int b[6];
  int c[6];
  int d[6];
  int *p;
  int i;
  int j;
  int s;
  for (i = 0; i < 6; i++) { a[i] = i; b[i] = 2*i; c[i] = 3*i; d[i] = 4*i; }
  s = 0;
  for (i = 0; i < 6; i++)
    for (j = 0; j < 6; j++)
      s = s + a[i] + b[j] + c[i] + d[j];
  p = malloc(6 * 4);
  for (i = 0; i < 6; i++) p[i] = a[i] + 1;
  s = s + sum(a, 6) + sum(p, 6);
  free(p);
  print_int(s);
  return 0;
}
|}

let test_three_engine_equivalence () =
  List.iter
    (fun (bname, backend) ->
      let compiled = Core.compile backend in_bounds_workout in
      let runs =
        List.map
          (fun (ename, engine, chain) ->
            let sink = Trace.create () in
            let r = Core.run ~engine ?chain ~trace:sink compiled in
            (ename, r, sink))
          engines
      in
      let _, first, fsink = List.hd runs in
      Alcotest.(check bool)
        (Printf.sprintf "%s finishes" bname)
        true
        (first.Core.status = Core.Finished);
      let gcc = Core.exec Core.gcc in_bounds_workout in
      Alcotest.(check string)
        (Printf.sprintf "%s output = gcc output" bname)
        gcc.Core.output first.Core.output;
      let counts sink =
        ( Trace.count sink Trace.K_btable_hit,
          Trace.count sink Trace.K_btable_miss,
          Trace.count sink Trace.K_cap_tag_clear )
      in
      List.iter
        (fun (ename, r, sink) ->
          Alcotest.(check string)
            (Printf.sprintf "%s/%s: same output" bname ename)
            first.Core.output r.Core.output;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: same cycles" bname ename)
            first.Core.cycles r.Core.cycles;
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: same insns" bname ename)
            first.Core.insns r.Core.insns;
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s: same trace counts" bname ename)
            true
            (counts sink = counts fsink))
        (List.tl runs);
      (* MPX spills bounds through calls: the workout must actually
         exercise the walk. *)
      if bname = "mpx" then
        Alcotest.(check bool) "bound-table walks happened" true
          (Trace.count fsink Trace.K_btable_hit > 0))
    new_backends

(* --- both backends catch both overrun shapes ----------------------------- *)

let direct_oob = {|
int main() {
  int a[4];
  a[7] = 1;
  print_int(a[7]);
  return 0;
}
|}

let loop_oob = {|
int main() {
  int a[4];
  int i;
  for (i = 0; i <= 4; i++) a[i] = i;
  print_int(a[0]);
  return 0;
}
|}

let test_catches_both_shapes () =
  List.iter
    (fun (bname, backend) ->
      List.iter
        (fun (shape, src) ->
          let r = Core.exec backend src in
          match r.Core.status with
          | Core.Bound_violation _ -> ()
          | Core.Finished ->
            Alcotest.failf "%s missed the %s overrun" bname shape
          | Core.Crashed m ->
            Alcotest.failf "%s crashed on the %s overrun: %s" bname shape m)
        [ ("direct", direct_oob); ("loop", loop_oob) ])
    new_backends

let suite =
  [
    Alcotest.test_case "backend names round-trip" `Quick
      test_backend_names_round_trip;
    Alcotest.test_case "unknown backend names stay rejected" `Quick
      test_unknown_backend_name_rejected;
    Alcotest.test_case "bound table: hit, miss, evict, dir alloc" `Quick
      test_bound_table_hit_miss_evict;
    Alcotest.test_case "#BR precise mid-superblock and mid-chain" `Quick
      test_br_precise_mid_block;
    Alcotest.test_case "capability tag cleared on escaping arithmetic" `Quick
      test_cap_tag_clear_on_escape;
    Alcotest.test_case "one-past-end arithmetic keeps the tag" `Quick
      test_cap_one_past_end_keeps_tag;
    Alcotest.test_case "three-engine equivalence with trace parity" `Quick
      test_three_engine_equivalence;
    Alcotest.test_case "both backends catch both overrun shapes" `Quick
      test_catches_both_shapes;
  ]
