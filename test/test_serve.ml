(* lib/serve: the warm-pool request server and its determinism oracle.

   The heart of the pool is [Core.restore_into]: re-parsing a snapshot
   image directly into a machine some previous request used, instead of
   building a fresh one. The oracle under test is byte-exact state
   equality — for every engine, restoring an image into a reused
   machine must produce the same [Core.state_digest] as a fresh
   [Core.restore] of the same image, no matter what the previous
   request left behind: a cleanly halted machine, one that faulted on a
   bound violation, or one parked mid-superblock. On top of that ride
   the pool policies (Grow/Block) and the server itself, whose batched
   responses must be identical at any job count and to direct
   [Core.run]s. *)

let engines =
  [ ("predecoded", Machine.Cpu.Predecoded);
    ("block", Machine.Cpu.Block);
    ("reference", Machine.Cpu.Reference) ]

let matmul () = Core.compile Core.gcc (Workloads.Micro.matmul ~n:6 ())
let cash_matmul () = Core.compile Core.cash (Workloads.Micro.matmul ~n:6 ())

(* A program cash faults on: a loop overrun past a 2-element array. *)
let oob_src = "int a[2]; int main() { int i; for (i=0;i<9;i++) a[i]=i; return 0; }"
let cash_oob () = Core.compile Core.cash oob_src

(* Step a freshly started machine [n] instructions, then to the next
   superblock boundary (same helper as test_snapshot). *)
let warm_state ?engine compiled n =
  let state = Core.start ?engine compiled in
  let process = Core.state_process state in
  let cpu = Osim.Process.cpu process in
  let target = Machine.Cpu.insns_executed cpu + n in
  while
    (match Machine.Cpu.status cpu with
     | Machine.Cpu.Running -> true
     | _ -> false)
    && Machine.Cpu.insns_executed cpu < target
  do
    Machine.Cpu.step cpu
  done;
  ignore (Snapshot.align_to_block process);
  state

(* Step [n] instructions WITHOUT aligning, leaving the machine parked
   mid-superblock — the messiest reuse candidate. *)
let midblock_state ?engine compiled n =
  let state = Core.start ?engine compiled in
  let cpu = Osim.Process.cpu (Core.state_process state) in
  for _ = 1 to n do
    match Machine.Cpu.status cpu with
    | Machine.Cpu.Running -> Machine.Cpu.step cpu
    | _ -> ()
  done;
  state

(* --- the determinism oracle ---------------------------------------------- *)

(* Pooled restore == fresh restore, byte for byte, on every engine, for
   every kind of leftover machine. *)
let test_restore_into_digest_oracle () =
  List.iter
    (fun (ename, engine) ->
      List.iter
        (fun compiled ->
          let image =
            Buffer.to_bytes (Core.save (warm_state ~engine compiled 500))
          in
          let fresh = Core.restore ~engine compiled image in
          let d_fresh = Core.state_digest fresh in
          let victims =
            [ ("halted", Core.state_of_run compiled (Core.run ~engine compiled));
              ("mid-block", midblock_state ~engine compiled 137);
              ("pristine", Core.start ~engine compiled) ]
          in
          List.iter
            (fun (vname, victim) ->
              let reused = Core.restore_into victim image in
              Alcotest.(check string)
                (Printf.sprintf "pooled = fresh digest (%s, %s)" ename vname)
                d_fresh (Core.state_digest reused))
            victims)
        [ matmul (); cash_matmul () ])
    engines

(* Reuse after a FAULTED run: the previous request died on a bound
   violation; the next restore into that machine must still be
   byte-identical to a fresh one, and finish identically. *)
let test_restore_into_after_fault () =
  let compiled = cash_oob () in
  List.iter
    (fun (ename, engine) ->
      let image =
        Buffer.to_bytes (Core.save (warm_state ~engine compiled 20))
      in
      let crashed = Core.run ~engine compiled in
      (match crashed.Core.status with
       | Core.Bound_violation _ -> ()
       | s ->
         Alcotest.failf "expected a bound violation, got %s (%s)"
           (match s with
            | Core.Finished -> "finished"
            | Core.Crashed m -> "crashed: " ^ m
            | Core.Bound_violation _ -> assert false)
           ename);
      let victim = Core.state_of_run compiled crashed in
      let reused = Core.restore_into victim image in
      let fresh = Core.restore ~engine compiled image in
      Alcotest.(check string)
        (Printf.sprintf "pooled = fresh digest after fault (%s)" ename)
        (Core.state_digest fresh) (Core.state_digest reused);
      let r1 = Core.finish reused and r2 = Core.run ~engine compiled in
      Alcotest.(check bool)
        (Printf.sprintf "replayed fault matches (%s)" ename)
        true
        (r1.Core.status = r2.Core.status && r1.Core.output = r2.Core.output
         && r1.Core.cycles = r2.Core.cycles))
    engines

(* Restoring an image into a machine built for a different program is
   a [Program_mismatch], not silent corruption. *)
let test_restore_into_rejects_wrong_program () =
  let a = matmul () and b = cash_matmul () in
  let image = Buffer.to_bytes (Core.save (Core.start a)) in
  let victim = Core.start b in
  match Core.restore_into victim image with
  | _ -> Alcotest.fail "expected Program_mismatch"
  | exception Snapshot.Error Snapshot.Program_mismatch -> ()

(* --- pool policies -------------------------------------------------------- *)

(* Sequential reuse through with_machine builds exactly one machine. *)
let test_pool_reuses_machine () =
  let compiled = matmul () in
  let image = Buffer.to_bytes (Core.save (warm_state compiled 300)) in
  let pool = Serve.Pool.create compiled in
  let baseline = Core.finish (Core.restore compiled image) in
  for _ = 1 to 8 do
    let r =
      Serve.Pool.with_machine pool (fun s ->
          Core.finish (Core.restore_into s image))
    in
    Alcotest.(check string) "pooled run output" baseline.Core.output
      r.Core.output;
    Alcotest.(check int) "pooled run cycles" baseline.Core.cycles r.Core.cycles
  done;
  Alcotest.(check int) "one machine built for 8 requests" 1
    (Serve.Pool.built pool);
  Alcotest.(check int) "and it is idle again" 1 (Serve.Pool.idle pool)

(* Grow policy: more concurrent acquires than capacity just build. *)
let test_pool_grow_past_capacity () =
  let pool = Serve.Pool.create ~capacity:1 ~policy:Serve.Pool.Grow (matmul ()) in
  let a = Serve.Pool.acquire pool in
  let b = Serve.Pool.acquire pool in
  Alcotest.(check int) "built past capacity" 2 (Serve.Pool.built pool);
  Serve.Pool.release pool a;
  Serve.Pool.release pool b;
  Alcotest.(check int) "both idle" 2 (Serve.Pool.idle pool)

(* Block policy: the second acquire waits for a release instead of
   building; a discarded machine frees its slot for a rebuild. *)
let test_pool_block_waits () =
  let pool =
    Serve.Pool.create ~capacity:1 ~policy:Serve.Pool.Block (matmul ())
  in
  let a = Serve.Pool.acquire pool in
  let got = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        let b = Serve.Pool.acquire pool in
        Atomic.set got true;
        Serve.Pool.release pool b)
  in
  (* the waiter cannot have acquired: capacity 1, machine held here *)
  Unix.sleepf 0.05;
  Alcotest.(check bool) "waiter blocked at capacity" false (Atomic.get got);
  Serve.Pool.release pool a;
  Domain.join d;
  Alcotest.(check bool) "waiter ran after release" true (Atomic.get got);
  Alcotest.(check int) "still one machine" 1 (Serve.Pool.built pool);
  (* discard shrinks the build count so capacity frees up *)
  let c = Serve.Pool.acquire pool in
  Serve.Pool.discard pool c;
  Alcotest.(check int) "discard releases the slot" 0 (Serve.Pool.built pool)

(* --- the server ----------------------------------------------------------- *)

let mini_warms () =
  List.map
    (fun (name, compiled) ->
      {
        Serve.Server.w_name = name;
        w_compiled = compiled;
        w_image = Buffer.to_bytes (Core.save (warm_state compiled 400));
      })
    [ ("m/gcc", matmul ()); ("m/cash", cash_matmul ()) ]

let tiny_src = "int main() { print_int(41 + 1); return 0; }"

let request_lines =
  [ {|{"op": "replay", "snapshot": "m/gcc"}|};
    {|{"op": "replay", "snapshot": "m/cash"}|};
    Printf.sprintf {|{"op": "compile-and-run", "backend": "gcc", "source": %S}|}
      tiny_src;
    {|{"op": "replay", "snapshot": "m/cash", "engine": "block"}|};
    {|{"op": "replay", "snapshot": "no-such-snapshot"}|};
    {|this is not json|};
    {|{"op": "compile-and-run", "backend": "cash", "source": "int nope("}|} ]

(* Everything observable about a response except its latency. *)
let strip (r : Serve.Protocol.response) =
  ( r.Serve.Protocol.rs_id, r.rs_ok, r.rs_status, r.rs_detail, r.rs_output,
    r.rs_cycles, r.rs_insns, r.rs_error )

(* Batched responses are byte-identical (modulo latency) at any job
   count, pooled or fresh, and match direct Core runs. *)
let test_server_batch_matches_direct () =
  let warms = mini_warms () in
  let serve ~jobs ~pooled =
    let server = Serve.Server.create ~jobs ~warms ~pooled ~batch:4 () in
    let responses, summary = Serve.Server.run_lines server request_lines in
    Alcotest.(check int) "one response per request"
      (List.length request_lines) (List.length responses);
    Alcotest.(check int) "summary counts requests"
      (List.length request_lines) summary.Serve.Server.requests;
    Alcotest.(check int) "three request-level failures" 3
      summary.Serve.Server.errors;
    List.map strip responses
  in
  let j1 = serve ~jobs:1 ~pooled:true in
  Alcotest.(check bool) "-j4 pooled identical" true
    (j1 = serve ~jobs:4 ~pooled:true);
  Alcotest.(check bool) "-j1 fresh identical" true
    (j1 = serve ~jobs:1 ~pooled:false);
  Alcotest.(check bool) "-j4 fresh identical" true
    (j1 = serve ~jobs:4 ~pooled:false);
  (* spot-check against direct runs *)
  let w = List.hd warms in
  let direct =
    Core.finish (Core.restore w.Serve.Server.w_compiled w.Serve.Server.w_image)
  in
  (match j1 with
   | (id, ok, status, _, output, cycles, insns, err) :: _ ->
     Alcotest.(check int) "replay id defaults to position" 1 id;
     Alcotest.(check bool) "replay ok" true ok;
     Alcotest.(check string) "replay status" "finished" status;
     Alcotest.(check string) "replay output" direct.Core.output output;
     Alcotest.(check int) "replay cycles" direct.Core.cycles cycles;
     Alcotest.(check int) "replay insns" direct.Core.insns insns;
     Alcotest.(check bool) "no error" true (err = None)
   | [] -> Alcotest.fail "no responses");
  let direct_tiny = Core.exec Core.gcc tiny_src in
  (match List.nth j1 2 with
   | _, ok, status, _, output, _, _, _ ->
     Alcotest.(check bool) "compile-and-run ok" true ok;
     Alcotest.(check string) "compile-and-run status" "finished" status;
     Alcotest.(check string) "compile-and-run output" direct_tiny.Core.output
       output);
  List.iteri
    (fun i (_, ok, _, _, _, _, _, err) ->
      if i >= 4 then begin
        Alcotest.(check bool) (Printf.sprintf "request %d failed" (i + 1))
          false ok;
        Alcotest.(check bool) "carries an error" true (err <> None)
      end)
    j1

(* The streaming entry point: same requests through channels, responses
   line-framed in order, summary line last. *)
let test_server_streams_channels () =
  let dir = Filename.get_temp_dir_name () in
  let req_path = Filename.concat dir
      (Printf.sprintf "cash_serve_req_%d.jsonl" (Unix.getpid ())) in
  let rsp_path = Filename.concat dir
      (Printf.sprintf "cash_serve_rsp_%d.jsonl" (Unix.getpid ())) in
  Core.write_file req_path (String.concat "\n" request_lines ^ "\n");
  let server = Serve.Server.create ~jobs:1 ~warms:(mini_warms ()) () in
  let ic = open_in req_path in
  let oc = open_out rsp_path in
  let summary =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic; close_out_noerr oc)
      (fun () -> Serve.Server.serve server ic oc)
  in
  Alcotest.(check int) "summary requests" (List.length request_lines)
    summary.Serve.Server.requests;
  let lines =
    String.split_on_char '\n' (String.trim (Core.read_file rsp_path))
  in
  Alcotest.(check int) "one line per response + summary"
    (List.length request_lines + 1) (List.length lines);
  List.iteri
    (fun i line ->
      let json = Trace.Json.parse line in
      if i < List.length request_lines then
        Alcotest.(check (option int)) "ids in request order" (Some (i + 1))
          (Option.bind (Trace.Json.member "id" json) Trace.Json.to_int_opt)
      else
        Alcotest.(check bool) "summary line last" true
          (Trace.Json.member "summary" json <> None))
    lines;
  Sys.remove req_path;
  Sys.remove rsp_path

(* The summary reports the process-wide program cache: a repeated
   compile-and-run source compiles once and hits thereafter, and the
   hit/miss pair rides at the END of the summary JSON (CI greps the
   leading fields by position). *)
let test_summary_compile_cache () =
  let src = "int main() { print_int(20260808); return 0; }" in
  let lines =
    List.init 4 (fun _ ->
        Printf.sprintf
          {|{"op": "compile-and-run", "backend": "cash", "source": %S}|} src)
  in
  let server = Serve.Server.create ~jobs:1 () in
  let _, s = Serve.Server.run_lines server lines in
  Alcotest.(check int) "no errors" 0 s.Serve.Server.errors;
  Alcotest.(check bool) "at most one miss" true
    (s.Serve.Server.compile_misses <= 1);
  Alcotest.(check bool) "the rest are hits" true
    (s.Serve.Server.compile_hits >= 3);
  let json = Trace.Json.to_string (Serve.Server.summary_to_json s) in
  let has needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "summary json carries compile_hits" true
    (has "\"compile_hits\"");
  Alcotest.(check bool) "…and compile_misses" true (has "\"compile_misses\"");
  Alcotest.(check bool) "grep-pinned prefix unchanged" true
    (has "\"summary\":true,\"requests\":")

(* --- protocol ------------------------------------------------------------- *)

let test_protocol_round_trip () =
  let reqs =
    [ { Serve.Protocol.rq_id = 7; rq_engine = Some Machine.Cpu.Block;
        rq_spec = Serve.Protocol.Replay { snapshot = "a/b" } };
      { Serve.Protocol.rq_id = 8; rq_engine = None;
        rq_spec =
          Serve.Protocol.Compile_and_run
            { backend = Core.cash; source = "int main() { return 0; }" } } ]
  in
  List.iter
    (fun rq ->
      let line = Trace.Json.to_string (Serve.Protocol.request_to_json rq) in
      match Serve.Protocol.parse_request ~default_id:0 line with
      | Error e -> Alcotest.failf "round-trip failed: %s" e
      | Ok rq' ->
        Alcotest.(check int) "id" rq.Serve.Protocol.rq_id
          rq'.Serve.Protocol.rq_id;
        Alcotest.(check bool) "engine" true
          (rq.Serve.Protocol.rq_engine = rq'.Serve.Protocol.rq_engine);
        Alcotest.(check bool) "spec" true
          (match (rq.Serve.Protocol.rq_spec, rq'.Serve.Protocol.rq_spec) with
           | ( Serve.Protocol.Replay { snapshot = a },
               Serve.Protocol.Replay { snapshot = b } ) -> a = b
           | ( Serve.Protocol.Compile_and_run a,
               Serve.Protocol.Compile_and_run b ) ->
             a.source = b.source
             && Core.backend_name a.backend = Core.backend_name b.backend
           | _ -> false))
    reqs;
  (* malformed lines come back as Error, not exceptions *)
  List.iter
    (fun line ->
      match Serve.Protocol.parse_request ~default_id:3 line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted %S" line)
    [ "nope"; "{}"; {|{"op": "replay"}|}; {|{"op": "warp"}|};
      {|{"op": "compile-and-run", "backend": "tcc", "source": "x"}|};
      {|{"op": "replay", "snapshot": "s", "engine": "warp"}|} ]

let suite =
  [
    Alcotest.test_case "restore_into: pooled = fresh digest, all engines"
      `Slow test_restore_into_digest_oracle;
    Alcotest.test_case "restore_into: reuse after a faulted run" `Quick
      test_restore_into_after_fault;
    Alcotest.test_case "restore_into: rejects a different program" `Quick
      test_restore_into_rejects_wrong_program;
    Alcotest.test_case "pool: 8 requests build 1 machine" `Quick
      test_pool_reuses_machine;
    Alcotest.test_case "pool: grow builds past capacity" `Quick
      test_pool_grow_past_capacity;
    Alcotest.test_case "pool: block waits, discard frees the slot" `Quick
      test_pool_block_waits;
    Alcotest.test_case "server: batches match direct runs at -j1/-j4" `Slow
      test_server_batch_matches_direct;
    Alcotest.test_case "server: summary reports the compile cache" `Quick
      test_summary_compile_cache;
    Alcotest.test_case "server: streams channels with summary" `Quick
      test_server_streams_channels;
    Alcotest.test_case "protocol: round-trip and rejection" `Quick
      test_protocol_round_trip;
  ]
