(* Tests of the experiment harness: every table builder must produce the
   right shape (row/column counts, parseable cells) and the headline
   invariants of the reproduction must hold (GCC < Cash < BCC, trends). *)

let pct_cell cell =
  (* "12.3%" -> 12.3 *)
  match float_of_string_opt (String.sub cell 0 (String.length cell - 1)) with
  | Some v -> v
  | None -> Alcotest.failf "not a percentage cell: %S" cell

let test_report_formatting () =
  let t =
    Harness.Report.make ~title:"t" ~headers:[ "a"; "b" ]
      ~rows:[ [ "xx"; "y" ]; [ "1"; "22222" ] ]
      ~notes:[ "n" ] ()
  in
  let s = Fmt.str "%a" Harness.Report.pp t in
  Alcotest.(check bool) "title present" true (String.length s > 10);
  Alcotest.(check bool) "separator present" true (String.contains s '-');
  Alcotest.(check bool) "note present" true (String.contains s 'n')

let test_runner_detects_disagreement () =
  (* a program whose behaviour is an overflow must raise, not mislead *)
  match
    Harness.Runner.compare_backends
      "int a[2]; int main() { int i; for (i=0;i<4;i++) a[i]=i; return 0; }"
  with
  | exception Harness.Runner.Disagreement _ -> ()
  | _ -> Alcotest.fail "expected Disagreement"

let test_line_count () =
  Alcotest.(check int) "counts non-blank lines" 2
    (Harness.Runner.line_count "a\n\n  \nb\n")

let check_table ~rows ~cols (t : Harness.Report.t) =
  Alcotest.(check int) "row count" rows (List.length t.Harness.Report.rows);
  List.iter
    (fun r -> Alcotest.(check int) "column count" cols (List.length r))
    t.Harness.Report.rows

let test_table1_shape () =
  let t = Harness.Table1.run () in
  check_table ~rows:6 ~cols:7 t;
  (* headline invariant: Cash overhead < BCC overhead on every kernel *)
  List.iter
    (fun row ->
      match row with
      | [ _; hwsw; _; cash; bcc; _; _ ] ->
        Alcotest.(check bool) "cash < bcc" true (pct_cell cash < pct_cell bcc);
        Alcotest.(check bool) "cash below 10%" true (pct_cell cash < 10.0);
        (* Table 1 runs with 4 registers: no software checks anywhere *)
        Alcotest.(check bool) "all hw" true
          (String.length hwsw > 2
           && String.sub hwsw (String.length hwsw - 2) 2 = "/0")
      | _ -> Alcotest.fail "bad row shape")
    t.Harness.Report.rows

let test_table3_trend () =
  let t = Harness.Table3.run () in
  check_table ~rows:3 ~cols:5 t;
  (* the paper's claim: relative overhead decreases as input grows *)
  List.iter
    (fun row ->
      match row with
      | [ _; s16; _; _; s128 ] ->
        Alcotest.(check bool) "shrinks with size" true
          (pct_cell s128 < pct_cell s16)
      | _ -> Alcotest.fail "bad row shape")
    t.Harness.Report.rows

let test_table8_shape () =
  let t = Harness.Table8.run ~requests:5 () in
  check_table ~rows:6 ~cols:5 t;
  List.iter
    (fun row ->
      match row with
      | [ _; lat; thr; _; _ ] ->
        (* latency and throughput penalties track each other (§4.4) *)
        Alcotest.(check bool) "within 3x of each other" true
          (let l = pct_cell lat and t = pct_cell thr in
           l >= 0.0 && t >= 0.0 && l < 25.0
           && Float.abs (l -. t) < 3.0 +. (0.5 *. l))
      | _ -> Alcotest.fail "bad row shape")
    t.Harness.Report.rows

(* The warm-started snapshot split must reproduce the serial Table 8
   byte for byte, at several job counts — the whole point of the split
   is that nobody can tell from the table that the requests were
   warm-started from a checkpoint instead of run back-to-back. *)
let test_table8_split_equals_serial () =
  let render t = Format.asprintf "%a" Harness.Report.pp t in
  let serial = render (Harness.Table8.run ~requests:4 ()) in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "split -j%d" jobs)
        serial
        (render (Harness.Table8.run_split ~jobs ~requests:4 ())))
    [ 1; 2; 4 ]

let test_figure2_expectations_met () =
  let t = Harness.Figure2.run () in
  List.iter
    (fun row ->
      match row with
      | [ probe; _; result; expected ] ->
        Alcotest.(check string) probe expected result
      | _ -> Alcotest.fail "bad row shape")
    t.Harness.Report.rows

let test_microcosts_anchors () =
  let t = Harness.Microcosts.run () in
  let find name =
    match
      List.find_opt (fun r -> List.hd r = name) t.Harness.Report.rows
    with
    | Some (_ :: v :: _) -> v
    | _ -> Alcotest.failf "missing row %s" name
  in
  (* the two kernel-path costs are exact by construction *)
  Alcotest.(check string) "gate" "253" (find "cash_modify_ldt (cycles)");
  Alcotest.(check string) "int80" "781" (find "modify_ldt (cycles)");
  Alcotest.(check string) "per use" "4" (find "per-array-use overhead (cycles)");
  (* the assembled paths land within a few percent of the paper *)
  let close_to name paper =
    let v = int_of_string (find name) in
    Alcotest.(check bool)
      (Printf.sprintf "%s ~ %d (got %d)" name paper v)
      true
      (abs (v - paper) * 100 < paper * 10)
  in
  close_to "per-program overhead (cycles)" 543;
  close_to "per-array overhead (cycles)" 263

let test_ablation_monotone () =
  let t = Harness.Ablation.run () in
  check_table ~rows:6 ~cols:7 t;
  List.iter
    (fun row ->
      match row with
      | [ _; r2; _; _; _; r4; _ ] ->
        (* more registers never hurt *)
        Alcotest.(check bool) "4 regs <= 2 regs + eps" true
          (pct_cell r4 <= pct_cell r2 +. 1.0)
      | _ -> Alcotest.fail "bad row shape")
    t.Harness.Report.rows

let suite =
  [
    Alcotest.test_case "report formatting" `Quick test_report_formatting;
    Alcotest.test_case "runner disagreement" `Quick test_runner_detects_disagreement;
    Alcotest.test_case "line count" `Quick test_line_count;
    Alcotest.test_case "table1 shape+invariants" `Slow test_table1_shape;
    Alcotest.test_case "table3 trend" `Slow test_table3_trend;
    Alcotest.test_case "table8 shape" `Slow test_table8_shape;
    Alcotest.test_case "table8 split = serial" `Slow
      test_table8_split_equals_serial;
    Alcotest.test_case "figure2 expectations" `Slow test_figure2_expectations_met;
    Alcotest.test_case "microcost anchors" `Slow test_microcosts_anchors;
    Alcotest.test_case "ablation monotone" `Slow test_ablation_monotone;
  ]
