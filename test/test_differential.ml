(* Property-based differential testing of the three compilers — the
   tier-1 face of the fuzzing subsystem in lib/fuzz (the standalone
   `cashfuzz` binary runs the same fleet at 10^5-program scale).

   A seeded generator ([Fuzz.Gen]) produces random mini-C programs —
   global arrays, (nested) loops, helper-function calls over array
   pointers, aliased pointer walks, offset reads, data-dependent
   stores — in bounds *by construction*, then optionally injects one
   out-of-bounds access (small enough that the unchecked baseline stays
   on mapped pages and corrupts silently instead of crashing).

   Properties, over a fixed-seed fleet of 210 programs ([Fuzz.Check]):

   - in bounds: gcc, bcc, and cash all Finish with identical output —
     neither checker may change observable semantics of a correct
     program, and the checked compilers must agree with the baseline;
   - out of bounds, loop shape: bcc and cash BOTH report a bound
     violation (the software checker and the segmentation hardware flag
     the same bug), while gcc never does — it either finishes silently
     corrupted or crashes on an unrelated fault, which is exactly the
     failure mode the paper's mechanism exists to close;
   - out of bounds, straight-line shape: bcc reports a bound violation;
     cash runs straight through it. That is §3.8's policy — the Cash
     compiler checks references inside loops only — and the fleet pins
     it HONESTLY as a known miss rather than a divergence (a cash that
     started catching these would fail the pin and force the policy
     model to be updated).

   Both properties run under the predecoded AND the superblock engine
   for every seed — the latter twice, with block chaining on and off —
   with the reference oracle joining on every 7th seed
   ([Fuzz.Check.all_engines]). Within a seed, outputs must also agree
   across engines.

   Every case is deterministic (own PRNG state per seed), so a failure
   message naming the seed reproduces the program exactly. On top of
   that, a failing seed is greedily shrunk to a minimal reproducer
   ([Fuzz.Shrink]) and BOTH programs are dumped with machine snapshots
   and replay command lines — seed_N.{c,snap,txt} and
   seed_N.min.{c,snap,txt} — under $CASH_DIFF_DUMP (default
   "diff-failures", created recursively), so the terminal state can be
   re-examined offline with `cashc --replay`. CASH_DIFF_FORCE_FAIL=<n>
   forces that in-bounds seed to fail, which is how CI exercises the
   dump-shrink-replay path on demand. *)

let in_bounds_cases = 140
let oob_cases = 70

let dump_dir () =
  match Sys.getenv_opt "CASH_DIFF_DUMP" with
  | Some d when d <> "" -> d
  | _ -> "diff-failures"

let force_fail () =
  match Sys.getenv_opt "CASH_DIFF_FORCE_FAIL" with
  | Some s -> int_of_string_opt s
  | None -> None

(* The fleet fans out across domains exactly as before (CASH_JOBS or
   the recommended count, via lib/parallel inside Fuzz.Fleet); failure
   reports come back in seed order, so a red run names the same seed a
   serial run would. *)
let run_fleet ~first_seed ~count ~oob_every =
  let stats =
    Fuzz.Fleet.run
      {
        Fuzz.Fleet.count;
        first_seed;
        oob_every;
        engines = Fuzz.Fleet.All;
        jobs = None;
        dump_dir = Some (dump_dir ());
        force_fail = force_fail ();
        shrink = true;
        plugins = false;
      }
  in
  match stats.Fuzz.Fleet.failures with
  | [] -> ()
  | (r : Fuzz.Fleet.failure_report) :: rest ->
    Alcotest.failf "%s%s%s" r.r_message
      (match r.r_artifacts with
       | [] -> ""
       | ps -> "\nartifacts: " ^ String.concat ", " ps)
      (if rest = [] then ""
       else Printf.sprintf "\n(+%d more failing seeds)" (List.length rest))

let test_in_bounds () =
  run_fleet ~first_seed:0 ~count:in_bounds_cases ~oob_every:0

let test_out_of_bounds () =
  run_fleet ~first_seed:1000 ~count:oob_cases ~oob_every:1

(* The generator itself must be deterministic, or a reported seed would
   not reproduce the failing program. *)
let test_generator_deterministic () =
  for seed = 0 to 9 do
    Alcotest.(check string)
      (Printf.sprintf "seed %d stable" seed)
      (Fuzz.Gen.render (Fuzz.Gen.generate ~seed ~oob:true))
      (Fuzz.Gen.render (Fuzz.Gen.generate ~seed ~oob:true))
  done

let suite =
  [
    Alcotest.test_case
      (Printf.sprintf "in-bounds agreement (%d programs)" in_bounds_cases)
      `Slow test_in_bounds;
    Alcotest.test_case
      (Printf.sprintf "overrun detection (%d programs)" oob_cases)
      `Slow test_out_of_bounds;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
  ]
