(* Property-based differential testing of the three compilers.

   A seeded generator produces random mini-C programs — global arrays,
   (nested) loops, pointer walks, offset-pointer reads, data-dependent
   stores — that are in bounds *by construction*, then optionally injects
   one loop that runs out of bounds (final index size..size+2, small
   enough that the unchecked baseline stays on mapped pages and corrupts
   silently instead of crashing).

   Properties, over a fixed-seed fleet of 210 programs:

   - in bounds: gcc, bcc, and cash all Finish with identical output —
     neither checker may change observable semantics of a correct
     program, and the checked compilers must agree with the baseline;
   - out of bounds: bcc and cash BOTH report a bound violation (the
     software checker and the segmentation hardware flag the same bug),
     while gcc never does — it either finishes silently corrupted or
     crashes on an unrelated fault, which is exactly the failure mode
     the paper's mechanism exists to close.

   Both properties run under the predecoded AND the superblock
   execution engine for every seed — the latter twice, with block
   chaining on and off, so the fleet doubles as a differential test of
   the engines AND of the chain/fusion machinery against its own
   per-block fallback — with the reference oracle joining on every 7th
   seed as a spot check (it is an order of magnitude slower, and the
   dedicated oracle suite already covers it densely). Within a seed,
   outputs must also agree across engines.

   Every case is deterministic (own PRNG state per seed), so a failure
   message naming the seed reproduces the program exactly. On top of
   that, a failing property dumps crash artifacts — the generated
   source, a lib/snapshot checkpoint of the machine the offending run
   left behind, and a replay command line — under $CASH_DIFF_DUMP
   (default "diff-failures"), so the terminal state can be re-examined
   offline with `cashc --replay`. CASH_DIFF_FORCE_FAIL=<seed> forces
   that in-bounds seed to fail, which is how CI exercises the
   dump-and-replay path on demand. *)

type arr = { name : string; size : int }

(* Generate one program. Returns the source; [oob] injects exactly one
   overrunning loop (store, load, or pointer walk) at the end of main,
   after the checksum has been folded, so the unchecked baseline's
   behaviour up to the injection point is untouched. *)
let gen_program st ~oob =
  let n_arrays = 1 + Random.State.int st 3 in
  let arrays =
    List.init n_arrays (fun i ->
        { name = Printf.sprintf "g%d" i; size = 4 + Random.State.int st 21 })
  in
  let buf = Buffer.create 512 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter (fun a -> pr "int %s[%d];\n" a.name a.size) arrays;
  (* Landing pad: keeps the baseline's small overruns inside the data
     section (declaration order is layout order), so gcc corrupts
     silently rather than faulting. *)
  pr "int zpad[64];\n";
  pr "int main() {\n  int i; int j; int acc = 0;\n";
  List.iteri
    (fun k a ->
      pr "  for (i = 0; i < %d; i = i + 1) %s[i] = (i * %d + %d) %% 97;\n"
        a.size a.name
        (3 + (2 * k))
        (1 + Random.State.int st 50))
    arrays;
  let pick () = List.nth arrays (Random.State.int st n_arrays) in
  let n_ops = 1 + Random.State.int st 4 in
  for _ = 1 to n_ops do
    match Random.State.int st 5 with
    | 0 ->
      let a = pick () in
      pr "  for (i = 0; i < %d; i = i + 1) acc = (acc + %s[i]) %% 9973;\n"
        a.size a.name
    | 1 ->
      let a = pick () and b = pick () in
      pr
        "  for (i = 0; i < %d; i = i + 1)\n\
        \    for (j = 0; j < %d; j = j + 1)\n\
        \      acc = (acc + %s[i] * %s[j]) %% 9973;\n"
        a.size b.size a.name b.name
    | 2 ->
      let a = pick () in
      pr
        "  {\n\
        \    int *p = %s;\n\
        \    for (i = 0; i < %d; i = i + 1) { acc = (acc + *p) %% 9973; p = \
         p + 1; }\n\
        \  }\n"
        a.name a.size
    | 3 ->
      let a = pick () in
      let k = Random.State.int st a.size in
      let j = Random.State.int st (a.size - k) in
      pr "  { int *p = %s + %d; acc = (acc + p[%d]) %% 9973; }\n" a.name k j
    | _ ->
      let a = pick () in
      let i0 = Random.State.int st a.size in
      let i1 = Random.State.int st a.size in
      pr "  if (%s[%d] > 40) %s[%d] = acc %% 89; else %s[%d] = (acc + 7) %% 89;\n"
        a.name i0 a.name i1 a.name i1
  done;
  (* Fold every array back into the checksum so the stores above are
     observable in the printed output. *)
  List.iter
    (fun a ->
      pr "  for (i = 0; i < %d; i = i + 1) acc = (acc * 31 + %s[i]) %% 99991;\n"
        a.size a.name)
    arrays;
  (* The injected overrun is a loop running one-to-three elements past
     the end: the Cash compiler checks references inside loops only
     (§3.8 — straight-line references are left unchecked by policy), so
     a straight-line overrun would not exercise the checker at all. *)
  if oob then begin
    let a = pick () in
    let last = a.size + Random.State.int st 3 in
    match Random.State.int st 3 with
    | 0 -> pr "  for (i = 0; i <= %d; i = i + 1) %s[i] = i;\n" last a.name
    | 1 ->
      pr "  for (i = 0; i <= %d; i = i + 1) acc = (acc + %s[i]) %% 9973;\n"
        last a.name
    | _ ->
      pr
        "  {\n\
        \    int *p = %s;\n\
        \    for (i = 0; i <= %d; i = i + 1) { acc = acc + *p; p = p + 1; }\n\
        \  }\n"
        a.name last
  end;
  pr "  print_int(acc);\n  return 0;\n}\n";
  Buffer.contents buf

let gen ~seed ~oob =
  gen_program (Random.State.make [| 0xC0DE; seed |]) ~oob

let status_name = function
  | Core.Finished -> "finished"
  | Core.Bound_violation m -> "bound_violation: " ^ m
  | Core.Crashed m -> "crashed: " ^ m

let is_bound_violation = function Core.Bound_violation _ -> true | _ -> false

(* --- crash artifacts ---------------------------------------------------- *)

let dump_dir () =
  match Sys.getenv_opt "CASH_DIFF_DUMP" with
  | Some d when d <> "" -> d
  | _ -> "diff-failures"

let write_file path contents =
  let oc = open_out_bin path in
  output_string oc contents;
  close_out oc

(* Dump the failing seed's artifacts before the failure unwinds: the
   source, a snapshot of the machine the offending run left behind
   (when one exists — a compile-time failure has no machine), and a
   metadata file with the replay command. Dumping must never mask the
   test failure, so filesystem errors only warn. *)
let dump_failure ~seed ~what ~backend ~src run =
  let dir = dump_dir () in
  try
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let base = Filename.concat dir (Printf.sprintf "seed_%d" seed) in
    write_file (base ^ ".c") src;
    let snapped =
      match run with
      | None -> false
      | Some (r : Core.run) ->
        let state = Core.state_of_run (Core.compile backend src) r in
        write_file (base ^ ".snap") (Buffer.contents (Core.save state));
        true
    in
    write_file (base ^ ".txt")
      (Printf.sprintf
         "seed: %d\nproperty: %s\nbackend: %s\nreplay: cashc --compiler %s%s \
          %s.c\n"
         seed what
         (Core.backend_name backend)
         (Core.backend_name backend)
         (if snapped then Printf.sprintf " --replay %s.snap" base else "")
         base)
  with Sys_error msg ->
    Printf.eprintf "diff dump failed for seed %d: %s\n%!" seed msg

(* [Alcotest.failf], with the artifact dump riding on the front. *)
let faild ~seed ~what ~backend ~src ?run fmt =
  Printf.ksprintf
    (fun msg ->
      dump_failure ~seed ~what ~backend ~src run;
      Alcotest.fail msg)
    fmt

let run_backend ~seed ~what ~engine ?chain backend src =
  match Core.exec ~engine ?chain backend src with
  | r -> r
  | exception e ->
    faild ~seed ~what ~backend ~src "seed %d: %s under %s raised %s\n%s" seed
      what
      (Core.backend_name backend)
      (Printexc.to_string e) src

(* Both fast engines on every seed — the block engine with chaining on
   AND off, so the fleet differentials the chain/fusion machinery
   against its own per-block fallback on every program — with the
   reference oracle joining on every 7th. *)
let engines ~seed =
  [ ("predecode", Machine.Cpu.Predecoded, None);
    ("block", Machine.Cpu.Block, Some true);
    ("block-nochain", Machine.Cpu.Block, Some false) ]
  @ (if seed mod 7 = 0 then [ ("reference", Machine.Cpu.Reference, None) ]
     else [])

(* Property 1: on an in-bounds program all three compilers finish and
   print the same thing — under every engine, with identical output
   across engines. *)
let check_in_bounds seed =
  let src = gen ~seed ~oob:false in
  (match Sys.getenv_opt "CASH_DIFF_FORCE_FAIL" with
   | Some s when int_of_string_opt s = Some seed ->
     let what = "in-bounds/forced" in
     let r =
       run_backend ~seed ~what ~engine:Machine.Cpu.Predecoded Core.cash src
     in
     faild ~seed ~what ~backend:Core.cash ~src ~run:r
       "seed %d: forced failure (CASH_DIFF_FORCE_FAIL)" seed
   | _ -> ());
  let first_output = ref None in
  List.iter
    (fun (ename, engine, chain) ->
      let what = "in-bounds/" ^ ename in
      let g = run_backend ~seed ~what ~engine ?chain Core.gcc src in
      let b = run_backend ~seed ~what ~engine ?chain Core.bcc src in
      let c = run_backend ~seed ~what ~engine ?chain Core.cash src in
      List.iter
        (fun (name, backend, r) ->
          if r.Core.status <> Core.Finished then
            faild ~seed ~what ~backend ~src ~run:r
              "seed %d: %s did not finish under %s: %s\n%s" seed name ename
              (status_name r.Core.status) src)
        [ ("gcc", Core.gcc, g); ("bcc", Core.bcc, b); ("cash", Core.cash, c) ];
      if b.Core.output <> g.Core.output then
        faild ~seed ~what ~backend:Core.bcc ~src ~run:b
          "seed %d: bcc output %S <> gcc output %S (%s)\n%s" seed
          b.Core.output g.Core.output ename src;
      if c.Core.output <> g.Core.output then
        faild ~seed ~what ~backend:Core.cash ~src ~run:c
          "seed %d: cash output %S <> gcc output %S (%s)\n%s" seed
          c.Core.output g.Core.output ename src;
      match !first_output with
      | None -> first_output := Some g.Core.output
      | Some out ->
        if g.Core.output <> out then
          faild ~seed ~what ~backend:Core.gcc ~src ~run:g
            "seed %d: output differs across engines at %s\n%s" seed ename src)
    (engines ~seed)

(* Property 2: on the same program with one injected overrun, both
   checked compilers flag it and the unchecked baseline never calls it a
   bound violation — under every engine. *)
let check_out_of_bounds seed =
  let src = gen ~seed ~oob:true in
  List.iter
    (fun (ename, engine, chain) ->
      let what = "oob/" ^ ename in
      let g = run_backend ~seed ~what ~engine ?chain Core.gcc src in
      let b = run_backend ~seed ~what ~engine ?chain Core.bcc src in
      let c = run_backend ~seed ~what ~engine ?chain Core.cash src in
      if not (is_bound_violation b.Core.status) then
        faild ~seed ~what ~backend:Core.bcc ~src ~run:b
          "seed %d: bcc missed the overrun under %s (%s)\n%s" seed ename
          (status_name b.Core.status) src;
      if not (is_bound_violation c.Core.status) then
        faild ~seed ~what ~backend:Core.cash ~src ~run:c
          "seed %d: cash missed the overrun under %s (%s)\n%s" seed ename
          (status_name c.Core.status) src;
      if is_bound_violation g.Core.status then
        faild ~seed ~what ~backend:Core.gcc ~src ~run:g
          "seed %d: gcc reported a bound violation it cannot detect under %s \
           (%s)\n%s"
          seed ename (status_name g.Core.status) src)
    (engines ~seed)

let in_bounds_cases = 140
let oob_cases = 70

(* Every case is an independent deterministic simulation (fresh kernel,
   machine, and MMU per run), so the fleet fans out across domains —
   CASH_JOBS (or the recommended domain count) workers via
   lib/parallel. Failures stay deterministic: Parallel.run_jobs
   re-raises the lowest-seed failure, so a red run names the same seed
   a serial run would. *)
let run_fleet ~first n check =
  ignore
    (Parallel.run_jobs (Array.init n (fun i () -> check (first + i)))
      : unit array)

let test_in_bounds () = run_fleet ~first:0 in_bounds_cases check_in_bounds

let test_out_of_bounds () =
  run_fleet ~first:1000 oob_cases check_out_of_bounds

(* The generator itself must be deterministic, or a reported seed would
   not reproduce the failing program. *)
let test_generator_deterministic () =
  for seed = 0 to 9 do
    Alcotest.(check string)
      (Printf.sprintf "seed %d stable" seed)
      (gen ~seed ~oob:true) (gen ~seed ~oob:true)
  done

let suite =
  [
    Alcotest.test_case
      (Printf.sprintf "in-bounds agreement (%d programs)" in_bounds_cases)
      `Slow test_in_bounds;
    Alcotest.test_case
      (Printf.sprintf "overrun detection (%d programs)" oob_cases)
      `Slow test_out_of_bounds;
    Alcotest.test_case "generator is deterministic" `Quick
      test_generator_deterministic;
  ]
