(* Unit and property tests for the segmentation/paging hardware. *)

open Seghw

let check_fault name f =
  match f () with
  | exception Fault.Fault _ -> ()
  | _ -> Alcotest.failf "%s: expected a fault" name

(* --- selectors --------------------------------------------------------- *)

let test_selector_roundtrip () =
  let s = Selector.make ~index:1234 ~table:Selector.Ldt ~rpl:3 in
  Alcotest.(check int) "index" 1234 (Selector.index s);
  Alcotest.(check bool) "table" true (Selector.table s = Selector.Ldt);
  Alcotest.(check int) "rpl" 3 (Selector.rpl s);
  Alcotest.(check bool) "not null" false (Selector.is_null s)

let test_selector_null () =
  Alcotest.(check bool) "null" true (Selector.is_null Selector.null);
  (* RPL bits do not affect nullness; TI=1 does *)
  Alcotest.(check bool) "null rpl3" true (Selector.is_null (Selector.of_int 3));
  Alcotest.(check bool) "ldt idx0 not null" false
    (Selector.is_null (Selector.make ~index:0 ~table:Selector.Ldt ~rpl:0))

let test_selector_range () =
  Alcotest.check_raises "index too big" (Invalid_argument
    "Selector.make: index 8192 out of range")
    (fun () -> ignore (Selector.make ~index:8192 ~table:Selector.Gdt ~rpl:0))

let test_selector_paper_gate () =
  (* the paper's `lcall $0x7, $0x0`: LDT entry 0, RPL 3 = 0x7 *)
  let s = Selector.make ~index:0 ~table:Selector.Ldt ~rpl:3 in
  Alcotest.(check int) "0x7" 0x7 (Selector.to_int s)

(* --- descriptors ------------------------------------------------------- *)

let desc_testable =
  Alcotest.testable Descriptor.pp Descriptor.equal

let test_descriptor_roundtrip () =
  let d =
    Descriptor.make ~base:0x12345678 ~limit:0xABCDE ~granularity:true ~dpl:3
      ~present:true ~seg_type:(Descriptor.Data { writable = true })
  in
  Alcotest.check desc_testable "roundtrip" d
    (Descriptor.decode (Descriptor.encode d))

let test_descriptor_code_roundtrip () =
  let d =
    Descriptor.make ~base:0xFFFFFFFF ~limit:0 ~granularity:false ~dpl:0
      ~present:false ~seg_type:(Descriptor.Code { readable = true })
  in
  Alcotest.check desc_testable "roundtrip" d
    (Descriptor.decode (Descriptor.encode d))

let test_callgate_roundtrip () =
  let d =
    Descriptor.make ~base:0 ~limit:0 ~granularity:false ~dpl:3 ~present:true
      ~seg_type:(Descriptor.Call_gate { handler = 1; param_count = 2 })
  in
  Alcotest.check desc_testable "roundtrip" d
    (Descriptor.decode (Descriptor.encode d))

let test_effective_limit () =
  let d size =
    Descriptor.for_array ~base:0x1000 ~size_bytes:size ~writable:true
  in
  (* byte-granular up to 1 MiB: exact *)
  Alcotest.(check int) "100B" 99 (Descriptor.effective_limit (d 100));
  Alcotest.(check int) "1MiB" ((1 lsl 20) - 1)
    (Descriptor.effective_limit (d (1 lsl 20)));
  (* page-granular above: rounded up to 4 KiB multiples *)
  let big = (1 lsl 20) + 1 in
  let expected_pages = (big + 4095) / 4096 in
  Alcotest.(check int) "1MiB+1" ((expected_pages * 4096) - 1)
    (Descriptor.effective_limit (d big))

let test_offset_ok () =
  let d = Descriptor.for_array ~base:0 ~size_bytes:100 ~writable:true in
  Alcotest.(check bool) "first byte" true (Descriptor.offset_ok d ~offset:0 ~size:1);
  Alcotest.(check bool) "last byte" true (Descriptor.offset_ok d ~offset:99 ~size:1);
  Alcotest.(check bool) "one past" false (Descriptor.offset_ok d ~offset:100 ~size:1);
  Alcotest.(check bool) "4B straddling end" false
    (Descriptor.offset_ok d ~offset:97 ~size:4);
  (* wrapped negative offsets are huge unsigned values: the lower-bound
     check of §3.3 *)
  Alcotest.(check bool) "negative wraps" false
    (Descriptor.offset_ok d ~offset:(-4) ~size:4)

let test_granularity_bit_ignores_low_bits () =
  (* Figure 2: with G=1 the limit has 0xFFF ORed in, so a segment sized
     for a 2 MB array admits offsets into the rounding slack *)
  let size = 2_000_000 in
  let d = Descriptor.for_array ~base:0 ~size_bytes:size ~writable:true in
  let seg_size = (size + 4095) / 4096 * 4096 in
  Alcotest.(check bool) "G set" true d.Descriptor.granularity;
  Alcotest.(check bool) "end of slack ok" true
    (Descriptor.offset_ok d ~offset:(seg_size - 1) ~size:1);
  Alcotest.(check bool) "past slack faults" false
    (Descriptor.offset_ok d ~offset:seg_size ~size:1)

let test_descriptor_invariants () =
  Alcotest.check_raises "limit 21 bits"
    (Invalid_argument "Descriptor: limit 0x100000 not 20-bit") (fun () ->
      ignore
        (Descriptor.make ~base:0 ~limit:(1 lsl 20) ~granularity:false ~dpl:0
           ~present:true ~seg_type:(Descriptor.Data { writable = true })))

(* property: encode/decode round-trips over random data descriptors *)
let prop_descriptor_roundtrip =
  QCheck.Test.make ~count:500 ~name:"descriptor encode/decode roundtrip"
    QCheck.(
      quad (int_bound 0xFFFFFFF) (int_bound 0xFFFFF) bool (int_bound 3))
    (fun (base, limit, g, dpl) ->
      let d =
        Descriptor.make ~base ~limit ~granularity:g ~dpl ~present:true
          ~seg_type:(Descriptor.Data { writable = true })
      in
      Descriptor.equal d (Descriptor.decode (Descriptor.encode d)))

(* property: offset_ok is exactly the interval [0, effective_limit] *)
let prop_limit_check_sound =
  QCheck.Test.make ~count:1000 ~name:"limit check matches interval"
    QCheck.(pair (int_range 1 2_000_000) (int_range 0 3_000_000))
    (fun (size, offset) ->
      let d = Descriptor.for_array ~base:0 ~size_bytes:size ~writable:true in
      let inside = offset <= Descriptor.effective_limit d in
      Descriptor.offset_ok d ~offset ~size:1 = inside)

(* --- descriptor tables -------------------------------------------------- *)

let data_desc =
  Descriptor.make ~base:0x1000 ~limit:0xFF ~granularity:false ~dpl:3
    ~present:true ~seg_type:(Descriptor.Data { writable = true })

let test_table_set_get () =
  let t = Descriptor_table.create Descriptor_table.Ldt_table in
  Descriptor_table.set t 5 data_desc;
  Alcotest.(check bool) "get" true (Descriptor_table.get t 5 = Some data_desc);
  Alcotest.(check int) "live" 1 (Descriptor_table.live_count t);
  Descriptor_table.clear t 5;
  Alcotest.(check bool) "cleared" true (Descriptor_table.get t 5 = None);
  Alcotest.(check int) "live0" 0 (Descriptor_table.live_count t)

let test_table_gdt_entry0 () =
  let t = Descriptor_table.create Descriptor_table.Gdt_table in
  check_fault "gdt entry 0" (fun () -> Descriptor_table.set t 0 data_desc)

let test_table_lookup_empty () =
  let t = Descriptor_table.create Descriptor_table.Ldt_table in
  check_fault "empty entry" (fun () ->
      ignore (Descriptor_table.lookup_exn t 7))

let test_table_lookup_not_present () =
  let t = Descriptor_table.create Descriptor_table.Ldt_table in
  Descriptor_table.set t 3 { data_desc with Descriptor.present = false };
  check_fault "not present" (fun () ->
      ignore (Descriptor_table.lookup_exn t 3))

(* --- segment registers --------------------------------------------------- *)

let test_segreg_null_rules () =
  let r = Segreg.create () in
  (* null into a data register is fine *)
  Segreg.load r ~name:Segreg.ES ~selector:Selector.null ~descriptor:None;
  (* but using it faults *)
  check_fault "use of null ES" (fun () ->
      ignore
        (Segreg.translate r ~name:Segreg.ES ~offset:0 ~size:4 ~write:false
           ~stack:false));
  (* null into SS faults at load time *)
  check_fault "null into SS" (fun () ->
      Segreg.load r ~name:Segreg.SS ~selector:Selector.null ~descriptor:None)

let test_segreg_translate () =
  let r = Segreg.create () in
  Segreg.load r ~name:Segreg.GS
    ~selector:(Selector.make ~index:1 ~table:Selector.Ldt ~rpl:3)
    ~descriptor:(Some data_desc);
  Alcotest.(check int) "base+offset" 0x1010
    (Segreg.translate r ~name:Segreg.GS ~offset:0x10 ~size:4 ~write:true
       ~stack:false);
  check_fault "limit" (fun () ->
      ignore
        (Segreg.translate r ~name:Segreg.GS ~offset:0x100 ~size:1 ~write:false
           ~stack:false))

let test_segreg_write_protect () =
  let r = Segreg.create () in
  let ro =
    Descriptor.make ~base:0 ~limit:0xFF ~granularity:false ~dpl:3
      ~present:true ~seg_type:(Descriptor.Data { writable = false })
  in
  Segreg.load r ~name:Segreg.FS ~selector:(Selector.of_int 0xF)
    ~descriptor:(Some ro);
  check_fault "write ro" (fun () ->
      ignore
        (Segreg.translate r ~name:Segreg.FS ~offset:0 ~size:1 ~write:true
           ~stack:false))

let test_segreg_descriptor_cache () =
  (* the hidden part: modifying the table does not affect a loaded
     register (descriptor-cache semantics, §3.1) *)
  let t = Descriptor_table.create Descriptor_table.Ldt_table in
  Descriptor_table.set t 1 data_desc;
  let mmu = Mmu.create ~gdt:(Descriptor_table.create Descriptor_table.Gdt_table) ~ldt:t in
  let sel = Selector.make ~index:1 ~table:Selector.Ldt ~rpl:3 in
  Mmu.load_segreg mmu Segreg.GS sel;
  Descriptor_table.clear t 1;
  (* the stale descriptor is still cached: translation succeeds *)
  Mmu.map_range mmu ~linear:0x1000 ~size:0x100 ~writable:true;
  let phys = Mmu.translate mmu ~seg_name:Segreg.GS ~offset:4 ~size:4 ~write:false in
  ignore phys;
  (* reloading now faults (empty entry) *)
  check_fault "reload after clear" (fun () -> Mmu.load_segreg mmu Segreg.GS sel)

(* --- 4 GiB boundary audit (Intel SDM Vol. 3A §6.3) ----------------------
   The limit check computes [offset + size - 1] in 63-bit host ints and
   never wraps at 2^32; the linear address does wrap. These tests pin
   both halves of that contract (see the audit note in Segreg.translate):
   the SDM leaves boundary-straddling accesses against a flat 4 GiB
   segment implementation-specific, and the simulator implements the
   always-fault variant. *)

let flat_4gib =
  (* base 0, limit 0xFFFFF, G=1: effective limit 0xFFFFFFFF — the flat
     segments the simulated kernel hands every process. *)
  Descriptor.make ~base:0 ~limit:0xFFFFF ~granularity:true ~dpl:3
    ~present:true ~seg_type:(Descriptor.Data { writable = true })

let test_limit_4gib_boundary () =
  Alcotest.(check int) "flat effective limit" 0xFFFFFFFF
    (Descriptor.effective_limit flat_4gib);
  let r = Segreg.create () in
  Segreg.load r ~name:Segreg.GS ~selector:(Selector.of_int 0xB)
    ~descriptor:(Some flat_4gib);
  (* Last 4 bytes of the 4 GiB space: in bounds, offset = linear. *)
  Alcotest.(check int) "last dword" 0xFFFFFFFC
    (Segreg.translate r ~name:Segreg.GS ~offset:0xFFFFFFFC ~size:4
       ~write:true ~stack:false);
  (* 8-byte access straddling the boundary: 0xFFFF_FFFC + 8 - 1 does not
     wrap, exceeds the limit, faults — the pinned SDM-allowed behaviour. *)
  check_fault "straddles 4 GiB" (fun () ->
      ignore
        (Segreg.translate r ~name:Segreg.GS ~offset:0xFFFFFFFC ~size:8
           ~write:true ~stack:false));
  Alcotest.(check bool) "offset_ok agrees (pass)" true
    (Descriptor.offset_ok flat_4gib ~offset:0xFFFFFFFC ~size:4);
  Alcotest.(check bool) "offset_ok agrees (fail)" false
    (Descriptor.offset_ok flat_4gib ~offset:0xFFFFFFFC ~size:8)

let test_limit_wrapped_negative_offset () =
  (* A "negative" offset from wrapped pointer arithmetic is a huge
     32-bit value; the no-wrap sum keeps it above any limit, which is
     Cash's lower-bound check. *)
  let r = Segreg.create () in
  Segreg.load r ~name:Segreg.FS ~selector:(Selector.of_int 0xF)
    ~descriptor:(Some (Descriptor.for_array ~base:0x5000 ~size_bytes:24
                         ~writable:true));
  check_fault "offset -4" (fun () ->
      ignore
        (Segreg.translate r ~name:Segreg.FS ~offset:(-4) ~size:4 ~write:false
           ~stack:false));
  (* ...even though -4 + base would land on mapped memory below the
     array — the check runs on the 32-bit offset, not the address. *)
  check_fault "offset -4 straddling zero" (fun () ->
      ignore
        (Segreg.translate r ~name:Segreg.FS ~offset:(-4) ~size:8 ~write:false
           ~stack:false))

let test_linear_wrap_end_aligned () =
  (* Figure 2's geometry pushed to the top of the address space: an
     end-aligned segment whose base + offset crosses 2^32. The LINEAR
     address is architecturally defined to wrap (and does); only the
     limit comparison is no-wrap. *)
  let r = Segreg.create () in
  let d =
    Descriptor.make ~base:0xFFFFF000 ~limit:0x1FFF ~granularity:false ~dpl:3
      ~present:true ~seg_type:(Descriptor.Data { writable = true })
  in
  Segreg.load r ~name:Segreg.GS ~selector:(Selector.of_int 0xB)
    ~descriptor:(Some d);
  (* offset 0x1000: base + offset = 0x1_0000_0000 wraps to linear 0. *)
  Alcotest.(check int) "linear wraps to 0" 0
    (Segreg.translate r ~name:Segreg.GS ~offset:0x1000 ~size:4 ~write:true
       ~stack:false);
  (* The upper bound stays byte-exact at the wrapped position. *)
  Alcotest.(check int) "last byte" 0xFFF
    (Segreg.translate r ~name:Segreg.GS ~offset:0x1FFF ~size:1 ~write:true
       ~stack:false);
  check_fault "one past end" (fun () ->
      ignore
        (Segreg.translate r ~name:Segreg.GS ~offset:0x1FFD ~size:4
           ~write:true ~stack:false))

let test_mmu_limit_event_4gib () =
  (* The traced mirror in Mmu.translate must agree with Segreg.translate
     at the boundary: the emitted Limit_check's [ok] matches the fault. *)
  let gdt = Descriptor_table.create Descriptor_table.Gdt_table in
  let ldt = Descriptor_table.create Descriptor_table.Ldt_table in
  Descriptor_table.set gdt 1 flat_4gib;
  let mmu = Mmu.create ~gdt ~ldt in
  let sink = Trace.create () in
  Mmu.set_trace mmu (Some sink);
  Mmu.load_segreg mmu Segreg.DS
    (Selector.make ~index:1 ~table:Selector.Gdt ~rpl:3);
  Mmu.map_range mmu ~linear:0xFFFFF000 ~size:0x1000 ~writable:true;
  ignore
    (Mmu.translate mmu ~seg_name:Segreg.DS ~offset:0xFFFFFFFC ~size:4
       ~write:true : int);
  Alcotest.(check int) "pass event" 1 (Trace.count sink Trace.K_limit_check_pass);
  check_fault "straddle faults" (fun () ->
      ignore
        (Mmu.translate mmu ~seg_name:Segreg.DS ~offset:0xFFFFFFFC ~size:8
           ~write:true));
  Alcotest.(check int) "fail event mirrors fault" 1
    (Trace.count sink Trace.K_limit_check_fail)

(* --- paging / tlb -------------------------------------------------------- *)

let test_paging_walk () =
  let p = Paging.create () in
  let frame = Paging.map_page p ~linear:0x12345000 ~writable:true in
  Alcotest.(check int) "phys" ((frame lsl 12) lor 0x678)
    (Paging.walk p ~linear:0x12345678 ~write:true);
  check_fault "unmapped" (fun () ->
      ignore (Paging.walk p ~linear:0xDEAD0000 ~write:false))

let test_paging_unmap () =
  let p = Paging.create () in
  ignore (Paging.map_page p ~linear:0x1000 ~writable:true : int);
  Alcotest.(check int) "mapped count" 1 (Paging.mapped_pages p);
  Paging.unmap_page p ~linear:0x1000;
  Alcotest.(check int) "unmapped count" 0 (Paging.mapped_pages p);
  check_fault "after unmap" (fun () ->
      ignore (Paging.walk p ~linear:0x1000 ~write:false))

let test_paging_write_protect () =
  let p = Paging.create () in
  ignore (Paging.map_page p ~linear:0x2000 ~writable:false : int);
  ignore (Paging.walk p ~linear:0x2000 ~write:false : int);
  check_fault "write to ro page" (fun () ->
      ignore (Paging.walk p ~linear:0x2000 ~write:true))

let test_tlb () =
  let t = Tlb.create ~size:4 () in
  Alcotest.(check int) "miss" Tlb.miss (Tlb.lookup t ~page:7 ~write:false);
  Tlb.insert t ~page:7 ~frame:42 ~writable:true;
  Alcotest.(check int) "hit" 42 (Tlb.lookup t ~page:7 ~write:true);
  (* conflicting slot evicts *)
  Tlb.insert t ~page:11 ~frame:9 ~writable:false;
  Alcotest.(check int) "evicted" Tlb.miss (Tlb.lookup t ~page:7 ~write:false);
  Tlb.invalidate_page t ~page:11;
  Alcotest.(check int) "invalidated" Tlb.miss
    (Tlb.lookup t ~page:11 ~write:false);
  Alcotest.(check bool) "counters" true (Tlb.hits t = 1 && Tlb.misses t >= 3)

let test_tlb_write_upgrade () =
  let t = Tlb.create ~size:4 () in
  Tlb.insert t ~page:3 ~frame:1 ~writable:false;
  (* a write access must not hit a read-only TLB entry... *)
  Alcotest.(check int) "write miss on ro entry" Tlb.miss
    (Tlb.lookup t ~page:3 ~write:true);
  (* ...and after the walk, re-inserting upgrades the slot in place, so
     the read-only-hit-as-write-miss penalty is paid exactly once: the
     next write (and read) hit. *)
  Tlb.insert t ~page:3 ~frame:1 ~writable:true;
  Alcotest.(check int) "write hits after upgrade" 1
    (Tlb.lookup t ~page:3 ~write:true);
  Alcotest.(check int) "read hits after upgrade" 1
    (Tlb.lookup t ~page:3 ~write:false);
  Alcotest.(check int) "exactly one miss" 1 (Tlb.misses t)

(* --- mmu ---------------------------------------------------------------- *)

let make_mmu () =
  let gdt = Descriptor_table.create Descriptor_table.Gdt_table in
  let ldt = Descriptor_table.create Descriptor_table.Ldt_table in
  Descriptor_table.set gdt 1
    (Descriptor.make ~base:0 ~limit:0xFFFFF ~granularity:true ~dpl:3
       ~present:true ~seg_type:(Descriptor.Data { writable = true }));
  Descriptor_table.set ldt 1
    (Descriptor.for_array ~base:0x5000 ~size_bytes:64 ~writable:true);
  (gdt, ldt, Mmu.create ~gdt ~ldt)

let test_mmu_end_to_end () =
  let _, _, mmu = make_mmu () in
  Mmu.load_segreg mmu Segreg.DS (Selector.make ~index:1 ~table:Selector.Gdt ~rpl:3);
  Mmu.load_segreg mmu Segreg.GS (Selector.make ~index:1 ~table:Selector.Ldt ~rpl:3);
  Mmu.map_range mmu ~linear:0x5000 ~size:64 ~writable:true;
  (* GS offset 0 = linear 0x5000 = same physical as DS offset 0x5000 *)
  let p1 = Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0 ~size:4 ~write:true in
  let p2 = Mmu.translate mmu ~seg_name:Segreg.DS ~offset:0x5000 ~size:4 ~write:true in
  Alcotest.(check int) "aliases" p1 p2;
  (* GS limit check *)
  check_fault "GS limit" (fun () ->
      ignore (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:64 ~size:1 ~write:false))

let test_mmu_limit_check_counter () =
  let _, _, mmu = make_mmu () in
  Mmu.load_segreg mmu Segreg.DS (Selector.make ~index:1 ~table:Selector.Gdt ~rpl:3);
  Mmu.map_range mmu ~linear:0 ~size:4096 ~writable:true;
  let before = Mmu.limit_checks mmu in
  ignore (Mmu.translate mmu ~seg_name:Segreg.DS ~offset:0 ~size:4 ~write:false : int);
  ignore (Mmu.translate mmu ~seg_name:Segreg.DS ~offset:8 ~size:4 ~write:false : int);
  Alcotest.(check int) "2 checks" (before + 2) (Mmu.limit_checks mmu)

let suite =
  [
    Alcotest.test_case "selector roundtrip" `Quick test_selector_roundtrip;
    Alcotest.test_case "selector null" `Quick test_selector_null;
    Alcotest.test_case "selector range" `Quick test_selector_range;
    Alcotest.test_case "selector paper gate" `Quick test_selector_paper_gate;
    Alcotest.test_case "descriptor roundtrip" `Quick test_descriptor_roundtrip;
    Alcotest.test_case "descriptor code roundtrip" `Quick test_descriptor_code_roundtrip;
    Alcotest.test_case "callgate roundtrip" `Quick test_callgate_roundtrip;
    Alcotest.test_case "effective limit" `Quick test_effective_limit;
    Alcotest.test_case "offset_ok" `Quick test_offset_ok;
    Alcotest.test_case "granularity slack (Fig 2)" `Quick test_granularity_bit_ignores_low_bits;
    Alcotest.test_case "descriptor invariants" `Quick test_descriptor_invariants;
    QCheck_alcotest.to_alcotest prop_descriptor_roundtrip;
    QCheck_alcotest.to_alcotest prop_limit_check_sound;
    Alcotest.test_case "table set/get" `Quick test_table_set_get;
    Alcotest.test_case "table gdt entry 0" `Quick test_table_gdt_entry0;
    Alcotest.test_case "table lookup empty" `Quick test_table_lookup_empty;
    Alcotest.test_case "table lookup !P" `Quick test_table_lookup_not_present;
    Alcotest.test_case "segreg null rules" `Quick test_segreg_null_rules;
    Alcotest.test_case "segreg translate" `Quick test_segreg_translate;
    Alcotest.test_case "segreg write protect" `Quick test_segreg_write_protect;
    Alcotest.test_case "descriptor cache" `Quick test_segreg_descriptor_cache;
    Alcotest.test_case "4GiB boundary limit check" `Quick
      test_limit_4gib_boundary;
    Alcotest.test_case "wrapped negative offset" `Quick
      test_limit_wrapped_negative_offset;
    Alcotest.test_case "linear wrap, end-aligned seg" `Quick
      test_linear_wrap_end_aligned;
    Alcotest.test_case "4GiB limit event mirror" `Quick
      test_mmu_limit_event_4gib;
    Alcotest.test_case "paging walk" `Quick test_paging_walk;
    Alcotest.test_case "paging unmap" `Quick test_paging_unmap;
    Alcotest.test_case "paging write protect" `Quick test_paging_write_protect;
    Alcotest.test_case "tlb" `Quick test_tlb;
    Alcotest.test_case "tlb write upgrade" `Quick test_tlb_write_upgrade;
    Alcotest.test_case "mmu end to end" `Quick test_mmu_end_to_end;
    Alcotest.test_case "mmu limit counter" `Quick test_mmu_limit_check_counter;
  ]
