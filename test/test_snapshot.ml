(* lib/snapshot: deterministic machine checkpoint/restore.

   The contract under test: a snapshot is byte-stable (same machine
   state → same bytes, so the digest is an equality oracle), restoring
   one rebuilds the complete machine — including the hidden segment
   register caches and the TLB generation counter — and a restored
   machine continued to completion is indistinguishable from one that
   was never interrupted, on any engine, including across engines. *)

let engines =
  [ ("predecoded", Machine.Cpu.Predecoded);
    ("block", Machine.Cpu.Block);
    ("reference", Machine.Cpu.Reference) ]

let matmul () = Core.compile Core.gcc (Workloads.Micro.matmul ~n:6 ())
let cash_matmul () = Core.compile Core.cash (Workloads.Micro.matmul ~n:6 ())

(* Step a freshly started machine [n] instructions, then to the next
   superblock boundary. *)
let warm_state ?engine compiled n =
  let state = Core.start ?engine compiled in
  let process = Core.state_process state in
  let cpu = Osim.Process.cpu process in
  let target = Machine.Cpu.insns_executed cpu + n in
  while
    (match Machine.Cpu.status cpu with
     | Machine.Cpu.Running -> true
     | _ -> false)
    && Machine.Cpu.insns_executed cpu < target
  do
    Machine.Cpu.step cpu
  done;
  ignore (Snapshot.align_to_block process);
  state

let test_save_is_byte_stable () =
  let state = warm_state (matmul ()) 2000 in
  let b1 = Buffer.contents (Core.save state) in
  let b2 = Buffer.contents (Core.save state) in
  Alcotest.(check bool) "same bytes" true (String.equal b1 b2)

let test_round_trip_every_engine () =
  List.iter
    (fun (name, engine) ->
      List.iter
        (fun compiled ->
          let state = warm_state ~engine compiled 2000 in
          let d1 = Core.state_digest state in
          let bytes = Buffer.to_bytes (Core.save state) in
          let restored = Core.restore ~engine compiled bytes in
          let d2 = Core.state_digest restored in
          Alcotest.(check string)
            (Printf.sprintf "round-trip digest (%s)" name)
            d1 d2)
        [ matmul (); cash_matmul () ])
    engines

let test_resume_equals_uninterrupted () =
  List.iter
    (fun (name, engine) ->
      List.iter
        (fun compiled ->
          let baseline = Core.run ~engine compiled in
          let state = warm_state ~engine compiled 2000 in
          let bytes = Buffer.to_bytes (Core.save state) in
          let resumed = Core.finish (Core.restore ~engine compiled bytes) in
          Alcotest.(check bool)
            (Printf.sprintf "status (%s)" name)
            true
            (baseline.Core.status = resumed.Core.status);
          Alcotest.(check int)
            (Printf.sprintf "cycles (%s)" name)
            baseline.Core.cycles resumed.Core.cycles;
          Alcotest.(check int)
            (Printf.sprintf "insns (%s)" name)
            baseline.Core.insns resumed.Core.insns;
          Alcotest.(check string)
            (Printf.sprintf "output (%s)" name)
            baseline.Core.output resumed.Core.output;
          Alcotest.(check string)
            (Printf.sprintf "final digest (%s)" name)
            (Core.state_digest (Core.state_of_run compiled baseline))
            (Core.state_digest (Core.state_of_run compiled resumed)))
        [ matmul (); cash_matmul () ])
    engines

(* The cross-engine resume oracle: snapshot under one engine, restore
   under another, continue — the result must equal an uninterrupted run
   on either engine. *)
let test_cross_engine_resume () =
  let compiled = cash_matmul () in
  let baseline = Core.run ~engine:Machine.Cpu.Reference compiled in
  List.iter
    (fun ((from_name, from_engine), (to_name, to_engine)) ->
      let state = warm_state ~engine:from_engine compiled 2000 in
      let bytes = Buffer.to_bytes (Core.save state) in
      let resumed =
        Core.finish (Core.restore ~engine:to_engine compiled bytes)
      in
      let label what =
        Printf.sprintf "%s (%s -> %s)" what from_name to_name
      in
      Alcotest.(check bool)
        (label "status") true
        (baseline.Core.status = resumed.Core.status);
      Alcotest.(check int) (label "cycles") baseline.Core.cycles
        resumed.Core.cycles;
      Alcotest.(check string) (label "output") baseline.Core.output
        resumed.Core.output)
    [
      (("block", Machine.Cpu.Block), ("reference", Machine.Cpu.Reference));
      (("reference", Machine.Cpu.Reference), ("block", Machine.Cpu.Block));
      (("predecoded", Machine.Cpu.Predecoded), ("block", Machine.Cpu.Block));
    ]

(* A mid-block checkpoint request steps forward to the next superblock
   boundary, by the same number of instructions on every attempt. *)
let test_mid_block_alignment_deterministic () =
  let compiled = matmul () in
  let mid_state () =
    let state = Core.start ~engine:Machine.Cpu.Block compiled in
    let cpu = Osim.Process.cpu (Core.state_process state) in
    (* An odd step count strands EIP mid-block more often than not. *)
    for _ = 1 to 1237 do
      if Machine.Cpu.status cpu = Machine.Cpu.Running then
        Machine.Cpu.step cpu
    done;
    state
  in
  let s1 = mid_state () and s2 = mid_state () in
  let steps1 = Snapshot.align_to_block (Core.state_process s1) in
  let steps2 = Snapshot.align_to_block (Core.state_process s2) in
  Alcotest.(check int) "same alignment distance" steps1 steps2;
  Alcotest.(check string) "same aligned state" (Core.state_digest s1)
    (Core.state_digest s2);
  (* And the post-alignment EIP really is a block boundary. *)
  let cpu = Osim.Process.cpu (Core.state_process s1) in
  let prog = Machine.Cpu.program cpu in
  Alcotest.(check bool) "EIP on block start" true
    (prog.Machine.Program.block_at.(Machine.Cpu.eip cpu) >= 0);
  Alcotest.(check int) "already aligned = 0 steps" 0
    (Snapshot.align_to_block (Core.state_process s1))

(* Block chains are a derived cache, not machine state: a snapshot
   taken while the block engine is running hot chained code carries no
   chain data (so the format needed no version bump), a restored
   machine starts with zero chains and re-derives them from its own
   branch-bias samples, and finishing under a never-chaining engine
   from the same bytes lands on the same digest. *)
let test_snapshot_mid_chain () =
  let compiled = cash_matmul () in
  let baseline = Core.run ~engine:Machine.Cpu.Reference compiled in
  let state = Core.start ~engine:Machine.Cpu.Block compiled in
  let process = Core.state_process state in
  let cpu = Osim.Process.cpu process in
  (* Run half the program with real (chain-building) dispatch, not
     single-stepping: the interrupted run must be inside chained
     execution when the snapshot is requested. *)
  (try ignore (Osim.Process.run ~fuel:(baseline.Core.insns / 2) process
                : Machine.Cpu.status)
   with Machine.Cpu.Out_of_fuel -> ());
  Alcotest.(check bool) "interrupted mid-run" true
    (Machine.Cpu.status cpu = Machine.Cpu.Running);
  Alcotest.(check bool) "chains are hot at the snapshot point" true
    (Machine.Cpu.chain_count cpu > 0);
  ignore (Snapshot.align_to_block process);
  let bytes = Buffer.to_bytes (Core.save state) in
  let restored = Core.restore ~engine:Machine.Cpu.Block compiled bytes in
  let rcpu = Osim.Process.cpu (Core.state_process restored) in
  Alcotest.(check int) "restored machine re-derives: zero chains on load" 0
    (Machine.Cpu.chain_count rcpu);
  let under_block = Core.finish restored in
  Alcotest.(check bool) "chains re-derived while finishing" true
    (Machine.Cpu.chain_count rcpu > 0);
  let under_predecode =
    Core.finish (Core.restore ~engine:Machine.Cpu.Predecoded compiled bytes)
  in
  Alcotest.(check string) "digest: chained finish = predecode finish"
    (Core.state_digest (Core.state_of_run compiled under_block))
    (Core.state_digest (Core.state_of_run compiled under_predecode));
  Alcotest.(check string) "digest: = uninterrupted reference run"
    (Core.state_digest (Core.state_of_run compiled baseline))
    (Core.state_digest (Core.state_of_run compiled under_block));
  Alcotest.(check int) "cycles" baseline.Core.cycles under_block.Core.cycles;
  Alcotest.(check string) "output" baseline.Core.output
    under_block.Core.output

(* The TLB generation counter and the hidden segment-register caches —
   including a cache that disagrees with the current LDT, the stale-
   selector property Cash's segment reuse relies on — must survive a
   round trip bit-exactly. *)
let test_tlb_gen_and_hidden_caches_survive () =
  let compiled = cash_matmul () in
  let state = warm_state compiled 4000 in
  let process = Core.state_process state in
  let mmu = Osim.Process.mmu process in
  (* Desync GS from the LDT: point it at a live descriptor, then
     rewrite that LDT slot. The hidden cache must keep the old view. *)
  let stale = Seghw.Descriptor.for_array ~base:0x5000 ~size_bytes:256
                ~writable:true in
  let fresh = Seghw.Descriptor.for_array ~base:0x9000 ~size_bytes:64
                ~writable:false in
  let index = 40 in
  Seghw.Descriptor_table.set (Seghw.Mmu.ldt mmu) index stale;
  let sel =
    Seghw.Selector.make ~index ~table:Seghw.Selector.Ldt ~rpl:3
  in
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.GS sel;
  Seghw.Descriptor_table.set (Seghw.Mmu.ldt mmu) index fresh;
  let tlb = Seghw.Mmu.tlb mmu in
  Alcotest.(check bool) "warm TLB has a generation" true
    (tlb.Seghw.Tlb.gen > 0);
  let bytes = Buffer.to_bytes (Core.save state) in
  let restored = Core.restore compiled bytes in
  let rmmu = Osim.Process.mmu (Core.state_process restored) in
  let rtlb = Seghw.Mmu.tlb rmmu in
  Alcotest.(check int) "TLB gen" tlb.Seghw.Tlb.gen rtlb.Seghw.Tlb.gen;
  Alcotest.(check int) "TLB hits" tlb.Seghw.Tlb.hits rtlb.Seghw.Tlb.hits;
  Alcotest.(check int) "TLB misses" tlb.Seghw.Tlb.misses
    rtlb.Seghw.Tlb.misses;
  let gs = Seghw.Mmu.seg rmmu Seghw.Segreg.GS in
  Alcotest.(check bool) "GS selector" true
    (Seghw.Selector.equal (Seghw.Segreg.selector gs) sel);
  (match Seghw.Segreg.cached_descriptor gs with
   | Some d ->
     Alcotest.(check bool) "GS hidden cache kept the stale descriptor"
       true
       (Seghw.Descriptor.equal d stale)
   | None -> Alcotest.fail "GS hidden cache lost");
  (* ... while the restored LDT carries the rewritten slot. *)
  (match Seghw.Descriptor_table.get (Seghw.Mmu.ldt rmmu) index with
   | Some d ->
     Alcotest.(check bool) "LDT slot is the fresh descriptor" true
       (Seghw.Descriptor.equal d fresh)
   | None -> Alcotest.fail "LDT slot lost")

(* Damaged images must fail with [Snapshot.Error], never any other
   exception, and never yield a machine silently. *)
let expect_snapshot_error what f =
  match f () with
  | _ -> Alcotest.fail (what ^ ": restore succeeded on damaged image")
  | exception Snapshot.Error _ -> ()
  | exception e ->
    Alcotest.fail
      (Printf.sprintf "%s: escaped with %s" what (Printexc.to_string e))

let test_truncated_fails_typed () =
  let compiled = matmul () in
  let state = warm_state compiled 2000 in
  let bytes = Buffer.to_bytes (Core.save state) in
  let len = Bytes.length bytes in
  (* Every prefix length down to the empty image, sampled densely. *)
  let cuts =
    [ 0; 1; 4; 7; 8; 15; 16; 31 ]
    @ List.init 16 (fun i -> (i + 1) * len / 17)
  in
  List.iter
    (fun cut ->
      if cut < len then
        expect_snapshot_error
          (Printf.sprintf "truncated at %d" cut)
          (fun () ->
            Core.restore compiled (Bytes.sub bytes 0 cut)))
    cuts

let test_corrupted_fails_typed () =
  let compiled = matmul () in
  let state = warm_state compiled 2000 in
  let bytes = Buffer.to_bytes (Core.save state) in
  let len = Bytes.length bytes in
  (* Flipping a byte either still parses to a machine (a flipped
     counter value is indistinguishable from a legitimate one) or
     raises [Snapshot.Error] — anything else is an escape. *)
  for i = 0 to 99 do
    let at = i * len / 100 in
    let copy = Bytes.copy bytes in
    Bytes.set copy at
      (Char.chr (Char.code (Bytes.get copy at) lxor 0xFF));
    match Core.restore compiled copy with
    | _ -> ()
    | exception Snapshot.Error _ -> ()
    | exception e ->
      Alcotest.fail
        (Printf.sprintf "flip at %d escaped with %s" at
           (Printexc.to_string e))
  done;
  (* Specific signatures. *)
  let flip at =
    let copy = Bytes.copy bytes in
    Bytes.set copy at
      (Char.chr (Char.code (Bytes.get copy at) lxor 0xFF));
    copy
  in
  (match Core.restore compiled (flip 0) with
   | _ -> Alcotest.fail "bad magic accepted"
   | exception Snapshot.Error Snapshot.Bad_magic -> ()
   | exception e ->
     Alcotest.fail ("bad magic: " ^ Printexc.to_string e));
  (match Core.restore compiled (flip 8) with
   | _ -> Alcotest.fail "bad version accepted"
   | exception Snapshot.Error (Snapshot.Bad_version _) -> ()
   | exception e ->
     Alcotest.fail ("bad version: " ^ Printexc.to_string e))

let test_wrong_program_rejected () =
  let compiled = matmul () in
  let other = Core.compile Core.gcc (Workloads.Micro.fft2d ~n:8 ()) in
  let state = warm_state compiled 2000 in
  let bytes = Buffer.to_bytes (Core.save state) in
  match Core.restore other bytes with
  | _ -> Alcotest.fail "mismatched program accepted"
  | exception Snapshot.Error Snapshot.Program_mismatch -> ()
  | exception e ->
    Alcotest.fail ("wrong program: " ^ Printexc.to_string e)

(* server_ready: the warm-start marker the Table 8 split snapshots at.
   It must fire exactly once per request-server init, leave the machine
   block-aligned, and cost the same under every backend (so warm-start
   reassembly stays byte-identical). *)
let test_run_to_marker () =
  List.iter
    (fun backend ->
      let compiled =
        Core.compile backend (Workloads.Netapps.qpopper ~messages:2 ())
      in
      let state = Core.start compiled in
      let process = Core.state_process state in
      Alcotest.(check bool) "marker fires" true
        (Snapshot.run_to_marker process);
      (* Post-marker EIP is a block start: Callext ends a superblock. *)
      let cpu = Osim.Process.cpu process in
      let prog = Machine.Cpu.program cpu in
      Alcotest.(check bool) "block-aligned at marker" true
        (prog.Machine.Program.block_at.(Machine.Cpu.eip cpu) >= 0);
      (* Resuming from the marker ends exactly like the unbroken run. *)
      let baseline = Core.run compiled in
      let bytes = Buffer.to_bytes (Core.save state) in
      let resumed = Core.finish (Core.restore compiled bytes) in
      Alcotest.(check int) "cycles" baseline.Core.cycles
        resumed.Core.cycles;
      Alcotest.(check string) "output" baseline.Core.output
        resumed.Core.output)
    [ Core.gcc; Core.bcc; Core.cash ]

(* Version-2 images carry the protection hardware of the MPX and
   capability backends: the warmed machine has live bounds registers,
   bound-table entries, and interned capabilities, and all of it must
   round-trip — digest-identical restore, and a resumed run
   indistinguishable from an uninterrupted one. *)
let test_protection_state_round_trips () =
  List.iter
    (fun backend ->
      let compiled = Core.compile backend (Workloads.Micro.matmul ~n:6 ()) in
      let name = Core.backend_name backend in
      let baseline = Core.run compiled in
      let state = warm_state compiled 2000 in
      let d1 = Core.state_digest state in
      let bytes = Buffer.to_bytes (Core.save state) in
      let restored = Core.restore compiled bytes in
      Alcotest.(check string)
        (name ^ ": restore digest-identical")
        d1 (Core.state_digest restored);
      let resumed = Core.finish restored in
      Alcotest.(check bool)
        (name ^ ": resumed status") true
        (baseline.Core.status = resumed.Core.status);
      Alcotest.(check int)
        (name ^ ": resumed cycles")
        baseline.Core.cycles resumed.Core.cycles;
      Alcotest.(check int)
        (name ^ ": resumed insns")
        baseline.Core.insns resumed.Core.insns;
      Alcotest.(check string)
        (name ^ ": resumed output")
        baseline.Core.output resumed.Core.output)
    [ Core.mpx; Core.cap ]

(* Back-compatibility: a version-1 image (no protection section) still
   restores under the version-2 reader, with the protection hardware
   zero-initialized. For a machine whose backend never touches that
   hardware, zero-initialized IS its true state — so re-saving the
   v1-restored machine must reproduce the fresh v2 image exactly. *)
let test_v1_image_restores_under_v2 () =
  let compiled = matmul () in
  let state = warm_state compiled 2000 in
  let process = Core.state_process state in
  let v1 = Buffer.to_bytes (Snapshot.save ~format_version:1 process) in
  let v2 = Buffer.to_bytes (Snapshot.save process) in
  Alcotest.(check bool) "v1 and v2 encodings differ" false
    (Bytes.equal v1 v2);
  let restored = Core.restore compiled v1 in
  Alcotest.(check string) "v1 restore re-saves as the fresh v2 image"
    (Snapshot.digest v2)
    (Core.state_digest restored);
  (* And the restored machine is live: it finishes like the original. *)
  let baseline = Core.run compiled in
  let resumed = Core.finish restored in
  Alcotest.(check int) "v1-restored run cycles" baseline.Core.cycles
    resumed.Core.cycles;
  Alcotest.(check string) "v1-restored run output" baseline.Core.output
    resumed.Core.output

(* A v1 image of an MPX machine loses the bound-table state by
   construction; restoring must still succeed (registers come back
   unbounded, so checks stay permissive) and run to completion. *)
let test_v1_image_of_mpx_machine_restores () =
  let compiled = Core.compile Core.mpx (Workloads.Micro.matmul ~n:6 ()) in
  let state = warm_state compiled 2000 in
  let v1 =
    Buffer.to_bytes
      (Snapshot.save ~format_version:1 (Core.state_process state))
  in
  let resumed = Core.finish (Core.restore compiled v1) in
  Alcotest.(check bool) "mpx machine restored from v1 finishes" true
    (resumed.Core.status = Core.Finished)

let suite =
  [
    Alcotest.test_case "save is byte-stable" `Quick test_save_is_byte_stable;
    Alcotest.test_case "round-trip digest-identical on every engine" `Quick
      test_round_trip_every_engine;
    Alcotest.test_case "resume equals uninterrupted run" `Quick
      test_resume_equals_uninterrupted;
    Alcotest.test_case "cross-engine resume oracle" `Quick
      test_cross_engine_resume;
    Alcotest.test_case "mid-block snapshot aligns deterministically" `Quick
      test_mid_block_alignment_deterministic;
    Alcotest.test_case "mid-chain snapshot: chains re-derived on restore"
      `Quick test_snapshot_mid_chain;
    Alcotest.test_case "TLB gen and hidden segreg caches survive" `Quick
      test_tlb_gen_and_hidden_caches_survive;
    Alcotest.test_case "truncated image fails with typed error" `Quick
      test_truncated_fails_typed;
    Alcotest.test_case "corrupted image fails with typed error" `Quick
      test_corrupted_fails_typed;
    Alcotest.test_case "mismatched program rejected" `Quick
      test_wrong_program_rejected;
    Alcotest.test_case "run_to_marker warm start" `Quick test_run_to_marker;
    Alcotest.test_case "protection hardware state round-trips (v2)" `Quick
      test_protection_state_round_trips;
    Alcotest.test_case "v1 image restores under the v2 reader" `Quick
      test_v1_image_restores_under_v2;
    Alcotest.test_case "v1 image of an MPX machine restores permissive"
      `Quick test_v1_image_of_mpx_machine_restores;
  ]
