(* The fuzzing subsystem itself: generator shape coverage, the honest
   known-miss classification, deterministic greedy shrinking, crash-dump
   plumbing (recursive directory creation), and the fleet runner's
   accounting. The 210-program differential fleet lives in
   test_differential.ml; these tests pin the machinery it runs on. *)

let render ~seed ~oob = Fuzz.Gen.render (Fuzz.Gen.generate ~seed ~oob)

(* --- generator ----------------------------------------------------------- *)

(* The generator must exercise BOTH sides of §3.8's checking policy:
   loop-shaped overruns (checked by cash) and straight-line overruns
   (cash's known miss). A generator that stopped emitting either would
   silently gut the honesty property. *)
let test_generator_emits_both_shapes () =
  let direct = ref 0 and loops = ref 0 in
  for seed = 0 to 199 do
    match (Fuzz.Gen.generate ~seed ~oob:true).Fuzz.Gen.oob with
    | None -> Alcotest.failf "seed %d: oob requested but not injected" seed
    | Some o ->
      if Fuzz.Gen.oob_is_direct (Some o) then incr direct else incr loops
  done;
  Alcotest.(check bool) "straight-line overruns generated" true (!direct > 20);
  Alcotest.(check bool) "loop overruns generated" true (!loops > 20)

(* Helper calls and aliased pointer walks must actually appear — the
   richer shapes this generator grew over the original fleet's. *)
let test_generator_emits_rich_shapes () =
  let has_helper = ref false and has_alias = ref false in
  for seed = 0 to 99 do
    let p = Fuzz.Gen.generate ~seed ~oob:false in
    List.iter
      (fun op ->
        match op with
        | Fuzz.Gen.Call1 _ | Fuzz.Gen.Call2 _ -> has_helper := true
        | Fuzz.Gen.Alias_mix _ -> has_alias := true
        | _ -> ())
      p.Fuzz.Gen.ops
  done;
  Alcotest.(check bool) "helper calls generated" true !has_helper;
  Alcotest.(check bool) "aliased walks generated" true !has_alias

(* A straight-line overrun is a Pass with the miss on the record, not a
   divergence: bcc catches it, cash runs through it, and the verdict
   says so. *)
let test_direct_oob_is_known_miss () =
  let prog =
    {
      Fuzz.Gen.arrays = [ { Fuzz.Gen.a_id = 0; size = 8 } ];
      helpers = [];
      ops = [ Fuzz.Gen.Fill { a = 0; mult = 3; add = 1 } ];
      oob =
        Some { Fuzz.Gen.shape = Fuzz.Gen.O_direct_store; o_arr = 0; past = 1 };
    }
  in
  (match Fuzz.Check.check ~seed:0 prog with
   | Fuzz.Check.Pass { known_miss } ->
     Alcotest.(check bool) "direct overrun is the known miss" true known_miss
   | Fuzz.Check.Fail f -> Alcotest.failf "direct overrun: %s" f.f_message);
  let loop =
    { prog with
      Fuzz.Gen.oob =
        Some { Fuzz.Gen.shape = Fuzz.Gen.O_loop_store; o_arr = 0; past = 1 };
    }
  in
  match Fuzz.Check.check ~seed:0 loop with
  | Fuzz.Check.Pass { known_miss } ->
    Alcotest.(check bool) "loop overrun is caught, no miss" false known_miss
  | Fuzz.Check.Fail f -> Alcotest.failf "loop overrun: %s" f.f_message

(* --- shrinking ----------------------------------------------------------- *)

(* Greedy descent under an always-failing predicate (the forced-failure
   drill's situation) must strip the program to near-nothing — and do it
   deterministically: same seed, byte-identical shrunk source. *)
let test_shrink_deterministic_and_minimal () =
  let seed = 3 in
  let prog = Fuzz.Gen.generate ~seed ~oob:false in
  let pred p = Fuzz.Check.failed (Fuzz.Check.check ~force_fail:true ~seed p) in
  let s1 = Fuzz.Gen.render (Fuzz.Shrink.minimize ~pred prog) in
  let s2 = Fuzz.Gen.render (Fuzz.Shrink.minimize ~pred prog) in
  Alcotest.(check string) "byte-identical across runs" s1 s2;
  Alcotest.(check bool) "the shrunk program still fails" true
    (pred (Fuzz.Shrink.minimize ~pred prog));
  let lines = List.length (String.split_on_char '\n' (String.trim s1)) in
  Alcotest.(check bool)
    (Printf.sprintf "minimal (%d lines <= 10)" lines)
    true (lines <= 10)

(* Shrinking preserves the failure it is minimizing, not just "some
   failure": under a structural predicate that keeps the overrun, every
   edit the shrinker makes leaves a valid failing program, and the
   fixpoint retains the overrun with everything droppable gone. *)
let test_shrink_keeps_predicate () =
  let prog = Fuzz.Gen.generate ~seed:17 ~oob:true in
  let pred (p : Fuzz.Gen.prog) = p.Fuzz.Gen.oob <> None in
  let small = Fuzz.Shrink.minimize ~pred prog in
  Alcotest.(check bool) "overrun retained" true (small.Fuzz.Gen.oob <> None);
  Alcotest.(check int) "all ops dropped" 0 (List.length small.Fuzz.Gen.ops);
  (match small.Fuzz.Gen.oob with
   | Some o -> Alcotest.(check int) "overrun distance pulled to 0" 0 o.Fuzz.Gen.past
   | None -> assert false);
  (* a passing program is returned untouched *)
  let untouched = Fuzz.Shrink.minimize ~pred:(fun _ -> false) prog in
  Alcotest.(check string) "no-fail input is untouched"
    (Fuzz.Gen.render prog) (Fuzz.Gen.render untouched)

(* Render-time clamping: shrinking an array can never turn an in-bounds
   program out of bounds — every candidate of an in-bounds program must
   still pass the differential property. *)
let test_shrink_candidates_stay_in_bounds () =
  let prog = Fuzz.Gen.generate ~seed:11 ~oob:false in
  List.iteri
    (fun i cand ->
      match Fuzz.Check.check ~seed:11 cand with
      | Fuzz.Check.Pass _ -> ()
      | Fuzz.Check.Fail f ->
        Alcotest.failf "candidate %d broke in-bounds-ness: %s\n%s" i
          f.f_message (Fuzz.Gen.render cand))
    (Fuzz.Shrink.candidates prog)

(* --- crash dumps --------------------------------------------------------- *)

let temp_root () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "cash_fuzz_test_%d" (Unix.getpid ()))
  in
  (* leftovers from a previous crashed run are fine; names below are
     unique per test *)
  dir

(* The satellite fix: a nested dump directory is created recursively
   instead of the dump failing silently on the missing parent. *)
let test_dump_creates_nested_dir () =
  let dir = Filename.concat (temp_root ()) "a/b/c" in
  let paths =
    Fuzz.Dump.dump_failure ~dir ~seed:42 ~what:"test" ~backend:Core.cash
      ~src:"int main() { return 0; }" None
  in
  Alcotest.(check bool) "directory chain created" true
    (Sys.file_exists dir && Sys.is_directory dir);
  Alcotest.(check (list string))
    "source + metadata written (no machine, no snapshot)"
    [ Filename.concat dir "seed_42.c"; Filename.concat dir "seed_42.txt" ]
    paths;
  List.iter
    (fun p -> Alcotest.(check bool) (p ^ " exists") true (Sys.file_exists p))
    paths

(* With a terminal machine attached, the dump adds a snapshot and the
   replay line in the metadata names it. *)
let test_dump_snapshot_replayable () =
  let dir = Filename.concat (temp_root ()) "snap" in
  let src = render ~seed:5 ~oob:false in
  let compiled = Core.compile Core.cash src in
  let r = Core.run compiled in
  let paths =
    Fuzz.Dump.dump_failure ~dir ~seed:5 ~suffix:".min" ~what:"test"
      ~backend:Core.cash ~src (Some (compiled, r))
  in
  let base = Filename.concat dir "seed_5.min" in
  Alcotest.(check (list string))
    "snapshot included"
    [ base ^ ".c"; base ^ ".snap"; base ^ ".txt" ]
    paths;
  (* the snapshot restores against the dumped source and replays the
     terminal state: same status, same output *)
  let bytes = Bytes.of_string (Core.read_file (base ^ ".snap")) in
  let replayed = Core.finish (Core.restore compiled bytes) in
  Alcotest.(check bool) "replayed status" true
    (replayed.Core.status = r.Core.status);
  Alcotest.(check string) "replayed output" r.Core.output replayed.Core.output;
  let meta = Core.read_file (base ^ ".txt") in
  Alcotest.(check bool) "replay line names the snapshot" true
    (let re = Str.regexp_string ("--replay " ^ base ^ ".snap") in
     try ignore (Str.search_forward re meta 0); true with Not_found -> false)

(* --- the fleet ----------------------------------------------------------- *)

(* A healthy fleet: everything passes, the injection cadence and the
   known-miss count are on the books, and -j1/-j2 agree on all of it. *)
let test_fleet_accounting () =
  let run jobs =
    Fuzz.Fleet.run
      { Fuzz.Fleet.default with
        count = 24; first_seed = 0; oob_every = 3; jobs = Some jobs;
        dump_dir = None;
      }
  in
  let s1 = run 1 and s2 = run 2 in
  Alcotest.(check int) "ran" 24 s1.Fuzz.Fleet.ran;
  Alcotest.(check int) "every 3rd injected" 8 s1.Fuzz.Fleet.oob_injected;
  Alcotest.(check bool) "no failures" true (s1.Fuzz.Fleet.failures = []);
  Alcotest.(check int) "known misses agree across -j" s1.Fuzz.Fleet.known_misses
    s2.Fuzz.Fleet.known_misses;
  Alcotest.(check int) "injection agrees across -j" s1.Fuzz.Fleet.oob_injected
    s2.Fuzz.Fleet.oob_injected;
  (* the check phase is timed on its own and sums worker time, so it is
     positive and (a run with no failures does no shrinking) close to —
     in particular never hugely above — the serial wall clock *)
  Alcotest.(check bool) "check phase timed" true
    (s1.Fuzz.Fleet.check_seconds > 0.
     && s1.Fuzz.Fleet.check_programs_per_sec > 0.);
  Alcotest.(check bool) "check time within serial wall clock + epsilon" true
    (s1.Fuzz.Fleet.check_seconds <= s1.Fuzz.Fleet.wall_seconds +. 0.05)

(* The forced-failure drill end to end, as CI runs it (via cashfuzz
   --force-fail): the seed fails, is shrunk to <= 10 lines, and both
   the original and the .min reproducer land with snapshots. *)
let test_fleet_forced_failure_drill () =
  let dir = Filename.concat (temp_root ()) "drill" in
  let stats =
    Fuzz.Fleet.run
      { Fuzz.Fleet.default with
        count = 4; first_seed = 0; oob_every = 0; jobs = Some 2;
        dump_dir = Some dir; force_fail = Some 2;
      }
  in
  match stats.Fuzz.Fleet.failures with
  | [ r ] ->
    Alcotest.(check int) "the forced seed" 2 r.Fuzz.Fleet.r_seed;
    let expect suffix =
      let p = Filename.concat dir (Printf.sprintf "seed_2%s" suffix) in
      Alcotest.(check bool) (p ^ " dumped") true (List.mem p r.r_artifacts);
      Alcotest.(check bool) (p ^ " exists") true (Sys.file_exists p)
    in
    List.iter expect [ ".c"; ".snap"; ".txt"; ".min.c"; ".min.snap"; ".min.txt" ];
    (match r.Fuzz.Fleet.r_min_src with
     | Some src ->
       let lines = List.length (String.split_on_char '\n' (String.trim src)) in
       Alcotest.(check bool)
         (Printf.sprintf "shrunk to %d lines <= 10" lines)
         true (lines <= 10)
     | None -> Alcotest.fail "no shrunk reproducer")
  | l -> Alcotest.failf "expected exactly the forced failure, got %d" (List.length l)

(* Plugin mode: the shipped checkers ride every cash run of the fleet
   and stay silent on a healthy sweep (including caught overruns, whose
   check-fault pairing they verify). *)
let test_fleet_plugins_clean () =
  let stats =
    Fuzz.Fleet.run
      { Fuzz.Fleet.default with
        count = 12; first_seed = 0; oob_every = 2; jobs = Some 2;
        dump_dir = None; plugins = true;
      }
  in
  Alcotest.(check bool) "no plugin violations across the sweep" true
    (stats.Fuzz.Fleet.failures = [])

let suite =
  [
    Alcotest.test_case "generator: both overrun shapes" `Quick
      test_generator_emits_both_shapes;
    Alcotest.test_case "generator: helpers + aliasing appear" `Quick
      test_generator_emits_rich_shapes;
    Alcotest.test_case "check: straight-line overrun is a known miss" `Quick
      test_direct_oob_is_known_miss;
    Alcotest.test_case "shrink: deterministic and minimal" `Quick
      test_shrink_deterministic_and_minimal;
    Alcotest.test_case "shrink: keeps the failing property" `Quick
      test_shrink_keeps_predicate;
    Alcotest.test_case "shrink: candidates stay in bounds" `Slow
      test_shrink_candidates_stay_in_bounds;
    Alcotest.test_case "dump: creates nested directories" `Quick
      test_dump_creates_nested_dir;
    Alcotest.test_case "dump: snapshot replays terminal state" `Quick
      test_dump_snapshot_replayable;
    Alcotest.test_case "fleet: accounting, -j1 = -j2" `Slow
      test_fleet_accounting;
    Alcotest.test_case "fleet: forced-failure drill shrinks + dumps" `Quick
      test_fleet_forced_failure_drill;
    Alcotest.test_case "fleet: shipped plugins silent" `Slow
      test_fleet_plugins_clean;
  ]
