(* The fast execution engines against their oracle.

   Both fast interpreters — the pre-decoded engine (pre-resolved branch
   targets, tabulated cycle costs, pre-interned stat counters,
   exception-free control flow) and the superblock engine layered on top
   of it (closure-compiled straight-line regions, per-segment TLB fast
   path) — must be observationally indistinguishable from the reference
   interpreter they replaced on the hot path: identical simulated
   cycles, instruction counts, limit-check counts, program output, stat
   counters, and final register/memory state — the
   bit-identical-reproduction invariant the benchmark tables depend on.

   Plus unit tests for the link-time lowering itself (branch-target
   pre-resolution, stat-label marking, link errors) and for the flattened
   segment-descriptor cache (invalidation on reload, null loads, LDTR
   switch semantics). *)

open Seghw

let check_fault name f =
  match f () with
  | exception Fault.Fault _ -> ()
  | _ -> Alcotest.failf "%s: expected a fault" name

(* --- engine equivalence ------------------------------------------------- *)

let status_str = function
  | Core.Finished -> "finished"
  | Core.Bound_violation m -> "bound_violation: " ^ m
  | Core.Crashed m -> "crashed: " ^ m

let regs_of (r : Core.run) = Machine.Cpu.regs (Osim.Process.cpu r.Core.process)
let mmu_of (r : Core.run) = Osim.Process.mmu r.Core.process
let phys_of (r : Core.run) = Osim.Process.phys r.Core.process

let all_gp =
  Machine.Registers.[ EAX; EBX; ECX; EDX; ESI; EDI; EBP; ESP ]

(* Run [compiled] under every fast engine and assert each observable
   equal to the reference oracle's. [Core.run] loads a fresh process
   each time, so the runs share nothing but the linked program. *)
let fast_engines =
  [ ("predecode", Machine.Cpu.Predecoded); ("block", Machine.Cpu.Block) ]

let check_equivalent name compiled =
  let slow = Core.run ~engine:Machine.Cpu.Reference compiled in
  List.iter (fun (ename, engine) ->
  let name = name ^ "[" ^ ename ^ "]" in
  let fast = Core.run ~engine compiled in
  Alcotest.(check string)
    (name ^ ": status")
    (status_str slow.Core.status)
    (status_str fast.Core.status);
  Alcotest.(check int) (name ^ ": cycles") slow.Core.cycles fast.Core.cycles;
  Alcotest.(check int) (name ^ ": insns") slow.Core.insns fast.Core.insns;
  Alcotest.(check string) (name ^ ": output") slow.Core.output fast.Core.output;
  Alcotest.(check int)
    (name ^ ": limit checks")
    (Mmu.limit_checks (mmu_of slow))
    (Mmu.limit_checks (mmu_of fast));
  Alcotest.(check int)
    (name ^ ": tlb hits")
    (Tlb.hits (Mmu.tlb (mmu_of slow)))
    (Tlb.hits (Mmu.tlb (mmu_of fast)));
  Alcotest.(check int)
    (name ^ ": tlb misses")
    (Tlb.misses (Mmu.tlb (mmu_of slow)))
    (Tlb.misses (Mmu.tlb (mmu_of fast)));
  Alcotest.(check (list (pair string int)))
    (name ^ ": stat counters")
    (Machine.Cpu.stats (Osim.Process.cpu slow.Core.process))
    (Machine.Cpu.stats (Osim.Process.cpu fast.Core.process));
  List.iter
    (fun r ->
      Alcotest.(check int)
        (name ^ ": " ^ Machine.Registers.reg_name r)
        (Machine.Registers.get (regs_of slow) r)
        (Machine.Registers.get (regs_of fast) r))
    all_gp;
  for i = 0 to 7 do
    let xmm = Machine.Registers.freg_of_int i in
    Alcotest.(check (float 0.0))
      (Printf.sprintf "%s: xmm%d" name i)
      (Machine.Registers.getf (regs_of slow) xmm)
      (Machine.Registers.getf (regs_of fast) xmm)
  done;
  let pf = phys_of fast and ps = phys_of slow in
  let hw_f = Machine.Phys_mem.high_water pf in
  let hw_s = Machine.Phys_mem.high_water ps in
  Alcotest.(check int) (name ^ ": high water") hw_s hw_f;
  for addr = 0 to hw_f - 1 do
    if Machine.Phys_mem.read8 pf addr <> Machine.Phys_mem.read8 ps addr then
      Alcotest.failf "%s: memory differs at physical 0x%x (%d vs %d)" name
        addr
        (Machine.Phys_mem.read8 pf addr)
        (Machine.Phys_mem.read8 ps addr)
  done)
    fast_engines

let check_equivalent_src name backend source =
  check_equivalent name (Core.compile backend source)

(* One representative per workload tier, each under the baseline compiler
   and under Cash (whose segment loads, LDT gates, and stat counters
   exercise every corner of the engine). Sizes are scaled down; coverage
   comes from shape, not volume. *)

let test_equiv_micro () =
  let src = Workloads.Micro.matmul ~n:8 () in
  check_equivalent_src "matmul/gcc" Core.gcc src;
  check_equivalent_src "matmul/cash" Core.cash src

let test_equiv_micro_float () =
  let src = Workloads.Micro.fft2d ~n:8 () in
  check_equivalent_src "fft2d/gcc" Core.gcc src;
  check_equivalent_src "fft2d/cash" Core.cash src

let test_equiv_macro () =
  let src = Workloads.Macro.cjpeg ~width:16 ~height:16 () in
  check_equivalent_src "cjpeg/cash" Core.cash src

let test_equiv_netapp () =
  let src = Workloads.Netapps.qpopper ~messages:2 ~msg_len:64 () in
  check_equivalent_src "qpopper/cash" Core.cash src

let test_equiv_bcc_and_fault () =
  (* The software-checked backend, and a program that faults: the faulting
     EIP and partial counts must agree too. *)
  check_equivalent_src "matmul/bcc" Core.bcc
    (Workloads.Micro.matmul ~n:6 ());
  let overrun = "int main() { int a[4]; int i; for (i = 0; i <= 4; i = i + 1) a[i] = i; return a[0]; }" in
  check_equivalent_src "overrun/cash" Core.cash overrun

(* --- tracing does not perturb execution ----------------------------------- *)

(* The tentpole invariant of the tracing subsystem, from both sides:

   - attaching a sink must not change ANY observable of a run (status,
     cycles, insns, output, limit-check/TLB totals, stat counters) —
     the traced run is bit-identical to the untraced one;
   - the event stream itself is engine-independent: the pre-decoded
     engine and the reference oracle, each run with its own sink, must
     produce identical event counters and identical per-function cycle
     attribution. *)

let check_run_identical name (a : Core.run) (b : Core.run) =
  Alcotest.(check string)
    (name ^ ": status") (status_str a.Core.status) (status_str b.Core.status);
  Alcotest.(check int) (name ^ ": cycles") a.Core.cycles b.Core.cycles;
  Alcotest.(check int) (name ^ ": insns") a.Core.insns b.Core.insns;
  Alcotest.(check string) (name ^ ": output") a.Core.output b.Core.output;
  Alcotest.(check int)
    (name ^ ": limit checks")
    (Mmu.limit_checks (mmu_of a))
    (Mmu.limit_checks (mmu_of b));
  Alcotest.(check int)
    (name ^ ": tlb hits")
    (Tlb.hits (Mmu.tlb (mmu_of a)))
    (Tlb.hits (Mmu.tlb (mmu_of b)));
  Alcotest.(check int)
    (name ^ ": tlb misses")
    (Tlb.misses (Mmu.tlb (mmu_of a)))
    (Tlb.misses (Mmu.tlb (mmu_of b)));
  Alcotest.(check (list (pair string int)))
    (name ^ ": stat counters")
    (Machine.Cpu.stats (Osim.Process.cpu a.Core.process))
    (Machine.Cpu.stats (Osim.Process.cpu b.Core.process))

let check_traced_equivalent name compiled =
  let untraced = Core.run compiled in
  let sink_fast = Trace.create () in
  let fast = Core.run ~trace:sink_fast compiled in
  check_run_identical (name ^ "/traced-vs-untraced") untraced fast;
  let sink_blk = Trace.create () in
  let blk = Core.run ~engine:Machine.Cpu.Block ~trace:sink_blk compiled in
  check_run_identical (name ^ "/traced-block") fast blk;
  let sink_ref = Trace.create () in
  let slow = Core.run ~engine:Machine.Cpu.Reference ~trace:sink_ref compiled in
  check_run_identical (name ^ "/traced-engines") fast slow;
  let attr (sym, insns, cycles) =
    Printf.sprintf "%s insns=%d cycles=%d" sym insns cycles
  in
  List.iter (fun (ename, sink) ->
      Alcotest.(check (list (pair string int)))
        (Printf.sprintf "%s: event counters, %s vs reference" name ename)
        (Trace.counters sink_ref) (Trace.counters sink);
      Alcotest.(check int)
        (Printf.sprintf "%s: total events, %s vs reference" name ename)
        (Trace.total_events sink_ref)
        (Trace.total_events sink);
      Alcotest.(check int)
        (Printf.sprintf "%s: reload-interval samples, %s vs reference" name
           ename)
        (Trace.Histogram.total (Trace.reload_interval sink_ref))
        (Trace.Histogram.total (Trace.reload_interval sink));
      Alcotest.(check (list string))
        (Printf.sprintf "%s: cycle attribution, %s vs reference" name ename)
        (List.map attr (Trace.attributions sink_ref))
        (List.map attr (Trace.attributions sink)))
    [ ("predecode", sink_fast); ("block", sink_blk) ]

let test_traced_equiv () =
  check_traced_equivalent "matmul/cash"
    (Core.compile Core.cash (Workloads.Micro.matmul ~n:8 ()));
  check_traced_equivalent "matmul/gcc"
    (Core.compile Core.gcc (Workloads.Micro.matmul ~n:8 ()));
  check_traced_equivalent "matmul/bcc"
    (Core.compile Core.bcc (Workloads.Micro.matmul ~n:6 ()))

let test_traced_equiv_faulting () =
  (* The faulting path too: partial event streams must agree, and the
     single fault event must appear under both engines. *)
  let overrun =
    "int main() { int a[4]; int i; for (i = 0; i <= 4; i = i + 1) a[i] = i; \
     return a[0]; }"
  in
  check_traced_equivalent "overrun/cash" (Core.compile Core.cash overrun);
  let sink = Trace.create () in
  ignore (Core.run ~trace:sink (Core.compile Core.cash overrun));
  Alcotest.(check int) "overrun: one #GP event" 1
    (Trace.count sink Trace.K_fault_gp)

(* --- link-time lowering -------------------------------------------------- *)

let test_targets_resolved () =
  let open Machine in
  let p =
    Program.link ~entry:"entry"
      [
        Insn.Label "entry";
        Insn.Jmp "end";
        Insn.Label "loop";
        Insn.Jcc (Insn.Eq, "loop");
        Insn.Call "fn";
        Insn.Label "end";
        Insn.Halt;
        Insn.Label "fn";
        Insn.Ret;
      ]
  in
  (* Every branch site carries the index [resolve] would compute; every
     other site carries the sentinel. *)
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Jmp l | Insn.Jcc (_, l) | Insn.Call l ->
        Alcotest.(check int)
          (Printf.sprintf "target of %d -> %s" i l)
          (Program.resolve p l)
          p.Program.targets.(i)
      | _ ->
        Alcotest.(check int)
          (Printf.sprintf "no target at %d" i)
          Program.no_target p.Program.targets.(i))
    p.Program.code;
  Alcotest.(check int) "entry index" (Program.resolve p "entry")
    p.Program.entry_index;
  Alcotest.(check bool) "entry in range" true
    (p.Program.entry_index >= 0
     && p.Program.entry_index < Array.length p.Program.code)

let test_stat_labels_marked () =
  let open Machine in
  let p =
    Program.link ~entry:"main"
      [ Insn.Label "main"; Insn.Label "__stat_swc_0"; Insn.Halt ]
  in
  Alcotest.(check bool) "plain label" false p.Program.stat_labels.(0);
  Alcotest.(check bool) "stat label" true p.Program.stat_labels.(1);
  Alcotest.(check bool) "non-label" false p.Program.stat_labels.(2);
  Alcotest.(check bool) "is_stat_label" true
    (Program.is_stat_label "__stat_iter_a_3");
  Alcotest.(check bool) "not stat" false (Program.is_stat_label "loop_head")

let test_link_undefined_target () =
  let open Machine in
  match Program.link ~entry:"main" [ Insn.Label "main"; Insn.Jmp "nowhere" ] with
  | exception Program.Link_error msg ->
    Alcotest.(check bool)
      (Printf.sprintf "mentions the label: %s" msg)
      true
      (try ignore (Str.search_forward (Str.regexp_string "nowhere") msg 0); true
       with Not_found -> false)
  | _ -> Alcotest.fail "linking an undefined jump target must fail"

let test_link_undefined_entry () =
  let open Machine in
  match Program.link ~entry:"absent" [ Insn.Label "main"; Insn.Halt ] with
  | exception Program.Link_error _ -> ()
  | _ -> Alcotest.fail "linking an undefined entry must fail"

(* --- flattened segment-descriptor cache ---------------------------------- *)

let data_seg ~limit =
  Descriptor.make ~base:0x5000 ~limit ~granularity:false ~dpl:3 ~present:true
    ~seg_type:(Descriptor.Data { writable = true })

let make_mmu () =
  let gdt = Descriptor_table.create Descriptor_table.Gdt_table in
  let ldt = Descriptor_table.create Descriptor_table.Ldt_table in
  Descriptor_table.set ldt 1 (data_seg ~limit:0xFF);
  let mmu = Mmu.create ~gdt ~ldt in
  Mmu.map_range mmu ~linear:0x5000 ~size:0x2000 ~writable:true;
  (ldt, mmu)

let gs_sel = Selector.make ~index:1 ~table:Selector.Ldt ~rpl:3

let test_flat_cache_reload () =
  let ldt, mmu = make_mmu () in
  Mmu.load_segreg mmu Segreg.GS gs_sel;
  ignore (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0x80 ~size:4 ~write:true);
  (* Shrink the descriptor and reload: the flattened mirror must pick up
     the new limit, not serve the stale fast-path copy. *)
  Descriptor_table.set ldt 1 (data_seg ~limit:0x0F);
  Mmu.load_segreg mmu Segreg.GS gs_sel;
  ignore (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0x0C ~size:4 ~write:true);
  check_fault "old limit rejected" (fun () ->
      ignore
        (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0x80 ~size:4
           ~write:false))

let test_flat_cache_null_load () =
  let _, mmu = make_mmu () in
  Mmu.load_segreg mmu Segreg.GS gs_sel;
  ignore (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0 ~size:1 ~write:false);
  Mmu.load_segreg mmu Segreg.GS Selector.null;
  check_fault "null GS faults on use" (fun () ->
      ignore
        (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0 ~size:1 ~write:false))

let test_flat_cache_ldt_switch () =
  (* set_ldt must NOT invalidate an already-loaded register (descriptor
     caches survive table switches, the property Cash's segment-reuse
     cache depends on) — but the next load resolves from the new table. *)
  let _, mmu = make_mmu () in
  Mmu.load_segreg mmu Segreg.GS gs_sel;
  let fresh = Descriptor_table.create Descriptor_table.Ldt_table in
  Descriptor_table.set fresh 1 (data_seg ~limit:0x07);
  Mmu.set_ldt mmu fresh;
  (* stale cache still in force: old limit, no fault *)
  ignore (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0x80 ~size:4 ~write:true);
  (* reload: now the new table's tighter limit applies *)
  Mmu.load_segreg mmu Segreg.GS gs_sel;
  ignore (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0x04 ~size:4 ~write:true);
  check_fault "new table's limit" (fun () ->
      ignore
        (Mmu.translate mmu ~seg_name:Segreg.GS ~offset:0x80 ~size:4
           ~write:false))

let suite =
  [
    Alcotest.test_case "equivalence: micro (matmul)" `Slow test_equiv_micro;
    Alcotest.test_case "equivalence: micro float (fft2d)" `Slow
      test_equiv_micro_float;
    Alcotest.test_case "equivalence: macro (cjpeg)" `Slow test_equiv_macro;
    Alcotest.test_case "equivalence: netapp (qpopper)" `Slow test_equiv_netapp;
    Alcotest.test_case "equivalence: bcc + faulting run" `Slow
      test_equiv_bcc_and_fault;
    Alcotest.test_case "tracing: bit-identical + engine-independent" `Slow
      test_traced_equiv;
    Alcotest.test_case "tracing: faulting run" `Slow
      test_traced_equiv_faulting;
    Alcotest.test_case "link: branch targets pre-resolved" `Quick
      test_targets_resolved;
    Alcotest.test_case "link: stat labels marked" `Quick test_stat_labels_marked;
    Alcotest.test_case "link: undefined target fails" `Quick
      test_link_undefined_target;
    Alcotest.test_case "link: undefined entry fails" `Quick
      test_link_undefined_entry;
    Alcotest.test_case "segreg: flat cache reload" `Quick test_flat_cache_reload;
    Alcotest.test_case "segreg: null load invalidates" `Quick
      test_flat_cache_null_load;
    Alcotest.test_case "segreg: LDT switch semantics" `Quick
      test_flat_cache_ldt_switch;
  ]
