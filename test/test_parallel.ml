(* The parallel harness: lib/parallel's pool discipline, and the
   serial-vs-parallel oracle — the whole point of running experiments on
   domains is that nobody can tell from the output that we did.

   The oracle regenerates the full reproduction (every table and figure,
   via the same Harness.Suite list bench/main.exe uses) at -j 1 and
   -j 4 and asserts the rendered reports are byte-identical and the
   per-job trace sinks merge to identical aggregates: counters,
   histograms, attribution, and event totals sum exactly. A separate
   case pins the merge against a single-sink serial run, where only the
   sums (not ring interleaving or cross-experiment reload intervals)
   are comparable. *)

(* --- pool discipline ---------------------------------------------------- *)

let test_result_ordering () =
  (* Results come back in job order whatever the completion order; skew
     the work so later jobs finish first under real parallelism. *)
  let tasks =
    Array.init 32 (fun i () ->
        let spin = (32 - i) * 10_000 in
        let acc = ref 0 in
        for k = 1 to spin do
          acc := (!acc + k) land 0xFFFF
        done;
        ignore !acc;
        i * i)
  in
  let out = Parallel.run_jobs ~jobs:4 tasks in
  Array.iteri
    (fun i v -> Alcotest.(check int) (Printf.sprintf "slot %d" i) (i * i) v)
    out

exception Boom of int

let test_exception_lowest_index () =
  (* Jobs 5 and 20 both fail; the re-raised failure must be job 5's,
     deterministically, like a serial run's. *)
  let tasks =
    Array.init 32 (fun i () ->
        if i = 5 || i = 20 then raise (Boom i) else i)
  in
  (match Parallel.run_jobs ~jobs:4 tasks with
   | _ -> Alcotest.fail "expected Boom"
   | exception Boom 5 -> ()
   | exception Boom n -> Alcotest.failf "re-raised job %d, wanted job 5" n)

let test_nested_stays_serial () =
  (* A run_jobs inside a worker must not fan out again (and a ~jobs:1
     run is serial all the way down); observed via Domain.self. *)
  let inner_domains () =
    Array.to_list
      (Parallel.run_jobs ~jobs:4
         (Array.init 4 (fun _ () -> (Domain.self () :> int))))
  in
  let nested =
    Parallel.run_jobs ~jobs:2 (Array.init 2 (fun _ () -> inner_domains ()))
  in
  Array.iter
    (fun ds ->
      match ds with
      | d :: rest ->
        List.iter
          (fun d' ->
            Alcotest.(check int) "nested jobs share their worker's domain" d d')
          rest
      | [] -> Alcotest.fail "no results")
    nested;
  let serial =
    Parallel.run_jobs ~jobs:1 (Array.init 2 (fun _ () -> inner_domains ()))
  in
  let self = (Domain.self () :> int) in
  Array.iter
    (List.iter
       (fun d -> Alcotest.(check int) "-j1 runs on the calling domain" self d))
    serial

let test_jobs_of_argv () =
  let check name expect argv =
    Alcotest.(check (option int)) name expect (Parallel.jobs_of_argv argv)
  in
  check "absent" None [| "bench"; "--trace" |];
  check "-j N" (Some 4) [| "bench"; "-j"; "4" |];
  check "-jN" (Some 8) [| "bench"; "-j8" |];
  check "--jobs=N" (Some 2) [| "bench"; "--jobs=2" |];
  check "last wins" (Some 3) [| "bench"; "-j"; "4"; "-j3" |];
  Alcotest.check_raises "malformed" (Failure
    "-j: expected a positive integer, got \"zero\"")
    (fun () -> ignore (Parallel.jobs_of_argv [| "-j"; "zero" |]));
  Alcotest.check_raises "non-positive" (Failure
    "-j: expected a positive integer, got \"0\"")
    (fun () -> ignore (Parallel.jobs_of_argv [| "-j0" |]))

(* --- trace sink merging -------------------------------------------------- *)

let test_merge_sums_exactly () =
  let mk () =
    let s = Trace.create ~capacity:8 () in
    Trace.emit s (Trace.Segreg_load { reg = "GS"; selector = 0xB });
    s
  in
  let a = mk () and b = mk () in
  for _ = 1 to 5 do
    Trace.emit a Trace.Tlb_hit
  done;
  for _ = 1 to 7 do
    Trace.emit b Trace.Tlb_hit
  done;
  Trace.add_attribution a "f" ~insns:10 ~cycles:30;
  Trace.add_attribution b "f" ~insns:1 ~cycles:3;
  Trace.violation a ~checker:"c" "first";
  Trace.violation b ~checker:"c" "second";
  let agg = Trace.create ~capacity:8 () in
  Trace.merge_into ~into:agg a;
  Trace.merge_into ~into:agg b;
  Alcotest.(check int) "tlb hits sum" 12 (Trace.count agg Trace.K_tlb_hit);
  Alcotest.(check int) "segreg loads sum" 2
    (Trace.count agg Trace.K_segreg_load);
  Alcotest.(check int) "totals sum" (Trace.total_events a + Trace.total_events b)
    (Trace.total_events agg);
  Alcotest.(check (list (pair string string))) "violations in merge order"
    [ ("c", "first"); ("c", "second") ]
    (Trace.violations agg);
  (match Trace.attributions agg with
   | [ ("f", insns, cycles) ] ->
     Alcotest.(check (pair int int)) "attribution sums" (11, 33) (insns, cycles)
   | other ->
     Alcotest.failf "unexpected attribution rows: %d" (List.length other))

(* --- the serial-vs-parallel oracle --------------------------------------- *)

let render reports =
  String.concat "\n"
    (List.map (Format.asprintf "%a" Harness.Report.pp) reports)

(* Full reproduction, the same Suite list bench/main.exe runs (table8
   scaled down to keep the suite's wall-clock in check — both sides of
   the comparison use the same scale, so the oracle is unweakened). *)
let test_full_reproduction_oracle () =
  let exps () = Harness.Suite.all ~table8_requests:10 () in
  let agg1 = Trace.create () in
  let r1 = Harness.Suite.run_all ~jobs:1 ~trace_into:agg1 (exps ()) in
  let agg4 = Trace.create () in
  let r4 = Harness.Suite.run_all ~jobs:4 ~trace_into:agg4 (exps ()) in
  Alcotest.(check string) "byte-identical tables" (render r1) (render r4);
  Alcotest.(check (list (pair string int))) "trace counters sum exactly"
    (Trace.counters agg1) (Trace.counters agg4);
  Alcotest.(check int) "event totals sum exactly" (Trace.total_events agg1)
    (Trace.total_events agg4);
  Alcotest.(check (list (pair int int))) "reload-interval histogram"
    (Trace.Histogram.buckets (Trace.reload_interval agg1))
    (Trace.Histogram.buckets (Trace.reload_interval agg4));
  let attr s =
    List.map (fun (sym, i, c) -> (sym, (i, c))) (Trace.attributions s)
  in
  Alcotest.(check (list (pair string (pair int int))))
    "cycle attribution sums exactly" (attr agg1) (attr agg4)

(* The superblock engine must reproduce the same tables as the
   predecoded engine, serial and fanned out — the engine identity and
   the -j identity in one comparison. Scaled like the oracle above. *)
let test_block_engine_oracle () =
  let exps () = Harness.Suite.all ~table8_requests:10 () in
  let base = render (Harness.Suite.run_all ~jobs:1 (exps ())) in
  let under_block jobs =
    let saved = Core.default_engine () in
    Core.set_default_engine Machine.Cpu.Block;
    Fun.protect
      ~finally:(fun () -> Core.set_default_engine saved)
      (fun () -> render (Harness.Suite.run_all ~jobs (exps ())))
  in
  Alcotest.(check string) "block -j1 = predecode -j1" base (under_block 1);
  Alcotest.(check string) "block -j4 = predecode -j1" base (under_block 4)

(* Against a single ambient sink shared by a strictly serial pass (the
   pre-parallel bench's tracing mode): the pure sums — counters,
   attribution — must match the merged per-job aggregate exactly. Ring
   interleaving and reload intervals that straddle experiment
   boundaries are the documented difference, so they are not compared.
   A fast three-experiment subset keeps this case cheap; the full-list
   identity is covered above. *)
let test_merged_matches_single_sink () =
  let subset all =
    List.filter
      (fun (ex : Harness.Suite.experiment) ->
        List.mem ex.Harness.Suite.name [ "table2"; "figure2"; "microcosts" ])
      all
  in
  let single = Trace.create () in
  Core.set_default_trace (Some single);
  Fun.protect
    ~finally:(fun () -> Core.set_default_trace None)
    (fun () ->
      List.iter
        (fun (ex : Harness.Suite.experiment) ->
          ignore (ex.Harness.Suite.run () : Harness.Report.t))
        (subset (Harness.Suite.all ())));
  let merged = Trace.create () in
  ignore
    (Harness.Suite.run_all ~jobs:3 ~trace_into:merged
       (subset (Harness.Suite.all ()))
      : Harness.Report.t list);
  Alcotest.(check (list (pair string int))) "counters sum exactly"
    (Trace.counters single) (Trace.counters merged);
  Alcotest.(check int) "event totals sum exactly" (Trace.total_events single)
    (Trace.total_events merged)

let suite =
  [
    Alcotest.test_case "result ordering" `Quick test_result_ordering;
    Alcotest.test_case "lowest-index failure wins" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "nested fan-out stays serial" `Quick
      test_nested_stays_serial;
    Alcotest.test_case "-j parsing" `Quick test_jobs_of_argv;
    Alcotest.test_case "sink merge sums exactly" `Quick test_merge_sums_exactly;
    Alcotest.test_case "full reproduction: -j1 = -j4 (oracle)" `Slow
      test_full_reproduction_oracle;
    Alcotest.test_case "block engine: -j1 and -j4 = predecode (oracle)" `Slow
      test_block_engine_oracle;
    Alcotest.test_case "merged sinks = single-sink sums" `Slow
      test_merged_matches_single_sink;
  ]
