(* Tests for the CPU, physical memory, cost model, and instruction
   encoding. Programs are hand-assembled and run on a minimal flat
   address space. *)

open Machine

let flat_env () =
  let gdt = Seghw.Descriptor_table.create Seghw.Descriptor_table.Gdt_table in
  let ldt = Seghw.Descriptor_table.create Seghw.Descriptor_table.Ldt_table in
  let flat ty =
    Seghw.Descriptor.make ~base:0 ~limit:0xFFFFF ~granularity:true ~dpl:3
      ~present:true ~seg_type:ty
  in
  Seghw.Descriptor_table.set gdt 1
    (flat (Seghw.Descriptor.Code { readable = true }));
  Seghw.Descriptor_table.set gdt 2
    (flat (Seghw.Descriptor.Data { writable = true }));
  let mmu = Seghw.Mmu.create ~gdt ~ldt in
  Seghw.Mmu.load_segreg mmu Seghw.Segreg.CS
    (Seghw.Selector.make ~index:1 ~table:Seghw.Selector.Gdt ~rpl:3);
  List.iter
    (fun r ->
      Seghw.Mmu.load_segreg mmu r
        (Seghw.Selector.make ~index:2 ~table:Seghw.Selector.Gdt ~rpl:3))
    [ Seghw.Segreg.SS; Seghw.Segreg.DS; Seghw.Segreg.ES ];
  Seghw.Mmu.map_range mmu ~linear:0 ~size:0x10000 ~writable:true;
  (mmu, ldt)

let run_insns ?(setup = fun _ -> ()) insns =
  let mmu, _ = flat_env () in
  let phys = Phys_mem.create () in
  let program = Program.link ~entry:"main" (Insn.Label "main" :: insns) in
  let cpu = Cpu.create ~mmu ~phys ~costs:Cost_model.pentium3 ~program () in
  Registers.set (Cpu.regs cpu) Registers.ESP 0x8000;
  setup cpu;
  let status = Cpu.run ~fuel:1_000_000 cpu in
  (cpu, status)

let eax cpu = Registers.get (Cpu.regs cpu) Registers.EAX
let reg = Insn.Reg Registers.EAX

let check_halted status =
  match status with
  | Cpu.Halted -> ()
  | Cpu.Faulted f -> Alcotest.failf "faulted: %s" (Seghw.Fault.to_string f)
  | Cpu.Running -> Alcotest.fail "still running"

(* --- registers ----------------------------------------------------------- *)

let test_registers_mask () =
  let r = Registers.create () in
  Registers.set r Registers.EAX (-1);
  Alcotest.(check int) "mask" 0xFFFFFFFF (Registers.get r Registers.EAX);
  Alcotest.(check int) "signed" (-1)
    (Registers.to_signed (Registers.get r Registers.EAX));
  Alcotest.(check int) "of_signed" 0xFFFFFFFE (Registers.of_signed (-2))

(* --- physical memory ------------------------------------------------------ *)

let test_phys_mem () =
  let m = Phys_mem.create ~initial:16 () in
  Phys_mem.write32 m 0x100 0xDEADBEEF; (* forces growth *)
  Alcotest.(check int) "read32" 0xDEADBEEF (Phys_mem.read32 m 0x100);
  Alcotest.(check int) "read8" 0xEF (Phys_mem.read8 m 0x100);
  Alcotest.(check int) "read16" 0xBEEF (Phys_mem.read16 m 0x100);
  Phys_mem.write_float m 0x200 3.5;
  Alcotest.(check (float 0.0)) "float" 3.5 (Phys_mem.read_float m 0x200);
  Phys_mem.write64 m 0x300 0x123456789ABCDEFL;
  Alcotest.(check int64) "i64" 0x123456789ABCDEFL (Phys_mem.read64 m 0x300);
  Alcotest.(check bool) "high water" true (Phys_mem.high_water m >= 0x308)

let test_phys_mem_unwritten_zero () =
  let m = Phys_mem.create ~initial:16 () in
  Alcotest.(check int) "zero" 0 (Phys_mem.read32 m 0x9999)

(* --- cost model: the paper's anchor numbers ------------------------------- *)

let test_cost_anchors () =
  let c = Cost_model.pentium3 in
  Alcotest.(check int) "seg load 4 cycles" 4
    (Cost_model.cost c (Insn.Mov_to_seg (Seghw.Segreg.GS, reg)));
  Alcotest.(check int) "bound 7 cycles" (7 + c.Cost_model.mem_access)
    (Cost_model.cost c (Insn.Bound (Registers.EAX, Insn.mem ())));
  Alcotest.(check int) "call gate 253" 253
    (Cost_model.cost c
       (Insn.Lcall_gate (Seghw.Selector.make ~index:0 ~table:Seghw.Selector.Ldt ~rpl:3)));
  Alcotest.(check int) "modify_ldt 781" 781
    (Cost_model.cost c (Insn.Int_syscall 0x80));
  Alcotest.(check int) "alu 1 cycle" 1
    (Cost_model.cost c (Insn.Alu (Insn.Add, reg, Insn.Imm 1)))

let test_bound_vs_equivalent () =
  (* §2: the bound instruction (7 cycles) is slower than the 6 equivalent
     1-cycle instructions *)
  let c = Cost_model.pentium3 in
  let bound = Cost_model.cost c (Insn.Bound (Registers.EAX, Insn.mem ())) in
  Alcotest.(check bool) "bound slower than 6 plain ops" true (bound > 6)

(* --- encoding sizes -------------------------------------------------------- *)

let test_encode_sizes () =
  Alcotest.(check int) "ret" 1 (Encode.size Insn.Ret);
  Alcotest.(check int) "push reg" 1 (Encode.size (Insn.Push reg));
  Alcotest.(check int) "label free" 0 (Encode.size (Insn.Label "x"));
  (* a segment override costs one prefix byte *)
  let plain = Encode.size (Insn.Mov (Insn.Long, reg,
    Insn.Mem (Insn.mem ~base:Registers.EDX ()))) in
  let over = Encode.size (Insn.Mov (Insn.Long, reg,
    Insn.Mem (Insn.mem ~seg:Seghw.Segreg.GS ~base:Registers.EDX ()))) in
  Alcotest.(check int) "override +1" (plain + 1) over;
  (* disp32 is 3 bytes bigger than disp8 *)
  let d8 = Encode.size (Insn.Mov (Insn.Long, reg,
    Insn.Mem (Insn.mem ~base:Registers.EDX ~disp:4 ()))) in
  let d32 = Encode.size (Insn.Mov (Insn.Long, reg,
    Insn.Mem (Insn.mem ~base:Registers.EDX ~disp:4096 ()))) in
  Alcotest.(check int) "disp32 +3" (d8 + 3) d32

(* --- CPU semantics ---------------------------------------------------------- *)

let test_mov_alu () =
  let cpu, st = run_insns Insn.[
    Mov (Long, reg, Imm 40);
    Alu (Add, reg, Imm 2);
    Halt ] in
  check_halted st;
  Alcotest.(check int) "42" 42 (eax cpu)

let test_memory_rw () =
  let cpu, st = run_insns Insn.[
    Mov (Long, Mem (Insn.mem ~disp:0x1000 ()), Imm 1234);
    Mov (Long, reg, Mem (Insn.mem ~disp:0x1000 ()));
    Halt ] in
  check_halted st;
  Alcotest.(check int) "roundtrip" 1234 (eax cpu)

let test_widths () =
  let cpu, st = run_insns Insn.[
    Mov (Long, Mem (Insn.mem ~disp:0x1000 ()), Imm 0x11223344);
    Mov (Byte, Mem (Insn.mem ~disp:0x1001 ()), Imm 0xFF);
    Movzx (Registers.EAX, Mem (Insn.mem ~disp:0x1000 ()), Word);
    Halt ] in
  check_halted st;
  Alcotest.(check int) "byte patch + word read" 0xFF44 (eax cpu)

let test_movsx () =
  let cpu, st = run_insns Insn.[
    Mov (Byte, Mem (Insn.mem ~disp:0x1000 ()), Imm 0x80);
    Movsx (Registers.EAX, Mem (Insn.mem ~disp:0x1000 ()), Byte);
    Halt ] in
  check_halted st;
  Alcotest.(check int) "sign extend" 0xFFFFFF80 (eax cpu)

let test_signed_division () =
  let cpu, st = run_insns Insn.[
    Mov (Long, reg, Imm (-7));
    Mov (Long, Reg Registers.ECX, Imm 2);
    Idiv (Reg Registers.ECX);
    Halt ] in
  check_halted st;
  Alcotest.(check int) "-7/2 = -3 (truncating)" (-3)
    (Registers.to_signed (eax cpu));
  Alcotest.(check int) "rem -1" (-1)
    (Registers.to_signed (Registers.get (Cpu.regs cpu) Registers.EDX))

let test_div_by_zero_faults () =
  let _, st = run_insns Insn.[
    Mov (Long, reg, Imm 1);
    Mov (Long, Reg Registers.ECX, Imm 0);
    Idiv (Reg Registers.ECX);
    Halt ] in
  match st with
  | Cpu.Faulted (Seghw.Fault.Invalid_opcode _) -> ()
  | _ -> Alcotest.fail "expected #UD"

let test_flags_and_jcc () =
  (* signed comparison across the wrap boundary: -1 < 1 *)
  let cpu, st = run_insns Insn.[
    Mov (Long, reg, Imm (-1));
    Cmp (reg, Imm 1);
    Jcc (Lt, "less");
    Mov (Long, reg, Imm 0);
    Halt;
    Label "less";
    Mov (Long, reg, Imm 99);
    Halt ] in
  check_halted st;
  Alcotest.(check int) "signed lt" 99 (eax cpu)

let test_unsigned_jcc () =
  (* unsigned: 0xFFFFFFFF is above 1 *)
  let cpu, st = run_insns Insn.[
    Mov (Long, reg, Imm (-1));
    Cmp (reg, Imm 1);
    Jcc (Above, "above");
    Mov (Long, reg, Imm 0);
    Halt;
    Label "above";
    Mov (Long, reg, Imm 1);
    Halt ] in
  check_halted st;
  Alcotest.(check int) "unsigned above" 1 (eax cpu)

let test_push_pop_call_ret () =
  let cpu, st = run_insns Insn.[
    Mov (Long, reg, Imm 5);
    Push reg;
    Call "double_it";
    Alu (Add, Reg Registers.ESP, Imm 4);
    Halt;
    Label "double_it";
    Mov (Long, reg, Mem (Insn.mem ~base:Registers.ESP ~disp:4 ()));
    Alu (Add, reg, reg);
    Ret ] in
  check_halted st;
  Alcotest.(check int) "call result" 10 (eax cpu)

let test_fp () =
  let cpu, st = run_insns Insn.[
    Fload_const (Registers.XMM0, 1.5);
    Fload_const (Registers.XMM1, 2.0);
    Falu (Fmul, Registers.XMM0, Freg Registers.XMM1);
    Cvtsd2si (Registers.EAX, Freg Registers.XMM0);
    Halt ] in
  check_halted st;
  Alcotest.(check int) "3" 3 (eax cpu)

let test_fp_compare () =
  let cpu, st = run_insns Insn.[
    Fload_const (Registers.XMM0, 1.0);
    Fload_const (Registers.XMM1, 2.0);
    Fcmp (Registers.XMM0, Freg Registers.XMM1);
    Setcc (Below, Registers.EAX);
    Halt ] in
  check_halted st;
  Alcotest.(check int) "1 < 2" 1 (eax cpu)

let test_bound_instruction () =
  (* in-range passes, out-of-range raises #BR *)
  let _, st = run_insns Insn.[
    Mov (Long, Mem (Insn.mem ~disp:0x1000 ()), Imm 0);
    Mov (Long, Mem (Insn.mem ~disp:0x1004 ()), Imm 9);
    Mov (Long, reg, Imm 5);
    Bound (Registers.EAX, Insn.mem ~disp:0x1000 ());
    Mov (Long, reg, Imm 10);
    Bound (Registers.EAX, Insn.mem ~disp:0x1000 ());
    Halt ] in
  match st with
  | Cpu.Faulted (Seghw.Fault.Bound_range _) -> ()
  | _ -> Alcotest.fail "expected #BR"

let test_stat_labels () =
  let cpu, st = run_insns Insn.[
    Mov (Long, Reg Registers.ECX, Imm 5);
    Label "loop";
    Label "__stat_iter_test";
    Alu (Sub, Reg Registers.ECX, Imm 1);
    Cmp (Reg Registers.ECX, Imm 0);
    Jcc (Gt, "loop");
    Halt ] in
  check_halted st;
  Alcotest.(check int) "counted" 5 (Cpu.stat cpu "__stat_iter_test")

let test_stat_labels_free () =
  let cpu, _ = run_insns Insn.[ Label "__stat_x"; Halt ] in
  Alcotest.(check int) "0 cycles" 0 (Cpu.cycles cpu)

let test_fuel () =
  match run_insns Insn.[ Label "spin"; Jmp "spin" ] with
  | exception Cpu.Out_of_fuel -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_cycle_accounting () =
  let cpu, st = run_insns Insn.[
    Mov (Long, reg, Imm 1);       (* 1 *)
    Alu (Add, reg, Imm 1);        (* 1 *)
    Mov_to_seg (Seghw.Segreg.ES,
      Insn.Reg Registers.EBX);    (* needs valid selector in EBX *)
    Halt ]
    ~setup:(fun cpu ->
      Registers.set (Cpu.regs cpu) Registers.EBX
        (Seghw.Selector.to_int
           (Seghw.Selector.make ~index:2 ~table:Seghw.Selector.Gdt ~rpl:3)))
  in
  check_halted st;
  Alcotest.(check int) "1+1+4" 6 (Cpu.cycles cpu)

let test_program_link_errors () =
  (match Program.link ~entry:"main" Insn.[ Label "main"; Jmp "nowhere" ] with
   | exception Program.Link_error _ -> ()
   | _ -> Alcotest.fail "expected link error");
  match Program.link ~entry:"main" Insn.[ Label "main"; Label "main" ] with
  | exception Program.Link_error _ -> ()
  | _ -> Alcotest.fail "expected duplicate label error"

(* property: 32-bit wrap-around arithmetic on the CPU agrees with masked
   host arithmetic *)
let prop_add_wraps =
  QCheck.Test.make ~count:300 ~name:"cpu add is 32-bit modular"
    QCheck.(pair (int_bound 0xFFFFFFFF) (int_bound 0xFFFFFFFF))
    (fun (a, b) ->
      let cpu, st = run_insns Insn.[
        Mov (Long, Insn.Reg Registers.EAX, Imm a);
        Alu (Add, Insn.Reg Registers.EAX, Imm b);
        Halt ] in
      st = Cpu.Halted && eax cpu = (a + b) land 0xFFFFFFFF)

let suite =
  [
    Alcotest.test_case "registers mask" `Quick test_registers_mask;
    Alcotest.test_case "phys mem" `Quick test_phys_mem;
    Alcotest.test_case "phys mem zero" `Quick test_phys_mem_unwritten_zero;
    Alcotest.test_case "cost anchors (paper)" `Quick test_cost_anchors;
    Alcotest.test_case "bound vs 6 insns" `Quick test_bound_vs_equivalent;
    Alcotest.test_case "encode sizes" `Quick test_encode_sizes;
    Alcotest.test_case "mov/alu" `Quick test_mov_alu;
    Alcotest.test_case "memory rw" `Quick test_memory_rw;
    Alcotest.test_case "widths" `Quick test_widths;
    Alcotest.test_case "movsx" `Quick test_movsx;
    Alcotest.test_case "signed division" `Quick test_signed_division;
    Alcotest.test_case "div by zero" `Quick test_div_by_zero_faults;
    Alcotest.test_case "flags/jcc signed" `Quick test_flags_and_jcc;
    Alcotest.test_case "jcc unsigned" `Quick test_unsigned_jcc;
    Alcotest.test_case "push/pop/call/ret" `Quick test_push_pop_call_ret;
    Alcotest.test_case "fp" `Quick test_fp;
    Alcotest.test_case "fp compare" `Quick test_fp_compare;
    Alcotest.test_case "bound instruction" `Quick test_bound_instruction;
    Alcotest.test_case "stat labels" `Quick test_stat_labels;
    Alcotest.test_case "stat labels free" `Quick test_stat_labels_free;
    Alcotest.test_case "fuel" `Quick test_fuel;
    Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
    Alcotest.test_case "link errors" `Quick test_program_link_errors;
    QCheck_alcotest.to_alcotest prop_add_wraps;
  ]
