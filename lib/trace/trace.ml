(* Structured tracing and metrics for the simulator.

   Checkbochs (Usenix '04) showed the value of a machine simulator that
   exposes hardware-level events to pluggable checkers; this module is
   that layer for the Cash simulator. The hardware (lib/seghw), the CPU
   (lib/machine), and the OS (lib/osim) each hold a [sink option] and
   emit typed events when one is attached; the sink maintains per-kind
   counters, a bounded ring of recent events, inline invariant checkers,
   and the per-function cycle attribution the profiler merges in after a
   run.

   Overhead policy: the traced-off cost is one load-and-branch per
   would-be event at each emitting site (no event is even constructed),
   so the hot path stays within noise of the untraced engine. The traced
   cost is one allocation + counter bump + ring store per event. Tracing
   never changes simulated semantics — cycles, stat counters, memory and
   table output are bit-identical either way; test/test_predecode.ml
   pins this. *)

type ldt_path = Slow_syscall | Call_gate

type event =
  | Segreg_load of { reg : string; selector : int }
  | Limit_check of {
      seg : string;
      base : int;
      offset : int;
      size : int;
      write : bool;
      ok : bool;
    }
  | Fault of {
      cls : [ `Gp | `Ss | `Pf | `Np | `Ud | `Br ];
      detail : string;
      address : int option;
      selector : int option;
    }
  | Tlb_hit
  | Tlb_miss of { page : int; evicted : bool }
  | Ldt_update of { path : ldt_path; index : int; cleared : bool }
  | Call_gate_entry of { selector : int }
  | Context_switch of { pid : int }
  | Btable_load of { key : int; hit : bool }
  | Cap_tag_clear of { value : int; lower : int; upper : int }

type kind =
  | K_segreg_load
  | K_limit_check_pass
  | K_limit_check_fail
  | K_fault_gp
  | K_fault_ss
  | K_fault_pf
  | K_fault_np
  | K_fault_ud
  | K_fault_br
  | K_tlb_hit
  | K_tlb_miss
  | K_tlb_evict
  | K_modify_ldt
  | K_cash_modify_ldt
  | K_call_gate_entry
  | K_context_switch
  | K_btable_hit
  | K_btable_miss
  | K_cap_tag_clear

let kind_index = function
  | K_segreg_load -> 0
  | K_limit_check_pass -> 1
  | K_limit_check_fail -> 2
  | K_fault_gp -> 3
  | K_fault_ss -> 4
  | K_fault_pf -> 5
  | K_fault_np -> 6
  | K_fault_ud -> 7
  | K_fault_br -> 8
  | K_tlb_hit -> 9
  | K_tlb_miss -> 10
  | K_tlb_evict -> 11
  | K_modify_ldt -> 12
  | K_cash_modify_ldt -> 13
  | K_call_gate_entry -> 14
  | K_context_switch -> 15
  | K_btable_hit -> 16
  | K_btable_miss -> 17
  | K_cap_tag_clear -> 18

let num_kinds = 19

let all_kinds =
  [
    K_segreg_load; K_limit_check_pass; K_limit_check_fail; K_fault_gp;
    K_fault_ss; K_fault_pf; K_fault_np; K_fault_ud; K_fault_br; K_tlb_hit;
    K_tlb_miss; K_tlb_evict; K_modify_ldt; K_cash_modify_ldt;
    K_call_gate_entry; K_context_switch; K_btable_hit; K_btable_miss;
    K_cap_tag_clear;
  ]

let kind_name = function
  | K_segreg_load -> "segreg.load"
  | K_limit_check_pass -> "limit_check.pass"
  | K_limit_check_fail -> "limit_check.fail"
  | K_fault_gp -> "fault.gp"
  | K_fault_ss -> "fault.ss"
  | K_fault_pf -> "fault.pf"
  | K_fault_np -> "fault.np"
  | K_fault_ud -> "fault.ud"
  | K_fault_br -> "fault.br"
  | K_tlb_hit -> "tlb.hit"
  | K_tlb_miss -> "tlb.miss"
  | K_tlb_evict -> "tlb.evict"
  | K_modify_ldt -> "ldt.modify_ldt"
  | K_cash_modify_ldt -> "ldt.cash_modify_ldt"
  | K_call_gate_entry -> "ldt.call_gate_entry"
  | K_context_switch -> "sched.context_switch"
  | K_btable_hit -> "btable.hit"
  | K_btable_miss -> "btable.miss"
  | K_cap_tag_clear -> "cap.tag_clear"

let kind_of_event = function
  | Segreg_load _ -> K_segreg_load
  | Limit_check { ok; _ } -> if ok then K_limit_check_pass else K_limit_check_fail
  | Fault { cls; _ } ->
    (match cls with
     | `Gp -> K_fault_gp
     | `Ss -> K_fault_ss
     | `Pf -> K_fault_pf
     | `Np -> K_fault_np
     | `Ud -> K_fault_ud
     | `Br -> K_fault_br)
  | Tlb_hit -> K_tlb_hit
  | Tlb_miss _ -> K_tlb_miss
  | Ldt_update { path = Slow_syscall; _ } -> K_modify_ldt
  | Ldt_update { path = Call_gate; _ } -> K_cash_modify_ldt
  | Call_gate_entry _ -> K_call_gate_entry
  | Context_switch _ -> K_context_switch
  | Btable_load { hit; _ } -> if hit then K_btable_hit else K_btable_miss
  | Cap_tag_clear _ -> K_cap_tag_clear

(* --- histograms --------------------------------------------------------- *)

module Histogram = struct
  (* Power-of-two buckets: bucket 0 counts v <= 0, bucket i counts
     2^(i-1) <= v < 2^i. 63 buckets cover the whole int range. *)
  type t = { counts : int array; mutable total : int }

  let nbuckets = 63

  let create () = { counts = Array.make nbuckets 0; total = 0 }

  let bucket_of v =
    if v <= 0 then 0
    else
      let rec go i v = if v = 0 then i else go (i + 1) (v lsr 1) in
      min (nbuckets - 1) (go 0 v)

  let add t v =
    t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
    t.total <- t.total + 1

  let total t = t.total

  (* Pointwise sum, for aggregating per-job sinks after a parallel run:
     bucket boundaries are fixed, so merging histograms is exact. *)
  let merge_into ~into src =
    for i = 0 to nbuckets - 1 do
      into.counts.(i) <- into.counts.(i) + src.counts.(i)
    done;
    into.total <- into.total + src.total

  let lower_bound i = if i = 0 then 0 else 1 lsl (i - 1)

  let buckets t =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.counts.(i) > 0 then acc := (lower_bound i, t.counts.(i)) :: !acc
    done;
    !acc
end

(* --- JSON values: defined before the sink so plugin specs can
   reference [Json.t] in their report signatures ------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let b = Buffer.create (String.length s + 2) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\r' -> Buffer.add_string b "\\r"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b

  let rec write b = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string b (Printf.sprintf "%.1f" f)
      else Buffer.add_string b (Printf.sprintf "%.6g" f)
    | Str s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape s);
      Buffer.add_char b '"'
    | List vs ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          write b v)
        vs;
      Buffer.add_char b ']'
    | Obj kvs ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          write b (Str k);
          Buffer.add_char b ':';
          write b v)
        kvs;
      Buffer.add_char b '}'

  let to_string v =
    let b = Buffer.create 256 in
    write b v;
    Buffer.contents b

  (* --- parsing: the inverse, for reading records back ------------------ *)

  exception Parse_error of string

  (* Recursive-descent RFC 8259 parser, sufficient for everything
     [write] emits (and standard JSON generally): the BENCH_<n>.json
     perf records that `bench --compare` reads back. Numbers parse to
     [Int] when they are integral int-syntax literals and [Float]
     otherwise. *)
  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at byte %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let skip_ws () =
      while
        !pos < n
        && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      if !pos + String.length word <= n
         && String.sub s !pos (String.length word) = word
      then begin
        pos := !pos + String.length word;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let hex4 () =
      if !pos + 4 > n then fail "truncated \\u escape";
      let v = int_of_string_opt ("0x" ^ String.sub s !pos 4) in
      pos := !pos + 4;
      match v with Some v -> v | None -> fail "bad \\u escape"
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance (); Buffer.contents b
          | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                 advance ();
                 let cp = hex4 () in
                 (* UTF-8 encode; [escape] only ever emits control
                    characters this way, but accept the full BMP. *)
                 if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                 else if cp < 0x800 then begin
                   Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                   Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                 end
                 else begin
                   Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                   Buffer.add_char b
                     (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                   Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                 end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
          | c when Char.code c < 0x20 -> fail "raw control character in string"
          | c -> Buffer.add_char b c; advance (); go ()
      in
      go ()
    in
    let parse_number () =
      let start = !pos in
      let is_float = ref false in
      if peek () = Some '-' then advance ();
      while
        !pos < n
        &&
        match s.[!pos] with
        | '0' .. '9' -> true
        | '.' | 'e' | 'E' | '+' | '-' -> is_float := true; true
        | _ -> false
      do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      if !is_float then
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text)
      else
        match int_of_string_opt text with
        | Some i -> Int i
        | None -> (
          (* out of int range: fall back to float *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" text))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          elements []
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
    in
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v

  (* Typed accessors over parsed records; [None] on shape mismatch. *)
  let member k = function
    | Obj kvs -> List.assoc_opt k kvs
    | _ -> None

  let to_float_opt = function
    | Float f -> Some f
    | Int i -> Some (float_of_int i)
    | _ -> None

  let to_int_opt = function Int i -> Some i | _ -> None
  let to_string_opt = function Str s -> Some s | _ -> None
end

(* --- the sink and the plugin layer --------------------------------------- *)

(* Per-plugin state is heterogeneous: each plugin module extends this
   open type with its own constructor and pattern-matches it back out
   in its callbacks (the idiomatic OCaml rendering of Checkbochs'
   per-plugin void pointer). *)
type plugin_state = ..

type sink = {
  counters : int array;           (* indexed by kind_index *)
  ring : event option array;      (* circular buffer of recent events *)
  capacity : int;
  mutable head : int;             (* next write position *)
  mutable total : int;            (* events emitted, ever *)
  mutable checkers : (string * (event -> unit)) list;
  mutable violation_log : (string * string) list; (* newest first *)
  reload_interval : Histogram.t;
  mutable checks_at_last_reload : int;
  (* (symbol -> insns, cycles), merged in by the profiler *)
  attribution : (string, int ref * int ref) Hashtbl.t;
  (* (Jcc site -> taken, fall-through retires), merged in by the block
     engine's chaining machinery — the statistics its chain-layout
     decisions were made from, exported for offline inspection *)
  branch_bias : (int, int ref * int ref) Hashtbl.t;
  (* instantiated plugins, in attach order; fed by [emit] after the
     inline checkers *)
  mutable plugins : plugin_instance list;
}

and plugin_instance = {
  i_spec : plugin_spec;
  mutable i_state : plugin_state;
  mutable i_finished : bool;
}

and plugin_spec = {
  p_name : string;
  p_doc : string;
  p_init : unit -> plugin_state;
  p_on_event : sink -> plugin_state -> event -> unit;
  p_at_finish : sink -> plugin_state -> unit;
  p_merge : into:plugin_state -> plugin_state -> unit;
  p_to_json : plugin_state -> Json.t;
}

module Plugin = struct
  type spec = plugin_spec = {
    p_name : string;
    p_doc : string;
    p_init : unit -> plugin_state;
    p_on_event : sink -> plugin_state -> event -> unit;
    p_at_finish : sink -> plugin_state -> unit;
    p_merge : into:plugin_state -> plugin_state -> unit;
    p_to_json : plugin_state -> Json.t;
  }

  (* The global registry: CLIs resolve --check=<name> against it. An
     atomic snapshot list, so registration from any domain is safe;
     re-registering a name replaces the old spec (latest wins). *)
  let registry : spec list Atomic.t = Atomic.make []

  let rec register spec =
    let old = Atomic.get registry in
    let cleaned = List.filter (fun s -> s.p_name <> spec.p_name) old in
    if not (Atomic.compare_and_set registry old (cleaned @ [ spec ])) then
      register spec

  let find name =
    List.find_opt (fun s -> s.p_name = name) (Atomic.get registry)

  let registered () =
    List.sort
      (fun a b -> String.compare a.p_name b.p_name)
      (Atomic.get registry)
end

(* Plugins attached to every subsequently created sink — how a parallel
   harness whose workers create their own sinks (lib/harness/suite.ml)
   gets the same plugin set on each of them without threading a list
   through every layer. Process-wide; set it before fanning out. *)
let auto_plugins : plugin_spec list Atomic.t = Atomic.make []
let set_auto_plugins specs = Atomic.set auto_plugins specs

let attach t (spec : plugin_spec) =
  if List.exists (fun i -> i.i_spec.p_name = spec.p_name) t.plugins then
    invalid_arg ("Trace.attach: plugin already attached: " ^ spec.p_name);
  t.plugins <-
    t.plugins @ [ { i_spec = spec; i_state = spec.p_init (); i_finished = false } ]

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  let t =
    {
      counters = Array.make num_kinds 0;
      ring = Array.make capacity None;
      capacity;
      head = 0;
      total = 0;
      checkers = [];
      violation_log = [];
      reload_interval = Histogram.create ();
      checks_at_last_reload = 0;
      attribution = Hashtbl.create 31;
      branch_bias = Hashtbl.create 31;
      plugins = [];
    }
  in
  List.iter (attach t) (Atomic.get auto_plugins);
  t

let plugin_names t = List.map (fun i -> i.i_spec.p_name) t.plugins

let plugin_json t =
  List.map (fun i -> (i.i_spec.p_name, i.i_spec.p_to_json i.i_state)) t.plugins

(* Run each plugin's end-of-run pass exactly once (idempotent): a
   plugin may only discover a violation once the event stream is known
   to be over — e.g. a failed limit check with no fault ever following. *)
let finish_plugins t =
  List.iter
    (fun i ->
      if not i.i_finished then begin
        i.i_finished <- true;
        i.i_spec.p_at_finish t i.i_state
      end)
    t.plugins

let count t kind = t.counters.(kind_index kind)

let emit t ev =
  let k = kind_of_event ev in
  let ki = kind_index k in
  t.counters.(ki) <- t.counters.(ki) + 1;
  (match ev with
   | Tlb_miss { evicted = true; _ } ->
     let e = kind_index K_tlb_evict in
     t.counters.(e) <- t.counters.(e) + 1
   | Segreg_load _ ->
     (* Reload-rate metric: how many limit checks ran since the previous
        segment-register load. *)
     let checks =
       t.counters.(kind_index K_limit_check_pass)
       + t.counters.(kind_index K_limit_check_fail)
     in
     Histogram.add t.reload_interval (checks - t.checks_at_last_reload);
     t.checks_at_last_reload <- checks
   | _ -> ());
  t.ring.(t.head) <- Some ev;
  t.head <- (t.head + 1) mod t.capacity;
  t.total <- t.total + 1;
  (match t.checkers with
   | [] -> ()
   | cs -> List.iter (fun (_, f) -> f ev) cs);
  match t.plugins with
  | [] -> ()
  | ps -> List.iter (fun i -> i.i_spec.p_on_event t i.i_state ev) ps

let counters t =
  List.filter_map
    (fun k ->
      let c = count t k in
      if c > 0 then Some (kind_name k, c) else None)
    all_kinds
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let events t =
  (* Oldest-first: the ring wraps at [head]. *)
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    match t.ring.((t.head + i) mod t.capacity) with
    | Some ev -> acc := ev :: !acc
    | None -> ()
  done;
  !acc

let total_events t = t.total
let dropped t = max 0 (t.total - t.capacity)
let reload_interval t = t.reload_interval

let add_checker t ~name f = t.checkers <- t.checkers @ [ (name, f) ]

let violation t ~checker msg =
  t.violation_log <- (checker, msg) :: t.violation_log

let violations t = List.rev t.violation_log

let add_attribution t sym ~insns ~cycles =
  match Hashtbl.find_opt t.attribution sym with
  | Some (i, c) ->
    i := !i + insns;
    c := !c + cycles
  | None -> Hashtbl.add t.attribution sym (ref insns, ref cycles)

let attributions t =
  Hashtbl.fold (fun sym (i, c) acc -> (sym, !i, !c) :: acc) t.attribution []
  |> List.sort (fun (na, _, ca) (nb, _, cb) ->
         match compare cb ca with 0 -> String.compare na nb | n -> n)

let add_branch_bias t ~site ~taken ~not_taken =
  match Hashtbl.find_opt t.branch_bias site with
  | Some (tk, fl) ->
    tk := !tk + taken;
    fl := !fl + not_taken
  | None -> Hashtbl.add t.branch_bias site (ref taken, ref not_taken)

let branch_bias t =
  Hashtbl.fold (fun site (tk, fl) acc -> (site, !tk, !fl) :: acc) t.branch_bias []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)

(* Ten-bucket histogram of per-site taken share: bucket [i] counts the
   sites whose taken fraction lies in [i*10%, (i+1)*10%) — 100% lands
   in the last bucket. A chainable site shows up at the edges. *)
let branch_bias_histogram t =
  let buckets = Array.make 10 0 in
  Hashtbl.iter
    (fun _ (tk, fl) ->
      let total = !tk + !fl in
      if total > 0 then begin
        let b = min 9 (!tk * 10 / total) in
        buckets.(b) <- buckets.(b) + 1
      end)
    t.branch_bias;
  buckets

(* Fold one finished sink into another, for aggregating the per-job
   sinks of a parallel run after the barrier. Counters, the
   reload-interval histogram, attribution, and the emitted-event totals
   sum exactly; [src]'s surviving ring events and violations are
   appended after [into]'s in [src]-emission order, so merging per-job
   sinks in job order is deterministic. [into]'s checkers are NOT run
   on the merged events: merging is aggregation, not emission. Both
   sinks are expected to be quiescent (their runs finished) — the
   reload-interval boundary state is not carried over, so a sink that
   keeps emitting after being merged into would start a fresh interval. *)
let merge_into ~into src =
  Array.iteri
    (fun i c -> into.counters.(i) <- into.counters.(i) + c)
    src.counters;
  List.iter
    (fun ev ->
      into.ring.(into.head) <- Some ev;
      into.head <- (into.head + 1) mod into.capacity)
    (events src);
  into.total <- into.total + src.total;
  Histogram.merge_into ~into:into.reload_interval src.reload_interval;
  (* [violation_log] is newest-first; prepending the reversed oldest-first
     view keeps "into's violations, then src's" once re-reversed. *)
  into.violation_log <- List.rev_append (violations src) into.violation_log;
  Hashtbl.iter
    (fun sym (i, c) -> add_attribution into sym ~insns:!i ~cycles:!c)
    src.attribution;
  Hashtbl.iter
    (fun site (tk, fl) ->
      add_branch_bias into ~site ~taken:!tk ~not_taken:!fl)
    src.branch_bias;
  (* Plugin states fold by name: a plugin present on both sides merges
     src's state into into's (aggregation — [into]'s plugins are NOT
     re-run on the merged events, same as its checkers); a plugin only
     on [src] moves across with its state. The fold happens after the
     ring append above, so a plugin cannot observe merged events as
     emissions. *)
  List.iter
    (fun si ->
      match
        List.find_opt
          (fun ii -> ii.i_spec.p_name = si.i_spec.p_name)
          into.plugins
      with
      | Some ii -> ii.i_spec.p_merge ~into:ii.i_state si.i_state
      | None ->
        into.plugins <-
          into.plugins
          @ [ { i_spec = si.i_spec; i_state = si.i_state;
                i_finished = si.i_finished } ])
    src.plugins

(* --- pretty-printing ---------------------------------------------------- *)

let ldt_path_name = function
  | Slow_syscall -> "modify_ldt"
  | Call_gate -> "cash_modify_ldt"

let pp_event ppf = function
  | Segreg_load { reg; selector } ->
    Fmt.pf ppf "segreg_load %s <- 0x%04x" reg selector
  | Limit_check { seg; base; offset; size; write; ok } ->
    Fmt.pf ppf "limit_check %s base=0x%x offset=0x%x size=%d %s %s" seg base
      offset size
      (if write then "write" else "read")
      (if ok then "pass" else "FAIL")
  | Fault { detail; _ } -> Fmt.pf ppf "fault %s" detail
  | Tlb_hit -> Fmt.string ppf "tlb_hit"
  | Tlb_miss { page; evicted } ->
    Fmt.pf ppf "tlb_miss page=0x%x%s" page (if evicted then " (evict)" else "")
  | Ldt_update { path; index; cleared } ->
    Fmt.pf ppf "ldt_update via %s index=%d %s" (ldt_path_name path) index
      (if cleared then "clear" else "set")
  | Call_gate_entry { selector } ->
    Fmt.pf ppf "call_gate_entry 0x%04x" selector
  | Context_switch { pid } -> Fmt.pf ppf "context_switch pid=%d" pid
  | Btable_load { key; hit } ->
    Fmt.pf ppf "btable_load key=0x%x %s" key (if hit then "hit" else "MISS")
  | Cap_tag_clear { value; lower; upper } ->
    Fmt.pf ppf "cap_tag_clear value=0x%x bounds=[0x%x,0x%x]" value lower upper

let json_of_event ev : Json.t =
  match ev with
  | Segreg_load { reg; selector } ->
    Json.Obj
      [ ("event", Json.Str "segreg_load"); ("reg", Json.Str reg);
        ("selector", Json.Int selector) ]
  | Limit_check { seg; base; offset; size; write; ok } ->
    Json.Obj
      [ ("event", Json.Str "limit_check"); ("seg", Json.Str seg);
        ("base", Json.Int base); ("offset", Json.Int offset);
        ("size", Json.Int size); ("write", Json.Bool write);
        ("ok", Json.Bool ok) ]
  | Fault { cls; detail; address; selector } ->
    let cls_name =
      match cls with
      | `Gp -> "gp" | `Ss -> "ss" | `Pf -> "pf"
      | `Np -> "np" | `Ud -> "ud" | `Br -> "br"
    in
    Json.Obj
      [ ("event", Json.Str "fault"); ("class", Json.Str cls_name);
        ("detail", Json.Str detail);
        ("address",
         match address with Some a -> Json.Int a | None -> Json.Null);
        ("selector",
         match selector with Some s -> Json.Int s | None -> Json.Null) ]
  | Tlb_hit -> Json.Obj [ ("event", Json.Str "tlb_hit") ]
  | Tlb_miss { page; evicted } ->
    Json.Obj
      [ ("event", Json.Str "tlb_miss"); ("page", Json.Int page);
        ("evicted", Json.Bool evicted) ]
  | Ldt_update { path; index; cleared } ->
    Json.Obj
      [ ("event", Json.Str "ldt_update");
        ("path", Json.Str (ldt_path_name path)); ("index", Json.Int index);
        ("cleared", Json.Bool cleared) ]
  | Call_gate_entry { selector } ->
    Json.Obj
      [ ("event", Json.Str "call_gate_entry"); ("selector", Json.Int selector) ]
  | Context_switch { pid } ->
    Json.Obj [ ("event", Json.Str "context_switch"); ("pid", Json.Int pid) ]
  | Btable_load { key; hit } ->
    Json.Obj
      [ ("event", Json.Str "btable_load"); ("key", Json.Int key);
        ("hit", Json.Bool hit) ]
  | Cap_tag_clear { value; lower; upper } ->
    Json.Obj
      [ ("event", Json.Str "cap_tag_clear"); ("value", Json.Int value);
        ("lower", Json.Int lower); ("upper", Json.Int upper) ]

let to_json t : Json.t =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ( "attribution",
        Json.List
          (List.map
             (fun (sym, insns, cycles) ->
               Json.Obj
                 [ ("symbol", Json.Str sym); ("insns", Json.Int insns);
                   ("cycles", Json.Int cycles) ])
             (attributions t)) );
      ( "reload_interval",
        Json.List
          (List.map
             (fun (lo, n) ->
               Json.Obj [ ("ge", Json.Int lo); ("count", Json.Int n) ])
             (Histogram.buckets t.reload_interval)) );
      ( "branch_bias",
        Json.List
          (List.map
             (fun (site, taken, fall) ->
               Json.Obj
                 [ ("site", Json.Int site); ("taken", Json.Int taken);
                   ("fall_through", Json.Int fall) ])
             (branch_bias t)) );
      ( "branch_bias_histogram",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i n ->
                  Json.Obj
                    [ ("taken_pct_ge", Json.Int (i * 10));
                      ("sites", Json.Int n) ])
                (branch_bias_histogram t))) );
      ( "violations",
        Json.List
          (List.map
             (fun (checker, msg) ->
               Json.Obj
                 [ ("checker", Json.Str checker); ("message", Json.Str msg) ])
             (violations t)) );
      ("plugins", Json.Obj (plugin_json t));
      ("events_total", Json.Int t.total);
      ("events_dropped", Json.Int (dropped t));
      ("events", Json.List (List.map json_of_event (events t)));
    ]
