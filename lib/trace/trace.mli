(** Structured tracing and metrics for the simulator.

    A {!sink} receives typed {!event}s from the hardware and OS layers
    (segment-register loads, limit checks, faults, TLB traffic, LDT
    syscalls, context switches) and maintains three views of them:

    - {e counters}: one integer per {!kind}, bumped on every emit —
      always cheap, never dropped;
    - a {e ring buffer} of the most recent events, for inspection and
      JSON export (old events are overwritten, the drop count is kept);
    - {e checkers}: inline invariant callbacks in the Checkbochs style,
      run against every event as it is emitted; a checker records
      violations on the sink instead of raising, so a checked run
      completes and the violations can be asserted afterwards.

    The emitting layers hold a [sink option] and test it before
    constructing an event, so a detached run pays one load-and-branch
    per would-be event and allocates nothing. Tracing never changes
    simulated semantics: cycles, counters, memory, and table output are
    bit-identical with and without a sink attached (asserted by the
    oracle suite in [test/test_predecode.ml]). *)

(** Which kernel path performed an LDT update. *)
type ldt_path = Slow_syscall | Call_gate

type event =
  | Segreg_load of { reg : string; selector : int }
      (** a MOV to a segment register (or a load by the loader) *)
  | Limit_check of {
      seg : string;
      base : int;  (** segment base from the hidden cache, for per-array
                       attribution — 0 for the flat segments *)
      offset : int;
      size : int;
      write : bool;
      ok : bool;
    }  (** one segment-limit check; [ok = false] means a fault follows *)
  | Fault of {
      cls : [ `Gp | `Ss | `Pf | `Np | `Ud | `Br ];
      detail : string;   (** [Seghw.Fault.to_string] of the fault *)
      address : int option;  (** faulting linear address (#PF only) *)
      selector : int option; (** faulting selector (#NP only) *)
    }
  | Tlb_hit
  | Tlb_miss of { page : int; evicted : bool }
  | Ldt_update of { path : ldt_path; index : int; cleared : bool }
  | Call_gate_entry of { selector : int }
  | Context_switch of { pid : int }
  | Btable_load of { key : int; hit : bool }
      (** one BNDLDX bound-table walk (MPX backend); a miss loads the
          unbounded range and never faults *)
  | Cap_tag_clear of { value : int; lower : int; upper : int }
      (** a CAPCLR actually clearing the tag: pointer arithmetic
          escaped the capability's bounds (capability backend) *)

(** Event classes, the counter index space. Every emitted event bumps
    exactly one kind counter, except that a [Tlb_miss] with
    [evicted = true] also bumps [K_tlb_evict]. *)
type kind =
  | K_segreg_load
  | K_limit_check_pass
  | K_limit_check_fail
  | K_fault_gp
  | K_fault_ss
  | K_fault_pf
  | K_fault_np
  | K_fault_ud
  | K_fault_br
  | K_tlb_hit
  | K_tlb_miss
  | K_tlb_evict
  | K_modify_ldt
  | K_cash_modify_ldt
  | K_call_gate_entry
  | K_context_switch
  | K_btable_hit
  | K_btable_miss
  | K_cap_tag_clear

val kind_of_event : event -> kind
val kind_name : kind -> string
val all_kinds : kind list

(** A power-of-two-bucketed histogram: bucket [i] counts samples [v]
    with [2^(i-1) <= v < 2^i] (bucket 0 counts [v <= 0]). *)
module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> int -> unit
  val total : t -> int

  (** [(lower_bound, count)] per non-empty bucket, ascending. *)
  val buckets : t -> (int * int) list

  (** Pointwise sum of [src] into [into]; exact, since the bucket
      boundaries are fixed. *)
  val merge_into : into:t -> t -> unit
end

(** Minimal JSON values + serialiser, for the export paths (bench
    [--trace], [cashc --profile]). Strings are escaped per RFC 8259. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  exception Parse_error of string

  (** Parse one JSON document — the inverse of {!to_string}, so perf
      records (BENCH_<n>.json) written by one run can be read back by a
      later one ([bench --compare]). Accepts standard RFC 8259 JSON;
      integral int-syntax literals parse to [Int], other numbers to
      [Float].
      @raise Parse_error on malformed input (with a byte offset). *)
  val parse : string -> t

  (** [member k json] is the value of field [k] if [json] is an object
      that has it. *)
  val member : string -> t -> t option

  (** [Int]s widen to float; everything non-numeric is [None]. *)
  val to_float_opt : t -> float option

  val to_int_opt : t -> int option
  val to_string_opt : t -> string option
end

type sink

(** {2 Plugins}

    A plugin is a named, stateful event subscriber in the Checkbochs
    style: one hardware-level property per plugin, expressed over the
    typed event stream. Unlike the raw {!add_checker} callbacks,
    plugins carry their own typed state (so they survive
    {!merge_into} across a parallel run's per-job sinks), an
    end-of-run pass for invariants only decidable once the stream is
    over, and a JSON report. Shipped plugins live in [lib/checkers];
    writing a new one takes a state constructor and a
    {!Plugin.spec}. *)

(** The open union of per-plugin states. Each plugin extends it with
    its own constructor ([type Trace.plugin_state += My_state of ...])
    and matches it back out inside its callbacks. *)
type plugin_state = ..

module Plugin : sig
  type spec = {
    p_name : string;       (** unique key: registry, per-sink instances,
                               and {!merge_into} pairing all use it *)
    p_doc : string;        (** one-line description for [--check] listings *)
    p_init : unit -> plugin_state;
    p_on_event : sink -> plugin_state -> event -> unit;
        (** run on every emitted event; report problems with
            {!violation} (never raise) *)
    p_at_finish : sink -> plugin_state -> unit;
        (** end-of-run pass, run once by {!finish_plugins} *)
    p_merge : into:plugin_state -> plugin_state -> unit;
        (** fold a finished worker instance's state into [into]'s;
            called by {!merge_into} when both sinks carry the plugin *)
    p_to_json : plugin_state -> Json.t;  (** state summary for export *)
  }

  (** Register a spec under its name for by-name lookup (CLI [--check]
      flags); re-registering a name replaces the old spec. Attaching
      does not require registration. *)
  val register : spec -> unit

  val find : string -> spec option

  (** All registered specs, sorted by name. *)
  val registered : unit -> spec list
end

(** [create ()] makes a detached sink. [capacity] (default 4096) bounds
    the event ring; older events are overwritten but still counted.
    Any {!set_auto_plugins} specs are attached to the new sink. *)
val create : ?capacity:int -> unit -> sink

(** Instantiate a plugin on this sink: its state is created and every
    subsequent {!emit} feeds it. Attach before the first event —
    plugins that cross-check the sink's counters assume they saw the
    whole stream.
    @raise Invalid_argument if a plugin of the same name is attached. *)
val attach : sink -> Plugin.spec -> unit

(** Plugins attached automatically by every subsequent {!create} —
    how a parallel harness whose workers build their own sinks gets
    the same plugin set on each without threading a list through every
    layer. Process-wide; set it (e.g. to [Checkers.all]) before
    fanning out, and reset to [[]] afterwards. *)
val set_auto_plugins : Plugin.spec list -> unit

(** Names of the plugins attached to this sink, in attach order. *)
val plugin_names : sink -> string list

(** Each attached plugin's JSON report, in attach order. *)
val plugin_json : sink -> (string * Json.t) list

(** Run every attached plugin's [p_at_finish] pass. Idempotent per
    instance: a second call (or a call after {!merge_into} brought in
    an already-finished instance) does nothing, so end-of-run
    violations are recorded exactly once. *)
val finish_plugins : sink -> unit

(** Record an event: bump its kind counter, append it to the ring, feed
    every registered checker. *)
val emit : sink -> event -> unit

val count : sink -> kind -> int

(** All counters that fired, [(name, count)], sorted by name. *)
val counters : sink -> (string * int) list

(** Events still in the ring, oldest first. *)
val events : sink -> event list

(** Total events emitted, including overwritten ones. *)
val total_events : sink -> int

(** Events overwritten because the ring was full. *)
val dropped : sink -> int

(** Limit checks observed between consecutive segment-register reloads —
    the paper's reload-rate metric as a distribution. *)
val reload_interval : sink -> Histogram.t

(** Register an inline invariant checker, run on every subsequent emit.
    Checkers must not raise; record failures with {!violation}. *)
val add_checker : sink -> name:string -> (event -> unit) -> unit

(** Record an invariant violation against the named checker. *)
val violation : sink -> checker:string -> string -> unit

(** All recorded violations, [(checker, message)], in emission order. *)
val violations : sink -> (string * string) list

(** Per-function cycle attribution merged in by the execution engine
    after a traced run (see [Machine.Cpu.profile]). *)
val add_attribution : sink -> string -> insns:int -> cycles:int -> unit

(** Accumulated attribution, [(symbol, insns, cycles)], sorted by cycles
    descending then name. *)
val attributions : sink -> (string * int * int) list

(** Per-site conditional-branch direction counts merged in by the block
    engine's chaining machinery (see [Machine.Cpu.branch_bias]) — the
    statistics chain-layout decisions were made from, exported through
    {!to_json} for offline inspection. *)
val add_branch_bias : sink -> site:int -> taken:int -> not_taken:int -> unit

(** Accumulated bias, [(site, taken, fall_through)], ascending by site. *)
val branch_bias : sink -> (int * int * int) list

(** Ten deciles of per-site taken share: element [i] counts sites whose
    taken fraction lies in [[i*10%, (i+1)*10%)], 100% in the last. *)
val branch_bias_histogram : sink -> int array

(** [merge_into ~into src] folds one finished sink into another — how
    the per-job sinks of a parallel run ([Parallel.run_jobs]) become
    one aggregate after the barrier. Counters, the reload-interval
    histogram, attribution, branch bias, and emitted-event totals sum
    exactly;
    [src]'s surviving ring events and violations are appended after
    [into]'s in emission order, so merging per-job sinks in job order
    is deterministic. [into]'s checkers and plugins are not run on
    merged events (aggregation, not emission): a plugin present on
    both sinks has [src]'s state folded in through its [p_merge], and
    one present only on [src] moves across with its state. Both sinks
    should be quiescent: reload-interval boundary state is not carried
    across the merge.
    A sink is single-domain — emit into per-job sinks and merge after
    joining, never share one sink across running domains. *)
val merge_into : into:sink -> sink -> unit

val pp_event : Format.formatter -> event -> unit


(** Full sink state as JSON: counters, attribution, reload-interval
    histogram, violations, ring contents, drop count. *)
val to_json : sink -> Json.t
