(* Semantic analysis: name resolution, type checking, implicit conversion
   insertion, op= and for-scope desugaring, loop numbering. Produces the
   typed IR consumed by all backends. *)

exception Type_error of string

let error fmt = Printf.ksprintf (fun msg -> raise (Type_error msg)) fmt

type env = {
  mutable next_sym : int;
  mutable next_loop : int;
  mutable scopes : (string, Ir.sym) Hashtbl.t list;
  funcs : (string, Ir.sym * Ast.ty list) Hashtbl.t; (* sig: param types *)
  mutable strings : string list; (* reversed *)
  mutable string_count : int;
  mutable locals_acc : Ir.sym list; (* collected per function, reversed *)
}

let builtins : (string * (Ir.builtin * Ast.ty * Ast.ty list)) list =
  [
    ("malloc", (Ir.Bmalloc, Ast.Tptr Ast.Tvoid, [ Ast.Tint ]));
    ("free", (Ir.Bfree, Ast.Tvoid, [ Ast.Tptr Ast.Tvoid ]));
    ("print_int", (Ir.Bprint_int, Ast.Tvoid, [ Ast.Tint ]));
    ("print_char", (Ir.Bprint_char, Ast.Tvoid, [ Ast.Tint ]));
    ("print_float", (Ir.Bprint_float, Ast.Tvoid, [ Ast.Tdouble ]));
    ("rand", (Ir.Brand, Ast.Tint, []));
    ("srand", (Ir.Bsrand, Ast.Tvoid, [ Ast.Tint ]));
    ("server_ready", (Ir.Bserver_ready, Ast.Tvoid, []));
    ("sqrt", (Ir.Bsqrt, Ast.Tdouble, [ Ast.Tdouble ]));
    ("sin", (Ir.Bmath1 "sin", Ast.Tdouble, [ Ast.Tdouble ]));
    ("cos", (Ir.Bmath1 "cos", Ast.Tdouble, [ Ast.Tdouble ]));
    ("exp", (Ir.Bmath1 "exp", Ast.Tdouble, [ Ast.Tdouble ]));
    ("log", (Ir.Bmath1 "log", Ast.Tdouble, [ Ast.Tdouble ]));
    ("atan", (Ir.Bmath1 "atan", Ast.Tdouble, [ Ast.Tdouble ]));
    ("fabs", (Ir.Bmath1 "fabs", Ast.Tdouble, [ Ast.Tdouble ]));
    ("floor", (Ir.Bmath1 "floor", Ast.Tdouble, [ Ast.Tdouble ]));
    ("pow", (Ir.Bmath2 "pow", Ast.Tdouble, [ Ast.Tdouble; Ast.Tdouble ]));
  ]

let fresh_sym env ~name ~ty ~storage =
  let id = env.next_sym in
  env.next_sym <- env.next_sym + 1;
  { Ir.id; name; ty; storage }

let fresh_loop env =
  let id = env.next_loop in
  env.next_loop <- env.next_loop + 1;
  { Ir.loop_id = id }

let push_scope env = env.scopes <- Hashtbl.create 16 :: env.scopes
let pop_scope env =
  match env.scopes with
  | _ :: rest -> env.scopes <- rest
  | [] -> assert false

let declare env sym =
  match env.scopes with
  | scope :: _ ->
    if Hashtbl.mem scope sym.Ir.name then
      error "redeclaration of '%s'" sym.Ir.name;
    Hashtbl.add scope sym.Ir.name sym
  | [] -> assert false

let lookup env name =
  let rec go = function
    | [] -> None
    | scope :: rest ->
      (match Hashtbl.find_opt scope name with
       | Some s -> Some s
       | None -> go rest)
  in
  go env.scopes

let intern_string env s =
  let id = env.string_count in
  env.strings <- s :: env.strings;
  env.string_count <- id + 1;
  id

(* --- conversions ------------------------------------------------------ *)

let rec types_compatible a b =
  match a, b with
  | Ast.Tptr Ast.Tvoid, Ast.Tptr _ | Ast.Tptr _, Ast.Tptr Ast.Tvoid -> true
  | Ast.Tptr x, Ast.Tptr y -> types_compatible x y
  | x, y -> x = y

(* Convert [e] to type [want], inserting casts; promotes char to int and
   int to double implicitly. *)
let convert ~want (e : Ir.texpr) =
  let have = Ast.decay e.Ir.ty in
  let want = Ast.decay want in
  if have = want then e
  else
    match have, want with
    | Ast.Tchar, Ast.Tint | Ast.Tint, Ast.Tchar ->
      { Ir.ty = want; e = Ir.Tcast (want, e) }
    | (Ast.Tint | Ast.Tchar), Ast.Tdouble
    | Ast.Tdouble, (Ast.Tint | Ast.Tchar) ->
      { Ir.ty = want; e = Ir.Tcast (want, e) }
    | Ast.Tptr _, Ast.Tptr _ when types_compatible have want ->
      { Ir.ty = want; e = Ir.Tcast (want, e) }
    | _ ->
      error "cannot convert %s to %s" (Ast.show_ty have) (Ast.show_ty want)

(* Usual arithmetic conversions for a binary operation. *)
let arith_result a b =
  match Ast.decay a, Ast.decay b with
  | Ast.Tdouble, _ | _, Ast.Tdouble -> Ast.Tdouble
  | _ -> Ast.Tint

(* --- expressions ------------------------------------------------------ *)

let rec check_expr env (e : Ast.expr) : Ir.texpr =
  match e with
  | Ast.Int_lit n -> { Ir.ty = Ast.Tint; e = Ir.Tint_lit n }
  | Ast.Char_lit c -> { Ir.ty = Ast.Tint; e = Ir.Tint_lit (Char.code c) }
  | Ast.Float_lit f -> { Ir.ty = Ast.Tdouble; e = Ir.Tfloat_lit f }
  | Ast.Str_lit s ->
    { Ir.ty = Ast.Tptr Ast.Tchar; e = Ir.Tstr_lit (intern_string env s) }
  | Ast.Var name ->
    (match lookup env name with
     | Some sym -> { Ir.ty = sym.Ir.ty; e = Ir.Tvar sym }
     | None -> error "undeclared variable '%s'" name)
  | Ast.Index (base, idx) ->
    let base = check_expr env base in
    let idx = convert ~want:Ast.Tint (check_expr env idx) in
    (match Ast.decay base.Ir.ty with
     | Ast.Tptr elem when elem <> Ast.Tvoid ->
       { Ir.ty = elem; e = Ir.Tindex (base, idx) }
     | t -> error "cannot index a value of type %s" (Ast.show_ty t))
  | Ast.Deref p ->
    let p = check_expr env p in
    (match Ast.decay p.Ir.ty with
     | Ast.Tptr elem when elem <> Ast.Tvoid ->
       { Ir.ty = elem; e = Ir.Tderef p }
     | t -> error "cannot dereference a value of type %s" (Ast.show_ty t))
  | Ast.Addr_of inner ->
    let inner = check_expr env inner in
    if not (Ir.is_lvalue inner) then error "& requires an lvalue";
    (* &a where a is an array yields a pointer to the element type, as the
       decayed array already does; keep it simple and uniform. *)
    let pointee =
      match inner.Ir.ty with Ast.Tarray (t, _) -> t | t -> t
    in
    { Ir.ty = Ast.Tptr pointee; e = Ir.Taddr inner }
  | Ast.Unop (op, inner) ->
    let inner = check_expr env inner in
    (match op with
     | Ast.Neg ->
       let ty = Ast.decay inner.Ir.ty in
       if not (Ast.is_arith ty) then error "unary - requires arithmetic type";
       { Ir.ty; e = Ir.Tunop (op, inner) }
     | Ast.Lnot -> { Ir.ty = Ast.Tint; e = Ir.Tunop (op, inner) }
     | Ast.Bnot ->
       let inner = convert ~want:Ast.Tint inner in
       { Ir.ty = Ast.Tint; e = Ir.Tunop (op, inner) })
  | Ast.Binop (op, a, b) -> check_binop env op a b
  | Ast.Land (a, b) ->
    let a = check_expr env a and b = check_expr env b in
    { Ir.ty = Ast.Tint; e = Ir.Tland (a, b) }
  | Ast.Lor (a, b) ->
    let a = check_expr env a and b = check_expr env b in
    { Ir.ty = Ast.Tint; e = Ir.Tlor (a, b) }
  | Ast.Cond (c, a, b) ->
    let c = check_expr env c in
    let a = check_expr env a and b = check_expr env b in
    let ty =
      if Ast.decay a.Ir.ty = Ast.decay b.Ir.ty then Ast.decay a.Ir.ty
      else if Ast.is_arith (Ast.decay a.Ir.ty)
              && Ast.is_arith (Ast.decay b.Ir.ty)
      then arith_result a.Ir.ty b.Ir.ty
      else error "incompatible branches of ?:"
    in
    { Ir.ty; e = Ir.Tcond (c, convert ~want:ty a, convert ~want:ty b) }
  | Ast.Assign (lhs, rhs) ->
    let lhs = check_expr env lhs in
    if not (Ir.is_lvalue lhs) then error "assignment requires an lvalue";
    (match lhs.Ir.ty with
     | Ast.Tarray _ -> error "cannot assign to an array"
     | _ -> ());
    let rhs = convert ~want:lhs.Ir.ty (check_expr env rhs) in
    { Ir.ty = lhs.Ir.ty; e = Ir.Tassign (lhs, rhs) }
  | Ast.Op_assign (op, lhs, rhs) ->
    (* desugar: lhs op= rhs  ==>  lhs = lhs op rhs. The lvalue is evaluated
       twice; the workloads only use simple lvalues here. *)
    check_expr env (Ast.Assign (lhs, Ast.Binop (op, lhs, rhs)))
  | Ast.Incdec (pos, op, inner) ->
    let inner = check_expr env inner in
    if not (Ir.is_lvalue inner) then error "++/-- requires an lvalue";
    let ty = Ast.decay inner.Ir.ty in
    if not (Ast.is_integral ty || Ast.is_pointer ty) then
      error "++/-- requires integral or pointer type";
    { Ir.ty; e = Ir.Tincdec (pos, op, inner) }
  | Ast.Call (name, args) -> check_call env name args
  | Ast.Cast (ty, inner) ->
    let inner = check_expr env inner in
    { Ir.ty; e = Ir.Tcast (ty, inner) }
  | Ast.Sizeof_ty ty ->
    (* resolved at code generation: pointer sizes differ per backend *)
    { Ir.ty = Ast.Tint; e = Ir.Tsizeof ty }

and check_binop env op a b =
  let a = check_expr env a and b = check_expr env b in
  let ta = Ast.decay a.Ir.ty and tb = Ast.decay b.Ir.ty in
  match op with
  | Ast.Add | Ast.Sub ->
    (match ta, tb with
     | Ast.Tptr _, t when Ast.is_integral t ->
       { Ir.ty = ta; e = Ir.Tbinop (op, a, convert ~want:Ast.Tint b) }
     | t, Ast.Tptr _ when Ast.is_integral t && op = Ast.Add ->
       { Ir.ty = tb; e = Ir.Tbinop (op, convert ~want:Ast.Tint a, b) }
     | Ast.Tptr x, Ast.Tptr y when op = Ast.Sub && types_compatible x y ->
       { Ir.ty = Ast.Tint; e = Ir.Tbinop (op, a, b) }
     | _ when Ast.is_arith ta && Ast.is_arith tb ->
       let ty = arith_result ta tb in
       { Ir.ty; e = Ir.Tbinop (op, convert ~want:ty a, convert ~want:ty b) }
     | _ ->
       error "invalid operands to %s: %s, %s" (Ast.show_binop op)
         (Ast.show_ty ta) (Ast.show_ty tb))
  | Ast.Mul | Ast.Div ->
    if not (Ast.is_arith ta && Ast.is_arith tb) then
      error "invalid operands to %s" (Ast.show_binop op);
    let ty = arith_result ta tb in
    { Ir.ty; e = Ir.Tbinop (op, convert ~want:ty a, convert ~want:ty b) }
  | Ast.Mod | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
    (* integral operands only, as in C *)
    if not (Ast.is_integral ta && Ast.is_integral tb) then
      error "operator %s requires integral operands" (Ast.show_binop op);
    { Ir.ty = Ast.Tint;
      e = Ir.Tbinop (op, convert ~want:Ast.Tint a, convert ~want:Ast.Tint b) }
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    (match ta, tb with
     | Ast.Tptr _, Ast.Tptr _ ->
       { Ir.ty = Ast.Tint; e = Ir.Tbinop (op, a, b) }
     | Ast.Tptr _, Ast.Tint | Ast.Tint, Ast.Tptr _ ->
       (* pointer vs integer: the workloads only compare against 0 *)
       { Ir.ty = Ast.Tint; e = Ir.Tbinop (op, a, b) }
     | _ when Ast.is_arith ta && Ast.is_arith tb ->
       let ty = arith_result ta tb in
       { Ir.ty = Ast.Tint;
         e = Ir.Tbinop (op, convert ~want:ty a, convert ~want:ty b) }
     | _ -> error "invalid comparison")

and check_call env name args =
  let args = List.map (check_expr env) args in
  match List.assoc_opt name builtins with
  | Some (b, ret, param_tys) ->
    if List.length args <> List.length param_tys then
      error "%s expects %d arguments" name (List.length param_tys);
    let args = List.map2 (fun a want -> convert ~want a) args param_tys in
    { Ir.ty = ret; e = Ir.Tbuiltin (b, args) }
  | None ->
    (match Hashtbl.find_opt env.funcs name with
     | None -> error "call to undeclared function '%s'" name
     | Some (fsym, param_tys) ->
       if List.length args <> List.length param_tys then
         error "%s expects %d arguments" name (List.length param_tys);
       let args = List.map2 (fun a want -> convert ~want a) args param_tys in
       { Ir.ty = fsym.Ir.ty; e = Ir.Tcall (fsym, args) })

(* --- statements ------------------------------------------------------- *)

let rec check_stmt env ~ret_ty (s : Ast.stmt) : Ir.tstmt =
  match s with
  | Ast.Expr e -> Ir.Sexpr (check_expr env e)
  | Ast.Decl (ty, name, init) ->
    (match ty with
     | Ast.Tvoid -> error "cannot declare '%s' of type void" name
     | Ast.Tarray (_, n) when n <= 0 ->
       error "array '%s' must have positive size" name
     | _ -> ());
    let sym = fresh_sym env ~name ~ty ~storage:Ir.Local_var in
    declare env sym;
    env.locals_acc <- sym :: env.locals_acc;
    let init =
      match init with
      | None -> None
      | Some e ->
        (match ty with
         | Ast.Tarray _ -> error "array initialisers are not supported"
         | _ -> Some (convert ~want:ty (check_expr env e)))
    in
    Ir.Sdecl (sym, init)
  | Ast.If (c, then_, else_) ->
    let c = check_expr env c in
    Ir.Sif
      ( c,
        check_stmt env ~ret_ty then_,
        Option.map (check_stmt env ~ret_ty) else_ )
  | Ast.While (c, body) ->
    let li = fresh_loop env in
    let c = check_expr env c in
    Ir.Swhile (li, c, check_stmt env ~ret_ty body)
  | Ast.For (init, cond, step, body) ->
    let li = fresh_loop env in
    push_scope env; (* the for-init declaration scopes over the loop *)
    let init = Option.map (check_stmt env ~ret_ty) init in
    let cond = Option.map (check_expr env) cond in
    let step = Option.map (check_expr env) step in
    let body = check_stmt env ~ret_ty body in
    pop_scope env;
    Ir.Sfor (li, init, cond, step, body)
  | Ast.Return e ->
    (match e, ret_ty with
     | None, Ast.Tvoid -> Ir.Sreturn None
     | None, _ -> error "return without value in non-void function"
     | Some _, Ast.Tvoid -> error "return with value in void function"
     | Some e, _ -> Ir.Sreturn (Some (convert ~want:ret_ty (check_expr env e))))
  | Ast.Block stmts ->
    push_scope env;
    let stmts = List.map (check_stmt env ~ret_ty) stmts in
    pop_scope env;
    Ir.Sblock stmts
  | Ast.Break -> Ir.Sbreak
  | Ast.Continue -> Ir.Scontinue
  | Ast.Empty -> Ir.Sempty

(* --- program ------------------------------------------------------------ *)

let const_of_init name (e : Ir.texpr) =
  match e.Ir.e with
  | Ir.Tint_lit n -> Ir.Cint n
  | Ir.Tfloat_lit f -> Ir.Cfloat f
  | Ir.Tcast (Ast.Tdouble, { Ir.e = Ir.Tint_lit n; _ }) ->
    Ir.Cfloat (float_of_int n)
  | Ir.Tcast (Ast.Tint, { Ir.e = Ir.Tfloat_lit f; _ }) ->
    Ir.Cint (int_of_float f)
  | _ -> error "initialiser of global '%s' must be a constant" name

(* Type-check a whole translation unit. *)
let check (prog : Ast.program) : Ir.tprog =
  let env =
    {
      next_sym = 0;
      next_loop = 0;
      scopes = [];
      funcs = Hashtbl.create 31;
      strings = [];
      string_count = 0;
      locals_acc = [];
    }
  in
  push_scope env; (* global scope *)
  (* pass 1: declare all functions and globals so bodies can forward-call *)
  let prepared =
    List.map
      (fun g ->
        match g with
        | Ast.Gvar (ty, name, init) ->
          (match ty with
           | Ast.Tvoid -> error "global '%s' has type void" name
           | _ -> ());
          let sym = fresh_sym env ~name ~ty ~storage:Ir.Global_var in
          declare env sym;
          `Var (sym, init)
        | Ast.Gfunc f ->
          if Hashtbl.mem env.funcs f.Ast.name then
            error "redefinition of function '%s'" f.Ast.name;
          if List.mem_assoc f.Ast.name builtins then
            error "function '%s' shadows a builtin" f.Ast.name;
          let fsym =
            fresh_sym env ~name:f.Ast.name ~ty:f.Ast.ret ~storage:Ir.Global_var
          in
          Hashtbl.add env.funcs f.Ast.name
            (fsym, List.map fst f.Ast.params);
          `Func (fsym, f))
      prog
  in
  (* pass 2: check bodies *)
  let globals = ref [] in
  let funcs = ref [] in
  List.iter
    (fun item ->
      match item with
      | `Var (sym, init) ->
        let init =
          Option.map
            (fun e -> const_of_init sym.Ir.name (check_expr env e))
            init
        in
        globals := (sym, init) :: !globals
      | `Func (fsym, f) ->
        push_scope env;
        env.locals_acc <- [];
        let params =
          List.map
            (fun (ty, name) ->
              let sym = fresh_sym env ~name ~ty ~storage:Ir.Param in
              declare env sym;
              sym)
            f.Ast.params
        in
        let body = List.map (check_stmt env ~ret_ty:f.Ast.ret) f.Ast.body in
        let locals = List.rev env.locals_acc in
        pop_scope env;
        funcs := { Ir.fsym; params; locals; body } :: !funcs)
    prepared;
  let tprog =
    {
      Ir.globals = List.rev !globals;
      strings = Array.of_list (List.rev env.strings);
      funcs = List.rev !funcs;
    }
  in
  (match Ir.find_func tprog "main" with
   | Some _ -> ()
   | None -> error "program has no 'main' function");
  tprog

(* Convenience: source text straight to typed IR. *)
let check_source src = check (Parser.parse_program src)
