(** The original list-building mini-C lexer, kept as the reference
    implementation for {!Lexer}'s table-driven scanner. Test oracle and
    benchmark baseline only — production code lexes through {!Lexer}. *)

exception Lex_error of string * int  (** message, line *)

(** Tokenise a full source string; the result always ends with [EOF].
    @raise Lex_error with the offending line number. *)
val tokenize : string -> Token.located list
