(* Recursive-descent parser for mini-C.

   Grammar follows C's precedence levels:
     assignment > conditional > || > && > | > ^ > & > equality >
     relational > shift > additive > multiplicative > unary > postfix.

   Declarations use the restricted form
     type ['*'...] name [ '[' int ']' ] [ '=' expr ]
   i.e. a single declarator per declaration, which keeps the workloads
   honest without C's full declarator grammar. *)

exception Parse_error of string * int

(* The parser walks the scanner's flat token arrays by index instead of
   destructing a [Token.located list]: [peek]/[peek2] are array reads
   (EOF past the end), [advance] an increment. Edge semantics match the
   list version exactly — advancing past the final EOF is a no-op and
   an error there reports line 0. *)
type state = { buf : Lexer.buf; mutable pos : int }

let error st fmt =
  let line = Lexer.line_at st.buf st.pos in
  Printf.ksprintf (fun msg -> raise (Parse_error (msg, line))) fmt

let peek st = Lexer.token st.buf st.pos
let peek2 st = Lexer.token st.buf (st.pos + 1)

let advance st =
  if st.pos < Lexer.count st.buf then st.pos <- st.pos + 1

let expect st tok =
  if peek st = tok then advance st
  else
    error st "expected '%s' but found '%s'" (Token.to_string tok)
      (Token.to_string (peek st))

let expect_ident st =
  match peek st with
  | Token.IDENT s -> advance st; s
  | t -> error st "expected identifier but found '%s'" (Token.to_string t)

let is_type_start = function
  | Token.KW_INT | Token.KW_CHAR | Token.KW_DOUBLE | Token.KW_VOID -> true
  | _ -> false

(* base type + pointer stars *)
let parse_type st =
  let base =
    match peek st with
    | Token.KW_INT -> advance st; Ast.Tint
    | Token.KW_CHAR -> advance st; Ast.Tchar
    | Token.KW_DOUBLE -> advance st; Ast.Tdouble
    | Token.KW_VOID -> advance st; Ast.Tvoid
    | t -> error st "expected type but found '%s'" (Token.to_string t)
  in
  let rec stars ty =
    if peek st = Token.STAR then begin advance st; stars (Ast.Tptr ty) end
    else ty
  in
  stars base

let rec parse_expr st = parse_assign st

and parse_assign st =
  let lhs = parse_cond st in
  match peek st with
  | Token.ASSIGN -> advance st; Ast.Assign (lhs, parse_assign st)
  | Token.PLUS_ASSIGN -> advance st; Ast.Op_assign (Ast.Add, lhs, parse_assign st)
  | Token.MINUS_ASSIGN -> advance st; Ast.Op_assign (Ast.Sub, lhs, parse_assign st)
  | Token.STAR_ASSIGN -> advance st; Ast.Op_assign (Ast.Mul, lhs, parse_assign st)
  | Token.SLASH_ASSIGN -> advance st; Ast.Op_assign (Ast.Div, lhs, parse_assign st)
  | Token.PERCENT_ASSIGN -> advance st; Ast.Op_assign (Ast.Mod, lhs, parse_assign st)
  | _ -> lhs

and parse_cond st =
  let c = parse_lor st in
  if peek st = Token.QUESTION then begin
    advance st;
    let a = parse_expr st in
    expect st Token.COLON;
    let b = parse_cond st in
    Ast.Cond (c, a, b)
  end
  else c

and parse_lor st =
  let rec go acc =
    if peek st = Token.OROR then begin
      advance st;
      go (Ast.Lor (acc, parse_land st))
    end
    else acc
  in
  go (parse_land st)

and parse_land st =
  let rec go acc =
    if peek st = Token.ANDAND then begin
      advance st;
      go (Ast.Land (acc, parse_bor st))
    end
    else acc
  in
  go (parse_bor st)

and parse_bor st =
  let rec go acc =
    if peek st = Token.PIPE then begin
      advance st;
      go (Ast.Binop (Ast.Bor, acc, parse_bxor st))
    end
    else acc
  in
  go (parse_bxor st)

and parse_bxor st =
  let rec go acc =
    if peek st = Token.CARET then begin
      advance st;
      go (Ast.Binop (Ast.Bxor, acc, parse_band st))
    end
    else acc
  in
  go (parse_band st)

and parse_band st =
  let rec go acc =
    if peek st = Token.AMP then begin
      advance st;
      go (Ast.Binop (Ast.Band, acc, parse_equality st))
    end
    else acc
  in
  go (parse_equality st)

and parse_equality st =
  let rec go acc =
    match peek st with
    | Token.EQEQ -> advance st; go (Ast.Binop (Ast.Eq, acc, parse_relational st))
    | Token.NEQ -> advance st; go (Ast.Binop (Ast.Ne, acc, parse_relational st))
    | _ -> acc
  in
  go (parse_relational st)

and parse_relational st =
  let rec go acc =
    match peek st with
    | Token.LT -> advance st; go (Ast.Binop (Ast.Lt, acc, parse_shift st))
    | Token.LE -> advance st; go (Ast.Binop (Ast.Le, acc, parse_shift st))
    | Token.GT -> advance st; go (Ast.Binop (Ast.Gt, acc, parse_shift st))
    | Token.GE -> advance st; go (Ast.Binop (Ast.Ge, acc, parse_shift st))
    | _ -> acc
  in
  go (parse_shift st)

and parse_shift st =
  let rec go acc =
    match peek st with
    | Token.SHL -> advance st; go (Ast.Binop (Ast.Shl, acc, parse_additive st))
    | Token.SHR -> advance st; go (Ast.Binop (Ast.Shr, acc, parse_additive st))
    | _ -> acc
  in
  go (parse_additive st)

and parse_additive st =
  let rec go acc =
    match peek st with
    | Token.PLUS -> advance st; go (Ast.Binop (Ast.Add, acc, parse_multiplicative st))
    | Token.MINUS -> advance st; go (Ast.Binop (Ast.Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  go (parse_multiplicative st)

and parse_multiplicative st =
  let rec go acc =
    match peek st with
    | Token.STAR -> advance st; go (Ast.Binop (Ast.Mul, acc, parse_unary st))
    | Token.SLASH -> advance st; go (Ast.Binop (Ast.Div, acc, parse_unary st))
    | Token.PERCENT -> advance st; go (Ast.Binop (Ast.Mod, acc, parse_unary st))
    | _ -> acc
  in
  go (parse_unary st)

and parse_unary st =
  match peek st with
  | Token.MINUS -> advance st; Ast.Unop (Ast.Neg, parse_unary st)
  | Token.BANG -> advance st; Ast.Unop (Ast.Lnot, parse_unary st)
  | Token.TILDE -> advance st; Ast.Unop (Ast.Bnot, parse_unary st)
  | Token.STAR -> advance st; Ast.Deref (parse_unary st)
  | Token.AMP -> advance st; Ast.Addr_of (parse_unary st)
  | Token.PLUSPLUS -> advance st; Ast.Incdec (Ast.Pre, Ast.Incr, parse_unary st)
  | Token.MINUSMINUS -> advance st; Ast.Incdec (Ast.Pre, Ast.Decr, parse_unary st)
  | Token.KW_SIZEOF ->
    advance st;
    expect st Token.LPAREN;
    let ty = parse_type st in
    expect st Token.RPAREN;
    Ast.Sizeof_ty ty
  | Token.LPAREN when is_type_start (peek2 st) ->
    (* cast *)
    advance st;
    let ty = parse_type st in
    expect st Token.RPAREN;
    Ast.Cast (ty, parse_unary st)
  | _ -> parse_postfix st

and parse_postfix st =
  let rec go acc =
    match peek st with
    | Token.LBRACKET ->
      advance st;
      let idx = parse_expr st in
      expect st Token.RBRACKET;
      go (Ast.Index (acc, idx))
    | Token.PLUSPLUS -> advance st; go (Ast.Incdec (Ast.Post, Ast.Incr, acc))
    | Token.MINUSMINUS -> advance st; go (Ast.Incdec (Ast.Post, Ast.Decr, acc))
    | _ -> acc
  in
  go (parse_primary st)

and parse_primary st =
  match peek st with
  | Token.INT_LIT n -> advance st; Ast.Int_lit n
  | Token.FLOAT_LIT f -> advance st; Ast.Float_lit f
  | Token.CHAR_LIT c -> advance st; Ast.Char_lit c
  | Token.STR_LIT s -> advance st; Ast.Str_lit s
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LPAREN then begin
      advance st;
      let args =
        if peek st = Token.RPAREN then []
        else
          let rec go acc =
            let a = parse_assign st in
            if peek st = Token.COMMA then begin advance st; go (a :: acc) end
            else List.rev (a :: acc)
          in
          go []
      in
      expect st Token.RPAREN;
      Ast.Call (name, args)
    end
    else Ast.Var name
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | t -> error st "unexpected token '%s' in expression" (Token.to_string t)

(* declaration tail after the type: name, optional array suffix, optional
   initialiser *)
let parse_decl_tail st ty =
  let name = expect_ident st in
  let ty =
    if peek st = Token.LBRACKET then begin
      advance st;
      let n =
        match peek st with
        | Token.INT_LIT n -> advance st; n
        | t -> error st "expected array size but found '%s'" (Token.to_string t)
      in
      expect st Token.RBRACKET;
      Ast.Tarray (ty, n)
    end
    else ty
  in
  let init =
    if peek st = Token.ASSIGN then begin
      advance st;
      Some (parse_assign st)
    end
    else None
  in
  (ty, name, init)

let rec parse_stmt st =
  match peek st with
  | Token.SEMI -> advance st; Ast.Empty
  | Token.LBRACE ->
    advance st;
    let rec go acc =
      if peek st = Token.RBRACE then begin
        advance st;
        Ast.Block (List.rev acc)
      end
      else go (parse_stmt st :: acc)
    in
    go []
  | Token.KW_IF ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    let then_ = parse_stmt st in
    if peek st = Token.KW_ELSE then begin
      advance st;
      Ast.If (c, then_, Some (parse_stmt st))
    end
    else Ast.If (c, then_, None)
  | Token.KW_WHILE ->
    advance st;
    expect st Token.LPAREN;
    let c = parse_expr st in
    expect st Token.RPAREN;
    Ast.While (c, parse_stmt st)
  | Token.KW_FOR ->
    advance st;
    expect st Token.LPAREN;
    let init =
      if peek st = Token.SEMI then begin advance st; None end
      else if is_type_start (peek st) then begin
        let ty = parse_type st in
        let ty, name, init = parse_decl_tail st ty in
        expect st Token.SEMI;
        Some (Ast.Decl (ty, name, init))
      end
      else begin
        let e = parse_expr st in
        expect st Token.SEMI;
        Some (Ast.Expr e)
      end
    in
    let cond =
      if peek st = Token.SEMI then None else Some (parse_expr st)
    in
    expect st Token.SEMI;
    let step =
      if peek st = Token.RPAREN then None else Some (parse_expr st)
    in
    expect st Token.RPAREN;
    Ast.For (init, cond, step, parse_stmt st)
  | Token.KW_RETURN ->
    advance st;
    if peek st = Token.SEMI then begin
      advance st;
      Ast.Return None
    end
    else begin
      let e = parse_expr st in
      expect st Token.SEMI;
      Ast.Return (Some e)
    end
  | Token.KW_BREAK -> advance st; expect st Token.SEMI; Ast.Break
  | Token.KW_CONTINUE -> advance st; expect st Token.SEMI; Ast.Continue
  | t when is_type_start t ->
    let ty = parse_type st in
    let ty, name, init = parse_decl_tail st ty in
    expect st Token.SEMI;
    Ast.Decl (ty, name, init)
  | _ ->
    let e = parse_expr st in
    expect st Token.SEMI;
    Ast.Expr e

let parse_params st =
  expect st Token.LPAREN;
  if peek st = Token.RPAREN then begin advance st; [] end
  else if peek st = Token.KW_VOID && peek2 st = Token.RPAREN then begin
    advance st; advance st; []
  end
  else begin
    let rec go acc =
      let ty = parse_type st in
      let name = expect_ident st in
      (* array parameters — written [int a[8]] — decay to pointers, as
         in C; the size, if any, is parsed and discarded *)
      let ty =
        if peek st = Token.LBRACKET then begin
          advance st;
          (match peek st with
           | Token.INT_LIT _ -> advance st
           | _ -> ());
          expect st Token.RBRACKET;
          Ast.Tptr ty
        end
        else match ty with Ast.Tarray (t, _) -> Ast.Tptr t | t -> t
      in
      if peek st = Token.COMMA then begin
        advance st;
        go ((ty, name) :: acc)
      end
      else List.rev ((ty, name) :: acc)
    in
    let params = go [] in
    expect st Token.RPAREN;
    params
  end

let parse_global st =
  let ty = parse_type st in
  let name = expect_ident st in
  if peek st = Token.LPAREN then begin
    let params = parse_params st in
    expect st Token.LBRACE;
    let rec go acc =
      if peek st = Token.RBRACE then begin
        advance st;
        List.rev acc
      end
      else go (parse_stmt st :: acc)
    in
    let body = go [] in
    Ast.Gfunc { Ast.ret = ty; name; params; body }
  end
  else begin
    (* re-use declaration tail for the array suffix / initialiser *)
    let ty =
      if peek st = Token.LBRACKET then begin
        advance st;
        let n =
          match peek st with
          | Token.INT_LIT n -> advance st; n
          | t -> error st "expected array size but found '%s'"
                   (Token.to_string t)
        in
        expect st Token.RBRACKET;
        Ast.Tarray (ty, n)
      end
      else ty
    in
    let init =
      if peek st = Token.ASSIGN then begin
        advance st;
        Some (parse_assign st)
      end
      else None
    in
    expect st Token.SEMI;
    Ast.Gvar (ty, name, init)
  end

(* Parse a complete translation unit. *)
let parse_program src =
  let st = { buf = Lexer.scan src; pos = 0 } in
  let rec go acc =
    if peek st = Token.EOF then List.rev acc
    else go (parse_global st :: acc)
  in
  go []
