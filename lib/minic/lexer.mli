(** Table-driven scanner for mini-C: //- and /* */ comments, decimal and
    hex integer literals, floating literals, character and string
    literals with the common escapes including [\xNN].

    One pass over the contiguous source string through a 256-entry
    character-class table, producing pointer-length (offset + length)
    tokens in flat growable arrays. No per-character allocation;
    identifiers and keywords are interned per scan, so each distinct
    spelling is boxed and keyword-tested once. Token stream, error
    messages, and line numbers are pinned byte-for-byte to
    {!Lexer_reference} (the original list-building lexer) by the
    equivalence oracle in test_minic.ml and the [bench --frontend]
    A/B gate. *)

exception Lex_error of string * int  (** message, line *)

(** A scanned source buffer: the flat token arrays the parser indexes
    directly. The last token is always [EOF]. *)
type buf

(** Scan a full source string.
    @raise Lex_error with the offending line number. *)
val scan : string -> buf

(** Number of tokens scanned, including the final [EOF]. *)
val count : buf -> int

(** [token b i] is the [i]th token, or [EOF] past the end. *)
val token : buf -> int -> Token.t

(** [line_at b i] is the source line of the [i]th token, or [0] past
    the end — the same convention the parser's error reporting always
    had. *)
val line_at : buf -> int -> int

(** Byte offset of the [i]th token's first character in the source
    (the pointer half of the pointer-length representation). *)
val offset : buf -> int -> int

(** Byte length of the [i]th token's spelling. *)
val length_at : buf -> int -> int

(** Tokenise a full source string; the result always ends with [EOF].
    A compatibility wrapper over {!scan} for list-shaped consumers.
    @raise Lex_error with the offending line number. *)
val tokenize : string -> Token.located list
