(* The original list-building lexer, kept verbatim as the reference
   implementation for the table-driven scanner in [Lexer]. The token
   equivalence oracle (test/test_minic.ml) and the frontend benchmark's
   A/B gate (bench --frontend) both lex through this module and compare
   against [Lexer.tokenize]; it is not on any production path. *)

exception Lex_error of string * int (* message, line *)

let error line fmt =
  Printf.ksprintf (fun msg -> raise (Lex_error (msg, line))) fmt

let keyword_table =
  [
    ("int", Token.KW_INT); ("char", Token.KW_CHAR);
    ("double", Token.KW_DOUBLE); ("float", Token.KW_DOUBLE);
    ("void", Token.KW_VOID); ("if", Token.KW_IF); ("else", Token.KW_ELSE);
    ("while", Token.KW_WHILE); ("for", Token.KW_FOR);
    ("return", Token.KW_RETURN); ("break", Token.KW_BREAK);
    ("continue", Token.KW_CONTINUE); ("sizeof", Token.KW_SIZEOF);
  ]

let is_digit c = c >= '0' && c <= '9'
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

type state = { src : string; mutable pos : int; mutable line : int }

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with Some '\n' -> st.line <- st.line + 1 | _ -> ());
  st.pos <- st.pos + 1

let rec skip_ws_and_comments st =
  match peek st, peek2 st with
  | Some (' ' | '\t' | '\r' | '\n'), _ ->
    advance st;
    skip_ws_and_comments st
  | Some '/', Some '/' ->
    while peek st <> None && peek st <> Some '\n' do advance st done;
    skip_ws_and_comments st
  | Some '/', Some '*' ->
    advance st; advance st;
    let rec close () =
      match peek st, peek2 st with
      | Some '*', Some '/' -> advance st; advance st
      | None, _ -> error st.line "unterminated comment"
      | _ -> advance st; close ()
    in
    close ();
    skip_ws_and_comments st
  | _ -> ()

let hex_digit st c =
  if is_digit c then Char.code c - Char.code '0'
  else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
  else if c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
  else error st.line "bad hex digit '%c' in escape" c

(* [escape] is called with the character after the backslash already
   consumed; \xNN consumes two further hex digits. *)
let escape st = function
  | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
  | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
  | 'x' ->
    let h1 = match peek st with
      | Some c -> advance st; hex_digit st c
      | None -> error st.line "unterminated \\x escape"
    in
    let h2 = match peek st with
      | Some c -> advance st; hex_digit st c
      | None -> error st.line "unterminated \\x escape"
    in
    Char.chr ((h1 * 16) + h2)
  | c -> error st.line "unknown escape '\\%c'" c

let lex_number st =
  let start = st.pos in
  if peek st = Some '0' && (peek2 st = Some 'x' || peek2 st = Some 'X') then begin
    advance st; advance st;
    let hstart = st.pos in
    while (match peek st with Some c -> is_hex c | None -> false) do
      advance st
    done;
    if st.pos = hstart then error st.line "empty hex literal";
    Token.INT_LIT (int_of_string ("0x" ^ String.sub st.src hstart (st.pos - hstart)))
  end
  else begin
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    let is_float =
      match peek st, peek2 st with
      | Some '.', Some c when is_digit c -> true
      | Some '.', _ -> true
      | Some ('e' | 'E'), _ -> true
      | _ -> false
    in
    if is_float then begin
      if peek st = Some '.' then begin
        advance st;
        while (match peek st with Some c -> is_digit c | None -> false) do
          advance st
        done
      end;
      (match peek st with
       | Some ('e' | 'E') ->
         advance st;
         (match peek st with
          | Some ('+' | '-') -> advance st
          | _ -> ());
         while (match peek st with Some c -> is_digit c | None -> false) do
           advance st
         done
       | _ -> ());
      Token.FLOAT_LIT (float_of_string (String.sub st.src start (st.pos - start)))
    end
    else Token.INT_LIT (int_of_string (String.sub st.src start (st.pos - start)))
  end

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match List.assoc_opt s keyword_table with
  | Some kw -> kw
  | None -> Token.IDENT s

let lex_char_lit st =
  advance st; (* opening quote *)
  let c =
    match peek st with
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some e -> advance st; escape st e
       | None -> error st.line "unterminated char literal")
    | Some c -> advance st; c
    | None -> error st.line "unterminated char literal"
  in
  (match peek st with
   | Some '\'' -> advance st
   | _ -> error st.line "unterminated char literal");
  Token.CHAR_LIT c

let lex_str_lit st =
  advance st; (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
       | Some e -> advance st; Buffer.add_char buf (escape st e); go ()
       | None -> error st.line "unterminated string literal")
    | Some c -> advance st; Buffer.add_char buf c; go ()
    | None -> error st.line "unterminated string literal"
  in
  go ();
  Token.STR_LIT (Buffer.contents buf)

(* Operators and punctuation; longest match first. *)
let lex_symbol st =
  let two tok = advance st; advance st; tok in
  let one tok = advance st; tok in
  match peek st, peek2 st with
  | Some '+', Some '+' -> two Token.PLUSPLUS
  | Some '-', Some '-' -> two Token.MINUSMINUS
  | Some '+', Some '=' -> two Token.PLUS_ASSIGN
  | Some '-', Some '=' -> two Token.MINUS_ASSIGN
  | Some '*', Some '=' -> two Token.STAR_ASSIGN
  | Some '/', Some '=' -> two Token.SLASH_ASSIGN
  | Some '%', Some '=' -> two Token.PERCENT_ASSIGN
  | Some '<', Some '<' -> two Token.SHL
  | Some '>', Some '>' -> two Token.SHR
  | Some '<', Some '=' -> two Token.LE
  | Some '>', Some '=' -> two Token.GE
  | Some '=', Some '=' -> two Token.EQEQ
  | Some '!', Some '=' -> two Token.NEQ
  | Some '&', Some '&' -> two Token.ANDAND
  | Some '|', Some '|' -> two Token.OROR
  | Some '+', _ -> one Token.PLUS
  | Some '-', _ -> one Token.MINUS
  | Some '*', _ -> one Token.STAR
  | Some '/', _ -> one Token.SLASH
  | Some '%', _ -> one Token.PERCENT
  | Some '&', _ -> one Token.AMP
  | Some '|', _ -> one Token.PIPE
  | Some '^', _ -> one Token.CARET
  | Some '~', _ -> one Token.TILDE
  | Some '<', _ -> one Token.LT
  | Some '>', _ -> one Token.GT
  | Some '=', _ -> one Token.ASSIGN
  | Some '!', _ -> one Token.BANG
  | Some '(', _ -> one Token.LPAREN
  | Some ')', _ -> one Token.RPAREN
  | Some '{', _ -> one Token.LBRACE
  | Some '}', _ -> one Token.RBRACE
  | Some '[', _ -> one Token.LBRACKET
  | Some ']', _ -> one Token.RBRACKET
  | Some ';', _ -> one Token.SEMI
  | Some ',', _ -> one Token.COMMA
  | Some '?', _ -> one Token.QUESTION
  | Some ':', _ -> one Token.COLON
  | Some c, _ -> error st.line "unexpected character '%c'" c
  | None, _ -> Token.EOF

let next_token st =
  skip_ws_and_comments st;
  let line = st.line in
  let tok =
    match peek st with
    | None -> Token.EOF
    | Some c when is_digit c -> lex_number st
    | Some c when is_ident_start c -> lex_ident st
    | Some '\'' -> lex_char_lit st
    | Some '"' -> lex_str_lit st
    | Some _ -> lex_symbol st
  in
  { Token.tok; line }

(* Tokenise a full source string. *)
let tokenize src =
  let st = { src; pos = 0; line = 1 } in
  let rec go acc =
    let t = next_token st in
    if t.Token.tok = Token.EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
