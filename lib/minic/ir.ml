(* The typed intermediate representation: the AST after name resolution,
   type checking, implicit-conversion insertion, and loop numbering.
   This is the single input shared by all three code generators, mirroring
   the paper's setup where BCC and Cash share one GCC front end. *)

type storage =
  | Global_var
  | Local_var
  | Param

type sym = {
  id : int;            (* unique across the program *)
  name : string;
  ty : Ast.ty;
  storage : storage;
}

let sym_equal a b = a.id = b.id

type builtin =
  | Bmalloc
  | Bfree
  | Bprint_int
  | Bprint_char
  | Bprint_float
  | Brand
  | Bsrand
  | Bserver_ready
      (* marks the boundary between server init and request handling
         (the simulated accept(2)); the snapshot harness warm-starts
         request jobs from a checkpoint taken here *)
  | Bsqrt
  | Bmath1 of string (* sin, cos, exp, log, atan, fabs, floor *)
  | Bmath2 of string (* pow *)

type texpr = { ty : Ast.ty; e : te }

and te =
  | Tint_lit of int
  | Tfloat_lit of float
  | Tstr_lit of int (* index into the program string table *)
  | Tvar of sym
  | Tindex of texpr * texpr        (* pointer-typed base, int index *)
  | Tderef of texpr
  | Taddr of texpr                 (* &lvalue *)
  | Tunop of Ast.unop * texpr
  | Tbinop of Ast.binop * texpr * texpr
  | Tland of texpr * texpr
  | Tlor of texpr * texpr
  | Tcond of texpr * texpr * texpr
  | Tassign of texpr * texpr       (* lvalue, rvalue *)
  | Tincdec of Ast.incdec_pos * Ast.incdec_op * texpr
  | Tcall of sym * texpr list      (* user function *)
  | Tbuiltin of builtin * texpr list
  | Tcast of Ast.ty * texpr
  | Tsizeof of Ast.ty (* resolved at codegen: pointer width is per-backend *)

type loop_info = { loop_id : int }

type tstmt =
  | Sexpr of texpr
  | Sdecl of sym * texpr option
  | Sif of texpr * tstmt * tstmt option
  | Swhile of loop_info * texpr * tstmt
  | Sfor of loop_info * tstmt option * texpr option * texpr option * tstmt
  | Sreturn of texpr option
  | Sblock of tstmt list
  | Sbreak
  | Scontinue
  | Sempty

type tfunc = {
  fsym : sym;          (* ty = return type *)
  params : sym list;
  locals : sym list;   (* every block-scoped declaration, flattened *)
  body : tstmt list;
}

type const = Cint of int | Cfloat of float

type tprog = {
  globals : (sym * const option) list;
  strings : string array;
  funcs : tfunc list;
}

(* Is this expression an lvalue (has an address)? *)
let rec is_lvalue e =
  match e.e with
  | Tvar _ | Tindex _ | Tderef _ -> true
  | Tcast (_, inner) -> is_lvalue inner
  | _ -> false

let find_func prog name =
  List.find_opt (fun f -> f.fsym.name = name) prog.funcs
