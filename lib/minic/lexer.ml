(* A table-driven scanner for mini-C: one pass over the contiguous
   source string, classifying bytes through a 256-entry character-class
   table and appending pointer-length (offset + length) tokens to flat
   growable arrays.

   The previous lexer (kept verbatim in [Lexer_reference]) boxed a
   [char option] for every character peeked and consed a
   [Token.located] per token; at fleet scale (10^5-10^6 generated
   programs per sweep) that allocation dominated frontend time. This
   scanner allocates nothing per character and nothing per occurrence
   of an identifier, keyword, or punctuation token: identifiers are
   resolved by hashing the source region into a per-scan intern table
   and compared in place, so each distinct spelling is materialised
   (and its keyword test run) exactly once. Only literal payloads
   (INT_LIT boxes, string/float contents) still allocate.

   Behaviour is pinned to the reference lexer byte for byte: same
   token stream, same [Lex_error] messages, same line numbers —
   including the corner cases (a line counted when a newline is
   consumed inside a comment or string literal, '.' after digits
   always starting a float, hex literals wrapping exactly like
   [int_of_string "0x..."]). The equivalence oracle in test_minic.ml
   and the [bench --frontend] A/B gate hold the two implementations
   together. *)

exception Lex_error of string * int (* message, line *)

let error line fmt =
  Printf.ksprintf (fun msg -> raise (Lex_error (msg, line))) fmt

(* --- character classes --------------------------------------------------- *)

let c_ws = 1          (* space, tab, CR, LF *)
let c_digit = 2
let c_ident_start = 4 (* letter or underscore *)
let c_ident = 8       (* ident_start or digit *)
let c_hex = 16

let classes =
  let t = Array.make 256 0 in
  let add c bit = t.(Char.code c) <- t.(Char.code c) lor bit in
  List.iter (fun c -> add c c_ws) [ ' '; '\t'; '\r'; '\n' ];
  for c = Char.code '0' to Char.code '9' do
    t.(c) <- t.(c) lor c_digit lor c_ident lor c_hex
  done;
  let ident_start c = t.(Char.code c) <- t.(Char.code c)
                                         lor c_ident_start lor c_ident in
  for c = Char.code 'a' to Char.code 'z' do ident_start (Char.chr c) done;
  for c = Char.code 'A' to Char.code 'Z' do ident_start (Char.chr c) done;
  ident_start '_';
  for c = Char.code 'a' to Char.code 'f' do t.(c) <- t.(c) lor c_hex done;
  for c = Char.code 'A' to Char.code 'F' do t.(c) <- t.(c) lor c_hex done;
  t

let[@inline] cls c = Array.unsafe_get classes (Char.code c)
let[@inline] is_class c bit = cls c land bit <> 0

(* --- the token buffer ---------------------------------------------------- *)

(* Parallel flat arrays, doubled on demand: resolved token, byte offset
   of the token's first character, byte length, and source line. The
   parser indexes these directly instead of walking a list. *)
type buf = {
  src : string;
  mutable toks : Token.t array;
  mutable offs : int array;
  mutable lens : int array;
  mutable line_nos : int array;
  mutable n : int;
}

let count b = b.n
let token b i = if i < b.n then Array.unsafe_get b.toks i else Token.EOF
let line_at b i = if i < b.n then Array.unsafe_get b.line_nos i else 0
let offset b i = if i < b.n then Array.unsafe_get b.offs i else String.length b.src
let length_at b i = if i < b.n then Array.unsafe_get b.lens i else 0

let grow b =
  let cap = Array.length b.toks in
  let cap' = cap * 2 in
  let g a fill = let a' = Array.make cap' fill in Array.blit a 0 a' 0 cap; a' in
  b.toks <- g b.toks Token.EOF;
  b.offs <- g b.offs 0;
  b.lens <- g b.lens 0;
  b.line_nos <- g b.line_nos 0

let[@inline] push b tok off len line =
  if b.n = Array.length b.toks then grow b;
  let i = b.n in
  Array.unsafe_set b.toks i tok;
  Array.unsafe_set b.offs i off;
  Array.unsafe_set b.lens i len;
  Array.unsafe_set b.line_nos i line;
  b.n <- i + 1

(* --- identifier interning ------------------------------------------------ *)

(* Open-addressing table from source region to resolved token. A probe
   hashes the region and compares it against the stored spelling in
   place — no allocation on a hit. On a miss the spelling is cut out
   once, put through the keyword decision tree (an OCaml string match
   compiles to length dispatch + character tests, not a list scan), and
   the resulting token — shared KW constructor or a single IDENT box —
   is stored for every later occurrence. *)
type intern = {
  mutable names : string array;   (* "" = empty slot *)
  mutable itoks : Token.t array;
  mutable mask : int;             (* capacity - 1; capacity a power of 2 *)
  mutable used : int;
}

let intern_create () =
  { names = Array.make 64 ""; itoks = Array.make 64 Token.EOF;
    mask = 63; used = 0 }

let region_hash src off len =
  let h = ref 0x811c9dc5 in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (String.unsafe_get src i)) * 0x01000193
         land max_int
  done;
  !h

let region_equal src off len name =
  String.length name = len
  && (let i = ref 0 in
      while !i < len
            && String.unsafe_get name !i = String.unsafe_get src (off + !i) do
        incr i
      done;
      !i = len)

(* mini-C keywords, plus the historical alias float = double. *)
let keyword_or_ident s =
  match s with
  | "int" -> Token.KW_INT
  | "char" -> Token.KW_CHAR
  | "double" | "float" -> Token.KW_DOUBLE
  | "void" -> Token.KW_VOID
  | "if" -> Token.KW_IF
  | "else" -> Token.KW_ELSE
  | "while" -> Token.KW_WHILE
  | "for" -> Token.KW_FOR
  | "return" -> Token.KW_RETURN
  | "break" -> Token.KW_BREAK
  | "continue" -> Token.KW_CONTINUE
  | "sizeof" -> Token.KW_SIZEOF
  | _ -> Token.IDENT s

let rec intern_grow it =
  let names = it.names and itoks = it.itoks in
  let cap' = (it.mask + 1) * 2 in
  it.names <- Array.make cap' "";
  it.itoks <- Array.make cap' Token.EOF;
  it.mask <- cap' - 1;
  it.used <- 0;
  Array.iteri
    (fun i name ->
      if name <> "" then intern_insert it name itoks.(i))
    names

and intern_insert it name tok =
  if it.used * 2 > it.mask then intern_grow it;
  let h = region_hash name 0 (String.length name) in
  let j = ref (h land it.mask) in
  while it.names.(!j) <> "" do j := (!j + 1) land it.mask done;
  it.names.(!j) <- name;
  it.itoks.(!j) <- tok;
  it.used <- it.used + 1

let intern it src off len =
  let h = region_hash src off len in
  let j = ref (h land it.mask) in
  let result = ref Token.EOF and found = ref false in
  while not !found do
    let name = Array.unsafe_get it.names (!j land it.mask) in
    if name = "" then begin
      let s = String.sub src off len in
      let tok = keyword_or_ident s in
      intern_insert it s tok;
      result := tok;
      found := true
    end
    else if region_equal src off len name then begin
      result := Array.unsafe_get it.itoks (!j land it.mask);
      found := true
    end
    else j := !j + 1
  done;
  !result

(* --- the scanner --------------------------------------------------------- *)

(* Decimal accumulation overflows into [int_of_string] on the substring,
   which raises the same [Failure] the reference lexer did for
   out-of-range literals. *)
let dec_guard = max_int / 10 - 1

let scan src =
  let slen = String.length src in
  let b = {
    src;
    toks = Array.make 256 Token.EOF;
    offs = Array.make 256 0;
    lens = Array.make 256 0;
    line_nos = Array.make 256 0;
    n = 0;
  } in
  let it = intern_create () in
  let pos = ref 0 and line = ref 1 in
  let at i = String.unsafe_get src i in
  (* Consume one character that may be a newline (comments, string and
     char literal bodies) — the line counter moves exactly where the
     reference lexer's [advance] moved it. *)
  let adv1 () =
    if at !pos = '\n' then incr line;
    incr pos
  in
  let hex_digit c =
    if c >= '0' && c <= '9' then Char.code c - Char.code '0'
    else if c >= 'a' && c <= 'f' then Char.code c - Char.code 'a' + 10
    else if c >= 'A' && c <= 'F' then Char.code c - Char.code 'A' + 10
    else error !line "bad hex digit '%c' in escape" c
  in
  (* Called with the character after the backslash already consumed;
     \xNN consumes two further hex digits. *)
  let escape e =
    match e with
    | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
    | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
    | 'x' ->
      let h1 =
        if !pos < slen then (let c = at !pos in adv1 (); hex_digit c)
        else error !line "unterminated \\x escape"
      in
      let h2 =
        if !pos < slen then (let c = at !pos in adv1 (); hex_digit c)
        else error !line "unterminated \\x escape"
      in
      Char.chr ((h1 * 16) + h2)
    | c -> error !line "unknown escape '\\%c'" c
  in
  let skip_ws_and_comments () =
    let continue = ref true in
    while !continue do
      if !pos >= slen then continue := false
      else
        let c = at !pos in
        if is_class c c_ws then adv1 ()
        else if c = '/' && !pos + 1 < slen && at (!pos + 1) = '/' then
          while !pos < slen && at !pos <> '\n' do incr pos done
        else if c = '/' && !pos + 1 < slen && at (!pos + 1) = '*' then begin
          pos := !pos + 2;
          let closed = ref false in
          while not !closed do
            if !pos + 1 < slen && at !pos = '*' && at (!pos + 1) = '/' then begin
              pos := !pos + 2;
              closed := true
            end
            else if !pos >= slen then error !line "unterminated comment"
            else adv1 ()
          done
        end
        else continue := false
    done
  in
  let lex_number () =
    let start = !pos in
    if at !pos = '0' && !pos + 1 < slen
       && (at (!pos + 1) = 'x' || at (!pos + 1) = 'X') then begin
      pos := !pos + 2;
      let hstart = !pos in
      while !pos < slen && is_class (at !pos) c_hex do incr pos done;
      if !pos = hstart then error !line "empty hex literal";
      (* [int_of_string "0x..."] accepts the full unsigned range and
         wraps; delegate rather than re-implement that boundary. *)
      Token.INT_LIT
        (int_of_string ("0x" ^ String.sub src hstart (!pos - hstart)))
    end
    else begin
      let acc = ref 0 and overflow = ref false in
      while !pos < slen && is_class (at !pos) c_digit do
        if !acc > dec_guard then overflow := true
        else acc := (!acc * 10) + (Char.code (at !pos) - Char.code '0');
        incr pos
      done;
      let is_float =
        !pos < slen && (at !pos = '.' || at !pos = 'e' || at !pos = 'E')
      in
      if is_float then begin
        if !pos < slen && at !pos = '.' then begin
          incr pos;
          while !pos < slen && is_class (at !pos) c_digit do incr pos done
        end;
        if !pos < slen && (at !pos = 'e' || at !pos = 'E') then begin
          incr pos;
          if !pos < slen && (at !pos = '+' || at !pos = '-') then incr pos;
          while !pos < slen && is_class (at !pos) c_digit do incr pos done
        end;
        Token.FLOAT_LIT (float_of_string (String.sub src start (!pos - start)))
      end
      else if !overflow then
        Token.INT_LIT (int_of_string (String.sub src start (!pos - start)))
      else Token.INT_LIT !acc
    end
  in
  let lex_ident () =
    let start = !pos in
    while !pos < slen && is_class (at !pos) c_ident do incr pos done;
    intern it src start (!pos - start)
  in
  let lex_char_lit () =
    incr pos; (* opening quote *)
    let c =
      if !pos >= slen then error !line "unterminated char literal"
      else if at !pos = '\\' then begin
        incr pos;
        if !pos >= slen then error !line "unterminated char literal";
        let e = at !pos in
        adv1 ();
        escape e
      end
      else (let c = at !pos in adv1 (); c)
    in
    if !pos < slen && at !pos = '\'' then incr pos
    else error !line "unterminated char literal";
    Token.CHAR_LIT c
  in
  let lex_str_lit () =
    incr pos; (* opening quote *)
    let sbuf = Buffer.create 16 in
    let closed = ref false in
    while not !closed do
      if !pos >= slen then error !line "unterminated string literal";
      let c = at !pos in
      if c = '"' then begin incr pos; closed := true end
      else if c = '\\' then begin
        incr pos;
        if !pos >= slen then error !line "unterminated string literal";
        let e = at !pos in
        adv1 ();
        Buffer.add_char sbuf (escape e)
      end
      else begin
        adv1 ();
        Buffer.add_char sbuf c
      end
    done;
    Token.STR_LIT (Buffer.contents sbuf)
  in
  (* Operators and punctuation; longest match first. *)
  let lex_symbol c =
    let nxt = if !pos + 1 < slen then at (!pos + 1) else '\000' in
    let two tok = pos := !pos + 2; tok in
    let one tok = incr pos; tok in
    match c with
    | '+' ->
      if nxt = '+' then two Token.PLUSPLUS
      else if nxt = '=' then two Token.PLUS_ASSIGN
      else one Token.PLUS
    | '-' ->
      if nxt = '-' then two Token.MINUSMINUS
      else if nxt = '=' then two Token.MINUS_ASSIGN
      else one Token.MINUS
    | '*' -> if nxt = '=' then two Token.STAR_ASSIGN else one Token.STAR
    | '/' -> if nxt = '=' then two Token.SLASH_ASSIGN else one Token.SLASH
    | '%' -> if nxt = '=' then two Token.PERCENT_ASSIGN else one Token.PERCENT
    | '<' ->
      if nxt = '<' then two Token.SHL
      else if nxt = '=' then two Token.LE
      else one Token.LT
    | '>' ->
      if nxt = '>' then two Token.SHR
      else if nxt = '=' then two Token.GE
      else one Token.GT
    | '=' -> if nxt = '=' then two Token.EQEQ else one Token.ASSIGN
    | '!' -> if nxt = '=' then two Token.NEQ else one Token.BANG
    | '&' -> if nxt = '&' then two Token.ANDAND else one Token.AMP
    | '|' -> if nxt = '|' then two Token.OROR else one Token.PIPE
    | '^' -> one Token.CARET
    | '~' -> one Token.TILDE
    | '(' -> one Token.LPAREN
    | ')' -> one Token.RPAREN
    | '{' -> one Token.LBRACE
    | '}' -> one Token.RBRACE
    | '[' -> one Token.LBRACKET
    | ']' -> one Token.RBRACKET
    | ';' -> one Token.SEMI
    | ',' -> one Token.COMMA
    | '?' -> one Token.QUESTION
    | ':' -> one Token.COLON
    | c -> error !line "unexpected character '%c'" c
  in
  let eof = ref false in
  while not !eof do
    skip_ws_and_comments ();
    let tline = !line in
    if !pos >= slen then begin
      push b Token.EOF slen 0 tline;
      eof := true
    end
    else begin
      let start = !pos in
      let c = at !pos in
      let k = cls c in
      let tok =
        if k land c_digit <> 0 then lex_number ()
        else if k land c_ident_start <> 0 then lex_ident ()
        else if c = '\'' then lex_char_lit ()
        else if c = '"' then lex_str_lit ()
        else lex_symbol c
      in
      push b tok start (!pos - start) tline
    end
  done;
  b

(* Tokenise a full source string — the list interface the rest of the
   system (and the equivalence oracle) consumes. *)
let tokenize src =
  let b = scan src in
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        ({ Token.tok = Array.unsafe_get b.toks i;
           line = Array.unsafe_get b.line_nos i }
         :: acc)
  in
  go (b.n - 1) []
