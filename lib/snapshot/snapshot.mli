(** Deterministic whole-machine checkpoint/restore.

    A snapshot is a versioned binary image of the complete simulator
    state of one process: CPU registers, EIP, flags, cycle and retired
    counters, the six segment registers {e including their hidden
    descriptor caches}, the GDT and the per-process LDT, the page
    tables and frame allocator, the TLB (entries plus its [gen]
    counter), sparse page-granular physical memory, the kernel's clock
    and statistics, the libc allocator/output state, the protection
    hardware of the MPX and capability backends (bounds registers, the
    two-level bound table, the capability table — version 2), and —
    for Cash programs — the runtime's segment pool and reuse cache.

    Encoding is byte-stable: saving the same machine state twice
    yields identical bytes (hashtable-backed structures are serialized
    in sorted key order), so {!digest} is an equality oracle — two
    machines are in the same state iff their snapshots digest equally.
    The engine is deliberately {e not} part of the image: all three
    engines produce bit-identical machine state, so a snapshot taken
    under one engine restores under any other (the cross-engine resume
    oracle in the test suite pins this).

    The image does not embed the program (programs are immutable and
    compiled deterministically from source); it embeds a digest of the
    program so {!restore} can reject a mismatched one. *)

type error =
  | Truncated of string   (** ran off the end of the image *)
  | Bad_magic             (** not a snapshot *)
  | Bad_version of int    (** produced by an incompatible format *)
  | Program_mismatch      (** restored against a different program *)
  | Corrupt of string     (** structurally invalid contents *)

exception Error of error

val error_to_string : error -> string

(** Format version written by {!save}. {!restore} additionally accepts
    version-1 images (which predate the MPX/capability protection
    section); their protection state restores zero-initialized. *)
val version : int

(** Digest of the program identity embedded in every snapshot (code,
    data layout, and entry point). *)
val program_digest : Machine.Program.t -> string

(** Serialize the complete state of [process] (plus its Cash runtime,
    when given). The process must not be mid-instruction: call between
    {!Machine.Cpu.step}s or after {!Machine.Cpu.run} returns.
    [format_version] defaults to the current {!version}; pass [1] to
    write a legacy image without the protection-hardware section — it
    exists only for the back-compatibility oracle in the test suite.
    @raise Invalid_argument on an unwritable format version. *)
val save :
  ?format_version:int -> ?runtime:Cashrt.Runtime.t -> Osim.Process.t ->
  Buffer.t

(** Rebuild a process (fresh kernel, LDT, MMU, physical memory, CPU,
    libc — and the Cash runtime iff the image carries its section)
    and overwrite its state with the image. The kernel uses the
    default cost model, as every harness experiment does.
    [engine] picks the CPU interpreter; it defaults to
    [Machine.Cpu.Predecoded] and need not match the saving engine.
    @raise Error on truncated, corrupt, or mismatched images. *)
val restore :
  ?engine:Machine.Cpu.engine -> program:Machine.Program.t -> bytes ->
  Osim.Process.t * Cashrt.Runtime.t option

(** Re-parse an image directly into an existing machine — the pooled
    executor's allocation-free restore. The process must have been
    loaded with (a program digest-equal to) [program]; its register
    files, descriptor tables, page tables, and TLB are overwritten in
    place, and physical memory is blitted into the existing bytes with
    the previous occupant's tail scrubbed — no large-object allocation
    when the reused buffer is big enough. The scrub also repairs a
    machine left [Faulted], [Halted], or mid-superblock by its previous
    run: [Machine.Cpu.import_state] overwrites the status and resets
    every derived fast path, so the result is byte-identical (by
    {!state_digest}) to a fresh {!restore} of the same image, under any
    engine. Compiled superblock closures survive reuse (they are a
    derived cache keyed by the unchanged program).

    Pass [runtime] to reuse the machine's Cash runtime when the image
    carries a runtime section of the same pool capacity; otherwise a
    fresh runtime is attached. Returns the runtime now wired to the
    machine ([None] for images without a runtime section).

    The accepted image formats match {!restore} exactly (current
    version plus version-1 back-compatibility): anything {!restore}
    loads, [restore_into] loads, and vice versa.

    @raise Error as {!restore}; additionally [Program_mismatch] when
    the process is running a different program. On any [Error] the
    reused machine is left half-scrubbed and must be discarded, not
    returned to a pool. *)
val restore_into :
  ?runtime:Cashrt.Runtime.t -> program:Machine.Program.t ->
  Osim.Process.t -> bytes -> Cashrt.Runtime.t option

(** MD5 hex of an image — the byte-stable state-equality oracle. *)
val digest : bytes -> string

(** [save] then [digest], for assertions. *)
val state_digest : ?runtime:Cashrt.Runtime.t -> Osim.Process.t -> string

(** {2 Checkpoint placement helpers} *)

(** Step the process until the external named [marker] (default
    ["server_ready"]) fires, at most [max_insns] instructions
    (default 200 million). Because [Callext] terminates a superblock,
    the instruction after the marker is a block start — so a snapshot
    taken here is block-aligned by construction, and a [Block]-engine
    restore re-enters at full speed. The marker external is left
    registered as a no-op (byte-identical behaviour to libc's
    default). Returns [true] if the marker fired, [false] if the
    process halted, faulted, or ran out of the instruction budget
    first. *)
val run_to_marker :
  ?marker:string -> ?max_insns:int -> Osim.Process.t -> bool

(** Step the process forward until EIP rests on a superblock boundary
    (deterministic: the block partition is a property of the linked
    program, not of the engine). Returns the number of instructions
    stepped — 0 when already aligned. Stops early if the process
    leaves the [Running] state. *)
val align_to_block : Osim.Process.t -> int
