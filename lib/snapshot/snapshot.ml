(* Deterministic whole-machine checkpoint/restore.

   The image is a flat sequence of tagged sections, each serialized
   with three primitives (8-byte little-endian signed integers, single
   bytes for booleans/tags, and length-prefixed strings). Everything
   iterated from a hashtable is listed in sorted key order, so saving
   the same machine state twice yields identical bytes and the MD5 of
   an image is a state-equality oracle.

   What is NOT in the image, and why:

   - The program. Programs are immutable and compiled deterministically
     from source; the image embeds a digest of the program identity so
     [restore] can reject a mismatch, and [restore] takes the program
     as an argument.
   - The engine. All three engines produce bit-identical machine state,
     so a snapshot taken under one restores under any other — the
     cross-engine resume oracle in the test suite pins this.
   - Derived caches: the superblock closure set, the per-segment memory
     fast path, and the CPU's cost tables are rebuilt/invalidated by
     construction or by [Machine.Cpu.import_state].
   - Host wiring: the kernel entry closure and the libc/cashrt external
     closures are re-created by [Osim.Process.load] and
     [Cashrt.Runtime.attach] on restore. *)

type error =
  | Truncated of string
  | Bad_magic
  | Bad_version of int
  | Program_mismatch
  | Corrupt of string

exception Error of error

let error_to_string = function
  | Truncated what -> Printf.sprintf "truncated snapshot (reading %s)" what
  | Bad_magic -> "not a snapshot (bad magic)"
  | Bad_version v -> Printf.sprintf "unsupported snapshot version %d" v
  | Program_mismatch -> "snapshot was taken of a different program"
  | Corrupt what -> Printf.sprintf "corrupt snapshot: %s" what

let magic = "CASHSNAP"

(* Version 2 added the protection-hardware section (MPX bounds
   registers + bound table, capability table). Version-1 images are
   still accepted: they predate the new backends, so restoring one
   zero-initializes the protection state — exactly the state such a
   machine was in when saved. *)
let version = 2

(* Section tags, in image order. *)
let tag_kernel = 1
let tag_process = 2
let tag_cpu = 3
let tag_regs = 4
let tag_segregs = 5
let tag_gdt = 6
let tag_ldt = 7
let tag_paging = 8
let tag_tlb = 9
let tag_phys = 10
let tag_mmu = 11
let tag_libc = 12
let tag_runtime = 13
let tag_protection = 14
let tag_end = 0

(* --- writer primitives -------------------------------------------------- *)

let w_int b v = Buffer.add_int64_le b (Int64.of_int v)
let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))
let w_bool b v = w_u8 b (if v then 1 else 0)

let w_str b s =
  w_int b (String.length s);
  Buffer.add_string b s

let w_list b xs f =
  w_int b (List.length xs);
  List.iter (f b) xs

(* --- reader primitives -------------------------------------------------- *)

type reader = { data : string; mutable pos : int }

let need r n what =
  if r.pos + n > String.length r.data then raise (Error (Truncated what))

let r_int r what =
  need r 8 what;
  let v = Int64.to_int (String.get_int64_le r.data r.pos) in
  r.pos <- r.pos + 8;
  v

let r_u8 r what =
  need r 1 what;
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let r_bool r what =
  match r_u8 r what with
  | 0 -> false
  | 1 -> true
  | n -> raise (Error (Corrupt (Printf.sprintf "bad boolean %d in %s" n what)))

let r_str r what =
  let len = r_int r what in
  if len < 0 then
    raise (Error (Corrupt (Printf.sprintf "negative length in %s" what)));
  need r len what;
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let r_list r what f =
  let n = r_int r what in
  if n < 0 then
    raise (Error (Corrupt (Printf.sprintf "negative count in %s" what)));
  List.init n (fun _ -> f r)

let expect_tag r tag what =
  let got = r_u8 r what in
  if got <> tag then
    raise
      (Error
         (Corrupt
            (Printf.sprintf "expected section %d (%s), found %d" tag what got)))

(* --- program identity --------------------------------------------------- *)

(* Digest over the linked program's semantic content: instructions, data
   layout, and entry point. The derived arrays (targets, blocks, stat
   marks) are functions of these, so they need not be hashed. *)
let program_digest (p : Machine.Program.t) =
  Digest.to_hex
    (Digest.string
       (Marshal.to_string
          (p.Machine.Program.code, p.Machine.Program.data,
           p.Machine.Program.entry)
          []))

(* --- faults and status -------------------------------------------------- *)

let w_fault b (f : Seghw.Fault.t) =
  match f with
  | Seghw.Fault.General_protection m -> w_u8 b 0; w_str b m
  | Seghw.Fault.Stack_fault m -> w_u8 b 1; w_str b m
  | Seghw.Fault.Page_fault { linear; write } ->
    w_u8 b 2;
    w_int b linear;
    w_bool b write
  | Seghw.Fault.Not_present sel -> w_u8 b 3; w_int b sel
  | Seghw.Fault.Invalid_opcode m -> w_u8 b 4; w_str b m
  | Seghw.Fault.Bound_range m -> w_u8 b 5; w_str b m

let r_fault r =
  match r_u8 r "fault" with
  | 0 -> Seghw.Fault.General_protection (r_str r "fault")
  | 1 -> Seghw.Fault.Stack_fault (r_str r "fault")
  | 2 ->
    let linear = r_int r "fault" in
    let write = r_bool r "fault" in
    Seghw.Fault.Page_fault { linear; write }
  | 3 -> Seghw.Fault.Not_present (r_int r "fault")
  | 4 -> Seghw.Fault.Invalid_opcode (r_str r "fault")
  | 5 -> Seghw.Fault.Bound_range (r_str r "fault")
  | n -> raise (Error (Corrupt (Printf.sprintf "bad fault tag %d" n)))

let w_status b (s : Machine.Cpu.status) =
  match s with
  | Machine.Cpu.Running -> w_u8 b 0
  | Machine.Cpu.Halted -> w_u8 b 1
  | Machine.Cpu.Faulted f -> w_u8 b 2; w_fault b f

let r_status r =
  match r_u8 r "status" with
  | 0 -> Machine.Cpu.Running
  | 1 -> Machine.Cpu.Halted
  | 2 -> Machine.Cpu.Faulted (r_fault r)
  | n -> raise (Error (Corrupt (Printf.sprintf "bad status tag %d" n)))

(* --- save ---------------------------------------------------------------- *)

let w_descriptor_table b tbl =
  let entries = ref [] in
  Seghw.Descriptor_table.iteri
    (fun i d -> entries := (i, Seghw.Descriptor.encode d) :: !entries)
    tbl;
  (* [iteri] walks index-ascending; the fold reversed it. *)
  w_list b (List.rev !entries) (fun b (i, enc) ->
      w_int b i;
      w_str b enc)

let w_segreg b (sr : Seghw.Segreg.t) =
  w_int b (Seghw.Selector.to_int sr.Seghw.Segreg.selector);
  match sr.Seghw.Segreg.cache with
  | None -> w_bool b false
  | Some d ->
    w_bool b true;
    w_str b (Seghw.Descriptor.encode d)

let page_size = Seghw.Paging.page_size

let w_phys b (ph : Machine.Phys_mem.t) =
  let hw = ph.Machine.Phys_mem.high_water in
  let data = ph.Machine.Phys_mem.data in
  w_int b hw;
  let pages = ref [] in
  let n_pages = (hw + page_size - 1) / page_size in
  for p = n_pages - 1 downto 0 do
    let start = p * page_size in
    let len = min page_size (Bytes.length data - start) in
    let nonzero = ref false in
    let i = ref 0 in
    while (not !nonzero) && !i < len do
      if Bytes.unsafe_get data (start + !i) <> '\000' then nonzero := true;
      incr i
    done;
    if !nonzero then pages := (p, Bytes.sub_string data start len) :: !pages
  done;
  w_list b !pages (fun b (p, chunk) ->
      w_int b p;
      w_str b chunk)

let save ?(format_version = version) ?runtime process =
  if format_version <> 1 && format_version <> version then
    invalid_arg
      (Printf.sprintf "Snapshot.save: unwritable format version %d"
         format_version);
  let b = Buffer.create (1 lsl 16) in
  Buffer.add_string b magic;
  w_int b format_version;
  w_str b (program_digest (Osim.Process.program process));
  (* Kernel. *)
  w_u8 b tag_kernel;
  let k = Osim.Kernel.export_state (Osim.Process.kernel process) in
  w_int b k.Osim.Kernel.p_next_pid;
  w_int b k.Osim.Kernel.p_clock;
  w_int b k.Osim.Kernel.p_modify_ldt_calls;
  w_int b k.Osim.Kernel.p_cash_modify_ldt_calls;
  w_int b k.Osim.Kernel.p_descriptors_written;
  w_int b k.Osim.Kernel.p_descriptors_cleared;
  (* Process identity. *)
  w_u8 b tag_process;
  w_int b (Osim.Process.pid process);
  w_int b (Osim.Process.created_at process);
  w_int b (Osim.Process.terminated_at process);
  (* CPU execution state. *)
  w_u8 b tag_cpu;
  let cpu = Osim.Process.cpu process in
  let c = Machine.Cpu.export_state cpu in
  w_int b c.Machine.Cpu.p_eip;
  w_bool b c.Machine.Cpu.p_zf;
  w_bool b c.Machine.Cpu.p_sf;
  w_bool b c.Machine.Cpu.p_cf;
  w_bool b c.Machine.Cpu.p_ovf;
  w_int b c.Machine.Cpu.p_cycles;
  w_int b c.Machine.Cpu.p_insns_executed;
  w_status b c.Machine.Cpu.p_status;
  w_list b c.Machine.Cpu.p_stats (fun b (name, v) ->
      w_str b name;
      w_int b v);
  w_list b c.Machine.Cpu.p_prof_hits (fun b (site, hits) ->
      w_int b site;
      w_int b hits);
  (* Register files. *)
  w_u8 b tag_regs;
  let regs = Machine.Cpu.regs cpu in
  Array.iter (fun v -> w_int b v) regs.Machine.Registers.gp;
  Array.iter
    (fun v -> Buffer.add_int64_le b (Int64.bits_of_float v))
    regs.Machine.Registers.fp;
  (* Segment registers, visible selector + hidden descriptor cache. *)
  w_u8 b tag_segregs;
  let mmu = Osim.Process.mmu process in
  List.iter
    (fun name -> w_segreg b (Seghw.Mmu.seg mmu name))
    Seghw.Segreg.all_names;
  (* Descriptor tables. *)
  w_u8 b tag_gdt;
  w_descriptor_table b (Seghw.Mmu.gdt mmu);
  w_u8 b tag_ldt;
  w_descriptor_table b (Seghw.Mmu.ldt mmu);
  (* Page tables and frame allocator. *)
  w_u8 b tag_paging;
  let paging = Seghw.Mmu.paging mmu in
  w_int b (Seghw.Paging.frames_allocated paging);
  w_list b (Seghw.Paging.entries paging)
    (fun b (page, frame, present, writable) ->
      w_int b page;
      w_int b frame;
      w_bool b present;
      w_bool b writable);
  (* TLB: entries plus the generation counter the per-segment fast path
     validates against. *)
  w_u8 b tag_tlb;
  let tlb = Seghw.Mmu.tlb mmu in
  let size = tlb.Seghw.Tlb.mask + 1 in
  w_int b size;
  for i = 0 to size - 1 do
    w_int b tlb.Seghw.Tlb.tags.(i);
    w_int b tlb.Seghw.Tlb.frames.(i);
    w_bool b tlb.Seghw.Tlb.writable.(i)
  done;
  w_int b tlb.Seghw.Tlb.hits;
  w_int b tlb.Seghw.Tlb.misses;
  w_int b tlb.Seghw.Tlb.gen;
  (* Physical memory, sparse and page-granular. *)
  w_u8 b tag_phys;
  w_phys b (Osim.Process.phys process);
  (* MMU counters. *)
  w_u8 b tag_mmu;
  w_int b mmu.Seghw.Mmu.limit_checks;
  (* Protection hardware: MPX bounds registers + bound table, and the
     capability table (new in version 2; the v1 legacy writer exists
     only for the back-compatibility oracle in the test suite). *)
  if format_version >= 2 then begin
    w_u8 b tag_protection;
    let br = Seghw.Mmu.bndregs mmu in
    List.iter
      (fun (valid, lower, upper) ->
        w_bool b valid;
        w_int b lower;
        w_int b upper)
      (Seghw.Bound_regs.export_regs br);
    w_int b br.Seghw.Bound_regs.entries;
    w_int b br.Seghw.Bound_regs.loads;
    w_int b br.Seghw.Bound_regs.load_misses;
    w_int b br.Seghw.Bound_regs.stores;
    w_int b br.Seghw.Bound_regs.dir_allocs;
    w_int b br.Seghw.Bound_regs.evictions;
    w_list b (Seghw.Bound_regs.export_table br) (fun b (key, lo, up) ->
        w_int b key;
        w_int b lo;
        w_int b up);
    let ct = Seghw.Mmu.captab mmu in
    w_list b (Seghw.Captab.export ct) (fun b (lo, up) ->
        w_int b lo;
        w_int b up);
    w_int b ct.Seghw.Captab.checks;
    w_int b ct.Seghw.Captab.tag_clears
  end;
  (* libc. *)
  w_u8 b tag_libc;
  let l = Osim.Libc.export_state (Osim.Process.libc process) in
  w_int b l.Osim.Libc.p_brk;
  w_int b l.Osim.Libc.p_rand_state;
  w_int b l.Osim.Libc.p_bytes_allocated;
  w_int b l.Osim.Libc.p_peak_heap;
  w_bool b l.Osim.Libc.p_guard_malloc;
  w_int b l.Osim.Libc.p_guard_vm_bytes;
  w_str b l.Osim.Libc.p_output;
  w_list b l.Osim.Libc.p_free_lists (fun b (size, addrs) ->
      w_int b size;
      w_list b addrs w_int);
  w_list b l.Osim.Libc.p_alloc_sizes (fun b (addr, size) ->
      w_int b addr;
      w_int b size);
  (* Cash runtime, when attached. *)
  (match runtime with
   | None -> ()
   | Some rt ->
     w_u8 b tag_runtime;
     let r = Cashrt.Runtime.export_state rt in
     w_int b r.Cashrt.Runtime.p_pool.Cashrt.Segment_pool.p_capacity;
     w_list b r.Cashrt.Runtime.p_pool.Cashrt.Segment_pool.p_free w_int;
     w_int b r.Cashrt.Runtime.p_pool.Cashrt.Segment_pool.p_live;
     w_int b r.Cashrt.Runtime.p_pool.Cashrt.Segment_pool.p_peak_live;
     w_int b r.Cashrt.Runtime.p_pool.Cashrt.Segment_pool.p_exhausted_allocs;
     w_list b r.Cashrt.Runtime.p_cache.Cashrt.Seg_cache.p_entries
       (fun b (index, base, size) ->
         w_int b index;
         w_int b base;
         w_int b size);
     w_int b r.Cashrt.Runtime.p_cache.Cashrt.Seg_cache.p_hits;
     w_int b r.Cashrt.Runtime.p_cache.Cashrt.Seg_cache.p_misses;
     w_int b r.Cashrt.Runtime.p_seg_allocs;
     w_int b r.Cashrt.Runtime.p_global_fallbacks;
     w_bool b r.Cashrt.Runtime.p_started);
  w_u8 b tag_end;
  b

let digest bytes = Digest.to_hex (Digest.bytes bytes)

let state_digest ?runtime process =
  digest (Buffer.to_bytes (save ?runtime process))

(* --- restore ------------------------------------------------------------- *)

let r_descriptor r what =
  let enc = r_str r what in
  if String.length enc <> 8 then
    raise (Error (Corrupt (Printf.sprintf "descriptor in %s is not 8 bytes" what)));
  Seghw.Descriptor.decode enc

let restore_table r tbl what =
  let entries =
    r_list r what (fun r ->
        let i = r_int r what in
        let d = r_descriptor r what in
        (i, d))
  in
  List.iter (fun (i, d) -> Seghw.Descriptor_table.set tbl i d) entries

(* Where the parsed image lands: a freshly loaded machine (the classic
   [restore]), or an existing machine reused in place (the pool path,
   [restore_into]). The two targets share every parsing and validation
   step; they differ only in how the machine comes to exist and in the
   scrub that makes a reused machine equivalent to a fresh one. *)
type target =
  | Fresh of Machine.Cpu.engine option
  | Reuse of Osim.Process.t * Cashrt.Runtime.t option

(* Scrub a descriptor table back to its load-time contents so replaying
   the image's entries reproduces the fresh table exactly. The LDT
   starts empty at [Osim.Process.load]; the GDT's only load-time entries
   are re-set from the image (every snapshot contains them — they are
   never cleared at runtime), and index 0 is never present. *)
let scrub_table ?(keep = -1) tbl =
  let live = ref [] in
  Seghw.Descriptor_table.iteri
    (fun i _ -> if i <> keep then live := i :: !live)
    tbl;
  List.iter (fun i -> Seghw.Descriptor_table.clear tbl i) !live

let restore_body ~target ~(program : Machine.Program.t) (r : reader) =
  need r (String.length magic) "magic";
  if String.sub r.data 0 (String.length magic) <> magic then
    raise (Error Bad_magic);
  r.pos <- String.length magic;
  let v = r_int r "version" in
  (* Version 1 is still readable: it lacks only the protection-hardware
     section, which restores zero-initialized below. *)
  if v <> 1 && v <> version then raise (Error (Bad_version v));
  let pd = r_str r "program digest" in
  if pd <> program_digest program then raise (Error Program_mismatch);
  (match target with
   | Fresh _ -> ()
   | Reuse (process, _) ->
     (* The pooled machine must be running the image's program: its
        compiled block closures and load-time layout are functions of
        the program, so reusing a machine across programs would not be
        a restore at all. Physical equality is the fast path (pools key
        machines by compiled program). *)
     let pp = Osim.Process.program process in
     if pp != program && program_digest pp <> pd then
       raise (Error Program_mismatch));
  (* Kernel section is parsed first but imported after [load], which
     consumes a pid from the fresh kernel. *)
  expect_tag r tag_kernel "kernel";
  let kstate =
    (* [let]-sequenced: record fields evaluate in unspecified order. *)
    let p_next_pid = r_int r "kernel" in
    let p_clock = r_int r "kernel" in
    let p_modify_ldt_calls = r_int r "kernel" in
    let p_cash_modify_ldt_calls = r_int r "kernel" in
    let p_descriptors_written = r_int r "kernel" in
    let p_descriptors_cleared = r_int r "kernel" in
    {
      Osim.Kernel.p_next_pid;
      p_clock;
      p_modify_ldt_calls;
      p_cash_modify_ldt_calls;
      p_descriptors_written;
      p_descriptors_cleared;
    }
  in
  expect_tag r tag_process "process";
  let pid = r_int r "process" in
  let created_at = r_int r "process" in
  let terminated_at = r_int r "process" in
  expect_tag r tag_cpu "cpu";
  let cstate =
    let p_eip = r_int r "cpu" in
    let p_zf = r_bool r "cpu" in
    let p_sf = r_bool r "cpu" in
    let p_cf = r_bool r "cpu" in
    let p_ovf = r_bool r "cpu" in
    let p_cycles = r_int r "cpu" in
    let p_insns_executed = r_int r "cpu" in
    let p_status = r_status r in
    let p_stats =
      r_list r "cpu stats" (fun r ->
          let name = r_str r "cpu stats" in
          let v = r_int r "cpu stats" in
          (name, v))
    in
    let p_prof_hits =
      r_list r "cpu profile" (fun r ->
          let site = r_int r "cpu profile" in
          let hits = r_int r "cpu profile" in
          if site < 0 || site >= Array.length program.Machine.Program.code then
            raise (Error (Corrupt "profile site outside program"));
          (site, hits))
    in
    {
      Machine.Cpu.p_eip;
      p_zf;
      p_sf;
      p_cf;
      p_ovf;
      p_cycles;
      p_insns_executed;
      p_status;
      p_stats;
      p_prof_hits;
    }
  in
  expect_tag r tag_regs "registers";
  let gp = Array.init 8 (fun _ -> r_int r "registers") in
  let fp =
    Array.init 8 (fun _ ->
        need r 8 "registers";
        let v = Int64.float_of_bits (String.get_int64_le r.data r.pos) in
        r.pos <- r.pos + 8;
        v)
  in
  expect_tag r tag_segregs "segment registers";
  let segregs =
    List.map
      (fun name ->
        let sel = r_int r "segment registers" in
        if sel < 0 || sel > 0xFFFF then
          raise (Error (Corrupt "selector out of range"));
        let cache =
          if r_bool r "segment registers" then
            Some (r_descriptor r "segment registers")
          else None
        in
        (name, Seghw.Selector.of_int sel, cache))
      Seghw.Segreg.all_names
  in
  expect_tag r tag_gdt "GDT";
  let gdt_entries =
    r_list r "GDT" (fun r ->
        let i = r_int r "GDT" in
        let d = r_descriptor r "GDT" in
        (i, d))
  in
  expect_tag r tag_ldt "LDT";
  (* LDT entries are replayed below through [Descriptor_table.set]. *)
  let restore_ldt tbl r = restore_table r tbl "LDT" in
  (* Build (or scrub) the machine now: everything parsed past this
     point is written directly into it. *)
  let process =
    match target with
    | Fresh engine ->
      let kernel = Osim.Kernel.create () in
      Osim.Process.load ?engine ~kernel program
    | Reuse (process, _) ->
      let mmu = Osim.Process.mmu process in
      scrub_table (Seghw.Mmu.ldt mmu);
      scrub_table ~keep:0 (Seghw.Mmu.gdt mmu);
      process
  in
  let kernel = Osim.Process.kernel process in
  let mmu = Osim.Process.mmu process in
  restore_ldt (Seghw.Mmu.ldt mmu) r;
  expect_tag r tag_paging "paging";
  let next_frame = r_int r "paging" in
  let paging = Seghw.Mmu.paging mmu in
  Seghw.Paging.reset paging;
  let n_ptes = r_int r "paging" in
  if n_ptes < 0 then raise (Error (Corrupt "negative PTE count"));
  for _ = 1 to n_ptes do
    let page = r_int r "paging" in
    if page < 0 || page > 0xFFFFF then
      raise (Error (Corrupt "PTE page number out of range"));
    let frame = r_int r "paging" in
    let present = r_bool r "paging" in
    let writable = r_bool r "paging" in
    Seghw.Paging.restore_entry paging ~page ~frame ~present ~writable
  done;
  Seghw.Paging.set_next_frame paging next_frame;
  expect_tag r tag_tlb "TLB";
  let tlb = Seghw.Mmu.tlb mmu in
  let size = r_int r "TLB" in
  if size <> tlb.Seghw.Tlb.mask + 1 then
    raise (Error (Corrupt (Printf.sprintf "TLB size %d" size)));
  for i = 0 to size - 1 do
    tlb.Seghw.Tlb.tags.(i) <- r_int r "TLB";
    tlb.Seghw.Tlb.frames.(i) <- r_int r "TLB";
    tlb.Seghw.Tlb.writable.(i) <- r_bool r "TLB"
  done;
  tlb.Seghw.Tlb.hits <- r_int r "TLB";
  tlb.Seghw.Tlb.misses <- r_int r "TLB";
  tlb.Seghw.Tlb.gen <- r_int r "TLB";
  expect_tag r tag_phys "physical memory";
  let hw = r_int r "physical memory" in
  if hw < 0 then raise (Error (Corrupt "negative high water"));
  let ph = Osim.Process.phys process in
  let len = ref (1 lsl 20) in
  while hw > !len do
    len := !len * 2
  done;
  (match target with
   | Fresh _ -> ph.Machine.Phys_mem.data <- Bytes.make !len '\000'
   | Reuse _ ->
     if Bytes.length ph.Machine.Phys_mem.data < !len then
       ph.Machine.Phys_mem.data <- Bytes.make !len '\000'
     else
       (* Everything the previous occupant wrote lies below its
          high-water mark (every write path raises it), so scrubbing
          [0, high_water) leaves the whole buffer zero without
          reallocating. *)
       Bytes.fill ph.Machine.Phys_mem.data 0 ph.Machine.Phys_mem.high_water
         '\000');
  ph.Machine.Phys_mem.high_water <- hw;
  let n_pages = r_int r "physical memory" in
  if n_pages < 0 then raise (Error (Corrupt "negative page count"));
  for _ = 1 to n_pages do
    let page = r_int r "physical memory" in
    let chunk = r_str r "physical memory" in
    let start = page * page_size in
    (* Bound pages by the length a fresh machine would allocate, not
       the (possibly larger) reused buffer, so both targets accept and
       reject exactly the same images. *)
    if page < 0 || String.length chunk > page_size
       || start + String.length chunk > !len
    then raise (Error (Corrupt "physical page outside image"));
    Bytes.blit_string chunk 0 ph.Machine.Phys_mem.data start
      (String.length chunk)
  done;
  expect_tag r tag_mmu "MMU";
  let limit_checks = r_int r "MMU" in
  (* Protection hardware (version ≥ 2). A reused machine is scrubbed
     either way; a v1 image leaves the state zero-initialized, which is
     exactly the state a pre-v2 machine was in when saved. *)
  let br = Seghw.Mmu.bndregs mmu in
  let ct = Seghw.Mmu.captab mmu in
  Seghw.Bound_regs.reset br;
  Seghw.Captab.reset ct;
  if v >= 2 then begin
    expect_tag r tag_protection "protection";
    let regs =
      List.init Seghw.Bound_regs.num_regs (fun _ ->
          let valid = r_bool r "bound registers" in
          let lower = r_int r "bound registers" in
          let upper = r_int r "bound registers" in
          (valid, lower, upper))
    in
    Seghw.Bound_regs.import_regs br regs;
    let entries = r_int r "bound table" in
    let loads = r_int r "bound table" in
    let load_misses = r_int r "bound table" in
    let stores = r_int r "bound table" in
    let dir_allocs = r_int r "bound table" in
    let evictions = r_int r "bound table" in
    let table =
      r_list r "bound table" (fun r ->
          let key = r_int r "bound table" in
          let lo = r_int r "bound table" in
          let up = r_int r "bound table" in
          (key, lo, up))
    in
    Seghw.Bound_regs.import_table br table;
    (* Counters overwrite whatever [import_table] accumulated, so the
       restored machine's next snapshot is byte-identical. *)
    br.Seghw.Bound_regs.entries <- entries;
    br.Seghw.Bound_regs.loads <- loads;
    br.Seghw.Bound_regs.load_misses <- load_misses;
    br.Seghw.Bound_regs.stores <- stores;
    br.Seghw.Bound_regs.dir_allocs <- dir_allocs;
    br.Seghw.Bound_regs.evictions <- evictions;
    let caps =
      r_list r "capability table" (fun r ->
          let lo = r_int r "capability table" in
          let up = r_int r "capability table" in
          (lo, up))
    in
    Seghw.Captab.import ct caps;
    ct.Seghw.Captab.checks <- r_int r "capability table";
    ct.Seghw.Captab.tag_clears <- r_int r "capability table"
  end;
  expect_tag r tag_libc "libc";
  let lstate =
    let p_brk = r_int r "libc" in
    let p_rand_state = r_int r "libc" in
    let p_bytes_allocated = r_int r "libc" in
    let p_peak_heap = r_int r "libc" in
    let p_guard_malloc = r_bool r "libc" in
    let p_guard_vm_bytes = r_int r "libc" in
    let p_output = r_str r "libc" in
    let p_free_lists =
      r_list r "libc free lists" (fun r ->
          let size = r_int r "libc free lists" in
          let addrs = r_list r "libc free lists" (fun r -> r_int r "libc") in
          (size, addrs))
    in
    let p_alloc_sizes =
      r_list r "libc allocations" (fun r ->
          let addr = r_int r "libc allocations" in
          let size = r_int r "libc allocations" in
          (addr, size))
    in
    {
      Osim.Libc.p_brk;
      p_rand_state;
      p_bytes_allocated;
      p_peak_heap;
      p_guard_malloc;
      p_guard_vm_bytes;
      p_output;
      p_free_lists;
      p_alloc_sizes;
    }
  in
  (* Optional runtime section, then the end marker. *)
  let runtime =
    match r_u8 r "section" with
    | t when t = tag_end -> None
    | t when t = tag_runtime ->
      let p_capacity = r_int r "runtime" in
      let p_free = r_list r "runtime" (fun r -> r_int r "runtime") in
      let p_live = r_int r "runtime" in
      let p_peak_live = r_int r "runtime" in
      let p_exhausted_allocs = r_int r "runtime" in
      let p_entries =
        r_list r "runtime cache" (fun r ->
            let index = r_int r "runtime cache" in
            let base = r_int r "runtime cache" in
            let size = r_int r "runtime cache" in
            (index, base, size))
      in
      let p_hits = r_int r "runtime cache" in
      let p_misses = r_int r "runtime cache" in
      let p_seg_allocs = r_int r "runtime" in
      let p_global_fallbacks = r_int r "runtime" in
      let p_started = r_bool r "runtime" in
      expect_tag r tag_end "end";
      (* Reuse the pooled machine's runtime when its segment pool has
         the image's capacity ([Segment_pool.import_state] requires it);
         otherwise attach a fresh runtime, which re-registers the cash
         externals on the reused CPU exactly as a fresh load would. *)
      let rt =
        match target with
        | Reuse (_, Some rt)
          when Cashrt.Segment_pool.capacity (Cashrt.Runtime.pool rt)
               = p_capacity ->
          rt
        | Fresh _ | Reuse _ ->
          Cashrt.Runtime.attach ~pool_capacity:p_capacity process
      in
      Cashrt.Runtime.import_state rt
        {
          Cashrt.Runtime.p_pool =
            {
              Cashrt.Segment_pool.p_capacity;
              p_free;
              p_live;
              p_peak_live;
              p_exhausted_allocs;
            };
          p_cache = { Cashrt.Seg_cache.p_entries; p_hits; p_misses };
          p_seg_allocs;
          p_global_fallbacks;
          p_started;
        };
      Some rt
    | t -> raise (Error (Corrupt (Printf.sprintf "unexpected section %d" t)))
  in
  (* Now overwrite the freshly-loaded machine with the parsed state, in
     dependency order: kernel last consumed a pid in [load]; segment
     registers go through [restore_raw] so hidden caches that disagree
     with the (already restored) LDT survive verbatim. *)
  Osim.Kernel.import_state kernel kstate;
  Osim.Process.restore_identity process ~pid ~created_at ~terminated_at;
  let cpu = Osim.Process.cpu process in
  Machine.Cpu.import_state cpu cstate;
  let regs = Machine.Cpu.regs cpu in
  Array.blit gp 0 regs.Machine.Registers.gp 0 8;
  Array.blit fp 0 regs.Machine.Registers.fp 0 8;
  List.iter
    (fun (name, selector, cache) ->
      Seghw.Segreg.restore_raw (Seghw.Mmu.seg mmu name) ~selector ~cache)
    segregs;
  List.iter
    (fun (i, d) ->
      if i <> 0 then Seghw.Descriptor_table.set (Seghw.Mmu.gdt mmu) i d)
    gdt_entries;
  mmu.Seghw.Mmu.limit_checks <- limit_checks;
  Osim.Libc.import_state (Osim.Process.libc process) lstate;
  (process, runtime)

let wrap_restore f =
  try f () with
  | Error _ as e -> raise e
  | Seghw.Fault.Fault f ->
    raise (Error (Corrupt ("fault during restore: " ^ Seghw.Fault.to_string f)))
  | Invalid_argument m -> raise (Error (Corrupt m))
  | Failure m -> raise (Error (Corrupt m))

let restore ?engine ~program bytes =
  let r = { data = Bytes.to_string bytes; pos = 0 } in
  wrap_restore (fun () -> restore_body ~target:(Fresh engine) ~program r)

let restore_into ?runtime ~program process bytes =
  (* [unsafe_to_string] spares the per-request copy of a multi-hundred-
     KB image; the reader never mutates it, and callers hold images as
     write-once blobs. *)
  let r = { data = Bytes.unsafe_to_string bytes; pos = 0 } in
  let _, rt =
    wrap_restore (fun () ->
        restore_body ~target:(Reuse (process, runtime)) ~program r)
  in
  rt

(* --- checkpoint placement ------------------------------------------------ *)

let running cpu =
  match Machine.Cpu.status cpu with
  | Machine.Cpu.Running -> true
  | _ -> false

let run_to_marker ?(marker = "server_ready") ?(max_insns = 200_000_000)
    process =
  let cpu = Osim.Process.cpu process in
  let fired = ref false in
  Machine.Cpu.register_external cpu marker (fun _ -> fired := true);
  let budget = Machine.Cpu.insns_executed cpu + max_insns in
  while
    (not !fired) && running cpu && Machine.Cpu.insns_executed cpu < budget
  do
    Machine.Cpu.step cpu
  done;
  (* Leave the marker registered as libc's default no-op, so continued
     execution is byte-identical to a process that was never warmed. *)
  Machine.Cpu.register_external cpu marker (fun _ -> ());
  !fired

let align_to_block process =
  let cpu = Osim.Process.cpu process in
  let prog = Machine.Cpu.program cpu in
  let block_at = prog.Machine.Program.block_at in
  let limit = Array.length prog.Machine.Program.code in
  let steps = ref 0 in
  let aligned () =
    let e = Machine.Cpu.eip cpu in
    e >= 0 && e < limit && block_at.(e) >= 0
  in
  while running cpu && not (aligned ()) do
    Machine.Cpu.step cpu;
    incr steps
  done;
  !steps
