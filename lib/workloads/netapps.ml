(* The six network applications of Tables 7-8: Qpopper (POP3), Apache
   (HTTP), Sendmail (SMTP), Wu-ftpd and Pure-ftpd (FTP), and Bind (DNS).

   Each program models the server-side handling of one request — the unit
   the paper measures, since its server forks one child per request and
   latency is the child's CPU time. The handlers reproduce each daemon's
   characteristic hot loops: line-oriented command parsing into fixed
   stack buffers (the classic overflow surface!), header construction,
   payload copies through malloc'd buffers, and table lookups. Requests
   are synthesised deterministically inside the program. *)

(* Common helper text: a tiny string library compiled into each app,
   standing in for the recompiled GLIBC routines of §3.9. *)
let string_helpers = {|
int str_len(char *s) {
  int n = 0;
  while (s[n] != 0) n++;
  return n;
}

int str_copy(char *dst, char *src, int max) {
  int i = 0;
  while (src[i] != 0 && i < max - 1) { dst[i] = src[i]; i++; }
  dst[i] = 0;
  return i;
}

int str_eq_n(char *a, char *b, int n) {
  int i;
  for (i = 0; i < n; i++) {
    if (a[i] != b[i]) return 0;
    if (a[i] == 0) return 1;
  }
  return 1;
}

int to_upper(char *s, int n) {
  int i;
  int changed = 0;
  for (i = 0; i < n && s[i] != 0; i++) {
    if (s[i] >= 'a' && s[i] <= 'z') { s[i] = s[i] - 32; changed++; }
  }
  return changed;
}
|}

(* Qpopper: POP3 mail retrieval — parse USER/PASS/LIST/RETR commands,
   then stream a message through a line-stuffing copy (the "." escaping
   every POP3 server performs). *)
let qpopper ?(messages = 6) ?(msg_len = 600) () =
  string_helpers
  ^ Printf.sprintf
      {|
char inbox[%d];       /* messages back to back */
char command[64];
char response[1024];
char arg[32];

int stuff_message(char *msg, int len, char *out, int max) {
  /* byte-stuff: CRLF.CRLF framing, double leading dots */
  int o = 0;
  int i;
  int atline = 1;
  for (i = 0; i < len && o < max - 3; i++) {
    char c = msg[i];
    if (atline && c == '.') { out[o] = '.'; o++; }
    out[o] = c;
    o++;
    atline = c == 10 ? 1 : 0;
  }
  out[o] = 0;
  return o;
}

int handle(char *cmd) {
  int n = str_len(cmd);
  to_upper(cmd, 4);
  if (str_eq_n(cmd, "USER", 4)) {
    str_copy(arg, cmd + 5, 32);
    return str_len(arg);
  }
  if (str_eq_n(cmd, "RETR", 4)) {
    int idx = cmd[5] - '0';
    if (idx < 0) idx = 0;
    idx = idx %% %d;
    return stuff_message(inbox + idx * %d, %d, response, 1024);
  }
  if (str_eq_n(cmd, "LIST", 4)) {
    int i; int total = 0;
    for (i = 0; i < %d; i++) total += %d;
    return total %% 997;
  }
  return n;
}

int main() {
  int m; int i;
  /* synthesise the inbox */
  for (m = 0; m < %d; m++) {
    char *msg = inbox + m * %d;
    for (i = 0; i < %d - 1; i++) {
      int v = (i * 7 + m * 13) %% 96;
      msg[i] = v < 2 ? (v == 0 ? 10 : '.') : 32 + v;
    }
    msg[%d - 1] = 0;
  }
  server_ready();
  int checksum = 0;
  str_copy(command, "USER alice", 64);
  checksum += handle(command);
  str_copy(command, "LIST", 64);
  checksum += handle(command);
  str_copy(command, "RETR 3", 64);
  checksum += handle(command);
  str_copy(command, "RETR 5", 64);
  checksum += handle(command);
  print_int(checksum);
  return 0;
}
|}
      (messages * msg_len) messages msg_len (msg_len - 1) messages msg_len
      messages msg_len msg_len msg_len

(* Apache: HTTP request handling — request-line and header parsing into
   fixed buffers, URI sanitisation, MIME lookup, and response assembly
   with a content copy. *)
let apache ?(content = 2048) () =
  string_helpers
  ^ Printf.sprintf
      {|
char request[512];
char method[16];
char uri[128];
char clean[128];
char headers[512];
char content[%d];
char response[%d];

int parse_request(char *req) {
  int i = 0; int j;
  /* method */
  j = 0;
  while (req[i] != ' ' && req[i] != 0 && j < 15) { method[j] = req[i]; i++; j++; }
  method[j] = 0;
  while (req[i] == ' ') i++;
  /* uri */
  j = 0;
  while (req[i] != ' ' && req[i] != 0 && j < 127) { uri[j] = req[i]; i++; j++; }
  uri[j] = 0;
  return j;
}

int sanitise_uri(char *in, char *out) {
  /* collapse // and resolve .. like ap_getparents */
  int i = 0; int o = 0;
  while (in[i] != 0 && o < 127) {
    if (in[i] == '/' && in[i + 1] == '/') { i++; continue; }
    if (in[i] == '/' && in[i + 1] == '.' && in[i + 2] == '.') {
      i = i + 3;
      while (o > 0 && out[o - 1] != '/') o--;
      if (o > 0) o--;
      continue;
    }
    out[o] = in[i];
    o++; i++;
  }
  out[o] = 0;
  return o;
}

int build_response(char *out, char *body, int blen) {
  char *status = "HTTP/1.0 200 OK";
  int o = str_copy(out, status, 64);
  out[o] = 10; o++;
  o = o + str_copy(out + o, "Server: cash-httpd/1.0", 64);
  out[o] = 10; o++;
  out[o] = 10; o++;
  int i;
  for (i = 0; i < blen && o < %d - 1; i++) { out[o] = body[i]; o++; }
  out[o] = 0;
  return o;
}

int main() {
  int i;
  for (i = 0; i < %d - 1; i++)
    content[i] = 32 + ((i * 11 + 7) %% 95);
  content[%d - 1] = 0;
  server_ready();
  str_copy(request, "GET /docs//manual/../index.html HTTP/1.0", 512);
  int checksum = parse_request(request);
  checksum += sanitise_uri(uri, clean);
  /* header scan: count lines of a synthetic header block */
  str_copy(headers, "Host: example.test", 512);
  int hlen = str_len(headers);
  for (i = 0; i < hlen; i++) if (headers[i] == ':') checksum++;
  checksum += build_response(response, content, %d - 1);
  print_int(checksum);
  return 0;
}
|}
      content (content + 256) (content + 256) content content (content / 2)

(* Sendmail: SMTP envelope processing — address parsing (the historically
   overflowed crackaddr-style buffer scan), header rewriting, and a body
   copy with dot-stuffing removal. *)
let sendmail ?(body = 1500) ?(recipients = 4) () =
  string_helpers
  ^ Printf.sprintf
      {|
char envelope[256];
char addr[64];
char domain[64];
char rewritten[128];
char body[%d];
char queued[%d];

int parse_address(char *line, char *user, char *dom) {
  /* scan inside <...> handling comments (...) — crackaddr's loop */
  int i = 0; int j = 0; int depth = 0; int in_angle = 0;
  while (line[i] != 0) {
    char c = line[i];
    if (c == '(') depth++;
    else if (c == ')') { if (depth > 0) depth--; }
    else if (depth == 0) {
      if (c == '<') { in_angle = 1; j = 0; }
      else if (c == '>') in_angle = 0;
      else if (in_angle && j < 63) { user[j] = c; j++; }
    }
    i++;
  }
  user[j] = 0;
  /* split at @ */
  int at = -1;
  for (i = 0; user[i] != 0; i++) if (user[i] == '@') at = i;
  if (at >= 0) {
    str_copy(dom, user + at + 1, 64);
    user[at] = 0;
  } else dom[0] = 0;
  return j;
}

int rewrite_header(char *user, char *dom, char *out) {
  int o = str_copy(out, "From: ", 128);
  o = o + str_copy(out + o, user, 64);
  out[o] = '@'; o++;
  o = o + str_copy(out + o, dom, 60);
  return o;
}

int queue_body(char *in, char *out, int len) {
  /* remove dot-stuffing and normalise line endings */
  int i; int o = 0; int atline = 1;
  for (i = 0; i < len; i++) {
    char c = in[i];
    if (atline && c == '.' && in[i + 1] == '.') { i++; c = '.'; }
    out[o] = c; o++;
    atline = c == 10 ? 1 : 0;
  }
  out[o] = 0;
  return o;
}

int main() {
  int i; int r;
  for (i = 0; i < %d - 2; i++) {
    int v = (i * 17 + 3) %% 97;
    body[i] = v == 0 ? 10 : 31 + v;
  }
  body[%d - 2] = 10;
  body[%d - 1] = 0;
  server_ready();
  int checksum = 0;
  for (r = 0; r < %d; r++) {
    str_copy(envelope, "Alice Smith (home (office)) <alice.smith@example.test>", 256);
    envelope[7] = 'a' + r;
    checksum += parse_address(envelope, addr, domain);
    checksum += rewrite_header(addr, domain, rewritten);
  }
  checksum += queue_body(body, queued, %d - 1);
  print_int(checksum);
  return 0;
}
|}
      body (body + 16) body body body recipients body

(* Wu-ftpd: FTP command loop — command dispatch, path validation, and a
   block-mode file transfer through a buffer (the RETR path). *)
let wuftpd ?(file = 4096) ?(block = 512) () =
  string_helpers
  ^ Printf.sprintf
      {|
char file[%d];
char cmdline[128];
char path[128];
char block[%d];

int check_path(char *p) {
  /* realpath-ish scan rejecting .. escapes */
  int i = 0; int depth = 0;
  while (p[i] != 0) {
    if (p[i] == '/') {
      if (p[i + 1] == '.' && p[i + 2] == '.') depth--;
      else if (p[i + 1] != 0 && p[i + 1] != '/') depth++;
      if (depth < 0) return 0;
    }
    i++;
  }
  return 1;
}

int transfer(char *f, int len, int bsize) {
  int sent = 0;
  int pos = 0;
  while (pos < len) {
    int n = len - pos < bsize ? len - pos : bsize;
    int i;
    char *src = f + pos;
    for (i = 0; i < n; i++) block[i] = src[i];
    /* telnet IAC escaping scan, as BINARY mode does */
    int esc = 0;
    for (i = 0; i < n; i++) if (block[i] == 255) esc++;
    sent += n + esc;
    pos += n;
  }
  return sent;
}

int main() {
  int i;
  for (i = 0; i < %d; i++) file[i] = (i * 31 + 5) %% 256;
  server_ready();
  str_copy(cmdline, "RETR /pub/dists/readme.txt", 128);
  int checksum = 0;
  to_upper(cmdline, 4);
  if (str_eq_n(cmdline, "RETR", 4)) {
    str_copy(path, cmdline + 5, 128);
    if (check_path(path)) checksum += transfer(file, %d, %d);
  }
  print_int(checksum);
  return 0;
}
|}
      file block file file block

(* Pure-ftpd: similar protocol surface, different mix — directory listing
   generation dominates (the paper's most common FTP operation after
   RETR), plus a quota scan. *)
let pureftpd ?(entries = 160) () =
  string_helpers
  ^ Printf.sprintf
      {|
char names[%d];      /* entries x 32 */
int sizes[%d];
char listing[%d];

int format_entry(char *out, char *name, int size) {
  int o = str_copy(out, "-rw-r--r-- 1 ftp ftp ", 32);
  /* decimal size, right-aligned into 8 columns */
  char digits[12];
  int n = 0;
  int v = size;
  if (v == 0) { digits[0] = '0'; n = 1; }
  while (v > 0 && n < 11) { digits[n] = '0' + v %% 10; v = v / 10; n++; }
  int pad = 8 - n;
  int i;
  for (i = 0; i < pad; i++) { out[o] = ' '; o++; }
  for (i = n - 1; i >= 0; i--) { out[o] = digits[i]; o++; }
  out[o] = ' '; o++;
  o = o + str_copy(out + o, name, 32);
  out[o] = 10; o++;
  out[o] = 0;
  return o;
}

int main() {
  int e; int i;
  int n = %d;
  for (e = 0; e < n; e++) {
    char *name = names + e * 32;
    for (i = 0; i < 12; i++) name[i] = 'a' + ((e * 3 + i * 5) %% 26);
    name[12] = 0;
    sizes[e] = (e * 7919) %% 100000;
  }
  server_ready();
  int o = 0;
  int checksum = 0;
  for (e = 0; e < n; e++) {
    if (o > %d - 80) break;
    o += format_entry(listing + o, names + e * 32, sizes[e]);
  }
  checksum += o;
  /* quota scan */
  int total = 0;
  for (e = 0; e < n; e++) total += sizes[e];
  checksum += total %% 9973;
  print_int(checksum);
  return 0;
}
|}
      (entries * 32) entries (entries * 96) entries (entries * 96)

(* Bind: DNS query handling — wire-format name decompression, a zone
   lookup over sorted records, and answer assembly with name
   compression. *)
let bind ?(records = 128) () =
  string_helpers
  ^ Printf.sprintf
      {|
char packet[512];
char qname[256];
char zone[%d];      /* records x 32: owner names */
int rdata[%d];
char answer[512];

int decode_name(char *pkt, int off, char *out) {
  /* label-by-label decode with pointer-compression hops */
  int o = 0;
  int hops = 0;
  while (hops < 8) {
    int len = pkt[off];
    if (len == 0) break;
    if (len >= 192) {              /* compression pointer */
      off = (len - 192) * 256 + pkt[off + 1];
      hops++;
      continue;
    }
    int i;
    for (i = 1; i <= len && o < 254; i++) { out[o] = pkt[off + i]; o++; }
    out[o] = '.'; o++;
    off = off + len + 1;
  }
  out[o] = 0;
  return o;
}

int lookup(char *name) {
  /* binary search over the zone's owner names */
  int lo = 0;
  int hi = %d - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    char *owner = zone + mid * 32;
    /* compare */
    int i = 0;
    int cmp = 0;
    while (owner[i] != 0 || name[i] != 0) {
      if (owner[i] != name[i]) { cmp = owner[i] < name[i] ? -1 : 1; break; }
      i++;
    }
    if (cmp == 0) return mid;
    if (cmp < 0) lo = mid + 1;
    else hi = mid - 1;
  }
  return -1;
}

int encode_answer(char *out, char *name, int rr) {
  int o = 0;
  int i;
  int nlen = str_len(name);
  for (i = 0; i < nlen; i++) { out[o] = name[i]; o++; }
  out[o] = 0; o++;
  /* type/class/ttl/rdlength/rdata */
  for (i = 0; i < 10; i++) { out[o] = (rr + i) %% 256; o++; }
  return o;
}

int main() {
  int r; int i;
  int n = %d;
  for (r = 0; r < n; r++) {
    char *owner = zone + r * 32;
    /* sorted synthetic names: aa.., ab.., ... */
    owner[0] = 'a' + r / 26;
    owner[1] = 'a' + r %% 26;
    for (i = 2; i < 8; i++) owner[i] = 'a' + ((r + i) %% 26);
    owner[8] = 0;
    rdata[r] = r * 257;
  }
  server_ready();
  /* build a query packet with a compressed name */
  packet[0] = 3; packet[1] = 'w'; packet[2] = 'w'; packet[3] = 'w';
  packet[4] = 192; packet[5] = 12;   /* pointer to offset 12 */
  packet[12] = 2;
  packet[13] = zone[2 * 32];
  packet[14] = zone[2 * 32 + 1];
  packet[15] = 0;
  int checksum = 0;
  int q;
  char key[32];
  /* a batch of queries: positive lookups with name decode + answer
     assembly, plus the negative-lookup storm of a cache miss flood */
  for (q = 0; q < 40; q++) {
    checksum += decode_name(packet, 0, qname);
    str_copy(key, zone + (q %% n) * 32, 32);
    int rr = lookup(key);
    if (rr >= 0) checksum += encode_answer(answer, key, rdata[rr]);
  }
  str_copy(key, "nonexistent", 32);
  for (q = 0; q < 60; q++) {
    key[4] = 'a' + (q %% 26);
    key[7] = 'a' + (q / 26);
    checksum += lookup(key);
  }
  print_int(checksum %% 100000);
  return 0;
}
|}
      (records * 32) records records records

type app = {
  name : string;
  description : string;
  source : string;
  paper_latency_pct : float;   (* Table 8 *)
  paper_throughput_pct : float;
  paper_space_pct : float;
}

let table8_suite () =
  [
    { name = "Qpopper"; description = "POP3 mail server";
      source = qpopper (); paper_latency_pct = 6.5;
      paper_throughput_pct = 6.1; paper_space_pct = 60.1 };
    { name = "Apache"; description = "HTTP server";
      source = apache (); paper_latency_pct = 3.3;
      paper_throughput_pct = 3.2; paper_space_pct = 56.3 };
    { name = "Sendmail"; description = "SMTP mail transfer agent";
      source = sendmail (); paper_latency_pct = 9.8;
      paper_throughput_pct = 8.9; paper_space_pct = 44.8 };
    { name = "Wu-ftpd"; description = "FTP server";
      source = wuftpd (); paper_latency_pct = 2.5;
      paper_throughput_pct = 2.4; paper_space_pct = 68.3 };
    { name = "Pure-ftpd"; description = "FTP server";
      source = pureftpd (); paper_latency_pct = 3.3;
      paper_throughput_pct = 3.2; paper_space_pct = 63.4 };
    { name = "Bind"; description = "DNS server";
      source = bind (); paper_latency_pct = 4.4;
      paper_throughput_pct = 4.3; paper_space_pct = 53.6 };
  ]
