(** Backend descriptors: the compilers under comparison. All share the
    mini-C front end and differ exactly where the paper says they differ
    — pointer representation and check generation. *)

module Ast = Minic.Ast

type cash_config = {
  seg_budget : int;
      (** how many segment registers are available for checking *)
  seg_regs : Seghw.Segreg.name list;
      (** the registers, in FCFS assignment order (§3.7) *)
  rewrite_pushpop : bool;
      (** the 4-register mode frees SS by rewriting PUSH/POP into
          MOV/SUB-ADD with DS overrides (§3.7) *)
  check_reads : bool;
      (** [false] = §3.8's security-only mode: only writes are checked *)
}

(** 3 registers: ES, FS, GS — the prototype's default. *)
val cash_default : cash_config

val cash_two_regs : cash_config

(** 4 registers (+ SS), with PUSH/POP rewriting. *)
val cash_four_regs : cash_config

val cash_security_only : cash_config

type bcc_config = {
  use_bound_insn : bool;
      (** check via the x86 BOUND instruction instead of the plain
          6-instruction sequence (§2's losing alternative) *)
}

val bcc_default : bcc_config
val bcc_bound_insn : bcc_config

type mpx_config = {
  bnd_budget : int;
      (** bounds registers available for FCFS loop hoisting (BND1..3;
          BND0 is the bounds-transit register) *)
}

(** BND1..BND3 hoistable, BND0 in transit — the four MPX registers. *)
val mpx_default : mpx_config

type cap_config = {
  clear_on_escape : bool;
      (** GANDALF-style: arithmetic escaping the bounds clears the tag *)
}

val cap_default : cap_config

type kind =
  | Gcc  (** no checking: the baseline *)
  | Bcc of bcc_config  (** software checking, 3-word fat pointers *)
  | Cash of cash_config  (** the paper's contribution *)
  | Mpx of mpx_config
      (** Intel-MPX-style: bounds registers + bound-table spills *)
  | Cap of cap_config
      (** capability-style: tagged 2-word pointers, checked per access *)

val name : kind -> string

(** Bytes a value of this type occupies in memory under this backend;
    pointers are 1 word (GCC), 3 (BCC), or 2 (Cash), per the paper. *)
val val_size : kind -> Ast.ty -> int

(** How the backend resolves [sizeof(T)] in source. *)
val sizeof : kind -> Ast.ty -> int

(** Selector of the flat "global segment" Cash assigns to objects it does
    not track (§3.4, §3.9): references through it always pass. *)
val global_segment_selector : Seghw.Selector.t
