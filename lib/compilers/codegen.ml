(* Code generation: typed IR -> machine instructions, for all five
   backends.

   The generator is a simple one-register-plus-stack scheme with the
   operand-folding fast paths a real compiler would apply to array
   references (index in a register, base folded into the addressing mode),
   so that the baseline's inner loops are tight enough for the checking
   overheads to be measured against something honest.

   Value protocol (results of expression evaluation):
     int/char        EAX
     double          XMM0
     pointer         EAX = value, plus representation-specific metadata:
                       Cash: EBX = pointer to the 3-word info structure
                       BCC:  EBX = lower bound, ECX = upper bound
                       GCC:  no metadata
   Temporaries spill to the machine stack. Scratch registers: EDX and EDI
   for addresses, ESI for transient values, ECX for division/shift counts.

   The Cash-specific machinery follows §3.3-§3.7:
   - at entry to an *outermost* loop whose nest references arrays, the
     first [seg_budget] distinct bases get a segment register each
     (first-come-first-served); the segment selector is loaded from the
     base's info structure (4 cycles, the per-array-use overhead), and the
     segment base is hoisted into a frame slot;
   - references to assigned bases are compiled so the effective offset is
     relative to the segment base, making the hardware limit check perform
     the array bound check;
   - references to spilled or computed bases inside loops fall back to the
     BCC-style software check, driven by the info structure;
   - references outside loops are not checked (§3.8);
   - segment registers used anywhere in a function are saved in the
     prologue and restored in the epilogue.

   The MPX-style backend mirrors the Cash structure with bounds
   registers instead of segment registers:
   - pointers stay 1 word; BND0 is the bounds-transit register — the
     invariant is that whenever a pointer value sits in EAX, BND0 holds
     its bounds (the analogue of Cash's EBX info-pointer convention);
   - wherever Cash moves EBX metadata to or from memory, MPX emits
     BNDSTX/BNDLDX keyed on the slot's linear address, so a caller's
     argument spill and the callee's parameter load meet at the same
     bound-table entry;
   - at loop entry the first [bnd_budget] assignable bases get BND1-3
     first-come-first-served (establishment hoisted to the preheader);
   - unlike Cash (§3.8), every reference is checked, in or out of
     loops — BNDCL/BNDCU are 1-cycle register checks, so coverage is
     cheap once the bounds are resident.

   The capability backend needs no per-function machinery at all:
   pointers are 2 words (value + EBX capability word riding the Cash
   metadata plumbing), CAPCHK validates every dereference in hardware,
   and CAPCLR clears the tag when arithmetic escapes the bounds. *)

open Machine
module Ast = Minic.Ast
module Ir = Minic.Ir

type stats = {
  mutable hw_checks : int;   (* static ref sites checked by segmentation *)
  mutable sw_checks : int;   (* static ref sites software-checked (Cash) *)
  mutable bcc_checks : int;  (* static ref sites checked by BCC *)
  mutable seg_loads : int;   (* static segment-register load sites *)
}

(* How an assigned base is addressed inside the active loop nest. *)
type seg_access =
  | Sa_array of { delta : int; base : [ `Const of int | `Slot of int ] }
    (* a named array variable: direct references use offset = delta +
       idx*scale, where delta > 0 only for >1 MiB arrays (Figure 2's page
       rounding); [base] is the segment base, for general dereferences *)
  | Sa_ptr of { base_slot : int; rel_slot : int option }
    (* a pointer variable: [base_slot] holds the hoisted segment base;
       [rel_slot], present when the pointer is loop-invariant, holds the
       hoisted (pointer value - segment base) so direct references pay no
       per-reference cost at all *)

type seg_assign = {
  seg : Seghw.Segreg.name;
  mutable access : seg_access;
  abase : Minic.Loop_analysis.base; (* which object this register covers *)
  mutable established : bool;
    (* selector loaded and hoist slots valid; false until the preheader
       (or, for pointers declared inside their loop, the definition site)
       has run *)
  mutable needs_reload : bool;
    (* the pointer was retargeted while a deeper loop owned the register:
       the selector must be reloaded when this assignment becomes active
       again *)
  mutable skip_def_reload : bool;
    (* every definition of this pointer inside the loop derives from one
       stable object whose segment was loaded at the preheader, so
       definition sites need no segment work at all *)
}

(* An MPX loop-nest assignment: base [abase] owns bounds register
   [breg] (1-3; 0 is the transit register and never assigned). *)
type mpx_assign = {
  breg : int;
  mbase : Minic.Loop_analysis.base;
}

type fenv = {
  kind : Backend.kind;
  prog : Ir.tprog;
  layout : Data_layout.t;
  analysis : Minic.Loop_analysis.t;
  stats : stats;
  label_counter : int ref;
  swcheck_counter : int ref;
  (* per-function state *)
  fname : string;
  mutable code : Insn.t list; (* reversed *)
  offsets : (int, int) Hashtbl.t;      (* sym id -> EBP offset of value *)
  info_offsets : (int, int) Hashtbl.t; (* sym id -> EBP offset of local
                                          array info struct (Cash) *)
  mutable frame_size : int;
  mutable seg_saves : (Seghw.Segreg.name * int) list;
  mutable loop_stack : int list;
  mutable active_nest : (string * seg_assign) list;
  mutable all_assigns : (string * seg_assign) list;
    (* every assignment live anywhere on the loop stack (for def-site
       bookkeeping when the base is not active in the innermost loop) *)
  mutable seg_contents : (Seghw.Segreg.name * string) list;
    (* which base key each segment register currently holds *)
  mutable break_labels : string list;
  mutable continue_labels : string list;
  mutable local_arrays : Ir.sym list; (* for prologue/epilogue seg calls *)
  (* MPX: the FCFS bounds-register nest, which base each BND register
     currently holds, and the frame slots the prologue/epilogue spill
     used registers through (BNDSTX/BNDLDX, the analogue of seg_saves) *)
  mutable mpx_nest : (string * mpx_assign) list;
  mutable bnd_contents : (int * string) list;
  mutable bnd_saves : (int * int) list;
}

let cash_config = function
  | Backend.Cash c -> Some c
  | Backend.Gcc | Backend.Bcc _ | Backend.Mpx _ | Backend.Cap _ -> None

let mpx_config = function Backend.Mpx c -> Some c | _ -> None

let cap_clears_on_escape = function
  | Backend.Cap { Backend.clear_on_escape } -> clear_on_escape
  | _ -> false

let emit env i = env.code <- i :: env.code

let fresh_label env stem =
  incr env.label_counter;
  Printf.sprintf ".L%d_%s" !(env.label_counter) stem

(* Frame-slot allocation for compiler temporaries. *)
let alloc_slot env size =
  let size = (size + 3) land lnot 3 in
  env.frame_size <- env.frame_size + size;
  -env.frame_size

(* --- operand helpers --------------------------------------------------- *)

let ebp_mem ?seg off = Insn.mem ?seg ~base:Registers.EBP ~disp:off ()
let abs_mem ?seg addr = Insn.mem ?seg ~disp:addr ()

(* Apply the 4-register configuration's PUSH/POP elimination: explicit DS
   overrides on EBP/ESP-based operands (§3.7). *)
let fix_mem env (m : Insn.mem) =
  match cash_config env.kind with
  | Some { Backend.rewrite_pushpop = true; _ } when m.Insn.seg = None ->
    (match m.Insn.base with
     | Some Registers.EBP | Some Registers.ESP ->
       { m with Insn.seg = Some Seghw.Segreg.DS }
     | _ -> m)
  | _ -> m

let fix_operand env (o : Insn.operand) =
  match o with Insn.Mem m -> Insn.Mem (fix_mem env m) | _ -> o

let emit_push env (o : Insn.operand) =
  match cash_config env.kind with
  | Some { Backend.rewrite_pushpop = true; _ } ->
    emit env (Insn.Alu (Insn.Sub, Insn.Reg Registers.ESP, Insn.Imm 4));
    let dst =
      Insn.Mem (Insn.mem ~seg:Seghw.Segreg.DS ~base:Registers.ESP ())
    in
    (match o with
     | Insn.Reg _ | Insn.Imm _ -> emit env (Insn.Mov (Insn.Long, dst, o))
     | Insn.Mem _ ->
       emit env (Insn.Mov (Insn.Long, Insn.Reg Registers.ESI, fix_operand env o));
       emit env (Insn.Mov (Insn.Long, dst, Insn.Reg Registers.ESI)))
  | _ -> emit env (Insn.Push (fix_operand env o))

let emit_pop env (o : Insn.operand) =
  match cash_config env.kind with
  | Some { Backend.rewrite_pushpop = true; _ } ->
    let src =
      Insn.Mem (Insn.mem ~seg:Seghw.Segreg.DS ~base:Registers.ESP ())
    in
    (match o with
     | Insn.Reg _ -> emit env (Insn.Mov (Insn.Long, o, src))
     | _ ->
       emit env (Insn.Mov (Insn.Long, Insn.Reg Registers.ESI, src));
       emit env (Insn.Mov (Insn.Long, fix_operand env o, Insn.Reg Registers.ESI)));
    emit env (Insn.Alu (Insn.Add, Insn.Reg Registers.ESP, Insn.Imm 4))
  | _ -> emit env (Insn.Pop (fix_operand env o))

let emit_mov env dst src = emit env (Insn.Mov (Insn.Long, fix_operand env dst, fix_operand env src))
let emit_movw env dst src = emit env (Insn.Mov (Insn.Word, fix_operand env dst, fix_operand env src))
let emit_movb env dst src = emit env (Insn.Mov (Insn.Byte, fix_operand env dst, fix_operand env src))
let emit_alu env op dst src =
  emit env (Insn.Alu (op, fix_operand env dst, fix_operand env src))
let emit_cmp env a b = emit env (Insn.Cmp (fix_operand env a, fix_operand env b))
let emit_lea env r m = emit env (Insn.Lea (r, m))
let emit_fmov env dst src =
  let fix = function Insn.Fmem m -> Insn.Fmem (fix_mem env m) | f -> f in
  emit env (Insn.Fmov (fix dst, fix src))

let eax = Insn.Reg Registers.EAX
let ebx = Insn.Reg Registers.EBX
let ecx = Insn.Reg Registers.ECX
let edx = Insn.Reg Registers.EDX
let esi = Insn.Reg Registers.ESI
let edi = Insn.Reg Registers.EDI
let xmm0 = Insn.Freg Registers.XMM0
let xmm1 = Insn.Freg Registers.XMM1

(* --- symbol locations -------------------------------------------------- *)

type loc =
  | Global of Data_layout.entry
  | Frame of int (* EBP offset of the value *)

let loc_of env (sym : Ir.sym) =
  match sym.Ir.storage with
  | Ir.Global_var -> Global (Data_layout.entry_exn env.layout sym)
  | Ir.Local_var | Ir.Param ->
    (match Hashtbl.find_opt env.offsets sym.Ir.id with
     | Some off -> Frame off
     | None -> failwith ("no frame slot for " ^ sym.Ir.name))

(* Operand for the value word(s) of a scalar/pointer variable, at byte
   offset [delta] into its representation. *)
let var_mem env sym ~delta =
  match loc_of env sym with
  | Global e -> abs_mem (e.Data_layout.addr + delta)
  | Frame off -> ebp_mem (off + delta)

(* Cash: operand(s) describing the info pointer of a base variable, or the
   address of the info structure for array variables. *)
type info_source =
  | Info_const of int      (* info structure at a known address *)
  | Info_frame of int      (* info structure in the frame at offset *)
  | Info_slot of Insn.mem  (* pointer variable's shadow word *)

let info_of_sym env (sym : Ir.sym) =
  match sym.Ir.ty with
  | Ast.Tarray _ ->
    (match loc_of env sym with
     | Global e -> Info_const e.Data_layout.info_addr
     | Frame _ ->
       (match Hashtbl.find_opt env.info_offsets sym.Ir.id with
        | Some off -> Info_frame off
        | None -> failwith ("no info slot for local array " ^ sym.Ir.name)))
  | Ast.Tptr _ -> Info_slot (fix_mem env (var_mem env sym ~delta:4))
  | _ -> failwith "info_of_sym: not an array or pointer"

(* Load the info-structure *address* into [reg]. *)
let load_info_addr env reg = function
  | Info_const addr -> emit_mov env (Insn.Reg reg) (Insn.Imm addr)
  | Info_frame off -> emit_lea env reg (ebp_mem off)
  | Info_slot m -> emit_mov env (Insn.Reg reg) (Insn.Mem m)

(* --- type/width helpers ------------------------------------------------ *)

let elem_size env ty = Backend.val_size env.kind ty

let elem_type (e : Ir.texpr) =
  match Ast.decay e.Ir.ty with
  | Ast.Tptr t -> t
  | _ -> failwith "elem_type: not a pointer"

let is_double ty = Ast.decay ty = Ast.Tdouble
let is_ptr ty = match Ast.decay ty with Ast.Tptr _ -> true | _ -> false

let ptr_meta_words env =
  match env.kind with
  | Backend.Gcc | Backend.Mpx _ -> 0
  | Backend.Cash _ | Backend.Cap _ -> 1
  | Backend.Bcc _ -> 2

(* Memory operands addressing a BCC bounds record (lower at +0, upper at
   +4) for an array variable or string literal. *)
let bcc_bounds_ops env (src : info_source) =
  match src with
  | Info_const a -> (abs_mem a, abs_mem (a + 4))
  | Info_frame off -> (fix_mem env (ebp_mem off), fix_mem env (ebp_mem (off + 4)))
  | Info_slot _ -> invalid_arg "bcc_bounds_ops: not an array record"

(* Cash §3.5: for arrays larger than 1 MiB the segment is the minimal
   multiple of 4 KiB with the array's *end* aligned to the segment's end;
   direct references therefore add the rounding delta to the offset. *)
let seg_delta size =
  if size <= 1 lsl 20 then 0 else ((size + 4095) / 4096 * 4096) - size

(* --- value spilling ---------------------------------------------------- *)

(* Spill the current expression result of type [ty] to the machine stack;
   for pointers, metadata is pushed first so the value word ends at ESP. *)
let push_result env ty =
  if is_double ty then begin
    emit_alu env Insn.Sub (Insn.Reg Registers.ESP) (Insn.Imm 8);
    emit_fmov env (Insn.Fmem (Insn.mem ~base:Registers.ESP ())) xmm0
  end
  else begin
    if is_ptr ty then begin
      if ptr_meta_words env >= 2 then emit_push env ecx;
      if ptr_meta_words env >= 1 then emit_push env ebx
    end;
    emit_push env eax;
    (* MPX keeps pointers 1 word; the bounds follow the value through the
       bound table instead, keyed on the spill slot's linear address *)
    (match env.kind with
     | Backend.Mpx _ when is_ptr ty ->
       emit env (Insn.Bndstx (0, Insn.mem ~base:Registers.ESP ()))
     | _ -> ())
  end

(* MPX: recover BND0 for a pointer value about to be popped from [ESP]. *)
let mpx_reload_spilled env =
  match env.kind with
  | Backend.Mpx _ ->
    emit env (Insn.Bndldx (0, Insn.mem ~base:Registers.ESP ()))
  | _ -> ()

(* Load "no provenance" pointer metadata: the flat global segment (Cash)
   or the whole address space (BCC). *)
let load_unchecked_meta env =
  match env.kind with
  | Backend.Gcc -> ()
  | Backend.Cash _ ->
    emit_mov env ebx (Insn.Imm env.layout.Data_layout.unchecked_info)
  | Backend.Bcc _ ->
    emit_mov env ebx (Insn.Imm 0);
    emit_mov env ecx (Insn.Imm 0xFFFFFFFF)
  | Backend.Mpx _ ->
    (* BNDMK with no base register: [0, disp) — the unbounded range *)
    emit env (Insn.Bndmk (0, Insn.mem ~disp:0xFFFFFFFF ()))
  | Backend.Cap _ ->
    (* a tagged universal capability: checks pass, parity with BCC's
       unknown-provenance sentinel *)
    emit env (Insn.Capmk (Registers.EBX, Insn.Imm 0, Insn.Imm 0xFFFFFFFF))

(* --- condition-code helpers ------------------------------------------- *)

let signed_cond = function
  | Ast.Lt -> Insn.Lt | Ast.Le -> Insn.Le | Ast.Gt -> Insn.Gt
  | Ast.Ge -> Insn.Ge | Ast.Eq -> Insn.Eq | Ast.Ne -> Insn.Ne
  | _ -> invalid_arg "signed_cond"

let unsigned_cond = function
  | Ast.Lt -> Insn.Below | Ast.Le -> Insn.Below_eq | Ast.Gt -> Insn.Above
  | Ast.Ge -> Insn.Above_eq | Ast.Eq -> Insn.Eq | Ast.Ne -> Insn.Ne
  | _ -> invalid_arg "unsigned_cond"

let negate_cond = function
  | Insn.Eq -> Insn.Ne | Insn.Ne -> Insn.Eq
  | Insn.Lt -> Insn.Ge | Insn.Le -> Insn.Gt
  | Insn.Gt -> Insn.Le | Insn.Ge -> Insn.Lt
  | Insn.Below -> Insn.Above_eq | Insn.Below_eq -> Insn.Above
  | Insn.Above -> Insn.Below_eq | Insn.Above_eq -> Insn.Below

(* --- segment-register bookkeeping (Cash) ------------------------------- *)

let ensure_seg_saved env seg =
  if not (List.mem_assoc seg env.seg_saves) then begin
    let slot = alloc_slot env 4 in
    env.seg_saves <- (seg, slot) :: env.seg_saves
  end

let fault_label env = Printf.sprintf ".Lfault_%s" env.fname

(* Emit the zero-cost dynamic counter for an executed software check. *)
let emit_swcheck_stat env =
  incr env.swcheck_counter;
  emit env (Insn.Label (Printf.sprintf "__stat_swc_%d" !(env.swcheck_counter)))

(* Software check of the address in [addr_reg] for an access of [size]
   bytes, against bounds described by [bounds]:
     [`Info_reg r]   Cash info structure whose address is in register r
     [`Regs]         BCC bounds already in EBX (lower) / ECX (upper)
     [`Slots (l,u)]  bounds in memory operands l and u
     [`Consts (l,u)] static bounds
   [sentinel] adds BCC's guard for pointers of unknown provenance (real
   BCC tests its "unknown bounds" marker before comparing). *)
type sw_bounds =
  [ `Info_reg of Registers.reg      (* Cash info structure address *)
  | `Regs                           (* BCC bounds in EBX/ECX *)
  | `Slots of Insn.mem * Insn.mem   (* bounds in memory operands *)
  | `Consts of int * int ]          (* static bounds *)

let emit_sw_check ?(sentinel = false) env ~addr_reg ~size
    (bounds : sw_bounds) =
  emit_swcheck_stat env;
  let fault = fault_label env in
  let a = Insn.Reg addr_reg in
  let skip =
    if sentinel then begin
      let l = fresh_label env "nobounds" in
      (match bounds with
       | `Regs -> emit_cmp env ebx (Insn.Imm 0)
       | `Slots (lo, _) -> emit_cmp env (Insn.Mem lo) (Insn.Imm 0)
       | `Info_reg _ | `Consts _ -> emit_cmp env a a (* never taken *));
      emit env (Insn.Jcc (Insn.Eq, l));
      Some l
    end
    else None
  in
  let use_bound =
    match env.kind with
    | Backend.Bcc { Backend.use_bound_insn = true } -> true
    | _ -> false
  in
  if use_bound then begin
    (* §2: one BOUND instruction against the contiguous (lower, upper)
       pair. The checked value is addr+size, making the one-past-the-end
       comparison exact; the lower bound is loose by [size] bytes, the
       same tolerance the 6-instruction sequence's lea introduces the
       other way. BOUND requires its pair in memory, so register-resident
       bounds must first spill — part of why the instruction lost to the
       plain sequence. *)
    emit_lea env Registers.ESI (Insn.mem ~base:addr_reg ~disp:size ());
    (match bounds with
     | `Slots (lo, _) ->
       (match lo with
        | { Insn.base = Some Registers.EBP; disp; _ } ->
          emit env (Insn.Bound (Registers.ESI, fix_mem env (ebp_mem disp)))
        | { Insn.base = None; disp; _ } ->
          emit env (Insn.Bound (Registers.ESI, abs_mem disp))
        | _ -> assert false)
     | `Regs ->
       let tmp = alloc_slot env 8 in
       emit_mov env (Insn.Mem (ebp_mem tmp)) ebx;
       emit_mov env (Insn.Mem (ebp_mem (tmp + 4))) ecx;
       emit env (Insn.Bound (Registers.ESI, fix_mem env (ebp_mem tmp)))
     | `Consts (l, u) ->
       let tmp = alloc_slot env 8 in
       emit_mov env (Insn.Mem (ebp_mem tmp)) (Insn.Imm l);
       emit_mov env (Insn.Mem (ebp_mem (tmp + 4))) (Insn.Imm u);
       emit env (Insn.Bound (Registers.ESI, fix_mem env (ebp_mem tmp)))
     | `Info_reg r ->
       (* Cash never uses the BOUND variant, but keep it total: bounds
          live at info+4 (base) and info+8 (upper) *)
       emit env
         (Insn.Bound (Registers.ESI, Insn.mem ~base:r ~disp:4 ())));
    match skip with Some l -> emit env (Insn.Label l) | None -> ()
  end
  else begin
  (match bounds with
   | `Info_reg r ->
     emit_cmp env a (Insn.Mem (Insn.mem ~base:r ~disp:4 ()));
     emit env (Insn.Jcc (Insn.Below, fault));
     emit_lea env Registers.ESI (Insn.mem ~base:addr_reg ~disp:size ());
     emit_cmp env esi (Insn.Mem (Insn.mem ~base:r ~disp:8 ()));
     emit env (Insn.Jcc (Insn.Above, fault))
   | `Regs ->
     emit_cmp env a ebx;
     emit env (Insn.Jcc (Insn.Below, fault));
     emit_lea env Registers.ESI (Insn.mem ~base:addr_reg ~disp:size ());
     emit_cmp env esi ecx;
     emit env (Insn.Jcc (Insn.Above, fault))
   | `Slots (l, u) ->
     emit_cmp env a (Insn.Mem l);
     emit env (Insn.Jcc (Insn.Below, fault));
     emit_lea env Registers.ESI (Insn.mem ~base:addr_reg ~disp:size ());
     emit_cmp env esi (Insn.Mem u);
     emit env (Insn.Jcc (Insn.Above, fault))
   | `Consts (l, u) ->
     emit_cmp env a (Insn.Imm l);
     emit env (Insn.Jcc (Insn.Below, fault));
     emit_lea env Registers.ESI (Insn.mem ~base:addr_reg ~disp:size ());
     emit_cmp env esi (Insn.Imm u);
     emit env (Insn.Jcc (Insn.Above, fault)));
  match skip with Some l -> emit env (Insn.Label l) | None -> ()
  end

(* --- reference plans --------------------------------------------------- *)

(* What kind of bound checking applies to one array-like reference site. *)
type plan =
  | P_unchecked
  | P_hw of seg_assign          (* Cash: the segment hardware checks it *)
  | P_bcc_direct of int         (* BCC direct array ref: index < count *)
  | P_sw_var                    (* software check, base is a named var *)
  | P_sw_regs                   (* software check, metadata in registers *)
  | P_mpx of mpx_assign option  (* MPX: BNDCL/BNDCU against BND1-3 (Some)
                                   or bounds established into BND0 (None) *)
  | P_cap                       (* capability: CAPCHK validates the access *)

let in_loop env = env.loop_stack <> []

let base_of_expr (e : Ir.texpr) = Minic.Loop_analysis.classify_base e

let active_assignment env b =
  List.assoc_opt (Minic.Loop_analysis.base_key b) env.active_nest

(* Subtract the active segment base from the pointer value in [reg]
   (general dereference path under a hardware plan). *)
let emit_sub_segbase env reg (access : seg_access) =
  match access with
  | Sa_array { base = `Const c; _ } ->
    emit_alu env Insn.Sub (Insn.Reg reg) (Insn.Imm c)
  | Sa_array { base = `Slot o; _ } ->
    emit_alu env Insn.Sub (Insn.Reg reg) (Insn.Mem (ebp_mem o))
  | Sa_ptr { base_slot; _ } ->
    emit_alu env Insn.Sub (Insn.Reg reg) (Insn.Mem (ebp_mem base_slot))

(* Force a computed element address into EDI, keeping any segment
   override: the LEA computes the segment-relative offset, the override
   re-applies the segment on the final access. *)
let materialize_addr env (m : Insn.mem) =
  match m.Insn.base, m.Insn.index, m.Insn.disp with
  | Some Registers.EDI, None, 0 -> m
  | _ ->
    emit_lea env Registers.EDI { m with Insn.seg = None };
    Insn.mem ?seg:m.Insn.seg ~base:Registers.EDI ()

let scale_ok s = s = 1 || s = 2 || s = 4 || s = 8

(* string literal helpers *)
let str_addr env i = Data_layout.string_addr env.layout i
let str_info env i = Data_layout.string_info env.layout i
let str_size env i = Data_layout.string_size env.layout env.prog i

(* --- bounds-register bookkeeping (MPX) --------------------------------- *)

(* BND1-3 are callee-saved through the bound table (the analogue of
   Cash's seg_saves); BND0 is the caller-save transit register. *)
let ensure_bnd_saved env breg =
  if breg <> 0 && not (List.mem_assoc breg env.bnd_saves) then begin
    let slot = alloc_slot env 4 in
    env.bnd_saves <- (breg, slot) :: env.bnd_saves
  end

let record_bnd_contents env breg key =
  env.bnd_contents <- (breg, key) :: List.remove_assoc breg env.bnd_contents

(* Load the bounds of base [b] into BND register [breg]: BNDMK from the
   object's static extent for arrays and string literals, BNDLDX through
   the pointer variable's slot for pointer variables. *)
let mpx_load_base_bounds env ~breg (b : Minic.Loop_analysis.base) =
  (match b with
   | Minic.Loop_analysis.Bstr i ->
     emit_mov env esi (Insn.Imm (str_addr env i));
     emit env
       (Insn.Bndmk
          (breg, Insn.mem ~base:Registers.ESI ~disp:(str_size env i) ()))
   | Minic.Loop_analysis.Bsym sym ->
     (match sym.Ir.ty with
      | Ast.Tarray (elem, n) ->
        let total = n * elem_size env elem in
        (match loc_of env sym with
         | Global e -> emit_mov env esi (Insn.Imm e.Data_layout.addr)
         | Frame off -> emit_lea env Registers.ESI (ebp_mem off));
        emit env
          (Insn.Bndmk (breg, Insn.mem ~base:Registers.ESI ~disp:total ()))
      | Ast.Tptr _ ->
        emit env (Insn.Bndldx (breg, fix_mem env (var_mem env sym ~delta:0)))
      | _ -> assert false)
   | Minic.Loop_analysis.Bcomplex -> assert false);
  record_bnd_contents env breg (Minic.Loop_analysis.base_key b)

(* Full establishment of a loop-nest assignment (the analogue of
   [establish_assignment]): spill slot reserved, bounds loaded. *)
let mpx_establish env (a : mpx_assign) =
  ensure_bnd_saved env a.breg;
  env.stats.seg_loads <- env.stats.seg_loads + 1;
  mpx_load_base_bounds env ~breg:a.breg a.mbase

(* --- capability metadata (Cap) ----------------------------------------- *)

(* Load the capability word describing base [b] into EBX: CAPMK interns
   static extents in the hardware capability table; pointer variables
   carry their capability in the shadow word at value+4. *)
let cap_load_base_meta env (b : Minic.Loop_analysis.base) =
  match b with
  | Minic.Loop_analysis.Bstr i ->
    let lo = str_addr env i in
    emit env
      (Insn.Capmk
         (Registers.EBX, Insn.Imm lo, Insn.Imm (lo + str_size env i)))
  | Minic.Loop_analysis.Bsym sym ->
    (match sym.Ir.ty with
     | Ast.Tarray (elem, n) ->
       let total = n * elem_size env elem in
       (match loc_of env sym with
        | Global e ->
          emit env
            (Insn.Capmk
               (Registers.EBX, Insn.Imm e.Data_layout.addr,
                Insn.Imm (e.Data_layout.addr + total)))
        | Frame off ->
          emit_lea env Registers.ESI (ebp_mem off);
          emit_lea env Registers.EDI (ebp_mem (off + total));
          emit env (Insn.Capmk (Registers.EBX, esi, edi)))
     | Ast.Tptr _ ->
       emit_mov env ebx (Insn.Mem (fix_mem env (var_mem env sym ~delta:4)))
     | _ -> assert false)
  | Minic.Loop_analysis.Bcomplex -> assert false

(* After pointer arithmetic (result in EAX, capability in EBX): clear the
   tag in hardware if the new value escaped the capability's bounds. *)
let cap_clear_escape env =
  if cap_clears_on_escape env.kind then
    emit env (Insn.Capclr (Registers.EAX, Registers.EBX))

(* --- per-loop segment-register assignment (§3.3, §3.7) ------------------

   At entry to EVERY loop, the first [seg_budget] distinct assignable
   bases of that loop get a segment register each, first-come-first-served.
   A base inherited from the enclosing loop (same base, same register)
   keeps its record — its hoisted slots stay valid and no code is emitted;
   a new base pays the selector load (the 4-cycle per-array-use overhead)
   plus base-slot hoisting. When an inner loop returns, registers it
   repurposed are re-established for the enclosing loop with a bare
   selector reload (the slots never moved). *)

let make_assignment env b seg =
  let access =
    match b with
    | Minic.Loop_analysis.Bstr i ->
      Sa_array { delta = 0; base = `Const (str_addr env i) }
    | Minic.Loop_analysis.Bsym sym ->
      (match sym.Ir.ty with
       | Ast.Tarray (elem, n) ->
         let total = n * elem_size env elem in
         let delta = seg_delta total in
         (match loc_of env sym with
          | Global entry ->
            Sa_array
              { delta; base = `Const (entry.Data_layout.addr - delta) }
          | Frame _ -> Sa_array { delta; base = `Slot (alloc_slot env 4) })
       | Ast.Tptr _ -> Sa_ptr { base_slot = alloc_slot env 4; rel_slot = None }
       | _ -> assert false)
    | Minic.Loop_analysis.Bcomplex -> assert false
  in
  { seg; access; abase = b; established = false; needs_reload = false;
    skip_def_reload = false }

let record_seg_contents env seg key =
  env.seg_contents <- (seg, key) :: List.remove_assoc seg env.seg_contents

(* Load just the selector into the assignment's register (hoist slots are
   already valid): the cheap re-establishment path. *)
let emit_selector_load env (a : seg_assign) =
  env.stats.seg_loads <- env.stats.seg_loads + 1;
  (match a.abase with
   | Minic.Loop_analysis.Bstr i ->
     emit env (Insn.Mov_to_seg (a.seg, Insn.Mem (abs_mem (str_info env i))))
   | Minic.Loop_analysis.Bsym sym ->
     (match sym.Ir.ty with
      | Ast.Tarray _ ->
        (match info_of_sym env sym with
         | Info_const info ->
           emit env (Insn.Mov_to_seg (a.seg, Insn.Mem (abs_mem info)))
         | Info_frame off ->
           emit env
             (Insn.Mov_to_seg (a.seg, Insn.Mem (fix_mem env (ebp_mem off))))
         | Info_slot _ -> assert false)
      | _ ->
        load_info_addr env Registers.ECX (info_of_sym env sym);
        emit env
          (Insn.Mov_to_seg (a.seg, Insn.Mem (Insn.mem ~base:Registers.ECX ()))))
   | Minic.Loop_analysis.Bcomplex -> assert false);
  a.needs_reload <- false;
  record_seg_contents env a.seg (Minic.Loop_analysis.base_key a.abase)

(* Full setup: selector load plus hoisted segment-base (and, for pointers
   that stay invariant in this loop, the hoisted relative base that makes
   their references free). *)
let establish_assignment env (a : seg_assign) ~invariant =
  ensure_seg_saved env a.seg;
  (match a.abase, a.access with
   | Minic.Loop_analysis.Bstr _, _ -> emit_selector_load env a
   | Minic.Loop_analysis.Bsym sym, Sa_array { delta; base } ->
     emit_selector_load env a;
     (match base, loc_of env sym with
      | `Slot slot, Frame data_off ->
        emit_lea env Registers.ESI (ebp_mem (data_off - delta));
        emit_mov env (Insn.Mem (ebp_mem slot)) esi
      | `Const _, _ -> ()
      | `Slot _, Global _ -> assert false)
   | Minic.Loop_analysis.Bsym sym, Sa_ptr { base_slot; _ } ->
     env.stats.seg_loads <- env.stats.seg_loads + 1;
     load_info_addr env Registers.ECX (info_of_sym env sym);
     emit env
       (Insn.Mov_to_seg (a.seg, Insn.Mem (Insn.mem ~base:Registers.ECX ())));
     record_seg_contents env a.seg (Minic.Loop_analysis.base_key a.abase);
     emit_mov env esi (Insn.Mem (Insn.mem ~base:Registers.ECX ~disp:4 ()));
     emit_mov env (Insn.Mem (ebp_mem base_slot)) esi;
     if invariant then begin
       let r = alloc_slot env 4 in
       emit_mov env edi (Insn.Mem (var_mem env sym ~delta:0));
       emit_alu env Insn.Sub edi esi;
       emit_mov env (Insn.Mem (ebp_mem r)) edi;
       a.access <- Sa_ptr { base_slot; rel_slot = Some r }
     end
   | Minic.Loop_analysis.Bcomplex, _ -> assert false);
  a.established <- true;
  a.needs_reload <- false

(* Establish a pointer assignment by *borrowing* the segment of the one
   stable object all its in-loop definitions derive from (p = zone + k
   inside the loop): the selector and base are the source object's and are
   loaded once at the preheader; definition sites then need no segment
   work (§3.3's hoisting taken to its logical end). *)
let establish_from_source env (a : seg_assign) (src : Minic.Loop_analysis.base)
    =
  ensure_seg_saved env a.seg;
  env.stats.seg_loads <- env.stats.seg_loads + 1;
  let base_slot =
    match a.access with
    | Sa_ptr { base_slot; _ } -> base_slot
    | Sa_array _ -> invalid_arg "establish_from_source: not a pointer"
  in
  (match src with
   | Minic.Loop_analysis.Bstr i ->
     emit env (Insn.Mov_to_seg (a.seg, Insn.Mem (abs_mem (str_info env i))));
     emit_mov env (Insn.Mem (ebp_mem base_slot)) (Insn.Imm (str_addr env i))
   | Minic.Loop_analysis.Bsym sym ->
     (match sym.Ir.ty with
      | Ast.Tarray (elem, n) ->
        let total = n * elem_size env elem in
        let delta = seg_delta total in
        (match info_of_sym env sym with
         | Info_const info ->
           emit env (Insn.Mov_to_seg (a.seg, Insn.Mem (abs_mem info)))
         | Info_frame off ->
           emit env
             (Insn.Mov_to_seg (a.seg, Insn.Mem (fix_mem env (ebp_mem off))))
         | Info_slot _ -> assert false);
        (match loc_of env sym with
         | Global entry ->
           emit_mov env (Insn.Mem (ebp_mem base_slot))
             (Insn.Imm (entry.Data_layout.addr - delta))
         | Frame data_off ->
           emit_lea env Registers.ESI (ebp_mem (data_off - delta));
           emit_mov env (Insn.Mem (ebp_mem base_slot)) esi)
      | Ast.Tptr _ ->
        load_info_addr env Registers.ECX (info_of_sym env sym);
        emit env
          (Insn.Mov_to_seg (a.seg, Insn.Mem (Insn.mem ~base:Registers.ECX ())));
        emit_mov env esi (Insn.Mem (Insn.mem ~base:Registers.ECX ~disp:4 ()));
        emit_mov env (Insn.Mem (ebp_mem base_slot)) esi
      | _ -> assert false)
   | Minic.Loop_analysis.Bcomplex -> assert false);
  record_seg_contents env a.seg (Minic.Loop_analysis.base_key a.abase);
  a.established <- true;
  a.needs_reload <- false;
  a.skip_def_reload <- true

(* Hoist (pointer - segment base) at this loop's entry for an inherited
   pointer assignment that is invariant within this loop: references
   inside become free (the "standard optimisation compiler" hoisting the
   paper relies on, §3.3). Reverted by the caller at loop exit. *)
let add_rel_hoist env (a : seg_assign) =
  match a.access, a.abase with
  | Sa_ptr { base_slot; rel_slot = None }, Minic.Loop_analysis.Bsym sym
    when a.established ->
    let r = alloc_slot env 4 in
    emit_mov env edi (Insn.Mem (var_mem env sym ~delta:0));
    emit_alu env Insn.Sub edi (Insn.Mem (ebp_mem base_slot));
    emit_mov env (Insn.Mem (ebp_mem r)) edi;
    a.access <- Sa_ptr { base_slot; rel_slot = Some r };
    true
  | _ -> false

(* Re-establish segment register and hoisted base after a pointer that
   carries a live segment assignment is retargeted (p = <new object>).
   If the assignment is active in the innermost loop, the register is
   reloaded immediately; if it belongs to an enclosing loop whose register
   a deeper loop may be using, only the slots are refreshed and the
   selector reload is deferred to the loop-exit re-establishment pass.
   Same-object updates (p++, p = p + k) keep everything valid and skip
   this entirely. *)
let gen_seg_reload_at_def env (sym : Ir.sym) (a : seg_assign) ~active =
  match a.access with
  | Sa_ptr { base_slot; rel_slot } ->
    load_info_addr env Registers.ECX (info_of_sym env sym);
    if active then begin
      env.stats.seg_loads <- env.stats.seg_loads + 1;
      emit env
        (Insn.Mov_to_seg (a.seg, Insn.Mem (Insn.mem ~base:Registers.ECX ())));
      record_seg_contents env a.seg (Minic.Loop_analysis.base_key a.abase);
      a.needs_reload <- false
    end
    else a.needs_reload <- true;
    emit_mov env esi (Insn.Mem (Insn.mem ~base:Registers.ECX ~disp:4 ()));
    emit_mov env (Insn.Mem (ebp_mem base_slot)) esi;
    (match rel_slot with
     | Some r ->
       emit_mov env edi (Insn.Mem (var_mem env sym ~delta:0));
       emit_alu env Insn.Sub edi esi;
       emit_mov env (Insn.Mem (ebp_mem r)) edi
     | None -> ());
    a.established <- true
  | Sa_array _ -> ()


(* Decide the plan for a reference through pointer expression [pe], where
   [direct_index] says the site is a[i] with a a named array variable. *)
let decide_plan env ~pe ~direct_index ~is_store =
  match env.kind with
  | Backend.Gcc -> P_unchecked
  | Backend.Bcc _ ->
    ignore direct_index;
    env.stats.bcc_checks <- env.stats.bcc_checks + 1;
    (match base_of_expr pe with
     | Minic.Loop_analysis.Bsym _ | Minic.Loop_analysis.Bstr _ ->
       (match pe.Ir.e with
        | Ir.Tvar _ | Ir.Tstr_lit _ -> P_sw_var
        | _ -> P_sw_regs)
     | Minic.Loop_analysis.Bcomplex -> P_sw_regs)
  | Backend.Cash cfg ->
    if not (in_loop env) then P_unchecked
    else begin
      let b = base_of_expr pe in
      match active_assignment env b with
      | Some a ->
        env.stats.hw_checks <- env.stats.hw_checks + 1;
        (* safety net: a deferred selector reload pending at a reference
           site is materialised here *)
        if a.established && a.needs_reload then emit_selector_load env a;
        P_hw a
      | None ->
        if (not cfg.Backend.check_reads) && not is_store then
          (* security-only mode (§3.8): reads are not worth a software
             check — only writes corrupt state *)
          P_unchecked
        else begin
          env.stats.sw_checks <- env.stats.sw_checks + 1;
          (match pe.Ir.e with
           | Ir.Tvar _ | Ir.Tstr_lit _ -> P_sw_var
           | _ -> P_sw_regs)
        end
    end
  | Backend.Mpx _ ->
    (* check-everywhere coverage: BNDCL/BNDCU are 1-cycle register
       checks, so, unlike Cash, direct references outside loops are
       checked too. An active loop-nest assignment supplies a resident
       BND1-3; otherwise bounds are established into BND0 at the site. *)
    env.stats.hw_checks <- env.stats.hw_checks + 1;
    let b = base_of_expr pe in
    P_mpx (List.assoc_opt (Minic.Loop_analysis.base_key b) env.mpx_nest)
  | Backend.Cap _ ->
    env.stats.hw_checks <- env.stats.hw_checks + 1;
    P_cap


(* --- the mutually recursive generator ---------------------------------- *)

let rec gen_expr env (e : Ir.texpr) =
  match e.Ir.e with
  | Ir.Tint_lit n -> emit_mov env eax (Insn.Imm n)
  | Ir.Tfloat_lit f -> emit env (Insn.Fload_const (Registers.XMM0, f))
  | Ir.Tstr_lit i ->
    emit_mov env eax (Insn.Imm (str_addr env i));
    (match env.kind with
     | Backend.Gcc -> ()
     | Backend.Cash _ -> emit_mov env ebx (Insn.Imm (str_info env i))
     | Backend.Bcc _ ->
       let rec_addr = str_info env i in
       emit_mov env ebx (Insn.Mem (abs_mem rec_addr));
       emit_mov env ecx (Insn.Mem (abs_mem (rec_addr + 4)))
     | Backend.Mpx _ ->
       mpx_load_base_bounds env ~breg:0 (Minic.Loop_analysis.Bstr i)
     | Backend.Cap _ -> cap_load_base_meta env (Minic.Loop_analysis.Bstr i))
  | Ir.Tsizeof ty -> emit_mov env eax (Insn.Imm (Backend.sizeof env.kind ty))
  | Ir.Tvar sym -> gen_var env sym
  | Ir.Tindex _ | Ir.Tderef _ -> gen_ref_load env e
  | Ir.Taddr inner -> gen_addr_of env inner
  | Ir.Tunop (op, a) -> gen_unop env op a
  | Ir.Tbinop (op, a, b) -> gen_binop env e.Ir.ty op a b
  | Ir.Tland (a, b) ->
    let lfalse = fresh_label env "andf" in
    let lend = fresh_label env "ande" in
    gen_branch env a ~jump_if:false ~target:lfalse;
    gen_branch env b ~jump_if:false ~target:lfalse;
    emit_mov env eax (Insn.Imm 1);
    emit env (Insn.Jmp lend);
    emit env (Insn.Label lfalse);
    emit_mov env eax (Insn.Imm 0);
    emit env (Insn.Label lend)
  | Ir.Tlor (a, b) ->
    let ltrue = fresh_label env "ort" in
    let lend = fresh_label env "ore" in
    gen_branch env a ~jump_if:true ~target:ltrue;
    gen_branch env b ~jump_if:true ~target:ltrue;
    emit_mov env eax (Insn.Imm 0);
    emit env (Insn.Jmp lend);
    emit env (Insn.Label ltrue);
    emit_mov env eax (Insn.Imm 1);
    emit env (Insn.Label lend)
  | Ir.Tcond (c, a, b) ->
    let lelse = fresh_label env "celse" in
    let lend = fresh_label env "cend" in
    gen_branch env c ~jump_if:false ~target:lelse;
    gen_expr env a;
    emit env (Insn.Jmp lend);
    emit env (Insn.Label lelse);
    gen_expr env b;
    emit env (Insn.Label lend)
  | Ir.Tassign (lv, rhs) -> gen_assign env lv rhs
  | Ir.Tincdec (pos, op, lv) -> gen_incdec env pos op lv
  | Ir.Tcall (fsym, args) -> gen_call env fsym args
  | Ir.Tbuiltin (b, args) -> gen_builtin env b args
  | Ir.Tcast (ty, inner) -> gen_cast env ty inner

and gen_var env (sym : Ir.sym) =
  match sym.Ir.ty with
  | Ast.Tint -> emit_mov env eax (Insn.Mem (var_mem env sym ~delta:0))
  | Ast.Tchar ->
    emit env
      (Insn.Movzx
         (Registers.EAX, fix_operand env (Insn.Mem (var_mem env sym ~delta:0)),
          Insn.Byte))
  | Ast.Tdouble ->
    emit_fmov env xmm0 (Insn.Fmem (var_mem env sym ~delta:0))
  | Ast.Tptr _ ->
    emit_mov env eax (Insn.Mem (var_mem env sym ~delta:0));
    (match env.kind with
     | Backend.Gcc -> ()
     | Backend.Cash _ | Backend.Cap _ ->
       emit_mov env ebx (Insn.Mem (var_mem env sym ~delta:4))
     | Backend.Bcc _ ->
       emit_mov env ebx (Insn.Mem (var_mem env sym ~delta:4));
       emit_mov env ecx (Insn.Mem (var_mem env sym ~delta:8))
     | Backend.Mpx _ ->
       emit env (Insn.Bndldx (0, fix_mem env (var_mem env sym ~delta:0))))
  | Ast.Tarray (elem, n) ->
    (* the array decays to a pointer to its first element *)
    let total = n * elem_size env elem in
    (match loc_of env sym with
     | Global entry -> emit_mov env eax (Insn.Imm entry.Data_layout.addr)
     | Frame off -> emit_lea env Registers.EAX (ebp_mem off));
    (match env.kind with
     | Backend.Gcc -> ()
     | Backend.Cash _ ->
       (match info_of_sym env sym with
        | Info_const a -> emit_mov env ebx (Insn.Imm a)
        | Info_frame off -> emit_lea env Registers.EBX (ebp_mem off)
        | Info_slot m -> emit_mov env ebx (Insn.Mem m))
     | Backend.Bcc _ ->
       ignore total;
       let lo, hi = bcc_bounds_ops env (info_of_sym env sym) in
       emit_mov env ebx (Insn.Mem lo);
       emit_mov env ecx (Insn.Mem hi)
     | Backend.Mpx _ ->
       mpx_load_base_bounds env ~breg:0 (Minic.Loop_analysis.Bsym sym)
     | Backend.Cap _ ->
       cap_load_base_meta env (Minic.Loop_analysis.Bsym sym))
  | Ast.Tvoid -> failwith "void variable"

and gen_addr_of env (inner : Ir.texpr) =
  match inner.Ir.e with
  | Ir.Tindex (base, idx) ->
    (* &a[i] is pointer arithmetic: base + i, keeping provenance *)
    gen_binop env (Ast.Tptr inner.Ir.ty) Ast.Add base idx
  | Ir.Tderef pe -> gen_expr env pe
  | Ir.Tvar sym ->
    (match sym.Ir.ty with
     | Ast.Tarray _ -> gen_var env sym
     | _ ->
       (* address of a scalar: Cash associates it with the global segment
          (§3.9), disabling checks for the resulting pointer *)
       (match loc_of env sym with
        | Global entry -> emit_mov env eax (Insn.Imm entry.Data_layout.addr)
        | Frame off -> emit_lea env Registers.EAX (ebp_mem off));
       load_unchecked_meta env)
  | _ -> failwith "address-of requires an lvalue"

and gen_cast env ty (inner : Ir.texpr) =
  let from_ty = Ast.decay inner.Ir.ty in
  let to_ty = Ast.decay ty in
  gen_expr env inner;
  match from_ty, to_ty with
  | a, b when a = b -> ()
  | (Ast.Tint | Ast.Tchar), Ast.Tdouble ->
    emit env (Insn.Cvtsi2sd (Registers.XMM0, eax))
  | Ast.Tdouble, (Ast.Tint | Ast.Tchar) ->
    emit env (Insn.Cvtsd2si (Registers.EAX, xmm0))
  | Ast.Tint, Ast.Tchar -> emit_alu env Insn.And eax (Insn.Imm 0xFF)
  | Ast.Tchar, Ast.Tint -> ()
  | Ast.Tptr _, Ast.Tptr _ -> () (* metadata flows through *)
  | (Ast.Tint | Ast.Tchar), Ast.Tptr _ -> load_unchecked_meta env
  | Ast.Tptr _, (Ast.Tint | Ast.Tchar) -> ()
  | _ ->
    failwith
      (Printf.sprintf "unsupported cast from %s to %s" (Ast.show_ty from_ty)
         (Ast.show_ty to_ty))

and gen_unop env op (a : Ir.texpr) =
  match op with
  | Ast.Neg ->
    gen_expr env a;
    if is_double a.Ir.ty then emit env (Insn.Fneg Registers.XMM0)
    else emit env (Insn.Neg (eax))
  | Ast.Bnot ->
    gen_expr env a;
    emit_alu env Insn.Xor eax (Insn.Imm 0xFFFFFFFF)
  | Ast.Lnot ->
    if is_double a.Ir.ty then begin
      gen_expr env a;
      emit env (Insn.Fload_const (Registers.XMM1, 0.0));
      emit env (Insn.Fcmp (Registers.XMM0, xmm1));
      emit env (Insn.Setcc (Insn.Eq, Registers.EAX))
    end
    else begin
      gen_expr env a;
      emit env (Insn.Test (eax, eax));
      emit env (Insn.Setcc (Insn.Eq, Registers.EAX))
    end

(* An operand usable directly in an ALU instruction without clobbering
   registers: an int literal or a plain int variable. *)
and leaf_int_operand env (e : Ir.texpr) =
  match e.Ir.e with
  | Ir.Tint_lit n -> Some (Insn.Imm n)
  | Ir.Tsizeof ty -> Some (Insn.Imm (Backend.sizeof env.kind ty))
  | Ir.Tvar sym when sym.Ir.ty = Ast.Tint ->
    Some (Insn.Mem (var_mem env sym ~delta:0))
  | _ -> None

and leaf_double_operand env (e : Ir.texpr) =
  match e.Ir.e with
  | Ir.Tvar sym when sym.Ir.ty = Ast.Tdouble ->
    Some (Insn.Fmem (var_mem env sym ~delta:0))
  | _ -> None

(* Evaluate an int pair for a comparison or non-commutative operation:
   leaves lhs in EAX and rhs in [rhs_operand] (register ECX or a leaf). *)
and gen_int_pair env (a : Ir.texpr) (b : Ir.texpr) =
  match leaf_int_operand env b with
  | Some op -> gen_expr env a; op
  | None ->
    gen_expr env a;
    emit_push env eax;
    gen_expr env b;
    emit_mov env ecx eax;
    emit_pop env eax;
    ecx

and gen_binop env result_ty op (a : Ir.texpr) (b : Ir.texpr) =
  let ta = Ast.decay a.Ir.ty and tb = Ast.decay b.Ir.ty in
  match ta, tb with
  | Ast.Tptr _, Ast.Tptr _ when op = Ast.Sub ->
    (* pointer difference, scaled down by the element size *)
    let esize = elem_size env (elem_type a) in
    gen_expr env a;
    emit_push env eax;
    gen_expr env b;
    emit_mov env ecx eax;
    emit_pop env eax;
    emit_alu env Insn.Sub eax ecx;
    if esize > 1 then begin
      let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
      if scale_ok esize then
        emit_alu env Insn.Sar eax (Insn.Imm (log2 esize))
      else begin
        emit_mov env ecx (Insn.Imm esize);
        emit env (Insn.Idiv ecx)
      end
    end
  | Ast.Tptr _, Ast.Tptr _ | Ast.Tptr _, Ast.Tint | Ast.Tint, Ast.Tptr _
    when (match op with
          | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
          | _ -> false) ->
    (* pointer comparison: compare the value words, unsigned *)
    gen_expr env a;
    emit_push env eax;
    gen_expr env b;
    emit_mov env ecx eax;
    emit_pop env eax;
    emit_cmp env eax ecx;
    emit env (Insn.Setcc (unsigned_cond op, Registers.EAX))
  | Ast.Tptr _, _ when op = Ast.Add || op = Ast.Sub ->
    gen_ptr_arith env op a b
  | _, Ast.Tptr _ when op = Ast.Add -> gen_ptr_arith env Ast.Add b a
  | _ ->
    if Ast.decay result_ty = Ast.Tdouble
       || (is_double a.Ir.ty && (match op with
           | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne -> true
           | _ -> false))
    then gen_double_binop env op a b
    else gen_int_binop env op a b

and gen_ptr_arith env op (p : Ir.texpr) (i : Ir.texpr) =
  let esize = elem_size env (elem_type p) in
  (* can the pointer's value/metadata be produced without disturbing EAX?
     (named variables, arrays, string literals) *)
  let simple_ptr =
    match p.Ir.e with
    | Ir.Tvar _ | Ir.Tstr_lit _ -> true
    | _ -> false
  in
  match i.Ir.e with
  | Ir.Tint_lit n ->
    gen_expr env p;
    emit_alu env
      (match op with Ast.Add -> Insn.Add | _ -> Insn.Sub)
      eax (Insn.Imm (n * esize));
    cap_clear_escape env
  | _ when simple_ptr && not (expr_clobbers_fp i) ->
    (* index first into EAX, then fold the named pointer in directly *)
    gen_expr env i;
    if esize > 1 then emit_alu env Insn.Imul eax (Insn.Imm esize);
    (match p.Ir.e with
     | Ir.Tvar ({ Ir.ty = Ast.Tarray _; _ } as sym) ->
       (match loc_of env sym with
        | Global entry -> emit_mov env edx (Insn.Imm entry.Data_layout.addr)
        | Frame off -> emit_lea env Registers.EDX (ebp_mem off))
     | Ir.Tvar sym -> emit_mov env edx (Insn.Mem (var_mem env sym ~delta:0))
     | Ir.Tstr_lit si -> emit_mov env edx (Insn.Imm (str_addr env si))
     | _ -> assert false);
    (match op with
     | Ast.Add ->
       emit_lea env Registers.EAX
         (Insn.mem ~base:Registers.EDX ~index:(Registers.EAX, 1) ())
     | _ ->
       emit_alu env Insn.Sub edx eax;
       emit_mov env eax edx);
    (* metadata loads touch only EBX/ECX (MPX: BND0 and ESI) *)
    (match env.kind with
     | Backend.Mpx _ ->
       mpx_load_base_bounds env ~breg:0 (base_of_expr p)
     | _ ->
       if ptr_meta_words env >= 1 then begin
         match p.Ir.e, env.kind with
         | Ir.Tvar ({ Ir.ty = Ast.Tarray _; _ } as sym), Backend.Cash _ ->
           (match info_of_sym env sym with
            | Info_const a -> emit_mov env ebx (Insn.Imm a)
            | Info_frame off -> emit_lea env Registers.EBX (ebp_mem off)
            | Info_slot m -> emit_mov env ebx (Insn.Mem m))
         | Ir.Tvar ({ Ir.ty = Ast.Tarray _; _ } as sym), Backend.Bcc _ ->
           let lo, hi = bcc_bounds_ops env (info_of_sym env sym) in
           emit_mov env ebx (Insn.Mem lo);
           emit_mov env ecx (Insn.Mem hi)
         | Ir.Tvar ({ Ir.ty = Ast.Tarray _; _ } as sym), Backend.Cap _ ->
           cap_load_base_meta env (Minic.Loop_analysis.Bsym sym)
         | Ir.Tvar sym, _ ->
           emit_mov env ebx (Insn.Mem (var_mem env sym ~delta:4));
           if ptr_meta_words env >= 2 then
             emit_mov env ecx (Insn.Mem (var_mem env sym ~delta:8))
         | Ir.Tstr_lit si, Backend.Cash _ ->
           emit_mov env ebx (Insn.Imm (str_info env si))
         | Ir.Tstr_lit si, Backend.Bcc _ ->
           let rec_addr = str_info env si in
           emit_mov env ebx (Insn.Mem (abs_mem rec_addr));
           emit_mov env ecx (Insn.Mem (abs_mem (rec_addr + 4)))
         | Ir.Tstr_lit si, Backend.Cap _ ->
           cap_load_base_meta env (Minic.Loop_analysis.Bstr si)
         | _ -> assert false
       end);
    cap_clear_escape env
  | _ ->
    gen_expr env p;
    push_result env p.Ir.ty;
    gen_expr env i;
    if esize > 1 then emit_alu env Insn.Imul eax (Insn.Imm esize);
    mpx_reload_spilled env;
    emit_pop env edx;
    (match op with
     | Ast.Add -> emit_alu env Insn.Add edx eax
     | _ -> emit_alu env Insn.Sub edx eax);
    emit_mov env eax edx;
    if ptr_meta_words env >= 1 then emit_pop env ebx;
    if ptr_meta_words env >= 2 then emit_pop env ecx;
    cap_clear_escape env

and gen_int_binop env op (a : Ir.texpr) (b : Ir.texpr) =
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Band | Ast.Bor | Ast.Bxor ->
    let alu =
      match op with
      | Ast.Add -> Insn.Add | Ast.Sub -> Insn.Sub | Ast.Mul -> Insn.Imul
      | Ast.Band -> Insn.And | Ast.Bor -> Insn.Or | _ -> Insn.Xor
    in
    let rhs = gen_int_pair env a b in
    emit_alu env alu eax rhs
  | Ast.Div | Ast.Mod ->
    gen_expr env a;
    emit_push env eax;
    gen_expr env b;
    emit_mov env ecx eax;
    emit_pop env eax;
    emit env (Insn.Idiv ecx);
    if op = Ast.Mod then emit_mov env eax edx
  | Ast.Shl | Ast.Shr ->
    let rhs = gen_int_pair env a b in
    (match rhs with
     | Insn.Reg Registers.ECX -> ()
     | other -> emit_mov env ecx other);
    emit_alu env (if op = Ast.Shl then Insn.Shl else Insn.Sar) eax ecx
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    let rhs = gen_int_pair env a b in
    emit_cmp env eax rhs;
    emit env (Insn.Setcc (signed_cond op, Registers.EAX))

and gen_double_binop env op (a : Ir.texpr) (b : Ir.texpr) =
  match op with
  | Ast.Add | Ast.Sub | Ast.Mul | Ast.Div ->
    gen_double_to env { Ir.ty = Ast.Tdouble; e = Ir.Tbinop (op, a, b) } ~dst:0
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne ->
    gen_double_cmp env a b;
    emit env (Insn.Setcc (unsigned_cond op, Registers.EAX))
  | _ -> failwith "invalid double operation"

(* Evaluate a double comparison so flags hold (a ? b). *)
and gen_double_cmp env (a : Ir.texpr) (b : Ir.texpr) =
  if not (expr_clobbers_fp b) then begin
    gen_double_to env a ~dst:0;
    gen_double_to env b ~dst:1;
    emit env (Insn.Fcmp (Registers.XMM0, xmm1))
  end
  else begin
    gen_expr env a;
    push_result env Ast.Tdouble;
    gen_expr env b;
    emit_fmov env xmm1
      (Insn.Fmem (fix_mem env (Insn.mem ~base:Registers.ESP ())));
    emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm 8);
    (* xmm1 = a, xmm0 = b *)
    emit env (Insn.Fcmp (Registers.XMM1, xmm0))
  end

(* Does evaluating this expression go through a call (which clobbers every
   XMM register under the calling convention)? *)
and expr_clobbers_fp (e : Ir.texpr) =
  match e.Ir.e with
  | Ir.Tcall _ | Ir.Tbuiltin _ -> true
  | Ir.Tint_lit _ | Ir.Tfloat_lit _ | Ir.Tstr_lit _ | Ir.Tvar _
  | Ir.Tsizeof _ -> false
  | Ir.Tindex (a, b) | Ir.Tbinop (_, a, b) | Ir.Tland (a, b)
  | Ir.Tlor (a, b) | Ir.Tassign (a, b) ->
    expr_clobbers_fp a || expr_clobbers_fp b
  | Ir.Tderef a | Ir.Taddr a | Ir.Tunop (_, a) | Ir.Tcast (_, a)
  | Ir.Tincdec (_, _, a) ->
    expr_clobbers_fp a
  | Ir.Tcond (c, a, b) ->
    expr_clobbers_fp c || expr_clobbers_fp a || expr_clobbers_fp b

(* Evaluate a double-typed expression into XMM[dst], using XMM[dst+1..]
   as scratch — the register-stack FP evaluation a real optimising
   compiler performs, so the baseline's numeric inner loops are tight.
   Falls back to the general (stack-spilling) evaluator for calls and for
   pathological nesting depth, preserving the live lower registers. *)
and gen_double_to env (e : Ir.texpr) ~dst =
  let xmm n = Registers.freg_of_int n in
  let spill_live () =
    for i = 0 to dst - 1 do
      emit_alu env Insn.Sub (Insn.Reg Registers.ESP) (Insn.Imm 8);
      emit_fmov env
        (Insn.Fmem (Insn.mem ~base:Registers.ESP ()))
        (Insn.Freg (xmm i))
    done
  in
  let restore_live () =
    for i = dst - 1 downto 0 do
      emit_fmov env (Insn.Freg (xmm i))
        (Insn.Fmem (Insn.mem ~base:Registers.ESP ()));
      emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm 8)
    done
  in
  (* both-operands-clobber binops: explicit stack discipline around two
     general evaluations (must not re-enter gen_double_to, which would
     not terminate) *)
  let binop_via_stack fop a b =
    spill_live ();
    gen_expr env a;
    emit_alu env Insn.Sub (Insn.Reg Registers.ESP) (Insn.Imm 8);
    emit_fmov env (Insn.Fmem (Insn.mem ~base:Registers.ESP ())) xmm0;
    gen_expr env b;
    emit_fmov env xmm1 xmm0;
    emit_fmov env xmm0 (Insn.Fmem (Insn.mem ~base:Registers.ESP ()));
    emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm 8);
    emit env (Insn.Falu (fop, Registers.XMM0, Insn.Freg Registers.XMM1));
    if dst > 0 then emit_fmov env (Insn.Freg (xmm dst)) xmm0;
    restore_live ()
  in
  let fallback () =
    (* spill live XMM0..dst-1, evaluate via the general path (which only
       uses XMM0/XMM1), move the result into place, restore *)
    spill_live ();
    gen_expr env e;
    if dst > 0 then emit_fmov env (Insn.Freg (xmm dst)) xmm0;
    restore_live ()
  in
  if dst > 5 then fallback ()
  else
    match e.Ir.e with
    | Ir.Tfloat_lit f -> emit env (Insn.Fload_const (xmm dst, f))
    | Ir.Tvar sym when sym.Ir.ty = Ast.Tdouble ->
      emit_fmov env (Insn.Freg (xmm dst)) (Insn.Fmem (var_mem env sym ~delta:0))
    | (Ir.Tindex _ | Ir.Tderef _) when Ast.decay e.Ir.ty = Ast.Tdouble ->
      (* gen_ref_mem only touches integer registers, so any dst is safe *)
      let m = gen_ref_mem env e in
      emit env (Insn.Fmov (Insn.Freg (xmm dst), Insn.Fmem m))
    | Ir.Tbinop (((Ast.Add | Ast.Sub | Ast.Mul | Ast.Div) as op), a, b)
      when Ast.decay e.Ir.ty = Ast.Tdouble ->
      let fop =
        match op with
        | Ast.Add -> Insn.Fadd | Ast.Sub -> Insn.Fsub | Ast.Mul -> Insn.Fmul
        | _ -> Insn.Fdiv
      in
      (* operand folding: a simple variable rhs needs no extra register *)
      (match leaf_double_operand env b with
       | Some src when not (expr_clobbers_fp a) ->
         gen_double_to env a ~dst;
         let src =
           match src with
           | Insn.Fmem m -> Insn.Fmem (fix_mem env m)
           | s -> s
         in
         emit env (Insn.Falu (fop, xmm dst, src))
       | _ ->
         if not (expr_clobbers_fp b) then begin
           gen_double_to env a ~dst;
           gen_double_to env b ~dst:(dst + 1);
           emit env (Insn.Falu (fop, xmm dst, Insn.Freg (xmm (dst + 1))))
         end
         else if not (expr_clobbers_fp a) then begin
           gen_double_to env b ~dst;
           gen_double_to env a ~dst:(dst + 1);
           match op with
           | Ast.Add | Ast.Mul ->
             emit env (Insn.Falu (fop, xmm dst, Insn.Freg (xmm (dst + 1))))
           | _ ->
             emit env (Insn.Falu (fop, xmm (dst + 1), Insn.Freg (xmm dst)));
             emit env
               (Insn.Fmov (Insn.Freg (xmm dst), Insn.Freg (xmm (dst + 1))))
         end
         else binop_via_stack fop a b)
    | Ir.Tunop (Ast.Neg, a) ->
      gen_double_to env a ~dst;
      emit env (Insn.Fneg (xmm dst))
    | Ir.Tcast (Ast.Tdouble, inner)
      when Ast.is_integral (Ast.decay inner.Ir.ty) ->
      if expr_clobbers_fp inner && dst > 0 then fallback ()
      else begin
        gen_expr env inner;
        emit env (Insn.Cvtsi2sd (xmm dst, eax))
      end
    | _ -> fallback ()

(* --- array-like reference sites ---------------------------------------- *)

(* Evaluate an index expression into EAX, pre-multiplying when the element
   size is not a legal SIB scale. Returns the scale to use. *)
and eval_index env (idx : Ir.texpr) ~esize =
  gen_expr env idx;
  if scale_ok esize then esize
  else begin
    emit_alu env Insn.Imul eax (Insn.Imm esize);
    1
  end

(* Compute the memory operand for the element designated by a[i] where [a]
   is a named base (variable or string literal). Emits any checking code
   the plan requires. *)
and gen_index_mem_named env ~(base : Ir.texpr) ~idx ~esize ~is_store =
  let direct_count =
    match base.Ir.e with
    | Ir.Tvar { Ir.ty = Ast.Tarray (_, n); _ } -> Some n
    | Ir.Tstr_lit i -> Some (str_size env i)
    | _ -> None
  in
  let plan = decide_plan env ~pe:base ~direct_index:direct_count ~is_store in
  let s = eval_index env idx ~esize in
  (* unchecked/base address helpers *)
  let unchecked_mem () =
    match base.Ir.e with
    | Ir.Tvar ({ Ir.ty = Ast.Tarray _; _ } as sym) ->
      (match loc_of env sym with
       | Global entry ->
         Insn.mem ~disp:entry.Data_layout.addr
           ~index:(Registers.EAX, s) ()
       | Frame off ->
         fix_mem env
           (Insn.mem ~base:Registers.EBP ~disp:off
              ~index:(Registers.EAX, s) ()))
    | Ir.Tstr_lit i ->
      Insn.mem ~disp:(str_addr env i) ~index:(Registers.EAX, s) ()
    | Ir.Tvar sym ->
      emit_mov env edx (Insn.Mem (var_mem env sym ~delta:0));
      Insn.mem ~base:Registers.EDX ~index:(Registers.EAX, s) ()
    | _ -> assert false
  in
  match plan with
  | P_unchecked -> unchecked_mem ()
  | P_bcc_direct _ ->
    (* no longer produced: BCC direct references go through the bounds
       record like every other BCC check *)
    assert false
  | P_hw { seg; access; _ } ->
    (match access with
     | Sa_array { delta; _ } ->
       Insn.mem ~seg ~disp:delta ~index:(Registers.EAX, s) ()
     | Sa_ptr { rel_slot = Some r; _ } ->
       emit_mov env edx (Insn.Mem (ebp_mem r));
       Insn.mem ~seg ~base:Registers.EDX ~index:(Registers.EAX, s) ()
     | Sa_ptr { base_slot; rel_slot = None } ->
       (match base.Ir.e with
        | Ir.Tvar sym ->
          emit_mov env edx (Insn.Mem (var_mem env sym ~delta:0))
        | _ -> assert false);
       emit_alu env Insn.Sub edx (Insn.Mem (ebp_mem base_slot));
       Insn.mem ~seg ~base:Registers.EDX ~index:(Registers.EAX, s) ())
  | P_sw_var ->
    (* software check through the base's bounds; address goes to EDI *)
    let size = esize in
    (match base.Ir.e with
     | Ir.Tvar ({ Ir.ty = Ast.Tarray _; _ } as sym) ->
       (match loc_of env sym with
        | Global entry ->
          emit_lea env Registers.EDI
            (Insn.mem ~disp:entry.Data_layout.addr ~index:(Registers.EAX, s)
               ())
        | Frame off ->
          emit_lea env Registers.EDI
            (Insn.mem ~base:Registers.EBP ~disp:off ~index:(Registers.EAX, s)
               ()));
       (match env.kind with
        | Backend.Cash _ ->
          load_info_addr env Registers.ECX (info_of_sym env sym);
          emit_sw_check env ~addr_reg:Registers.EDI ~size
            (`Info_reg Registers.ECX)
        | _ ->
          (* BCC: the canonical 6-instruction check through the array's
             bounds record *)
          let lo, hi = bcc_bounds_ops env (info_of_sym env sym) in
          emit_sw_check env ~addr_reg:Registers.EDI ~size (`Slots (lo, hi)))
     | Ir.Tvar sym (* pointer variable *) ->
       emit_mov env edx (Insn.Mem (var_mem env sym ~delta:0));
       emit_lea env Registers.EDI
         (Insn.mem ~base:Registers.EDX ~index:(Registers.EAX, s) ());
       (match env.kind with
        | Backend.Cash _ ->
          load_info_addr env Registers.ECX (info_of_sym env sym);
          emit_sw_check env ~addr_reg:Registers.EDI ~size
            (`Info_reg Registers.ECX)
        | _ ->
          emit_sw_check ~sentinel:true env ~addr_reg:Registers.EDI ~size
            (`Slots
               ( fix_mem env (var_mem env sym ~delta:4),
                 fix_mem env (var_mem env sym ~delta:8) )))
     | Ir.Tstr_lit i ->
       let a = str_addr env i in
       emit_lea env Registers.EDI
         (Insn.mem ~disp:a ~index:(Registers.EAX, s) ());
       (match env.kind with
        | Backend.Cash _ ->
          emit_mov env ecx (Insn.Imm (str_info env i));
          emit_sw_check env ~addr_reg:Registers.EDI ~size
            (`Info_reg Registers.ECX)
        | _ ->
          let rec_addr = str_info env i in
          emit_sw_check env ~addr_reg:Registers.EDI ~size
            (`Slots (abs_mem rec_addr, abs_mem (rec_addr + 4))))
     | _ -> assert false);
    Insn.mem ~base:Registers.EDI ()
  | P_sw_regs -> assert false (* named bases never take the regs path *)
  | P_mpx a ->
    (* element address into EDI, then the two 1-cycle register checks
       against a resident BND register (assigned, or BND0 established
       here) — the check-everywhere analogue of Cash's segment plan *)
    (match base.Ir.e with
     | Ir.Tvar ({ Ir.ty = Ast.Tarray _; _ } as sym) ->
       (match loc_of env sym with
        | Global entry ->
          emit_lea env Registers.EDI
            (Insn.mem ~disp:entry.Data_layout.addr ~index:(Registers.EAX, s)
               ())
        | Frame off ->
          emit_lea env Registers.EDI
            (Insn.mem ~base:Registers.EBP ~disp:off ~index:(Registers.EAX, s)
               ()))
     | Ir.Tstr_lit i ->
       emit_lea env Registers.EDI
         (Insn.mem ~disp:(str_addr env i) ~index:(Registers.EAX, s) ())
     | Ir.Tvar sym ->
       emit_mov env edx (Insn.Mem (var_mem env sym ~delta:0));
       emit_lea env Registers.EDI
         (Insn.mem ~base:Registers.EDX ~index:(Registers.EAX, s) ())
     | _ -> assert false);
    let breg =
      match a with
      | Some a -> a.breg
      | None ->
        mpx_load_base_bounds env ~breg:0 (base_of_expr base);
        0
    in
    emit env (Insn.Bndcl (breg, edi));
    emit env (Insn.Bndcu (breg, edi, esize));
    Insn.mem ~base:Registers.EDI ()
  | P_cap ->
    (* the access itself is checked in hardware: CAPCHK validates the
       effective address against the capability in EBX *)
    let m = unchecked_mem () in
    cap_load_base_meta env (base_of_expr base);
    emit env (Insn.Capchk (Registers.EBX, m, esize, is_store));
    m

(* a[i] where the base is a computed pointer expression. *)
and gen_index_mem_complex env ~(base : Ir.texpr) ~idx ~esize ~is_store =
  let plan = decide_plan env ~pe:base ~direct_index:None ~is_store in
  gen_expr env base;
  push_result env base.Ir.ty;
  let s = eval_index env idx ~esize in
  mpx_reload_spilled env;
  emit_pop env edx;
  if ptr_meta_words env >= 1 then emit_pop env ebx;
  if ptr_meta_words env >= 2 then emit_pop env ecx;
  match plan with
  | P_unchecked ->
    Insn.mem ~base:Registers.EDX ~index:(Registers.EAX, s) ()
  | P_hw { seg; access; _ } ->
    emit_sub_segbase env Registers.EDX access;
    Insn.mem ~seg ~base:Registers.EDX ~index:(Registers.EAX, s) ()
  | P_sw_regs | P_sw_var ->
    emit_lea env Registers.EDI
      (Insn.mem ~base:Registers.EDX ~index:(Registers.EAX, s) ());
    (match env.kind with
     | Backend.Cash _ ->
       emit_sw_check env ~addr_reg:Registers.EDI ~size:esize
         (`Info_reg Registers.EBX)
     | _ ->
       emit_sw_check ~sentinel:true env ~addr_reg:Registers.EDI ~size:esize
         `Regs);
    Insn.mem ~base:Registers.EDI ()
  | P_bcc_direct _ -> assert false
  | P_mpx _ ->
    (* a computed base always rides the BND0 transit bounds, just
       recovered from the spill slot above *)
    emit_lea env Registers.EDI
      (Insn.mem ~base:Registers.EDX ~index:(Registers.EAX, s) ());
    emit env (Insn.Bndcl (0, edi));
    emit env (Insn.Bndcu (0, edi, esize));
    Insn.mem ~base:Registers.EDI ()
  | P_cap ->
    let m = Insn.mem ~base:Registers.EDX ~index:(Registers.EAX, s) () in
    emit env (Insn.Capchk (Registers.EBX, m, esize, is_store));
    m

(* *p and derived forms. *)
and gen_deref_mem env ~(pe : Ir.texpr) ~esize ~is_store =
  match pe.Ir.e with
  | Ir.Tvar sym ->
    let plan = decide_plan env ~pe ~direct_index:None ~is_store in
    let is_array = match sym.Ir.ty with Ast.Tarray _ -> true | _ -> false in
    (match plan with
     | P_unchecked | P_bcc_direct _ ->
       if is_array then
         (match loc_of env sym with
          | Global entry -> abs_mem entry.Data_layout.addr
          | Frame off -> fix_mem env (ebp_mem off))
       else begin
         emit_mov env edx (Insn.Mem (var_mem env sym ~delta:0));
         Insn.mem ~base:Registers.EDX ()
       end
     | P_hw { seg; access; _ } ->
       (match access with
        | Sa_array { delta; _ } -> Insn.mem ~seg ~disp:delta ()
        | Sa_ptr { rel_slot = Some r; _ } ->
          emit_mov env edx (Insn.Mem (ebp_mem r));
          Insn.mem ~seg ~base:Registers.EDX ()
        | Sa_ptr { base_slot; rel_slot = None } ->
          emit_mov env edx (Insn.Mem (var_mem env sym ~delta:0));
          emit_alu env Insn.Sub edx (Insn.Mem (ebp_mem base_slot));
          Insn.mem ~seg ~base:Registers.EDX ())
     | P_sw_var | P_sw_regs ->
       (if is_array then
          match loc_of env sym with
          | Global entry -> emit_mov env edi (Insn.Imm entry.Data_layout.addr)
          | Frame off -> emit_lea env Registers.EDI (ebp_mem off)
        else emit_mov env edi (Insn.Mem (var_mem env sym ~delta:0)));
       (match env.kind with
        | Backend.Cash _ ->
          load_info_addr env Registers.ECX (info_of_sym env sym);
          emit_sw_check env ~addr_reg:Registers.EDI ~size:esize
            (`Info_reg Registers.ECX)
        | Backend.Bcc _ when is_array ->
          let lo, hi = bcc_bounds_ops env (info_of_sym env sym) in
          emit_sw_check env ~addr_reg:Registers.EDI ~size:esize
            (`Slots (lo, hi))
        | _ ->
          emit_sw_check ~sentinel:true env ~addr_reg:Registers.EDI ~size:esize
            (`Slots
               ( fix_mem env (var_mem env sym ~delta:4),
                 fix_mem env (var_mem env sym ~delta:8) )));
       Insn.mem ~base:Registers.EDI ()
     | P_mpx a ->
       (if is_array then
          match loc_of env sym with
          | Global entry -> emit_mov env edi (Insn.Imm entry.Data_layout.addr)
          | Frame off -> emit_lea env Registers.EDI (ebp_mem off)
        else emit_mov env edi (Insn.Mem (var_mem env sym ~delta:0)));
       let breg =
         match a with
         | Some a -> a.breg
         | None ->
           mpx_load_base_bounds env ~breg:0 (Minic.Loop_analysis.Bsym sym);
           0
       in
       emit env (Insn.Bndcl (breg, edi));
       emit env (Insn.Bndcu (breg, edi, esize));
       Insn.mem ~base:Registers.EDI ()
     | P_cap ->
       let m =
         if is_array then
           (match loc_of env sym with
            | Global entry -> abs_mem entry.Data_layout.addr
            | Frame off -> fix_mem env (ebp_mem off))
         else begin
           emit_mov env edx (Insn.Mem (var_mem env sym ~delta:0));
           Insn.mem ~base:Registers.EDX ()
         end
       in
       cap_load_base_meta env (Minic.Loop_analysis.Bsym sym);
       emit env (Insn.Capchk (Registers.EBX, m, esize, is_store));
       m)
  | _ ->
    (* computed pointer expression *)
    let plan = decide_plan env ~pe ~direct_index:None ~is_store in
    gen_expr env pe;
    (match plan with
     | P_unchecked | P_bcc_direct _ -> Insn.mem ~base:Registers.EAX ()
     | P_hw { seg; access; _ } ->
       emit_sub_segbase env Registers.EAX access;
       Insn.mem ~seg ~base:Registers.EAX ()
     | P_sw_var | P_sw_regs ->
       (match env.kind with
        | Backend.Cash _ ->
          emit_sw_check env ~addr_reg:Registers.EAX ~size:esize
            (`Info_reg Registers.EBX)
        | _ ->
          emit_sw_check ~sentinel:true env ~addr_reg:Registers.EAX ~size:esize
            `Regs);
       Insn.mem ~base:Registers.EAX ()
     | P_mpx _ ->
       (* gen_expr left the value's bounds in BND0 (transit invariant) *)
       emit env (Insn.Bndcl (0, eax));
       emit env (Insn.Bndcu (0, eax, esize));
       Insn.mem ~base:Registers.EAX ()
     | P_cap ->
       let m = Insn.mem ~base:Registers.EAX () in
       emit env (Insn.Capchk (Registers.EBX, m, esize, is_store));
       m)

(* The memory operand for a reference lvalue (Tindex or Tderef). *)
and gen_ref_mem ?(is_store = false) env (refe : Ir.texpr) =
  let esize = elem_size env refe.Ir.ty in
  match refe.Ir.e with
  | Ir.Tindex (base, idx) ->
    (match base.Ir.e with
     | Ir.Tvar _ | Ir.Tstr_lit _ ->
       gen_index_mem_named env ~base ~idx ~esize ~is_store
     | _ -> gen_index_mem_complex env ~base ~idx ~esize ~is_store)
  | Ir.Tderef pe -> gen_deref_mem env ~pe ~esize ~is_store
  | Ir.Tcast (_, inner) -> gen_ref_mem ~is_store env inner
  | _ -> failwith "gen_ref_mem: not a reference lvalue"

(* Load the value designated by a reference lvalue into the result regs. *)
and gen_ref_load env (refe : Ir.texpr) =
  let m = gen_ref_mem env refe in
  match Ast.decay refe.Ir.ty with
  | Ast.Tint -> emit env (Insn.Mov (Insn.Long, eax, Insn.Mem m))
  | Ast.Tchar -> emit env (Insn.Movzx (Registers.EAX, Insn.Mem m, Insn.Byte))
  | Ast.Tdouble -> emit env (Insn.Fmov (xmm0, Insn.Fmem m))
  | Ast.Tptr _ ->
    let m = materialize_addr env m in
    if ptr_meta_words env >= 1 then
      emit env
        (Insn.Mov (Insn.Long, ebx, Insn.Mem { m with Insn.disp = m.Insn.disp + 4 }));
    if ptr_meta_words env >= 2 then
      emit env
        (Insn.Mov (Insn.Long, ecx, Insn.Mem { m with Insn.disp = m.Insn.disp + 8 }));
    emit env (Insn.Mov (Insn.Long, eax, Insn.Mem m));
    (* MPX: the loaded pointer's bounds follow it out of the table *)
    (match env.kind with
     | Backend.Mpx _ -> emit env (Insn.Bndldx (0, m))
     | _ -> ())
  | Ast.Tvoid | Ast.Tarray _ -> failwith "gen_ref_load: bad element type"

(* Store the pushed right-hand side into a reference lvalue; leaves the
   stored value in the result registers. *)
and gen_ref_store env (refe : Ir.texpr) =
  let ty = Ast.decay refe.Ir.ty in
  let m = gen_ref_mem ~is_store:true env refe in
  match ty with
  | Ast.Tint ->
    emit_pop env esi;
    emit env (Insn.Mov (Insn.Long, Insn.Mem m, esi));
    emit_mov env eax esi
  | Ast.Tchar ->
    emit_pop env esi;
    emit env (Insn.Mov (Insn.Byte, Insn.Mem m, esi));
    emit_mov env eax esi
  | Ast.Tdouble ->
    emit_fmov env xmm0
      (Insn.Fmem (fix_mem env (Insn.mem ~base:Registers.ESP ())));
    emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm 8);
    emit env (Insn.Fmov (Insn.Fmem m, xmm0))
  | Ast.Tptr _ ->
    let m = materialize_addr env m in
    mpx_reload_spilled env;
    emit_pop env eax;
    if ptr_meta_words env >= 1 then emit_pop env ebx;
    if ptr_meta_words env >= 2 then emit_pop env ecx;
    emit env (Insn.Mov (Insn.Long, Insn.Mem m, eax));
    if ptr_meta_words env >= 1 then
      emit env
        (Insn.Mov (Insn.Long, Insn.Mem { m with Insn.disp = m.Insn.disp + 4 }, ebx));
    if ptr_meta_words env >= 2 then
      emit env
        (Insn.Mov (Insn.Long, Insn.Mem { m with Insn.disp = m.Insn.disp + 8 }, ecx));
    (* MPX: re-key the stored pointer's bounds on its new home *)
    (match env.kind with
     | Backend.Mpx _ -> emit env (Insn.Bndstx (0, m))
     | _ -> ())
  | Ast.Tvoid | Ast.Tarray _ -> failwith "gen_ref_store: bad element type"

(* --- assignment, increment/decrement ----------------------------------- *)

and gen_assign env (lv : Ir.texpr) (rhs : Ir.texpr) =
  match lv.Ir.e with
  | Ir.Tvar sym ->
    (match Ast.decay lv.Ir.ty with
     | Ast.Tint ->
       gen_expr env rhs;
       emit_mov env (Insn.Mem (var_mem env sym ~delta:0)) eax
     | Ast.Tchar ->
       gen_expr env rhs;
       emit_movb env (Insn.Mem (var_mem env sym ~delta:0)) eax
     | Ast.Tdouble ->
       gen_double_to env rhs ~dst:0;
       emit_fmov env (Insn.Fmem (var_mem env sym ~delta:0)) xmm0
     | Ast.Tptr _ ->
       gen_expr env rhs;
       emit_mov env (Insn.Mem (var_mem env sym ~delta:0)) eax;
       if ptr_meta_words env >= 1 then
         emit_mov env (Insn.Mem (var_mem env sym ~delta:4)) ebx;
       if ptr_meta_words env >= 2 then
         emit_mov env (Insn.Mem (var_mem env sym ~delta:8)) ecx;
       (* if this pointer carries a live segment assignment and may now
          point into a different object, refresh the assignment: register
          and slots if the assignment is active in this loop, slots only
          (with a deferred selector reload) if it belongs to an enclosing
          loop *)
       let key = Minic.Loop_analysis.base_key (Minic.Loop_analysis.Bsym sym) in
       let same_object =
         match Minic.Loop_analysis.classify_base rhs with
         | Minic.Loop_analysis.Bsym s -> Ir.sym_equal s sym
         | _ -> false
       in
       if not same_object then begin
         match List.assoc_opt key env.active_nest with
         | Some a when not a.skip_def_reload ->
           gen_seg_reload_at_def env sym a ~active:true
         | Some _ -> ()
         | None ->
           (match List.assoc_opt key env.all_assigns with
            | Some a when not a.skip_def_reload ->
              gen_seg_reload_at_def env sym a ~active:false
            | Some _ | None -> ())
       end;
       (match env.kind with
        | Backend.Mpx _ ->
          (* re-key the bounds on the variable's slot; a live loop-nest
             register is refreshed from the table, and any register left
             holding the old object's bounds is invalidated so the
             loop-exit pass re-establishes it *)
          emit env
            (Insn.Bndstx (0, fix_mem env (var_mem env sym ~delta:0)));
          if not same_object then begin
            match List.assoc_opt key env.mpx_nest with
            | Some a ->
              emit env
                (Insn.Bndldx
                   (a.breg, fix_mem env (var_mem env sym ~delta:0)));
              record_bnd_contents env a.breg key
            | None ->
              env.bnd_contents <-
                List.filter (fun (_, k) -> k <> key) env.bnd_contents
          end
        | _ -> ())
     | Ast.Tvoid | Ast.Tarray _ -> failwith "bad assignment target")
  | Ir.Tindex _ | Ir.Tderef _ when Ast.decay lv.Ir.ty = Ast.Tdouble ->
    (* doubles skip the stack round trip: the value sits in XMM0 while the
       address is computed in the integer registers *)
    gen_double_to env rhs ~dst:0;
    let m = gen_ref_mem ~is_store:true env lv in
    emit env (Insn.Fmov (Insn.Fmem m, xmm0))
  | Ir.Tindex _ | Ir.Tderef _
    when (match Ast.decay lv.Ir.ty with
          | Ast.Tint | Ast.Tchar -> leaf_int_operand env rhs <> None
          | _ -> false) ->
    (* storing a constant or a plain variable: no stack round trip; the
       leaf is read after address computation, which writes no variable *)
    let width =
      match Ast.decay lv.Ir.ty with Ast.Tchar -> Insn.Byte | _ -> Insn.Long
    in
    let m = gen_ref_mem ~is_store:true env lv in
    (match leaf_int_operand env rhs with
     | Some (Insn.Imm n) ->
       emit env (Insn.Mov (width, Insn.Mem m, Insn.Imm n));
       emit_mov env eax (Insn.Imm n)
     | Some src ->
       emit_mov env esi src;
       emit env (Insn.Mov (width, Insn.Mem m, esi));
       emit_mov env eax esi
     | None -> assert false)
  | Ir.Tindex _ | Ir.Tderef _ ->
    gen_expr env rhs;
    push_result env lv.Ir.ty;
    gen_ref_store env lv
  | Ir.Tcast (_, inner) -> gen_assign env inner rhs
  | _ -> failwith "assignment to non-lvalue"

and gen_incdec env pos op (lv : Ir.texpr) =
  let ty = Ast.decay lv.Ir.ty in
  let delta =
    match ty with
    | Ast.Tptr pointee -> elem_size env pointee
    | _ -> 1
  in
  let delta = match op with Ast.Incr -> delta | Ast.Decr -> -delta in
  match lv.Ir.e with
  | Ir.Tvar sym ->
    let slot = Insn.Mem (var_mem env sym ~delta:0) in
    (match ty with
     | Ast.Tint | Ast.Tptr _ ->
       (match pos with
        | Ast.Post ->
          emit_mov env eax slot;
          emit_alu env Insn.Add slot (Insn.Imm delta)
        | Ast.Pre ->
          emit_alu env Insn.Add slot (Insn.Imm delta);
          emit_mov env eax slot);
       (match ty with
        | Ast.Tptr _ ->
          if ptr_meta_words env >= 1 then
            emit_mov env ebx (Insn.Mem (var_mem env sym ~delta:4));
          if ptr_meta_words env >= 2 then
            emit_mov env ecx (Insn.Mem (var_mem env sym ~delta:8));
          (match env.kind with
           | Backend.Mpx _ ->
             (* same-object arithmetic: the table entry is still right *)
             emit env
               (Insn.Bndldx (0, fix_mem env (var_mem env sym ~delta:0)))
           | Backend.Cap _ when cap_clears_on_escape env.kind ->
             emit_mov env esi slot;
             emit env (Insn.Capclr (Registers.ESI, Registers.EBX));
             emit_mov env (Insn.Mem (var_mem env sym ~delta:4)) ebx
           | _ -> ())
        | _ -> ())
     | Ast.Tchar ->
       emit env
         (Insn.Movzx (Registers.ESI, fix_operand env slot, Insn.Byte));
       if pos = Ast.Post then emit_mov env eax esi;
       emit_alu env Insn.Add esi (Insn.Imm delta);
       emit_alu env Insn.And esi (Insn.Imm 0xFF);
       emit_movb env slot esi;
       if pos = Ast.Pre then emit_mov env eax esi
     | _ -> failwith "++/-- on unsupported type")
  | Ir.Tindex _ | Ir.Tderef _ ->
    let m = gen_ref_mem ~is_store:true env lv in
    let m = materialize_addr env m in
    (match ty with
     | Ast.Tint | Ast.Tptr _ ->
       emit env (Insn.Mov (Insn.Long, esi, Insn.Mem m));
       if pos = Ast.Post then emit_mov env eax esi;
       emit_alu env Insn.Add esi (Insn.Imm delta);
       emit env (Insn.Mov (Insn.Long, Insn.Mem m, esi));
       if pos = Ast.Pre then emit_mov env eax esi;
       (match ty with
        | Ast.Tptr _ ->
          if ptr_meta_words env >= 1 then
            emit env
              (Insn.Mov
                 (Insn.Long, ebx, Insn.Mem { m with Insn.disp = m.Insn.disp + 4 }));
          if ptr_meta_words env >= 2 then
            emit env
              (Insn.Mov
                 (Insn.Long, ecx, Insn.Mem { m with Insn.disp = m.Insn.disp + 8 }));
          (match env.kind with
           | Backend.Mpx _ -> emit env (Insn.Bndldx (0, m))
           | Backend.Cap _ when cap_clears_on_escape env.kind ->
             (* ESI still holds the stepped value *)
             emit env (Insn.Capclr (Registers.ESI, Registers.EBX));
             emit env
               (Insn.Mov
                  (Insn.Long, Insn.Mem { m with Insn.disp = m.Insn.disp + 4 },
                   ebx))
           | _ -> ())
        | _ -> ())
     | Ast.Tchar ->
       emit env (Insn.Movzx (Registers.ESI, Insn.Mem m, Insn.Byte));
       if pos = Ast.Post then emit_mov env eax esi;
       emit_alu env Insn.Add esi (Insn.Imm delta);
       emit_alu env Insn.And esi (Insn.Imm 0xFF);
       emit env (Insn.Mov (Insn.Byte, Insn.Mem m, esi));
       if pos = Ast.Pre then emit_mov env eax esi
     | _ -> failwith "++/-- on unsupported type")
  | _ -> failwith "++/-- on non-lvalue"

(* --- calls -------------------------------------------------------------- *)

(* Push one already-evaluated argument; returns its stack footprint. *)
and push_arg env (a : Ir.texpr) =
  let ty = Ast.decay a.Ir.ty in
  if is_double ty then begin
    push_result env ty;
    8
  end
  else if is_ptr ty then begin
    push_result env ty;
    4 * (1 + ptr_meta_words env)
  end
  else begin
    emit_push env eax;
    4
  end

and gen_call env (fsym : Ir.sym) args =
  let bytes = ref 0 in
  List.iter
    (fun a ->
      gen_expr env a;
      bytes := !bytes + push_arg env a)
    (List.rev args);
  emit env (Insn.Call fsym.Ir.name);
  if !bytes > 0 then
    emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm !bytes)

and gen_builtin env (b : Ir.builtin) args =
  let pop n = emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm n) in
  match b, args with
  | Ir.Bmalloc, [ size ] ->
    gen_expr env size;
    emit_push env eax;
    (match env.kind with
     | Backend.Gcc ->
       emit env (Insn.Callext "malloc");
       pop 4
     | Backend.Bcc _ ->
       emit env (Insn.Callext "malloc");
       pop 4;
       (* libc returns base in ECX and one-past-end in EDX *)
       emit_mov env ebx ecx;
       emit_mov env ecx edx
     | Backend.Cash _ ->
       emit env (Insn.Callext "cash_malloc");
       pop 4;
       (* the runtime returns the info-structure address in ECX *)
       emit_mov env ebx ecx
     | Backend.Mpx _ ->
       emit env (Insn.Callext "malloc");
       pop 4;
       (* libc leaves base in ECX, one-past-end in EDX; BNDMK takes the
          base register as lower and the full effective address as upper,
          so turn EDX into the size first *)
       emit_alu env Insn.Sub edx ecx;
       emit env
         (Insn.Bndmk
            (0, Insn.mem ~base:Registers.ECX ~index:(Registers.EDX, 1) ()))
     | Backend.Cap _ ->
       emit env (Insn.Callext "malloc");
       pop 4;
       emit env (Insn.Capmk (Registers.EBX, ecx, edx)))
  | Ir.Bfree, [ p ] ->
    gen_expr env p;
    emit_push env eax;
    emit env
      (Insn.Callext
         (match env.kind with Backend.Cash _ -> "cash_free" | _ -> "free"));
    pop 4
  | Ir.Bprint_int, [ x ] | Ir.Bsrand, [ x ] | Ir.Bprint_char, [ x ] ->
    gen_expr env x;
    emit_push env eax;
    emit env
      (Insn.Callext
         (match b with
          | Ir.Bprint_int -> "print_int"
          | Ir.Bprint_char -> "print_char"
          | _ -> "srand"));
    pop 4
  | Ir.Bprint_float, [ x ] ->
    gen_expr env x;
    push_result env Ast.Tdouble;
    emit env (Insn.Callext "print_float");
    pop 8
  | Ir.Brand, [] -> emit env (Insn.Callext "rand")
  | Ir.Bserver_ready, [] -> emit env (Insn.Callext "server_ready")
  | Ir.Bsqrt, [ x ] ->
    (* inlined SSE square root, as an optimising compiler emits *)
    gen_expr env x;
    emit env (Insn.Fsqrt (Registers.XMM0, xmm0))
  | Ir.Bmath1 name, [ x ] ->
    gen_expr env x;
    push_result env Ast.Tdouble;
    emit env (Insn.Callext name);
    pop 8
  | Ir.Bmath2 name, [ x; y ] ->
    gen_expr env y;
    push_result env Ast.Tdouble;
    gen_expr env x;
    push_result env Ast.Tdouble;
    emit env (Insn.Callext name);
    pop 16
  | _ -> failwith "builtin arity mismatch"

(* --- branches ----------------------------------------------------------- *)

(* Emit a conditional jump to [target] taken when [e]'s truth value equals
   [jump_if]. *)
and gen_branch env (e : Ir.texpr) ~jump_if ~target =
  match e.Ir.e with
  | Ir.Tint_lit n -> if (n <> 0) = jump_if then emit env (Insn.Jmp target)
  | Ir.Tunop (Ast.Lnot, inner) ->
    gen_branch env inner ~jump_if:(not jump_if) ~target
  | Ir.Tland (a, b) ->
    if not jump_if then begin
      gen_branch env a ~jump_if:false ~target;
      gen_branch env b ~jump_if:false ~target
    end
    else begin
      let skip = fresh_label env "skip" in
      gen_branch env a ~jump_if:false ~target:skip;
      gen_branch env b ~jump_if:true ~target;
      emit env (Insn.Label skip)
    end
  | Ir.Tlor (a, b) ->
    if jump_if then begin
      gen_branch env a ~jump_if:true ~target;
      gen_branch env b ~jump_if:true ~target
    end
    else begin
      let skip = fresh_label env "skip" in
      gen_branch env a ~jump_if:true ~target:skip;
      gen_branch env b ~jump_if:false ~target;
      emit env (Insn.Label skip)
    end
  | Ir.Tbinop (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op),
               a, b) ->
    let ta = Ast.decay a.Ir.ty in
    if ta = Ast.Tdouble then begin
      gen_double_cmp env a b;
      let c = unsigned_cond op in
      emit env (Insn.Jcc ((if jump_if then c else negate_cond c), target))
    end
    else begin
      let unsigned = Ast.is_pointer ta || Ast.is_pointer (Ast.decay b.Ir.ty) in
      let c = if unsigned then unsigned_cond op else signed_cond op in
      (* compare a variable directly against a constant without loading *)
      (match leaf_int_operand env a, leaf_int_operand env b with
       | Some (Insn.Mem m), Some (Insn.Imm n) ->
         emit_cmp env (Insn.Mem m) (Insn.Imm n)
       | _ ->
         let rhs = gen_int_pair env a b in
         emit_cmp env eax rhs);
      emit env (Insn.Jcc ((if jump_if then c else negate_cond c), target))
    end
  | _ ->
    gen_expr env e;
    if is_double e.Ir.ty then begin
      emit env (Insn.Fload_const (Registers.XMM1, 0.0));
      emit env (Insn.Fcmp (Registers.XMM0, xmm1));
      emit env (Insn.Jcc ((if jump_if then Insn.Ne else Insn.Eq), target))
    end
    else begin
      emit env (Insn.Test (eax, eax));
      emit env (Insn.Jcc ((if jump_if then Insn.Ne else Insn.Eq), target))
    end

(* --- Cash loop-nest preheader ------------------------------------------ *)

and enter_loop_codegen env (li : Ir.loop_info) ~gen_cond_and_body =
  let summary = Minic.Loop_analysis.loop env.analysis li.Ir.loop_id in
  let saved_nest = env.active_nest in
  let saved_all = env.all_assigns in
  let reverts = ref [] in
  (match cash_config env.kind, summary with
   | Some cfg, Some s ->
     let rec take n = function
       | [] -> []
       | _ when n = 0 -> []
       | x :: r -> x :: take (n - 1) r
     in
     let desired =
       take cfg.Backend.seg_budget
         (List.filter
            (fun b ->
              Minic.Loop_analysis.base_assignable s b
              && (cfg.Backend.check_reads
                  || List.mem
                       (Minic.Loop_analysis.base_key b)
                       s.Minic.Loop_analysis.written))
            s.Minic.Loop_analysis.bases)
     in
     let entries =
       List.map2
         (fun b seg ->
           let key = Minic.Loop_analysis.base_key b in
           match List.assoc_opt key env.active_nest with
           | Some a when a.seg = seg ->
             (* inherited: slots stay valid; reload the selector if a
                deferred re-establishment is pending, and hoist the
                relative base if the pointer is invariant in this loop *)
             if a.established
                && (a.needs_reload
                    || List.assoc_opt a.seg env.seg_contents <> Some key)
             then emit_selector_load env a;
             if (not (Minic.Loop_analysis.base_mutated s b))
                && List.mem key s.Minic.Loop_analysis.direct
             then begin
               (* hoist (pointer - segment base) only where this loop's own
                  body references the pointer; deeper loops hoist at their
                  own entries *)
               let old_access = a.access in
               if add_rel_hoist env a then
                 reverts := (a, old_access) :: !reverts
             end;
             (key, a)
           | _ ->
             let a = make_assignment env b seg in
             env.all_assigns <- (key, a) :: env.all_assigns;
             (if not (Minic.Loop_analysis.base_declared_inside s b) then
                establish_assignment env a
                  ~invariant:
                    ((not (Minic.Loop_analysis.base_mutated s b))
                     && List.mem key s.Minic.Loop_analysis.direct)
              else
                match Minic.Loop_analysis.stable_def_source s b with
                | Some src
                  when (not (Minic.Loop_analysis.base_mutated s src))
                       && not (Minic.Loop_analysis.base_declared_inside s src)
                  ->
                  establish_from_source env a src
                | _ -> () (* setup deferred to the definition site *));
             (key, a))
         desired
         (take (List.length desired) cfg.Backend.seg_regs)
     in
     env.active_nest <- entries
   | _ -> ());
  (* MPX: the same FCFS discipline over BND1-3. Establishment is one
     BNDMK or BNDLDX hoisted to the preheader; there are no base slots
     to hoist, so inheritance just keeps the resident register. *)
  let saved_mpx = env.mpx_nest in
  (match mpx_config env.kind, summary with
   | Some cfg, Some s ->
     let rec take n = function
       | [] -> []
       | _ when n = 0 -> []
       | x :: r -> x :: take (n - 1) r
     in
     let desired =
       take cfg.Backend.bnd_budget
         (List.filter
            (fun b ->
              Minic.Loop_analysis.base_assignable s b
              && not (Minic.Loop_analysis.base_declared_inside s b))
            s.Minic.Loop_analysis.bases)
     in
     let entries =
       List.mapi
         (fun i b ->
           let breg = i + 1 in
           let key = Minic.Loop_analysis.base_key b in
           match List.assoc_opt key env.mpx_nest with
           | Some a
             when a.breg = breg
                  && List.assoc_opt breg env.bnd_contents = Some key ->
             (key, a) (* inherited: the bounds are already resident *)
           | _ ->
             let a = { breg; mbase = b } in
             mpx_establish env a;
             (key, a))
         desired
     in
     env.mpx_nest <- entries
   | _ -> ());
  env.loop_stack <- li.Ir.loop_id :: env.loop_stack;
  gen_cond_and_body summary;
  env.loop_stack <- List.tl env.loop_stack;
  (* MPX exit: re-establish any enclosing-nest register the inner loop
     repurposed, or whose base was retargeted inside (the same back-edge
     soundness argument as the segment re-establishment below) *)
  env.mpx_nest <- saved_mpx;
  (match mpx_config env.kind with
   | Some _ ->
     List.iter
       (fun (key, a) ->
         if List.assoc_opt a.breg env.bnd_contents <> Some key then
           mpx_establish env a)
       saved_mpx
   | None -> ());
  (* undo this loop's relative-base hoists on inherited assignments *)
  List.iter (fun (a, old_access) -> a.access <- old_access) !reverts;
  env.active_nest <- saved_nest;
  env.all_assigns <- saved_all;
  (* Re-establish registers the inner loop repurposed or invalidated —
     but only eagerly for bases the enclosing loop references in its own
     body; bases used only inside (further) nested loops defer the reload
     to those loops' preheaders, which keeps the common
     sequence-of-sibling-loops pattern free of re-establishment code. *)
  (* Eager: deferring the reload to the next consumer would be unsound
     across the enclosing loop's back edge (the static register-contents
     tracking is linear in codegen order and cannot see that iteration
     N+1 of the parent re-enters the first inner loop with the registers
     the LAST inner loop left behind). The reload is 1-2 instructions per
     repurposed register per inner-loop exit. *)
  List.iter
    (fun (key, a) ->
      if a.established
         && (a.needs_reload
             || List.assoc_opt a.seg env.seg_contents <> Some key)
      then emit_selector_load env a)
    saved_nest

and emit_loop_stats env (summary : Minic.Loop_analysis.loop_summary option) =
  match summary with
  | Some s
    when s.Minic.Loop_analysis.bases <> []
         || s.Minic.Loop_analysis.has_complex ->
    emit env
      (Insn.Label
         (Printf.sprintf "__stat_iter_a_%d" s.Minic.Loop_analysis.loop_id));
    let budget =
      match cash_config env.kind with
      | Some c -> c.Backend.seg_budget
      | None -> 3
    in
    if List.length s.Minic.Loop_analysis.bases > budget
       || s.Minic.Loop_analysis.has_complex
    then
      emit env
        (Insn.Label
           (Printf.sprintf "__stat_iter_s_%d" s.Minic.Loop_analysis.loop_id))
  | _ -> ()

and gen_stmt env (s : Ir.tstmt) =
  match s with
  | Ir.Sexpr { Ir.e = Ir.Tincdec (_, op, ({ Ir.e = Ir.Tvar sym; _ } as lv));
               _ }
    when (match Ast.decay lv.Ir.ty with
          | Ast.Tint -> true
          (* capability escape-clearing must see pointer steps, so those
             take the full gen_incdec path *)
          | Ast.Tptr _ -> not (cap_clears_on_escape env.kind)
          | _ -> false) ->
    (* statement-context i++ / p++: a single read-modify-write, as an
       optimising compiler emits — the result value is dead *)
    let delta =
      match Ast.decay lv.Ir.ty with
      | Ast.Tptr pointee -> elem_size env pointee
      | _ -> 1
    in
    let delta = match op with Ast.Incr -> delta | Ast.Decr -> -delta in
    emit_alu env Insn.Add (Insn.Mem (var_mem env sym ~delta:0)) (Insn.Imm delta)
  | Ir.Sexpr e -> gen_expr env e
  | Ir.Sdecl (sym, init) ->
    (match init with
     | None -> ()
     | Some rhs ->
       gen_assign env { Ir.ty = sym.Ir.ty; e = Ir.Tvar sym } rhs)
  | Ir.Sif (c, then_, else_) ->
    let lelse = fresh_label env "else" in
    let lend = fresh_label env "endif" in
    gen_branch env c ~jump_if:false ~target:lelse;
    gen_stmt env then_;
    (match else_ with
     | None -> emit env (Insn.Label lelse)
     | Some eb ->
       emit env (Insn.Jmp lend);
       emit env (Insn.Label lelse);
       gen_stmt env eb;
       emit env (Insn.Label lend))
  | Ir.Swhile (li, cond, body) ->
    enter_loop_codegen env li ~gen_cond_and_body:(fun summary ->
        let lbody = fresh_label env "body" in
        let lcond = fresh_label env "cond" in
        let lend = fresh_label env "endloop" in
        env.break_labels <- lend :: env.break_labels;
        env.continue_labels <- lcond :: env.continue_labels;
        emit env (Insn.Jmp lcond);
        emit env (Insn.Label lbody);
        emit_loop_stats env summary;
        gen_stmt env body;
        emit env (Insn.Label lcond);
        gen_branch env cond ~jump_if:true ~target:lbody;
        emit env (Insn.Label lend);
        env.break_labels <- List.tl env.break_labels;
        env.continue_labels <- List.tl env.continue_labels)
  | Ir.Sfor (li, init, cond, step, body) ->
    Option.iter (gen_stmt env) init;
    enter_loop_codegen env li ~gen_cond_and_body:(fun summary ->
        let lbody = fresh_label env "body" in
        let lcont = fresh_label env "cont" in
        let lcond = fresh_label env "cond" in
        let lend = fresh_label env "endloop" in
        env.break_labels <- lend :: env.break_labels;
        env.continue_labels <- lcont :: env.continue_labels;
        emit env (Insn.Jmp lcond);
        emit env (Insn.Label lbody);
        emit_loop_stats env summary;
        gen_stmt env body;
        emit env (Insn.Label lcont);
        (* route the step through gen_stmt so statement-context fast paths
           (single-instruction i++) apply *)
        Option.iter (fun e -> gen_stmt env (Ir.Sexpr e)) step;
        emit env (Insn.Label lcond);
        (match cond with
         | Some c -> gen_branch env c ~jump_if:true ~target:lbody
         | None -> emit env (Insn.Jmp lbody));
        emit env (Insn.Label lend);
        env.break_labels <- List.tl env.break_labels;
        env.continue_labels <- List.tl env.continue_labels)
  | Ir.Sreturn e ->
    Option.iter (gen_expr env) e;
    emit env (Insn.Jmp (Printf.sprintf ".Lret_%s" env.fname))
  | Ir.Sblock stmts -> List.iter (gen_stmt env) stmts
  | Ir.Sbreak ->
    (match env.break_labels with
     | l :: _ -> emit env (Insn.Jmp l)
     | [] -> failwith "break outside loop")
  | Ir.Scontinue ->
    (match env.continue_labels with
     | l :: _ -> emit env (Insn.Jmp l)
     | [] -> failwith "continue outside loop")
  | Ir.Sempty -> ()

(* --- functions ---------------------------------------------------------- *)

let align4 n = (n + 3) land lnot 3

(* Assign frame offsets to parameters and locals. *)
let assign_frame env (f : Ir.tfunc) =
  (* parameters: first at [EBP+8] (return address at +4, saved EBP at 0) *)
  let cursor = ref 8 in
  List.iter
    (fun (p : Ir.sym) ->
      Hashtbl.replace env.offsets p.Ir.id !cursor;
      cursor := !cursor + align4 (Backend.val_size env.kind p.Ir.ty))
    f.Ir.params;
  (* locals grow downward from EBP *)
  List.iter
    (fun (l : Ir.sym) ->
      match l.Ir.ty with
      | Ast.Tarray _ ->
        let data_size = align4 (Backend.val_size env.kind l.Ir.ty) in
        (match env.kind with
         | Backend.Cash _ ->
           (* [info : 12][data : n] — info just below the array *)
           env.frame_size <- env.frame_size + data_size + 12;
           let info_off = -env.frame_size in
           Hashtbl.replace env.info_offsets l.Ir.id info_off;
           Hashtbl.replace env.offsets l.Ir.id (info_off + 12);
           env.local_arrays <- l :: env.local_arrays
         | Backend.Bcc _ ->
           (* [bounds : 8][data : n] — initialised in the prologue, BCC's
              object registration *)
           env.frame_size <- env.frame_size + data_size + 8;
           let info_off = -env.frame_size in
           Hashtbl.replace env.info_offsets l.Ir.id info_off;
           Hashtbl.replace env.offsets l.Ir.id (info_off + 8);
           env.local_arrays <- l :: env.local_arrays
         | Backend.Gcc | Backend.Mpx _ | Backend.Cap _ ->
           (* no in-memory info structure: MPX bounds come from BNDMK on
              the static extent, capabilities from CAPMK *)
           env.frame_size <- env.frame_size + data_size;
           Hashtbl.replace env.offsets l.Ir.id (-env.frame_size))
      | _ ->
        let size = align4 (Backend.val_size env.kind l.Ir.ty) in
        env.frame_size <- env.frame_size + size;
        Hashtbl.replace env.offsets l.Ir.id (-env.frame_size))
    f.Ir.locals

let local_array_init env (sym : Ir.sym) =
  let info_off = Hashtbl.find env.info_offsets sym.Ir.id in
  let size =
    match sym.Ir.ty with
    | Ast.Tarray (elem, n) -> n * elem_size env elem
    | _ -> assert false
  in
  match env.kind with
  | Backend.Cash _ ->
    let data_off = info_off + 12 in
    emit_push env (Insn.Imm size);
    emit_lea env Registers.ESI (ebp_mem data_off);
    emit_push env esi;
    emit_lea env Registers.ESI (ebp_mem info_off);
    emit_push env esi;
    emit env (Insn.Callext "cash_seg_init");
    emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm 12)
  | Backend.Bcc _ ->
    (* fill the bounds record: BCC's per-object registration *)
    let data_off = info_off + 8 in
    emit_lea env Registers.ESI (ebp_mem data_off);
    emit_mov env (Insn.Mem (ebp_mem info_off)) esi;
    emit_lea env Registers.ESI (ebp_mem (data_off + size));
    emit_mov env (Insn.Mem (ebp_mem (info_off + 4))) esi
  | Backend.Gcc | Backend.Mpx _ | Backend.Cap _ -> ()

let local_array_free env (sym : Ir.sym) =
  match env.kind with
  | Backend.Cash _ ->
    let info_off = Hashtbl.find env.info_offsets sym.Ir.id in
    emit_lea env Registers.ESI (ebp_mem info_off);
    emit_push env esi;
    emit env (Insn.Callext "cash_seg_free");
    emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm 4)
  | Backend.Bcc _ | Backend.Gcc | Backend.Mpx _ | Backend.Cap _ -> ()

(* Does the emitted body reference the per-function fault label? *)
let body_uses_fault body fname =
  let fl = Printf.sprintf ".Lfault_%s" fname in
  List.exists
    (function Insn.Jcc (_, l) | Insn.Jmp l -> l = fl | _ -> false)
    body

let gen_function ~kind ~prog ~layout ~analysis ~stats ~label_counter
    ~swcheck_counter (f : Ir.tfunc) =
  let env =
    {
      kind;
      prog;
      layout;
      analysis;
      stats;
      label_counter;
      swcheck_counter;
      fname = f.Ir.fsym.Ir.name;
      code = [];
      offsets = Hashtbl.create 31;
      info_offsets = Hashtbl.create 7;
      frame_size = 0;
      seg_saves = [];
      loop_stack = [];
      active_nest = [];
      all_assigns = [];
      seg_contents = [];
      break_labels = [];
      continue_labels = [];
      local_arrays = [];
      mpx_nest = [];
      bnd_contents = [];
      bnd_saves = [];
    }
  in
  assign_frame env f;
  (* body first: it finalises frame_size and seg_saves *)
  List.iter (gen_stmt env) f.Ir.body;
  let body = List.rev env.code in
  (* prologue *)
  env.code <- [];
  emit env (Insn.Label env.fname);
  emit_push env (Insn.Reg Registers.EBP);
  emit_mov env (Insn.Reg Registers.EBP) (Insn.Reg Registers.ESP);
  if env.frame_size > 0 then
    emit_alu env Insn.Sub (Insn.Reg Registers.ESP) (Insn.Imm env.frame_size);
  List.iter
    (fun (seg, slot) ->
      emit env (Insn.Mov_from_seg (Insn.Mem (fix_mem env (ebp_mem slot)), seg)))
    env.seg_saves;
  (* MPX: BND1-3 are preserved through the bound table, keyed on fresh
     frame slots (the caller may have live loop-nest bounds in them) *)
  List.iter
    (fun (breg, slot) -> emit env (Insn.Bndstx (breg, ebp_mem slot)))
    env.bnd_saves;
  List.iter (local_array_init env) (List.rev env.local_arrays);
  let prologue = List.rev env.code in
  (* epilogue *)
  env.code <- [];
  emit env (Insn.Label (Printf.sprintf ".Lret_%s" env.fname));
  List.iter (local_array_free env) env.local_arrays;
  List.iter
    (fun (seg, slot) ->
      emit env (Insn.Mov_to_seg (seg, Insn.Mem (fix_mem env (ebp_mem slot)))))
    env.seg_saves;
  List.iter
    (fun (breg, slot) -> emit env (Insn.Bndldx (breg, ebp_mem slot)))
    env.bnd_saves;
  emit_mov env (Insn.Reg Registers.ESP) (Insn.Reg Registers.EBP);
  emit_pop env (Insn.Reg Registers.EBP);
  emit env Insn.Ret;
  if body_uses_fault body env.fname then begin
    emit env (Insn.Label (fault_label env));
    emit env (Insn.Callext "bounds_violation");
    emit env Insn.Halt
  end;
  let epilogue = List.rev env.code in
  prologue @ body @ epilogue

(* --- whole program ------------------------------------------------------ *)

type result = {
  kind : Backend.kind;
  program : Machine.Program.t;
  layout : Data_layout.t;
  analysis : Minic.Loop_analysis.t;
  stats : stats;
  code_bytes : int;
  data_bytes : int;
}

(* The _start stub: Cash programs install the call gate and register every
   static array's segment before main runs (§3.4). *)
let gen_start ~kind ~prog ~(layout : Data_layout.t) =
  let env =
    {
      kind;
      prog;
      layout;
      analysis = Minic.Loop_analysis.analyze { prog with Ir.funcs = [] };
      stats = { hw_checks = 0; sw_checks = 0; bcc_checks = 0; seg_loads = 0 };
      label_counter = ref 0;
      swcheck_counter = ref 0;
      fname = "_start";
      code = [];
      offsets = Hashtbl.create 1;
      info_offsets = Hashtbl.create 1;
      frame_size = 0;
      seg_saves = [];
      loop_stack = [];
      active_nest = [];
      all_assigns = [];
      seg_contents = [];
      break_labels = [];
      continue_labels = [];
      local_arrays = [];
      mpx_nest = [];
      bnd_contents = [];
      bnd_saves = [];
    }
  in
  emit env (Insn.Label "_start");
  (match kind with
   | Backend.Cash _ ->
     emit env (Insn.Callext "cash_startup");
     let register ~info ~addr ~size =
       emit_push env (Insn.Imm size);
       emit_push env (Insn.Imm addr);
       emit_push env (Insn.Imm info);
       emit env (Insn.Callext "cash_seg_init");
       emit_alu env Insn.Add (Insn.Reg Registers.ESP) (Insn.Imm 12)
     in
     List.iter
       (fun ((sym : Ir.sym), _) ->
         match sym.Ir.ty with
         | Ast.Tarray (elem, n) ->
           let entry = Data_layout.entry_exn layout sym in
           register ~info:entry.Data_layout.info_addr
             ~addr:entry.Data_layout.addr
             ~size:(n * elem_size env elem)
         | _ -> ())
       prog.Ir.globals;
     Array.iteri
       (fun i s ->
         register ~info:(str_info env i) ~addr:(str_addr env i)
           ~size:(String.length s + 1))
       prog.Ir.strings
   | Backend.Gcc | Backend.Bcc _ | Backend.Mpx _ | Backend.Cap _ -> ());
  emit env (Insn.Call "main");
  emit env Insn.Halt;
  List.rev env.code

(* Compile a typed program with the given backend. *)
let generate kind (prog : Ir.tprog) =
  let layout = Data_layout.build kind prog in
  let analysis = Minic.Loop_analysis.analyze prog in
  let stats = { hw_checks = 0; sw_checks = 0; bcc_checks = 0; seg_loads = 0 } in
  let label_counter = ref 0 in
  let swcheck_counter = ref 0 in
  let funcs =
    List.concat_map
      (gen_function ~kind ~prog ~layout ~analysis ~stats ~label_counter
         ~swcheck_counter)
      prog.Ir.funcs
  in
  let start = gen_start ~kind ~prog ~layout in
  let insns = start @ funcs in
  let program =
    Machine.Program.link ~entry:"_start" ~data:layout.Data_layout.data insns
  in
  {
    kind;
    program;
    layout;
    analysis;
    stats;
    code_bytes = Machine.Program.code_size program;
    data_bytes = layout.Data_layout.total_bytes;
  }
