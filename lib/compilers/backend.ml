(* Backend descriptors: the three compilers under comparison.

   All share the mini-C front end and differ exactly where the paper says
   they differ:

   - [Gcc]: no bound checking, 1-word pointers. The baseline.
   - [Bcc]: software bound checking everywhere, 3-word fat pointers
     (value, lower bound, upper bound). Checks cost the paper's
     6-instruction minimum sequence; direct array references check only
     the upper bound (a BCC behaviour the paper points out).
   - [Cash]: segmentation-hardware checking, 2-word pointers (value +
     pointer to the 3-word information structure). Array-like references
     inside loops are checked by the segment-limit hardware when a segment
     register is available, and by BCC-style software checks otherwise. *)

module Ast = Minic.Ast

type cash_config = {
  seg_budget : int;
  (* Segment registers available for array bound checking, in FCFS
     assignment order. The default is ES, FS, GS (§3.7). *)
  seg_regs : Seghw.Segreg.name list;
  (* The 4-register configuration frees SS by rewriting PUSH/POP into
     MOV/SUB-ADD with explicit DS overrides (§3.7). *)
  rewrite_pushpop : bool;
  (* §3.8: "If Cash is used for security only, Cash does not need to
     bound-check read operations" — writes are what an attacker needs.
     With [check_reads = false], read-only arrays consume no segment
     registers and reads never fall back to software checks. *)
  check_reads : bool;
}

let cash_default =
  {
    seg_budget = 3;
    seg_regs = [ Seghw.Segreg.ES; Seghw.Segreg.FS; Seghw.Segreg.GS ];
    rewrite_pushpop = false;
    check_reads = true;
  }

let cash_two_regs = { cash_default with seg_budget = 2;
                      seg_regs = [ Seghw.Segreg.FS; Seghw.Segreg.GS ] }

let cash_four_regs =
  {
    cash_default with
    seg_budget = 4;
    seg_regs =
      [ Seghw.Segreg.ES; Seghw.Segreg.FS; Seghw.Segreg.GS; Seghw.Segreg.SS ];
    rewrite_pushpop = true;
  }

(* The security-only deployment of §3.8. *)
let cash_security_only = { cash_default with check_reads = false }

type bcc_config = {
  (* §2: the x86 BOUND instruction packs both comparisons into one opcode
     but costs 7 cycles against 6 for the equivalent plain instructions
     (and needs its bounds pair in memory). [use_bound_insn] switches the
     software checker to it, reproducing the paper's argument for why the
     instruction fell out of use. *)
  use_bound_insn : bool;
}

let bcc_default = { use_bound_insn = false }
let bcc_bound_insn = { use_bound_insn = true }

type mpx_config = {
  (* Bounds registers available for FCFS loop hoisting, BND1..BND3 —
     BND0 stays the bounds-transit register every pointer-producing
     expression leaves its bounds in, mirroring how Cash keeps a value's
     info pointer in EBX. "Intel MPX Explained" measures four
     architectural BND registers; one is the transit register here, so
     at most three are hoistable. *)
  bnd_budget : int;
}

let mpx_default = { bnd_budget = 3 }

type cap_config = {
  (* GANDALF-style tag clearing: pointer arithmetic whose result escapes
     the capability's bounds clears the tag bit, and any later
     dereference through the untagged capability faults. [false] defers
     everything to the per-access bounds check. *)
  clear_on_escape : bool;
}

let cap_default = { clear_on_escape = true }

type kind =
  | Gcc
  | Bcc of bcc_config
  | Cash of cash_config
  | Mpx of mpx_config
  | Cap of cap_config

let name = function
  | Gcc -> "gcc"
  | Bcc { use_bound_insn = false } -> "bcc"
  | Bcc { use_bound_insn = true } -> "bcc-bound"
  | Cash c -> Printf.sprintf "cash%d" c.seg_budget
  | Mpx _ -> "mpx"
  | Cap _ -> "cap"

(* How many bytes a *value* of this type occupies in memory under this
   backend. Pointer representation is the paper's for the three original
   compilers — 1 word (GCC), 3 words (BCC), 2 words (Cash) — plus 1 word
   for MPX (bounds live in registers and the bound table, never inline)
   and 2 words for the capability backend (value + tagged capability
   word). *)
let rec val_size kind (ty : Ast.ty) =
  match ty with
  | Ast.Tptr _ ->
    (match kind with
     | Gcc | Mpx _ -> 4
     | Cash _ | Cap _ -> 8
     | Bcc _ -> 12)
  | Ast.Tarray (t, n) -> n * val_size kind t
  | Ast.Tint -> 4
  | Ast.Tchar -> 1
  | Ast.Tdouble -> 8
  | Ast.Tvoid -> 0

(* Resolve sizeof(T) as the simulated program sees it. *)
let sizeof kind ty = val_size kind ty

(* The selector value for the "global segment" — the flat user data
   segment Cash assigns to objects it cannot or will not track (scalars
   whose address is taken, exhausted segment pool, int-to-pointer casts).
   References through it always pass the hardware check, i.e. bound
   checking is disabled for those objects (§3.4, §3.9). *)
let global_segment_selector = Osim.Kernel.user_data_selector
