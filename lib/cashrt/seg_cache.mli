(** The 3-entry most-recently-freed segment cache (§3.6). Freeing never
    modifies the LDT, so freed segments are parked here and an allocation
    matching a parked (base, size) reuses the entry without entering the
    kernel — what makes local-array functions called in loops cheap. *)

type t

val create : ?capacity:int -> unit -> t

(** Take a parked segment matching exactly this geometry; counts a hit
    or miss. *)
val take_matching : t -> base:int -> size:int -> int option

(** Park a freed segment; returns the evicted (oldest) LDT entry, if any,
    which the caller returns to the free pool. *)
val park : t -> index:int -> base:int -> size:int -> int option

val hits : t -> int
val misses : t -> int
val size : t -> int

(** Snapshot support. Entries are serialized MRU-first, exactly as
    kept, so reuse behaviour after a restore matches the uninterrupted
    run. *)
type persisted = {
  p_entries : (int * int * int) list;  (** (index, base, size) *)
  p_hits : int;
  p_misses : int;
}

val export_state : t -> persisted
val import_state : t -> persisted -> unit
