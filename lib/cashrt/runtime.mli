(** The Cash runtime: the user-space support code the Cash compiler links
    into every program, exposed to simulated programs as host externals —
    [cash_startup] (the 543-cycle per-program setup: call gate +
    free-list), [cash_seg_init]/[cash_seg_free] (the 263-cycle per-array
    segment lifecycle through the pool and 3-entry cache), and
    [cash_malloc]/[cash_free] (§3.4's modified allocator, carving the
    3-word information structure in front of each buffer).

    Information-structure layout (§3.3): info+0 selector, info+4 segment
    base, info+8 the array's upper bound. *)

type stats = {
  mutable seg_allocs : int;
  mutable global_fallbacks : int;
      (** allocations served by the flat segment after pool exhaustion:
          bound checking disabled for those objects (§3.4) *)
}

type t

val pool_cycles : int
val freelist_init_cycles : int

(** Bytes of the per-object information structure (3 words). *)
val info_size : int

val create :
  ?pool_capacity:int -> kernel:Osim.Kernel.t -> process:Osim.Process.t ->
  unit -> t

val pool : t -> Segment_pool.t
val cache : t -> Seg_cache.t
val stats : t -> stats

(** Snapshot support: everything mutable — pool, reuse cache, counters,
    and the started flag. The kernel/process wiring and the externals
    are reconstructed by {!attach} on restore. *)
type persisted = {
  p_pool : Segment_pool.persisted;
  p_cache : Seg_cache.persisted;
  p_seg_allocs : int;
  p_global_fallbacks : int;
  p_started : bool;
}

val export_state : t -> persisted
val import_state : t -> persisted -> unit

(** Segment geometry for an array (§3.5): byte-exact for sizes up to
    1 MiB; above, the minimal multiple of 4 KiB with the array's end
    aligned to the segment's end. Returns (segment base, segment size). *)
val segment_geometry : base:int -> size:int -> int * int

(** Allocate (or reuse from the cache) a segment for the array at
    [base] and fill its information structure at [info]. Raises [#GP]
    before [cash_startup] has run. *)
val seg_init : t -> Machine.Cpu.t -> info:int -> base:int -> size:int -> unit

(** Release into the 3-entry cache (never enters the kernel). *)
val seg_free : t -> Machine.Cpu.t -> info:int -> unit

(** Register all runtime externals on the process's CPU. *)
val install : t -> unit

(** [attach ?pool_capacity process] builds and installs the runtime.
    Shrunken capacities exercise the §3.4 exhaustion fallback. *)
val attach : ?pool_capacity:int -> Osim.Process.t -> t
