(* The user-space free_ldt_entry list (§3.6, second optimisation).

   LDT entries 1..8191 are managed entirely in user space: allocating an
   entry pops the list, freeing pushes it back — neither touches the
   kernel. Only *writing a descriptor* into a popped entry requires the
   call gate. Entry 0 is reserved for the cash_modify_ldt call gate.

   If the pool is exhausted (more than 8191 simultaneously-live arrays) the
   allocator returns [None]; the caller then assigns the array to the
   global (flat) data segment, which disables bound checking for that array
   (§3.4) — a documented, counted degradation, not an error. *)

type t = {
  mutable free : int list;
  capacity : int;
  mutable live : int;
  mutable peak_live : int;
  mutable exhausted_allocs : int;
}

let default_capacity = Seghw.Descriptor_table.capacity - 1 (* entry 0 reserved *)

(* [capacity] below the architectural 8191 is for tests that exercise the
   exhaustion path without allocating thousands of segments. *)
let create ?(capacity = default_capacity) () =
  if capacity < 1 || capacity > default_capacity then
    invalid_arg (Printf.sprintf "Segment_pool.create: capacity %d" capacity);
  (* Build 1..capacity in increasing order so tests can predict indices. *)
  let rec build i acc = if i < 1 then acc else build (i - 1) (i :: acc) in
  { free = build capacity []; capacity; live = 0; peak_live = 0;
    exhausted_allocs = 0 }

let allocate t =
  match t.free with
  | [] ->
    t.exhausted_allocs <- t.exhausted_allocs + 1;
    None
  | idx :: rest ->
    t.free <- rest;
    t.live <- t.live + 1;
    if t.live > t.peak_live then t.peak_live <- t.live;
    Some idx

let release t idx =
  if idx < 1 || idx > t.capacity then
    invalid_arg (Printf.sprintf "Segment_pool.release: bad index %d" idx);
  t.free <- idx :: t.free;
  t.live <- t.live - 1

let live t = t.live
let peak_live t = t.peak_live
let exhausted_allocs t = t.exhausted_allocs
let free_count t = List.length t.free
let capacity t = t.capacity

(* Snapshot support: free-list order is preserved verbatim — it is a
   LIFO stack, and allocations replayed after a restore must pop the
   same LDT indices the uninterrupted run would. *)
type persisted = {
  p_capacity : int;
  p_free : int list;
  p_live : int;
  p_peak_live : int;
  p_exhausted_allocs : int;
}

let export_state t =
  {
    p_capacity = t.capacity;
    p_free = t.free;
    p_live = t.live;
    p_peak_live = t.peak_live;
    p_exhausted_allocs = t.exhausted_allocs;
  }

let import_state t (p : persisted) =
  if p.p_capacity <> t.capacity then
    invalid_arg
      (Printf.sprintf "Segment_pool.import_state: capacity %d <> %d"
         p.p_capacity t.capacity);
  t.free <- p.p_free;
  t.live <- p.p_live;
  t.peak_live <- p.p_peak_live;
  t.exhausted_allocs <- p.p_exhausted_allocs
