(** The user-space [free_ldt_entry] list (§3.6): LDT entries 1..8191
    managed without kernel involvement. Exhaustion returns [None] and the
    caller falls back to the flat global segment, disabling checking for
    that object (§3.4). *)

type t

val default_capacity : int
(** 8191 (entry 0 is the call gate's). *)

(** [create ?capacity ()] — capacities below the architectural maximum
    let tests exercise exhaustion cheaply.
    @raise Invalid_argument outside 1..8191. *)
val create : ?capacity:int -> unit -> t

(** Pop a free LDT entry, or [None] when exhausted (counted). *)
val allocate : t -> int option

(** @raise Invalid_argument on an out-of-range index. *)
val release : t -> int -> unit

val live : t -> int
val peak_live : t -> int
val exhausted_allocs : t -> int
val free_count : t -> int
val capacity : t -> int

(** Snapshot support. The free list is serialized in order (it is a
    LIFO stack; replayed allocations must pop the same indices). *)
type persisted = {
  p_capacity : int;
  p_free : int list;
  p_live : int;
  p_peak_live : int;
  p_exhausted_allocs : int;
}

val export_state : t -> persisted

(** @raise Invalid_argument when the capacities disagree. *)
val import_state : t -> persisted -> unit
