(* The 3-entry most-recently-freed segment cache (§3.6, third optimisation).

   Freeing a segment never modifies the LDT; the descriptor stays valid in
   its entry. So Cash parks the three most recently freed segments here,
   and a subsequent allocation whose base and limit match a parked segment
   reuses the LDT entry without entering the kernel. This is what makes
   functions with local arrays called inside loops cheap: every call after
   the first hits the cache.

   Eviction pushes the victim's LDT entry back to the free pool (its stale
   descriptor is harmless: the entry is not referenced by any loaded
   segment register, and the next allocation overwrites it). *)

type entry = { index : int; base : int; size : int }

type t = {
  mutable entries : entry list; (* most recent first, length <= capacity *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 3) () = { entries = []; capacity; hits = 0; misses = 0 }

(* Try to reuse a cached segment with exactly this base and size. *)
let take_matching t ~base ~size =
  let rec split acc = function
    | [] -> None
    | e :: rest when e.base = base && e.size = size ->
      t.entries <- List.rev_append acc rest;
      Some e.index
    | e :: rest -> split (e :: acc) rest
  in
  match split [] t.entries with
  | Some idx ->
    t.hits <- t.hits + 1;
    Some idx
  | None ->
    t.misses <- t.misses + 1;
    None

(* Park a freed segment; returns the evicted LDT entry, if any, which the
   caller must return to the free pool. *)
let park t ~index ~base ~size =
  let entries = { index; base; size } :: t.entries in
  if List.length entries <= t.capacity then begin
    t.entries <- entries;
    None
  end
  else begin
    let rec take_front n = function
      | [] -> ([], [])
      | x :: rest ->
        if n = 0 then ([], x :: rest)
        else
          let kept, dropped = take_front (n - 1) rest in
          (x :: kept, dropped)
    in
    let kept, dropped = take_front t.capacity entries in
    t.entries <- kept;
    match dropped with
    | [ victim ] -> Some victim.index
    | _ -> assert false (* we only ever exceed capacity by one *)
  end

let hits t = t.hits
let misses t = t.misses
let size t = List.length t.entries

(* Snapshot support: entries are serialized MRU-first, exactly as kept. *)
type persisted = {
  p_entries : (int * int * int) list; (* (index, base, size), MRU first *)
  p_hits : int;
  p_misses : int;
}

let export_state t =
  {
    p_entries = List.map (fun e -> (e.index, e.base, e.size)) t.entries;
    p_hits = t.hits;
    p_misses = t.misses;
  }

let import_state t (p : persisted) =
  t.entries <- List.map (fun (index, base, size) -> { index; base; size })
      p.p_entries;
  t.hits <- p.p_hits;
  t.misses <- p.p_misses
