(* The Cash runtime library: the user-space support code the Cash compiler
   links into every program.

   Exposed to simulated programs as host externals:

     cash_startup()                      — per-program initialisation:
                                           installs the call gate
                                           (set_ldt_callgate syscall) and
                                           the free_ldt_entry list. This is
                                           the paper's 543-cycle
                                           per-program overhead.
     cash_seg_init(info, base, size)     — allocate a segment for an array
                                           and fill its 3-word information
                                           structure. The 263-cycle
                                           per-array overhead: ~10 cycles
                                           of user-space list work plus a
                                           253-cycle call-gate entry on a
                                           segment-cache miss.
     cash_seg_free(info)                 — release an array's segment into
                                           the 3-entry reuse cache (never
                                           enters the kernel).
     cash_malloc(size) / cash_free(ptr)  — the modified malloc/free: carve
                                           a 3-word info structure in front
                                           of the buffer and manage its
                                           segment.

   Information-structure layout (matching the paper's §3.3 code example,
   where `movw 0(%ecx),%gs` loads the selector and `subl 4(%ecx),%eax`
   subtracts the base):

     info+0 : segment selector (16 bits, zero-extended)
     info+4 : segment base — equals the array's lower bound for arrays
              <= 1 MiB; for larger arrays it is the 4 KiB-granular base,
              up to 4095 bytes below the array (Figure 2's slack)
     info+8 : the array's upper bound (one past the last byte; coincides
              with the end of the segment by construction, §3.5) *)

type stats = {
  mutable seg_allocs : int;       (* cash_seg_init + cash_malloc calls *)
  mutable global_fallbacks : int; (* allocations served by the flat segment *)
}

type t = {
  kernel : Osim.Kernel.t;
  process : Osim.Process.t;
  pool : Segment_pool.t;
  cache : Seg_cache.t;
  stats : stats;
  mutable started : bool;
}

(* User-space cycle charges (the list/cache manipulation code we do not
   simulate instruction-by-instruction). Chosen so that the per-array cost
   on a cache miss is ~263 cycles, the paper's measurement: 253 (gate) +
   [pool_cycles]. *)
let pool_cycles = 10
let freelist_init_cycles = 43

let info_size = 12

let create ?pool_capacity ~kernel ~process () =
  {
    kernel;
    process;
    pool = Segment_pool.create ?capacity:pool_capacity ();
    cache = Seg_cache.create ();
    stats = { seg_allocs = 0; global_fallbacks = 0 };
    started = false;
  }

let pool t = t.pool
let cache t = t.cache
let stats t = t.stats

(* Snapshot support: everything mutable — pool, reuse cache, counters,
   and the started flag. The kernel/process wiring and the externals are
   reconstructed by [attach] on restore. *)
type persisted = {
  p_pool : Segment_pool.persisted;
  p_cache : Seg_cache.persisted;
  p_seg_allocs : int;
  p_global_fallbacks : int;
  p_started : bool;
}

let export_state t =
  {
    p_pool = Segment_pool.export_state t.pool;
    p_cache = Seg_cache.export_state t.cache;
    p_seg_allocs = t.stats.seg_allocs;
    p_global_fallbacks = t.stats.global_fallbacks;
    p_started = t.started;
  }

let import_state t (p : persisted) =
  Segment_pool.import_state t.pool p.p_pool;
  Seg_cache.import_state t.cache p.p_cache;
  t.stats.seg_allocs <- p.p_seg_allocs;
  t.stats.global_fallbacks <- p.p_global_fallbacks;
  t.started <- p.p_started

let read32 t linear =
  let phys =
    Seghw.Mmu.translate_linear (Osim.Process.mmu t.process) ~linear
      ~write:false
  in
  Machine.Phys_mem.read32 (Osim.Process.phys t.process) phys

let write32 t linear v =
  let phys =
    Seghw.Mmu.translate_linear (Osim.Process.mmu t.process) ~linear
      ~write:true
  in
  Machine.Phys_mem.write32 (Osim.Process.phys t.process) phys v

(* Segment geometry for an array (§3.5): byte-exact for <= 1 MiB; for
   larger arrays, the minimal multiple of 4 KiB with the array's end
   aligned to the segment's end. *)
let segment_geometry ~base ~size =
  if size <= 1 lsl 20 then (base, size)
  else begin
    let pages = (size + 4095) / 4096 in
    let seg_size = pages * 4096 in
    (base + size - seg_size, seg_size)
  end

let selector_for_index index =
  Seghw.Selector.make ~index ~table:Seghw.Selector.Ldt ~rpl:3

(* Allocate (or reuse) a segment covering [base, base+size) and return its
   selector. Falls back to the flat data segment when the pool is empty. *)
let allocate_segment t cpu ~base ~size =
  t.stats.seg_allocs <- t.stats.seg_allocs + 1;
  Machine.Cpu.add_cycles cpu pool_cycles;
  let seg_base, seg_size = segment_geometry ~base ~size in
  match Seg_cache.take_matching t.cache ~base:seg_base ~size:seg_size with
  | Some index -> selector_for_index index
  | None ->
    (match Segment_pool.allocate t.pool with
     | None ->
       t.stats.global_fallbacks <- t.stats.global_fallbacks + 1;
       Osim.Kernel.user_data_selector
     | Some index ->
       Osim.Kernel.invoke_cash_modify_ldt t.kernel cpu
         ~ldt:(Osim.Process.ldt t.process) ~index ~base:seg_base
         ~size:seg_size ~writable:true;
       selector_for_index index)

(* Release a segment by selector: LDT segments are parked in the reuse
   cache; the flat-segment fallback has nothing to release. *)
let release_segment t cpu ~selector ~seg_base ~seg_size =
  Machine.Cpu.add_cycles cpu pool_cycles;
  if Seghw.Selector.table selector = Seghw.Selector.Ldt then begin
    let index = Seghw.Selector.index selector in
    match Seg_cache.park t.cache ~index ~base:seg_base ~size:seg_size with
    | None -> ()
    | Some evicted -> Segment_pool.release t.pool evicted
  end

let fill_info t ~info ~selector ~seg_base ~upper =
  write32 t info (Seghw.Selector.to_int selector);
  write32 t (info + 4) seg_base;
  write32 t (info + 8) upper

let seg_init t cpu ~info ~base ~size =
  if not t.started then
    Seghw.Fault.gp "cash_seg_init before cash_startup";
  let selector = allocate_segment t cpu ~base ~size in
  if Seghw.Selector.table selector = Seghw.Selector.Ldt then begin
    let seg_base, _ = segment_geometry ~base ~size in
    fill_info t ~info ~selector ~seg_base ~upper:(base + size)
  end
  else
    (* global-segment fallback (§3.4): the flat segment starts at 0 and
       covers everything — offsets equal linear addresses and both the
       hardware and software checks become vacuous *)
    fill_info t ~info ~selector ~seg_base:0 ~upper:0xFFFFFFFF

let seg_free t cpu ~info =
  let selector = Seghw.Selector.of_int (read32 t info land 0xFFFF) in
  let seg_base = read32 t (info + 4) in
  let upper = read32 t (info + 8) in
  release_segment t cpu ~selector ~seg_base ~seg_size:(upper - seg_base)

(* Register all runtime externals on the process's CPU. *)
let install t =
  let cpu = Osim.Process.cpu t.process in
  let libc = Osim.Process.libc t.process in
  Machine.Cpu.register_external cpu "cash_startup" (fun cpu ->
      Osim.Kernel.invoke_set_ldt_callgate t.kernel cpu
        ~ldt:(Osim.Process.ldt t.process);
      Machine.Cpu.add_cycles cpu freelist_init_cycles;
      t.started <- true);
  Machine.Cpu.register_external cpu "cash_seg_init" (fun cpu ->
      let info = Machine.Cpu.arg_int cpu 0 in
      let base = Machine.Cpu.arg_int cpu 1 in
      let size = Machine.Cpu.arg_int cpu 2 in
      seg_init t cpu ~info ~base ~size);
  Machine.Cpu.register_external cpu "cash_seg_free" (fun cpu ->
      let info = Machine.Cpu.arg_int cpu 0 in
      seg_free t cpu ~info);
  Machine.Cpu.register_external cpu "cash_malloc" (fun cpu ->
      Machine.Cpu.add_cycles cpu Osim.Libc.malloc_cycles;
      let size = Machine.Cpu.arg_int cpu 0 in
      let block = Osim.Libc.alloc libc (info_size + size) in
      let base = block + info_size in
      seg_init t cpu ~info:block ~base ~size;
      Machine.Cpu.return_int cpu base;
      (* The info-structure address travels in ECX so the caller can bind
         it to the pointer's shadow word. *)
      Machine.Registers.set (Machine.Cpu.regs cpu) Machine.Registers.ECX
        block);
  Machine.Cpu.register_external cpu "cash_free" (fun cpu ->
      Machine.Cpu.add_cycles cpu Osim.Libc.free_cycles;
      let ptr = Machine.Cpu.arg_int cpu 0 in
      let info = ptr - info_size in
      seg_free t cpu ~info;
      Osim.Libc.release libc info)

(* Convenience: build and install the runtime for a loaded process.
   [pool_capacity] below the architectural 8191 exercises the
   pool-exhaustion fallback (§3.4) cheaply. *)
let attach ?pool_capacity process =
  let t =
    create ?pool_capacity ~kernel:(Osim.Process.kernel process) ~process ()
  in
  install t;
  t
