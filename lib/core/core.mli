(** Cash — checking array bound violations using (simulated) segmentation
    hardware: the public API.

    {[
      let compiled = Core.compile Core.cash source_text in
      match (Core.run compiled).Core.status with
      | Core.Finished -> ...
      | Core.Bound_violation msg -> ...   (* #GP/#SS/#BR *)
      | Core.Crashed msg -> ...
    ]} *)

type backend = Compilers.Backend.kind

(** The baseline: no bound checking. *)
val gcc : backend

(** Software bound checking with 3-word fat pointers and in-memory bounds
    records — the paper's comparison compiler. *)
val bcc : backend

(** [bcc] with checks through the x86 [BOUND] instruction — §2's losing
    alternative. *)
val bcc_bound : backend

(** The paper's contribution, default 3-segment-register configuration. *)
val cash : backend

(** §3.8's security-only deployment: writes checked, reads free. *)
val cash_security : backend

(** The 2-, 3-, and 4-register configurations of §3.7/§4.2.
    @raise Invalid_argument for any other count. *)
val cash_n : int -> backend

(** MPX-style bounds-register checking: 1-word pointers, four BND
    registers, bounds spilled through a two-level bound table keyed on
    the pointer slot's linear address. Checks everywhere (in and out of
    loops). *)
val mpx : backend

(** Capability checking: 2-word tagged base+length pointers, every
    dereference validated by the hardware capability table; pointer
    arithmetic that escapes the bounds clears the tag. *)
val cap : backend

val backend_name : backend -> string

type compiled = Compilers.Codegen.result

(** Parse, type-check, and compile.
    @raise Minic.Lexer.Lex_error, [Minic.Parser.Parse_error], or
    [Minic.Typecheck.Type_error] on bad input. *)
val compile : backend -> string -> compiled

(** {!compile} through the process-wide compiled-program cache, keyed
    on a digest of the full backend configuration plus the source: each
    distinct program compiles once per process, no matter how many
    worker domains, fleet re-checks, or serve requests ask for it.
    Returning the {e same} [compiled] value also shares its program
    identity, so the block engine's shared superblock cache binds
    instead of recompiling. Compilation errors propagate and are never
    cached; the table is capacity-bounded (cleared wholesale on
    overflow). Safe from any domain. *)
val compile_cached : backend -> string -> compiled

(** [(hits, misses)] of {!compile_cached} since process start. *)
val compile_cache_stats : unit -> int * int

(** Cumulative wall-clock seconds spent inside {!compile} (lex + parse
    + typecheck + codegen) since process start, summed across domains —
    above one worker it can exceed the wall clock, like the fleet's
    check-phase split. {!compile_cached} hits add nothing. *)
val compile_seconds : unit -> float

type status =
  | Finished                   (** ran to the final HLT *)
  | Bound_violation of string  (** segment limit / BOUND / software check *)
  | Crashed of string          (** any other processor fault *)

type run = {
  status : status;
  cycles : int;
  insns : int;
  output : string;
  process : Osim.Process.t;
  runtime : Cashrt.Runtime.t option;  (** present for Cash programs *)
  kernel : Osim.Kernel.t;
}

(** A machine that has been loaded (and possibly partially executed or
    restored from a snapshot) but not yet run to completion. *)
type state

(** The compiled program a state is executing. *)
val state_compiled : state -> compiled

(** The underlying simulated process, for checkpoint-placement helpers
    ({!Snapshot.run_to_marker}, {!Snapshot.align_to_block}). *)
val state_process : state -> Osim.Process.t

(** Load into a fresh simulated process, wire the trace sink and (for
    Cash programs) the runtime, and stop before the first instruction.
    Same optional arguments as {!run}. *)
val start :
  ?kernel:Osim.Kernel.t -> ?engine:Machine.Cpu.engine -> ?chain:bool ->
  ?trace:Trace.sink -> ?guard_malloc:bool -> compiled -> state

(** Run (or resume) a started machine to completion.
    [run c = finish (start c)].
    @raise Machine.Cpu.Out_of_fuel past [fuel] instructions. *)
val finish : ?fuel:int -> state -> run

(** Serialize a started machine's complete state ({!Snapshot.save}). *)
val save : state -> Buffer.t

(** Rebuild a machine from snapshot bytes taken of [compiled]
    ({!Snapshot.restore}). [engine] defaults to the ambient engine and
    need not match the saving engine; [trace] defaults to the ambient
    sink.
    @raise Snapshot.Error on truncated/corrupt/mismatched images. *)
val restore :
  ?engine:Machine.Cpu.engine -> ?trace:Trace.sink -> compiled -> bytes ->
  state

(** Pool-aware restore: overwrite [state]'s {e existing} machine with
    snapshot bytes taken of the same compiled program, in place —
    {!Snapshot.restore_into}. The returned state reuses the process and
    kernel; by the determinism oracle its {!state_digest} is
    byte-identical to a fresh {!restore} of the same image, including
    after the previous request faulted, halted, or stopped
    mid-superblock. On [Snapshot.Error] the machine is half-scrubbed:
    discard the state instead of pooling it.
    @raise Snapshot.Error on bad images or a program mismatch. *)
val restore_into : ?trace:Trace.sink -> state -> bytes -> state

(** [save] digested — the byte-stable state-equality oracle. *)
val state_digest : state -> string

(** Re-wrap a finished run as a state, so a crash snapshot can be taken
    of whatever machine a failing run left behind. *)
val state_of_run : compiled -> run -> state

(** Load into a fresh simulated process and run to completion. Supply
    [kernel] to share a global clock across processes (the network
    experiments do); [engine] to pick the CPU interpreter (the
    pre-decoded fast path by default, [Machine.Cpu.Reference] for the
    equivalence oracle); [chain] to override the block-chaining
    default (see {!set_chaining}); [trace] to attach a {!Trace.sink} — the run
    emits hardware/OS events into it and folds its per-function cycle
    attribution in afterwards (tracing never changes simulated
    semantics); [guard_malloc] enables the Electric Fence
    comparator (§2): page-fenced heap allocations that catch
    malloc-buffer overruns under ANY backend, at page-granular
    virtual-memory cost.
    @raise Machine.Cpu.Out_of_fuel past [fuel] instructions. *)
val run :
  ?kernel:Osim.Kernel.t -> ?engine:Machine.Cpu.engine -> ?chain:bool ->
  ?fuel:int -> ?trace:Trace.sink -> ?guard_malloc:bool -> compiled -> run

(** [compile] then [run]. *)
val exec :
  ?engine:Machine.Cpu.engine -> ?chain:bool -> ?fuel:int ->
  ?trace:Trace.sink -> ?guard_malloc:bool -> backend -> string -> run

(** Ambient sink applied to every {!run} without an explicit [?trace] —
    how [bench/main.exe --trace] traces whole-harness reproductions
    whose [run] calls are buried inside the table modules. [None] (the
    default) restores untraced runs.

    The ambient sink is {e domain-local}: setting it affects only the
    calling domain, and a freshly spawned domain starts untraced. A
    [Trace.sink] is a single-domain structure, so parallel harness
    workers ([Parallel.run_jobs]) each attach their own sink and merge
    them after the barrier with [Trace.merge_into] rather than sharing
    one ambient sink across domains. *)
val set_default_trace : Trace.sink option -> unit

(** The ambient sink currently in force {e on this domain}, for harness
    code that emits events itself (e.g. Table 8's scheduler). *)
val current_trace : unit -> Trace.sink option

(** Ambient CPU engine applied to every {!run} without an explicit
    [?engine] — how [--engine=block|predecode|reference] on the bench
    and experiment CLIs reaches the [run] calls buried inside the table
    modules. Process-wide (atomic, visible to every harness worker
    domain); set it once, before fanning out. Default
    {!Machine.Cpu.Predecoded}. *)
val set_default_engine : Machine.Cpu.engine -> unit

val default_engine : unit -> Machine.Cpu.engine

(** Parse an engine name: ["block"], ["predecode"] (or ["predecoded"]),
    ["reference"]. [None] for anything else. *)
val engine_of_string : string -> Machine.Cpu.engine option

(** The BENCH-json name of an engine: ["block"] / ["predecoded"] /
    ["reference"]. *)
val engine_name : Machine.Cpu.engine -> string

(** Ambient block-chaining default for {!Machine.Cpu.Block} CPUs — how
    [--no-chain] on the bench and experiment CLIs reaches the buried
    [run] calls. Process-wide (atomic, read once per CPU creation);
    set it before fanning out. On by default. A per-run [?chain] on
    {!start}/{!run}/{!exec} overrides it without touching process-wide
    state (safe under concurrent harness domains). Chaining is a pure
    host-throughput cache: simulated state, cycles, traces, and faults
    are bit-identical either way. *)
val set_chaining : bool -> unit

val chaining_enabled : unit -> bool

(** Sum of the dynamic zero-cost counters with the given name prefix:
    ["__stat_iter_a_"] array-loop iterations, ["__stat_iter_s_"]
    spilled-loop iterations, ["__stat_swc_"] software checks executed. *)
val stat_sum : run -> prefix:string -> int

(** Static characteristics, feeding Tables 1/2/4/6/7. *)
type static_info = {
  code_bytes : int;
  data_bytes : int;
  image_bytes : int;
  hw_checks : int;   (** reference sites checked by segmentation *)
  sw_checks : int;   (** sites on Cash's software fallback *)
  bcc_checks : int;  (** sites checked by the BCC backends *)
  loops : Minic.Loop_analysis.characteristics;
}

val static_info : ?budget:int -> compiled -> static_info

(** Read a whole file, closing the channel even if the read raises. *)
val read_file : string -> string

(** Write a whole file (binary, truncating), closing the channel even
    if the write raises. *)
val write_file : string -> string -> unit

(** Retained for the original scaffold's smoke test. *)
val placeholder : unit -> unit
