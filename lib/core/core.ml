(* Cash: checking array bound violations using (simulated) segmentation
   hardware — the public API.

   This facade ties the whole pipeline together:

     mini-C source
       --[Minic.Typecheck]--> typed IR
       --[Compilers.Codegen]--> machine program (per backend)
       --[Osim.Process + Cashrt.Runtime]--> simulated execution

   Typical use:

     let r = Core.compile Core.cash "int main() { ... }" in
     let run = Core.run r in
     assert (run.Core.status = Core.Finished);
     print_string run.Core.output

   The three backends of the paper are [gcc] (no checking), [bcc]
   (software checking, fat pointers) and [cash] (segmentation-hardware
   checking). [cash_n 2] and [cash_n 4] give the 2- and 4-segment-register
   configurations of §4.2/§3.7. *)

type backend = Compilers.Backend.kind

let gcc : backend = Compilers.Backend.Gcc
let bcc : backend = Compilers.Backend.Bcc Compilers.Backend.bcc_default

(* §2's BOUND-instruction variant of the software checker. *)
let bcc_bound : backend =
  Compilers.Backend.Bcc Compilers.Backend.bcc_bound_insn
let cash : backend = Compilers.Backend.Cash Compilers.Backend.cash_default

(* §3.8's security-only deployment: writes are checked, reads are not;
   read-only arrays stop consuming segment registers. *)
let cash_security : backend =
  Compilers.Backend.Cash Compilers.Backend.cash_security_only

let cash_n = function
  | 2 -> Compilers.Backend.Cash Compilers.Backend.cash_two_regs
  | 3 -> cash
  | 4 -> Compilers.Backend.Cash Compilers.Backend.cash_four_regs
  | n -> invalid_arg (Printf.sprintf "cash_n: no %d-register configuration" n)

(* MPX-style bounds-register checking: 1-word pointers, BND0-3, bounds
   spilled through the two-level bound table. *)
let mpx : backend = Compilers.Backend.Mpx Compilers.Backend.mpx_default

(* Capability checking: 2-word tagged base+length pointers, every
   dereference validated in hardware. *)
let cap : backend = Compilers.Backend.Cap Compilers.Backend.cap_default

let backend_name = Compilers.Backend.name

type compiled = Compilers.Codegen.result

(* Cumulative wall time spent inside [compile] (lex + parse + typecheck
   + codegen), in nanoseconds, summed across domains. The fuzzing fleet
   reads the delta across a run to split compile time from check time;
   a cache hit in [compile_cached] adds nothing (nothing was
   compiled). *)
let compile_ns_total = Atomic.make 0

let compile_seconds () = float_of_int (Atomic.get compile_ns_total) *. 1e-9

(* Parse, type-check, and compile [source] with [backend]. Raises
   [Minic.Lexer.Lex_error], [Minic.Parser.Parse_error], or
   [Minic.Typecheck.Type_error] on bad input. *)
let compile backend source =
  let t0 = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      ignore
        (Atomic.fetch_and_add compile_ns_total (int_of_float (dt *. 1e9))))
    (fun () ->
      Compilers.Codegen.generate backend (Minic.Typecheck.check_source source))

(* --- the process-wide compiled-program cache ----------------------------- *)

(* One compile per distinct (backend, source) per PROCESS: fleets
   re-checking a program across engines, pool restores, and the serve
   path all share this table instead of each worker domain (or each
   seed) compiling its own copy. Sharing the same [compiled] value also
   shares its [Machine.Program.t] identity, which is what lets the
   block engine's shared superblock cache (keyed on program uid) bind
   instead of recompile.

   The key digests the full backend configuration via [Marshal] —
   [Backend.name] is NOT sufficient: cash_default and
   cash_security_only both render as "cash3" and would alias. Failures
   are never cached (the exception propagates and the next caller
   retries). The table is capacity-bounded and cleared on overflow: a
   long-lived server fed unbounded distinct sources must not retain
   every program ever compiled. The bound is deliberately SMALL — each
   retained [compiled] pins its program and, through the block engine's
   ephemeron superblock cache, that program's compiled closure set.
   On the fuzzing fleet (6000 distinct compiles per 2000-seed sweep,
   heavy allocation, frequent major cycles) every retained program
   costs measurable marking time: the check phase ran 360/339/310/282
   programs/s at capacity 8/16/32/64 on the 1-core reference host.
   The in-repo reuse workloads (serve's mixed load, the pool restores,
   the bench probes) cycle at most a handful of distinct sources, so 8
   loses them nothing; a deployment serving a wider hot set can raise
   it with CASH_COMPILE_CACHE_CAP. Compilation runs OUTSIDE the lock so
   concurrent fleet workers never serialise their compiles; when two
   domains race the same key, the first store wins and the loser adopts
   the winner's value (keeping program identity process-unique). *)
let compile_cache : (string, compiled) Hashtbl.t = Hashtbl.create 16
let compile_cache_lock = Mutex.create ()

let compile_cache_capacity =
  match Sys.getenv_opt "CASH_COMPILE_CACHE_CAP" with
  | Some s -> (try max 1 (int_of_string (String.trim s)) with _ -> 8)
  | None -> 8
let compile_cache_hits = Atomic.make 0
let compile_cache_misses = Atomic.make 0

let compile_cache_stats () =
  (Atomic.get compile_cache_hits, Atomic.get compile_cache_misses)

(* Backends are a handful of static configuration values compared
   against millions of sources, so their Marshal+digest is memoized on
   structural equality (an assoc list a few entries long). Lock-free:
   a racing duplicate entry is harmless, both map to the same digest. *)
let backend_digests : (backend * string) list Atomic.t = Atomic.make []

let backend_digest (backend : backend) =
  match List.assoc_opt backend (Atomic.get backend_digests) with
  | Some d -> d
  | None ->
    let d = Digest.string (Marshal.to_string backend []) in
    Atomic.set backend_digests ((backend, d) :: Atomic.get backend_digests);
    d

let compile_key backend source = backend_digest backend ^ Digest.string source

let compile_cached backend source =
  let key = compile_key backend source in
  let cached =
    Mutex.protect compile_cache_lock (fun () ->
        Hashtbl.find_opt compile_cache key)
  in
  match cached with
  | Some r ->
    Atomic.incr compile_cache_hits;
    r
  | None ->
    let r = compile backend source in
    Atomic.incr compile_cache_misses;
    Mutex.protect compile_cache_lock (fun () ->
        match Hashtbl.find_opt compile_cache key with
        | Some r' -> r'  (* another domain compiled it first; adopt theirs *)
        | None ->
          if Hashtbl.length compile_cache >= compile_cache_capacity then
            Hashtbl.reset compile_cache;
          Hashtbl.add compile_cache key r;
          r)

type status =
  | Finished                      (* ran to the final HLT *)
  | Bound_violation of string     (* caught by segment limit / BOUND /
                                     software check *)
  | Crashed of string             (* any other processor fault *)

type run = {
  status : status;
  cycles : int;                   (* simulated cycles consumed *)
  insns : int;                    (* instructions executed *)
  output : string;                (* everything print_* wrote *)
  process : Osim.Process.t;
  runtime : Cashrt.Runtime.t option; (* present for Cash programs *)
  kernel : Osim.Kernel.t;
}

let is_cash (r : compiled) =
  match r.Compilers.Codegen.kind with
  | Compilers.Backend.Cash _ -> true
  | _ -> false

(* Ambient sink for whole-harness tracing (bench --trace): applied to
   every [run] that does not pass an explicit [?trace]. Domain-local
   (DLS), not a plain global: a [ref] here would be a data race the
   moment the parallel harness runs jobs on several domains, and a
   single shared sink would corrupt its own ring/counters. Each worker
   attaches its own sink and the harness merges them after the barrier
   ([Trace.merge_into]); a freshly spawned domain starts untraced. *)
let default_trace : Trace.sink option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_default_trace sink = Domain.DLS.set default_trace sink
let current_trace () = Domain.DLS.get default_trace

(* Ambient engine for whole-harness selection (bench/experiments
   --engine=...): applied to every [run] that does not pass an explicit
   [?engine]. Unlike the trace sink this is an [Atomic], not DLS: an
   engine value is immutable data, every domain must observe the CLI's
   choice (the parallel harness spawns fresh domains, which would reset
   a DLS key to its default), and it is set once before any fan-out. *)
let default_engine_cell : Machine.Cpu.engine Atomic.t =
  Atomic.make Machine.Cpu.Predecoded

let set_default_engine e = Atomic.set default_engine_cell e
let default_engine () = Atomic.get default_engine_cell

let engine_of_string = function
  | "block" -> Some Machine.Cpu.Block
  | "predecode" | "predecoded" -> Some Machine.Cpu.Predecoded
  | "reference" -> Some Machine.Cpu.Reference
  | _ -> None

let engine_name = function
  | Machine.Cpu.Block -> "block"
  | Machine.Cpu.Predecoded -> "predecoded"
  | Machine.Cpu.Reference -> "reference"

(* Ambient block-chaining default (bench/experiments/cashc --no-chain):
   the cell lives in [Machine.Cpu] (an Atomic, read once per CPU
   creation) so every domain of a parallel harness observes the CLI's
   choice; these are the facade's names for it. A per-run [?chain]
   argument on [start]/[run]/[exec] overrides it without touching the
   process-wide state — what the differential fleet's chain-off leg
   uses so concurrent jobs cannot race the global. *)
let set_chaining = Machine.Cpu.set_chaining
let chaining_enabled = Machine.Cpu.chaining_enabled

(* A loaded-but-not-finished machine: what [start] returns, [finish]
   consumes, and the snapshot layer checkpoints. *)
type state = {
  s_compiled : compiled;
  s_process : Osim.Process.t;
  s_runtime : Cashrt.Runtime.t option;
  s_kernel : Osim.Kernel.t;
}

let state_compiled state = state.s_compiled
let state_process state = state.s_process

(* Load [compiled] into a fresh simulated process, wire the trace sink
   and (for Cash programs) the runtime, and stop just before the first
   instruction. A fresh kernel is created unless one is supplied (supply
   one to share a global clock across processes, as the network
   experiments do). *)
let start ?kernel ?engine ?chain ?trace ?(guard_malloc = false)
    (compiled : compiled) =
  let trace =
    match trace with Some _ as s -> s | None -> current_trace ()
  in
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  let kernel =
    match kernel with Some k -> k | None -> Osim.Kernel.create ()
  in
  let process =
    Osim.Process.load ~engine ?chain ~kernel
      compiled.Compilers.Codegen.program
  in
  Machine.Cpu.set_sink (Osim.Process.cpu process) trace;
  if guard_malloc then
    Osim.Libc.set_guard_malloc (Osim.Process.libc process) true;
  let runtime =
    if is_cash compiled then Some (Cashrt.Runtime.attach process) else None
  in
  { s_compiled = compiled; s_process = process; s_runtime = runtime;
    s_kernel = kernel }

(* Run (or resume) a started machine to completion and fold the run's
   per-function cycle attribution into its sink. *)
let finish ?fuel state =
  let process = state.s_process in
  let raw_status = Osim.Process.run ?fuel process in
  Machine.Cpu.commit_profile (Osim.Process.cpu process);
  let status =
    match raw_status with
    | Machine.Cpu.Halted -> Finished
    | Machine.Cpu.Running -> Crashed "still running (impossible)"
    | Machine.Cpu.Faulted f ->
      if Seghw.Fault.is_bound_violation f then
        Bound_violation (Seghw.Fault.to_string f)
      else Crashed (Seghw.Fault.to_string f)
  in
  {
    status;
    cycles = Osim.Process.cycles process;
    insns = Machine.Cpu.insns_executed (Osim.Process.cpu process);
    output = Osim.Process.output process;
    process;
    runtime = state.s_runtime;
    kernel = state.s_kernel;
  }

(* Load [compiled] into a fresh simulated process and run it to
   completion. With a trace sink (explicit or ambient), the CPU and MMU
   emit events into it. *)
let run ?kernel ?engine ?chain ?fuel ?trace ?guard_malloc
    (compiled : compiled) =
  finish ?fuel (start ?kernel ?engine ?chain ?trace ?guard_malloc compiled)

(* --- checkpoint/restore (lib/snapshot) --- *)

let save state = Snapshot.save ?runtime:state.s_runtime state.s_process

let restore ?engine ?trace (compiled : compiled) bytes =
  let engine =
    match engine with Some e -> e | None -> default_engine ()
  in
  let trace =
    match trace with Some _ as s -> s | None -> current_trace ()
  in
  let process, runtime =
    Snapshot.restore ~engine ~program:compiled.Compilers.Codegen.program
      bytes
  in
  Machine.Cpu.set_sink (Osim.Process.cpu process) trace;
  {
    s_compiled = compiled;
    s_process = process;
    s_runtime = runtime;
    s_kernel = Osim.Process.kernel process;
  }

(* Pool-aware restore: overwrite [state]'s existing machine with the
   image instead of building a fresh one. The state keeps its process
   and kernel (reused in place); only the runtime binding can change
   (see [Snapshot.restore_into]). On [Snapshot.Error] the machine is
   half-scrubbed — discard the state rather than reusing it. *)
let restore_into ?trace state bytes =
  let trace =
    match trace with Some _ as s -> s | None -> current_trace ()
  in
  let runtime =
    Snapshot.restore_into ?runtime:state.s_runtime
      ~program:state.s_compiled.Compilers.Codegen.program state.s_process
      bytes
  in
  Machine.Cpu.set_sink (Osim.Process.cpu state.s_process) trace;
  { state with s_runtime = runtime }

let state_digest state =
  Snapshot.digest (Buffer.to_bytes (save state))

(* Re-wrap a finished run as a state, so the differential fleet can dump
   a crash snapshot of whatever machine a failing run left behind. *)
let state_of_run (compiled : compiled) (r : run) =
  {
    s_compiled = compiled;
    s_process = r.process;
    s_runtime = r.runtime;
    s_kernel = r.kernel;
  }

(* Compile and run in one step. *)
let exec ?engine ?chain ?fuel ?trace ?guard_malloc backend source =
  run ?engine ?chain ?fuel ?trace ?guard_malloc (compile backend source)

(* Sum of the dynamic counters whose label starts with [prefix] —
   "__stat_iter_a" (array-loop iterations), "__stat_iter_s" (spilled-loop
   iterations), "__stat_swc" (software checks executed). *)
let stat_sum run ~prefix =
  List.fold_left
    (fun acc (name, v) ->
      if String.length name >= String.length prefix
         && String.sub name 0 (String.length prefix) = prefix
      then acc + v
      else acc)
    0
    (Machine.Cpu.stats (Osim.Process.cpu run.process))

(* Static characteristics of a compiled program, for Tables 1/2/4/6/7. *)
type static_info = {
  code_bytes : int;
  data_bytes : int;
  image_bytes : int;
  hw_checks : int;
  sw_checks : int;
  bcc_checks : int;
  loops : Minic.Loop_analysis.characteristics;
}

let static_info ?(budget = 3) (r : compiled) =
  let s = r.Compilers.Codegen.stats in
  {
    code_bytes = r.Compilers.Codegen.code_bytes;
    data_bytes = r.Compilers.Codegen.data_bytes;
    image_bytes =
      r.Compilers.Codegen.code_bytes + r.Compilers.Codegen.data_bytes;
    hw_checks = s.Compilers.Codegen.hw_checks;
    sw_checks = s.Compilers.Codegen.sw_checks;
    bcc_checks = s.Compilers.Codegen.bcc_checks;
    loops =
      Minic.Loop_analysis.characteristics ~budget
        r.Compilers.Codegen.analysis;
  }

(* Exception-safe whole-file I/O, shared by every reader and writer in
   the CLIs, the bench harness, and the fuzz dumper: the channel is
   closed even when the read or write raises, so a failing path cannot
   leak a descriptor. *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

(* Kept for the original scaffold's smoke test. *)
let placeholder () = ()
