(** A Domain-based work pool for independent simulator jobs.

    Every experiment, ablation cell, and differential-fleet case is an
    independent deterministic simulation: it builds its own
    [Machine]/[Mmu]/kernel, so runs share no simulated state. This
    module fans such jobs out across OCaml 5 domains while keeping the
    observable results {e byte-identical} to a serial run:

    - jobs are handed to workers through one atomic index — no locks,
      no deque — and each worker loops until the index passes the end;
    - results land in a per-job slot, so collection order is the job
      order regardless of which domain ran what or when it finished;
    - an exception raised by a job is captured with its backtrace and
      re-raised in the caller {e for the lowest-numbered failing job},
      so failure reports are as deterministic as success output.

    Jobs must not share mutable state; ambient per-run state
    ([Core.set_default_trace]) is domain-local, so each job attaches
    its own. Nested calls run serially on the calling worker (no domain
    explosion when a parallelised experiment is itself run by a
    parallel harness). *)

(** Worker count used when [?jobs] is not given: the [CASH_JOBS]
    environment variable if set (CI pins it), otherwise
    [Domain.recommended_domain_count ()].
    @raise Failure if [CASH_JOBS] is set but not a positive integer. *)
val default_jobs : unit -> int

(** [jobs_of_argv argv] extracts a [-j N] / [-jN] / [--jobs=N] worker
    count from an argv-style array, for harnesses with hand-rolled flag
    parsing (cmdliner users declare their own option and pass it to
    [run_jobs] directly). [None] when no such flag is present.
    @raise Failure on a malformed or non-positive count. *)
val jobs_of_argv : string array -> int option

(** [run_jobs ?jobs tasks] runs every task and returns their results in
    task order. At most [jobs] (default {!default_jobs}) domains run at
    once, the calling domain included; [jobs] is clamped to the number
    of tasks. With an effective job count of 1 — or when called from
    inside another [run_jobs] worker — the tasks run serially in the
    calling domain, spawning nothing. *)
val run_jobs : ?jobs:int -> (unit -> 'a) array -> 'a array

(** [map ?jobs f xs] = [run_jobs ?jobs] over [fun () -> f x], keeping
    list order. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
