(* Domain-based fan-out for independent simulator jobs.

   The pool is deliberately minimal: one atomic next-job index shared by
   all workers (Checkbochs-style "many independent guest instances", not
   a general task graph). Each simulated run costs milliseconds to
   seconds, so one fetch-and-add per job is noise, and handing out jobs
   one at a time load-balances experiments whose costs differ by an
   order of magnitude (table8 vs microcosts) better than static
   chunking would.

   Determinism contract: results are stored by job index and returned
   in job order; an exception re-raised on behalf of a failed job is
   the lowest-indexed one. Callers therefore see output byte-identical
   to a serial run no matter how the domains interleave. *)

let default_jobs () =
  match Sys.getenv_opt "CASH_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ ->
       failwith
         (Printf.sprintf "CASH_JOBS must be a positive integer, got %S" s))

let jobs_of_argv argv =
  let bad v =
    failwith (Printf.sprintf "-j: expected a positive integer, got %S" v)
  in
  let parse v =
    match int_of_string_opt v with Some n when n >= 1 -> n | _ -> bad v
  in
  let n = Array.length argv in
  let rec scan i acc =
    if i >= n then acc
    else
      let arg = argv.(i) in
      if arg = "-j" then
        if i + 1 < n then scan (i + 2) (Some (parse argv.(i + 1)))
        else failwith "-j: missing worker count"
      else if String.length arg > 2 && String.sub arg 0 2 = "-j" then
        scan (i + 1) (Some (parse (String.sub arg 2 (String.length arg - 2))))
      else if String.length arg > 7 && String.sub arg 0 7 = "--jobs=" then
        scan (i + 1) (Some (parse (String.sub arg 7 (String.length arg - 7))))
      else scan (i + 1) acc
  in
  scan 0 None

(* True while the current domain is executing jobs for an enclosing
   [run_jobs]: a nested call then runs serially instead of spawning
   domains underneath every worker (the ablation grid is parallel in
   its own right AND runs as one job of the bench fan-out). *)
let inside_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Serial execution also sets the worker flag: a [~jobs:1] run means
   "this subtree is serial", so a nested [run_jobs] underneath it must
   not fan out either — otherwise [-j 1] would not actually be a serial
   run (and a traced jobs-on-one-domain pass could leak work onto
   untraced domains). *)
let run_serial tasks =
  let was_inside = Domain.DLS.get inside_worker in
  Domain.DLS.set inside_worker true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set inside_worker was_inside)
    (fun () -> Array.map (fun task -> task ()) tasks)

let run_jobs ?jobs (tasks : (unit -> 'a) array) : 'a array =
  let n = Array.length tasks in
  let jobs =
    max 1 (min n (match jobs with Some j -> j | None -> default_jobs ()))
  in
  if n = 0 || jobs = 1 || Domain.DLS.get inside_worker then run_serial tasks
  else begin
    (* One slot per job; every slot is written by exactly one worker, so
       the only cross-domain handoff is the join (a full barrier). *)
    let results :
        ('a, exn * Printexc.raw_backtrace) result option array =
      Array.make n None
    in
    let next = Atomic.make 0 in
    let worker () =
      Domain.DLS.set inside_worker true;
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let r =
            match tasks.(i) () with
            | v -> Ok v
            | exception e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    (* The calling domain is worker number [jobs]; restore its
       nested-call flag afterwards (it may itself be the main domain). *)
    let was_inside = Domain.DLS.get inside_worker in
    Fun.protect
      ~finally:(fun () ->
        Domain.DLS.set inside_worker was_inside;
        Array.iter Domain.join spawned)
      worker;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None ->
          (* Unreachable: the joins above guarantee every index was
             claimed and completed. *)
          assert false)
      results
  end

let map ?jobs f xs =
  Array.to_list
    (run_jobs ?jobs (Array.of_list (List.map (fun x () -> f x) xs)))
