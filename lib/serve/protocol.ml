(* The cashd wire protocol: newline-framed JSON, one request or
   response per line, over stdin/stdout or a Unix socket.

   Requests:

     {"id": 1, "op": "compile-and-run", "backend": "cash",
      "source": "int main() { ... }", "engine": "block"}
     {"id": 2, "op": "replay", "snapshot": "qpopper/cash3"}

   [id] is optional (defaults to the request's 1-based position in the
   stream); [engine] is optional (defaults to the server's ambient
   engine). [backend] uses the cashc names: gcc, bcc, bcc-bound, cash
   (= cash3), cash2, cash4, mpx, cap. [snapshot] names an entry of the
   server's
   warm set — by default the twelve Table 8 "app/backend" pairs.

   Responses (one per request, in request order):

     {"id": 1, "ok": true, "status": "finished", "output": "...",
      "cycles": 59780, "insns": 12083, "latency_us": 312.4}
     {"id": 2, "ok": false, "error": "unknown snapshot \"x\"",
      "latency_us": 1.9}

   [status] is "finished", "bound_violation", or "crashed", with the
   fault message in [detail] for the latter two. A bound violation or a
   crash of the simulated program is a successful request ([ok] true):
   the simulator did its job. [ok] false means the request itself
   failed — unparseable line, unknown backend or snapshot, source that
   does not compile — and carries [error] instead of the run fields.

   After the last response the server emits one summary line:

     {"summary": true, "requests": 200, "errors": 0,
      "wall_seconds": 0.19, "req_per_s": 1052.6,
      "p50_us": 410.2, "p90_us": 890.1, "p99_us": 2104.0} *)

type spec =
  | Compile_and_run of { backend : Core.backend; source : string }
  | Replay of { snapshot : string }

type request = {
  rq_id : int;
  rq_engine : Machine.Cpu.engine option;
  rq_spec : spec;
}

(* The cashc names (cash3 = cash: [Core.backend_name] prints the
   register count). *)
let backends =
  [ ("gcc", Core.gcc); ("bcc", Core.bcc); ("bcc-bound", Core.bcc_bound);
    ("cash", Core.cash); ("cash2", Core.cash_n 2); ("cash3", Core.cash);
    ("cash4", Core.cash_n 4); ("mpx", Core.mpx); ("cap", Core.cap) ]

let backend_of_string name = List.assoc_opt name backends

type response = {
  rs_id : int;
  rs_ok : bool;
  rs_status : string;  (* "" on a failed request *)
  rs_detail : string;  (* fault message, "" when finished *)
  rs_output : string;
  rs_cycles : int;
  rs_insns : int;
  rs_error : string option;  (* [Some] iff not [rs_ok] *)
  rs_latency_us : float;
}

let failure ~id ?(latency_us = 0.) msg =
  {
    rs_id = id;
    rs_ok = false;
    rs_status = "";
    rs_detail = "";
    rs_output = "";
    rs_cycles = 0;
    rs_insns = 0;
    rs_error = Some msg;
    rs_latency_us = latency_us;
  }

let of_run ~id ~latency_us (r : Core.run) =
  let status, detail =
    match r.Core.status with
    | Core.Finished -> ("finished", "")
    | Core.Bound_violation m -> ("bound_violation", m)
    | Core.Crashed m -> ("crashed", m)
  in
  {
    rs_id = id;
    rs_ok = true;
    rs_status = status;
    rs_detail = detail;
    rs_output = r.Core.output;
    rs_cycles = r.Core.cycles;
    rs_insns = r.Core.insns;
    rs_error = None;
    rs_latency_us = latency_us;
  }

(* --- parsing ------------------------------------------------------------- *)

let parse_request ~default_id line =
  match Trace.Json.parse line with
  | exception Trace.Json.Parse_error m -> Error ("bad JSON: " ^ m)
  | json -> (
    let str k = Option.bind (Trace.Json.member k json) Trace.Json.to_string_opt in
    let rq_id =
      match Option.bind (Trace.Json.member "id" json) Trace.Json.to_int_opt with
      | Some i -> i
      | None -> default_id
    in
    let rq_engine =
      match str "engine" with
      | None -> Ok None
      | Some name -> (
        match Core.engine_of_string name with
        | Some e -> Ok (Some e)
        | None -> Error (Printf.sprintf "unknown engine %S" name))
    in
    match rq_engine with
    | Error e -> Error e
    | Ok rq_engine -> (
      match str "op" with
      | Some "compile-and-run" -> (
        match (str "backend", str "source") with
        | None, _ -> Error "compile-and-run: missing \"backend\""
        | _, None -> Error "compile-and-run: missing \"source\""
        | Some b, Some source -> (
          match backend_of_string b with
          | None -> Error (Printf.sprintf "unknown backend %S" b)
          | Some backend ->
            Ok { rq_id; rq_engine; rq_spec = Compile_and_run { backend; source } }))
      | Some "replay" -> (
        match str "snapshot" with
        | None -> Error "replay: missing \"snapshot\""
        | Some snapshot ->
          Ok { rq_id; rq_engine; rq_spec = Replay { snapshot } })
      | Some op -> Error (Printf.sprintf "unknown op %S" op)
      | None -> Error "missing \"op\""))

(* --- rendering ----------------------------------------------------------- *)

let request_to_json rq =
  let open Trace.Json in
  let base = [ ("id", Int rq.rq_id) ] in
  let engine =
    match rq.rq_engine with
    | None -> []
    | Some e -> [ ("engine", Str (Core.engine_name e)) ]
  in
  let spec =
    match rq.rq_spec with
    | Compile_and_run { backend; source } ->
      [ ("op", Str "compile-and-run");
        ("backend", Str (Core.backend_name backend));
        ("source", Str source) ]
    | Replay { snapshot } ->
      [ ("op", Str "replay"); ("snapshot", Str snapshot) ]
  in
  Obj (base @ spec @ engine)

let response_to_json rs =
  let open Trace.Json in
  let us = Float.round (rs.rs_latency_us *. 10.) /. 10. in
  match rs.rs_error with
  | Some e ->
    Obj
      [ ("id", Int rs.rs_id); ("ok", Bool false); ("error", Str e);
        ("latency_us", Float us) ]
  | None ->
    Obj
      ([ ("id", Int rs.rs_id); ("ok", Bool true);
         ("status", Str rs.rs_status) ]
      @ (if rs.rs_detail = "" then [] else [ ("detail", Str rs.rs_detail) ])
      @ [ ("output", Str rs.rs_output); ("cycles", Int rs.rs_cycles);
          ("insns", Int rs.rs_insns); ("latency_us", Float us) ])
