(** The warm-pool request server behind [bin/cashd.exe] and
    [bench --serve]: newline-framed JSON requests ({!Protocol}) batched
    onto the [Parallel] domain pool, served by restoring snapshot
    images into {e reused} machines ({!Core.restore_into}) drawn from
    per-worker {!Pool}s. *)

(** A named warm snapshot a [replay] request can target. *)
type warm = {
  w_name : string;  (** the request's [snapshot] field *)
  w_compiled : Core.compiled;
  w_image : bytes;
}

(** The twelve Table 8 "app/backend" warm images, each run to its
    [server_ready] marker ([Harness.Table8.warm]); compiles and warms
    in parallel. A pair that never reaches the marker falls back to a
    pristine start image (init replays, results unchanged). *)
val table8_warms : ?jobs:int -> unit -> warm list

(** The warm names {!table8_warms} would produce, without compiling
    anything — for generating request mixes up front. *)
val table8_names : unit -> string list

type t

(** [create ()] — a server. [warms] (default empty) is the replay
    target set; [jobs] caps worker domains (default
    [Parallel.default_jobs]); [batch] (default 256) is how many
    requests are in flight per dispatch — also the reuse horizon, since
    worker pools live in domain-local storage and
    [Parallel.run_jobs] spawns fresh domains per call (at [jobs = 1]
    the calling domain serves everything and its pools persist);
    [pool_capacity]/[policy] (default 1/[Grow]) configure each worker
    pool; [pooled = false] serves every request through a fresh
    [Core.restore] instead — the A/B baseline leg; [engine] is the
    default CPU engine for requests that don't name one (default: the
    ambient {!Core.default_engine}).
    @raise Invalid_argument when [batch < 1]. *)
val create :
  ?jobs:int -> ?batch:int -> ?pool_capacity:int -> ?policy:Pool.policy ->
  ?pooled:bool -> ?engine:Machine.Cpu.engine -> ?warms:warm list -> unit -> t

(** Serve one already-parsed request on the calling domain. *)
val run_request : t -> Protocol.request -> Protocol.response

(** Parse and serve one request line; a parse failure becomes an
    [ok = false] response carrying [default_id]. *)
val handle_line : t -> default_id:int -> string -> Protocol.response

(** Serve a batch of lines across the worker pool; responses come back
    in line order. Line [i] defaults its id to [default_id + i]. *)
val run_batch :
  t -> default_id:int -> string list -> Protocol.response list

(** End-of-run throughput report. Latency percentiles are
    nearest-rank over per-request wall latencies in microseconds. *)
type summary = {
  requests : int;
  errors : int;  (** [ok = false] responses *)
  wall_seconds : float;
  req_per_s : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  compile_hits : int;
      (** process-wide {!Core.compile_cached} hits during this run —
          compile-and-run requests whose program was already compiled *)
  compile_misses : int;  (** ... and the compiles actually performed *)
}

val summary_to_json : summary -> Trace.Json.t

(** Serve every line in-process (batching internally) and return the
    responses in request order plus the summary — the [bench --serve]
    driver. *)
val run_lines : t -> string list -> Protocol.response list * summary

(** Stream: read request lines from [ic] until EOF, write one response
    line per request (request order, flushed per batch) to [oc], then
    the summary line; returns the summary. Blank lines are skipped. *)
val serve : t -> in_channel -> out_channel -> summary

(** [gen_mix ~names n] — [n] deterministic request lines of the Table 8
    mix: every 4th a small compile-and-run (cycling gcc/bcc/cash micro
    kernels), the rest replays round-robin over [names]. With [names]
    empty every request is a compile-and-run. *)
val gen_mix : names:string list -> int -> string list
