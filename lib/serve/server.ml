(* The warm-pool request server behind [bin/cashd.exe] and
   [bench --serve].

   A server owns a warm set (named snapshot images plus their compiled
   programs — by default the twelve Table 8 "app/backend" pairs warmed
   to their accept loop) and a handful of knobs; requests arrive as
   newline-framed JSON ({!Protocol}), are batched onto the
   [Parallel.run_jobs] domain pool, and come back as one response line
   per request, in request order, followed by a summary line with
   latency percentiles.

   The pooled execution path is the point: each worker domain keeps a
   {!Pool} of machines per (program, engine) pair in domain-local
   storage, and serves a request by [Core.restore_into] — overwriting a
   reused machine in place — rather than [Core.restore] building a
   fresh one. The determinism oracle (test_serve) pins that both paths
   produce byte-identical machines; [pooled = false] keeps the
   fresh-restore path alive as the A/B baseline leg for
   [bench --serve].

   Worker state lives in [Domain.DLS], so pools are per-domain and
   never contend. [Parallel.run_jobs] spawns fresh domains per call,
   which would discard the pools every batch — the [batch] size
   (default 256) amortises the machine builds within a batch, and at
   [jobs = 1] the tasks run in the calling domain, so its pools
   persist across batches. *)

type warm = {
  w_name : string;  (* the [replay] request's [snapshot] field *)
  w_compiled : Core.compiled;
  w_image : bytes;
}

(* The Table 8 warm set: each of the 12 app/backend pairs compiled and
   run to its [server_ready] marker ([Harness.Table8.warm]); a pair
   that never reaches the marker falls back to a pristine start image,
   which replays the init portion but stays byte-identical. *)
let table8_warms ?jobs () =
  Parallel.map ?jobs
    (fun pair ->
      let w = Harness.Table8.warm pair in
      let image =
        match w.Harness.Table8.w_image with
        | Some b -> b
        | None ->
          Buffer.to_bytes (Core.save (Core.start w.Harness.Table8.w_compiled))
      in
      {
        w_name = w.Harness.Table8.w_label;
        w_compiled = w.Harness.Table8.w_compiled;
        w_image = image;
      })
    (Harness.Table8.split_pairs ())

let table8_names () =
  List.map (fun (_, _, label) -> label) (Harness.Table8.split_pairs ())

type t = {
  sv_id : int;  (* keys this server's pools in the shared DLS table *)
  warms : warm list;
  jobs : int option;
  batch : int;
  pool_capacity : int;
  policy : Pool.policy;
  pooled : bool;
  engine : Machine.Cpu.engine;
}

let next_id = Atomic.make 0

let create ?jobs ?(batch = 256) ?(pool_capacity = 1) ?(policy = Pool.Grow)
    ?(pooled = true) ?engine ?(warms = []) () =
  if batch < 1 then invalid_arg "Server.create: batch < 1";
  let engine =
    match engine with Some e -> e | None -> Core.default_engine ()
  in
  {
    sv_id = Atomic.fetch_and_add next_id 1;
    warms;
    jobs;
    batch;
    pool_capacity;
    policy;
    pooled;
    engine;
  }

(* --- per-worker state ----------------------------------------------------- *)

(* Machine pools, one per (server, program, engine) triple. Domain-local:
   each worker grows its own and they never contend. *)
let pools_key : (string, Pool.t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

(* Compilation itself goes through the process-wide
   [Core.compile_cached] — every distinct (backend, source) compiles
   once per process, not once per worker domain, and repeat requests
   get the *same* [Core.compiled] value, so the block engine binds the
   shared superblock set instead of recompiling. What stays per-domain
   is the pristine start image, memoised by program identity
   ([Program.uid] — exact even where two backend configurations render
   the same [Core.backend_name]): building it runs the loader, which is
   cheap but not free, and keying the memo on the uid the shared cache
   hands out keeps it consistent with the machine pools below. *)
let image_cache_key : (int, bytes) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 16)

let worker_pool t ~key ~engine compiled =
  let pools = Domain.DLS.get pools_key in
  let k = Printf.sprintf "%d\x00%s\x00%s" t.sv_id key (Core.engine_name engine) in
  match Hashtbl.find_opt pools k with
  | Some p -> p
  | None ->
    let p =
      Pool.create ~capacity:t.pool_capacity ~policy:t.policy ~engine compiled
    in
    Hashtbl.add pools k p;
    p

(* --- one request ---------------------------------------------------------- *)

(* Resolve a request to (pool key, program, image to restore). *)
let resolve t (rq : Protocol.request) =
  match rq.Protocol.rq_spec with
  | Protocol.Replay { snapshot } -> (
    match List.find_opt (fun w -> w.w_name = snapshot) t.warms with
    | Some w -> Ok ("replay:" ^ snapshot, w.w_compiled, w.w_image)
    | None -> Error (Printf.sprintf "unknown snapshot %S" snapshot))
  | Protocol.Compile_and_run { backend; source } -> (
    match Core.compile_cached backend source with
    | exception e -> Error ("compile error: " ^ Printexc.to_string e)
    | compiled ->
      let uid = compiled.Compilers.Codegen.program.Machine.Program.uid in
      let images = Domain.DLS.get image_cache_key in
      let image =
        match Hashtbl.find_opt images uid with
        | Some image -> image
        | None ->
          let image = Buffer.to_bytes (Core.save (Core.start compiled)) in
          Hashtbl.add images uid image;
          image
      in
      Ok (Printf.sprintf "src:%d" uid, compiled, image))

let run_request t (rq : Protocol.request) =
  let t0 = Unix.gettimeofday () in
  let latency_us () = (Unix.gettimeofday () -. t0) *. 1e6 in
  match resolve t rq with
  | Error msg -> Protocol.failure ~id:rq.Protocol.rq_id ~latency_us:(latency_us ()) msg
  | Ok (key, compiled, image) -> (
    let engine =
      match rq.Protocol.rq_engine with Some e -> e | None -> t.engine
    in
    match
      if t.pooled then
        let pool = worker_pool t ~key ~engine compiled in
        Pool.with_machine pool (fun s ->
            Core.finish (Core.restore_into s image))
      else Core.finish (Core.restore ~engine compiled image)
    with
    | run -> Protocol.of_run ~id:rq.Protocol.rq_id ~latency_us:(latency_us ()) run
    | exception e ->
      Protocol.failure ~id:rq.Protocol.rq_id ~latency_us:(latency_us ())
        (Printexc.to_string e))

let handle_line t ~default_id line =
  match Protocol.parse_request ~default_id line with
  | Error msg -> Protocol.failure ~id:default_id msg
  | Ok rq -> run_request t rq

(* --- batches and streams -------------------------------------------------- *)

let run_batch t ~default_id lines =
  let tasks =
    Array.of_list
      (List.mapi
         (fun i line -> fun () -> handle_line t ~default_id:(default_id + i) line)
         lines)
  in
  Array.to_list (Parallel.run_jobs ?jobs:t.jobs tasks)

type summary = {
  requests : int;
  errors : int;
  wall_seconds : float;
  req_per_s : float;
  p50_us : float;
  p90_us : float;
  p99_us : float;
  compile_hits : int;
  compile_misses : int;
}

(* Nearest-rank percentile over a sorted latency array. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (Float.ceil (p *. float_of_int n /. 100.)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let summarize ~wall_seconds ~errors ~compile_stats0 lats =
  Array.sort compare lats;
  let requests = Array.length lats in
  let hits0, misses0 = compile_stats0 in
  let hits1, misses1 = Core.compile_cache_stats () in
  {
    requests;
    errors;
    wall_seconds;
    req_per_s =
      (if wall_seconds > 0. then float_of_int requests /. wall_seconds else 0.);
    p50_us = percentile lats 50.;
    p90_us = percentile lats 90.;
    p99_us = percentile lats 99.;
    compile_hits = hits1 - hits0;
    compile_misses = misses1 - misses0;
  }

(* New fields go at the end: CI greps the summary line for the leading
   ["summary":true,"requests":...,"errors":...] prefix. *)
let summary_to_json s =
  let open Trace.Json in
  let r1 x = Float.round (x *. 10.) /. 10. in
  Obj
    [ ("summary", Bool true); ("requests", Int s.requests);
      ("errors", Int s.errors);
      ("wall_seconds", Float (Float.round (s.wall_seconds *. 1e4) /. 1e4));
      ("req_per_s", Float (r1 s.req_per_s)); ("p50_us", Float (r1 s.p50_us));
      ("p90_us", Float (r1 s.p90_us)); ("p99_us", Float (r1 s.p99_us));
      ("compile_hits", Int s.compile_hits);
      ("compile_misses", Int s.compile_misses) ]

let rec take n = function
  | x :: rest when n > 0 ->
    let batch, tail = take (n - 1) rest in
    (x :: batch, tail)
  | rest -> ([], rest)

(* In-process driver: run every line, return responses in request order
   plus the summary. [bench --serve] and the batch tests use this. *)
let run_lines t lines =
  let t0 = Unix.gettimeofday () in
  let compile_stats0 = Core.compile_cache_stats () in
  let responses = ref [] in
  let count = ref 0 in
  let errors = ref 0 in
  let rec loop = function
    | [] -> ()
    | lines ->
      let batch, rest = take t.batch lines in
      let rs = run_batch t ~default_id:(!count + 1) batch in
      List.iter
        (fun r ->
          incr count;
          if not r.Protocol.rs_ok then incr errors)
        rs;
      responses := List.rev_append rs !responses;
      loop rest
  in
  loop lines;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let rs = List.rev !responses in
  let lats =
    Array.of_list (List.map (fun r -> r.Protocol.rs_latency_us) rs)
  in
  (rs, summarize ~wall_seconds ~errors:!errors ~compile_stats0 lats)

(* Streaming driver: read newline-framed requests from [ic] in batches
   of [t.batch], write one response line per request (request order,
   flushed per batch), then the summary line. Blank lines are
   skipped. *)
let serve t ic oc =
  let t0 = Unix.gettimeofday () in
  let compile_stats0 = Core.compile_cache_stats () in
  let lats = ref [] in
  let count = ref 0 in
  let errors = ref 0 in
  let eof = ref false in
  let read_batch () =
    let acc = ref [] in
    let n = ref 0 in
    while (not !eof) && !n < t.batch do
      match input_line ic with
      | "" -> ()
      | line ->
        acc := line :: !acc;
        incr n
      | exception End_of_file -> eof := true
    done;
    List.rev !acc
  in
  let rec loop () =
    match read_batch () with
    | [] -> ()
    | lines ->
      let rs = run_batch t ~default_id:(!count + 1) lines in
      List.iter
        (fun r ->
          incr count;
          if not r.Protocol.rs_ok then incr errors;
          lats := r.Protocol.rs_latency_us :: !lats;
          output_string oc (Trace.Json.to_string (Protocol.response_to_json r));
          output_char oc '\n')
        rs;
      flush oc;
      loop ()
  in
  loop ();
  let wall_seconds = Unix.gettimeofday () -. t0 in
  let s =
    summarize ~wall_seconds ~errors:!errors ~compile_stats0
      (Array.of_list !lats)
  in
  output_string oc (Trace.Json.to_string (summary_to_json s));
  output_char oc '\n';
  flush oc;
  s

(* --- load generation ------------------------------------------------------ *)

(* Small compile-and-run payloads for the mixed load: micro kernels kept
   tiny so the compile (memoised per worker anyway) stays cheap. *)
let sample_sources () =
  [ (Core.gcc, Workloads.Micro.matmul ~n:4 ());
    (Core.bcc, Workloads.Micro.gaussian ~n:6 ());
    (Core.cash, Workloads.Micro.edge_detect ~width:8 ~height:6 ()) ]

(* The Table 8 request mix: every 4th request is a compile-and-run
   cycling through the sample sources, the rest replay the warm names
   round-robin. Deterministic — same [n] and [names], same lines. *)
let gen_mix ~names n =
  let samples = sample_sources () in
  let nsamples = List.length samples in
  let nnames = List.length names in
  List.init n (fun i ->
      let rq_id = i + 1 in
      let rq_spec =
        if nnames = 0 || i mod 4 = 3 then
          let backend, source = List.nth samples (i / 4 mod nsamples) in
          Protocol.Compile_and_run { backend; source }
        else Protocol.Replay { snapshot = List.nth names (i mod nnames) }
      in
      Trace.Json.to_string
        (Protocol.request_to_json
           { Protocol.rq_id; rq_engine = None; rq_spec }))
