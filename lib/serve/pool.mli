(** A pool of warm machines for one (compiled program, engine) pair.

    Building a simulated machine allocates megabytes; restoring into a
    reused one ({!Core.restore_into}) overwrites the same arrays in
    place and keeps its compiled superblock closures. The pool hands
    out idle machines and builds new ones only while below [capacity];
    past capacity the [policy] decides: [Grow] builds anyway, [Block]
    waits for a {!release}. Thread-safe — safe to share across domains,
    though the server keeps one pool per worker so its pools never
    contend. *)

type policy = Grow | Block

type t

(** [create compiled] — an empty pool of machines for [compiled] under
    [engine] (default: the ambient {!Core.default_engine}). [capacity]
    (default 1) bounds how many machines the pool builds before the
    [policy] (default [Grow]) applies.
    @raise Invalid_argument when [capacity < 1]. *)
val create :
  ?capacity:int -> ?policy:policy -> ?engine:Machine.Cpu.engine ->
  Core.compiled -> t

(** Take an idle machine, building one if allowed; blocks under
    [Block] policy at capacity until a machine is released or
    discarded. *)
val acquire : t -> Core.state

(** Return a machine for reuse. Only pass states obtained from
    {!acquire} whose restore succeeded. *)
val release : t -> Core.state -> unit

(** Drop a machine instead of pooling it (a failed restore leaves it
    half-scrubbed). Shrinks the build count so a blocked waiter may
    construct a replacement. *)
val discard : t -> Core.state -> unit

(** [with_machine t f] = acquire, run [f], release — or {!discard} if
    [f] raises. *)
val with_machine : t -> (Core.state -> 'a) -> 'a

(** Machines constructed over the pool's lifetime — the reuse oracle:
    after N same-program requests through [with_machine], [built t]
    stays at the concurrency level, not N. *)
val built : t -> int

(** Machines currently idle in the free list. *)
val idle : t -> int
