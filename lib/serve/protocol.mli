(** The cashd wire protocol: newline-framed JSON, one request or
    response per line.

    Requests:
    {v
    {"id": 1, "op": "compile-and-run", "backend": "cash",
     "source": "int main() { ... }", "engine": "block"}
    {"id": 2, "op": "replay", "snapshot": "qpopper/cash3"}
    v}

    [id] defaults to the request's 1-based stream position; [engine]
    defaults to the server's ambient engine; [backend] uses the cashc
    names (gcc, bcc, bcc-bound, cash = cash3, cash2, cash4).

    Responses (one per request, in request order):
    {v
    {"id": 1, "ok": true, "status": "finished", "output": "...",
     "cycles": 59780, "insns": 12083, "latency_us": 312.4}
    {"id": 2, "ok": false, "error": "unknown snapshot \"x\"",
     "latency_us": 1.9}
    v}

    A bound violation or crash {e of the simulated program} is a
    successful request ([ok] true, [status] "bound_violation" /
    "crashed" with the fault in [detail]); [ok] false means the request
    itself failed — bad JSON, unknown backend or snapshot, source that
    does not compile. *)

type spec =
  | Compile_and_run of { backend : Core.backend; source : string }
  | Replay of { snapshot : string }

type request = {
  rq_id : int;
  rq_engine : Machine.Cpu.engine option;
  rq_spec : spec;
}

(** The accepted [backend] names and their compilers. *)
val backends : (string * Core.backend) list

val backend_of_string : string -> Core.backend option

type response = {
  rs_id : int;
  rs_ok : bool;
  rs_status : string;  (** "" on a failed request *)
  rs_detail : string;  (** fault message, "" when finished *)
  rs_output : string;
  rs_cycles : int;
  rs_insns : int;
  rs_error : string option;  (** [Some] iff not [rs_ok] *)
  rs_latency_us : float;
}

(** A request-level failure carrying [msg]. *)
val failure : id:int -> ?latency_us:float -> string -> response

(** A served run's response. *)
val of_run : id:int -> latency_us:float -> Core.run -> response

(** Parse one request line. [default_id] fills a missing [id]. *)
val parse_request : default_id:int -> string -> (request, string) result

val request_to_json : request -> Trace.Json.t
val response_to_json : response -> Trace.Json.t
