(* A pool of warm machines for one (compiled program, engine) pair.

   Machines are expensive to build ([Osim.Process.load] maps megabytes
   of physical memory and page tables) and cheap to reuse
   ([Core.restore_into] overwrites the same arrays in place, and the
   compiled superblock closures survive because they are keyed by the
   unchanged program). The pool amortises the build: [acquire] hands
   out an idle machine, building one only while the pool is below
   capacity; [release] returns it for the next request.

   The policy decides what happens when every machine is busy and the
   pool is at capacity: [Grow] builds past capacity (latency over
   memory), [Block] waits for a release (memory over latency). The
   server uses one pool per worker domain, so its pools never contend;
   the mutex/condition pair is for callers that do share a pool across
   domains — the pool-smaller-than-load tests, or an async front end.

   A machine that fails mid-restore is half-scrubbed
   ([Snapshot.restore_into]'s contract), so [with_machine] discards it
   on any exception instead of returning it to the free list; a blocked
   waiter is woken to build a replacement. *)

type policy = Grow | Block

type t = {
  compiled : Core.compiled;
  engine : Machine.Cpu.engine;
  capacity : int;
  policy : policy;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable free : Core.state list;
  mutable built : int;  (* machines ever constructed *)
  mutable busy : int;
}

let create ?(capacity = 1) ?(policy = Grow) ?engine compiled =
  if capacity < 1 then invalid_arg "Pool.create: capacity < 1";
  let engine =
    match engine with Some e -> e | None -> Core.default_engine ()
  in
  {
    compiled;
    engine;
    capacity;
    policy;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    free = [];
    built = 0;
    busy = 0;
  }

let acquire t =
  Mutex.lock t.mutex;
  let rec take () =
    match t.free with
    | s :: rest ->
      t.free <- rest;
      s
    | [] ->
      if t.policy = Grow || t.built < t.capacity then begin
        t.built <- t.built + 1;
        Core.start ~engine:t.engine t.compiled
      end
      else begin
        Condition.wait t.nonempty t.mutex;
        take ()
      end
  in
  let s = take () in
  t.busy <- t.busy + 1;
  Mutex.unlock t.mutex;
  s

let release t s =
  Mutex.lock t.mutex;
  t.free <- s :: t.free;
  t.busy <- t.busy - 1;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

(* Drop a machine (after a failed restore) instead of pooling it. The
   build count shrinks so a [Block]-policy waiter may construct a
   replacement. *)
let discard t _s =
  Mutex.lock t.mutex;
  t.built <- t.built - 1;
  t.busy <- t.busy - 1;
  Condition.signal t.nonempty;
  Mutex.unlock t.mutex

let with_machine t f =
  let s = acquire t in
  match f s with
  | v ->
    release t s;
    v
  | exception e ->
    discard t s;
    raise e

let built t =
  Mutex.lock t.mutex;
  let n = t.built in
  Mutex.unlock t.mutex;
  n

let idle t =
  Mutex.lock t.mutex;
  let n = List.length t.free in
  Mutex.unlock t.mutex;
  n
