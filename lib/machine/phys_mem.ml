(* Physical memory: a dense, growable little-endian byte store.

   Physical frames are handed out sequentially by the paging unit, so
   physical memory is contiguous from address 0 and a doubling Bytes buffer
   suffices. All multi-byte accessors are little-endian, matching x86. *)

type t = { mutable data : Bytes.t; mutable high_water : int }

(* A domain-local free list of retired backing buffers. The kernel maps
   the 1 MiB stack eagerly, so every process dirties ~1 MiB of physical
   memory and the doubling buffer lands at 2 MiB: a fleet sweep that
   creates thousands of short-lived processes otherwise pushes ~3 MiB
   of zeroed large objects per process through the major heap. Callers
   that know a process is dead hand its buffer back with [release];
   [create] then re-zeroes just the dirtied prefix ([0, high_water) —
   everything ever written sits below [high_water] by the [ensure]
   invariant, the same property [Snapshot.restore_into] relies on) and
   reuses the allocation. Domain-local, so no locking; a buffer never
   moves between domains. *)
let pool : (Bytes.t * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let pool_max = 8

let create ?(initial = 1 lsl 20) () =
  let pool = Domain.DLS.get pool in
  match !pool with
  | (data, dirty) :: rest when Bytes.length data >= initial ->
    pool := rest;
    Bytes.fill data 0 dirty '\000';
    { data; high_water = 0 }
  | _ -> { data = Bytes.make initial '\000'; high_water = 0 }

let release t =
  let pool = Domain.DLS.get pool in
  if List.length !pool < pool_max then begin
    pool := (t.data, t.high_water) :: !pool;
    (* Detach the buffer from the released value: a stale use of [t]
       must not scribble on a buffer the next process now owns. *)
    t.data <- Bytes.empty;
    t.high_water <- 0
  end

let ensure t addr_end =
  if addr_end > Bytes.length t.data then begin
    let len = ref (Bytes.length t.data) in
    while addr_end > !len do
      len := !len * 2
    done;
    let grown = Bytes.make !len '\000' in
    Bytes.blit t.data 0 grown 0 (Bytes.length t.data);
    t.data <- grown
  end;
  if addr_end > t.high_water then t.high_water <- addr_end

(* Multi-byte accesses compile to a single unaligned load/store (plus a
   byte-swap on big-endian hosts) instead of per-byte assembly. The
   compiler primitives are declared here directly — the stdlib's
   [Bytes.get_int32_le] wrappers are ordinary functions, which the dev
   profile's [-opaque] turns into out-of-line generic calls. Bounds are
   checked by the callers below ("u" = unchecked); reads fall back to
   byte-wise zero-fill only when the access straddles the end of
   allocated storage. *)
external unsafe_get_16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_set_16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_set_32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external swap16 : int -> int = "%bswap16"
external swap32 : int32 -> int32 = "%bswap_int32"
external swap64 : int64 -> int64 = "%bswap_int64"

let[@inline] get_16_le b i =
  if Sys.big_endian then swap16 (unsafe_get_16 b i) else unsafe_get_16 b i

let[@inline] set_16_le b i v =
  unsafe_set_16 b i (if Sys.big_endian then swap16 v else v)

let[@inline] get_32_le b i =
  if Sys.big_endian then swap32 (unsafe_get_32 b i) else unsafe_get_32 b i

let[@inline] set_32_le b i v =
  unsafe_set_32 b i (if Sys.big_endian then swap32 v else v)

let[@inline] get_64_le b i =
  if Sys.big_endian then swap64 (unsafe_get_64 b i) else unsafe_get_64 b i

let[@inline] set_64_le b i v =
  unsafe_set_64 b i (if Sys.big_endian then swap64 v else v)

let[@inline] read8 t addr =
  if addr + 1 > Bytes.length t.data then 0
  else Char.code (Bytes.unsafe_get t.data addr)

let[@inline] write8 t addr v =
  ensure t (addr + 1);
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let read16 t addr =
  if addr + 2 <= Bytes.length t.data then get_16_le t.data addr
  else read8 t addr lor (read8 t (addr + 1) lsl 8)

let[@inline] write16 t addr v =
  ensure t (addr + 2);
  set_16_le t.data addr (v land 0xFFFF)

let read32 t addr =
  if addr + 4 <= Bytes.length t.data then
    Int32.to_int (get_32_le t.data addr) land 0xFFFFFFFF
  else
    read8 t addr
    lor (read8 t (addr + 1) lsl 8)
    lor (read8 t (addr + 2) lsl 16)
    lor (read8 t (addr + 3) lsl 24)

let[@inline] write32 t addr v =
  ensure t (addr + 4);
  set_32_le t.data addr (Int32.of_int v)

let read64 t addr =
  if addr + 8 <= Bytes.length t.data then get_64_le t.data addr
  else
    Int64.logor
      (Int64.of_int (read32 t addr))
      (Int64.shift_left (Int64.of_int (read32 t (addr + 4))) 32)

let[@inline] write64 t addr v =
  ensure t (addr + 8);
  set_64_le t.data addr v

let[@inline] read_float t addr = Int64.float_of_bits (read64 t addr)
let[@inline] write_float t addr v = write64 t addr (Int64.bits_of_float v)

(* Highest physical address ever written + 1; a cheap memory-footprint
   statistic for the space-overhead tables. *)
let high_water t = t.high_water
