(** A linked program: instructions with resolved labels plus the
    data-section layout the loader must establish. Code is interpreted
    structurally (only its encoded size is accounted); data ranges are
    mapped and initialised by the simulated OS at load time.

    Linking pre-decodes the control-flow structure: [targets] carries the
    resolved instruction index of every [Jmp]/[Jcc]/[Call] (parallel to
    [code]), [entry_index] the resolved entry label, and [stat_labels]
    marks the ["__stat_"] counter labels — the execution engine reads
    these arrays instead of probing the label hashtable per branch. *)

type datum = {
  label : string;       (** symbolic name, for debugging *)
  addr : int;           (** linear address *)
  size : int;           (** bytes *)
  init : string option; (** initial contents; [None] = zero-filled *)
}

type t = {
  uid : int;
      (** Process-unique identity stamped at {!link} time: two machines
          share a uid exactly when they run the same linked program, so
          derived per-program caches (the block engine's process-wide
          shared superblock cache) can key on it. Identity, not content —
          snapshots never carry it. *)
  code : Insn.t array;
  labels : (string, int) Hashtbl.t;
  entry : string;
  data : datum list;
  data_bytes : int;
  targets : int array;
      (** per-instruction branch target index; {!no_target} elsewhere *)
  entry_index : int;        (** index of the entry label *)
  stat_labels : bool array; (** [true] where [code.(i)] is a stat label *)
  block_starts : int array; (** per block: index of its first instruction *)
  block_lens : int array;   (** per block: instruction count, [>= 1] *)
  block_at : int array;
      (** insn index -> block id where a block starts; {!no_block}
          elsewhere. Parallel to [code]. *)
}

exception Link_error of string

(** Sentinel in {!t.targets} for instructions that are not
    [Jmp]/[Jcc]/[Call]. Negative, so [targets.(i) >= 0] tests validity. *)
val no_target : int

(** Sentinel in {!t.block_at} for instructions that do not start a
    block. Negative, so [block_at.(i) >= 0] tests validity. *)
val no_block : int

(** Must this instruction end a superblock? True for control transfers
    ([Jmp]/[Jcc]/[Call]/[Ret]), [Halt], the segment-state group
    ([Mov_to_seg]/[Lcall_gate]/[Int_syscall]), and [Callext] (host
    routines may charge cycles or invalidate translations). The linker
    partitions code into maximal single-entry straight-line regions:
    blocks start at index 0, the entry, every static branch target, and
    after every terminator. *)
val block_terminator : Insn.t -> bool

(** Does this label name a zero-cost ["__stat_"] dynamic counter? *)
val is_stat_label : string -> bool

(** [link ?entry ?data insns] indexes every [Label], resolves all
    jump/call targets and the entry point to instruction indices, and
    marks stat labels.
    @raise Link_error on duplicate labels or unresolved targets. *)
val link : ?entry:string -> ?data:datum list -> Insn.t list -> t

(** @raise Link_error if undefined. *)
val resolve : t -> string -> int

val code_size : t -> int
val insn_count : t -> int
val pp : Format.formatter -> t -> unit
