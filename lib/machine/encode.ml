(* Instruction byte-size estimation for binary-size accounting (Tables 2
   and 6).

   We do not emit machine code — the CPU interprets the structured form —
   but the size tables need realistic x86 encodings: opcode bytes, ModRM,
   SIB when an index register or ESP base is involved, disp8 vs disp32,
   imm8 vs imm32, and the +1 segment-override prefix that every
   Cash-generated override costs. *)

let disp_size m =
  match m.Insn.base, m.Insn.index with
  | None, None -> 4 (* absolute disp32 *)
  | _ ->
    if m.Insn.disp = 0 then
      (* EBP-based addressing still needs disp8 = 0 *)
      (match m.Insn.base with Some Registers.EBP -> 1 | _ -> 0)
    else if m.Insn.disp >= -128 && m.Insn.disp <= 127 then 1
    else 4

let sib_size m =
  match m.Insn.index, m.Insn.base with
  | Some _, _ -> 1
  | None, Some Registers.ESP -> 1
  | None, _ -> 0

let override_size m =
  match m.Insn.seg with
  | None -> 0
  | Some _ -> 1

(* ModRM + SIB + displacement + prefix for a memory operand. *)
let mem_size m = 1 + sib_size m + disp_size m + override_size m

let imm_size v = if v >= -128 && v <= 127 then 1 else 4

let operand_pair_size dst src =
  match dst, src with
  | Insn.Reg _, Insn.Reg _ -> 1 + 1                  (* opcode + modrm *)
  | Insn.Reg _, Insn.Imm v | Insn.Imm v, Insn.Reg _ -> 1 + 1 + imm_size v
  | Insn.Reg _, Insn.Mem m | Insn.Mem m, Insn.Reg _ -> 1 + mem_size m
  | Insn.Mem m, Insn.Imm v | Insn.Imm v, Insn.Mem m ->
    1 + mem_size m + imm_size v
  | Insn.Imm _, Insn.Imm _ -> 1 + 1 + 4 (* does not occur *)
  | Insn.Mem m1, Insn.Mem m2 -> 1 + mem_size m1 + mem_size m2 (* pseudo *)

let fsrc_size = function
  | Insn.Freg _ -> 1
  | Insn.Fmem m -> mem_size m

(* Estimated encoded size of one instruction, in bytes. *)
let size (i : Insn.t) =
  match i with
  | Insn.Mov (Insn.Word, dst, src) -> 1 + operand_pair_size dst src (* 0x66 *)
  | Insn.Mov (_, dst, src) -> operand_pair_size dst src
  | Insn.Lea (_, m) -> 1 + mem_size m
  | Insn.Movsx (_, src, _) | Insn.Movzx (_, src, _) ->
    2 + (match src with
         | Insn.Mem m -> mem_size m
         | Insn.Reg _ | Insn.Imm _ -> 1)
  | Insn.Alu (Insn.Imul, dst, src) -> 1 + operand_pair_size dst src
  | Insn.Alu (_, dst, src) -> operand_pair_size dst src
  | Insn.Idiv src ->
    (match src with
     | Insn.Mem m -> 1 + mem_size m
     | Insn.Reg _ | Insn.Imm _ -> 2)
  | Insn.Neg o | Insn.Inc o | Insn.Dec o ->
    (match o with
     | Insn.Mem m -> 1 + mem_size m
     | Insn.Reg _ | Insn.Imm _ -> 2)
  | Insn.Cmp (a, b) | Insn.Test (a, b) -> operand_pair_size a b
  | Insn.Setcc _ -> 3
  | Insn.Fmov (dst, src) -> 3 + fsrc_size dst + fsrc_size src - 1
  | Insn.Fload_const _ -> 8 (* opcode + modrm + disp32, plus pool share *)
  | Insn.Falu (_, _, src) -> 3 + fsrc_size src
  | Insn.Fcmp (_, src) -> 3 + fsrc_size src
  | Insn.Fneg _ -> 4 (* xorpd with a sign mask *)
  | Insn.Fsqrt (_, src) -> 3 + fsrc_size src
  | Insn.Cvtsi2sd (_, src) ->
    3 + (match src with Insn.Mem m -> mem_size m | _ -> 1)
  | Insn.Cvtsd2si (_, src) -> 3 + fsrc_size src
  | Insn.Jmp _ -> 5
  | Insn.Jcc _ -> 6
  | Insn.Call _ -> 5
  | Insn.Ret -> 1
  | Insn.Push (Insn.Reg _) -> 1
  | Insn.Push (Insn.Imm v) -> 1 + imm_size v
  | Insn.Push (Insn.Mem m) -> 1 + mem_size m
  | Insn.Pop (Insn.Reg _) -> 1
  | Insn.Pop (Insn.Imm _) -> 1 (* does not occur *)
  | Insn.Pop (Insn.Mem m) -> 1 + mem_size m
  | Insn.Mov_to_seg (_, o) | Insn.Mov_from_seg (o, _) ->
    (match o with
     | Insn.Mem m -> 1 + mem_size m
     | Insn.Reg _ | Insn.Imm _ -> 2)
  | Insn.Lcall_gate _ -> 7 (* lcall ptr16:32 *)
  | Insn.Int_syscall _ -> 2
  | Insn.Bound (_, m) -> 1 + mem_size m
  (* MPX encodings: 0F 1A / 0F 1B with an F3/F2/66 prefix, then ModRM. *)
  | Insn.Bndmk (_, m) | Insn.Bndldx (_, m) | Insn.Bndstx (_, m) ->
    3 + mem_size m
  | Insn.Bndcl (_, o) | Insn.Bndcu (_, o, _) ->
    3 + (match o with Insn.Mem m -> mem_size m | _ -> 1)
  (* Capability ops: modelled on the MPX two-byte-opcode shape. *)
  | Insn.Capmk (_, lo, hi) -> 1 + operand_pair_size lo hi
  | Insn.Capchk (_, m, _, _) -> 3 + mem_size m
  | Insn.Capclr _ -> 3
  | Insn.Label _ -> 0
  | Insn.Callext _ -> 5
  | Insn.Halt -> 1
  | Insn.Nop -> 1

(* Total encoded size of an instruction sequence. *)
let code_size insns = Array.fold_left (fun acc i -> acc + size i) 0 insns
