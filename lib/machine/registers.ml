(* General-purpose and floating-point register files.

   Integer registers hold 32-bit unsigned values (0 .. 2^32-1) stored in
   OCaml ints; arithmetic masks back to 32 bits so wrap-around behaves like
   hardware — which matters, because Cash's lower-bound check relies on
   negative offsets wrapping to huge unsigned values that fail the segment
   limit check.

   Floating-point registers model SSE2 scalar-double registers (XMM0-7)
   rather than the x87 stack; the workloads only need scalar double
   arithmetic and this keeps code generation straightforward. *)

type reg = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

type freg = XMM0 | XMM1 | XMM2 | XMM3 | XMM4 | XMM5 | XMM6 | XMM7

let[@inline] reg_index = function
  | EAX -> 0 | EBX -> 1 | ECX -> 2 | EDX -> 3
  | ESI -> 4 | EDI -> 5 | EBP -> 6 | ESP -> 7

let[@inline] freg_index = function
  | XMM0 -> 0 | XMM1 -> 1 | XMM2 -> 2 | XMM3 -> 3
  | XMM4 -> 4 | XMM5 -> 5 | XMM6 -> 6 | XMM7 -> 7

let freg_of_int = function
  | 0 -> XMM0 | 1 -> XMM1 | 2 -> XMM2 | 3 -> XMM3
  | 4 -> XMM4 | 5 -> XMM5 | 6 -> XMM6 | 7 -> XMM7
  | n -> invalid_arg (Printf.sprintf "freg_of_int: %d" n)

let reg_name = function
  | EAX -> "eax" | EBX -> "ebx" | ECX -> "ecx" | EDX -> "edx"
  | ESI -> "esi" | EDI -> "edi" | EBP -> "ebp" | ESP -> "esp"

let freg_name r = Printf.sprintf "xmm%d" (freg_index r)

type t = {
  gp : int array;     (* 8 general-purpose registers *)
  fp : float array;   (* 8 scalar-double registers *)
}

let[@inline] mask32 v = v land 0xFFFFFFFF

(* Interpret a 32-bit unsigned value as signed two's complement. *)
let[@inline] to_signed v =
  let v = mask32 v in
  if v >= 0x80000000 then v - 0x100000000 else v

let[@inline] of_signed v = mask32 v

let create () = { gp = Array.make 8 0; fp = Array.make 8 0.0 }

let[@inline] get t r = t.gp.(reg_index r)
let[@inline] set t r v = t.gp.(reg_index r) <- mask32 v

let[@inline] getf t r = t.fp.(freg_index r)
let[@inline] setf t r v = t.fp.(freg_index r) <- v

let reset t =
  Array.fill t.gp 0 8 0;
  Array.fill t.fp 0 8 0.0
