(* The CPU: a fetch/decode/execute interpreter over a linked [Program],
   with cycle accounting from [Cost_model] and every data access translated
   through the segmentation/paging [Mmu].

   Design notes:
   - Return addresses are instruction indices pushed on the simulated stack.
     CALL/RET access the stack through the flat DS segment rather than SS:
     the OS initialises SS = DS (flat), so this is semantically identical,
     and it keeps CALL/RET working in the 4-segment-register configuration
     where the Cash backend temporarily repurposes SS inside loops (§3.7).
   - PUSH/POP use SS, as on hardware; the 4-register Cash configuration
     rewrites them into MOV/SUB with explicit DS overrides at codegen time,
     exactly as the paper describes.
   - Labels whose name starts with "__stat_" are zero-cost dynamic counters:
     executing one bumps a named counter. The harness uses these to measure
     dynamic software-check and spilled-loop-iteration frequencies without
     perturbing cycle counts.

   Two execution engines share this module:

   - [Predecoded] (the default) runs over the link-time lowered form:
     branch targets come from [Program.targets], per-site cycle costs from
     a table built at CPU creation, stat counters from pre-interned refs,
     and [exec] returns the next EIP instead of raising an exception on
     control transfers. Nothing on this path hashes a string, matches an
     option, or allocates.
   - [Reference] is the pre-lowering interpreter kept verbatim: hashtable
     label resolution per branch, a [Cost_model.cost] match per executed
     instruction, string-keyed stat bumps, and an exception per control
     transfer. It exists as the oracle for the equivalence suite — both
     engines must produce bit-identical cycles, instruction counts, and
     machine state on every program. *)

type status =
  | Running
  | Halted
  | Faulted of Seghw.Fault.t

type engine = Predecoded | Reference

type t = {
  regs : Registers.t;
  mmu : Seghw.Mmu.t;
  phys : Phys_mem.t;
  costs : Cost_model.t;
  program : Program.t;
  engine : engine;
  (* Lowered program, fixed at creation (parallel to [program.code]): *)
  code : Insn.t array;         (* = program.code, fetched without bounds
                                  rechecks after the explicit EIP test *)
  targets : int array;         (* = program.targets *)
  cost_tab : int array;        (* Cost_model.precompute of the code *)
  stat_refs : int ref array;   (* pre-interned counter per stat-label site;
                                  a shared sink ref everywhere else *)
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable ovf : bool;
  mutable cycles : int;
  mutable insns_executed : int;
  mutable status : status;
  mutable kernel : t -> gate:[ `Gate of Seghw.Selector.t | `Int of int ] -> unit;
  externals : (string, t -> unit) Hashtbl.t;
  stat_counters : (string, int ref) Hashtbl.t;
  (* Tracing: [sink] mirrors [mmu.trace] (set together by [set_sink]).
     With a sink attached the run loop takes a separate traced variant
     that bumps [prof_hits] (per-site retire counts, the cycle
     profiler's input, allocated lazily on attach); with it detached
     the hot loop is byte-for-byte the untraced one. *)
  mutable sink : Trace.sink option;
  mutable prof_hits : int array;
}

exception Out_of_fuel

(* Host-side throughput accounting: instructions retired by [run] across
   every CPU instance of this OCaml process, on every domain. Purely a
   benchmarking aid — no simulated semantics depend on it. Atomic
   because the parallel harness retires instructions on several domains
   at once; the counter is touched once per [run] call (not per
   instruction), so contention is nil. *)
let retired_total = Atomic.make 0
let total_retired () = Atomic.get retired_total

let create ?(engine = Predecoded) ~mmu ~phys ~costs ~program () =
  let code = program.Program.code in
  let stat_counters = Hashtbl.create 31 in
  (* Pre-intern one counter ref per stat label; every other site shares a
     sink ref, so the Label case of the engine is an unconditional [incr]
     with no prefix scan and no hashtable probe. *)
  let sink = ref 0 in
  let stat_refs = Array.make (Array.length code) sink in
  Array.iteri
    (fun i marked ->
      if marked then begin
        match code.(i) with
        | Insn.Label l ->
          let r = ref 0 in
          Hashtbl.replace stat_counters l r;
          stat_refs.(i) <- r
        | _ -> ()
      end)
    program.Program.stat_labels;
  {
    regs = Registers.create ();
    mmu;
    phys;
    costs;
    program;
    engine;
    code;
    targets = program.Program.targets;
    cost_tab = Cost_model.precompute costs code;
    stat_refs;
    eip = program.Program.entry_index;
    zf = false;
    sf = false;
    cf = false;
    ovf = false;
    cycles = 0;
    insns_executed = 0;
    status = Running;
    kernel = (fun _ ~gate:_ -> Seghw.Fault.gp "no kernel installed");
    externals = Hashtbl.create 31;
    stat_counters;
    sink = None;
    prof_hits = [||];
  }

(* Attach (or detach) the trace sink: the CPU and its MMU share it, so
   one call covers the limit-check/TLB emit sites of the flattened
   translation path as well as the module ones. *)
let set_sink t sink =
  t.sink <- sink;
  Seghw.Mmu.set_trace t.mmu sink;
  match sink with
  | Some _ ->
    if Array.length t.prof_hits <> Array.length t.code then
      t.prof_hits <- Array.make (Array.length t.code) 0
  | None -> ()

let sink t = t.sink

let set_kernel t k = t.kernel <- k
let register_external t name f = Hashtbl.replace t.externals name f
let add_cycles t n = t.cycles <- t.cycles + n
let cycles t = t.cycles
let insns_executed t = t.insns_executed
let status t = t.status
let regs t = t.regs
let mmu t = t.mmu
let phys t = t.phys
let program t = t.program
let engine t = t.engine

let stat t name =
  match Hashtbl.find_opt t.stat_counters name with
  | Some r -> !r
  | None -> 0

(* Counters that fired at least once, sorted by name so harness output is
   deterministic. Pre-interned counters that never executed are omitted,
   matching the on-demand interning of the reference engine. *)
let stats t =
  Hashtbl.fold
    (fun k r acc -> if !r > 0 then (k, !r) :: acc else acc)
    t.stat_counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let bump_stat t name =
  match Hashtbl.find_opt t.stat_counters name with
  | Some r -> incr r
  | None -> Hashtbl.add t.stat_counters name (ref 1)

(* --- the flattened hot path -------------------------------------------- *)

(* Under dune's dev profile every cross-module call compiles to an opaque
   generic application (no .cmx is read), so the per-instruction path
   keeps local copies of the few small register / memory / translation
   steps taken on every simulated access. Each copy mirrors its owning
   module bit for bit: the module stays authoritative, slow and cold
   paths still call it, and the engine-equivalence suite pins the two
   together. *)

external unsafe_get_16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_set_16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_set_32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external swap16 : int -> int = "%bswap16"
external swap32 : int32 -> int32 = "%bswap_int32"
external swap64 : int64 -> int64 = "%bswap_int64"

(* [Registers.reg_index] / [freg_index] / [to_signed], in-unit. *)
let[@inline] reg_index (r : Registers.reg) =
  match r with
  | Registers.EAX -> 0 | Registers.EBX -> 1 | Registers.ECX -> 2
  | Registers.EDX -> 3 | Registers.ESI -> 4 | Registers.EDI -> 5
  | Registers.EBP -> 6 | Registers.ESP -> 7

let[@inline] freg_index (r : Registers.freg) =
  match r with
  | Registers.XMM0 -> 0 | Registers.XMM1 -> 1 | Registers.XMM2 -> 2
  | Registers.XMM3 -> 3 | Registers.XMM4 -> 4 | Registers.XMM5 -> 5
  | Registers.XMM6 -> 6 | Registers.XMM7 -> 7

(* Indices are 0..7 into the 8-element files, so unchecked access is
   safe; [rset] maintains the register file's 32-bit masking invariant. *)
let[@inline] rget t r = Array.unsafe_get t.regs.Registers.gp (reg_index r)

let[@inline] rset t r v =
  Array.unsafe_set t.regs.Registers.gp (reg_index r) (v land 0xFFFFFFFF)

let[@inline] fget t r = Array.unsafe_get t.regs.Registers.fp (freg_index r)
let[@inline] fset t r v = Array.unsafe_set t.regs.Registers.fp (freg_index r) v

let[@inline] to_signed v =
  let v = v land 0xFFFFFFFF in
  if v >= 0x80000000 then v - 0x100000000 else v

let[@inline] width_bytes (w : Insn.width) =
  match w with Insn.Byte -> 1 | Insn.Word -> 2 | Insn.Long -> 4

(* [Phys_mem] accessors, in-unit: one unaligned load/store against the
   current buffer; anything that misses the allocated capacity (growth,
   straddling reads) leaves the unit for the module. [high_water] is
   maintained exactly as [Phys_mem.ensure] would. *)
let[@inline] p_read8 (p : Phys_mem.t) addr =
  let data = p.Phys_mem.data in
  if addr + 1 > Bytes.length data then 0
  else Char.code (Bytes.unsafe_get data addr)

let[@inline] p_write8 (p : Phys_mem.t) addr v =
  let data = p.Phys_mem.data in
  if addr + 1 <= Bytes.length data then begin
    if addr + 1 > p.Phys_mem.high_water then p.Phys_mem.high_water <- addr + 1;
    Bytes.unsafe_set data addr (Char.unsafe_chr (v land 0xFF))
  end
  else Phys_mem.write8 p addr v

let[@inline] p_read16 (p : Phys_mem.t) addr =
  let data = p.Phys_mem.data in
  if addr + 2 <= Bytes.length data then
    if Sys.big_endian then swap16 (unsafe_get_16 data addr)
    else unsafe_get_16 data addr
  else Phys_mem.read16 p addr

let[@inline] p_write16 (p : Phys_mem.t) addr v =
  let data = p.Phys_mem.data in
  if addr + 2 <= Bytes.length data then begin
    if addr + 2 > p.Phys_mem.high_water then p.Phys_mem.high_water <- addr + 2;
    let x = v land 0xFFFF in
    unsafe_set_16 data addr (if Sys.big_endian then swap16 x else x)
  end
  else Phys_mem.write16 p addr v

let[@inline] p_read32 (p : Phys_mem.t) addr =
  let data = p.Phys_mem.data in
  if addr + 4 <= Bytes.length data then
    Int32.to_int
      (if Sys.big_endian then swap32 (unsafe_get_32 data addr)
       else unsafe_get_32 data addr)
    land 0xFFFFFFFF
  else Phys_mem.read32 p addr

let[@inline] p_write32 (p : Phys_mem.t) addr v =
  let data = p.Phys_mem.data in
  if addr + 4 <= Bytes.length data then begin
    if addr + 4 > p.Phys_mem.high_water then p.Phys_mem.high_water <- addr + 4;
    let x = Int32.of_int v in
    unsafe_set_32 data addr (if Sys.big_endian then swap32 x else x)
  end
  else Phys_mem.write32 p addr v

let[@inline] p_read_float (p : Phys_mem.t) addr =
  let data = p.Phys_mem.data in
  if addr + 8 <= Bytes.length data then
    Int64.float_of_bits
      (if Sys.big_endian then swap64 (unsafe_get_64 data addr)
       else unsafe_get_64 data addr)
  else Phys_mem.read_float p addr

let[@inline] p_write_float (p : Phys_mem.t) addr v =
  let data = p.Phys_mem.data in
  if addr + 8 <= Bytes.length data then begin
    if addr + 8 > p.Phys_mem.high_water then p.Phys_mem.high_water <- addr + 8;
    let x = Int64.bits_of_float v in
    unsafe_set_64 data addr (if Sys.big_endian then swap64 x else x)
  end
  else Phys_mem.write_float p addr v

(* [Seghw.Mmu.translate], in-unit: bump the limit-check counter, run the
   segment-limit compare chain over the flattened descriptor mirror,
   probe the direct-mapped TLB. Segment faults and TLB misses leave the
   unit, so diagnostics, counter discipline, and the page walk stay the
   module's. *)
let[@inline] translate t ~seg_name ~offset ~size ~write =
  let mmu = t.mmu in
  mmu.Seghw.Mmu.limit_checks <- mmu.Seghw.Mmu.limit_checks + 1;
  let sr =
    match (seg_name : Seghw.Segreg.name) with
    | Seghw.Segreg.CS -> mmu.Seghw.Mmu.cs
    | Seghw.Segreg.SS -> mmu.Seghw.Mmu.ss
    | Seghw.Segreg.DS -> mmu.Seghw.Mmu.ds
    | Seghw.Segreg.ES -> mmu.Seghw.Mmu.es
    | Seghw.Segreg.FS -> mmu.Seghw.Mmu.fs
    | Seghw.Segreg.GS -> mmu.Seghw.Mmu.gs
  in
  let off = offset land 0xFFFFFFFF in
  if
    sr.Seghw.Segreg.f_valid
    && ((not write) || sr.Seghw.Segreg.f_writable)
    && size > 0
    && off + size - 1 <= sr.Seghw.Segreg.f_limit
  then begin
    (match mmu.Seghw.Mmu.trace with
     | None -> ()
     | Some s ->
       Trace.emit s
         (Trace.Limit_check
            { seg = Seghw.Segreg.name_to_string seg_name;
              base = sr.Seghw.Segreg.f_base; offset = off; size; write;
              ok = true }));
    let linear = (sr.Seghw.Segreg.f_base + off) land 0xFFFFFFFF in
    let tlb = mmu.Seghw.Mmu.tlb in
    let page = linear lsr Seghw.Paging.page_shift in
    let slot = page land tlb.Seghw.Tlb.mask in
    if
      Array.unsafe_get tlb.Seghw.Tlb.tags slot = page
      && ((not write) || Array.unsafe_get tlb.Seghw.Tlb.writable slot)
    then begin
      tlb.Seghw.Tlb.hits <- tlb.Seghw.Tlb.hits + 1;
      (match mmu.Seghw.Mmu.trace with
       | None -> ()
       | Some s -> Trace.emit s Trace.Tlb_hit);
      (Array.unsafe_get tlb.Seghw.Tlb.frames slot lsl Seghw.Paging.page_shift)
      lor (linear land 0xFFF)
    end
    else begin
      tlb.Seghw.Tlb.misses <- tlb.Seghw.Tlb.misses + 1;
      (match mmu.Seghw.Mmu.trace with
       | None -> ()
       | Some s ->
         let old = Array.unsafe_get tlb.Seghw.Tlb.tags slot in
         Trace.emit s
           (Trace.Tlb_miss { page; evicted = old >= 0 && old <> page }));
      let phys = Seghw.Paging.walk mmu.Seghw.Mmu.paging ~linear ~write in
      Seghw.Tlb.insert tlb ~page
        ~frame:(phys lsr Seghw.Paging.page_shift)
        ~writable:write;
      phys
    end
  end
  else begin
    (* Some fast-path condition failed; [Segreg.translate] re-runs the
       same test over the same mirror and raises the architectural
       fault with the module's exact diagnostics. *)
    (match mmu.Seghw.Mmu.trace with
     | None -> ()
     | Some s ->
       Trace.emit s
         (Trace.Limit_check
            { seg = Seghw.Segreg.name_to_string seg_name;
              base = sr.Seghw.Segreg.f_base; offset = off; size; write;
              ok = false }));
    let stack = match seg_name with Seghw.Segreg.SS -> true | _ -> false in
    let linear =
      Seghw.Segreg.translate sr ~name:seg_name ~offset ~size ~write ~stack
    in
    Seghw.Mmu.translate_linear mmu ~linear ~write
  end

(* --- memory access through segmentation ------------------------------- *)

let[@inline] default_seg (m : Insn.mem) =
  match m.Insn.seg with
  | Some s -> s
  | None ->
    (match m.Insn.base with
     | Some Registers.EBP | Some Registers.ESP -> Seghw.Segreg.SS
     | _ -> Seghw.Segreg.DS)

let[@inline] effective_offset t (m : Insn.mem) =
  let base = match m.Insn.base with
    | Some r -> rget t r
    | None -> 0
  in
  let index = match m.Insn.index with
    | Some (r, scale) -> rget t r * scale
    | None -> 0
  in
  (base + index + m.Insn.disp) land 0xFFFFFFFF

let[@inline] load_mem t (m : Insn.mem) ~width =
  let size = width_bytes width in
  let offset = effective_offset t m in
  let phys_addr =
    translate t ~seg_name:(default_seg m) ~offset ~size
      ~write:false
  in
  match width with
  | Insn.Byte -> p_read8 t.phys phys_addr
  | Insn.Word -> p_read16 t.phys phys_addr
  | Insn.Long -> p_read32 t.phys phys_addr

let[@inline] store_mem t (m : Insn.mem) ~width v =
  let size = width_bytes width in
  let offset = effective_offset t m in
  let phys_addr =
    translate t ~seg_name:(default_seg m) ~offset ~size
      ~write:true
  in
  match width with
  | Insn.Byte -> p_write8 t.phys phys_addr v
  | Insn.Word -> p_write16 t.phys phys_addr v
  | Insn.Long -> p_write32 t.phys phys_addr v

let[@inline] load_f64 t (m : Insn.mem) =
  let offset = effective_offset t m in
  let phys_addr =
    translate t ~seg_name:(default_seg m) ~offset ~size:8
      ~write:false
  in
  p_read_float t.phys phys_addr

let[@inline] store_f64 t (m : Insn.mem) v =
  let offset = effective_offset t m in
  let phys_addr =
    translate t ~seg_name:(default_seg m) ~offset ~size:8
      ~write:true
  in
  p_write_float t.phys phys_addr v

let[@inline] read_operand t (o : Insn.operand) ~width =
  match o with
  | Insn.Reg r ->
    let v = rget t r in
    (match width with
     | Insn.Long -> v
     | Insn.Word -> v land 0xFFFF
     | Insn.Byte -> v land 0xFF)
  | Insn.Imm i -> i land 0xFFFFFFFF
  | Insn.Mem m -> load_mem t m ~width

let[@inline] write_operand t (o : Insn.operand) ~width v =
  match o with
  | Insn.Reg r ->
    (match width with
     | Insn.Long -> rset t r v
     | Insn.Word ->
       let old = rget t r in
       rset t r ((old land 0xFFFF0000) lor (v land 0xFFFF))
     | Insn.Byte ->
       let old = rget t r in
       rset t r ((old land 0xFFFFFF00) lor (v land 0xFF)))
  | Insn.Mem m -> store_mem t m ~width v
  | Insn.Imm _ -> Seghw.Fault.ud "write to immediate operand"

let[@inline] read_fsrc t = function
  | Insn.Freg r -> fget t r
  | Insn.Fmem m -> load_f64 t m

(* --- flags ------------------------------------------------------------ *)

let[@inline] sign32 v = v land 0x80000000 <> 0

let[@inline] set_flags_result t r =
  let r = r land 0xFFFFFFFF in
  t.zf <- r = 0;
  t.sf <- sign32 r

let[@inline] set_flags_sub t a b =
  let a = a land 0xFFFFFFFF and b = b land 0xFFFFFFFF in
  let r = (a - b) land 0xFFFFFFFF in
  t.cf <- a < b;
  t.zf <- r = 0;
  t.sf <- sign32 r;
  t.ovf <- sign32 a <> sign32 b && sign32 r <> sign32 a

let[@inline] set_flags_add t a b =
  let a = a land 0xFFFFFFFF and b = b land 0xFFFFFFFF in
  let r = a + b in
  t.cf <- r > 0xFFFFFFFF;
  let r = r land 0xFFFFFFFF in
  t.zf <- r = 0;
  t.sf <- sign32 r;
  t.ovf <- sign32 a = sign32 b && sign32 r <> sign32 a

let[@inline] set_flags_logic t r =
  t.cf <- false;
  t.ovf <- false;
  set_flags_result t r

let[@inline] cond_holds t (c : Insn.cond) =
  match c with
  | Insn.Eq -> t.zf
  | Insn.Ne -> not t.zf
  | Insn.Lt -> t.sf <> t.ovf
  | Insn.Le -> t.zf || t.sf <> t.ovf
  | Insn.Gt -> (not t.zf) && t.sf = t.ovf
  | Insn.Ge -> t.sf = t.ovf
  | Insn.Below -> t.cf
  | Insn.Below_eq -> t.cf || t.zf
  | Insn.Above -> (not t.cf) && not t.zf
  | Insn.Above_eq -> not t.cf

(* --- stack helpers ----------------------------------------------------- *)

let[@inline] push32 t v ~seg =
  let esp = (rget t Registers.ESP - 4) land 0xFFFFFFFF in
  rset t Registers.ESP esp;
  let phys_addr =
    translate t ~seg_name:seg ~offset:esp ~size:4 ~write:true
  in
  p_write32 t.phys phys_addr v

let[@inline] pop32 t ~seg =
  let esp = rget t Registers.ESP in
  let phys_addr =
    translate t ~seg_name:seg ~offset:esp ~size:4 ~write:false
  in
  let v = p_read32 t.phys phys_addr in
  rset t Registers.ESP ((esp + 4) land 0xFFFFFFFF);
  v

(* Read the [n]th 32-bit argument of a Callext host routine (0-based;
   arguments were pushed cdecl so arg 0 sits at [ESP]). *)
let arg_int t n =
  let esp = rget t Registers.ESP in
  let phys_addr =
    translate t ~seg_name:Seghw.Segreg.DS
      ~offset:((esp + (4 * n)) land 0xFFFFFFFF)
      ~size:4 ~write:false
  in
  p_read32 t.phys phys_addr

let arg_float t n =
  let esp = rget t Registers.ESP in
  let phys_addr =
    translate t ~seg_name:Seghw.Segreg.DS
      ~offset:((esp + (4 * n)) land 0xFFFFFFFF)
      ~size:8 ~write:false
  in
  p_read_float t.phys phys_addr

let return_int t v = rset t Registers.EAX v
let return_float t v = fset t Registers.XMM0 v

(* --- the pre-decoded execution engine ---------------------------------- *)

(* Execute one instruction and return the next EIP. Control transfers read
   their pre-resolved target from [t.targets] at the current EIP; every
   other instruction falls through. The caller commits EIP and charges
   the pre-tabulated cycle cost — so a faulting instruction (OCaml
   exception) leaves EIP, the instruction count, and the cycle count
   untouched, exactly like the reference engine. *)
let exec t (i : Insn.t) =
  let eip = t.eip in
  let next = eip + 1 in
  match i with
  | Insn.Label _ ->
    incr (Array.unsafe_get t.stat_refs eip);
    next
  | Insn.Nop -> next
  | Insn.Halt -> t.status <- Halted; next
  | Insn.Mov (w, dst, src) ->
    write_operand t dst ~width:w (read_operand t src ~width:w);
    next
  | Insn.Lea (r, m) -> rset t r (effective_offset t m); next
  | Insn.Movsx (r, src, w) ->
    let v = read_operand t src ~width:w in
    let v =
      match w with
      | Insn.Byte -> if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
      | Insn.Word -> if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v
      | Insn.Long -> v
    in
    rset t r v;
    next
  | Insn.Movzx (r, src, w) ->
    rset t r (read_operand t src ~width:w);
    next
  | Insn.Alu (op, dst, src) ->
    let a = read_operand t dst ~width:Insn.Long in
    let b = read_operand t src ~width:Insn.Long in
    let r =
      match op with
      | Insn.Add -> set_flags_add t a b; a + b
      | Insn.Sub -> set_flags_sub t a b; a - b
      | Insn.And -> let r = a land b in set_flags_logic t r; r
      | Insn.Or -> let r = a lor b in set_flags_logic t r; r
      | Insn.Xor -> let r = a lxor b in set_flags_logic t r; r
      | Insn.Imul ->
        let r = to_signed a * to_signed b in
        set_flags_logic t r; r
      | Insn.Shl -> let r = a lsl (b land 31) in set_flags_logic t r; r
      | Insn.Shr -> let r = a lsr (b land 31) in set_flags_logic t r; r
      | Insn.Sar ->
        let r = to_signed a asr (b land 31) in
        set_flags_logic t r; r
    in
    write_operand t dst ~width:Insn.Long r;
    next
  | Insn.Idiv src ->
    let a = to_signed (rget t Registers.EAX) in
    let b = to_signed (read_operand t src ~width:Insn.Long) in
    if b = 0 then Seghw.Fault.ud "integer division by zero";
    let q = a / b and r = a mod b in
    rset t Registers.EAX q;
    rset t Registers.EDX r;
    next
  | Insn.Neg o ->
    let v = read_operand t o ~width:Insn.Long in
    set_flags_sub t 0 v;
    write_operand t o ~width:Insn.Long (-v);
    next
  | Insn.Inc o ->
    let v = read_operand t o ~width:Insn.Long in
    let r = v + 1 in
    set_flags_result t r;
    t.ovf <- v land 0xFFFFFFFF = 0x7FFFFFFF;
    write_operand t o ~width:Insn.Long r;
    next
  | Insn.Dec o ->
    let v = read_operand t o ~width:Insn.Long in
    let r = v - 1 in
    set_flags_result t r;
    t.ovf <- v land 0xFFFFFFFF = 0x80000000;
    write_operand t o ~width:Insn.Long r;
    next
  | Insn.Cmp (a, b) ->
    set_flags_sub t
      (read_operand t a ~width:Insn.Long)
      (read_operand t b ~width:Insn.Long);
    next
  | Insn.Test (a, b) ->
    set_flags_logic t
      (read_operand t a ~width:Insn.Long
       land read_operand t b ~width:Insn.Long);
    next
  | Insn.Setcc (c, r) ->
    rset t r (if cond_holds t c then 1 else 0);
    next
  | Insn.Fmov (dst, src) ->
    let v = read_fsrc t src in
    (match dst with
     | Insn.Freg r -> fset t r v
     | Insn.Fmem m -> store_f64 t m v);
    next
  | Insn.Fload_const (r, f) -> fset t r f; next
  | Insn.Falu (op, dst, src) ->
    let a = fget t dst in
    let b = read_fsrc t src in
    let r =
      match op with
      | Insn.Fadd -> a +. b
      | Insn.Fsub -> a -. b
      | Insn.Fmul -> a *. b
      | Insn.Fdiv -> a /. b
    in
    fset t dst r;
    next
  | Insn.Fcmp (a, src) ->
    (* comisd: ZF/CF as for an unsigned compare; OF/SF cleared *)
    let x = fget t a in
    let y = read_fsrc t src in
    t.ovf <- false;
    t.sf <- false;
    t.zf <- x = y;
    t.cf <- x < y;
    next
  | Insn.Fneg r ->
    fset t r (-.fget t r);
    next
  | Insn.Fsqrt (d, src) ->
    fset t d (sqrt (read_fsrc t src));
    next
  | Insn.Cvtsi2sd (d, src) ->
    fset t d
      (float_of_int (to_signed (read_operand t src ~width:Insn.Long)));
    next
  | Insn.Cvtsd2si (d, src) ->
    let f = read_fsrc t src in
    rset t d (truncate f);
    next
  | Insn.Jmp _ -> Array.unsafe_get t.targets eip
  | Insn.Jcc (c, _) ->
    if cond_holds t c then Array.unsafe_get t.targets eip else next
  | Insn.Call _ ->
    push32 t next ~seg:Seghw.Segreg.DS;
    Array.unsafe_get t.targets eip
  | Insn.Ret -> pop32 t ~seg:Seghw.Segreg.DS
  | Insn.Push o ->
    push32 t (read_operand t o ~width:Insn.Long) ~seg:Seghw.Segreg.SS;
    next
  | Insn.Pop o ->
    write_operand t o ~width:Insn.Long (pop32 t ~seg:Seghw.Segreg.SS);
    next
  | Insn.Mov_to_seg (name, o) ->
    let sel = Seghw.Selector.of_int (read_operand t o ~width:Insn.Word) in
    Seghw.Mmu.load_segreg t.mmu name sel;
    next
  | Insn.Mov_from_seg (o, name) ->
    write_operand t o ~width:Insn.Word
      (Seghw.Selector.to_int (Seghw.Mmu.read_segreg t.mmu name));
    next
  | Insn.Lcall_gate sel -> t.kernel t ~gate:(`Gate sel); next
  | Insn.Int_syscall n -> t.kernel t ~gate:(`Int n); next
  | Insn.Bound (r, m) ->
    (* bound r32, m32&32: lower word at [m], upper at [m+4]; the checked
       value must satisfy lower <= r <= upper, else #BR. *)
    let v = to_signed (rget t r) in
    let lower = to_signed (load_mem t m ~width:Insn.Long) in
    let upper =
      to_signed
        (load_mem t { m with Insn.disp = m.Insn.disp + 4 } ~width:Insn.Long)
    in
    if v < lower || v > upper then
      Seghw.Fault.br
        (Printf.sprintf "bound: %d not in [%d, %d]" v lower upper);
    next
  | Insn.Callext name ->
    (match Hashtbl.find_opt t.externals name with
     | Some f -> f t
     | None ->
       Seghw.Fault.ud (Printf.sprintf "undefined external %S" name));
    next

(* One pre-decoded step: fetch, execute, commit EIP, charge the
   tabulated cost. *)
let step_predecoded t =
  let eip = t.eip in
  if eip < 0 || eip >= Array.length t.code then
    Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" eip);
  let next = exec t (Array.unsafe_get t.code eip) in
  t.eip <- next;
  t.insns_executed <- t.insns_executed + 1;
  t.cycles <- t.cycles + Array.unsafe_get t.cost_tab eip;
  match t.sink with
  | None -> ()
  | Some _ ->
    Array.unsafe_set t.prof_hits eip (Array.unsafe_get t.prof_hits eip + 1)

(* --- the reference engine (the equivalence oracle) --------------------- *)

(* The pre-lowering interpreter, preserved verbatim: label hashtable
   lookups on the branch path, a cost-model match per executed
   instruction, string-keyed stat bumps, and an [Exit] exception per
   control transfer. Semantically authoritative; the pre-decoded engine
   must match it bit for bit. *)
let exec_reference t (i : Insn.t) =
  let next = t.eip + 1 in
  (match i with
   | Insn.Label l -> if Program.is_stat_label l then bump_stat t l
   | Insn.Nop -> ()
   | Insn.Halt -> t.status <- Halted
   | Insn.Mov (w, dst, src) ->
     write_operand t dst ~width:w (read_operand t src ~width:w)
   | Insn.Lea (r, m) -> rset t r (effective_offset t m)
   | Insn.Movsx (r, src, w) ->
     let v = read_operand t src ~width:w in
     let v =
       match w with
       | Insn.Byte -> if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
       | Insn.Word -> if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v
       | Insn.Long -> v
     in
     rset t r v
   | Insn.Movzx (r, src, w) ->
     rset t r (read_operand t src ~width:w)
   | Insn.Alu (op, dst, src) ->
     let a = read_operand t dst ~width:Insn.Long in
     let b = read_operand t src ~width:Insn.Long in
     let r =
       match op with
       | Insn.Add -> set_flags_add t a b; a + b
       | Insn.Sub -> set_flags_sub t a b; a - b
       | Insn.And -> let r = a land b in set_flags_logic t r; r
       | Insn.Or -> let r = a lor b in set_flags_logic t r; r
       | Insn.Xor -> let r = a lxor b in set_flags_logic t r; r
       | Insn.Imul ->
         let r = to_signed a * to_signed b in
         set_flags_logic t r; r
       | Insn.Shl -> let r = a lsl (b land 31) in set_flags_logic t r; r
       | Insn.Shr -> let r = a lsr (b land 31) in set_flags_logic t r; r
       | Insn.Sar ->
         let r = to_signed a asr (b land 31) in
         set_flags_logic t r; r
     in
     write_operand t dst ~width:Insn.Long r
   | Insn.Idiv src ->
     let a = to_signed (rget t Registers.EAX) in
     let b = to_signed (read_operand t src ~width:Insn.Long) in
     if b = 0 then Seghw.Fault.ud "integer division by zero";
     let q = a / b and r = a mod b in
     rset t Registers.EAX q;
     rset t Registers.EDX r
   | Insn.Neg o ->
     let v = read_operand t o ~width:Insn.Long in
     set_flags_sub t 0 v;
     write_operand t o ~width:Insn.Long (-v)
   | Insn.Inc o ->
     let v = read_operand t o ~width:Insn.Long in
     let r = v + 1 in
     set_flags_result t r;
     t.ovf <- v land 0xFFFFFFFF = 0x7FFFFFFF;
     write_operand t o ~width:Insn.Long r
   | Insn.Dec o ->
     let v = read_operand t o ~width:Insn.Long in
     let r = v - 1 in
     set_flags_result t r;
     t.ovf <- v land 0xFFFFFFFF = 0x80000000;
     write_operand t o ~width:Insn.Long r
   | Insn.Cmp (a, b) ->
     set_flags_sub t
       (read_operand t a ~width:Insn.Long)
       (read_operand t b ~width:Insn.Long)
   | Insn.Test (a, b) ->
     set_flags_logic t
       (read_operand t a ~width:Insn.Long
        land read_operand t b ~width:Insn.Long)
   | Insn.Setcc (c, r) ->
     rset t r (if cond_holds t c then 1 else 0)
   | Insn.Fmov (dst, src) ->
     let v = read_fsrc t src in
     (match dst with
      | Insn.Freg r -> fset t r v
      | Insn.Fmem m -> store_f64 t m v)
   | Insn.Fload_const (r, f) -> fset t r f
   | Insn.Falu (op, dst, src) ->
     let a = fget t dst in
     let b = read_fsrc t src in
     let r =
       match op with
       | Insn.Fadd -> a +. b
       | Insn.Fsub -> a -. b
       | Insn.Fmul -> a *. b
       | Insn.Fdiv -> a /. b
     in
     fset t dst r
   | Insn.Fcmp (a, src) ->
     (* comisd: ZF/CF as for an unsigned compare; OF/SF cleared *)
     let x = fget t a in
     let y = read_fsrc t src in
     t.ovf <- false;
     t.sf <- false;
     t.zf <- x = y;
     t.cf <- x < y
   | Insn.Fneg r -> fset t r (-.fget t r)
   | Insn.Fsqrt (d, src) -> fset t d (sqrt (read_fsrc t src))
   | Insn.Cvtsi2sd (d, src) ->
     fset t d
       (float_of_int (to_signed (read_operand t src ~width:Insn.Long)))
   | Insn.Cvtsd2si (d, src) ->
     let f = read_fsrc t src in
     rset t d (truncate f)
   | Insn.Jmp l ->
     t.eip <- Program.resolve t.program l;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit (* handled by caller: eip already set *)
   | Insn.Jcc (c, l) ->
     if cond_holds t c then begin
       t.eip <- Program.resolve t.program l;
       t.insns_executed <- t.insns_executed + 1;
       t.cycles <- t.cycles + Cost_model.cost t.costs i;
       raise Exit
     end
   | Insn.Call l ->
     push32 t next ~seg:Seghw.Segreg.DS;
     t.eip <- Program.resolve t.program l;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit
   | Insn.Ret ->
     let ra = pop32 t ~seg:Seghw.Segreg.DS in
     t.eip <- ra;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit
   | Insn.Push o ->
     push32 t (read_operand t o ~width:Insn.Long) ~seg:Seghw.Segreg.SS
   | Insn.Pop o ->
     write_operand t o ~width:Insn.Long (pop32 t ~seg:Seghw.Segreg.SS)
   | Insn.Mov_to_seg (name, o) ->
     let sel = Seghw.Selector.of_int (read_operand t o ~width:Insn.Word) in
     Seghw.Mmu.load_segreg t.mmu name sel
   | Insn.Mov_from_seg (o, name) ->
     write_operand t o ~width:Insn.Word
       (Seghw.Selector.to_int (Seghw.Mmu.read_segreg t.mmu name))
   | Insn.Lcall_gate sel -> t.kernel t ~gate:(`Gate sel)
   | Insn.Int_syscall n -> t.kernel t ~gate:(`Int n)
   | Insn.Bound (r, m) ->
     (* bound r32, m32&32: lower word at [m], upper at [m+4]; the checked
        value must satisfy lower <= r <= upper, else #BR. *)
     let v = to_signed (rget t r) in
     let lower = to_signed (load_mem t m ~width:Insn.Long) in
     let upper =
       to_signed
         (load_mem t { m with Insn.disp = m.Insn.disp + 4 } ~width:Insn.Long)
     in
     if v < lower || v > upper then
       Seghw.Fault.br
         (Printf.sprintf "bound: %d not in [%d, %d]" v lower upper)
   | Insn.Callext name ->
     (match Hashtbl.find_opt t.externals name with
      | Some f -> f t
      | None ->
        Seghw.Fault.ud (Printf.sprintf "undefined external %S" name)));
  t.eip <- next;
  t.insns_executed <- t.insns_executed + 1;
  t.cycles <- t.cycles + Cost_model.cost t.costs i

let step_reference t =
  if t.eip < 0 || t.eip >= Array.length t.program.Program.code then
    Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" t.eip);
  let eip = t.eip in
  let i = t.program.Program.code.(eip) in
  (try exec_reference t i with
   | Exit -> () (* control transfer already applied *));
  (* A faulting instruction propagates past this point unretired, so it
     is not attributed — matching the pre-decoded engine. *)
  match t.sink with
  | None -> ()
  | Some _ -> t.prof_hits.(eip) <- t.prof_hits.(eip) + 1

(* --- stepping and the run loop ----------------------------------------- *)

let step t =
  match t.status with
  | Running ->
    (match t.engine with
     | Predecoded -> step_predecoded t
     | Reference -> step_reference t)
  | Halted | Faulted _ -> ()

(* Exactly one Fault event per architectural fault: raised faults
   funnel through [run]'s single handler, which calls this before
   recording the status. *)
let emit_fault_event t (f : Seghw.Fault.t) =
  match t.sink with
  | None -> ()
  | Some s ->
    let cls, address, selector =
      match f with
      | Seghw.Fault.General_protection _ -> (`Gp, None, None)
      | Seghw.Fault.Stack_fault _ -> (`Ss, None, None)
      | Seghw.Fault.Page_fault { linear; _ } -> (`Pf, Some linear, None)
      | Seghw.Fault.Not_present sel -> (`Np, None, Some sel)
      | Seghw.Fault.Invalid_opcode _ -> (`Ud, None, None)
      | Seghw.Fault.Bound_range _ -> (`Br, None, None)
    in
    Trace.emit s
      (Trace.Fault
         { cls; detail = Seghw.Fault.to_string f; address; selector })

(* Run until halt, fault, or fuel exhaustion. Returns the final status.
   The fuel check is [>=]: at most [fuel] instructions execute. *)
let run ?(fuel = 4_000_000_000) t =
  let start_insns = t.insns_executed in
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Atomic.fetch_and_add retired_total (t.insns_executed - start_insns)
          : int))
    (fun () ->
      try
        match t.engine, t.sink with
        | Predecoded, None ->
          (* The hot loop. Hoist the lowered arrays out of the loop and
             test [status] with a match — no polymorphic comparison per
             step. Untraced: the sink is tested once, out here, so the
             per-instruction path is exactly the pre-tracing one. *)
          let code = t.code in
          let cost_tab = t.cost_tab in
          let limit = Array.length code in
          while (match t.status with Running -> true | _ -> false) do
            if t.insns_executed >= fuel then raise Out_of_fuel;
            let eip = t.eip in
            if eip < 0 || eip >= limit then
              Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" eip);
            let next = exec t (Array.unsafe_get code eip) in
            t.eip <- next;
            t.insns_executed <- t.insns_executed + 1;
            t.cycles <- t.cycles + Array.unsafe_get cost_tab eip
          done
        | Predecoded, Some _ ->
          (* The traced variant: identical commits plus one per-site
             retire count, the profiler's raw input. [prof_hits] is
             sized to [code] by [set_sink]. *)
          let code = t.code in
          let cost_tab = t.cost_tab in
          let prof = t.prof_hits in
          let limit = Array.length code in
          while (match t.status with Running -> true | _ -> false) do
            if t.insns_executed >= fuel then raise Out_of_fuel;
            let eip = t.eip in
            if eip < 0 || eip >= limit then
              Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" eip);
            let next = exec t (Array.unsafe_get code eip) in
            t.eip <- next;
            t.insns_executed <- t.insns_executed + 1;
            t.cycles <- t.cycles + Array.unsafe_get cost_tab eip;
            Array.unsafe_set prof eip (Array.unsafe_get prof eip + 1)
          done
        | Reference, _ ->
          while (match t.status with Running -> true | _ -> false) do
            if t.insns_executed >= fuel then raise Out_of_fuel;
            step_reference t
          done
      with Seghw.Fault.Fault f ->
        emit_fault_event t f;
        t.status <- Faulted f);
  t.status

(* --- the cycle profiler ------------------------------------------------- *)

(* Attribute per-site retire counts to function symbols: a symbol is any
   label that is neither a ["__stat_"] counter nor a [".L"]-prefixed
   local (codegen's loop/branch labels), i.e. function entries plus
   "_start". Sites before the first symbol fall into "<prelude>".
   Cycles per site are [hits * cost_tab] — the per-site cost is fixed,
   so this is exact, not sampled. Returns [(symbol, insns, cycles)]
   sorted by cycles descending; empty without a traced run. *)
let profile t =
  if Array.length t.prof_hits = 0 then []
  else begin
    let tbl = Hashtbl.create 31 in
    let order = ref [] in
    let current = ref "<prelude>" in
    Array.iteri
      (fun i insn ->
        (match insn with
         | Insn.Label l
           when String.length l > 0 && l.[0] <> '.'
                && not (Program.is_stat_label l) ->
           current := l
         | _ -> ());
        let hits = t.prof_hits.(i) in
        if hits > 0 then begin
          let cycles = hits * t.cost_tab.(i) in
          match Hashtbl.find_opt tbl !current with
          | Some (hi, cy) ->
            hi := !hi + hits;
            cy := !cy + cycles
          | None ->
            Hashtbl.add tbl !current (ref hits, ref cycles);
            order := !current :: !order
        end)
      t.code;
    List.rev_map
      (fun sym ->
        let hi, cy = Hashtbl.find tbl sym in
        (sym, !hi, !cy))
      !order
    |> List.sort (fun (na, _, ca) (nb, _, cb) ->
           match compare cb ca with 0 -> String.compare na nb | n -> n)
  end

(* Fold a finished traced run's attribution into its sink (called once
   per run by the facade; [prof_hits] is cumulative, so callers that
   re-run a CPU must merge only once). *)
let commit_profile t =
  match t.sink with
  | None -> ()
  | Some s ->
    List.iter
      (fun (sym, insns, cycles) ->
        Trace.add_attribution s sym ~insns ~cycles)
      (profile t)
