(* The CPU: a fetch/decode/execute interpreter over a linked [Program],
   with cycle accounting from [Cost_model] and every data access translated
   through the segmentation/paging [Mmu].

   Design notes:
   - Return addresses are instruction indices pushed on the simulated stack.
     CALL/RET access the stack through the flat DS segment rather than SS:
     the OS initialises SS = DS (flat), so this is semantically identical,
     and it keeps CALL/RET working in the 4-segment-register configuration
     where the Cash backend temporarily repurposes SS inside loops (§3.7).
   - PUSH/POP use SS, as on hardware; the 4-register Cash configuration
     rewrites them into MOV/SUB with explicit DS overrides at codegen time,
     exactly as the paper describes.
   - Labels whose name starts with "__stat_" are zero-cost dynamic counters:
     executing one bumps a named counter. The harness uses these to measure
     dynamic software-check and spilled-loop-iteration frequencies without
     perturbing cycle counts.

   Three execution engines share this module:

   - [Predecoded] (the default) runs over the link-time lowered form:
     branch targets come from [Program.targets], per-site cycle costs from
     a table built at CPU creation, stat counters from pre-interned refs,
     and [exec] returns the next EIP instead of raising an exception on
     control transfers. Nothing on this path hashes a string, matches an
     option, or allocates.
   - [Block] executes the linker's superblock partition: each maximal
     single-entry straight-line region is compiled (once, at first run)
     into an array of operand-resolved closures, dispatched as a unit
     with one EIP/instruction/cycle commit per block instead of per
     instruction. Memory operands still go through the real
     segment-limit + TLB [translate] below, augmented by a per-segment
     (linear page -> phys delta) fast path validated by the TLB's
     generation counter. Fault-precise: a mid-block fault unwinds to the
     exact faulting instruction with registers, counters, and EIP
     identical to the per-instruction engines (the closures share the
     single set of [eff_*] operand-effect helpers, so there is nothing
     to diverge).
   - [Reference] is the pre-lowering interpreter kept verbatim: hashtable
     label resolution per branch, a [Cost_model.cost] match per executed
     instruction, string-keyed stat bumps, and an exception per control
     transfer. It exists as the oracle for the equivalence suite — all
     engines must produce bit-identical cycles, instruction counts, and
     machine state on every program. *)

type status =
  | Running
  | Halted
  | Faulted of Seghw.Fault.t

type engine = Predecoded | Block | Reference

type t = {
  regs : Registers.t;
  mmu : Seghw.Mmu.t;
  phys : Phys_mem.t;
  costs : Cost_model.t;
  program : Program.t;
  engine : engine;
  (* Lowered program, fixed at creation (parallel to [program.code]): *)
  code : Insn.t array;         (* = program.code, fetched without bounds
                                  rechecks after the explicit EIP test *)
  targets : int array;         (* = program.targets *)
  cost_tab : int array;        (* Cost_model.precompute of the code *)
  stat_refs : int ref array;   (* pre-interned counter per stat-label site;
                                  a shared sink ref everywhere else *)
  mutable eip : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable ovf : bool;
  mutable cycles : int;
  mutable insns_executed : int;
  mutable status : status;
  mutable kernel : t -> gate:[ `Gate of Seghw.Selector.t | `Int of int ] -> unit;
  externals : (string, t -> unit) Hashtbl.t;
  stat_counters : (string, int ref) Hashtbl.t;
  (* Tracing: [sink] mirrors [mmu.trace] (set together by [set_sink]).
     With a sink attached the run loop takes a separate traced variant
     that bumps [prof_hits] (per-site retire counts, the cycle
     profiler's input, allocated lazily on attach); with it detached
     the hot loop is byte-for-byte the untraced one. *)
  mutable sink : Trace.sink option;
  mutable prof_hits : int array;
  (* Superblock engine state (all engines carry the fields; only
     [Block] uses them): *)
  block_starts : int array;    (* = program.block_starts *)
  block_lens : int array;      (* = program.block_lens *)
  block_at : int array;        (* = program.block_at *)
  block_cost : int array;      (* per block: summed cost_tab over its range *)
  mutable ublocks : (t -> int) array array;
      (* per block: one operand-resolved closure per instruction,
         compiled lazily by the first [Block] run. The last closure
         returns the block's next EIP (terminators have their dispatch
         pre-resolved; a fall-through last instruction bakes in
         [idx + 1]); body closures return a dummy 0. *)
  mutable ublocks_ready : bool;
  (* Per-segment memory fast path: for segreg slot [k] (CS..GS), if
     [fm_gen.(k)] still equals the TLB's generation counter and
     [fm_page.(k)] is the accessed linear page (and [fm_writable.(k)]
     for writes), then the TLB provably still caches that entry and the
     physical address is [linear + fm_delta.(k)] without probing the
     hash. Enabled only under the [Block] engine. *)
  fm_enabled : bool;
  fm_page : int array;         (* cached linear page, or -1 *)
  fm_delta : int array;        (* phys - linear for that page *)
  fm_writable : bool array;
  fm_gen : int array;          (* Tlb.gen at fill time, or -1 *)
  (* Block chaining (Dynamo-style trace chaining over the superblock
     partition; [Block] engine with [chain_enabled] only). Once a block
     has dispatched often enough, [build_chain] follows its terminator's
     stable successor — statically for Jmp/Call/fall-through endings,
     by observed branch bias for Jcc — and concatenates the successor
     blocks' already-compiled closures into one contiguous array, so
     the whole hot region (a loop in the common case) executes as a
     single dispatch. All of this is a derived cache over [ublocks]:
     dropping it (or never building it) changes nothing observable. *)
  chain_enabled : bool;
  chains : chain option array;  (* per head block id *)
  chain_execs : int array;      (* per block id: unchained dispatches;
                                   -1 marks a head that can never chain *)
  jcc_taken : int array;        (* per Jcc site: taken retires ... *)
  jcc_fall : int array;         (* ... and fall-through retires *)
  chain_jcc_tgt : int array;    (* per block: taken target of a
                                   terminating Jcc, [min_int] otherwise —
                                   lets the dispatch loop sample branch
                                   direction without instrumenting the
                                   compiled closures *)
  chain_jcc_site : int array;   (* per block: that Jcc's code index *)
  (* Traced closure set: per-instruction [exec] wrappers that bump the
     per-site retire counter inline, dispatched per block so traced
     runs stop stepping per instruction. Compiled lazily by the first
     traced [Block] run. *)
  mutable tblocks : (t -> int) array array;
  mutable tblocks_ready : bool;
  (* Sub-instruction cursor of the fused chain op in flight: a fused
     closure stores [m] here before running its [m]th constituent, and
     the chain dispatch loop zeroes it before every op, so the unwind
     handler can place a mid-op fault on the exact constituent
     instruction ([c_base.(op) + fuse_sub]). Transient scratch — never
     observable between instructions, never persisted. *)
  mutable fuse_sub : int;
}

and chain = {
  c_ops : (t -> int) array;    (* the member blocks' chained closures,
                                  contiguous — [fuse_block]'s output, so
                                  one closure may cover several adjacent
                                  instructions *)
  c_off : int array;           (* per member block: op offset into [c_ops] *)
  c_starts : int array;        (* per member block: first insn index *)
  c_nops : int array;          (* per member block: ops in [c_ops] *)
  c_base : int array;          (* per op slot: block-relative index of the
                                  op's first instruction — with
                                  [t.fuse_sub], the exact faulting
                                  instruction of a fused op *)
  c_expected : int array;      (* the next-EIP that continues the chain;
                                  the tail holds the head's start for a
                                  looping chain, -1 otherwise *)
  c_pre_insns : int array;     (* length blocks+1: instructions in member
                                  blocks before index i — a mid-pass exit
                                  commits one prefix-sum read instead of
                                  running accumulators per block *)
  c_pre_cycles : int array;    (* same, in cycles *)
  c_blocks : int;
  c_total_insns : int;         (* one full pass, in instructions *)
  c_total_cycles : int;
  c_loop : bool;               (* tail's hot successor is the head *)
}

exception Out_of_fuel

(* Host-side throughput accounting: instructions retired by [run] across
   every CPU instance of this OCaml process, on every domain. Purely a
   benchmarking aid — no simulated semantics depend on it. Atomic
   because the parallel harness retires instructions on several domains
   at once; the counter is touched once per [run] call (not per
   instruction), so contention is nil. *)
let retired_total = Atomic.make 0
let total_retired () = Atomic.get retired_total

(* Block-compilation accounting for the benchmark report (BENCH schema 4:
   "blocks_built" / "avg_block_len"): bumped once per lazy superblock
   compilation, across all CPUs and domains. No simulated semantics
   depend on these. *)
let blocks_built_total = Atomic.make 0
let block_insns_total = Atomic.make 0
let blocks_built () = Atomic.get blocks_built_total
let block_insns_compiled () = Atomic.get block_insns_total

(* Superblocks *bound* rather than compiled: a [Block] CPU whose
   program's closure set was already in the process-wide shared cache
   ([build_ublocks]) bumps this by its block count instead of the build
   counters. blocks_bound / (blocks_built + blocks_bound) is the shared
   cache's hit rate. *)
let blocks_bound_total = Atomic.make 0
let blocks_bound () = Atomic.get blocks_bound_total

(* Chaining defaults to on for [Block] CPUs; [set_chaining false] (the
   `--no-chain` flag, the differential fleet's chain-off leg, and the
   bench A/B gate) restores PR 4's plain per-block dispatch. Read once
   at [create]; per-CPU thereafter, so toggling cannot race a run. *)
let chain_default = Atomic.make true
let set_chaining b = Atomic.set chain_default b
let chaining_enabled () = Atomic.get chain_default

(* Chain-construction accounting for BENCH schema 5 ("chains_built" /
   "avg_chain_blocks" / "avg_chain_insns"), same discipline as the
   block counters above: host-side only, summed across CPUs/domains. *)
let chains_built_total = Atomic.make 0
let chain_blocks_total = Atomic.make 0
let chain_insns_total = Atomic.make 0
let chains_built () = Atomic.get chains_built_total
let chain_blocks_linked () = Atomic.get chain_blocks_total
let chain_insns_linked () = Atomic.get chain_insns_total

let create ?(engine = Predecoded) ?chain ~mmu ~phys ~costs ~program () =
  let code = program.Program.code in
  let stat_counters = Hashtbl.create 31 in
  (* Pre-intern one counter ref per stat label; every other site shares a
     sink ref, so the Label case of the engine is an unconditional [incr]
     with no prefix scan and no hashtable probe. *)
  let sink = ref 0 in
  let stat_refs = Array.make (Array.length code) sink in
  Array.iteri
    (fun i marked ->
      if marked then begin
        match code.(i) with
        | Insn.Label l ->
          let r = ref 0 in
          Hashtbl.replace stat_counters l r;
          stat_refs.(i) <- r
        | _ -> ()
      end)
    program.Program.stat_labels;
  let cost_tab = Cost_model.precompute costs code in
  (* Per-block cycle sums: Jcc's tabulated cost is branch-direction
     independent (the model charges taken and fall-through alike), so a
     straight sum over the block's range is the exact per-instruction
     total. *)
  let block_starts = program.Program.block_starts in
  let block_lens = program.Program.block_lens in
  let block_cost =
    Array.init (Array.length block_starts) (fun b ->
        let s = block_starts.(b) in
        let acc = ref 0 in
        for i = s to s + block_lens.(b) - 1 do
          acc := !acc + cost_tab.(i)
        done;
        !acc)
  in
  let chain_enabled =
    (match engine with Block -> true | _ -> false)
    && (match chain with Some b -> b | None -> Atomic.get chain_default)
  in
  let nblocks = Array.length block_starts in
  (* Static per-block Jcc metadata, so the dispatch loop can sample
     branch direction from the terminator's returned EIP — keeping the
     compiled closures themselves identical with and without chaining. *)
  let chain_jcc_tgt, chain_jcc_site =
    if not chain_enabled then ([||], [||])
    else begin
      let tgt = Array.make nblocks min_int in
      let site = Array.make nblocks (-1) in
      for b = 0 to nblocks - 1 do
        let last = block_starts.(b) + block_lens.(b) - 1 in
        match code.(last) with
        | Insn.Jcc _ ->
          tgt.(b) <- program.Program.targets.(last);
          site.(b) <- last
        | _ -> ()
      done;
      (tgt, site)
    end
  in
  {
    regs = Registers.create ();
    mmu;
    phys;
    costs;
    program;
    engine;
    code;
    targets = program.Program.targets;
    cost_tab;
    stat_refs;
    eip = program.Program.entry_index;
    zf = false;
    sf = false;
    cf = false;
    ovf = false;
    cycles = 0;
    insns_executed = 0;
    status = Running;
    kernel = (fun _ ~gate:_ -> Seghw.Fault.gp "no kernel installed");
    externals = Hashtbl.create 31;
    stat_counters;
    sink = None;
    prof_hits = [||];
    block_starts;
    block_lens;
    block_at = program.Program.block_at;
    block_cost;
    ublocks = [||];
    ublocks_ready = false;
    (* Block engine only, by measurement: lifting this to Predecoded was
       a wash (within ±3% noise on bench --quick --ab — see
       EXPERIMENTS.md). The stepping engines re-resolve the segreg
       mirror and fast-path slot on every access, so the extra probe
       costs about what the skipped TLB hash probe saves; only the block
       closures, which resolve both once per compiled block, profit. *)
    fm_enabled = (match engine with Block -> true | _ -> false);
    fm_page = Array.make 6 (-1);
    fm_delta = Array.make 6 0;
    fm_writable = Array.make 6 false;
    fm_gen = Array.make 6 (-1);
    chain_enabled;
    chains = (if chain_enabled then Array.make nblocks None else [||]);
    chain_execs = (if chain_enabled then Array.make nblocks 0 else [||]);
    jcc_taken =
      (if chain_enabled then Array.make (Array.length code) 0 else [||]);
    jcc_fall =
      (if chain_enabled then Array.make (Array.length code) 0 else [||]);
    chain_jcc_tgt;
    chain_jcc_site;
    tblocks = [||];
    tblocks_ready = false;
    fuse_sub = 0;
  }

(* Attach (or detach) the trace sink: the CPU and its MMU share it, so
   one call covers the limit-check/TLB emit sites of the flattened
   translation path as well as the module ones. *)
let set_sink t sink =
  t.sink <- sink;
  Seghw.Mmu.set_trace t.mmu sink;
  match sink with
  | Some _ ->
    if Array.length t.prof_hits <> Array.length t.code then
      t.prof_hits <- Array.make (Array.length t.code) 0
  | None -> ()

let sink t = t.sink

let set_kernel t k = t.kernel <- k
let register_external t name f = Hashtbl.replace t.externals name f
let add_cycles t n = t.cycles <- t.cycles + n
let cycles t = t.cycles
let insns_executed t = t.insns_executed
let status t = t.status
let regs t = t.regs
let mmu t = t.mmu
let phys t = t.phys
let program t = t.program
let engine t = t.engine
let chaining t = t.chain_enabled

(* Chains installed on this CPU (derived cache introspection: snapshot
   tests assert a restored CPU starts at zero and re-derives). *)
let chain_count t =
  Array.fold_left
    (fun acc c -> match c with Some _ -> acc + 1 | None -> acc)
    0 t.chains

(* Per-site Jcc direction counts with at least one observation:
   [(site, taken, fall_through)], ascending by site. *)
let branch_bias t =
  let acc = ref [] in
  for i = Array.length t.jcc_taken - 1 downto 0 do
    let tk = Array.unsafe_get t.jcc_taken i
    and fl = Array.unsafe_get t.jcc_fall i in
    if tk + fl > 0 then acc := (i, tk, fl) :: !acc
  done;
  !acc

let eip t = t.eip

let stat t name =
  match Hashtbl.find_opt t.stat_counters name with
  | Some r -> !r
  | None -> 0

(* Counters that fired at least once, sorted by name so harness output is
   deterministic. Pre-interned counters that never executed are omitted,
   matching the on-demand interning of the reference engine. *)
let stats t =
  Hashtbl.fold
    (fun k r acc -> if !r > 0 then (k, !r) :: acc else acc)
    t.stat_counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let bump_stat t name =
  match Hashtbl.find_opt t.stat_counters name with
  | Some r -> incr r
  | None -> Hashtbl.add t.stat_counters name (ref 1)

(* --- snapshot support --------------------------------------------------- *)

(* The CPU state a snapshot must carry: everything mutable that is not
   rederivable from the (immutable) program. Registers, the MMU, and
   physical memory are serialized by their own modules; the superblock
   closure cache and the per-segment fast-path arrays are derived state
   — closures capture this same record and stay valid across an
   [import_state], and the fast path revalidates against [Tlb.gen]
   (cleared below anyway, since a restored generation counter could
   coincide with a stale fill). *)
type persisted = {
  p_eip : int;
  p_zf : bool;
  p_sf : bool;
  p_cf : bool;
  p_ovf : bool;
  p_cycles : int;
  p_insns_executed : int;
  p_status : status;
  p_stats : (string * int) list;
      (* every counter that fired, sorted by name *)
  p_prof_hits : (int * int) list;
      (* (site, retires) for nonzero sites, ascending — empty unless the
         run was traced *)
}

let export_state t =
  let prof =
    if Array.length t.prof_hits = 0 then []
    else begin
      let acc = ref [] in
      for i = Array.length t.prof_hits - 1 downto 0 do
        if t.prof_hits.(i) > 0 then acc := (i, t.prof_hits.(i)) :: !acc
      done;
      !acc
    end
  in
  {
    p_eip = t.eip;
    p_zf = t.zf;
    p_sf = t.sf;
    p_cf = t.cf;
    p_ovf = t.ovf;
    p_cycles = t.cycles;
    p_insns_executed = t.insns_executed;
    p_status = t.status;
    p_stats = stats t;
    p_prof_hits = prof;
  }

let import_state t (p : persisted) =
  t.eip <- p.p_eip;
  t.zf <- p.p_zf;
  t.sf <- p.p_sf;
  t.cf <- p.p_cf;
  t.ovf <- p.p_ovf;
  t.cycles <- p.p_cycles;
  t.insns_executed <- p.p_insns_executed;
  t.status <- p.p_status;
  Hashtbl.iter (fun _ r -> r := 0) t.stat_counters;
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt t.stat_counters name with
      | Some r -> r := v
      | None -> Hashtbl.add t.stat_counters name (ref v))
    p.p_stats;
  if Array.length t.prof_hits > 0 then Array.fill t.prof_hits 0 (Array.length t.prof_hits) 0;
  (match p.p_prof_hits with
   | [] -> ()
   | sites ->
     if Array.length t.prof_hits <> Array.length t.code then
       t.prof_hits <- Array.make (Array.length t.code) 0;
     List.iter (fun (i, h) -> t.prof_hits.(i) <- h) sites);
  Array.fill t.fm_page 0 6 (-1);
  Array.fill t.fm_gen 0 6 (-1);
  (* Chains and the branch-bias counters that seed them are a derived
     cache over observed behaviour, not architectural state: drop them
     with the fast path so a restored CPU re-derives its layout from
     post-restore execution (and a freshly [create]d CPU trivially
     starts empty). *)
  let ncb = Array.length t.chains in
  if ncb > 0 then begin
    Array.fill t.chains 0 ncb None;
    Array.fill t.chain_execs 0 ncb 0;
    Array.fill t.jcc_taken 0 (Array.length t.jcc_taken) 0;
    Array.fill t.jcc_fall 0 (Array.length t.jcc_fall) 0
  end

(* --- the flattened hot path -------------------------------------------- *)

(* Under dune's dev profile every cross-module call compiles to an opaque
   generic application (no .cmx is read), so the per-instruction path
   keeps local copies of the few small register / memory / translation
   steps taken on every simulated access. Each copy mirrors its owning
   module bit for bit: the module stays authoritative, slow and cold
   paths still call it, and the engine-equivalence suite pins the two
   together. *)

external unsafe_get_16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
external unsafe_set_16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
external unsafe_get_32 : Bytes.t -> int -> int32 = "%caml_bytes_get32u"
external unsafe_set_32 : Bytes.t -> int -> int32 -> unit = "%caml_bytes_set32u"
external unsafe_get_64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
external unsafe_set_64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
external swap16 : int -> int = "%bswap16"
external swap32 : int32 -> int32 = "%bswap_int32"
external swap64 : int64 -> int64 = "%bswap_int64"

(* [Registers.reg_index] / [freg_index] / [to_signed], in-unit. *)
let[@inline] reg_index (r : Registers.reg) =
  match r with
  | Registers.EAX -> 0 | Registers.EBX -> 1 | Registers.ECX -> 2
  | Registers.EDX -> 3 | Registers.ESI -> 4 | Registers.EDI -> 5
  | Registers.EBP -> 6 | Registers.ESP -> 7

let[@inline] freg_index (r : Registers.freg) =
  match r with
  | Registers.XMM0 -> 0 | Registers.XMM1 -> 1 | Registers.XMM2 -> 2
  | Registers.XMM3 -> 3 | Registers.XMM4 -> 4 | Registers.XMM5 -> 5
  | Registers.XMM6 -> 6 | Registers.XMM7 -> 7

(* Indices are 0..7 into the 8-element files, so unchecked access is
   safe; [rset] maintains the register file's 32-bit masking invariant. *)
let[@inline] rget t r = Array.unsafe_get t.regs.Registers.gp (reg_index r)

let[@inline] rset t r v =
  Array.unsafe_set t.regs.Registers.gp (reg_index r) (v land 0xFFFFFFFF)

let[@inline] fget t r = Array.unsafe_get t.regs.Registers.fp (freg_index r)
let[@inline] fset t r v = Array.unsafe_set t.regs.Registers.fp (freg_index r) v

let[@inline] to_signed v =
  let v = v land 0xFFFFFFFF in
  if v >= 0x80000000 then v - 0x100000000 else v

(* Sign-extend an 8-/16-bit value into the low 32 bits — the one
   definition of Movsx's widening, shared by [eff_movsx] and the
   superblock closure compiler's byte-load specialisations. *)
let[@inline] sx8 v = if v land 0x80 <> 0 then v lor 0xFFFFFF00 else v
let[@inline] sx16 v = if v land 0x8000 <> 0 then v lor 0xFFFF0000 else v

let[@inline] width_bytes (w : Insn.width) =
  match w with Insn.Byte -> 1 | Insn.Word -> 2 | Insn.Long -> 4

(* [Phys_mem] accessors, in-unit: one unaligned load/store against the
   current buffer; anything that misses the allocated capacity (growth,
   straddling reads) leaves the unit for the module. [high_water] is
   maintained exactly as [Phys_mem.ensure] would. *)
let[@inline] p_read8 (p : Phys_mem.t) addr =
  let data = p.Phys_mem.data in
  if addr + 1 > Bytes.length data then 0
  else Char.code (Bytes.unsafe_get data addr)

let[@inline] p_write8 (p : Phys_mem.t) addr v =
  let data = p.Phys_mem.data in
  if addr + 1 <= Bytes.length data then begin
    if addr + 1 > p.Phys_mem.high_water then p.Phys_mem.high_water <- addr + 1;
    Bytes.unsafe_set data addr (Char.unsafe_chr (v land 0xFF))
  end
  else Phys_mem.write8 p addr v

let[@inline] p_read16 (p : Phys_mem.t) addr =
  let data = p.Phys_mem.data in
  if addr + 2 <= Bytes.length data then
    if Sys.big_endian then swap16 (unsafe_get_16 data addr)
    else unsafe_get_16 data addr
  else Phys_mem.read16 p addr

let[@inline] p_write16 (p : Phys_mem.t) addr v =
  let data = p.Phys_mem.data in
  if addr + 2 <= Bytes.length data then begin
    if addr + 2 > p.Phys_mem.high_water then p.Phys_mem.high_water <- addr + 2;
    let x = v land 0xFFFF in
    unsafe_set_16 data addr (if Sys.big_endian then swap16 x else x)
  end
  else Phys_mem.write16 p addr v

let[@inline] p_read32 (p : Phys_mem.t) addr =
  let data = p.Phys_mem.data in
  if addr + 4 <= Bytes.length data then
    Int32.to_int
      (if Sys.big_endian then swap32 (unsafe_get_32 data addr)
       else unsafe_get_32 data addr)
    land 0xFFFFFFFF
  else Phys_mem.read32 p addr

let[@inline] p_write32 (p : Phys_mem.t) addr v =
  let data = p.Phys_mem.data in
  if addr + 4 <= Bytes.length data then begin
    if addr + 4 > p.Phys_mem.high_water then p.Phys_mem.high_water <- addr + 4;
    let x = Int32.of_int v in
    unsafe_set_32 data addr (if Sys.big_endian then swap32 x else x)
  end
  else Phys_mem.write32 p addr v

let[@inline] p_read_float (p : Phys_mem.t) addr =
  let data = p.Phys_mem.data in
  if addr + 8 <= Bytes.length data then
    Int64.float_of_bits
      (if Sys.big_endian then swap64 (unsafe_get_64 data addr)
       else unsafe_get_64 data addr)
  else Phys_mem.read_float p addr

let[@inline] p_write_float (p : Phys_mem.t) addr v =
  let data = p.Phys_mem.data in
  if addr + 8 <= Bytes.length data then begin
    if addr + 8 > p.Phys_mem.high_water then p.Phys_mem.high_water <- addr + 8;
    let x = Int64.bits_of_float v in
    unsafe_set_64 data addr (if Sys.big_endian then swap64 x else x)
  end
  else Phys_mem.write_float p addr v

(* Segreg slot index for the per-segment fast-path arrays. *)
let[@inline] seg_slot (s : Seghw.Segreg.name) =
  match s with
  | Seghw.Segreg.CS -> 0 | Seghw.Segreg.SS -> 1 | Seghw.Segreg.DS -> 2
  | Seghw.Segreg.ES -> 3 | Seghw.Segreg.FS -> 4 | Seghw.Segreg.GS -> 5

(* [Seghw.Mmu.translate], in-unit: bump the limit-check counter, run the
   segment-limit compare chain over the flattened descriptor mirror,
   probe the direct-mapped TLB. Segment faults and TLB misses leave the
   unit, so diagnostics, counter discipline, and the page walk stay the
   module's.

   Under the block engine ([t.fm_enabled]) a per-segment one-entry cache
   short-circuits the TLB probe: if the last page accessed through this
   segreg is accessed again and the TLB generation counter has not moved
   since the cache was filled, the TLB provably still holds that exact
   entry (every insert/invalidate/flush bumps the generation), so the
   access is accounted as a TLB hit — same counters, same trace events —
   without touching the hash arrays. Any generation movement, page
   change, or write-over-read-only falls back to the real probe, which
   refills the cache. Segreg reloads need no special handling: the cache
   is keyed by linear page, and a reload changes [f_base] upstream of
   the key.

   [translate_via] is that one definition, parameterized over the
   pre-resolved segment-register mirror [sr] and fast-path slot [k]:
   the stepping engines resolve both per access (through [translate]
   below); the superblock closure compiler resolves them once at
   closure-compile time — legal because [Mmu.t]'s segreg fields are
   immutable references to in-place-mutated records — and calls
   [translate_via] directly. One code path either way, so the engines
   cannot diverge on translation semantics.

   [tr] is the event sink consulted by the emit sites. The stepping
   engines pass [mmu.trace]; compiled block closures pass a literal
   [None], which is exact, not an approximation: those closures only
   ever execute in [run]'s untraced [Block] arm ([t.sink = None]) —
   directly or spliced into a chain — and [set_sink] sets [t.sink]
   and [mmu.trace] together, so [mmu.trace] is provably [None]
   whenever one runs. The traced [Block] arm dispatches the separate
   [tblocks] closure set, which goes through [exec] and therefore
   [translate]'s live [mmu.trace]. *)
let[@inline] translate_via t mmu sr k ~tr ~seg_name ~offset ~size ~write =
  mmu.Seghw.Mmu.limit_checks <- mmu.Seghw.Mmu.limit_checks + 1;
  let off = offset land 0xFFFFFFFF in
  if
    sr.Seghw.Segreg.f_valid
    && ((not write) || sr.Seghw.Segreg.f_writable)
    && size > 0
    && off + size - 1 <= sr.Seghw.Segreg.f_limit
  then begin
    (match tr with
     | None -> ()
     | Some s ->
       Trace.emit s
         (Trace.Limit_check
            { seg = Seghw.Segreg.name_to_string seg_name;
              base = sr.Seghw.Segreg.f_base; offset = off; size; write;
              ok = true }));
    let linear = (sr.Seghw.Segreg.f_base + off) land 0xFFFFFFFF in
    let tlb = mmu.Seghw.Mmu.tlb in
    let page = linear lsr Seghw.Paging.page_shift in
    if
      t.fm_enabled
      && Array.unsafe_get t.fm_page k = page
      && Array.unsafe_get t.fm_gen k = tlb.Seghw.Tlb.gen
      && ((not write) || Array.unsafe_get t.fm_writable k)
    then begin
      (* The generation check proves the TLB still caches this entry, so
         the accounting of the skipped probe is exact: one hit. *)
      tlb.Seghw.Tlb.hits <- tlb.Seghw.Tlb.hits + 1;
      (match tr with
       | None -> ()
       | Some s -> Trace.emit s Trace.Tlb_hit);
      linear + Array.unsafe_get t.fm_delta k
    end
    else begin
      let slot = page land tlb.Seghw.Tlb.mask in
      let phys =
        if
          Array.unsafe_get tlb.Seghw.Tlb.tags slot = page
          && ((not write) || Array.unsafe_get tlb.Seghw.Tlb.writable slot)
        then begin
          tlb.Seghw.Tlb.hits <- tlb.Seghw.Tlb.hits + 1;
          (match tr with
           | None -> ()
           | Some s -> Trace.emit s Trace.Tlb_hit);
          (Array.unsafe_get tlb.Seghw.Tlb.frames slot
           lsl Seghw.Paging.page_shift)
          lor (linear land 0xFFF)
        end
        else begin
          tlb.Seghw.Tlb.misses <- tlb.Seghw.Tlb.misses + 1;
          (match tr with
           | None -> ()
           | Some s ->
             let old = Array.unsafe_get tlb.Seghw.Tlb.tags slot in
             Trace.emit s
               (Trace.Tlb_miss { page; evicted = old >= 0 && old <> page }));
          let phys = Seghw.Paging.walk mmu.Seghw.Mmu.paging ~linear ~write in
          Seghw.Tlb.insert tlb ~page
            ~frame:(phys lsr Seghw.Paging.page_shift)
            ~writable:write;
          phys
        end
      in
      if t.fm_enabled then begin
        (* Refill from the slot the probe (or the walk's insert) just
           left for this page: recording the slot's writability — not
           [write] — lets a later write hit after a write walk while a
           read-filled entry stays read-only, exactly the TLB's own
           upgrade-in-place discipline. *)
        Array.unsafe_set t.fm_page k page;
        Array.unsafe_set t.fm_delta k (phys - linear);
        Array.unsafe_set t.fm_writable k
          (Array.unsafe_get tlb.Seghw.Tlb.writable slot);
        Array.unsafe_set t.fm_gen k tlb.Seghw.Tlb.gen
      end;
      phys
    end
  end
  else begin
    (* Some fast-path condition failed; [Segreg.translate] re-runs the
       same test over the same mirror and raises the architectural
       fault with the module's exact diagnostics. *)
    (match tr with
     | None -> ()
     | Some s ->
       Trace.emit s
         (Trace.Limit_check
            { seg = Seghw.Segreg.name_to_string seg_name;
              base = sr.Seghw.Segreg.f_base; offset = off; size; write;
              ok = false }));
    let stack = match seg_name with Seghw.Segreg.SS -> true | _ -> false in
    let linear =
      Seghw.Segreg.translate sr ~name:seg_name ~offset ~size ~write ~stack
    in
    Seghw.Mmu.translate_linear mmu ~linear ~write
  end

let[@inline] seg_field (mmu : Seghw.Mmu.t) (s : Seghw.Segreg.name) =
  match s with
  | Seghw.Segreg.CS -> mmu.Seghw.Mmu.cs
  | Seghw.Segreg.SS -> mmu.Seghw.Mmu.ss
  | Seghw.Segreg.DS -> mmu.Seghw.Mmu.ds
  | Seghw.Segreg.ES -> mmu.Seghw.Mmu.es
  | Seghw.Segreg.FS -> mmu.Seghw.Mmu.fs
  | Seghw.Segreg.GS -> mmu.Seghw.Mmu.gs

let[@inline] translate t ~seg_name ~offset ~size ~write =
  let mmu = t.mmu in
  translate_via t mmu (seg_field mmu seg_name) (seg_slot seg_name)
    ~tr:mmu.Seghw.Mmu.trace ~seg_name ~offset ~size ~write

(* --- memory access through segmentation ------------------------------- *)

let[@inline] default_seg (m : Insn.mem) =
  match m.Insn.seg with
  | Some s -> s
  | None ->
    (match m.Insn.base with
     | Some Registers.EBP | Some Registers.ESP -> Seghw.Segreg.SS
     | _ -> Seghw.Segreg.DS)

let[@inline] effective_offset t (m : Insn.mem) =
  let base = match m.Insn.base with
    | Some r -> rget t r
    | None -> 0
  in
  let index = match m.Insn.index with
    | Some (r, scale) -> rget t r * scale
    | None -> 0
  in
  (base + index + m.Insn.disp) land 0xFFFFFFFF

let[@inline] load_mem t (m : Insn.mem) ~width =
  let size = width_bytes width in
  let offset = effective_offset t m in
  let phys_addr =
    translate t ~seg_name:(default_seg m) ~offset ~size
      ~write:false
  in
  match width with
  | Insn.Byte -> p_read8 t.phys phys_addr
  | Insn.Word -> p_read16 t.phys phys_addr
  | Insn.Long -> p_read32 t.phys phys_addr

let[@inline] store_mem t (m : Insn.mem) ~width v =
  let size = width_bytes width in
  let offset = effective_offset t m in
  let phys_addr =
    translate t ~seg_name:(default_seg m) ~offset ~size
      ~write:true
  in
  match width with
  | Insn.Byte -> p_write8 t.phys phys_addr v
  | Insn.Word -> p_write16 t.phys phys_addr v
  | Insn.Long -> p_write32 t.phys phys_addr v

let[@inline] load_f64 t (m : Insn.mem) =
  let offset = effective_offset t m in
  let phys_addr =
    translate t ~seg_name:(default_seg m) ~offset ~size:8
      ~write:false
  in
  p_read_float t.phys phys_addr

let[@inline] store_f64 t (m : Insn.mem) v =
  let offset = effective_offset t m in
  let phys_addr =
    translate t ~seg_name:(default_seg m) ~offset ~size:8
      ~write:true
  in
  p_write_float t.phys phys_addr v

let[@inline] read_operand t (o : Insn.operand) ~width =
  match o with
  | Insn.Reg r ->
    let v = rget t r in
    (match width with
     | Insn.Long -> v
     | Insn.Word -> v land 0xFFFF
     | Insn.Byte -> v land 0xFF)
  | Insn.Imm i -> i land 0xFFFFFFFF
  | Insn.Mem m -> load_mem t m ~width

let[@inline] write_operand t (o : Insn.operand) ~width v =
  match o with
  | Insn.Reg r ->
    (match width with
     | Insn.Long -> rset t r v
     | Insn.Word ->
       let old = rget t r in
       rset t r ((old land 0xFFFF0000) lor (v land 0xFFFF))
     | Insn.Byte ->
       let old = rget t r in
       rset t r ((old land 0xFFFFFF00) lor (v land 0xFF)))
  | Insn.Mem m -> store_mem t m ~width v
  | Insn.Imm _ -> Seghw.Fault.ud "write to immediate operand"

let[@inline] read_fsrc t = function
  | Insn.Freg r -> fget t r
  | Insn.Fmem m -> load_f64 t m

(* --- flags ------------------------------------------------------------ *)

let[@inline] sign32 v = v land 0x80000000 <> 0

let[@inline] set_flags_result t r =
  let r = r land 0xFFFFFFFF in
  t.zf <- r = 0;
  t.sf <- sign32 r

let[@inline] set_flags_sub t a b =
  let a = a land 0xFFFFFFFF and b = b land 0xFFFFFFFF in
  let r = (a - b) land 0xFFFFFFFF in
  t.cf <- a < b;
  t.zf <- r = 0;
  t.sf <- sign32 r;
  t.ovf <- sign32 a <> sign32 b && sign32 r <> sign32 a

let[@inline] set_flags_add t a b =
  let a = a land 0xFFFFFFFF and b = b land 0xFFFFFFFF in
  let r = a + b in
  t.cf <- r > 0xFFFFFFFF;
  let r = r land 0xFFFFFFFF in
  t.zf <- r = 0;
  t.sf <- sign32 r;
  t.ovf <- sign32 a = sign32 b && sign32 r <> sign32 a

let[@inline] set_flags_logic t r =
  t.cf <- false;
  t.ovf <- false;
  set_flags_result t r

let[@inline] cond_holds t (c : Insn.cond) =
  match c with
  | Insn.Eq -> t.zf
  | Insn.Ne -> not t.zf
  | Insn.Lt -> t.sf <> t.ovf
  | Insn.Le -> t.zf || t.sf <> t.ovf
  | Insn.Gt -> (not t.zf) && t.sf = t.ovf
  | Insn.Ge -> t.sf = t.ovf
  | Insn.Below -> t.cf
  | Insn.Below_eq -> t.cf || t.zf
  | Insn.Above -> (not t.cf) && not t.zf
  | Insn.Above_eq -> not t.cf

(* --- stack helpers ----------------------------------------------------- *)

(* Like [translate]/[translate_via]: the [_via] forms are the single
   definitions, with the segment mirror pre-resolved by the caller —
   per access here, once at closure-compile time in the superblock
   compiler. *)
let[@inline] push32_via t mmu sr k ~tr seg v =
  let esp = (rget t Registers.ESP - 4) land 0xFFFFFFFF in
  rset t Registers.ESP esp;
  let phys_addr =
    translate_via t mmu sr k ~tr ~seg_name:seg ~offset:esp ~size:4 ~write:true
  in
  p_write32 t.phys phys_addr v

let[@inline] push32 t v ~seg =
  let mmu = t.mmu in
  push32_via t mmu (seg_field mmu seg) (seg_slot seg) ~tr:mmu.Seghw.Mmu.trace
    seg v

let[@inline] pop32_via t mmu sr k ~tr seg =
  let esp = rget t Registers.ESP in
  let phys_addr =
    translate_via t mmu sr k ~tr ~seg_name:seg ~offset:esp ~size:4 ~write:false
  in
  let v = p_read32 t.phys phys_addr in
  rset t Registers.ESP ((esp + 4) land 0xFFFFFFFF);
  v

let[@inline] pop32 t ~seg =
  let mmu = t.mmu in
  pop32_via t mmu (seg_field mmu seg) (seg_slot seg) ~tr:mmu.Seghw.Mmu.trace
    seg

(* Read the [n]th 32-bit argument of a Callext host routine (0-based;
   arguments were pushed cdecl so arg 0 sits at [ESP]). *)
let arg_int t n =
  let esp = rget t Registers.ESP in
  let phys_addr =
    translate t ~seg_name:Seghw.Segreg.DS
      ~offset:((esp + (4 * n)) land 0xFFFFFFFF)
      ~size:4 ~write:false
  in
  p_read32 t.phys phys_addr

let arg_float t n =
  let esp = rget t Registers.ESP in
  let phys_addr =
    translate t ~seg_name:Seghw.Segreg.DS
      ~offset:((esp + (4 * n)) land 0xFFFFFFFF)
      ~size:8 ~write:false
  in
  p_read_float t.phys phys_addr

let return_int t v = rset t Registers.EAX v
let return_float t v = fset t Registers.XMM0 v

(* --- shared operand effects -------------------------------------------- *)

(* One definition of every straight-line instruction effect, shared by
   all three engines: [exec] (pre-decoded), [exec_reference], and the
   superblock closure compiler each dispatch into these, so an engine
   cannot silently diverge on an ALU or memory semantics detail. Control
   transfers and cycle/EIP commits stay engine-specific by design —
   that is exactly what distinguishes the engines. *)

let[@inline] eff_mov t w dst src =
  write_operand t dst ~width:w (read_operand t src ~width:w)

let[@inline] eff_lea t r m = rset t r (effective_offset t m)

let[@inline] eff_movsx t r src w =
  let v = read_operand t src ~width:w in
  let v =
    match w with
    | Insn.Byte -> sx8 v
    | Insn.Word -> sx16 v
    | Insn.Long -> v
  in
  rset t r v

let[@inline] eff_movzx t r src w = rset t r (read_operand t src ~width:w)

(* Flags and 32-bit result of one ALU operation (the caller writes the
   destination). *)
let[@inline] alu_result t (op : Insn.alu) a b =
  match op with
  | Insn.Add -> set_flags_add t a b; a + b
  | Insn.Sub -> set_flags_sub t a b; a - b
  | Insn.And -> let r = a land b in set_flags_logic t r; r
  | Insn.Or -> let r = a lor b in set_flags_logic t r; r
  | Insn.Xor -> let r = a lxor b in set_flags_logic t r; r
  | Insn.Imul ->
    let r = to_signed a * to_signed b in
    set_flags_logic t r; r
  | Insn.Shl -> let r = a lsl (b land 31) in set_flags_logic t r; r
  | Insn.Shr -> let r = a lsr (b land 31) in set_flags_logic t r; r
  | Insn.Sar ->
    let r = to_signed a asr (b land 31) in
    set_flags_logic t r; r

let[@inline] eff_alu t op dst src =
  let a = read_operand t dst ~width:Insn.Long in
  let b = read_operand t src ~width:Insn.Long in
  write_operand t dst ~width:Insn.Long (alu_result t op a b)

let[@inline] eff_idiv t src =
  let a = to_signed (rget t Registers.EAX) in
  let b = to_signed (read_operand t src ~width:Insn.Long) in
  if b = 0 then Seghw.Fault.ud "integer division by zero";
  let q = a / b and r = a mod b in
  rset t Registers.EAX q;
  rset t Registers.EDX r

let[@inline] eff_neg t o =
  let v = read_operand t o ~width:Insn.Long in
  set_flags_sub t 0 v;
  write_operand t o ~width:Insn.Long (-v)

let[@inline] inc_result t v =
  let r = v + 1 in
  set_flags_result t r;
  t.ovf <- v land 0xFFFFFFFF = 0x7FFFFFFF;
  r

let[@inline] dec_result t v =
  let r = v - 1 in
  set_flags_result t r;
  t.ovf <- v land 0xFFFFFFFF = 0x80000000;
  r

let[@inline] eff_inc t o =
  let v = read_operand t o ~width:Insn.Long in
  write_operand t o ~width:Insn.Long (inc_result t v)

let[@inline] eff_dec t o =
  let v = read_operand t o ~width:Insn.Long in
  write_operand t o ~width:Insn.Long (dec_result t v)

let[@inline] eff_cmp t a b =
  set_flags_sub t
    (read_operand t a ~width:Insn.Long)
    (read_operand t b ~width:Insn.Long)

let[@inline] eff_test t a b =
  set_flags_logic t
    (read_operand t a ~width:Insn.Long land read_operand t b ~width:Insn.Long)

let[@inline] eff_setcc t c r = rset t r (if cond_holds t c then 1 else 0)

let[@inline] eff_fmov t dst src =
  let v = read_fsrc t src in
  match (dst : Insn.fsrc) with
  | Insn.Freg r -> fset t r v
  | Insn.Fmem m -> store_f64 t m v

let[@inline] eff_falu t (op : Insn.falu) dst src =
  let a = fget t dst in
  let b = read_fsrc t src in
  let r =
    match op with
    | Insn.Fadd -> a +. b
    | Insn.Fsub -> a -. b
    | Insn.Fmul -> a *. b
    | Insn.Fdiv -> a /. b
  in
  fset t dst r

let[@inline] eff_fcmp t a src =
  (* comisd: ZF/CF as for an unsigned compare; OF/SF cleared *)
  let x = fget t a in
  let y = read_fsrc t src in
  t.ovf <- false;
  t.sf <- false;
  t.zf <- x = y;
  t.cf <- x < y

let[@inline] eff_fsqrt t d src = fset t d (sqrt (read_fsrc t src))

let[@inline] eff_cvtsi2sd t d src =
  fset t d (float_of_int (to_signed (read_operand t src ~width:Insn.Long)))

let[@inline] eff_cvtsd2si t d src =
  let f = read_fsrc t src in
  rset t d (truncate f)

let[@inline] eff_push t o =
  push32 t (read_operand t o ~width:Insn.Long) ~seg:Seghw.Segreg.SS

let[@inline] eff_pop t o =
  write_operand t o ~width:Insn.Long (pop32 t ~seg:Seghw.Segreg.SS)

let[@inline] eff_mov_to_seg t name o =
  let sel = Seghw.Selector.of_int (read_operand t o ~width:Insn.Word) in
  Seghw.Mmu.load_segreg t.mmu name sel

let[@inline] eff_mov_from_seg t o name =
  write_operand t o ~width:Insn.Word
    (Seghw.Selector.to_int (Seghw.Mmu.read_segreg t.mmu name))

let[@inline] eff_bound t r m =
  (* bound r32, m32&32: lower word at [m], upper at [m+4]; the checked
     value must satisfy lower <= r <= upper, else #BR. *)
  let v = to_signed (rget t r) in
  let lower = to_signed (load_mem t m ~width:Insn.Long) in
  let upper =
    to_signed
      (load_mem t { m with Insn.disp = m.Insn.disp + 4 } ~width:Insn.Long)
  in
  if v < lower || v > upper then
    Seghw.Fault.br (Printf.sprintf "bound: %d not in [%d, %d]" v lower upper)

(* --- MPX-style bounds registers ----------------------------------------
   The bound-register instructions never touch guest memory themselves:
   BNDMK reads only registers, and BNDLDX/BNDSTX key the hardware-owned
   two-level table by the *linear address* of the pointer's memory slot
   (segment base + effective address) — the same key no matter which
   segment register or addressing mode names the slot, so a caller's
   spill and a callee's reload meet at the same entry. Computing the key
   performs no limit check and can't fault: it is the hardware's
   internal address arithmetic, as in real MPX. *)

let[@inline] btable_key t (m : Insn.mem) =
  let sr = seg_field t.mmu (default_seg m) in
  (sr.Seghw.Segreg.f_base + effective_offset t m) land 0xFFFFFFFF

let[@inline] eff_bndmk t b (m : Insn.mem) =
  (* bndmk bnd, m: lower = value of m's base register (0 when absent),
     upper = the full effective address — one past the end, so
     [base + disp:size] and [base + index*1] (malloc's byte count in a
     scaled index) both form [base, base+size). *)
  let lower =
    match m.Insn.base with Some r -> rget t r | None -> 0
  in
  let upper = effective_offset t m in
  Seghw.Bound_regs.set t.mmu.Seghw.Mmu.bndregs b ~lower ~upper

let[@inline] eff_bndcl t b o =
  let bnd = Seghw.Bound_regs.reg t.mmu.Seghw.Mmu.bndregs b in
  if bnd.Seghw.Bound_regs.valid then begin
    let v = read_operand t o ~width:Insn.Long in
    if v < bnd.Seghw.Bound_regs.lower then
      Seghw.Fault.br
        (Printf.sprintf "bndcl: 0x%x below lower bound 0x%x" v
           bnd.Seghw.Bound_regs.lower)
  end

let[@inline] eff_bndcu t b o size =
  let bnd = Seghw.Bound_regs.reg t.mmu.Seghw.Mmu.bndregs b in
  if bnd.Seghw.Bound_regs.valid then begin
    let v = read_operand t o ~width:Insn.Long in
    if v + size > bnd.Seghw.Bound_regs.upper then
      Seghw.Fault.br
        (Printf.sprintf "bndcu: 0x%x+%d above upper bound 0x%x" v size
           bnd.Seghw.Bound_regs.upper)
  end

let[@inline] eff_bndldx t b (m : Insn.mem) =
  let key = btable_key t m in
  let hit = Seghw.Bound_regs.load t.mmu.Seghw.Mmu.bndregs b ~key in
  match t.mmu.Seghw.Mmu.trace with
  | None -> ()
  | Some s -> Trace.emit s (Trace.Btable_load { key; hit })

let[@inline] eff_bndstx t b (m : Insn.mem) =
  let key = btable_key t m in
  let allocated = Seghw.Bound_regs.store t.mmu.Seghw.Mmu.bndregs b ~key in
  (* A store that must allocate a second-level table pays extra memory
     traffic — the analogue of the paper's LDT-reload accounting. The
     charge is purely additive and keyed on architectural table state,
     so all three engines charge it identically. *)
  if allocated then
    t.cycles <- t.cycles + Seghw.Bound_regs.dir_alloc_cycles

(* --- capability instructions -------------------------------------------
   A capability is 2 words in the compiled code: the raw pointer plus a
   capability word [(captab index lsl 1) lor tag]. CAPMK interns the
   range in the hardware table; CAPCHK validates the tag and range on
   every dereference; CAPCLR clears the tag (GANDALF-style) when
   pointer arithmetic escapes the range. *)

let[@inline] eff_capmk t dst lo hi =
  let lower = read_operand t lo ~width:Insn.Long in
  let upper = read_operand t hi ~width:Insn.Long in
  let idx = Seghw.Captab.intern t.mmu.Seghw.Mmu.captab ~lower ~upper in
  rset t dst (Seghw.Captab.word_of_index idx)

let[@inline] eff_capchk t cap (m : Insn.mem) size write =
  let tab = t.mmu.Seghw.Mmu.captab in
  tab.Seghw.Captab.checks <- tab.Seghw.Captab.checks + 1;
  let w = rget t cap in
  if Seghw.Captab.tag_of w = 0 then
    Seghw.Fault.br
      (Printf.sprintf "capability tag: %s through untagged capability"
         (if write then "write" else "read"));
  let lower, upper = Seghw.Captab.bounds tab (Seghw.Captab.index_of w) in
  let ea = effective_offset t m in
  if ea < lower || ea + size > upper then
    Seghw.Fault.br
      (Printf.sprintf
         "capability bounds: %s 0x%x+%d outside [0x%x, 0x%x)"
         (if write then "write" else "read") ea size lower upper)

let[@inline] eff_capclr t vr cr =
  let w = rget t cr in
  if Seghw.Captab.tag_of w = 1 then begin
    let tab = t.mmu.Seghw.Mmu.captab in
    let lower, upper = Seghw.Captab.bounds tab (Seghw.Captab.index_of w) in
    let v = rget t vr in
    (* The upper bound is inclusive for arithmetic: a one-past-the-end
       pointer keeps its tag (C's &a[n] idiom); dereferencing it still
       faults in CAPCHK, whose upper is exclusive. *)
    if v < lower || v > upper then begin
      tab.Seghw.Captab.tag_clears <- tab.Seghw.Captab.tag_clears + 1;
      rset t cr (w land lnot 1);
      match t.mmu.Seghw.Mmu.trace with
      | None -> ()
      | Some s ->
        Trace.emit s (Trace.Cap_tag_clear { value = v; lower; upper })
    end
  end

let[@inline] eff_callext t name =
  match Hashtbl.find_opt t.externals name with
  | Some f -> f t
  | None -> Seghw.Fault.ud (Printf.sprintf "undefined external %S" name)

(* --- the pre-decoded execution engine ---------------------------------- *)

(* Execute the instruction at index [eip] and return the next EIP.
   Control transfers read their pre-resolved target from [t.targets];
   every other instruction falls through. The caller commits EIP and
   charges the pre-tabulated cycle cost — so a faulting instruction
   (OCaml exception) leaves EIP, the instruction count, and the cycle
   count untouched, exactly like the reference engine. Taking [eip] as
   a parameter (rather than reading [t.eip]) lets the block engine
   execute mid-block instructions without maintaining [t.eip] per
   step. *)
let exec t eip (i : Insn.t) =
  let next = eip + 1 in
  match i with
  | Insn.Label _ ->
    incr (Array.unsafe_get t.stat_refs eip);
    next
  | Insn.Nop -> next
  | Insn.Halt -> t.status <- Halted; next
  | Insn.Mov (w, dst, src) -> eff_mov t w dst src; next
  | Insn.Lea (r, m) -> eff_lea t r m; next
  | Insn.Movsx (r, src, w) -> eff_movsx t r src w; next
  | Insn.Movzx (r, src, w) -> eff_movzx t r src w; next
  | Insn.Alu (op, dst, src) -> eff_alu t op dst src; next
  | Insn.Idiv src -> eff_idiv t src; next
  | Insn.Neg o -> eff_neg t o; next
  | Insn.Inc o -> eff_inc t o; next
  | Insn.Dec o -> eff_dec t o; next
  | Insn.Cmp (a, b) -> eff_cmp t a b; next
  | Insn.Test (a, b) -> eff_test t a b; next
  | Insn.Setcc (c, r) -> eff_setcc t c r; next
  | Insn.Fmov (dst, src) -> eff_fmov t dst src; next
  | Insn.Fload_const (r, f) -> fset t r f; next
  | Insn.Falu (op, dst, src) -> eff_falu t op dst src; next
  | Insn.Fcmp (a, src) -> eff_fcmp t a src; next
  | Insn.Fneg r -> fset t r (-.fget t r); next
  | Insn.Fsqrt (d, src) -> eff_fsqrt t d src; next
  | Insn.Cvtsi2sd (d, src) -> eff_cvtsi2sd t d src; next
  | Insn.Cvtsd2si (d, src) -> eff_cvtsd2si t d src; next
  | Insn.Jmp _ -> Array.unsafe_get t.targets eip
  | Insn.Jcc (c, _) ->
    if cond_holds t c then Array.unsafe_get t.targets eip else next
  | Insn.Call _ ->
    push32 t next ~seg:Seghw.Segreg.DS;
    Array.unsafe_get t.targets eip
  | Insn.Ret -> pop32 t ~seg:Seghw.Segreg.DS
  | Insn.Push o -> eff_push t o; next
  | Insn.Pop o -> eff_pop t o; next
  | Insn.Mov_to_seg (name, o) -> eff_mov_to_seg t name o; next
  | Insn.Mov_from_seg (o, name) -> eff_mov_from_seg t o name; next
  | Insn.Lcall_gate sel -> t.kernel t ~gate:(`Gate sel); next
  | Insn.Int_syscall n -> t.kernel t ~gate:(`Int n); next
  | Insn.Bound (r, m) -> eff_bound t r m; next
  | Insn.Bndmk (b, m) -> eff_bndmk t b m; next
  | Insn.Bndcl (b, o) -> eff_bndcl t b o; next
  | Insn.Bndcu (b, o, size) -> eff_bndcu t b o size; next
  | Insn.Bndldx (b, m) -> eff_bndldx t b m; next
  | Insn.Bndstx (b, m) -> eff_bndstx t b m; next
  | Insn.Capmk (dst, lo, hi) -> eff_capmk t dst lo hi; next
  | Insn.Capchk (cap, m, size, write) -> eff_capchk t cap m size write; next
  | Insn.Capclr (vr, cr) -> eff_capclr t vr cr; next
  | Insn.Callext name -> eff_callext t name; next

(* One pre-decoded step: fetch, execute, commit EIP, charge the
   tabulated cost. *)
let step_predecoded t =
  let eip = t.eip in
  if eip < 0 || eip >= Array.length t.code then
    Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" eip);
  let next = exec t eip (Array.unsafe_get t.code eip) in
  t.eip <- next;
  t.insns_executed <- t.insns_executed + 1;
  t.cycles <- t.cycles + Array.unsafe_get t.cost_tab eip;
  match t.sink with
  | None -> ()
  | Some _ ->
    Array.unsafe_set t.prof_hits eip (Array.unsafe_get t.prof_hits eip + 1)

(* --- the superblock engine --------------------------------------------- *)

(* The closure compiler: every instruction of a block is lowered, once
   per *program*, into an operand-resolved [t -> int] closure. Work the
   stepping engines redo per execution happens here once, at compile
   time:

   - the instruction-constructor match and every operand-shape match;
   - register names resolved to file indices;
   - the segment override / EBP-ESP default-segment rule;
   - the fast-path slot [k] of the access;
   - the addressing-mode shape (base/index/scale/displacement);
   - a terminator's branch target and fall-through EIP.

   Everything semantic still funnels into single shared definitions —
   [translate_via] (limit check, TLB probe, per-segment fast path),
   the [p_read*]/[p_write*] accessors, the flag setters and
   [inc_result]/[alu_result]/[sx8]-style combinators, [push32_via]/
   [pop32_via], [cond_holds], and the generic [eff_*] effects for
   every shape without a bespoke lowering — so the compiled form
   cannot diverge from the stepping engines; the engine-equivalence
   suites pin the specialised shapes.

   Closures are CPU-independent: they capture only program data (code
   indices, register-file slots, immediates, branch targets) and fetch
   the running CPU's register file, MMU, physical memory, and stat
   counters from the [cpu] argument at execution time. That is what
   lets [build_ublocks] share one compiled closure set process-wide
   across every machine running the same [Program.t]. A segment
   register's mirror is re-read from the running CPU's [mmu] per call
   ([seg_field] is a six-way constant-tag match, not a table walk), so
   it always reflects current descriptor state. Per-CPU capture lives
   on in [fuse_block]: chained closures are recompiled per CPU and
   capture that CPU's arrays on purpose, so steady-state hot loops
   keep their capture performance. *)

(* Physical-address closure for one memory operand: addressing shape,
   default segment, and fast-path slot resolved now; the returned
   closure does the adds and one [translate_via]. *)
let compile_addr (m : Insn.mem) ~size ~write : t -> int =
  let seg = default_seg m in
  let k = seg_slot seg in
  let disp = m.Insn.disp in
  match (m.Insn.base, m.Insn.index) with
  | Some b, None ->
    let bi = reg_index b in
    fun cpu ->
      let mmu = cpu.mmu in
      let off =
        (Array.unsafe_get cpu.regs.Registers.gp bi + disp) land 0xFFFFFFFF
      in
      translate_via cpu mmu (seg_field mmu seg) k ~tr:None ~seg_name:seg
        ~offset:off ~size ~write
  | Some b, Some (x, scale) ->
    let bi = reg_index b and xi = reg_index x in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let mmu = cpu.mmu in
      let off =
        (Array.unsafe_get gp bi + (Array.unsafe_get gp xi * scale) + disp)
        land 0xFFFFFFFF
      in
      translate_via cpu mmu (seg_field mmu seg) k ~tr:None ~seg_name:seg
        ~offset:off ~size ~write
  | None, Some (x, scale) ->
    let xi = reg_index x in
    fun cpu ->
      let mmu = cpu.mmu in
      let off =
        ((Array.unsafe_get cpu.regs.Registers.gp xi * scale) + disp)
        land 0xFFFFFFFF
      in
      translate_via cpu mmu (seg_field mmu seg) k ~tr:None ~seg_name:seg
        ~offset:off ~size ~write
  | None, None ->
    let off = disp land 0xFFFFFFFF in
    fun cpu ->
      let mmu = cpu.mmu in
      translate_via cpu mmu (seg_field mmu seg) k ~tr:None ~seg_name:seg
        ~offset:off ~size ~write

(* Compile one non-terminator instruction. [ret] is the closure's
   return value — 0 for body instructions, the fall-through EIP when an
   ordinary instruction ends a block because the next one is a branch
   target. *)
let compile_insn code idx ~ret : t -> int =
  let kss = seg_slot Seghw.Segreg.SS in
  match (Array.get code idx : Insn.t) with
  | Insn.Label _ ->
    fun cpu -> incr (Array.unsafe_get cpu.stat_refs idx); ret
  | Insn.Nop -> fun _ -> ret
  | Insn.Mov (Insn.Long, Insn.Reg d, Insn.Reg s) ->
    let di = reg_index d and si = reg_index s in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      Array.unsafe_set gp di (Array.unsafe_get gp si);
      ret
  | Insn.Mov (Insn.Long, Insn.Reg d, Insn.Imm i) ->
    let di = reg_index d and v = i land 0xFFFFFFFF in
    fun cpu -> Array.unsafe_set cpu.regs.Registers.gp di v; ret
  (* The two hottest shapes — 32-bit loads and stores through a
     register-addressed operand — get the address computation fused
     into the instruction closure itself (no separate [compile_addr]
     closure call); everything still goes through the one
     [translate_via]. *)
  | Insn.Mov
      ( Insn.Long,
        Insn.Reg d,
        Insn.Mem ({ Insn.base = Some b; Insn.index = None; _ } as m) ) ->
    let seg = default_seg m in
    let k = seg_slot seg in
    let bi = reg_index b and di = reg_index d and disp = m.Insn.disp in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let mmu = cpu.mmu in
      let off = (Array.unsafe_get gp bi + disp) land 0xFFFFFFFF in
      let phys =
        translate_via cpu mmu (seg_field mmu seg) k ~tr:None ~seg_name:seg
          ~offset:off ~size:4 ~write:false
      in
      Array.unsafe_set gp di (p_read32 cpu.phys phys);
      ret
  | Insn.Mov
      ( Insn.Long,
        Insn.Reg d,
        Insn.Mem ({ Insn.base = Some b; Insn.index = Some (x, sc); _ } as m) )
    ->
    let seg = default_seg m in
    let k = seg_slot seg in
    let bi = reg_index b
    and xi = reg_index x
    and di = reg_index d
    and disp = m.Insn.disp in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let mmu = cpu.mmu in
      let off =
        (Array.unsafe_get gp bi + (Array.unsafe_get gp xi * sc) + disp)
        land 0xFFFFFFFF
      in
      let phys =
        translate_via cpu mmu (seg_field mmu seg) k ~tr:None ~seg_name:seg
          ~offset:off ~size:4 ~write:false
      in
      Array.unsafe_set gp di (p_read32 cpu.phys phys);
      ret
  | Insn.Mov (Insn.Long, Insn.Reg d, Insn.Mem m) ->
    let pa = compile_addr m ~size:4 ~write:false in
    let di = reg_index d in
    fun cpu ->
      Array.unsafe_set cpu.regs.Registers.gp di (p_read32 cpu.phys (pa cpu));
      ret
  | Insn.Mov
      ( Insn.Long,
        Insn.Mem ({ Insn.base = Some b; Insn.index = None; _ } as m),
        Insn.Reg s ) ->
    let seg = default_seg m in
    let k = seg_slot seg in
    let bi = reg_index b and si = reg_index s and disp = m.Insn.disp in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let mmu = cpu.mmu in
      let off = (Array.unsafe_get gp bi + disp) land 0xFFFFFFFF in
      let phys =
        translate_via cpu mmu (seg_field mmu seg) k ~tr:None ~seg_name:seg
          ~offset:off ~size:4 ~write:true
      in
      p_write32 cpu.phys phys (Array.unsafe_get gp si);
      ret
  | Insn.Mov
      ( Insn.Long,
        Insn.Mem ({ Insn.base = Some b; Insn.index = Some (x, sc); _ } as m),
        Insn.Reg s ) ->
    let seg = default_seg m in
    let k = seg_slot seg in
    let bi = reg_index b
    and xi = reg_index x
    and si = reg_index s
    and disp = m.Insn.disp in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let mmu = cpu.mmu in
      let off =
        (Array.unsafe_get gp bi + (Array.unsafe_get gp xi * sc) + disp)
        land 0xFFFFFFFF
      in
      let phys =
        translate_via cpu mmu (seg_field mmu seg) k ~tr:None ~seg_name:seg
          ~offset:off ~size:4 ~write:true
      in
      p_write32 cpu.phys phys (Array.unsafe_get gp si);
      ret
  | Insn.Mov (Insn.Long, Insn.Mem m, Insn.Reg s) ->
    let pa = compile_addr m ~size:4 ~write:true in
    let si = reg_index s in
    fun cpu ->
      p_write32 cpu.phys (pa cpu) (Array.unsafe_get cpu.regs.Registers.gp si);
      ret
  | Insn.Mov (Insn.Long, Insn.Mem m, Insn.Imm i) ->
    let pa = compile_addr m ~size:4 ~write:true in
    let v = i land 0xFFFFFFFF in
    fun cpu -> p_write32 cpu.phys (pa cpu) v; ret
  | Insn.Mov (Insn.Byte, Insn.Reg d, Insn.Mem m) ->
    (* Byte loads merge into the destination's low byte, exactly
       [write_operand]'s Byte case. *)
    let pa = compile_addr m ~size:1 ~write:false in
    let di = reg_index d in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let v = p_read8 cpu.phys (pa cpu) land 0xFF in
      Array.unsafe_set gp di ((Array.unsafe_get gp di land 0xFFFFFF00) lor v);
      ret
  | Insn.Mov (Insn.Byte, Insn.Mem m, Insn.Reg s) ->
    let pa = compile_addr m ~size:1 ~write:true in
    let si = reg_index s in
    fun cpu ->
      p_write8 cpu.phys (pa cpu)
        (Array.unsafe_get cpu.regs.Registers.gp si land 0xFF);
      ret
  | Insn.Mov (Insn.Byte, Insn.Mem m, Insn.Imm i) ->
    let pa = compile_addr m ~size:1 ~write:true in
    let v = i land 0xFF in
    fun cpu -> p_write8 cpu.phys (pa cpu) v; ret
  | Insn.Mov (w, dst, src) -> fun cpu -> eff_mov cpu w dst src; ret
  | Insn.Lea (r, m) ->
    (* The four addressing shapes of [effective_offset], resolved here;
       [compile_addr] resolves the same shapes for real accesses. *)
    let di = reg_index r in
    let disp = m.Insn.disp in
    (match (m.Insn.base, m.Insn.index) with
     | Some b, None ->
       let bi = reg_index b in
       fun cpu ->
         let gp = cpu.regs.Registers.gp in
         Array.unsafe_set gp di ((Array.unsafe_get gp bi + disp) land 0xFFFFFFFF);
         ret
     | Some b, Some (x, sc) ->
       let bi = reg_index b and xi = reg_index x in
       fun cpu ->
         let gp = cpu.regs.Registers.gp in
         Array.unsafe_set gp di
           ((Array.unsafe_get gp bi + (Array.unsafe_get gp xi * sc) + disp)
            land 0xFFFFFFFF);
         ret
     | None, Some (x, sc) ->
       let xi = reg_index x in
       fun cpu ->
         let gp = cpu.regs.Registers.gp in
         Array.unsafe_set gp di
           (((Array.unsafe_get gp xi * sc) + disp) land 0xFFFFFFFF);
         ret
     | None, None ->
       let v = disp land 0xFFFFFFFF in
       fun cpu -> Array.unsafe_set cpu.regs.Registers.gp di v; ret)
  | Insn.Movsx (r, Insn.Mem m, Insn.Byte) ->
    let pa = compile_addr m ~size:1 ~write:false in
    let di = reg_index r in
    fun cpu ->
      Array.unsafe_set cpu.regs.Registers.gp di
        (sx8 (p_read8 cpu.phys (pa cpu)) land 0xFFFFFFFF);
      ret
  | Insn.Movsx (r, src, w) -> fun cpu -> eff_movsx cpu r src w; ret
  | Insn.Movzx (r, Insn.Mem m, Insn.Byte) ->
    let pa = compile_addr m ~size:1 ~write:false in
    let di = reg_index r in
    fun cpu ->
      Array.unsafe_set cpu.regs.Registers.gp di
        (p_read8 cpu.phys (pa cpu) land 0xFF);
      ret
  | Insn.Movzx (r, src, w) -> fun cpu -> eff_movzx cpu r src w; ret
  | Insn.Alu (Insn.Add, Insn.Reg d, Insn.Reg s) ->
    let di = reg_index d and si = reg_index s in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let a = Array.unsafe_get gp di and b = Array.unsafe_get gp si in
      set_flags_add cpu a b;
      Array.unsafe_set gp di ((a + b) land 0xFFFFFFFF);
      ret
  | Insn.Alu (Insn.Add, Insn.Reg d, Insn.Imm i) ->
    let di = reg_index d and b = i land 0xFFFFFFFF in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let a = Array.unsafe_get gp di in
      set_flags_add cpu a b;
      Array.unsafe_set gp di ((a + b) land 0xFFFFFFFF);
      ret
  | Insn.Alu (Insn.Sub, Insn.Reg d, Insn.Reg s) ->
    let di = reg_index d and si = reg_index s in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let a = Array.unsafe_get gp di and b = Array.unsafe_get gp si in
      set_flags_sub cpu a b;
      Array.unsafe_set gp di ((a - b) land 0xFFFFFFFF);
      ret
  | Insn.Alu (Insn.Sub, Insn.Reg d, Insn.Imm i) ->
    let di = reg_index d and b = i land 0xFFFFFFFF in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let a = Array.unsafe_get gp di in
      set_flags_sub cpu a b;
      Array.unsafe_set gp di ((a - b) land 0xFFFFFFFF);
      ret
  | Insn.Alu (op, Insn.Reg d, Insn.Reg s) ->
    let di = reg_index d and si = reg_index s in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      Array.unsafe_set gp di
        (alu_result cpu op (Array.unsafe_get gp di) (Array.unsafe_get gp si)
         land 0xFFFFFFFF);
      ret
  | Insn.Alu (op, Insn.Reg d, Insn.Imm i) ->
    let di = reg_index d and b = i land 0xFFFFFFFF in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      Array.unsafe_set gp di
        (alu_result cpu op (Array.unsafe_get gp di) b land 0xFFFFFFFF);
      ret
  | Insn.Alu (op, Insn.Reg d, Insn.Mem m) ->
    let pa = compile_addr m ~size:4 ~write:false in
    let di = reg_index d in
    fun cpu ->
      let b = p_read32 cpu.phys (pa cpu) in
      let gp = cpu.regs.Registers.gp in
      Array.unsafe_set gp di
        (alu_result cpu op (Array.unsafe_get gp di) b land 0xFFFFFFFF);
      ret
  | Insn.Alu (op, Insn.Mem m, Insn.Reg s) ->
    (* Mem-destination ALU measured at ~2.6% of grown-workload
       retirements (EXPERIMENTS.md PR 5), so it gets a bespoke
       lowering. Two pre-resolved translations in the generic effect's
       order — dst read, flags, dst write — so a write fault still
       lands after the flags commit, exactly like [eff_alu]. *)
    let ra = compile_addr m ~size:4 ~write:false in
    let wa = compile_addr m ~size:4 ~write:true in
    let si = reg_index s in
    fun cpu ->
      let ph = cpu.phys in
      let a = p_read32 ph (ra cpu) in
      let r = alu_result cpu op a (Array.unsafe_get cpu.regs.Registers.gp si) in
      p_write32 ph (wa cpu) r;
      ret
  | Insn.Alu (op, Insn.Mem m, Insn.Imm i) ->
    let ra = compile_addr m ~size:4 ~write:false in
    let wa = compile_addr m ~size:4 ~write:true in
    let b = i land 0xFFFFFFFF in
    fun cpu ->
      let ph = cpu.phys in
      let a = p_read32 ph (ra cpu) in
      let r = alu_result cpu op a b in
      p_write32 ph (wa cpu) r;
      ret
  | Insn.Alu (op, dst, src) -> fun cpu -> eff_alu cpu op dst src; ret
  | Insn.Idiv (Insn.Reg s) ->
    (* ~2.3% of grown-workload retirements (EXPERIMENTS.md PR 5). *)
    let si = reg_index s
    and ax = reg_index Registers.EAX
    and dx = reg_index Registers.EDX in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      let a = to_signed (Array.unsafe_get gp ax) in
      let b = to_signed (Array.unsafe_get gp si) in
      if b = 0 then Seghw.Fault.ud "integer division by zero";
      Array.unsafe_set gp ax (a / b land 0xFFFFFFFF);
      Array.unsafe_set gp dx (a mod b land 0xFFFFFFFF);
      ret
  | Insn.Idiv src -> fun cpu -> eff_idiv cpu src; ret
  | Insn.Neg o -> fun cpu -> eff_neg cpu o; ret
  | Insn.Inc (Insn.Reg r) ->
    let ri = reg_index r in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      Array.unsafe_set gp ri
        (inc_result cpu (Array.unsafe_get gp ri) land 0xFFFFFFFF);
      ret
  | Insn.Inc o -> fun cpu -> eff_inc cpu o; ret
  | Insn.Dec (Insn.Reg r) ->
    let ri = reg_index r in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      Array.unsafe_set gp ri
        (dec_result cpu (Array.unsafe_get gp ri) land 0xFFFFFFFF);
      ret
  | Insn.Dec o -> fun cpu -> eff_dec cpu o; ret
  | Insn.Cmp (Insn.Reg a, Insn.Reg b) ->
    let ai = reg_index a and bi = reg_index b in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      set_flags_sub cpu (Array.unsafe_get gp ai) (Array.unsafe_get gp bi);
      ret
  | Insn.Cmp (Insn.Reg a, Insn.Imm i) ->
    let ai = reg_index a and b = i land 0xFFFFFFFF in
    fun cpu ->
      set_flags_sub cpu (Array.unsafe_get cpu.regs.Registers.gp ai) b;
      ret
  | Insn.Cmp (Insn.Mem m, Insn.Imm i) ->
    let pa = compile_addr m ~size:4 ~write:false in
    let b = i land 0xFFFFFFFF in
    fun cpu -> set_flags_sub cpu (p_read32 cpu.phys (pa cpu)) b; ret
  | Insn.Cmp (Insn.Mem m, Insn.Reg b) ->
    let pa = compile_addr m ~size:4 ~write:false in
    let bi = reg_index b in
    fun cpu ->
      set_flags_sub cpu
        (p_read32 cpu.phys (pa cpu))
        (Array.unsafe_get cpu.regs.Registers.gp bi);
      ret
  | Insn.Cmp (Insn.Reg a, Insn.Mem m) ->
    let pa = compile_addr m ~size:4 ~write:false in
    let ai = reg_index a in
    fun cpu ->
      let av = Array.unsafe_get cpu.regs.Registers.gp ai in
      set_flags_sub cpu av (p_read32 cpu.phys (pa cpu));
      ret
  | Insn.Cmp (a, b) -> fun cpu -> eff_cmp cpu a b; ret
  | Insn.Test (Insn.Reg a, Insn.Reg b) ->
    let ai = reg_index a and bi = reg_index b in
    fun cpu ->
      let gp = cpu.regs.Registers.gp in
      set_flags_logic cpu (Array.unsafe_get gp ai land Array.unsafe_get gp bi);
      ret
  | Insn.Test (a, b) -> fun cpu -> eff_test cpu a b; ret
  | Insn.Setcc (c, r) ->
    let ri = reg_index r in
    fun cpu ->
      Array.unsafe_set cpu.regs.Registers.gp ri
        (if cond_holds cpu c then 1 else 0);
      ret
  | Insn.Fmov (Insn.Freg d, Insn.Freg s) ->
    let di = freg_index d and si = freg_index s in
    fun cpu ->
      let fp = cpu.regs.Registers.fp in
      Array.unsafe_set fp di (Array.unsafe_get fp si);
      ret
  | Insn.Fmov (Insn.Freg d, Insn.Fmem m) ->
    let pa = compile_addr m ~size:8 ~write:false in
    let di = freg_index d in
    fun cpu ->
      Array.unsafe_set cpu.regs.Registers.fp di
        (p_read_float cpu.phys (pa cpu));
      ret
  | Insn.Fmov (Insn.Fmem m, Insn.Freg s) ->
    let pa = compile_addr m ~size:8 ~write:true in
    let si = freg_index s in
    fun cpu ->
      p_write_float cpu.phys (pa cpu)
        (Array.unsafe_get cpu.regs.Registers.fp si);
      ret
  | Insn.Fmov (dst, src) -> fun cpu -> eff_fmov cpu dst src; ret
  | Insn.Fload_const (r, f) ->
    let ri = freg_index r in
    fun cpu -> Array.unsafe_set cpu.regs.Registers.fp ri f; ret
  | Insn.Falu (op, d, Insn.Freg s) ->
    (* Fmul/Fadd measured at 2.6%/1.6% of grown-workload retirements
       (EXPERIMENTS.md PR 5): resolve the register slots and the
       operation once, at closure-compile time. *)
    let di = freg_index d and si = freg_index s in
    (match op with
     | Insn.Fadd ->
       fun cpu ->
         let fp = cpu.regs.Registers.fp in
         Array.unsafe_set fp di
           (Array.unsafe_get fp di +. Array.unsafe_get fp si);
         ret
     | Insn.Fsub ->
       fun cpu ->
         let fp = cpu.regs.Registers.fp in
         Array.unsafe_set fp di
           (Array.unsafe_get fp di -. Array.unsafe_get fp si);
         ret
     | Insn.Fmul ->
       fun cpu ->
         let fp = cpu.regs.Registers.fp in
         Array.unsafe_set fp di
           (Array.unsafe_get fp di *. Array.unsafe_get fp si);
         ret
     | Insn.Fdiv ->
       fun cpu ->
         let fp = cpu.regs.Registers.fp in
         Array.unsafe_set fp di
           (Array.unsafe_get fp di /. Array.unsafe_get fp si);
         ret)
  | Insn.Falu (op, d, Insn.Fmem m) ->
    let pa = compile_addr m ~size:8 ~write:false in
    let di = freg_index d in
    (match op with
     | Insn.Fadd ->
       fun cpu ->
         let fp = cpu.regs.Registers.fp in
         Array.unsafe_set fp di
           (Array.unsafe_get fp di +. p_read_float cpu.phys (pa cpu));
         ret
     | Insn.Fsub ->
       fun cpu ->
         let fp = cpu.regs.Registers.fp in
         Array.unsafe_set fp di
           (Array.unsafe_get fp di -. p_read_float cpu.phys (pa cpu));
         ret
     | Insn.Fmul ->
       fun cpu ->
         let fp = cpu.regs.Registers.fp in
         Array.unsafe_set fp di
           (Array.unsafe_get fp di *. p_read_float cpu.phys (pa cpu));
         ret
     | Insn.Fdiv ->
       fun cpu ->
         let fp = cpu.regs.Registers.fp in
         Array.unsafe_set fp di
           (Array.unsafe_get fp di /. p_read_float cpu.phys (pa cpu));
         ret)
  | Insn.Fcmp (a, src) -> fun cpu -> eff_fcmp cpu a src; ret
  | Insn.Fneg r -> fun cpu -> fset cpu r (-.fget cpu r); ret
  | Insn.Fsqrt (d, src) -> fun cpu -> eff_fsqrt cpu d src; ret
  | Insn.Cvtsi2sd (d, src) -> fun cpu -> eff_cvtsi2sd cpu d src; ret
  | Insn.Cvtsd2si (d, src) -> fun cpu -> eff_cvtsd2si cpu d src; ret
  | Insn.Push (Insn.Reg s) ->
    let si = reg_index s in
    fun cpu ->
      let mmu = cpu.mmu in
      push32_via cpu mmu mmu.Seghw.Mmu.ss kss ~tr:None Seghw.Segreg.SS
        (Array.unsafe_get cpu.regs.Registers.gp si);
      ret
  | Insn.Push (Insn.Imm i) ->
    let v = i land 0xFFFFFFFF in
    fun cpu ->
      let mmu = cpu.mmu in
      push32_via cpu mmu mmu.Seghw.Mmu.ss kss ~tr:None Seghw.Segreg.SS v;
      ret
  | Insn.Push o -> fun cpu -> eff_push cpu o; ret
  | Insn.Pop (Insn.Reg d) ->
    let di = reg_index d in
    fun cpu ->
      let mmu = cpu.mmu in
      Array.unsafe_set cpu.regs.Registers.gp di
        (pop32_via cpu mmu mmu.Seghw.Mmu.ss kss ~tr:None Seghw.Segreg.SS
         land 0xFFFFFFFF);
      ret
  | Insn.Pop o -> fun cpu -> eff_pop cpu o; ret
  | Insn.Mov_from_seg (o, name) -> fun cpu -> eff_mov_from_seg cpu o name; ret
  | Insn.Bound (r, m) -> fun cpu -> eff_bound cpu r m; ret
  | Insn.Bndmk (b, m) -> fun cpu -> eff_bndmk cpu b m; ret
  | Insn.Bndcl (b, o) -> fun cpu -> eff_bndcl cpu b o; ret
  | Insn.Bndcu (b, o, size) -> fun cpu -> eff_bndcu cpu b o size; ret
  | Insn.Bndldx (b, m) -> fun cpu -> eff_bndldx cpu b m; ret
  | Insn.Bndstx (b, m) -> fun cpu -> eff_bndstx cpu b m; ret
  | Insn.Capmk (dst, lo, hi) -> fun cpu -> eff_capmk cpu dst lo hi; ret
  | Insn.Capchk (cap, m, size, write) ->
    fun cpu -> eff_capchk cpu cap m size write; ret
  | Insn.Capclr (vr, cr) -> fun cpu -> eff_capclr cpu vr cr; ret
  | (Insn.Jmp _ | Insn.Jcc _ | Insn.Call _ | Insn.Ret | Insn.Halt
    | Insn.Mov_to_seg _ | Insn.Lcall_gate _ | Insn.Int_syscall _
    | Insn.Callext _) as i ->
    (* Terminators are compiled by [compile_term] ([Program.partition]
       puts them last); keep a correct fallback anyway. *)
    fun cpu -> exec cpu idx i

(* Compile a block's last instruction into the closure producing the
   next EIP. Real terminators get their dispatch pre-resolved — the
   [targets] entry is read once, here. A block can also end on an
   ordinary instruction (the next one is a branch target), in which
   case the fall-through EIP is baked into the ordinary closure. *)
let compile_term code targets idx : t -> int =
  let next = idx + 1 in
  match (Array.get code idx : Insn.t) with
  | Insn.Jmp _ ->
    let tgt = Array.get targets idx in
    fun _ -> tgt
  | Insn.Jcc (c, _) ->
    (* The hot conditions are resolved to direct flag reads — each
       formula is [cond_holds]'s own line for that constructor, and the
       branch-direction equivalence suites pin them to it. Chaining
       does NOT instrument this closure: bias is sampled by the
       dispatch loop from the returned EIP (chain_jcc_tgt), so chained
       and unchained CPUs execute identical code. *)
    let tgt = Array.get targets idx in
    (match c with
     | Insn.Eq -> fun cpu -> if cpu.zf then tgt else next
     | Insn.Ne -> fun cpu -> if cpu.zf then next else tgt
     | Insn.Lt -> fun cpu -> if cpu.sf <> cpu.ovf then tgt else next
     | Insn.Le -> fun cpu -> if cpu.zf || cpu.sf <> cpu.ovf then tgt else next
     | Insn.Gt ->
       fun cpu -> if (not cpu.zf) && cpu.sf = cpu.ovf then tgt else next
     | Insn.Ge -> fun cpu -> if cpu.sf = cpu.ovf then tgt else next
     | _ -> fun cpu -> if cond_holds cpu c then tgt else next)
  | Insn.Call _ ->
    let tgt = Array.get targets idx in
    let kds = seg_slot Seghw.Segreg.DS in
    fun cpu ->
      let mmu = cpu.mmu in
      push32_via cpu mmu mmu.Seghw.Mmu.ds kds ~tr:None Seghw.Segreg.DS next;
      tgt
  | Insn.Ret ->
    let kds = seg_slot Seghw.Segreg.DS in
    fun cpu ->
      let mmu = cpu.mmu in
      pop32_via cpu mmu mmu.Seghw.Mmu.ds kds ~tr:None Seghw.Segreg.DS
  | Insn.Halt ->
    fun cpu ->
      cpu.status <- Halted;
      next
  | i ->
    if Program.block_terminator i then fun cpu -> exec cpu idx i
    else compile_insn code idx ~ret:next

(* The process-wide shared superblock cache. The closure compiler above
   captures nothing CPU-specific, so a program's compiled closure set
   is a pure function of its [Program.t] — keyed here by [Program.uid]
   identity. Every machine executing the same linked program (fleet
   re-checks, warm-pool restores, the serve loop's request machines)
   binds the one shared set instead of recompiling; [blocks_bound_total]
   counts those rebinds, the build counters only real compiles. Chains
   and traced closure sets stay per-CPU derived caches ([fuse_block]
   captures the owning CPU's arrays on purpose). Compilation happens
   under the lock — it is a few microseconds of closure allocation, and
   holding the lock gives the strict at-most-once-per-program
   guarantee the serve-scale tests pin.

   The table is an ephemeron keyed on the [Program.t] record: an entry
   lives exactly as long as its program does, and is swept by the GC
   the moment the last machine (or compile-cache slot) holding the
   program dies. A strong capacity-bounded table here was measured to
   cost the fuzzing fleet ~43% of its throughput — hundreds of dead
   programs' closure sets pinned in the major heap turn every major
   collection into a sweep of megabytes of garbage-that-isn't. The
   closures capture the program's code/targets arrays, never the
   [Program.t] record itself, so the ephemeron's key-in-data cycle
   rule holds and entries really are collectable. *)
module Ublk_tbl = Ephemeron.K1.Make (struct
  type nonrec t = Program.t

  let equal = ( == )
  let hash (p : Program.t) = p.Program.uid
end)

let shared_ublocks : (t -> int) array array Ublk_tbl.t = Ublk_tbl.create 64
let shared_ublocks_lock = Mutex.create ()

(* Bind (or compile) the program's closure set on the first [Block] run. *)
let build_ublocks t =
  let nb = Array.length t.block_starts in
  t.ublocks <-
    Mutex.protect shared_ublocks_lock (fun () ->
        match Ublk_tbl.find_opt shared_ublocks t.program with
        | Some ub ->
          ignore (Atomic.fetch_and_add blocks_bound_total nb : int);
          ub
        | None ->
          let code = t.code and targets = t.targets in
          let ub =
            Array.init nb (fun b ->
                let start = t.block_starts.(b) in
                let len = t.block_lens.(b) in
                Array.init len (fun j ->
                    if j = len - 1 then compile_term code targets (start + j)
                    else compile_insn code (start + j) ~ret:0))
          in
          Ublk_tbl.add shared_ublocks t.program ub;
          ignore (Atomic.fetch_and_add blocks_built_total nb : int);
          ignore
            (Atomic.fetch_and_add block_insns_total (Array.length t.code)
              : int);
          ub);
  t.ublocks_ready <- true

(* --- block chaining ----------------------------------------------------- *)

(* Dispatches of a head before each chain-build attempt (power of two:
   the counter is tested with [land]), the minimum Jcc observations
   before its bias is trusted, and the bias threshold (>= 15/16 one
   way). A chain caps at 64 blocks — past that the win per extra block
   is noise and a mispredicted tail just exits early anyway. *)
let chain_build_mask = 63
let chain_min_samples = 24
let chain_bias_num = 15
let chain_bias_den = 16
let chain_max_blocks = 64

(* The hot successor of block [b], as a code index, or -1: the unique
   target for static terminators (Jmp, Call, a segment-register load —
   whose closure commits all its architectural effects itself and falls
   through — or an ordinary instruction ending the block because the
   next one is a branch target), the dominant direction for a Jcc whose
   observed bias clears the threshold, and none for chain-enders — Ret
   (dynamic target), Halt, gates/syscalls, and host calls must re-enter
   the dispatch loop, both because their successor is unknowable here
   and because kernel/host code may observe state (clocks, retire
   counters) the chain runner's deferred commits would leave stale.
   Chaining through [Mov_to_seg] is what lets Cash's hot loops — which
   reload an array's segment register mid-body — run as one chain. *)
let hot_successor t b =
  let last = t.block_starts.(b) + t.block_lens.(b) - 1 in
  match t.code.(last) with
  | Insn.Jmp _ | Insn.Call _ -> t.targets.(last)
  | Insn.Jcc _ ->
    let tk = t.jcc_taken.(last) and fl = t.jcc_fall.(last) in
    let total = tk + fl in
    if total < chain_min_samples then -1
    else if tk * chain_bias_den >= total * chain_bias_num then t.targets.(last)
    else if fl * chain_bias_den >= total * chain_bias_num then last + 1
    else -1
  | Insn.Ret | Insn.Halt | Insn.Lcall_gate _
  | Insn.Int_syscall _ | Insn.Callext _ -> -1
  | _ -> last + 1

(* --- chain-time superinstruction fusion --------------------------------

   The chained closure set is recompiled from [code] rather than blitted
   from [ublocks]: adjacent instructions matching one of the peephole
   patterns in [fuse_block] collapse into a single flat closure, so a
   hot chained pass pays one dispatch call per *pattern* instead of per
   instruction. The megamorphic indirect call is the dominant
   interpreter cost (measured ~2.75ns of ~6.4ns/insn on the bench host;
   EXPERIMENTS.md PR 6), and — unlike the loop bookkeeping, which
   measures as free — it is exactly what fusion removes. Patterns come
   from the Cash backend's actual hot-loop output: stack-slot reloads
   around array accesses, push/pop traffic, the slot increment, and the
   compare-and-branch closing every counted loop.

   Exactness: each fused body is its constituent [compile_insn] bodies
   spliced in program order — the same [translate_via] calls (so
   limit-check and TLB counters advance identically), the same flag
   formulas, the same stat bumps. Fault precision comes from
   [t.fuse_sub]: the chain dispatch loop zeroes it before every op, a
   fused body stores [m] before running its [m]th constituent, and the
   unwind handler retires [c_base.(op) + fuse_sub] instructions of the
   faulting block — EIP lands on the exact constituent, bit-identical
   to the stepping engines. *)

(* A memory operand's addressing shape as data: fused bodies compute
   offsets with one short, predictable match instead of the per-operand
   closure call [compile_addr] would cost them. *)
type ashape =
  | A_base of int * int                (* gp slot, disp *)
  | A_base_x of int * int * int * int  (* base slot, index slot, scale, disp *)
  | A_x of int * int * int             (* index slot, scale, disp *)
  | A_abs of int                       (* disp, pre-masked *)

let[@inline] ashape_off gp = function
  | A_base (bi, d) -> (Array.unsafe_get gp bi + d) land 0xFFFFFFFF
  | A_base_x (bi, xi, sc, d) ->
    (Array.unsafe_get gp bi + (Array.unsafe_get gp xi * sc) + d)
    land 0xFFFFFFFF
  | A_x (xi, sc, d) -> ((Array.unsafe_get gp xi * sc) + d) land 0xFFFFFFFF
  | A_abs d -> d

let ashape_of (m : Insn.mem) =
  match (m.Insn.base, m.Insn.index) with
  | Some b, None -> A_base (reg_index b, m.Insn.disp)
  | Some b, Some (x, sc) ->
    A_base_x (reg_index b, reg_index x, sc, m.Insn.disp)
  | None, Some (x, sc) -> A_x (reg_index x, sc, m.Insn.disp)
  | None, None -> A_abs (m.Insn.disp land 0xFFFFFFFF)

(* The two 32-bit memory micro-ops every fused body is built from —
   [compile_insn]'s own load/store sequence, shared so the fused
   patterns cannot drift from it. *)
let[@inline] fuse_ld32 cpu gp ph mmu sr k seg sh di =
  let off = ashape_off gp sh in
  let phys =
    translate_via cpu mmu sr k ~tr:None ~seg_name:seg ~offset:off ~size:4
      ~write:false
  in
  Array.unsafe_set gp di (p_read32 ph phys)

let[@inline] fuse_st32 cpu gp ph mmu sr k seg sh si =
  let off = ashape_off gp sh in
  let phys =
    translate_via cpu mmu sr k ~tr:None ~seg_name:seg ~offset:off ~size:4
      ~write:true
  in
  p_write32 ph phys (Array.unsafe_get gp si)

(* Recompile block [b] for the chained closure set. Returns the ops,
   the per-op block-relative index of each op's first instruction, and
   the op count. An op covering the block's (ordinary) last instruction
   returns the fall-through EIP, exactly as [compile_term] bakes it;
   the fused compare-and-branch returns the branch decision itself.
   Anything unmatched reuses the block's existing [ublocks] closure, so
   fusion can only narrow, never change, behaviour. *)
let fuse_block t b =
  let start = t.block_starts.(b) and len = t.block_lens.(b) in
  let code = t.code in
  let gp = t.regs.Registers.gp in
  let ph = t.phys in
  let mmu = t.mmu in
  let kss = seg_slot Seghw.Segreg.SS in
  let ssr = mmu.Seghw.Mmu.ss in
  let ublk = t.ublocks.(b) in
  (* Resolve a memory operand once, at fuse time. *)
  let addr m =
    let seg = default_seg m in
    (seg, seg_field mmu seg, seg_slot seg, ashape_of m)
  in
  let fuse_triple j ret =
    if j + 3 > len then None
    else
      match (code.(start + j), code.(start + j + 1), code.(start + j + 2)) with
      (* The slot increment: load a stack slot, ALU it with an
         immediate, store it back. One op, still two translations (the
         limit-check and TLB counters are architectural). The base
         register must survive the load for the store address to be the
         same slot. *)
      | ( Insn.Mov
            ( Insn.Long,
              Insn.Reg d,
              Insn.Mem ({ Insn.base = Some rb; Insn.index = None; _ } as m1) ),
          Insn.Alu (op, Insn.Reg d2, Insn.Imm i),
          Insn.Mov
            ( Insn.Long,
              Insn.Mem ({ Insn.base = Some rb3; Insn.index = None; _ } as m3),
              Insn.Reg s3 ) )
        when d2 = d && s3 = d && rb3 = rb && rb <> d
             && m3.Insn.disp = m1.Insn.disp && m3.Insn.seg = m1.Insn.seg ->
        let seg = default_seg m1 in
        let sr = seg_field mmu seg and k = seg_slot seg in
        let bi = reg_index rb and di = reg_index d in
        let disp = m1.Insn.disp and bv = i land 0xFFFFFFFF in
        Some
          ( (fun cpu ->
              let off = (Array.unsafe_get gp bi + disp) land 0xFFFFFFFF in
              let phys =
                translate_via cpu mmu sr k ~tr:None ~seg_name:seg ~offset:off
                  ~size:4 ~write:false
              in
              Array.unsafe_set gp di (p_read32 ph phys);
              cpu.fuse_sub <- 1;
              Array.unsafe_set gp di
                (alu_result cpu op (Array.unsafe_get gp di) bv
                 land 0xFFFFFFFF);
              cpu.fuse_sub <- 2;
              let off2 = (Array.unsafe_get gp bi + disp) land 0xFFFFFFFF in
              let phys2 =
                translate_via cpu mmu sr k ~tr:None ~seg_name:seg ~offset:off2
                  ~size:4 ~write:true
              in
              p_write32 ph phys2 (Array.unsafe_get gp di);
              ret),
            3 )
      | _ -> None
  in
  let fuse_pair j ret =
    match (code.(start + j), code.(start + j + 1)) with
    (* Compare-and-branch: the pair that closes every counted loop,
       fused into the terminator op itself. *)
    | Insn.Cmp (ca, cb), Insn.Jcc (c, _) when ret <> 0 ->
      let tgt = Array.get t.targets (start + j + 1) in
      let next = start + j + 2 in
      (match (ca, cb) with
       | Insn.Reg ra, Insn.Imm i ->
         let ai = reg_index ra and bv = i land 0xFFFFFFFF in
         Some
           ( (fun cpu ->
               set_flags_sub cpu (Array.unsafe_get gp ai) bv;
               if cond_holds cpu c then tgt else next),
             2 )
       | Insn.Reg ra, Insn.Reg rb ->
         let ai = reg_index ra and bi = reg_index rb in
         Some
           ( (fun cpu ->
               set_flags_sub cpu (Array.unsafe_get gp ai)
                 (Array.unsafe_get gp bi);
               if cond_holds cpu c then tgt else next),
             2 )
       | Insn.Mem m, Insn.Imm i ->
         let seg, sr, k, sh = addr m in
         let bv = i land 0xFFFFFFFF in
         Some
           ( (fun cpu ->
               let off = ashape_off gp sh in
               let phys =
                 translate_via cpu mmu sr k ~tr:None ~seg_name:seg ~offset:off
                   ~size:4 ~write:false
               in
               set_flags_sub cpu (p_read32 ph phys) bv;
               if cond_holds cpu c then tgt else next),
             2 )
       | Insn.Mem m, Insn.Reg rb ->
         let seg, sr, k, sh = addr m in
         let bi = reg_index rb in
         Some
           ( (fun cpu ->
               let off = ashape_off gp sh in
               let phys =
                 translate_via cpu mmu sr k ~tr:None ~seg_name:seg ~offset:off
                   ~size:4 ~write:false
               in
               set_flags_sub cpu (p_read32 ph phys)
                 (Array.unsafe_get gp bi);
               if cond_holds cpu c then tgt else next),
             2 )
       | Insn.Reg ra, Insn.Mem m ->
         let seg, sr, k, sh = addr m in
         let ai = reg_index ra in
         Some
           ( (fun cpu ->
               let av = Array.unsafe_get gp ai in
               let off = ashape_off gp sh in
               let phys =
                 translate_via cpu mmu sr k ~tr:None ~seg_name:seg ~offset:off
                   ~size:4 ~write:false
               in
               set_flags_sub cpu av (p_read32 ph phys);
               if cond_holds cpu c then tgt else next),
             2 )
       | _ -> None)
    (* Load-load: a stack-slot reload feeding an array access. *)
    | ( Insn.Mov (Insn.Long, Insn.Reg d1, Insn.Mem m1),
        Insn.Mov (Insn.Long, Insn.Reg d2, Insn.Mem m2) ) ->
      let s1, r1, k1, h1 = addr m1 and di1 = reg_index d1 in
      let s2, r2, k2, h2 = addr m2 and di2 = reg_index d2 in
      Some
        ( (fun cpu ->
            fuse_ld32 cpu gp ph mmu r1 k1 s1 h1 di1;
            cpu.fuse_sub <- 1;
            fuse_ld32 cpu gp ph mmu r2 k2 s2 h2 di2;
            ret),
          2 )
    (* Store-load and store-store: spill traffic in the 3-register
       Cash configuration. *)
    | ( Insn.Mov (Insn.Long, Insn.Mem m1, Insn.Reg s1),
        Insn.Mov (Insn.Long, Insn.Reg d2, Insn.Mem m2) ) ->
      let g1, r1, k1, h1 = addr m1 and si1 = reg_index s1 in
      let g2, r2, k2, h2 = addr m2 and di2 = reg_index d2 in
      Some
        ( (fun cpu ->
            fuse_st32 cpu gp ph mmu r1 k1 g1 h1 si1;
            cpu.fuse_sub <- 1;
            fuse_ld32 cpu gp ph mmu r2 k2 g2 h2 di2;
            ret),
          2 )
    | ( Insn.Mov (Insn.Long, Insn.Mem m1, Insn.Reg s1),
        Insn.Mov (Insn.Long, Insn.Mem m2, Insn.Reg s2) ) ->
      let g1, r1, k1, h1 = addr m1 and si1 = reg_index s1 in
      let g2, r2, k2, h2 = addr m2 and si2 = reg_index s2 in
      Some
        ( (fun cpu ->
            fuse_st32 cpu gp ph mmu r1 k1 g1 h1 si1;
            cpu.fuse_sub <- 1;
            fuse_st32 cpu gp ph mmu r2 k2 g2 h2 si2;
            ret),
          2 )
    (* Load feeding a memory-source ALU: the array-element accumulate. *)
    | ( Insn.Mov (Insn.Long, Insn.Reg d1, Insn.Mem m1),
        Insn.Alu (op, Insn.Reg d2, Insn.Mem m2) ) ->
      let s1, r1, k1, h1 = addr m1 and di1 = reg_index d1 in
      let s2, r2, k2, h2 = addr m2 and di2 = reg_index d2 in
      Some
        ( (fun cpu ->
            fuse_ld32 cpu gp ph mmu r1 k1 s1 h1 di1;
            cpu.fuse_sub <- 1;
            let off = ashape_off gp h2 in
            let phys =
              translate_via cpu mmu r2 k2 ~tr:None ~seg_name:s2 ~offset:off
                ~size:4 ~write:false
            in
            let bv = p_read32 ph phys in
            Array.unsafe_set gp di2
              (alu_result cpu op (Array.unsafe_get gp di2) bv
               land 0xFFFFFFFF);
            ret),
          2 )
    (* Memory-source ALU feeding a push: argument/accumulator setup. *)
    | Insn.Alu (op, Insn.Reg d1, Insn.Mem m1), Insn.Push (Insn.Reg s2) ->
      let s1, r1, k1, h1 = addr m1 and di1 = reg_index d1 in
      let si2 = reg_index s2 in
      Some
        ( (fun cpu ->
            let off = ashape_off gp h1 in
            let phys =
              translate_via cpu mmu r1 k1 ~tr:None ~seg_name:s1 ~offset:off
                ~size:4 ~write:false
            in
            let bv = p_read32 ph phys in
            Array.unsafe_set gp di1
              (alu_result cpu op (Array.unsafe_get gp di1) bv
               land 0xFFFFFFFF);
            cpu.fuse_sub <- 1;
            push32_via cpu mmu ssr kss ~tr:None Seghw.Segreg.SS
              (Array.unsafe_get gp si2);
            ret),
          2 )
    (* Register-only ALU feeding a store. *)
    | Insn.Alu (op, Insn.Reg d1, Insn.Imm i), Insn.Mov (Insn.Long, Insn.Mem m2, Insn.Reg s2) ->
      let di1 = reg_index d1 and bv = i land 0xFFFFFFFF in
      let g2, r2, k2, h2 = addr m2 and si2 = reg_index s2 in
      Some
        ( (fun cpu ->
            Array.unsafe_set gp di1
              (alu_result cpu op (Array.unsafe_get gp di1) bv
               land 0xFFFFFFFF);
            cpu.fuse_sub <- 1;
            fuse_st32 cpu gp ph mmu r2 k2 g2 h2 si2;
            ret),
          2 )
    | Insn.Alu (op, Insn.Reg d1, Insn.Reg sr1), Insn.Mov (Insn.Long, Insn.Mem m2, Insn.Reg s2) ->
      let di1 = reg_index d1 and bi1 = reg_index sr1 in
      let g2, r2, k2, h2 = addr m2 and si2 = reg_index s2 in
      Some
        ( (fun cpu ->
            Array.unsafe_set gp di1
              (alu_result cpu op (Array.unsafe_get gp di1)
                 (Array.unsafe_get gp bi1)
               land 0xFFFFFFFF);
            cpu.fuse_sub <- 1;
            fuse_st32 cpu gp ph mmu r2 k2 g2 h2 si2;
            ret),
          2 )
    (* Push/pop traffic around loads and stores. *)
    | Insn.Push (Insn.Reg s1), Insn.Mov (Insn.Long, Insn.Reg d2, Insn.Mem m2) ->
      let si1 = reg_index s1 in
      let s2, r2, k2, h2 = addr m2 and di2 = reg_index d2 in
      Some
        ( (fun cpu ->
            push32_via cpu mmu ssr kss ~tr:None Seghw.Segreg.SS
              (Array.unsafe_get gp si1);
            cpu.fuse_sub <- 1;
            fuse_ld32 cpu gp ph mmu r2 k2 s2 h2 di2;
            ret),
          2 )
    | Insn.Mov (Insn.Long, Insn.Reg d1, Insn.Mem m1), Insn.Push (Insn.Reg s2) ->
      let s1, r1, k1, h1 = addr m1 and di1 = reg_index d1 in
      let si2 = reg_index s2 in
      Some
        ( (fun cpu ->
            fuse_ld32 cpu gp ph mmu r1 k1 s1 h1 di1;
            cpu.fuse_sub <- 1;
            push32_via cpu mmu ssr kss ~tr:None Seghw.Segreg.SS
              (Array.unsafe_get gp si2);
            ret),
          2 )
    | Insn.Mov (Insn.Long, Insn.Reg d1, Insn.Mem m1), Insn.Pop (Insn.Reg d2) ->
      let s1, r1, k1, h1 = addr m1 and di1 = reg_index d1 in
      let di2 = reg_index d2 in
      Some
        ( (fun cpu ->
            fuse_ld32 cpu gp ph mmu r1 k1 s1 h1 di1;
            cpu.fuse_sub <- 1;
            Array.unsafe_set gp di2
              (pop32_via cpu mmu ssr kss ~tr:None Seghw.Segreg.SS
               land 0xFFFFFFFF);
            ret),
          2 )
    | Insn.Pop (Insn.Reg d1), Insn.Mov (Insn.Long, Insn.Mem m2, Insn.Reg s2) ->
      let di1 = reg_index d1 in
      let g2, r2, k2, h2 = addr m2 and si2 = reg_index s2 in
      Some
        ( (fun cpu ->
            Array.unsafe_set gp di1
              (pop32_via cpu mmu ssr kss ~tr:None Seghw.Segreg.SS
               land 0xFFFFFFFF);
            cpu.fuse_sub <- 1;
            fuse_st32 cpu gp ph mmu r2 k2 g2 h2 si2;
            ret),
          2 )
    (* A stat label or register move in front of a load: the loop-body
       preamble. *)
    | Insn.Label _, Insn.Mov (Insn.Long, Insn.Reg d2, Insn.Mem m2) ->
      let r = Array.get t.stat_refs (start + j) in
      let s2, r2, k2, h2 = addr m2 and di2 = reg_index d2 in
      Some
        ( (fun cpu ->
            incr r;
            cpu.fuse_sub <- 1;
            fuse_ld32 cpu gp ph mmu r2 k2 s2 h2 di2;
            ret),
          2 )
    | ( Insn.Mov (Insn.Long, Insn.Reg d1, Insn.Reg s1),
        Insn.Mov (Insn.Long, Insn.Reg d2, Insn.Mem m2) ) ->
      let di1 = reg_index d1 and si1 = reg_index s1 in
      let s2, r2, k2, h2 = addr m2 and di2 = reg_index d2 in
      Some
        ( (fun cpu ->
            Array.unsafe_set gp di1 (Array.unsafe_get gp si1);
            cpu.fuse_sub <- 1;
            fuse_ld32 cpu gp ph mmu r2 k2 s2 h2 di2;
            ret),
          2 )
    | ( Insn.Mov (Insn.Long, Insn.Reg d1, Insn.Imm i),
        Insn.Mov (Insn.Long, Insn.Reg d2, Insn.Mem m2) ) ->
      let di1 = reg_index d1 and v1 = i land 0xFFFFFFFF in
      let s2, r2, k2, h2 = addr m2 and di2 = reg_index d2 in
      Some
        ( (fun cpu ->
            Array.unsafe_set gp di1 v1;
            cpu.fuse_sub <- 1;
            fuse_ld32 cpu gp ph mmu r2 k2 s2 h2 di2;
            ret),
          2 )
    | _ -> None
  in
  let rev_ops = ref [] and rev_base = ref [] and nops = ref 0 in
  let emit op base =
    rev_ops := op :: !rev_ops;
    rev_base := base :: !rev_base;
    incr nops
  in
  let j = ref 0 in
  while !j < len do
    let ret2 = if !j + 2 = len then start + len else 0 in
    let ret3 = if !j + 3 = len then start + len else 0 in
    match fuse_triple !j ret3 with
    | Some (op, k) ->
      emit op !j;
      j := !j + k
    | None -> (
      match if !j + 2 <= len then fuse_pair !j ret2 else None with
      | Some (op, k) ->
        emit op !j;
        j := !j + k
      | None ->
        emit ublk.(!j) !j;
        incr j)
  done;
  (Array.of_list (List.rev !rev_ops), Array.of_list (List.rev !rev_base),
   !nops)

(* Build the chain rooted at [head]: follow hot successors until a
   chain-ender, an unstable branch, a repeated block, or the cap, then
   concatenate the member blocks' fused closures ([fuse_block]) into
   one contiguous array. Returns [None] (and, for heads whose
   terminator can never produce a stable successor, poisons the counter
   so the dispatch loop stops retrying) when there is nothing to chain:
   fewer than two blocks and no self-loop. *)
let build_chain t head =
  let limit = Array.length t.code in
  let rec collect acc n b =
    let s = if n >= chain_max_blocks then -1 else hot_successor t b in
    if s < 0 || s >= limit then (List.rev acc, false)
    else
      let sb = t.block_at.(s) in
      if sb < 0 then (List.rev acc, false)
      else if sb = head then (List.rev acc, true)
      else if List.mem sb acc then (List.rev acc, false)
      else collect (sb :: acc) (n + 1) sb
  in
  let blocks, loops = collect [ head ] 1 head in
  if (not loops) && List.compare_length_with blocks 2 < 0 then begin
    (match t.code.(t.block_starts.(head) + t.block_lens.(head) - 1) with
     | Insn.Ret | Insn.Halt | Insn.Lcall_gate _
     | Insn.Int_syscall _ | Insn.Callext _ -> t.chain_execs.(head) <- -1
     | _ -> ());
    None
  end
  else begin
    let ids = Array.of_list blocks in
    let n = Array.length ids in
    let c_starts = Array.map (fun b -> t.block_starts.(b)) ids in
    let parts = Array.map (fun b -> fuse_block t b) ids in
    let c_nops = Array.map (fun (_, _, nops) -> nops) parts in
    let c_off = Array.make n 0 in
    let c_pre_insns = Array.make (n + 1) 0 in
    let c_pre_cycles = Array.make (n + 1) 0 in
    let total_ops = ref 0 in
    for i = 0 to n - 1 do
      c_off.(i) <- !total_ops;
      total_ops := !total_ops + c_nops.(i);
      c_pre_insns.(i + 1) <- c_pre_insns.(i) + t.block_lens.(ids.(i));
      c_pre_cycles.(i + 1) <- c_pre_cycles.(i) + t.block_cost.(ids.(i))
    done;
    let c_ops = Array.make !total_ops (fun (_ : t) -> 0) in
    let c_base = Array.make !total_ops 0 in
    Array.iteri
      (fun i (ops, base, nops) ->
        Array.blit ops 0 c_ops c_off.(i) nops;
        Array.blit base 0 c_base c_off.(i) nops)
      parts;
    let c_expected =
      Array.init n (fun i ->
          if i + 1 < n then c_starts.(i + 1)
          else if loops then c_starts.(0)
          else -1)
    in
    ignore (Atomic.fetch_and_add chains_built_total 1 : int);
    ignore (Atomic.fetch_and_add chain_blocks_total n : int);
    ignore (Atomic.fetch_and_add chain_insns_total c_pre_insns.(n) : int);
    Some
      {
        c_ops;
        c_off;
        c_starts;
        c_nops;
        c_base;
        c_expected;
        c_pre_insns;
        c_pre_cycles;
        c_blocks = n;
        c_total_insns = c_pre_insns.(n);
        c_total_cycles = c_pre_cycles.(n);
        c_loop = loops;
      }
  end

(* --- the traced closure set --------------------------------------------- *)

(* The second closure set, for traced runs: each instruction closure is
   [exec] itself — so every Limit_check / Tlb_hit / Tlb_miss /
   Segreg_load event flows through [translate]'s live [mmu.trace]
   exactly as the stepping engines emit it — wrapped with the per-site
   retire bump the traced stepping loop does. Dispatched per block by
   [run]'s traced [Block] arm, so steady-state traced execution stops
   paying the fetch / status / fuel test per instruction. The bump
   happens after [exec] returns, so a faulting instruction stays
   unattributed, same as stepping. *)
let compile_traced t idx : t -> int =
  let i = Array.get t.code idx in
  let prof = t.prof_hits in
  match i with
  | Insn.Jcc _ when t.chain_enabled ->
    (* Keep feeding the branch-bias counters under trace, so a traced
       warm-up informs later chaining like an untraced one. (A Jcc
       whose target is its own fall-through counts as taken — the two
       directions are indistinguishable by [exec]'s return value, and
       identical in effect.) *)
    let tgt = Array.get t.targets idx in
    let tk = t.jcc_taken and fl = t.jcc_fall in
    fun cpu ->
      let next = exec cpu idx i in
      if next = tgt then
        Array.unsafe_set tk idx (Array.unsafe_get tk idx + 1)
      else Array.unsafe_set fl idx (Array.unsafe_get fl idx + 1);
      Array.unsafe_set prof idx (Array.unsafe_get prof idx + 1);
      next
  | _ ->
    fun cpu ->
      let next = exec cpu idx i in
      Array.unsafe_set prof idx (Array.unsafe_get prof idx + 1);
      next

let build_tblocks t =
  (* [set_sink] sized [prof_hits] before any traced run reaches here;
     re-size defensively anyway since the closures capture the array. *)
  if Array.length t.prof_hits <> Array.length t.code then
    t.prof_hits <- Array.make (Array.length t.code) 0;
  let nb = Array.length t.block_starts in
  t.tblocks <-
    Array.init nb (fun b ->
        let start = t.block_starts.(b) in
        Array.init t.block_lens.(b) (fun j -> compile_traced t (start + j)));
  t.tblocks_ready <- true

(* --- the reference engine (the equivalence oracle) --------------------- *)

(* The pre-lowering interpreter, preserved verbatim: label hashtable
   lookups on the branch path, a cost-model match per executed
   instruction, string-keyed stat bumps, and an [Exit] exception per
   control transfer. Semantically authoritative; the pre-decoded engine
   must match it bit for bit. *)
let exec_reference t (i : Insn.t) =
  let next = t.eip + 1 in
  (match i with
   | Insn.Label l -> if Program.is_stat_label l then bump_stat t l
   | Insn.Nop -> ()
   | Insn.Halt -> t.status <- Halted
   | Insn.Mov (w, dst, src) -> eff_mov t w dst src
   | Insn.Lea (r, m) -> eff_lea t r m
   | Insn.Movsx (r, src, w) -> eff_movsx t r src w
   | Insn.Movzx (r, src, w) -> eff_movzx t r src w
   | Insn.Alu (op, dst, src) -> eff_alu t op dst src
   | Insn.Idiv src -> eff_idiv t src
   | Insn.Neg o -> eff_neg t o
   | Insn.Inc o -> eff_inc t o
   | Insn.Dec o -> eff_dec t o
   | Insn.Cmp (a, b) -> eff_cmp t a b
   | Insn.Test (a, b) -> eff_test t a b
   | Insn.Setcc (c, r) -> eff_setcc t c r
   | Insn.Fmov (dst, src) -> eff_fmov t dst src
   | Insn.Fload_const (r, f) -> fset t r f
   | Insn.Falu (op, dst, src) -> eff_falu t op dst src
   | Insn.Fcmp (a, src) -> eff_fcmp t a src
   | Insn.Fneg r -> fset t r (-.fget t r)
   | Insn.Fsqrt (d, src) -> eff_fsqrt t d src
   | Insn.Cvtsi2sd (d, src) -> eff_cvtsi2sd t d src
   | Insn.Cvtsd2si (d, src) -> eff_cvtsd2si t d src
   | Insn.Jmp l ->
     t.eip <- Program.resolve t.program l;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit (* handled by caller: eip already set *)
   | Insn.Jcc (c, l) ->
     if cond_holds t c then begin
       t.eip <- Program.resolve t.program l;
       t.insns_executed <- t.insns_executed + 1;
       t.cycles <- t.cycles + Cost_model.cost t.costs i;
       raise Exit
     end
   | Insn.Call l ->
     push32 t next ~seg:Seghw.Segreg.DS;
     t.eip <- Program.resolve t.program l;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit
   | Insn.Ret ->
     let ra = pop32 t ~seg:Seghw.Segreg.DS in
     t.eip <- ra;
     t.insns_executed <- t.insns_executed + 1;
     t.cycles <- t.cycles + Cost_model.cost t.costs i;
     raise Exit
   | Insn.Push o -> eff_push t o
   | Insn.Pop o -> eff_pop t o
   | Insn.Mov_to_seg (name, o) -> eff_mov_to_seg t name o
   | Insn.Mov_from_seg (o, name) -> eff_mov_from_seg t o name
   | Insn.Lcall_gate sel -> t.kernel t ~gate:(`Gate sel)
   | Insn.Int_syscall n -> t.kernel t ~gate:(`Int n)
   | Insn.Bound (r, m) -> eff_bound t r m
   | Insn.Bndmk (b, m) -> eff_bndmk t b m
   | Insn.Bndcl (b, o) -> eff_bndcl t b o
   | Insn.Bndcu (b, o, size) -> eff_bndcu t b o size
   | Insn.Bndldx (b, m) -> eff_bndldx t b m
   | Insn.Bndstx (b, m) -> eff_bndstx t b m
   | Insn.Capmk (dst, lo, hi) -> eff_capmk t dst lo hi
   | Insn.Capchk (cap, m, size, write) -> eff_capchk t cap m size write
   | Insn.Capclr (vr, cr) -> eff_capclr t vr cr
   | Insn.Callext name -> eff_callext t name);
  t.eip <- next;
  t.insns_executed <- t.insns_executed + 1;
  t.cycles <- t.cycles + Cost_model.cost t.costs i

let step_reference t =
  if t.eip < 0 || t.eip >= Array.length t.program.Program.code then
    Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" t.eip);
  let eip = t.eip in
  let i = t.program.Program.code.(eip) in
  (try exec_reference t i with
   | Exit -> () (* control transfer already applied *));
  (* A faulting instruction propagates past this point unretired, so it
     is not attributed — matching the pre-decoded engine. *)
  match t.sink with
  | None -> ()
  | Some _ -> t.prof_hits.(eip) <- t.prof_hits.(eip) + 1

(* --- stepping and the run loop ----------------------------------------- *)

let step t =
  match t.status with
  | Running ->
    (match t.engine with
     (* Single-stepping a [Block] CPU steps per instruction (block
        dispatch only pays off across a whole [run]); the per-segment
        fast path stays active via [t.fm_enabled]. *)
     | Predecoded | Block -> step_predecoded t
     | Reference -> step_reference t)
  | Halted | Faulted _ -> ()

(* Commit a partially executed block after an exception: [k] body
   instructions starting at [start] retired, EIP resting on the
   faulting instruction — byte-identical to where the per-instruction
   engines would stop. Cold path: per-site costs are summed on
   demand. *)
let commit_partial t start k =
  if k > 0 then begin
    t.insns_executed <- t.insns_executed + k;
    let acc = ref 0 in
    for i = start to start + k - 1 do
      acc := !acc + Array.unsafe_get t.cost_tab i
    done;
    t.cycles <- t.cycles + !acc
  end;
  t.eip <- start + k

(* Exactly one Fault event per architectural fault: raised faults
   funnel through [run]'s single handler, which calls this before
   recording the status. *)
let emit_fault_event t (f : Seghw.Fault.t) =
  match t.sink with
  | None -> ()
  | Some s ->
    let cls, address, selector =
      match f with
      | Seghw.Fault.General_protection _ -> (`Gp, None, None)
      | Seghw.Fault.Stack_fault _ -> (`Ss, None, None)
      | Seghw.Fault.Page_fault { linear; _ } -> (`Pf, Some linear, None)
      | Seghw.Fault.Not_present sel -> (`Np, None, Some sel)
      | Seghw.Fault.Invalid_opcode _ -> (`Ud, None, None)
      | Seghw.Fault.Bound_range _ -> (`Br, None, None)
    in
    Trace.emit s
      (Trace.Fault
         { cls; detail = Seghw.Fault.to_string f; address; selector })

(* Run until halt, fault, or fuel exhaustion. Returns the final status.
   The fuel check is [>=]: at most [fuel] instructions execute. *)
let run ?(fuel = 4_000_000_000) t =
  let start_insns = t.insns_executed in
  Fun.protect
    ~finally:(fun () ->
      ignore
        (Atomic.fetch_and_add retired_total (t.insns_executed - start_insns)
          : int))
    (fun () ->
      try
        match t.engine, t.sink with
        | Predecoded, None ->
          (* The hot loop. Hoist the lowered arrays out of the loop and
             test [status] with a match — no polymorphic comparison per
             step. Untraced: the sink is tested once, out here, so the
             per-instruction path is exactly the pre-tracing one. *)
          let code = t.code in
          let cost_tab = t.cost_tab in
          let limit = Array.length code in
          while (match t.status with Running -> true | _ -> false) do
            if t.insns_executed >= fuel then raise Out_of_fuel;
            let eip = t.eip in
            if eip < 0 || eip >= limit then
              Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" eip);
            let next = exec t eip (Array.unsafe_get code eip) in
            t.eip <- next;
            t.insns_executed <- t.insns_executed + 1;
            t.cycles <- t.cycles + Array.unsafe_get cost_tab eip
          done
        | Block, None ->
          (* The superblock loop: one dispatch, one EIP store, and one
             instruction/cycle commit per straight-line region. The
             body closures run with [t.eip] parked at the block start;
             any exception (#GP/#SS/#PF/#BR from a closure, or anything
             a terminator's kernel/external raises) unwinds through
             [commit_partial], which retires exactly the completed
             prefix and leaves EIP on the faulting instruction — after
             which the per-instruction fault semantics below apply
             unchanged. Entry at a non-block-start EIP (a RET to a
             computed address) and blocks straddling the fuel budget
             fall back to exact per-instruction stepping until the loop
             re-synchronises on a block start.

             With chaining on, a head whose chain is installed runs the
             chain instead: member blocks execute back-to-back from the
             contiguous closure array, with the instruction/cycle
             commits deferred to pass boundaries (prefix sums on a
             mid-pass exit) so a hot loop costs one dispatch and two
             counter stores per pass, not per block. Correctness relies
             on chained terminators (Jmp / biased Jcc / Call /
             segment-register load / fall-through) never touching
             [status] or reading the deferred counters; everything that
             can — Ret, Halt, gates, host calls — ends a chain by
             construction. A chain is entered only when one full pass
             fits the remaining fuel; a mid-pass exit (unexpected Jcc
             direction) just commits what ran and re-enters the
             dispatch loop, and an exception unwinds through the same
             handler as a plain block with the pass prefix committed
             first — bit-exact per-instruction state either way. *)
          if not t.ublocks_ready then build_ublocks t;
          let code = t.code in
          let cost_tab = t.cost_tab in
          let limit = Array.length code in
          let block_at = t.block_at in
          let lens = t.block_lens in
          let bcost = t.block_cost in
          let ublocks = t.ublocks in
          let chaining = t.chain_enabled in
          let chains = t.chains in
          let chain_execs = t.chain_execs in
          (* [j] counts completed closures of the block in flight, -1
             whenever execution is not inside a block (the
             per-instruction fallback keeps exact per-step commits on
             its own); [bstart] is that block's first instruction.
             While a chain pass runs, [cstarts]/[cpre_i]/[cpre_c]
             expose its block starts and prefix sums to the unwind
             handler — the pass's earlier blocks are committed from one
             prefix-sum read, so the chain's inner loop carries no
             accumulators at all ([cstarts] empty = not in a chain).
             Hoisted: the hot loop allocates nothing. *)
          let jcc_tgt = t.chain_jcc_tgt in
          let jcc_site = t.chain_jcc_site in
          let jtk = t.jcc_taken in
          let jfl = t.jcc_fall in
          let j = ref (-1) in
          let bstart = ref 0 in
          let cstarts = ref [||] in
          let cpre_i = ref [||] in
          let cpre_c = ref [||] in
          let coffs = ref [||] in
          let cbase = ref [||] in
          (try
             while (match t.status with Running -> true | _ -> false) do
               j := -1;
               let eip = t.eip in
               if eip < 0 || eip >= limit then
                 Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" eip);
               let bid = Array.unsafe_get block_at eip in
               let chain =
                 if chaining && bid >= 0 then Array.unsafe_get chains bid
                 else None
               in
               match chain with
               | Some c when t.insns_executed + c.c_total_insns <= fuel ->
                 let ops = c.c_ops in
                 let offs = c.c_off in
                 let starts = c.c_starts in
                 let cnops = c.c_nops in
                 let cexp = c.c_expected in
                 let pre_i = c.c_pre_insns in
                 let pre_c = c.c_pre_cycles in
                 let nb = c.c_blocks in
                 let total_i = c.c_total_insns in
                 let total_c = c.c_total_cycles in
                 cstarts := starts;
                 cpre_i := pre_i;
                 cpre_c := pre_c;
                 coffs := offs;
                 cbase := c.c_base;
                 let finished = ref false in
                 while not !finished do
                   let bi = ref 0 in
                   let live = ref true in
                   while !live && !bi < nb do
                     let off = Array.unsafe_get offs !bi in
                     let n1 = Array.unsafe_get cnops !bi - 1 in
                     bstart := Array.unsafe_get starts !bi;
                     j := 0;
                     while !j < n1 do
                       t.fuse_sub <- 0;
                       ignore ((Array.unsafe_get ops (off + !j)) t : int);
                       incr j
                     done;
                     t.fuse_sub <- 0;
                     let next = (Array.unsafe_get ops (off + n1)) t in
                     j := -1;
                     if next = Array.unsafe_get cexp !bi then incr bi
                     else begin
                       (* Mid-pass exit (unstable branch, Ret tail):
                          commit the completed prefix, this block
                          included, from the prefix sums. *)
                       t.eip <- next;
                       t.insns_executed <-
                         t.insns_executed + Array.unsafe_get pre_i (!bi + 1);
                       t.cycles <-
                         t.cycles + Array.unsafe_get pre_c (!bi + 1);
                       live := false;
                       finished := true
                     end
                   done;
                   if !live then begin
                     (* Full pass completed: commit it whole. Only a
                        looping chain ends a pass live (a non-loop tail
                        expects -1, which no terminator returns): go
                        around again while a whole pass still fits the
                        fuel budget, else park on the head and let the
                        dispatch loop finish the tail per-block /
                        per-instruction. *)
                     t.insns_executed <- t.insns_executed + total_i;
                     t.cycles <- t.cycles + total_c;
                     if t.insns_executed + total_i > fuel then begin
                       t.eip <- Array.unsafe_get starts 0;
                       finished := true
                     end
                   end
                 done;
                 cstarts := [||]
               | _ ->
                 if
                   bid >= 0
                   && t.insns_executed + Array.unsafe_get lens bid <= fuel
                 then begin
                   let blk = Array.unsafe_get ublocks bid in
                   let n1 = Array.length blk - 1 in
                   bstart := eip;
                   j := 0;
                   while !j < n1 do
                     ignore ((Array.unsafe_get blk !j) t : int);
                     incr j
                   done;
                   let next = (Array.unsafe_get blk n1) t in
                   t.eip <- next;
                   t.insns_executed <- t.insns_executed + n1 + 1;
                   t.cycles <- t.cycles + Array.unsafe_get bcost bid;
                   if chaining then begin
                     (* Unchained head (a present chain means only fuel
                        kept us out of it): sample the terminator's
                        direction for Jcc layout decisions — off the
                        returned EIP, so the closures stay
                        uninstrumented — and periodically try to grow a
                        chain. [-1] poisons heads that can never
                        chain. *)
                     match Array.unsafe_get chains bid with
                     | Some _ -> ()
                     | None ->
                       let e = Array.unsafe_get chain_execs bid in
                       if e >= 0 then begin
                         let tgt = Array.unsafe_get jcc_tgt bid in
                         (if tgt <> min_int then begin
                            let site = Array.unsafe_get jcc_site bid in
                            if next = tgt then
                              Array.unsafe_set jtk site
                                (Array.unsafe_get jtk site + 1)
                            else
                              Array.unsafe_set jfl site
                                (Array.unsafe_get jfl site + 1)
                          end);
                         let e = e + 1 in
                         Array.unsafe_set chain_execs bid e;
                         if e land chain_build_mask = 0 then
                           Array.unsafe_set chains bid (build_chain t bid)
                       end
                   end
                 end
                 else begin
                   if t.insns_executed >= fuel then raise Out_of_fuel;
                   let next = exec t eip (Array.unsafe_get code eip) in
                   t.eip <- next;
                   t.insns_executed <- t.insns_executed + 1;
                   t.cycles <- t.cycles + Array.unsafe_get cost_tab eip
                 end
             done
           with e ->
             (* Unwinding out of a block: if it ran inside a chain pass
                ([cstarts] non-empty), the pass's earlier blocks commit
                from the chain's prefix sums (the faulting block's slot
                is found by its start index — chain members are
                distinct); then the faulting op's completed
                constituents retire — its first instruction's
                block-relative index ([c_base]) plus the fused
                sub-instruction cursor ([fuse_sub], zeroed by the
                dispatch loop before every op). Outside a chain, [!j]
                ops are [!j] instructions (plain blocks never fuse).
                Either way EIP comes to rest on the exact faulting
                instruction. *)
             (if !j >= 0 then begin
                let st = !cstarts in
                if Array.length st > 0 then begin
                  let bi = ref 0 in
                  while Array.unsafe_get st !bi <> !bstart do incr bi done;
                  t.insns_executed <- t.insns_executed + (!cpre_i).(!bi);
                  t.cycles <- t.cycles + (!cpre_c).(!bi);
                  let op = (!coffs).(!bi) + !j in
                  commit_partial t !bstart ((!cbase).(op) + t.fuse_sub)
                end
                else commit_partial t !bstart !j
              end);
             raise e)
        | Predecoded, Some _ ->
          (* The traced stepping variant: identical commits plus one
             per-site retire count, the profiler's raw input.
             [prof_hits] is sized to [code] by [set_sink]. *)
          let code = t.code in
          let cost_tab = t.cost_tab in
          let prof = t.prof_hits in
          let limit = Array.length code in
          while (match t.status with Running -> true | _ -> false) do
            if t.insns_executed >= fuel then raise Out_of_fuel;
            let eip = t.eip in
            if eip < 0 || eip >= limit then
              Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" eip);
            let next = exec t eip (Array.unsafe_get code eip) in
            t.eip <- next;
            t.insns_executed <- t.insns_executed + 1;
            t.cycles <- t.cycles + Array.unsafe_get cost_tab eip;
            Array.unsafe_set prof eip (Array.unsafe_get prof eip + 1)
          done
        | Block, Some _ ->
          (* Traced superblock dispatch over the traced closure set:
             each closure is [exec] + the per-site retire bump, so the
             event stream, attribution, and fault behaviour are the
             stepping loop's exactly — but fetch, status, and fuel are
             tested once per block. Same fuel pre-check, mid-block
             entry / straddle fallback, and partial-commit unwind as
             the untraced arm. Chains are not used under trace: the
             per-block commit already amortises dispatch, and the
             traced oracles want the simplest exact structure. Branch
             bias is still sampled (from the terminator's returned EIP,
             like the untraced loop) so a traced run's sink exports the
             observed per-site histogram; no chain is ever built or
             entered here. *)
          if not t.tblocks_ready then build_tblocks t;
          let code = t.code in
          let cost_tab = t.cost_tab in
          let prof = t.prof_hits in
          let limit = Array.length code in
          let block_at = t.block_at in
          let lens = t.block_lens in
          let bcost = t.block_cost in
          let tblocks = t.tblocks in
          let chaining = t.chain_enabled in
          let jcc_tgt = t.chain_jcc_tgt in
          let jcc_site = t.chain_jcc_site in
          let jtk = t.jcc_taken in
          let jfl = t.jcc_fall in
          let j = ref (-1) in
          (try
             while (match t.status with Running -> true | _ -> false) do
               j := -1;
               let eip = t.eip in
               if eip < 0 || eip >= limit then
                 Seghw.Fault.gp (Printf.sprintf "EIP %d outside code" eip);
               let bid = Array.unsafe_get block_at eip in
               if
                 bid >= 0
                 && t.insns_executed + Array.unsafe_get lens bid <= fuel
               then begin
                 let blk = Array.unsafe_get tblocks bid in
                 let n1 = Array.length blk - 1 in
                 j := 0;
                 while !j < n1 do
                   ignore ((Array.unsafe_get blk !j) t : int);
                   incr j
                 done;
                 let next = (Array.unsafe_get blk n1) t in
                 t.eip <- next;
                 t.insns_executed <- t.insns_executed + n1 + 1;
                 t.cycles <- t.cycles + Array.unsafe_get bcost bid;
                 if chaining then begin
                   let tgt = Array.unsafe_get jcc_tgt bid in
                   if tgt <> min_int then begin
                     let site = Array.unsafe_get jcc_site bid in
                     if next = tgt then
                       Array.unsafe_set jtk site
                         (Array.unsafe_get jtk site + 1)
                     else
                       Array.unsafe_set jfl site
                         (Array.unsafe_get jfl site + 1)
                   end
                 end
               end
               else begin
                 if t.insns_executed >= fuel then raise Out_of_fuel;
                 let next = exec t eip (Array.unsafe_get code eip) in
                 t.eip <- next;
                 t.insns_executed <- t.insns_executed + 1;
                 t.cycles <- t.cycles + Array.unsafe_get cost_tab eip;
                 Array.unsafe_set prof eip (Array.unsafe_get prof eip + 1)
               end
             done
           with e ->
             (* Completed closures bumped their own retire counts; the
                architectural prefix commits here, EIP resting on the
                faulting instruction, which stays unattributed — same
                as stepping. *)
             (if !j >= 0 then commit_partial t t.eip !j);
             raise e)
        | Reference, _ ->
          while (match t.status with Running -> true | _ -> false) do
            if t.insns_executed >= fuel then raise Out_of_fuel;
            step_reference t
          done
      with Seghw.Fault.Fault f ->
        emit_fault_event t f;
        t.status <- Faulted f);
  t.status

(* --- the cycle profiler ------------------------------------------------- *)

(* Attribute per-site retire counts to function symbols: a symbol is any
   label that is neither a ["__stat_"] counter nor a [".L"]-prefixed
   local (codegen's loop/branch labels), i.e. function entries plus
   "_start". Sites before the first symbol fall into "<prelude>".
   Cycles per site are [hits * cost_tab] — the per-site cost is fixed,
   so this is exact, not sampled. Returns [(symbol, insns, cycles)]
   sorted by cycles descending; empty without a traced run. *)
let profile t =
  if Array.length t.prof_hits = 0 then []
  else begin
    let tbl = Hashtbl.create 31 in
    let order = ref [] in
    let current = ref "<prelude>" in
    Array.iteri
      (fun i insn ->
        (match insn with
         | Insn.Label l
           when String.length l > 0 && l.[0] <> '.'
                && not (Program.is_stat_label l) ->
           current := l
         | _ -> ());
        let hits = t.prof_hits.(i) in
        if hits > 0 then begin
          let cycles = hits * t.cost_tab.(i) in
          match Hashtbl.find_opt tbl !current with
          | Some (hi, cy) ->
            hi := !hi + hits;
            cy := !cy + cycles
          | None ->
            Hashtbl.add tbl !current (ref hits, ref cycles);
            order := !current :: !order
        end)
      t.code;
    List.rev_map
      (fun sym ->
        let hi, cy = Hashtbl.find tbl sym in
        (sym, !hi, !cy))
      !order
    |> List.sort (fun (na, _, ca) (nb, _, cb) ->
           match compare cb ca with 0 -> String.compare na nb | n -> n)
  end

(* Fold a finished traced run's attribution — and, under the block
   engine with chaining, the per-site branch-bias counts that drive
   chain layout — into its sink (called once per run by the facade;
   [prof_hits] and the bias arrays are cumulative, so callers that
   re-run a CPU must merge only once). *)
let commit_profile t =
  match t.sink with
  | None -> ()
  | Some s ->
    List.iter
      (fun (sym, insns, cycles) ->
        Trace.add_attribution s sym ~insns ~cycles)
      (profile t);
    List.iter
      (fun (site, taken, fall) ->
        Trace.add_branch_bias s ~site ~taken ~not_taken:fall)
      (branch_bias t)
