(** General-purpose and floating-point register files.

    Integer registers hold 32-bit unsigned values; arithmetic masks back
    to 32 bits so wrap-around behaves like hardware (which Cash's
    lower-bound check relies on). Floating-point registers model SSE2
    scalar doubles (XMM0-7). *)

type reg = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP
type freg = XMM0 | XMM1 | XMM2 | XMM3 | XMM4 | XMM5 | XMM6 | XMM7

val reg_index : reg -> int
val freg_index : freg -> int

(** @raise Invalid_argument outside 0..7. *)
val freg_of_int : int -> freg

val reg_name : reg -> string
val freg_name : freg -> string

(** The register file, exposed concretely so the execution engine's hot
    path compiles register access to direct array loads (under dune's dev
    profile, cross-module calls are opaque and cannot be inlined).
    Invariant: every [gp] element is in [0, 2{^32}); writers must mask.
    Use {!get}/{!set} everywhere speed does not matter. *)
type t = {
  gp : int array;     (** 8 general-purpose registers *)
  fp : float array;   (** 8 scalar-double registers *)
}

(** Truncate to 32 bits. *)
val mask32 : int -> int

(** Interpret a 32-bit unsigned value as signed two's complement. *)
val to_signed : int -> int

(** Encode a signed value as 32-bit unsigned. *)
val of_signed : int -> int

val create : unit -> t
val get : t -> reg -> int
val set : t -> reg -> int -> unit
val getf : t -> freg -> float
val setf : t -> freg -> float -> unit
val reset : t -> unit
