(** The cycle cost model, calibrated to the paper's 1.1 GHz Pentium III.

    Anchors taken from the paper: segment-register load = 4 cycles
    (§3.3); [bound] = 7 cycles vs 6 for its plain-instruction equivalent
    (§2); [cash_modify_ldt] call gate = 253 cycles and [modify_ldt]
    int-0x80 = 781 cycles (§3.6). *)

type t = {
  alu : int;
  mem_access : int;
  imul : int;
  idiv : int;
  branch : int;
  call : int;
  ret : int;
  push_pop : int;
  seg_load : int;
  seg_store : int;
  bound : int;
  fp_alu : int;
  fp_div : int;
  fp_sqrt : int;
  fp_mov : int;
  cvt : int;
  call_gate : int;
  int_syscall : int;
  bndmk : int;  (** make bounds into a BND register *)
  bndcl : int;  (** lower-bound check *)
  bndcu : int;  (** upper-bound check *)
  bndldx : int;  (** bound-table load (two-level walk) *)
  bndstx : int;  (** bound-table store (two-level walk) *)
  capmk : int;  (** intern a capability *)
  capchk : int;  (** capability tag + range check *)
  capclr : int;  (** conditional tag clear after pointer arithmetic *)
}

(** The calibrated P-III model. *)
val pentium3 : t

(** Cycle cost of one instruction under the model; memory operands add
    [mem_access] each. *)
val cost : t -> Insn.t -> int

(** [precompute t code] tabulates {!cost} for every instruction, one
    entry per index of [code]. Valid for the program's lifetime: per-site
    cost depends only on the instruction itself. *)
val precompute : t -> Insn.t array -> int array
