(** Physical memory: a dense, growable, little-endian byte store. Frames
    are handed out sequentially by the paging unit, so a doubling buffer
    from address 0 suffices. *)

(** Exposed concretely so the execution engine's flattened memory fast
    path can access the store with direct loads (cross-module calls are
    opaque under dune's dev profile). Engine contract: an in-capacity
    access may touch [data] directly, but must keep [high_water] exactly
    as the accessors below would; anything that grows the buffer goes
    through the module. *)
type t = {
  mutable data : Bytes.t;
  mutable high_water : int;  (** highest address ever written + 1 *)
}

val create : ?initial:int -> unit -> t

(** Hand a dead process's backing buffer to a domain-local free list;
    a later [create] on this domain re-zeroes its dirtied prefix and
    reuses the allocation instead of pushing another multi-megabyte
    zeroed Bytes through the major heap. Only call when nothing will
    touch this [t] again (the value is detached from its buffer).
    Never required for correctness — an unreleased buffer is simply
    collected. *)
val release : t -> unit

val read8 : t -> int -> int
val write8 : t -> int -> int -> unit
val read16 : t -> int -> int
val write16 : t -> int -> int -> unit
val read32 : t -> int -> int
val write32 : t -> int -> int -> unit
val read64 : t -> int -> int64
val write64 : t -> int -> int64 -> unit

(** IEEE double stored as its 64-bit image. *)
val read_float : t -> int -> float

val write_float : t -> int -> float -> unit

(** Highest physical address ever written, plus one — a cheap footprint
    statistic. *)
val high_water : t -> int
